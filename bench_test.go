package distcover

import (
	"os"
	"sync"
	"testing"

	"distcover/internal/bench"
	"distcover/internal/congest"
	"distcover/internal/core"
	"distcover/internal/hypergraph"
)

// Every table and figure-equivalent experiment of the paper has one
// benchmark here; running `go test -bench=.` regenerates them all (in
// quick mode — cmd/benchharness runs the full sweeps) and prints each table
// once to stdout alongside the usual ns/op numbers.

var printOnce sync.Map

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	cfg := bench.Config{Quick: true, Seed: 42}
	for i := 0; i < b.N; i++ {
		tables, err := bench.Run(id, cfg)
		if err != nil {
			b.Fatalf("%s: %v", id, err)
		}
		if _, done := printOnce.LoadOrStore(id, true); !done {
			for _, t := range tables {
				t.Fprint(os.Stdout)
			}
		}
	}
}

func BenchmarkTable1(b *testing.B)        { benchExperiment(b, "T1") }  // Table 1: MWVC algorithms
func BenchmarkTable2(b *testing.B)        { benchExperiment(b, "T2") }  // Table 2: MWHVC algorithms
func BenchmarkRoundsVsDelta(b *testing.B) { benchExperiment(b, "E1") }  // Theorem 9 shape
func BenchmarkRoundsVsW(b *testing.B)     { benchExperiment(b, "E2") }  // weight independence
func BenchmarkApproxRatio(b *testing.B)   { benchExperiment(b, "E3") }  // Corollary 3
func BenchmarkFApprox(b *testing.B)       { benchExperiment(b, "E4") }  // Corollary 10
func BenchmarkILP(b *testing.B)           { benchExperiment(b, "E5") }  // Theorem 19 pipeline
func BenchmarkVariant(b *testing.B)       { benchExperiment(b, "E6") }  // Appendix C
func BenchmarkAlphaAblation(b *testing.B) { benchExperiment(b, "E7") }  // Theorem 8 ablation
func BenchmarkMessageSize(b *testing.B)   { benchExperiment(b, "E8") }  // CONGEST conformance
func BenchmarkEpsilonRange(b *testing.B)  { benchExperiment(b, "E9") }  // Corollaries 11–12
func BenchmarkLocalAlpha(b *testing.B)    { benchExperiment(b, "E10") } // Theorem 9 remark

// Micro-benchmarks of the solver itself at increasing scale; rounds are
// reported as a custom metric so the flat-in-n behaviour is visible in the
// benchmark output.
func BenchmarkSolveScale(b *testing.B) {
	for _, n := range []int{1_000, 10_000, 100_000} {
		g, err := hypergraph.RegularLike(n, 10, 3, hypergraph.GenConfig{
			Seed: int64(n), Dist: hypergraph.WeightExponential, MaxWeight: 1 << 16,
		})
		if err != nil {
			b.Fatal(err)
		}
		b.Run("n="+itoa(n), func(b *testing.B) {
			var rounds int
			for i := 0; i < b.N; i++ {
				res, err := core.Run(g, core.DefaultOptions())
				if err != nil {
					b.Fatal(err)
				}
				rounds = res.Rounds
			}
			b.ReportMetric(float64(rounds), "rounds")
			b.ReportMetric(float64(g.NumEdges()), "edges")
		})
	}
}

// BenchmarkCongestProtocol measures the full message-passing execution.
func BenchmarkCongestProtocol(b *testing.B) {
	g, err := hypergraph.RegularLike(2_000, 8, 3, hypergraph.GenConfig{
		Seed: 1, Dist: hypergraph.WeightUniformRange, MaxWeight: 1000,
	})
	if err != nil {
		b.Fatal(err)
	}
	for _, engine := range []struct {
		name string
		eng  congest.Engine
	}{
		{"sequential", congest.SequentialEngine{}},
		{"parallel", congest.ParallelEngine{}},
	} {
		b.Run(engine.name, func(b *testing.B) {
			var msgs int64
			for i := 0; i < b.N; i++ {
				_, metrics, err := core.RunCongest(g, core.DefaultOptions(), engine.eng, congest.Options{})
				if err != nil {
					b.Fatal(err)
				}
				msgs = metrics.Messages
			}
			b.ReportMetric(float64(msgs), "msgs")
		})
	}
}

// BenchmarkExactArithmetic quantifies the cost of the big.Rat verification
// mode relative to float64.
func BenchmarkExactArithmetic(b *testing.B) {
	g, err := hypergraph.UniformRandom(200, 400, 3, hypergraph.GenConfig{
		Seed: 1, Dist: hypergraph.WeightUniformRange, MaxWeight: 50,
	})
	if err != nil {
		b.Fatal(err)
	}
	for _, exact := range []bool{false, true} {
		name := "float64"
		if exact {
			name = "bigrat"
		}
		b.Run(name, func(b *testing.B) {
			opts := core.DefaultOptions()
			opts.Exact = exact
			for i := 0; i < b.N; i++ {
				if _, err := core.Run(g, opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}
