// Package client is a thin Go client for the coverd service
// (distcover/server). It speaks the wire types of distcover/server/api and
// serializes instances through the library's own codec, so a
// *distcover.Instance round-trips the service unchanged.
//
//	c := client.New("http://localhost:8080")
//	res, err := c.Solve(ctx, inst, api.SolveOptions{Epsilon: 0.5})
//
// Engine selection rides in the options: api.EngineFlat picks the
// chunk-parallel flat solver (the low-latency production path,
// bit-identical to the default simulator), the api.EngineCongest* names
// run the real message protocol and report communication metrics.
//
//	res, err := c.Solve(ctx, inst, api.SolveOptions{Engine: api.EngineFlat})
//
// Against a coordinator ring (coverd -ring) call DiscoverRing once to
// route requests straight to their owning coordinator instead of paying a
// server-side forward hop; see ring.go.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"distcover"
	"distcover/internal/ring"
	"distcover/server/api"
)

// ErrBusy is returned when the server sheds load with 429 (job queue
// full). Callers should back off and retry.
var ErrBusy = errors.New("client: server busy (queue full)")

// ErrNotFound is returned for unknown job ids.
var ErrNotFound = errors.New("client: not found")

// Client talks to one coverd server — or, after DiscoverRing against a
// coordinator ring, to the whole ring, routing each request straight to
// the member that owns its key. The zero value is not usable; create with
// New.
type Client struct {
	baseURL string
	httpc   *http.Client

	// Coordinator ring (nil ⇒ route everything to baseURL). See ring.go.
	ringMu sync.RWMutex
	ring   *ring.Ring
}

// New returns a client for the server at baseURL (e.g.
// "http://localhost:8080"). The default http.Client is used; replace it
// with SetHTTPClient for custom timeouts or transports.
func New(baseURL string) *Client {
	for len(baseURL) > 0 && baseURL[len(baseURL)-1] == '/' {
		baseURL = baseURL[:len(baseURL)-1]
	}
	return &Client{baseURL: baseURL, httpc: &http.Client{}}
}

// SetHTTPClient replaces the underlying *http.Client.
func (c *Client) SetHTTPClient(h *http.Client) { c.httpc = h }

// EncodeInstance serializes an instance into the wire form used by
// api.SolveRequest.Instance.
func EncodeInstance(inst *distcover.Instance) (json.RawMessage, error) {
	var buf bytes.Buffer
	if _, err := inst.WriteTo(&buf); err != nil {
		return nil, fmt.Errorf("client: encode instance: %w", err)
	}
	return buf.Bytes(), nil
}

// Solve solves one instance synchronously. On a ring it is routed by the
// instance's content hash straight to the owning coordinator.
func (c *Client) Solve(ctx context.Context, inst *distcover.Instance, opts api.SolveOptions) (*api.SolveResult, error) {
	raw, err := EncodeInstance(inst)
	if err != nil {
		return nil, err
	}
	req := api.SolveRequest{Instance: raw, Options: opts}
	var key string
	if c.ringActive() {
		key = inst.Hash() // the key SolveRequest would re-derive by decoding
	}
	var res api.SolveResult
	if err := c.postRouted(ctx, key, "/v1/solve", req, &res); err != nil {
		return nil, err
	}
	return &res, nil
}

// SolveRequest submits a prebuilt request (instance or ILP) synchronously.
func (c *Client) SolveRequest(ctx context.Context, req api.SolveRequest) (*api.SolveResult, error) {
	req.Async = false
	var key string
	if c.ringActive() {
		key = solveKey(&req)
	}
	var res api.SolveResult
	if err := c.postRouted(ctx, key, "/v1/solve", req, &res); err != nil {
		return nil, err
	}
	return &res, nil
}

// SolveAsync submits a request for background execution and returns the
// job id to poll with Job or Wait. Async jobs live on the member that
// accepted them (a ring never forwards them), so submission and polling
// both use the client's base URL.
func (c *Client) SolveAsync(ctx context.Context, req api.SolveRequest) (string, error) {
	req.Async = true
	var acc api.JobAccepted
	if err := c.post(ctx, "/v1/solve", req, &acc); err != nil {
		return "", err
	}
	return acc.ID, nil
}

// SolveBatch submits many requests in one call; Results mirrors the input
// index by index.
func (c *Client) SolveBatch(ctx context.Context, reqs []api.SolveRequest) ([]api.BatchItem, error) {
	var res api.BatchResponse
	if err := c.post(ctx, "/v1/solve/batch", api.BatchRequest{Requests: reqs}, &res); err != nil {
		return nil, err
	}
	if len(res.Results) != len(reqs) {
		return nil, fmt.Errorf("client: batch returned %d results for %d requests", len(res.Results), len(reqs))
	}
	return res.Results, nil
}

// Job fetches the status of an async job.
func (c *Client) Job(ctx context.Context, id string) (*api.JobStatus, error) {
	var st api.JobStatus
	if err := c.get(ctx, "/v1/jobs/"+id, &st); err != nil {
		return nil, err
	}
	return &st, nil
}

// Wait polls an async job until it finishes, ctx expires, or the job
// fails. poll ≤ 0 defaults to 50ms.
func (c *Client) Wait(ctx context.Context, id string, poll time.Duration) (*api.SolveResult, error) {
	if poll <= 0 {
		poll = 50 * time.Millisecond
	}
	t := time.NewTicker(poll)
	defer t.Stop()
	for {
		st, err := c.Job(ctx, id)
		if err != nil {
			return nil, err
		}
		switch st.Status {
		case api.JobDone:
			return st.Result, nil
		case api.JobFailed:
			return nil, fmt.Errorf("client: job %s failed: %s", id, st.Error)
		}
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-t.C:
		}
	}
}

// CreateSession opens an incremental solving session for the instance: the
// server solves it once and keeps the primal/dual state so UpdateSession
// batches re-solve only the residual uncovered part. On a ring the create
// goes to the client's base URL; the receiving member mints an id it owns,
// and the later per-id calls route to that owner directly.
func (c *Client) CreateSession(ctx context.Context, inst *distcover.Instance, opts api.SolveOptions) (*api.SessionInfo, error) {
	raw, err := EncodeInstance(inst)
	if err != nil {
		return nil, err
	}
	var info api.SessionInfo
	if err := c.post(ctx, "/v1/sessions", api.SessionRequest{Instance: raw, Options: opts}, &info); err != nil {
		return nil, err
	}
	return &info, nil
}

// UpdateSession applies one delta batch to a session and returns what the
// residual re-solve did together with the refreshed session state. On a
// ring it is routed by session id to the owning coordinator.
func (c *Client) UpdateSession(ctx context.Context, id string, delta api.SessionDelta) (*api.SessionUpdateResult, error) {
	var res api.SessionUpdateResult
	if err := c.postRouted(ctx, id, "/v1/sessions/"+id+"/update", delta, &res); err != nil {
		return nil, err
	}
	return &res, nil
}

// Sessions lists live sessions, most recently used first. After a server
// restart with a WAL directory, rehydrated sessions appear here with
// Recovered set. On a ring the lists of all reachable members are
// concatenated (each member lists only the sessions it owns; unreachable
// members are skipped), so the MRU order holds per member, not globally.
func (c *Client) Sessions(ctx context.Context) ([]*api.SessionInfo, error) {
	var all []*api.SessionInfo
	var lastErr error
	ok := false
	for _, base := range c.allBases() {
		var list api.SessionList
		if err := c.getTo(ctx, base, "/v1/sessions", &list); err != nil {
			if !retriable(err) || ctx.Err() != nil {
				return nil, err
			}
			lastErr = err
			continue
		}
		ok = true
		all = append(all, list.Sessions...)
	}
	if !ok {
		return nil, lastErr
	}
	return all, nil
}

// Session fetches the current state of a session. On a ring it is routed
// by session id to the owning coordinator.
func (c *Client) Session(ctx context.Context, id string) (*api.SessionInfo, error) {
	var info api.SessionInfo
	if err := c.getRouted(ctx, id, "/v1/sessions/"+id, &info); err != nil {
		return nil, err
	}
	return &info, nil
}

// CloseSession deletes a session on the server. On a ring it is routed by
// session id to the owning coordinator, falling back across the remaining
// members on transport errors (the server turns a misrouted delete into a
// redirect, which the http.Client follows).
func (c *Client) CloseSession(ctx context.Context, id string) error {
	var lastErr error
	for i, base := range c.bases(id) {
		p := "/v1/sessions/" + id
		if i > 0 {
			p += "?hop=1" // fallback: serve locally, see getRouted
		}
		err := c.deleteTo(ctx, base, p)
		if err == nil || ctx.Err() != nil {
			return err
		}
		if i > 0 && errors.Is(err, ErrNotFound) {
			lastErr = err // inconclusive off the live owner, see getRouted
			continue
		}
		if !retriable(err) {
			return err
		}
		lastErr = err
	}
	return lastErr
}

func (c *Client) deleteTo(ctx context.Context, base, path string) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodDelete, base+path, nil)
	if err != nil {
		return err
	}
	resp, err := c.httpc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body)
	switch {
	case resp.StatusCode == http.StatusNoContent:
		return nil
	case resp.StatusCode == http.StatusNotFound:
		return ErrNotFound
	default:
		return fmt.Errorf("client: unexpected status %s", resp.Status)
	}
}

// Health fetches the server's health summary.
func (c *Client) Health(ctx context.Context) (*api.Health, error) {
	var h api.Health
	if err := c.get(ctx, "/healthz", &h); err != nil {
		return nil, err
	}
	return &h, nil
}

func (c *Client) post(ctx context.Context, path string, body, out any) error {
	return c.postTo(ctx, c.baseURL, path, body, out)
}

func (c *Client) postTo(ctx context.Context, base, path string, body, out any) error {
	data, err := json.Marshal(body)
	if err != nil {
		return fmt.Errorf("client: marshal: %w", err)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, base+path, bytes.NewReader(data))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	return c.do(req, out)
}

func (c *Client) get(ctx context.Context, path string, out any) error {
	return c.getTo(ctx, c.baseURL, path, out)
}

func (c *Client) getTo(ctx context.Context, base, path string, out any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+path, nil)
	if err != nil {
		return err
	}
	return c.do(req, out)
}

func (c *Client) do(req *http.Request, out any) error {
	resp, err := c.httpc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 200 && resp.StatusCode < 300 {
		return json.NewDecoder(resp.Body).Decode(out)
	}
	switch resp.StatusCode {
	case http.StatusTooManyRequests:
		io.Copy(io.Discard, resp.Body)
		return ErrBusy
	case http.StatusNotFound:
		io.Copy(io.Discard, resp.Body)
		return ErrNotFound
	}
	var apiErr api.Error
	if err := json.NewDecoder(resp.Body).Decode(&apiErr); err == nil && apiErr.Error != "" {
		return fmt.Errorf("client: %s: %s", resp.Status, apiErr.Error)
	}
	return fmt.Errorf("client: unexpected status %s", resp.Status)
}
