package client_test

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"distcover"
	"distcover/client"
	"distcover/server"
	"distcover/server/api"
)

func testInstance(t *testing.T) *distcover.Instance {
	t.Helper()
	inst, err := distcover.NewInstance(
		[]int64{3, 1, 4, 1, 5},
		[][]int{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {0, 4}},
	)
	if err != nil {
		t.Fatal(err)
	}
	return inst
}

func TestEncodeInstanceRoundTrips(t *testing.T) {
	inst := testInstance(t)
	raw, err := client.EncodeInstance(inst)
	if err != nil {
		t.Fatal(err)
	}
	var decoded struct {
		Weights []int64 `json:"weights"`
		Edges   [][]int `json:"edges"`
	}
	if err := json.Unmarshal(raw, &decoded); err != nil {
		t.Fatalf("wire form is not the codec JSON: %v", err)
	}
	if len(decoded.Weights) != 5 || len(decoded.Edges) != 5 {
		t.Fatalf("lost data in encoding: %+v", decoded)
	}
}

func TestClientAgainstRealServer(t *testing.T) {
	srv := server.New(server.Config{Workers: 2, QueueDepth: 8})
	defer srv.Close()
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()
	c := client.New(hs.URL + "/") // trailing slash must be tolerated

	inst := testInstance(t)
	ctx := context.Background()

	res, err := c.Solve(ctx, inst, api.SolveOptions{Epsilon: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if !inst.IsCover(res.Cover) {
		t.Fatal("infeasible cover")
	}
	if res.InstanceHash != inst.Hash() {
		t.Fatalf("server hash %q != local hash %q", res.InstanceHash, inst.Hash())
	}

	raw, err := client.EncodeInstance(inst)
	if err != nil {
		t.Fatal(err)
	}
	items, err := c.SolveBatch(ctx, []api.SolveRequest{
		{Instance: raw, Options: api.SolveOptions{Epsilon: 0.5}},
		{Instance: raw, Options: api.SolveOptions{Epsilon: 0.25}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if items[0].Result == nil || !items[0].Result.Cached {
		t.Fatalf("first batch item should hit the cache from the earlier Solve: %+v", items[0])
	}
	if items[1].Result == nil || items[1].Result.Cached {
		t.Fatalf("different epsilon must not share a cache entry: %+v", items[1])
	}

	id, err := c.SolveAsync(ctx, api.SolveRequest{Instance: raw, Options: api.SolveOptions{Epsilon: 0.75}})
	if err != nil {
		t.Fatal(err)
	}
	waitCtx, cancel := context.WithTimeout(ctx, 30*time.Second)
	defer cancel()
	if _, err := c.Wait(waitCtx, id, time.Millisecond); err != nil {
		t.Fatalf("wait: %v", err)
	}
}

func TestClientErrorMapping(t *testing.T) {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/solve", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "1")
		http.Error(w, `{"error":"job queue full"}`, http.StatusTooManyRequests)
	})
	mux.HandleFunc("/v1/jobs/", func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, `{"error":"unknown job"}`, http.StatusNotFound)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusInternalServerError)
		json.NewEncoder(w).Encode(api.Error{Error: "boom"})
	})
	hs := httptest.NewServer(mux)
	defer hs.Close()
	c := client.New(hs.URL)
	ctx := context.Background()

	if _, err := c.Solve(ctx, testInstance(t), api.SolveOptions{}); !errors.Is(err, client.ErrBusy) {
		t.Fatalf("429: want ErrBusy, got %v", err)
	}
	if _, err := c.Job(ctx, "zzz"); !errors.Is(err, client.ErrNotFound) {
		t.Fatalf("404: want ErrNotFound, got %v", err)
	}
	_, err := c.Health(ctx)
	if err == nil || errors.Is(err, client.ErrBusy) || errors.Is(err, client.ErrNotFound) {
		t.Fatalf("500: want generic error carrying the server message, got %v", err)
	}
	if got := err.Error(); !contains(got, "boom") {
		t.Fatalf("error should surface the server message, got %q", got)
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
