package client

// Ring awareness: against a coordinator ring (coverd -ring) the client can
// fetch the membership once and route every request straight to its owner,
// saving the server-side forward hop. See server/ring.go and PROTOCOL.md
// for the ring's routing semantics.

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"net"
	"net/url"
	"strings"

	"distcover"
	"distcover/internal/ring"
	"distcover/server/api"
)

// DiscoverRing fetches GET /v1/ring from the client's base URL and, when
// the server is a coordinator ring member, rebuilds the identical
// consistent-hash ring locally. From then on solves are routed by instance
// content hash and session calls by session id directly to the owning
// coordinator; if an owner is unreachable the client falls back to the
// remaining members (whose server-side forwarding and redirects still make
// the request land correctly, one hop later). Returns whether a ring is
// active after the call. Against a standalone server it returns
// (false, nil) and the client keeps using its base URL — the pre-ring
// behavior, unchanged.
//
// Routing is a pure function of the fetched membership; there is no
// background refresh. Call DiscoverRing again to pick up a membership
// change. Not safe to call concurrently with in-flight requests that it
// should affect (the swap itself is mutex-guarded and race-free).
func (c *Client) DiscoverRing(ctx context.Context) (bool, error) {
	var info api.RingInfo
	if err := c.get(ctx, "/v1/ring", &info); err != nil {
		return false, err
	}
	c.ringMu.Lock()
	defer c.ringMu.Unlock()
	if !info.Enabled || len(info.Members) == 0 {
		c.ring = nil
		return false, nil
	}
	r, err := ring.New(info.Members, info.VNodes)
	if err != nil {
		c.ring = nil
		return false, fmt.Errorf("client: bad ring from server: %w", err)
	}
	c.ring = r
	return true, nil
}

// RingMembers returns the membership the client routes over, nil when no
// ring is active (standalone server, or DiscoverRing not called).
func (c *Client) RingMembers() []string {
	c.ringMu.RLock()
	defer c.ringMu.RUnlock()
	if c.ring == nil {
		return nil
	}
	return c.ring.Members()
}

// ringActive reports whether DiscoverRing armed ring routing.
func (c *Client) ringActive() bool {
	c.ringMu.RLock()
	defer c.ringMu.RUnlock()
	return c.ring != nil
}

// allBases returns every base URL worth querying for whole-fleet reads:
// the ring members when a ring is active (with the configured base
// appended if it is not one of them), else just the configured base.
func (c *Client) allBases() []string {
	c.ringMu.RLock()
	r := c.ring
	c.ringMu.RUnlock()
	if r == nil {
		return []string{c.baseURL}
	}
	var out []string
	seenSelf := false
	for _, m := range r.Members() {
		t := memberURL(m)
		out = append(out, t)
		if t == c.baseURL {
			seenSelf = true
		}
	}
	if !seenSelf {
		out = append(out, c.baseURL)
	}
	return out
}

// solveKey returns the ring routing key of a solve request — the same
// content identity the server caches under — or "" when the request cannot
// be keyed client-side (leaving routing to the server). Only called when a
// ring is active: decoding the instance costs a parse, which the
// standalone path never pays.
func solveKey(req *api.SolveRequest) string {
	switch {
	case len(req.Instance) > 0:
		inst, err := distcover.ReadInstance(bytes.NewReader(req.Instance))
		if err != nil {
			return "" // malformed; let the owner-agnostic POST surface the 400
		}
		return inst.Hash()
	case req.ILP != nil:
		return api.KeyILP(req.ILP)
	default:
		return ""
	}
}

// bases returns the base URLs to try for a key, owner first. With no ring
// (or no key) that is just the configured base URL. The configured base is
// always in the fallback list even if it is not a member — it is the
// address the user knows is reachable.
func (c *Client) bases(key string) []string {
	c.ringMu.RLock()
	r := c.ring
	c.ringMu.RUnlock()
	if r == nil || key == "" {
		return []string{c.baseURL}
	}
	owner := r.Owner(key)
	out := []string{memberURL(owner)}
	if b := c.baseURL; b != out[0] {
		out = append(out, b)
	}
	for _, m := range r.Members() {
		if t := memberURL(m); t != out[0] && t != c.baseURL {
			out = append(out, t)
		}
	}
	return out
}

// memberURL turns a ring member address (host:port, as the server
// advertises them) into a base URL; members already carrying a scheme
// pass through. Mirrors the server's ringMemberURL.
func memberURL(member string) string {
	if !strings.Contains(member, "://") {
		member = "http://" + member
	}
	for len(member) > 0 && member[len(member)-1] == '/' {
		member = member[:len(member)-1]
	}
	return member
}

// retriable reports whether an error from one base is worth retrying on
// another: transport failures (owner down, connection refused) are, HTTP
// status errors are not — the owner answered, its answer stands.
func retriable(err error) bool {
	var ue *url.Error
	return errors.As(err, &ue)
}

// dialFailed reports a transport error from before the request was sent
// (connection refused, no route). Only these are safe to retry for
// non-idempotent POSTs: a reset after the request went out is ambiguous —
// the owner may have durably applied the update before dying, and a blind
// replay on another member would apply it twice.
func dialFailed(err error) bool {
	var oe *net.OpError
	return errors.As(err, &oe) && oe.Op == "dial"
}

// postRouted posts to the key's owner, falling back across the remaining
// members only when the dial itself failed (see dialFailed); an error
// mid-request surfaces to the caller, who can consult the session's
// Updates count before resuming. Fallback posts stay unmarked: the
// receiving member proxies to the owner itself, and its failed proxy is
// what marks the owner down and triggers takeover server-side.
func (c *Client) postRouted(ctx context.Context, key, path string, body, out any) error {
	var lastErr error
	for _, base := range c.bases(key) {
		err := c.postTo(ctx, base, path, body, out)
		if err == nil || !dialFailed(err) || ctx.Err() != nil {
			return err
		}
		lastErr = err
	}
	return lastErr
}

// getRouted is postRouted for GETs, with two differences. Fallback
// attempts carry the ?hop=1 marker: an unmarked GET on a non-owner is
// answered with a redirect back to the owner the client just failed to
// reach, while the hop marker makes the fallback member serve locally —
// which, when the owner is truly dead, is exactly the path that adopts the
// owner's durable sessions (WAL takeover). And a not-found from a
// hop-marked fallback is inconclusive, not authoritative: only the member
// that the reduced ring makes the live owner performs the takeover, the
// others genuinely don't hold the key — so the sweep continues until some
// member serves it or every member has said not-found.
func (c *Client) getRouted(ctx context.Context, key, path string, out any) error {
	var lastErr error
	for i, base := range c.bases(key) {
		p := path
		if i > 0 {
			p = path + "?hop=1"
		}
		err := c.getTo(ctx, base, p, out)
		if err == nil || ctx.Err() != nil {
			return err
		}
		if i > 0 && errors.Is(err, ErrNotFound) {
			lastErr = err
			continue
		}
		if !retriable(err) {
			return err
		}
		lastErr = err
	}
	return lastErr
}
