package distcover

import (
	"context"
	"fmt"

	"distcover/internal/cluster"
	"distcover/internal/core"
	"distcover/internal/hypergraph"
)

// Cluster errors, re-exported so callers can errors.Is against the public
// package.
var (
	// ErrPeerLost indicates a cluster peer died, was killed or timed out
	// mid-operation. The coordinator-side state (including any Session the
	// operation ran under) is unchanged; restart or replace the peer and
	// retry.
	ErrPeerLost = cluster.ErrPeerLost
	// ErrPeerFailed indicates a peer reported a solver-level failure.
	ErrPeerFailed = cluster.ErrPeerFailed
	// ErrNoPeers indicates a cluster operation without configured peers.
	ErrNoPeers = cluster.ErrNoPeers
)

// ClusterSolve runs Algorithm MWHVC partitioned across the given coverd
// peer processes: the instance's CSR vertex range is split into contiguous
// partitions (one per peer unless WithClusterPartitions says otherwise),
// each peer executes the lockstep solver over its range, and only
// boundary-vertex levels and join/raise flags cross the wire between
// iterations. The result is bit-identical to Solve/WithFlatEngine on the
// undivided instance — the cluster equivalence property test enforces it —
// so clustering changes where the work runs, never what it returns.
//
// Peers are coverd processes started with -peer-listen (or any
// cluster.Peer). A dead or unreachable peer surfaces as ErrPeerLost;
// nothing is partially committed and the call can be retried once the peer
// is back.
//
// With no peers and WithClusterPartitions(n), the same partitioned solve
// runs entirely in-process: the partitions become co-located goroutines
// synchronizing through a shared-memory exchanger instead of TCP — the
// fast path for multi-partition work that happens to live on one machine.
func ClusterSolve(in *Instance, peers []string, opts ...Option) (*Solution, error) {
	if in == nil {
		return nil, ErrNilInstance
	}
	cfg := optConfig(opts)
	cfg.clusterPeers = append([]string(nil), peers...)
	res, err := clusterRun(in.g, cfg, nil)
	if err != nil {
		return nil, err
	}
	return solutionFromResult(res), nil
}

// ClusterInvalidate asks every listed peer to drop its cached copy of the
// instance with the given canonical content hash (Instance.Hash). Peer
// instance caches are content-addressed soft state — entries are immutable
// and eviction is never needed for correctness — so this is purely capacity
// and lifecycle management: coverd calls it when a cluster session is
// deleted, and long-running coordinators can call it after retiring an
// instance. All peers are attempted even if one fails; the first error is
// returned. An unknown hash is not an error (the drop is idempotent).
func ClusterInvalidate(hash string, peers []string, opts ...Option) error {
	cfg := optConfig(opts)
	ccfg := cluster.Config{Peers: peers, Logger: cfg.logger}
	if tr := cfg.effectiveTracer(); tr != nil {
		ccfg.Tracer = tr
	}
	if err := cluster.Invalidate(hash, ccfg); err != nil {
		return fmt.Errorf("distcover: cluster: %w", err)
	}
	return nil
}

// clusterRun dispatches a (possibly warm-started) solve to the configured
// cluster peers — or, when partitions are requested without peers, to the
// in-process shared-memory partitioned runner (same partition planning,
// same lockstep exchange cadence, no sockets).
func clusterRun(g *hypergraph.Hypergraph, cfg solveConfig, carry []float64) (*core.Result, error) {
	if len(cfg.clusterPeers) == 0 && cfg.clusterParts > 0 {
		return clusterRunLocal(g, cfg, carry)
	}
	ccfg := cluster.Config{
		Peers:      cfg.clusterPeers,
		Partitions: cfg.clusterParts,
		Logger:     cfg.logger,
	}
	if tr := cfg.effectiveTracer(); tr != nil {
		ccfg.Tracer = tr
	}
	if cfg.recorder != nil {
		ccfg.TraceID = cfg.recorder.TraceID()
	}
	stop := cfg.startSpan("cluster")
	defer stop()
	// The coordinator drives the peers itself; the core tracer hook set by
	// startSpan is for the in-process runners and stays unused here.
	cfg.core.Tracer = nil
	var (
		res *core.Result
		err error
	)
	if carry == nil {
		res, err = cluster.Solve(g, cfg.core, ccfg)
	} else {
		res, err = cluster.SolveResidual(g, cfg.core, carry, ccfg)
	}
	if err != nil {
		return nil, fmt.Errorf("distcover: cluster: %w", err)
	}
	return res, nil
}

// clusterRunLocal is the shared-memory fast path: the same contiguous
// vertex-range partitions a cluster solve would ship to peers run as
// co-located goroutines over an in-process barrier exchanger, skipping
// TCP and the frame codec entirely. Results are bit-identical to every
// other engine.
func clusterRunLocal(g *hypergraph.Hypergraph, cfg solveConfig, carry []float64) (*core.Result, error) {
	if cfg.core.Exact {
		return nil, fmt.Errorf("distcover: cluster: %w: exact arithmetic is not distributable", core.ErrPartitionOptions)
	}
	// Per-partition runners share nothing with a coordinator-side trace;
	// mirror the wire path, which runs these collectors off.
	cfg.core.CollectTrace = false
	cfg.core.CheckInvariants = false
	stop := cfg.startSpan("cluster-local")
	defer stop()
	// The partition runners execute concurrently; the per-iteration phase
	// hooks assume a single runner, so they stay off exactly as they do
	// for the coordinator on the wire path.
	cfg.core.Tracer = nil
	res, err := core.RunPartitioned(context.Background(), g, cfg.core, carry, cfg.clusterParts)
	if err != nil {
		return nil, fmt.Errorf("distcover: cluster: %w", err)
	}
	return res, nil
}
