//go:build unix

package distcover

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"os"
	"os/exec"
	"reflect"
	"runtime"
	"strconv"
	"strings"
	"syscall"
	"testing"
	"time"

	"distcover/internal/cluster"
)

// The chaos suite runs cluster peers as real operating-system processes and
// SIGKILLs them at deterministic protocol positions: the test binary
// re-execs itself as a peer helper (TestMain dispatches on an environment
// variable), and the helper kills itself — kill -9, no cleanup, no
// handshake — after serving a configured number of reads on a configured
// connection. The suite asserts the bar every in-process engine already
// meets: the surviving coordinator returns the typed ErrPeerLost promptly
// (no hang), leaks no goroutines, commits nothing to session state, and
// recovers fully once the peer is replaced.

const (
	helperEnv         = "DISTCOVER_PEER_HELPER"
	helperKillOnSolve = "DISTCOVER_PEER_KILL_ON_SOLVE"
	helperKillReads   = "DISTCOVER_PEER_KILL_AFTER_READS"
)

func TestMain(m *testing.M) {
	if os.Getenv(helperEnv) == "1" {
		runPeerHelper()
		return
	}
	os.Exit(m.Run())
}

// runPeerHelper is the re-exec'd peer process: it listens on an ephemeral
// port, announces it on stdout and serves cluster solves until killed.
func runPeerHelper() {
	killOnSolve, _ := strconv.Atoi(os.Getenv(helperKillOnSolve))
	killAfterReads, _ := strconv.Atoi(os.Getenv(helperKillReads))
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		fmt.Fprintln(os.Stderr, "peer helper:", err)
		os.Exit(1)
	}
	fmt.Printf("ADDR %s\n", ln.Addr())
	p := cluster.NewPeer()
	err = p.Serve(&killingListener{Listener: ln, killOnSolve: killOnSolve, killAfterReads: killAfterReads})
	fmt.Fprintln(os.Stderr, "peer helper: serve:", err)
	os.Exit(1)
}

// killingListener counts accepted connections (the peer protocol runs one
// solve per connection, so the accept index is the solve index) and arms a
// killingConn on the configured one.
type killingListener struct {
	net.Listener
	killOnSolve    int // 1-based accept index to arm; 0 = never
	killAfterReads int // Read calls on the armed connection before SIGKILL
	accepts        int
}

func (l *killingListener) Accept() (net.Conn, error) {
	conn, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	l.accepts++
	if l.killOnSolve > 0 && l.accepts == l.killOnSolve {
		return &killingConn{Conn: conn, killAfterReads: l.killAfterReads}, nil
	}
	return conn, nil
}

// killingConn SIGKILLs its own process at the start of the configured Read
// call — mid-protocol, after the peer has already contributed frames to the
// in-flight round.
type killingConn struct {
	net.Conn
	killAfterReads int
	reads          int
}

func (c *killingConn) Read(p []byte) (int, error) {
	c.reads++
	if c.reads >= c.killAfterReads {
		syscall.Kill(os.Getpid(), syscall.SIGKILL)
		select {} // unreachable: SIGKILL is not deliverable to a handler
	}
	return c.Conn.Read(p)
}

// startHelperPeer launches the test binary as a peer process and returns
// its address and process handle. killOnSolve = 0 runs a well-behaved peer.
func startHelperPeer(t *testing.T, killOnSolve, killAfterReads int) (string, *os.Process) {
	t.Helper()
	cmd := exec.Command(os.Args[0])
	cmd.Env = append(os.Environ(),
		helperEnv+"=1",
		fmt.Sprintf("%s=%d", helperKillOnSolve, killOnSolve),
		fmt.Sprintf("%s=%d", helperKillReads, killAfterReads),
	)
	cmd.Stderr = os.Stderr
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		cmd.Process.Kill()
		cmd.Wait()
	})
	sc := bufio.NewScanner(stdout)
	if !sc.Scan() {
		t.Fatalf("peer helper produced no address line: %v", sc.Err())
	}
	line := sc.Text()
	addr, ok := strings.CutPrefix(line, "ADDR ")
	if !ok {
		t.Fatalf("unexpected helper output %q", line)
	}
	// The helper writes nothing further to stdout (diagnostics go to
	// stderr), so the pipe can sit unread without ever blocking it.
	return addr, cmd.Process
}

// chaosInstance is large enough to run several iterations, so a peer armed
// to die after the setup phase dies mid-round, not post-solve.
func chaosInstance(t *testing.T) *Instance {
	t.Helper()
	weights := make([]int64, 600)
	state := uint64(0xDEADBEEFCAFE)
	next := func(bound int) int {
		state = state*6364136223846793005 + 1442695040888963407
		return int((state >> 33) % uint64(bound))
	}
	for i := range weights {
		weights[i] = int64(1 + next(500))
	}
	edges := make([][]int, 1800)
	for e := range edges {
		edges[e] = []int{next(600), next(600), next(600)}
	}
	inst, err := NewInstance(weights, edges)
	if err != nil {
		t.Fatal(err)
	}
	return inst
}

// waitGoroutinesBackRoot is the goroutine-count regression idiom extended
// to the cluster coordinator path.
func waitGoroutinesBackRoot(t *testing.T, before int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		now := runtime.NumGoroutine()
		if now <= before {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutines leaked: %d before, %d after\n%s", before, now, buf[:n])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestClusterChaosSIGKILLMidSolve SIGKILLs one of three peer processes in
// the middle of the first round of a solve. The coordinator must return the
// typed ErrPeerLost promptly and leak nothing.
func TestClusterChaosSIGKILLMidSolve(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns helper processes")
	}
	before := runtime.NumGoroutine()
	func() {
		good1, _ := startHelperPeer(t, 0, 0)
		good2, _ := startHelperPeer(t, 0, 0)
		// Dies at its 6th read on the first connection: after the hello and
		// setup frames (2 reads each) and after publishing its iteration-1
		// boundary frame — mid-round by construction.
		killer, _ := startHelperPeer(t, 1, 6)
		inst := chaosInstance(t)
		start := time.Now()
		_, err := ClusterSolve(inst, []string{good1, killer, good2})
		if !errors.Is(err, ErrPeerLost) {
			t.Fatalf("err = %v, want ErrPeerLost", err)
		}
		if d := time.Since(start); d > 20*time.Second {
			t.Fatalf("coordinator needed %v to fail over", d)
		}
	}()
	waitGoroutinesBackRoot(t, before)
}

// TestClusterChaosSIGKILLMultiplexed SIGKILLs a peer process that carries
// two multiplexed partitions on one v3 connection, mid-exchange, while a
// second two-partition peer is healthy. The concurrent fan-out relay must
// surface exactly one typed ErrPeerLost (not a hang, not a protocol error
// from the half-dead channels), unblock everything, and leave the
// coordinator able to solve again once the peer is replaced.
func TestClusterChaosSIGKILLMultiplexed(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns helper processes")
	}
	before := runtime.NumGoroutine()
	func() {
		good, _ := startHelperPeer(t, 0, 0)
		// One connection carries both of this peer's partitions under v3;
		// the 12th read lands after both channel setups and the instance
		// re-syncs — inside the iteration exchange loop.
		killer, _ := startHelperPeer(t, 1, 12)
		inst := chaosInstance(t)
		start := time.Now()
		_, err := ClusterSolve(inst, []string{good, killer}, WithClusterPartitions(4))
		if !errors.Is(err, ErrPeerLost) {
			t.Fatalf("err = %v, want ErrPeerLost", err)
		}
		if d := time.Since(start); d > 20*time.Second {
			t.Fatalf("coordinator needed %v to fail over", d)
		}

		// Replace the dead peer: the identical multiplexed solve must now
		// succeed and match the single-process flat result bit for bit.
		replacement, _ := startHelperPeer(t, 0, 0)
		got, err := ClusterSolve(inst, []string{good, replacement}, WithClusterPartitions(4))
		if err != nil {
			t.Fatalf("solve after replacement: %v", err)
		}
		want, err := Solve(inst, WithFlatEngine())
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got.Cover, want.Cover) || got.Weight != want.Weight ||
			got.DualLowerBound != want.DualLowerBound {
			t.Fatal("post-recovery multiplexed solve diverges from flat")
		}
	}()
	waitGoroutinesBackRoot(t, before)
}

// TestClusterChaosSIGKILLMidUpdate SIGKILLs a peer inside a cluster
// Session.Update: the update must fail with ErrPeerLost without committing
// anything, and after the peer is replaced (SetClusterPeers) the same delta
// must apply and land bit-identically with a single-process reference
// session.
func TestClusterChaosSIGKILLMidUpdate(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns helper processes")
	}
	before := runtime.NumGoroutine()
	func() {
		good1, _ := startHelperPeer(t, 0, 0)
		good2, _ := startHelperPeer(t, 0, 0)
		// Survives the session's initial solve (connection 1), dies on its
		// 6th read of connection 2 — inside the update's residual solve.
		killer, _ := startHelperPeer(t, 2, 6)

		inst := chaosInstance(t)
		ref, err := NewSession(inst, WithFlatEngine())
		if err != nil {
			t.Fatal(err)
		}
		sess, err := NewSession(inst, WithClusterPeers(good1, good2, killer))
		if err != nil {
			t.Fatalf("cluster session: %v", err)
		}
		wantBase := ref.Solution()
		if got := sess.Solution(); !reflect.DeepEqual(got.Cover, wantBase.Cover) ||
			got.DualLowerBound != wantBase.DualLowerBound {
			t.Fatal("cluster session base solve diverges from flat")
		}

		// A delta guaranteed to leave residual work (fresh vertices only).
		d := Delta{
			Weights: []int64{5, 7, 9, 11},
			Edges:   [][]int{{600, 601}, {601, 602}, {602, 603}, {600, 603}, {600, 602}},
		}
		snapBefore := sess.Solution()
		if _, err := sess.Update(d); !errors.Is(err, ErrPeerLost) {
			t.Fatalf("update err = %v, want ErrPeerLost", err)
		}
		// Nothing committed: the snapshot is unchanged and the hash still
		// names the pre-delta instance.
		snapAfter := sess.Solution()
		if !reflect.DeepEqual(snapBefore, snapAfter) {
			t.Fatal("failed update mutated session state")
		}
		if sess.Hash() != inst.Hash() {
			t.Fatal("failed update advanced the session hash")
		}

		// Recovery: replace the dead peer and retry the identical delta.
		replacement, _ := startHelperPeer(t, 0, 0)
		sess.SetClusterPeers(good1, good2, replacement)
		if _, err := sess.Update(d); err != nil {
			t.Fatalf("retry after recovery: %v", err)
		}
		if _, err := ref.Update(d); err != nil {
			t.Fatal(err)
		}
		got, want := sess.Solution(), ref.Solution()
		if !reflect.DeepEqual(got.Cover, want.Cover) || got.DualLowerBound != want.DualLowerBound ||
			got.Weight != want.Weight {
			t.Fatal("recovered cluster session diverges from flat session")
		}
		grown, err := inst.Extend(d)
		if err != nil {
			t.Fatal(err)
		}
		if sess.Hash() != grown.Hash() {
			t.Fatal("recovered session hash drifted")
		}
	}()
	waitGoroutinesBackRoot(t, before)
}
