package distcover

import (
	"errors"
	"math/rand"
	"net"
	"reflect"
	"testing"

	"distcover/internal/cluster"
)

// startClusterPeers launches n in-process cluster peers on 127.0.0.1:0 and
// returns their addresses; the listeners close on test cleanup.
func startClusterPeers(t *testing.T, n int) []string {
	t.Helper()
	addrs := make([]string, n)
	for i := 0; i < n; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		p := cluster.NewPeer()
		go p.Serve(ln)
		t.Cleanup(func() { p.Close() })
		addrs[i] = ln.Addr().String()
	}
	return addrs
}

// TestClusterEquivalenceProperty is the cross-process equivalence property
// test: over 50 random instances — plain graphs, f>2 hypergraphs across
// weight distributions, heavy-tail degree profiles, ILP-reduction outputs —
// at 1..4 partitions and varying ε, ClusterSolve over real TCP peers must
// return a Solution bit-identical to the single-process flat engine (and
// therefore to the simulator and every CONGEST engine).
func TestClusterEquivalenceProperty(t *testing.T) {
	addrs := startClusterPeers(t, 2)
	rng := rand.New(rand.NewSource(20260801))
	epss := []float64{1, 0.5, 0.125}
	for i := 0; i < 50; i++ {
		g := randomEquivalenceInstance(t, rng, i)
		inst := &Instance{g: g}
		eps := epss[i%len(epss)]
		want, err := Solve(inst, WithEpsilon(eps), WithFlatEngine(), WithSolverParallelism(2))
		if err != nil {
			t.Fatalf("instance %d: flat: %v", i, err)
		}
		parts := 1 + i%4
		got, err := ClusterSolve(inst, addrs, WithEpsilon(eps), WithClusterPartitions(parts))
		if err != nil {
			t.Fatalf("instance %d parts %d: cluster: %v", i, parts, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("instance %d parts %d: cluster solution diverges from flat:\n got %+v\nwant %+v",
				i, parts, got, want)
		}
		if got.RatioBound > float64(g.Rank())+eps+1e-9 {
			t.Fatalf("instance %d: certificate %g exceeds f+ε", i, got.RatioBound)
		}
	}
}

// TestClusterSessionEquivalenceProperty drives cluster sessions through
// random delta batches: after every batch the cluster session must match
// the flat session bit for bit (cover and dual lower bound), produce a
// valid cover of the grown instance, and stay within the f(1+ε) session
// certificate.
func TestClusterSessionEquivalenceProperty(t *testing.T) {
	addrs := startClusterPeers(t, 3)
	rng := rand.New(rand.NewSource(8088))
	for i := 0; i < 8; i++ {
		g := randomEquivalenceInstance(t, rng, i)
		inst := &Instance{g: g}
		ref, err := NewSession(inst, WithFlatEngine())
		if err != nil {
			t.Fatalf("instance %d: flat session: %v", i, err)
		}
		parts := 2 + i%3
		cs, err := NewSession(inst, WithClusterPeers(addrs...), WithClusterPartitions(parts))
		if err != nil {
			t.Fatalf("instance %d: cluster session: %v", i, err)
		}
		cur := inst
		n := g.NumVertices()
		for batch := 0; batch < 4; batch++ {
			var d Delta
			d, n = randomDelta(rng, n)
			var errExt error
			cur, errExt = cur.Extend(d)
			if errExt != nil {
				t.Fatal(errExt)
			}
			if _, err := ref.Update(d); err != nil {
				t.Fatalf("instance %d batch %d: flat update: %v", i, batch, err)
			}
			if _, err := cs.Update(d); err != nil {
				t.Fatalf("instance %d batch %d: cluster update: %v", i, batch, err)
			}
			got, want := cs.Solution(), ref.Solution()
			if !reflect.DeepEqual(got.Cover, want.Cover) || got.DualLowerBound != want.DualLowerBound ||
				got.Weight != want.Weight {
				t.Fatalf("instance %d batch %d: cluster session diverges from flat session", i, batch)
			}
			if !cur.IsCover(got.Cover) {
				t.Fatalf("instance %d batch %d: cluster session cover invalid", i, batch)
			}
			if bound := cs.CertifiedBound(); got.RatioBound > bound*(1+1e-9) {
				t.Fatalf("instance %d batch %d: ratio %g exceeds certificate %g",
					i, batch, got.RatioBound, bound)
			}
			if cs.Hash() != cur.Hash() {
				t.Fatalf("instance %d batch %d: cluster session hash drifted", i, batch)
			}
		}
	}
}

// TestClusterSolveErrors covers the public typed errors.
func TestClusterSolveErrors(t *testing.T) {
	inst, err := NewInstance([]int64{1, 2}, [][]int{{0, 1}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ClusterSolve(nil, []string{"127.0.0.1:1"}); !errors.Is(err, ErrNilInstance) {
		t.Fatalf("nil instance: %v", err)
	}
	if _, err := ClusterSolve(inst, nil); !errors.Is(err, ErrNoPeers) {
		t.Fatalf("no peers: %v", err)
	}
	// A dead address is a lost peer, typed through the public package.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	dead := ln.Addr().String()
	ln.Close()
	if _, err := ClusterSolve(inst, []string{dead}); !errors.Is(err, ErrPeerLost) {
		t.Fatalf("dead peer: %v", err)
	}
}
