// Command benchharness regenerates the paper's evaluation artifacts: the
// measured versions of Table 1 and Table 2 and the theorem-shape
// experiments E1–E17 (run with -list for the index).
//
// Usage:
//
//	benchharness [-exp all|T1|T2|E1..E17] [-quick] [-seed N] [-list]
//	             [-json file] [-baseline file] [-writebaseline file]
//	             [-tol frac] [-portable] [-suite names] [-workers list]
//	             [-cpuprofile file] [-memprofile file] [-trace]
//
// Full sweeps take a few minutes; -quick shrinks them to seconds. With
// -json the results are additionally written to the given file as
// machine-readable JSON (e.g. BENCH_results.json), so successive runs can
// be diffed to track the performance trajectory across changes.
//
// -baseline re-measures the selected measurement suites (engine
// throughput, flat-runner throughput, incremental sessions, cluster
// solves, allocation counts — see -suite) and compares the readings against the committed
// baseline file, exiting non-zero when any regresses beyond -tol
// (default: the baseline's own tolerance). -portable restricts the
// comparison to machine-independent readings (rounds, message counts,
// iteration counts, speedup ratios, exact allocation counts), skipping
// raw wall-clock ns — this is what CI's bench job runs, because its
// runners are not the machine the committed baseline was recorded on.
// -writebaseline measures and merges the readings into the given file, so
// one full run and one -quick run accumulate both modes into
// BENCH_baseline.json.
//
// -cpuprofile and -memprofile write pprof profiles covering the measured
// work (the heap profile is taken after the run), so a CI bench job can
// archive profiles alongside the readings and a regression can be
// diagnosed from the artifacts without re-running locally. For an
// always-on view of the same hot paths on a running daemon, coverd
// exposes the equivalent live handlers behind its -pprof flag.
//
// -trace runs one representative flat solve on the allocation-gate
// fixture with the telemetry layer attached and prints the trace report
// (per-iteration vertex/edge/gather timings, chunk imbalance) as JSON —
// the command-line view of what coverd returns for "trace":true.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"

	"distcover/internal/bench"
	"distcover/internal/bench/sessions"
)

// startProfiles begins CPU profiling and arranges the heap snapshot; the
// returned stop function finalizes both and is safe to call when neither
// profile was requested. Profile-write failures are reported on stderr
// rather than failing the run — the readings are the product, the
// profiles are diagnostics.
func startProfiles(cpuPath, memPath string) (stop func(), err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("-cpuprofile: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("-cpuprofile: %w", err)
		}
	}
	return func() {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "benchharness: -cpuprofile:", err)
			} else {
				fmt.Fprintf(os.Stderr, "benchharness: wrote %s\n", cpuPath)
			}
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				fmt.Fprintln(os.Stderr, "benchharness: -memprofile:", err)
				return
			}
			runtime.GC() // materialize up-to-date heap statistics
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "benchharness: -memprofile:", err)
			}
			if err := f.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "benchharness: -memprofile:", err)
				return
			}
			fmt.Fprintf(os.Stderr, "benchharness: wrote %s\n", memPath)
		}
	}, nil
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "benchharness:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		exp        = flag.String("exp", "all", "experiment id (all, T1, T2, E1..E17)")
		quick      = flag.Bool("quick", false, "shrink sweeps to smoke-test scale")
		seed       = flag.Int64("seed", 42, "workload generation seed")
		list       = flag.Bool("list", false, "list experiments and exit")
		jsonPath   = flag.String("json", "", "also write results as JSON to this file (e.g. BENCH_results.json)")
		baseline   = flag.String("baseline", "", "compare engine-throughput readings against this baseline file; exit 1 on regression")
		writeBase  = flag.String("writebaseline", "", "measure engine throughput and merge the readings into this baseline file")
		tol        = flag.Float64("tol", 0, "regression tolerance as a fraction; >0 overrides the baseline's default and per-entry tolerances (0 = use them)")
		portable   = flag.Bool("portable", false, "with -baseline: compare only machine-independent readings (rounds, messages, iteration counts, speedup ratios, alloc counts), skipping raw ns — for CI runners whose hardware differs from the baseline machine")
		suites     = flag.String("suite", "engines,flat,sessions,cluster,allocs,fabric,relay,scaling", "with -baseline/-writebaseline: comma-separated measurement suites to run (engines = E11 throughput, flat = E13 direct solver, sessions = E12 incremental, cluster = E14 multi-process, allocs = hot-path allocation counts, fabric = E15 instance fabric + WAL overhead, relay = E16 fan-out vs sequential relay, scaling = E17 flat worker sweep)")
		workersArg = flag.String("workers", "", "worker-count sweep for the scaling suite / E17, comma-separated (default 1,2,4,8)")
		cpuProfile = flag.String("cpuprofile", "", "write a pprof CPU profile of the measured work to this file")
		memProfile = flag.String("memprofile", "", "write a pprof heap profile (taken after the run) to this file")
		traceRun   = flag.Bool("trace", false, "run one flat solve of the alloc-gate fixture with telemetry attached and print its trace report as JSON")
	)
	flag.Parse()
	if *traceRun {
		rep, err := sessions.TraceProbe()
		if err != nil {
			return err
		}
		out, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		fmt.Println(string(out))
		return nil
	}
	if *list {
		for _, e := range bench.Registry() {
			fmt.Printf("%-3s %s\n", e.ID, e.Title)
		}
		fmt.Printf("%-3s %s\n", "E12", "Incremental sessions: residual re-solve vs from-scratch (lives outside the bench registry; see -suite)")
		fmt.Printf("%-3s %s\n", "E14", "Multi-process cover cluster vs single-process flat (lives outside the bench registry; see -suite)")
		fmt.Printf("%-3s %s\n", "E15", "Instance fabric setup bytes + WAL update overhead (lives outside the bench registry; see -suite)")
		fmt.Printf("%-3s %s\n", "E16", "Relay concurrency: fan-out vs sequential cluster relay (lives outside the bench registry; see -suite)")
		return nil
	}
	stopProfiles, err := startProfiles(*cpuProfile, *memProfile)
	if err != nil {
		return err
	}
	defer stopProfiles()
	cfg := bench.Config{Quick: *quick, Seed: *seed}
	if *workersArg != "" {
		for _, part := range strings.Split(*workersArg, ",") {
			part = strings.TrimSpace(part)
			if part == "" {
				continue
			}
			w, err := strconv.Atoi(part)
			if err != nil || w < 1 {
				return fmt.Errorf("-workers: bad worker count %q", part)
			}
			cfg.Workers = append(cfg.Workers, w)
		}
	}
	if *baseline != "" || *writeBase != "" {
		// Baseline mode runs the measurement suites only; -exp does not
		// apply (run the command again without -baseline for other tables).
		return runBaseline(cfg, *baseline, *writeBase, *jsonPath, *tol, *portable, *suites)
	}
	var tables []bench.Table
	// E12 imports the public session API and therefore lives outside the
	// bench registry (import cycle with the root package's tests).
	switch {
	case strings.EqualFold(*exp, "E12"):
		tables, err = sessions.IncrementalSessions(cfg)
	case strings.EqualFold(*exp, "E14"):
		tables, err = sessions.ClusterExperiment(cfg)
	case strings.EqualFold(*exp, "E15"):
		tables, err = sessions.FabricExperiment(cfg)
	case strings.EqualFold(*exp, "E16"):
		tables, err = sessions.RelayExperiment(cfg)
	case strings.EqualFold(*exp, "all"):
		tables, err = bench.Run(*exp, cfg)
		if err == nil {
			var extra []bench.Table
			extra, err = sessions.IncrementalSessions(cfg)
			tables = append(tables, extra...)
		}
		if err == nil {
			var extra []bench.Table
			extra, err = sessions.ClusterExperiment(cfg)
			tables = append(tables, extra...)
		}
		if err == nil {
			var extra []bench.Table
			extra, err = sessions.FabricExperiment(cfg)
			tables = append(tables, extra...)
		}
		if err == nil {
			var extra []bench.Table
			extra, err = sessions.RelayExperiment(cfg)
			tables = append(tables, extra...)
		}
	default:
		tables, err = bench.Run(*exp, cfg)
	}
	if err != nil {
		return err
	}
	for _, t := range tables {
		t.Fprint(os.Stdout)
	}
	if *jsonPath != "" {
		if err := writeJSON(*jsonPath, *exp, *quick, *seed, tables); err != nil {
			return fmt.Errorf("-json: %w", err)
		}
		fmt.Fprintf(os.Stderr, "benchharness: wrote %s\n", *jsonPath)
	}
	return nil
}

// runBaseline measures the selected suites and either merges the readings
// into a baseline file (-writebaseline) or compares against one
// (-baseline), returning an error — non-zero exit — on any regression.
func runBaseline(cfg bench.Config, comparePath, writePath, jsonPath string, tol float64, portable bool, suites string) error {
	type suite struct {
		name string
		run  func(bench.Config) ([]bench.Measurement, []bench.Table, error)
	}
	known := map[string]func(bench.Config) ([]bench.Measurement, []bench.Table, error){
		"engines":  bench.MeasureEngines,
		"flat":     bench.MeasureFlat,
		"sessions": sessions.MeasureIncremental,
		"cluster":  sessions.MeasureCluster,
		"allocs":   sessions.MeasureAllocs,
		"fabric":   sessions.MeasureFabric,
		"relay":    sessions.MeasureRelay,
		"scaling":  bench.MeasureScaling,
	}
	var selected []suite
	for _, name := range strings.Split(suites, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		run, ok := known[name]
		if !ok {
			return fmt.Errorf("-suite: unknown suite %q (have engines, flat, sessions, cluster, allocs, fabric, relay, scaling)", name)
		}
		selected = append(selected, suite{name: name, run: run})
	}
	if len(selected) == 0 {
		return fmt.Errorf("-suite: no suites selected")
	}
	var ms []bench.Measurement
	var tables []bench.Table
	for _, s := range selected {
		sms, stables, err := s.run(cfg)
		if err != nil {
			return fmt.Errorf("suite %s: %w", s.name, err)
		}
		ms = append(ms, sms...)
		tables = append(tables, stables...)
	}
	for _, t := range tables {
		t.Fprint(os.Stdout)
	}
	if jsonPath != "" {
		if err := writeJSON(jsonPath, "E11", cfg.Quick, cfg.Seed, tables); err != nil {
			return fmt.Errorf("-json: %w", err)
		}
		fmt.Fprintf(os.Stderr, "benchharness: wrote %s\n", jsonPath)
	}
	if writePath != "" {
		b := &bench.Baseline{Tolerance: 0.20}
		if prev, err := bench.ReadBaseline(writePath); err == nil {
			b = prev
		} else if !os.IsNotExist(err) {
			return fmt.Errorf("-writebaseline: %w", err)
		}
		b.Merge(ms)
		if err := bench.WriteBaseline(writePath, b); err != nil {
			return fmt.Errorf("-writebaseline: %w", err)
		}
		fmt.Fprintf(os.Stderr, "benchharness: wrote %s (%d measurements)\n", writePath, len(b.Measurements))
	}
	if comparePath != "" {
		b, err := bench.ReadBaseline(comparePath)
		if err != nil {
			return fmt.Errorf("-baseline: %w", err)
		}
		cur := ms
		if portable {
			cur = cur[:0:0]
			for _, m := range ms {
				if m.Unit != "ns" {
					cur = append(cur, m)
				}
			}
		}
		results, skipped := bench.Compare(b, cur, tol)
		// The inverse direction matters too: a current reading with no
		// baseline entry (a newly added workload or engine) is ungated, so
		// force the baseline refresh instead of passing green around it.
		inBase := make(map[string]bool, len(b.Measurements))
		for _, m := range b.Measurements {
			inBase[m.Name] = true
		}
		var unmatched []string
		for _, m := range cur {
			if !inBase[m.Name] {
				unmatched = append(unmatched, m.Name)
			}
		}
		if len(unmatched) > 0 {
			return fmt.Errorf("%d measurement(s) have no entry in %s (refresh it with -writebaseline): %s",
				len(unmatched), comparePath, strings.Join(unmatched, ", "))
		}
		for _, r := range results {
			status := "ok"
			if r.Regressed {
				status = "REGRESSED"
			}
			fmt.Printf("%-60s baseline %12.4g  current %12.4g  %s\n", r.Name, r.Baseline, r.Current, status)
		}
		if len(skipped) > 0 {
			fmt.Fprintf(os.Stderr, "benchharness: %d baseline entries not re-measured in this mode (skipped)\n", len(skipped))
		}
		if regs := bench.Regressions(results); len(regs) > 0 {
			for _, r := range regs {
				fmt.Fprintln(os.Stderr, "benchharness: regression:", r)
			}
			return fmt.Errorf("%d benchmark regression(s) vs %s", len(regs), comparePath)
		}
		// A gate that compared nothing protects nothing: this happens when
		// measurement names drift from the committed baseline (e.g. a
		// renamed workload), and must fail loudly instead of passing green.
		if len(results) == 0 {
			return fmt.Errorf("no baseline entries matched the current measurements (%d skipped) — refresh %s with -writebaseline", len(skipped), comparePath)
		}
		fmt.Fprintf(os.Stderr, "benchharness: no regressions vs %s (%d compared)\n", comparePath, len(results))
	}
	return nil
}

// jsonResults is the machine-readable result file schema. Experiments
// reuses bench.Table verbatim (ID, Title, Header, Rows, Notes), so every
// cell printed by the text renderer is present for tooling to parse.
type jsonResults struct {
	Experiment  string        `json:"experiment"`
	Quick       bool          `json:"quick"`
	Seed        int64         `json:"seed"`
	Experiments []bench.Table `json:"experiments"`
}

func writeJSON(path, exp string, quick bool, seed int64, tables []bench.Table) error {
	data, err := json.MarshalIndent(jsonResults{
		Experiment:  exp,
		Quick:       quick,
		Seed:        seed,
		Experiments: tables,
	}, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
