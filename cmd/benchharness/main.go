// Command benchharness regenerates the paper's evaluation artifacts: the
// measured versions of Table 1 and Table 2 and the theorem-shape
// experiments E1–E9 (see DESIGN.md for the index).
//
// Usage:
//
//	benchharness [-exp all|T1|T2|E1..E9] [-quick] [-seed N] [-list]
//
// Full sweeps take a few minutes; -quick shrinks them to seconds.
package main

import (
	"flag"
	"fmt"
	"os"

	"distcover/internal/bench"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "benchharness:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		exp   = flag.String("exp", "all", "experiment id (all, T1, T2, E1..E9)")
		quick = flag.Bool("quick", false, "shrink sweeps to smoke-test scale")
		seed  = flag.Int64("seed", 42, "workload generation seed")
		list  = flag.Bool("list", false, "list experiments and exit")
	)
	flag.Parse()
	if *list {
		for _, e := range bench.Registry() {
			fmt.Printf("%-3s %s\n", e.ID, e.Title)
		}
		return nil
	}
	tables, err := bench.Run(*exp, bench.Config{Quick: *quick, Seed: *seed})
	if err != nil {
		return err
	}
	for _, t := range tables {
		t.Fprint(os.Stdout)
	}
	return nil
}
