// Command benchharness regenerates the paper's evaluation artifacts: the
// measured versions of Table 1 and Table 2 and the theorem-shape
// experiments E1–E10 (run with -list for the index).
//
// Usage:
//
//	benchharness [-exp all|T1|T2|E1..E10] [-quick] [-seed N] [-list]
//	             [-json file]
//
// Full sweeps take a few minutes; -quick shrinks them to seconds. With
// -json the results are additionally written to the given file as
// machine-readable JSON (e.g. BENCH_results.json), so successive runs can
// be diffed to track the performance trajectory across changes.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"distcover/internal/bench"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "benchharness:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		exp      = flag.String("exp", "all", "experiment id (all, T1, T2, E1..E10)")
		quick    = flag.Bool("quick", false, "shrink sweeps to smoke-test scale")
		seed     = flag.Int64("seed", 42, "workload generation seed")
		list     = flag.Bool("list", false, "list experiments and exit")
		jsonPath = flag.String("json", "", "also write results as JSON to this file (e.g. BENCH_results.json)")
	)
	flag.Parse()
	if *list {
		for _, e := range bench.Registry() {
			fmt.Printf("%-3s %s\n", e.ID, e.Title)
		}
		return nil
	}
	tables, err := bench.Run(*exp, bench.Config{Quick: *quick, Seed: *seed})
	if err != nil {
		return err
	}
	for _, t := range tables {
		t.Fprint(os.Stdout)
	}
	if *jsonPath != "" {
		if err := writeJSON(*jsonPath, *exp, *quick, *seed, tables); err != nil {
			return fmt.Errorf("-json: %w", err)
		}
		fmt.Fprintf(os.Stderr, "benchharness: wrote %s\n", *jsonPath)
	}
	return nil
}

// jsonResults is the machine-readable result file schema. Experiments
// reuses bench.Table verbatim (ID, Title, Header, Rows, Notes), so every
// cell printed by the text renderer is present for tooling to parse.
type jsonResults struct {
	Experiment  string        `json:"experiment"`
	Quick       bool          `json:"quick"`
	Seed        int64         `json:"seed"`
	Experiments []bench.Table `json:"experiments"`
}

func writeJSON(path, exp string, quick bool, seed int64, tables []bench.Table) error {
	data, err := json.MarshalIndent(jsonResults{
		Experiment:  exp,
		Quick:       quick,
		Seed:        seed,
		Experiments: tables,
	}, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
