package main

import (
	"bytes"
	"fmt"
	"io"

	"distcover/internal/hypergraph"
)

// jsonBuffer adapts bytes.Buffer for auditExact's round trip through the
// public Instance JSON form.
type jsonBuffer struct {
	data bytes.Buffer
}

func (b *jsonBuffer) Write(p []byte) (int, error) { return b.data.Write(p) }

// readHypergraph re-parses the instance into the internal representation
// the exact solver operates on.
func readHypergraph(data bytes.Buffer) (*hypergraph.Hypergraph, error) {
	return hypergraph.ReadFrom(&data)
}

// generate builds a synthetic instance per the -gen flags and writes its
// JSON to w.
func generate(w io.Writer, kind string, n, m, f int, maxW int64, seed int64) error {
	cfg := hypergraph.GenConfig{Seed: seed, MaxWeight: maxW, Dist: hypergraph.WeightUniformRange}
	if maxW <= 1 {
		cfg.Dist = hypergraph.WeightUniformOne
	}
	var (
		g   *hypergraph.Hypergraph
		err error
	)
	switch kind {
	case "uniform":
		g, err = hypergraph.UniformRandom(n, m, f, cfg)
	case "regular":
		d := 2 * f
		if n > 0 && m > 0 {
			d = m * f / n
			if d < 1 {
				d = 1
			}
		}
		g, err = hypergraph.RegularLike(n, d, f, cfg)
	case "graph":
		g, err = hypergraph.RandomGraph(n, m, cfg)
	case "star":
		g, err = hypergraph.Star(n, f, maxW)
	case "lollipop":
		g, err = hypergraph.Lollipop(n, maxW)
	case "powerlaw":
		g, err = hypergraph.PowerLaw(n, m, f, cfg)
	case "geompath":
		g, err = hypergraph.GeometricPath(n, 1, 1.5, maxW)
	default:
		return fmt.Errorf("unknown -gen kind %q (uniform, regular, graph, star, lollipop, powerlaw, geompath)", kind)
	}
	if err != nil {
		return err
	}
	if _, err := g.WriteTo(w); err != nil {
		return err
	}
	_, err = fmt.Fprintln(w)
	return err
}
