// Command covercli solves a weighted hypergraph vertex cover instance with
// the distributed covering algorithm and prints the cover, its certificate
// and the measured distributed complexity.
//
// The instance is JSON: {"weights":[w0,...],"edges":[[v,...],...]}.
//
// Usage:
//
//	covercli [-in file] [-eps ε] [-f-approx] [-single-level] [-local-alpha]
//	         [-alpha α] [-exact] [-flat [-par P]]
//	         [-congest] [-parallel] [-sharded [-shards P]]
//	         [-tcp] [-json] [-trace] [-compare] [-exact-opt]
//	covercli -gen kind -n N [-m M] [-f F] [-maxw W] [-seed S]
//
// -flat runs the chunk-parallel flat solver (one worker per core, or -par
// workers): the fastest way to just get the cover, with results
// bit-identical to the default simulator. With -congest the real Appendix B
// message protocol runs on a simulated CONGEST network and the
// communication metrics are reported; -parallel runs every node as its own
// goroutine, -sharded steps node shards on a fixed worker pool (the fast
// message-passing path for large instances), -tcp moves the messages over
// real loopback sockets. -gen emits a synthetic instance as JSON instead of
// solving. -compare runs the paper's baselines next to the algorithm;
// -exact-opt audits small instances against a branch-and-bound optimum.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"distcover"
	"distcover/internal/lp"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "covercli:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		inPath      = flag.String("in", "-", "instance JSON path (- for stdin)")
		eps         = flag.Float64("eps", 1, "approximation slack ε ∈ (0,1]")
		fApprox     = flag.Bool("f-approx", false, "f-approximation mode (ε = 1/(nW))")
		singleLevel = flag.Bool("single-level", false, "Appendix C variant")
		localAlpha  = flag.Bool("local-alpha", false, "per-edge α from Δ(e)")
		alpha       = flag.Float64("alpha", 0, "fixed α ≥ 2 (0 = Theorem 9 choice)")
		exact       = flag.Bool("exact", false, "exact big.Rat arithmetic")
		flat        = flag.Bool("flat", false, "chunk-parallel flat solver (bit-identical, one worker per core)")
		par         = flag.Int("par", 0, "with -flat: worker count (0 = GOMAXPROCS)")
		congestRun  = flag.Bool("congest", false, "run the real CONGEST message protocol")
		parallel    = flag.Bool("parallel", false, "with -congest: one goroutine per node")
		sharded     = flag.Bool("sharded", false, "with -congest: fixed worker pool over node shards (large instances)")
		shards      = flag.Int("shards", 0, "with -sharded: shard count (0 = GOMAXPROCS)")
		tcp         = flag.Bool("tcp", false, "with -congest: nodes talk over TCP loopback")
		asJSON      = flag.Bool("json", false, "emit the result as JSON")
		trace       = flag.Bool("trace", false, "print per-iteration dynamics and the phase-timing telemetry report")
		compareRun  = flag.Bool("compare", false, "run the Table 1/2 baselines side by side")
		exactOpt    = flag.Bool("exact-opt", false, "audit against the exact optimum (small instances)")
		genKind     = flag.String("gen", "", "generate an instance instead of solving (uniform, regular, graph, star, lollipop, powerlaw, geompath)")
		genN        = flag.Int("n", 100, "with -gen: vertices (Δ for star/lollipop)")
		genM        = flag.Int("m", 200, "with -gen: edges")
		genF        = flag.Int("f", 3, "with -gen: rank")
		genMaxW     = flag.Int64("maxw", 100, "with -gen: max weight (heavy weight for star/lollipop)")
		genSeed     = flag.Int64("seed", 1, "with -gen: seed")
	)
	flag.Parse()

	if *genKind != "" {
		return generate(os.Stdout, *genKind, *genN, *genM, *genF, *genMaxW, *genSeed)
	}

	var in io.Reader = os.Stdin
	if *inPath != "-" {
		f, err := os.Open(*inPath)
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
	}
	inst, err := distcover.ReadInstance(in)
	if err != nil {
		return err
	}

	var opts []distcover.Option
	if *fApprox {
		opts = append(opts, distcover.WithFApproximation())
	} else {
		opts = append(opts, distcover.WithEpsilon(*eps))
	}
	if *singleLevel {
		opts = append(opts, distcover.WithSingleLevelVariant())
	}
	if *localAlpha {
		opts = append(opts, distcover.WithLocalAlpha())
	}
	if *alpha != 0 {
		opts = append(opts, distcover.WithFixedAlpha(*alpha))
	}
	if *exact {
		opts = append(opts, distcover.WithExactArithmetic())
	}
	// The engine flags are mutually exclusive; without a check the
	// last-applied option would silently win and a benchmark could measure
	// the wrong engine.
	engineFlags := 0
	for _, on := range []bool{*parallel, *sharded, *tcp} {
		if on {
			engineFlags++
		}
	}
	if engineFlags > 1 {
		return fmt.Errorf("-parallel, -sharded and -tcp are mutually exclusive")
	}
	if engineFlags > 0 && !*congestRun {
		return fmt.Errorf("-parallel, -sharded and -tcp select a CONGEST engine and require -congest")
	}
	if *shards != 0 && !*sharded {
		return fmt.Errorf("-shards requires -sharded")
	}
	if *flat && *congestRun {
		return fmt.Errorf("-flat is the direct solver; it cannot be combined with -congest")
	}
	if *par != 0 && !*flat {
		return fmt.Errorf("-par requires -flat")
	}
	if *flat {
		opts = append(opts, distcover.WithFlatEngine(), distcover.WithSolverParallelism(*par))
	}
	if *parallel {
		opts = append(opts, distcover.WithParallelEngine())
	}
	if *sharded {
		opts = append(opts, distcover.WithShardedEngine(), distcover.WithShardCount(*shards))
	}
	if *tcp {
		opts = append(opts, distcover.WithTCPEngine())
	}
	var rec *distcover.TraceRecorder
	if *trace {
		rec = distcover.NewTraceRecorder("")
		opts = append(opts, distcover.WithTrace(), distcover.WithTelemetry(rec))
	}

	if *compareRun {
		return runCompare(inst, opts)
	}

	var (
		sol   *distcover.Solution
		stats *distcover.CongestStats
	)
	if *congestRun {
		sol, stats, err = distcover.SolveCongest(inst, opts...)
	} else {
		sol, err = distcover.Solve(inst, opts...)
	}
	if err != nil {
		return err
	}

	if *asJSON {
		out := struct {
			*distcover.Solution
			Congest *distcover.CongestStats `json:"congest,omitempty"`
			Report  *distcover.TraceReport  `json:"report,omitempty"`
		}{Solution: sol, Congest: stats}
		if rec != nil {
			out.Report = rec.Report()
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(out)
	}

	st := inst.Stats()
	fmt.Printf("instance: n=%d m=%d f=%d Δ=%d W=%d\n",
		st.Vertices, st.Edges, st.Rank, st.MaxDegree, st.WeightSpread)
	fmt.Printf("cover (%d vertices, weight %d): %v\n", len(sol.Cover), sol.Weight, sol.Cover)
	fmt.Printf("certificate: dual lower bound %.4f, ratio ≤ %.4f (guarantee f+ε = %d+%.3g)\n",
		sol.DualLowerBound, sol.RatioBound, st.Rank, sol.Epsilon)
	fmt.Printf("complexity: %d iterations, %d CONGEST rounds, max level %d/%d, α=%.3f\n",
		sol.Iterations, sol.Rounds, sol.MaxLevel, sol.LevelCap, sol.Alpha)
	if stats != nil {
		fmt.Printf("congest: %d rounds, %d messages, %d total bits, max message %d bits\n",
			stats.Rounds, stats.Messages, stats.TotalBits, stats.MaxMessageBits)
		if stats.WireBytes > 0 {
			fmt.Printf("wire: %d bytes over TCP\n", stats.WireBytes)
		}
	}
	if *trace {
		fmt.Println("iteration  joined  covered  level+  raised  stuck  active(v/e)")
		for _, it := range sol.Trace {
			fmt.Printf("%9d  %6d  %7d  %6d  %6d  %5d  %d/%d\n",
				it.Iteration, it.Joined, it.CoveredEdges, it.LevelIncrements,
				it.RaisedEdges, it.StuckVertices, it.ActiveVertices, it.ActiveEdges)
		}
		report, err := json.MarshalIndent(rec.Report(), "", "  ")
		if err != nil {
			return err
		}
		fmt.Printf("telemetry: %s\n", report)
	}
	if *exactOpt {
		if err := auditExact(inst, sol); err != nil {
			return err
		}
	}
	return nil
}

// runCompare prints the side-by-side baseline table.
func runCompare(inst *distcover.Instance, opts []distcover.Option) error {
	rows, err := distcover.Compare(inst, opts...)
	if err != nil {
		return err
	}
	fmt.Printf("%-46s %-12s %10s %8s %7s\n", "algorithm", "guarantee", "weight", "ratio≤", "rounds")
	for _, r := range rows {
		rounds := "-"
		if r.Distributed {
			rounds = fmt.Sprintf("%d", r.Rounds)
		}
		fmt.Printf("%-46s %-12s %10d %8.3f %7s\n",
			r.Algorithm, r.Guarantee, r.Weight, r.CertifiedRatio, rounds)
	}
	return nil
}

// auditExact compares the solution against a branch-and-bound optimum.
func auditExact(inst *distcover.Instance, sol *distcover.Solution) error {
	var buf jsonBuffer
	if _, err := inst.WriteTo(&buf); err != nil {
		return err
	}
	g, err := readHypergraph(buf.data)
	if err != nil {
		return err
	}
	_, opt, err := lp.ExactCover(g, 0)
	if err != nil {
		return fmt.Errorf("exact solver: %w (instance too large for -exact-opt?)", err)
	}
	ratio := 1.0
	if opt > 0 {
		ratio = float64(sol.Weight) / float64(opt)
	}
	fmt.Printf("exact audit: OPT = %d, solution = %d, true ratio = %.4f\n", opt, sol.Weight, ratio)
	return nil
}
