package main

import (
	"context"
	"os"
	"os/exec"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"distcover"
	"distcover/client"
	"distcover/server/api"
)

// TestCrashRecovery is the durability chaos test: it SIGKILLs a coverd
// mid-update-stream and proves the restarted process rehydrates the
// session from its WAL to a state bit-identical to a run that never
// crashed. The kill races a live update on purpose — any acknowledged
// prefix of the stream must survive, an unacknowledged in-flight update
// may or may not, and the server's recovered update count says which; the
// test resumes the stream from there and the final state must still match
// the uninterrupted reference exactly. Gated behind COVERD_CRASH_E2E=1
// because it compiles and forks.
func TestCrashRecovery(t *testing.T) {
	if os.Getenv("COVERD_CRASH_E2E") != "1" {
		t.Skip("set COVERD_CRASH_E2E=1 to run the crash-recovery chaos test")
	}
	bin := filepath.Join(t.TempDir(), "coverd")
	build := exec.Command("go", "build", "-o", bin, ".")
	build.Stderr = os.Stderr
	if err := build.Run(); err != nil {
		t.Fatalf("build coverd: %v", err)
	}
	walDir := t.TempDir()

	// Deterministic instance and update stream, same LCG as the cluster E2E.
	state := uint64(0xDECAF)
	next := func(bound int) int {
		state = state*6364136223846793005 + 1442695040888963407
		return int((state >> 33) % uint64(bound))
	}
	weights := make([]int64, 200)
	for i := range weights {
		weights[i] = int64(1 + next(300))
	}
	edges := make([][]int, 600)
	for e := range edges {
		edges[e] = []int{next(200), next(200), next(200)}
	}
	inst, err := distcover.NewInstance(weights, edges)
	if err != nil {
		t.Fatal(err)
	}
	const batches = 16
	deltas := make([]api.SessionDelta, batches)
	n := 200
	for b := range deltas {
		deltas[b].Weights = []int64{int64(10 + b), int64(20 + b)}
		for i := 0; i < 30; i++ {
			deltas[b].Edges = append(deltas[b].Edges, []int{next(n + 2), next(n), next(n)})
		}
		n += 2
	}

	// The uninterrupted reference: a library session that sees the whole
	// stream with no restart in between.
	ref, err := distcover.NewSession(inst, distcover.WithEpsilon(0.5), distcover.WithFlatEngine())
	if err != nil {
		t.Fatal(err)
	}
	defer ref.Close()
	for _, d := range deltas {
		if _, err := ref.Update(distcover.Delta{Weights: d.Weights, Edges: d.Edges}); err != nil {
			t.Fatal(err)
		}
	}
	want := ref.State()

	cv := startCoverd(t, bin, "-addr", "127.0.0.1:0", "-wal-dir", walDir)
	c := client.New("http://" + cv.httpAddr)
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	si, err := c.CreateSession(ctx, inst, api.SolveOptions{Engine: api.EngineFlat, Epsilon: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	const acked = 3
	for _, d := range deltas[:acked] {
		if _, err := c.UpdateSession(ctx, si.ID, d); err != nil {
			t.Fatal(err)
		}
	}
	// Keep streaming in the background and SIGKILL the daemon while updates
	// are in flight. Errors past this point are expected — the process dies
	// under the client.
	go func() {
		for _, d := range deltas[acked:] {
			if _, err := c.UpdateSession(ctx, si.ID, d); err != nil {
				return
			}
		}
	}()
	time.Sleep(10 * time.Millisecond)
	cv.kill(t)

	cv2 := startCoverd(t, bin, "-addr", "127.0.0.1:0", "-wal-dir", walDir)
	c2 := client.New("http://" + cv2.httpAddr)
	if got := metricInt(t, scrapeMetrics(t, cv2.httpAddr), "coverd_sessions_recovered_total"); got != 1 {
		t.Fatalf("sessions_recovered = %d, want 1", got)
	}
	list, err := c2.Sessions(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(list) != 1 || list[0].ID != si.ID || !list[0].Recovered {
		t.Fatalf("session list after crash: %+v, want recovered %s", list, si.ID)
	}
	applied := list[0].Updates
	if applied < acked || applied > batches {
		t.Fatalf("recovered session has %d updates, want between %d (acked prefix) and %d", applied, acked, batches)
	}
	t.Logf("crash landed after %d/%d durable updates; resuming stream", applied, batches)

	// Resume the stream where the WAL left off; the end state must be
	// indistinguishable from the run that never crashed.
	final := list[0]
	for b := applied; b < batches; b++ {
		up, err := c2.UpdateSession(ctx, si.ID, deltas[b])
		if err != nil {
			t.Fatalf("resume batch %d: %v", b, err)
		}
		final = up.Session
	}
	if final.InstanceHash != want.Hash {
		t.Fatalf("instance hash %s, want %s", final.InstanceHash, want.Hash)
	}
	if !reflect.DeepEqual(final.Result.Cover, want.Solution.Cover) ||
		final.Result.Weight != want.Solution.Weight ||
		final.Result.DualLowerBound != want.Solution.DualLowerBound {
		t.Fatalf("recovered run diverges from uninterrupted run:\n%+v\nvs\n%+v", final.Result, want.Solution)
	}
	if final.Updates != want.Updates {
		t.Fatalf("%d updates, want %d", final.Updates, want.Updates)
	}
	if final.CertifiedBound != want.CertifiedBound {
		t.Fatalf("certified bound %g, want %g", final.CertifiedBound, want.CertifiedBound)
	}
	if final.Result.RatioBound > final.CertifiedBound*(1+1e-9) {
		t.Fatalf("ratio %g exceeds the f(1+ε) certificate %g", final.Result.RatioBound, final.CertifiedBound)
	}

	// A second restart must replay the resumed updates too — recovery is
	// idempotent over its own output.
	cv2.kill(t)
	cv3 := startCoverd(t, bin, "-addr", "127.0.0.1:0", "-wal-dir", walDir)
	c3 := client.New("http://" + cv3.httpAddr)
	again, err := c3.Session(ctx, si.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !again.Recovered || again.Updates != want.Updates ||
		!reflect.DeepEqual(again.Result.Cover, want.Solution.Cover) ||
		again.Result.Weight != want.Solution.Weight {
		t.Fatalf("second recovery diverges: %+v", again)
	}
}
