package main

import (
	"bufio"
	"context"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"distcover"
	"distcover/client"
	"distcover/server/api"
)

// TestClusterE2EProcesses is the CI cluster job: it builds the coverd
// binary, spawns three real daemon processes — two pure peer workers and
// one coordinator configured with -peers — then solves an instance and
// streams three delta batches through the coordinator's HTTP API with the
// "cluster" engine, comparing every step against the coordinator's own
// single-process flat engine. Gated behind COVERD_CLUSTER_E2E=1 because it
// compiles and forks; `go test ./cmd/coverd` stays fast everywhere else.
func TestClusterE2EProcesses(t *testing.T) {
	if os.Getenv("COVERD_CLUSTER_E2E") != "1" {
		t.Skip("set COVERD_CLUSTER_E2E=1 to run the multi-process cluster E2E")
	}
	bin := filepath.Join(t.TempDir(), "coverd")
	build := exec.Command("go", "build", "-o", bin, ".")
	build.Stderr = os.Stderr
	if err := build.Run(); err != nil {
		t.Fatalf("build coverd: %v", err)
	}

	// Two workers serving only the peer protocol (HTTP on an ephemeral
	// port we ignore), everything on 127.0.0.1:0 — no fixed ports.
	peer1 := startCoverd(t, bin, "-addr", "127.0.0.1:0", "-peer-listen", "127.0.0.1:0")
	peer2 := startCoverd(t, bin, "-addr", "127.0.0.1:0", "-peer-listen", "127.0.0.1:0")
	coord := startCoverd(t, bin, "-addr", "127.0.0.1:0", "-peer-listen", "127.0.0.1:0",
		"-peers", peer1.peerAddr+","+peer2.peerAddr)

	c := client.New("http://" + coord.httpAddr)
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	weights := make([]int64, 400)
	state := uint64(0xC0FFEE)
	next := func(bound int) int {
		state = state*6364136223846793005 + 1442695040888963407
		return int((state >> 33) % uint64(bound))
	}
	for i := range weights {
		weights[i] = int64(1 + next(300))
	}
	edges := make([][]int, 1200)
	for e := range edges {
		edges[e] = []int{next(400), next(400), next(400)}
	}
	inst, err := distcover.NewInstance(weights, edges)
	if err != nil {
		t.Fatal(err)
	}

	clusterSess, err := c.CreateSession(ctx, inst, api.SolveOptions{Engine: api.EngineCluster})
	if err != nil {
		t.Fatalf("cluster session: %v", err)
	}
	flatSess, err := c.CreateSession(ctx, inst, api.SolveOptions{Engine: api.EngineFlat})
	if err != nil {
		t.Fatalf("flat session: %v", err)
	}
	requireSameSession(t, "initial solve", clusterSess, flatSess)

	n := 400
	for batch := 0; batch < 3; batch++ {
		var d api.SessionDelta
		d.Weights = []int64{int64(10 + batch), int64(20 + batch)}
		for i := 0; i < 40; i++ {
			d.Edges = append(d.Edges, []int{next(n + 2), next(n), next(n)})
		}
		n += 2
		cu, err := c.UpdateSession(ctx, clusterSess.ID, d)
		if err != nil {
			t.Fatalf("batch %d: cluster update: %v", batch, err)
		}
		fu, err := c.UpdateSession(ctx, flatSess.ID, d)
		if err != nil {
			t.Fatalf("batch %d: flat update: %v", batch, err)
		}
		requireSameSession(t, fmt.Sprintf("batch %d", batch), cu.Session, fu.Session)
		if cu.Session.Result.RatioBound > cu.Session.CertifiedBound*(1+1e-9) {
			t.Fatalf("batch %d: ratio %g exceeds certificate %g",
				batch, cu.Session.Result.RatioBound, cu.Session.CertifiedBound)
		}
	}
}

func requireSameSession(t *testing.T, label string, got, want *api.SessionInfo) {
	t.Helper()
	if got.InstanceHash != want.InstanceHash {
		t.Fatalf("%s: hashes diverge", label)
	}
	if !reflect.DeepEqual(got.Result.Cover, want.Result.Cover) ||
		got.Result.Weight != want.Result.Weight ||
		got.Result.DualLowerBound != want.Result.DualLowerBound {
		t.Fatalf("%s: cluster session diverges from flat:\n%+v\nvs\n%+v", label, got.Result, want.Result)
	}
}

// coverdProc is one spawned daemon with its discovered listen addresses.
type coverdProc struct {
	httpAddr string
	peerAddr string
}

// startCoverd spawns the binary and scans its stderr log for the ephemeral
// HTTP and peer addresses (both listeners bind :0; the log is the only
// place the chosen ports appear).
func startCoverd(t *testing.T, bin string, args ...string) *coverdProc {
	t.Helper()
	cmd := exec.Command(bin, args...)
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		cmd.Process.Kill()
		cmd.Wait()
	})
	p := &coverdProc{}
	var mu sync.Mutex
	ready := make(chan struct{})
	wantPeer := false
	for i, a := range args {
		if a == "-peer-listen" && i+1 < len(args) {
			wantPeer = true
		}
	}
	go func() {
		sc := bufio.NewScanner(stderr)
		signaled := false
		for sc.Scan() {
			line := sc.Text()
			mu.Lock()
			if _, addr, ok := strings.Cut(line, "listening on "); ok && p.httpAddr == "" {
				p.httpAddr = strings.Fields(addr)[0]
			}
			if _, addr, ok := strings.Cut(line, "peer protocol on "); ok && p.peerAddr == "" {
				p.peerAddr = strings.Fields(addr)[0]
			}
			done := p.httpAddr != "" && (!wantPeer || p.peerAddr != "")
			mu.Unlock()
			if done && !signaled {
				signaled = true
				close(ready)
				// Keep draining so the daemon's log writes never block.
			}
		}
	}()
	select {
	case <-ready:
	case <-time.After(30 * time.Second):
		t.Fatalf("coverd %v did not announce its listeners in time", args)
	}
	mu.Lock()
	defer mu.Unlock()
	return &coverdProc{httpAddr: p.httpAddr, peerAddr: p.peerAddr}
}
