package main

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"reflect"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"distcover"
	"distcover/client"
	"distcover/server/api"
)

// TestClusterE2EProcesses is the CI cluster job: it builds the coverd
// binary, spawns three real daemon processes — two pure peer workers and
// one coordinator configured with -peers — then solves an instance and
// streams three delta batches through the coordinator's HTTP API with the
// "cluster" engine, comparing every step against the coordinator's own
// single-process flat engine. Gated behind COVERD_CLUSTER_E2E=1 because it
// compiles and forks; `go test ./cmd/coverd` stays fast everywhere else.
func TestClusterE2EProcesses(t *testing.T) {
	if os.Getenv("COVERD_CLUSTER_E2E") != "1" {
		t.Skip("set COVERD_CLUSTER_E2E=1 to run the multi-process cluster E2E")
	}
	bin := filepath.Join(t.TempDir(), "coverd")
	build := exec.Command("go", "build", "-o", bin, ".")
	build.Stderr = os.Stderr
	if err := build.Run(); err != nil {
		t.Fatalf("build coverd: %v", err)
	}

	// Two workers serving only the peer protocol (HTTP on an ephemeral
	// port we ignore), everything on 127.0.0.1:0 — no fixed ports.
	peer1 := startCoverd(t, bin, "-addr", "127.0.0.1:0", "-peer-listen", "127.0.0.1:0")
	peer2 := startCoverd(t, bin, "-addr", "127.0.0.1:0", "-peer-listen", "127.0.0.1:0")
	coord := startCoverd(t, bin, "-addr", "127.0.0.1:0", "-peer-listen", "127.0.0.1:0",
		"-peers", peer1.peerAddr+","+peer2.peerAddr)

	c := client.New("http://" + coord.httpAddr)
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	weights := make([]int64, 400)
	state := uint64(0xC0FFEE)
	next := func(bound int) int {
		state = state*6364136223846793005 + 1442695040888963407
		return int((state >> 33) % uint64(bound))
	}
	for i := range weights {
		weights[i] = int64(1 + next(300))
	}
	edges := make([][]int, 1200)
	for e := range edges {
		edges[e] = []int{next(400), next(400), next(400)}
	}
	inst, err := distcover.NewInstance(weights, edges)
	if err != nil {
		t.Fatal(err)
	}

	clusterSess, err := c.CreateSession(ctx, inst, api.SolveOptions{Engine: api.EngineCluster})
	if err != nil {
		t.Fatalf("cluster session: %v", err)
	}
	flatSess, err := c.CreateSession(ctx, inst, api.SolveOptions{Engine: api.EngineFlat})
	if err != nil {
		t.Fatalf("flat session: %v", err)
	}
	requireSameSession(t, "initial solve", clusterSess, flatSess)

	n := 400
	for batch := 0; batch < 3; batch++ {
		var d api.SessionDelta
		d.Weights = []int64{int64(10 + batch), int64(20 + batch)}
		for i := 0; i < 40; i++ {
			d.Edges = append(d.Edges, []int{next(n + 2), next(n), next(n)})
		}
		n += 2
		cu, err := c.UpdateSession(ctx, clusterSess.ID, d)
		if err != nil {
			t.Fatalf("batch %d: cluster update: %v", batch, err)
		}
		fu, err := c.UpdateSession(ctx, flatSess.ID, d)
		if err != nil {
			t.Fatalf("batch %d: flat update: %v", batch, err)
		}
		requireSameSession(t, fmt.Sprintf("batch %d", batch), cu.Session, fu.Session)
		if cu.Session.Result.RatioBound > cu.Session.CertifiedBound*(1+1e-9) {
			t.Fatalf("batch %d: ratio %g exceeds certificate %g",
				batch, cu.Session.Result.RatioBound, cu.Session.CertifiedBound)
		}
	}

	// Traced cluster solve: the report must break the run down per
	// iteration and per peer, and its trace id must appear in the slog
	// output of the coordinator and both peer processes.
	traced, err := c.Solve(ctx, inst, api.SolveOptions{Engine: api.EngineCluster, Trace: true})
	if err != nil {
		t.Fatalf("traced cluster solve: %v", err)
	}
	rep := traced.Report
	if rep == nil {
		t.Fatal("trace=true returned no report")
	}
	if rep.TraceID == "" || rep.Engine != "cluster" {
		t.Fatalf("report lacks identity: trace_id=%q engine=%q", rep.TraceID, rep.Engine)
	}
	if len(rep.Iterations) < 2 {
		t.Fatalf("report has %d iteration rows, want per-iteration detail", len(rep.Iterations))
	}
	var waited float64
	for _, it := range rep.Iterations[1:] {
		waited += it.BoundaryWaitSeconds + it.CoverageWaitSeconds
	}
	if waited <= 0 {
		t.Fatal("report iterations carry no exchange wait timings")
	}
	if len(rep.Peers) != 2 {
		t.Fatalf("report has %d peer rows, want 2", len(rep.Peers))
	}
	for _, p := range rep.Peers {
		if p.Exchanges == 0 || p.BytesSent == 0 || p.BytesReceived == 0 {
			t.Fatalf("peer %s row is empty: %+v", p.Peer, p)
		}
	}
	// The untraced sessions above warm the cache for this instance+options
	// identity; the traced solve must still have run for real.
	if traced.Cached {
		t.Fatal("traced solve was served from the cache")
	}

	// slog correlation: one trace id across all three processes.
	deadline := time.Now().Add(10 * time.Second)
	for _, proc := range []struct {
		name string
		p    *coverdProc
	}{{"coordinator", coord}, {"peer1", peer1}, {"peer2", peer2}} {
		for !proc.p.logContains("trace_id=" + rep.TraceID) {
			if time.Now().After(deadline) {
				t.Fatalf("%s log never mentioned trace_id=%s", proc.name, rep.TraceID)
			}
			time.Sleep(50 * time.Millisecond)
		}
	}

	// Every process must expose well-formed Prometheus text with the
	// documented telemetry families; the cluster-exchange series must be
	// populated on the coordinator (per peer address) and on the peers
	// (peer="coordinator").
	for _, proc := range []struct {
		name string
		p    *coverdProc
	}{{"coordinator", coord}, {"peer1", peer1}, {"peer2", peer2}} {
		text := scrapeMetrics(t, proc.p.httpAddr)
		checkExposition(t, proc.name, text)
		if !strings.Contains(text, "coverd_cluster_exchange_seconds_bucket{peer=") {
			t.Fatalf("%s /metrics has no cluster exchange series", proc.name)
		}
		if !strings.Contains(text, `coverd_cluster_frames_total{direction="sent"}`) {
			t.Fatalf("%s /metrics has no cluster frame counters", proc.name)
		}
	}
	coordText := scrapeMetrics(t, coord.httpAddr)
	for _, peerAddr := range []string{peer1.peerAddr, peer2.peerAddr} {
		if !strings.Contains(coordText, fmt.Sprintf("peer=%q", peerAddr)) {
			t.Fatalf("coordinator /metrics lacks exchange series for peer %s", peerAddr)
		}
	}
	for _, p := range []*coverdProc{peer1, peer2} {
		if !strings.Contains(scrapeMetrics(t, p.httpAddr), `engine="cluster-peer"`) {
			t.Fatal("peer /metrics lacks cluster-peer phase series")
		}
	}

	// Instance fabric: the first solve of a fresh instance misses every
	// peer's content-addressed cache exactly once (one re-sync per peer);
	// the repeat ships only the hash and hits everywhere. NoCache keeps the
	// coordinator's result cache from short-circuiting the repeat.
	peerCache := func(p *coverdProc) (hits, misses int) {
		text := scrapeMetrics(t, p.httpAddr)
		return metricInt(t, text, "coverd_peer_instance_cache_hits_total"),
			metricInt(t, text, "coverd_peer_instance_cache_misses_total")
	}
	edges2 := make([][]int, 800)
	for e := range edges2 {
		edges2[e] = []int{next(400), next(400), next(400)}
	}
	inst2, err := distcover.NewInstance(weights, edges2)
	if err != nil {
		t.Fatal(err)
	}
	flat2, err := c.Solve(ctx, inst2, api.SolveOptions{Engine: api.EngineFlat, NoCache: true})
	if err != nil {
		t.Fatal(err)
	}
	h1, m1 := peerCache(peer1)
	h2, m2 := peerCache(peer2)
	clusterOpts := api.SolveOptions{Engine: api.EngineCluster, NoCache: true}
	first2, err := c.Solve(ctx, inst2, clusterOpts)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(first2.Cover, flat2.Cover) || first2.Weight != flat2.Weight {
		t.Fatal("cluster solve of inst2 diverges from flat")
	}
	if h, m := peerCache(peer1); h != h1 || m != m1+1 {
		t.Fatalf("peer1 after first contact: hits %d→%d misses %d→%d, want one miss", h1, h, m1, m)
	}
	if h, m := peerCache(peer2); h != h2 || m != m2+1 {
		t.Fatalf("peer2 after first contact: hits %d→%d misses %d→%d, want one miss", h2, h, m2, m)
	}
	repeat2, err := c.Solve(ctx, inst2, clusterOpts)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(repeat2.Cover, flat2.Cover) || repeat2.Weight != flat2.Weight {
		t.Fatal("repeat cluster solve diverges")
	}
	if h, m := peerCache(peer1); h != h1+1 || m != m1+1 {
		t.Fatalf("peer1 repeat re-synced: hits %d misses %d (want %d/%d)", h, m, h1+1, m1+1)
	}
	if h, m := peerCache(peer2); h != h2+1 || m != m2+1 {
		t.Fatalf("peer2 repeat re-synced: hits %d misses %d (want %d/%d)", h, m, h2+1, m2+1)
	}

	// Peer crash + restart on the same port: the reborn peer's cache is
	// empty, so the coordinator's next solve re-syncs it (a miss on the new
	// process) while the surviving peer keeps hitting.
	h2c, _ := peerCache(peer2)
	peer1.kill(t)
	peer1r := startCoverd(t, bin, "-addr", "127.0.0.1:0", "-peer-listen", peer1.peerAddr)
	after, err := c.Solve(ctx, inst2, clusterOpts)
	if err != nil {
		t.Fatalf("solve after peer restart: %v", err)
	}
	if !reflect.DeepEqual(after.Cover, flat2.Cover) || after.Weight != flat2.Weight {
		t.Fatal("solve after peer restart diverges")
	}
	if h, m := peerCache(peer1r); h != 0 || m != 1 {
		t.Fatalf("restarted peer: hits %d misses %d, want a fresh re-sync (0/1)", h, m)
	}
	if h, _ := peerCache(peer2); h != h2c+1 {
		t.Fatalf("surviving peer stopped hitting after the restart: hits %d→%d", h2c, h)
	}
}

// TestClusterE2EMultiplexed is the multiplexed-config leg of the CI
// cluster job: a coordinator started with -partition 4 over two peer
// worker processes, so each peer carries two partitions on one v3
// connection. It requires bit-identity with the flat engine, a per-peer
// telemetry report whose exchange counts prove both channels of each
// connection ran (2 partitions × 2 exchanges × iterations per peer), and
// populated cluster wire metrics on every process.
func TestClusterE2EMultiplexed(t *testing.T) {
	if os.Getenv("COVERD_CLUSTER_E2E") != "1" {
		t.Skip("set COVERD_CLUSTER_E2E=1 to run the multi-process cluster E2E")
	}
	bin := filepath.Join(t.TempDir(), "coverd")
	build := exec.Command("go", "build", "-o", bin, ".")
	build.Stderr = os.Stderr
	if err := build.Run(); err != nil {
		t.Fatalf("build coverd: %v", err)
	}

	peer1 := startCoverd(t, bin, "-addr", "127.0.0.1:0", "-peer-listen", "127.0.0.1:0")
	peer2 := startCoverd(t, bin, "-addr", "127.0.0.1:0", "-peer-listen", "127.0.0.1:0")
	coord := startCoverd(t, bin, "-addr", "127.0.0.1:0",
		"-peers", peer1.peerAddr+","+peer2.peerAddr, "-partition", "4")

	c := client.New("http://" + coord.httpAddr)
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	weights := make([]int64, 500)
	state := uint64(0xFACADE)
	next := func(bound int) int {
		state = state*6364136223846793005 + 1442695040888963407
		return int((state >> 33) % uint64(bound))
	}
	for i := range weights {
		weights[i] = int64(1 + next(300))
	}
	edges := make([][]int, 1500)
	for e := range edges {
		edges[e] = []int{next(500), next(500), next(500)}
	}
	inst, err := distcover.NewInstance(weights, edges)
	if err != nil {
		t.Fatal(err)
	}

	flat, err := c.Solve(ctx, inst, api.SolveOptions{Engine: api.EngineFlat, NoCache: true})
	if err != nil {
		t.Fatal(err)
	}
	// No Partitions in the request: the server's -partition 4 default
	// applies, four partitions round-robin onto the two peers.
	traced, err := c.Solve(ctx, inst, api.SolveOptions{Engine: api.EngineCluster, NoCache: true, Trace: true})
	if err != nil {
		t.Fatalf("multiplexed cluster solve: %v", err)
	}
	if !reflect.DeepEqual(traced.Cover, flat.Cover) || traced.Weight != flat.Weight ||
		traced.DualLowerBound != flat.DualLowerBound || traced.Iterations != flat.Iterations {
		t.Fatal("multiplexed cluster solve diverges from flat")
	}

	rep := traced.Report
	if rep == nil {
		t.Fatal("trace=true returned no report")
	}
	if len(rep.Peers) != 2 {
		t.Fatalf("report has %d peer rows, want 2 (one per multiplexed connection)", len(rep.Peers))
	}
	for _, p := range rep.Peers {
		// Both channels of this peer's shared connection must have run the
		// full cadence: 2 partitions × 2 exchanges per iteration.
		if want := 2 * 2 * traced.Iterations; p.Exchanges != want {
			t.Fatalf("peer %s: %d exchanges, want %d (2 partitions × 2 exchanges × %d iterations)",
				p.Peer, p.Exchanges, want, traced.Iterations)
		}
		if p.FramesSent == 0 || p.FramesReceived == 0 || p.BytesSent == 0 || p.BytesReceived == 0 {
			t.Fatalf("peer %s row lacks wire accounting: %+v", p.Peer, p)
		}
	}

	// Wire metrics on every process: well-formed exposition, exchange
	// series per peer address on the coordinator, coordinator-facing series
	// plus the cluster-peer phase series on the workers.
	coordText := scrapeMetrics(t, coord.httpAddr)
	checkExposition(t, "coordinator", coordText)
	for _, peerAddr := range []string{peer1.peerAddr, peer2.peerAddr} {
		if !strings.Contains(coordText, fmt.Sprintf("peer=%q", peerAddr)) {
			t.Fatalf("coordinator /metrics lacks exchange series for peer %s", peerAddr)
		}
	}
	for _, proc := range []struct {
		name string
		p    *coverdProc
	}{{"peer1", peer1}, {"peer2", peer2}} {
		text := scrapeMetrics(t, proc.p.httpAddr)
		checkExposition(t, proc.name, text)
		if !strings.Contains(text, "coverd_cluster_exchange_seconds_bucket{peer=") {
			t.Fatalf("%s /metrics has no cluster exchange series", proc.name)
		}
		if !strings.Contains(text, `coverd_cluster_frames_total{direction="sent"}`) {
			t.Fatalf("%s /metrics has no cluster frame counters", proc.name)
		}
		if !strings.Contains(text, `engine="cluster-peer"`) {
			t.Fatalf("%s /metrics lacks cluster-peer phase series", proc.name)
		}
	}
}

// metricInt reads an unlabeled integer counter from a Prometheus scrape.
func metricInt(t *testing.T, text, name string) int {
	t.Helper()
	for _, line := range strings.Split(text, "\n") {
		if v, ok := strings.CutPrefix(line, name+" "); ok {
			n, err := strconv.Atoi(strings.TrimSpace(v))
			if err != nil {
				t.Fatalf("metric %s: bad value %q", name, v)
			}
			return n
		}
	}
	t.Fatalf("metric %s not found in scrape", name)
	return 0
}

// requiredMetricFamilies is the documented metric surface; every name must
// appear with HELP and TYPE on every coverd process.
var requiredMetricFamilies = []string{
	"coverd_solves_total",
	"coverd_cache_hits_total",
	"coverd_cache_misses_total",
	"coverd_backpressure_total",
	"coverd_jobs_submitted_total",
	"coverd_batch_requests_total",
	"coverd_sessions_created_total",
	"coverd_session_updates_total",
	"coverd_peer_instance_cache_hits_total",
	"coverd_peer_instance_cache_misses_total",
	"coverd_sessions_recovered_total",
	"coverd_wal_records_total",
	"coverd_wal_snapshots_total",
	"coverd_ring_forwards_total",
	"coverd_ring_redirects_total",
	"coverd_ring_hops_total",
	"coverd_ring_takeovers_total",
	"coverd_ring_member_down_total",
	"coverd_ring_members",
	"coverd_solve_seconds",
	"coverd_solve_phase_seconds",
	"coverd_cluster_exchange_seconds",
	"coverd_cluster_boundary_bytes_total",
	"coverd_cluster_frames_total",
	"coverd_job_queue_wait_seconds",
	"coverd_queue_depth",
	"coverd_queue_capacity",
	"coverd_workers",
	"coverd_cache_entries",
	"coverd_sessions",
	"coverd_session_bytes",
	"coverd_session_bytes_budget",
}

func scrapeMetrics(t *testing.T, httpAddr string) string {
	t.Helper()
	resp, err := http.Get("http://" + httpAddr + "/metrics")
	if err != nil {
		t.Fatalf("scrape %s: %v", httpAddr, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("scrape %s: status %d, err %v", httpAddr, resp.StatusCode, err)
	}
	return string(body)
}

// checkExposition asserts the scrape parses as Prometheus text exposition
// (every line a HELP/TYPE comment or `name{labels} value`) and that every
// documented family is present.
func checkExposition(t *testing.T, name, text string) {
	t.Helper()
	help := map[string]bool{}
	typed := map[string]bool{}
	for _, line := range strings.Split(strings.TrimRight(text, "\n"), "\n") {
		if line == "" {
			t.Fatalf("%s: blank line in exposition", name)
		}
		if rest, ok := strings.CutPrefix(line, "# HELP "); ok {
			help[strings.Fields(rest)[0]] = true
			continue
		}
		if rest, ok := strings.CutPrefix(line, "# TYPE "); ok {
			f := strings.Fields(rest)
			if len(f) != 2 {
				t.Fatalf("%s: malformed TYPE line %q", name, line)
			}
			typed[f[0]] = true
			continue
		}
		if strings.HasPrefix(line, "#") {
			t.Fatalf("%s: unexpected comment %q", name, line)
		}
		f := strings.Fields(line)
		if len(f) != 2 {
			t.Fatalf("%s: sample line %q is not `name value`", name, line)
		}
		metric := f[0]
		if i := strings.IndexByte(metric, '{'); i >= 0 {
			if !strings.HasSuffix(metric, "}") {
				t.Fatalf("%s: unbalanced label braces in %q", name, line)
			}
			metric = metric[:i]
		}
		base := strings.TrimSuffix(strings.TrimSuffix(strings.TrimSuffix(metric,
			"_bucket"), "_sum"), "_count")
		if !typed[metric] && !typed[base] {
			t.Fatalf("%s: sample %q has no TYPE header", name, line)
		}
	}
	for _, fam := range requiredMetricFamilies {
		if !help[fam] || !typed[fam] {
			t.Fatalf("%s: family %s missing HELP/TYPE (help=%t type=%t)", name, fam, help[fam], typed[fam])
		}
	}
}

func requireSameSession(t *testing.T, label string, got, want *api.SessionInfo) {
	t.Helper()
	if got.InstanceHash != want.InstanceHash {
		t.Fatalf("%s: hashes diverge", label)
	}
	if !reflect.DeepEqual(got.Result.Cover, want.Result.Cover) ||
		got.Result.Weight != want.Result.Weight ||
		got.Result.DualLowerBound != want.Result.DualLowerBound {
		t.Fatalf("%s: cluster session diverges from flat:\n%+v\nvs\n%+v", label, got.Result, want.Result)
	}
}

// coverdProc is one spawned daemon with its discovered listen addresses
// and its captured structured log.
type coverdProc struct {
	httpAddr string
	peerAddr string
	cmd      *exec.Cmd

	mu  sync.Mutex
	log []string
}

// kill SIGKILLs the daemon — no shutdown hooks run, exactly like a crash.
func (p *coverdProc) kill(t *testing.T) {
	t.Helper()
	if err := p.cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	p.cmd.Wait()
}

// logContains reports whether any captured stderr line contains s.
func (p *coverdProc) logContains(s string) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, line := range p.log {
		if strings.Contains(line, s) {
			return true
		}
	}
	return false
}

// logAttr extracts a slog TextHandler `key=value` attribute from a line
// ("" when absent). Values with spaces are quoted by the handler, but the
// addresses and trace ids this test reads never contain them.
func logAttr(line, key string) string {
	for _, f := range strings.Fields(line) {
		if v, ok := strings.CutPrefix(f, key+"="); ok {
			return strings.Trim(v, `"`)
		}
	}
	return ""
}

// startCoverd spawns the binary and scans its stderr slog output for the
// ephemeral HTTP and peer addresses (both listeners bind :0; the log is
// the only place the chosen ports appear). The full stderr keeps being
// captured for trace-id correlation checks.
func startCoverd(t *testing.T, bin string, args ...string) *coverdProc {
	t.Helper()
	cmd := exec.Command(bin, args...)
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		cmd.Process.Kill()
		cmd.Wait()
	})
	p := &coverdProc{cmd: cmd}
	ready := make(chan struct{})
	wantPeer := false
	for i, a := range args {
		if a == "-peer-listen" && i+1 < len(args) {
			wantPeer = true
		}
	}
	go func() {
		sc := bufio.NewScanner(stderr)
		signaled := false
		for sc.Scan() {
			line := sc.Text()
			p.mu.Lock()
			p.log = append(p.log, line)
			if strings.Contains(line, "coverd: listening on") && p.httpAddr == "" {
				p.httpAddr = logAttr(line, "addr")
			}
			if strings.Contains(line, "coverd: peer protocol on") && p.peerAddr == "" {
				p.peerAddr = logAttr(line, "addr")
			}
			done := p.httpAddr != "" && (!wantPeer || p.peerAddr != "")
			p.mu.Unlock()
			if done && !signaled {
				signaled = true
				close(ready)
				// Keep draining so the daemon's log writes never block.
			}
		}
	}()
	select {
	case <-ready:
	case <-time.After(30 * time.Second):
		t.Fatalf("coverd %v did not announce its listeners in time", args)
	}
	return p
}
