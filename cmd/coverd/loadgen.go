package main

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"distcover"
	"distcover/client"
	"distcover/internal/hypergraph"
	"distcover/server"
	"distcover/server/api"
)

type loadgenConfig struct {
	target      string
	requests    int
	concurrency int
	poolSize    int
	genKind     string
	n, m, f     int
	eps         float64
	seed        int64

	// self-host settings (used when target is empty)
	workers    int
	queueDepth int
	cacheSize  int
}

// runLoadgen hammers one or more coverd servers with generated instances
// and prints throughput, latency percentiles and outcome counts. Instances
// are drawn round-robin from a pool smaller than the request count so the
// server's result cache sees repeats. cfg.target takes a comma-separated
// coordinator list: when the targets form a ring (coverd -ring) every
// request is routed to the instance's owning coordinator, otherwise the
// workers round-robin across the targets.
func runLoadgen(w io.Writer, cfg loadgenConfig) error {
	if cfg.requests <= 0 || cfg.concurrency <= 0 || cfg.poolSize <= 0 {
		return fmt.Errorf("loadgen: requests, concurrency and pool must be positive")
	}

	var targets []string
	for _, t := range strings.Split(cfg.target, ",") {
		if t = strings.TrimSpace(t); t != "" {
			targets = append(targets, t)
		}
	}
	var selfHosted *server.Server
	if len(targets) == 0 {
		selfHosted = server.New(server.Config{
			Workers:    cfg.workers,
			QueueDepth: cfg.queueDepth,
			CacheSize:  cfg.cacheSize,
		})
		defer selfHosted.Close()
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return err
		}
		httpSrv := &http.Server{Handler: selfHosted.Handler()}
		go httpSrv.Serve(ln)
		defer httpSrv.Close()
		targets = []string{"http://" + ln.Addr().String()}
		fmt.Fprintf(w, "loadgen: self-hosted coverd at %s (workers=%d)\n", targets[0], selfHosted.Workers())
	}

	instances, err := generatePool(cfg)
	if err != nil {
		return err
	}
	reqs := make([]api.SolveRequest, len(instances))
	for i, inst := range instances {
		raw, err := client.EncodeInstance(inst)
		if err != nil {
			return err
		}
		reqs[i] = api.SolveRequest{Instance: raw, Options: api.SolveOptions{Epsilon: cfg.eps}}
	}

	ctx := context.Background()
	clients := make([]*client.Client, len(targets))
	for i, t := range targets {
		clients[i] = client.New(t)
		if _, err := clients[i].Health(ctx); err != nil {
			return fmt.Errorf("loadgen: server not reachable at %s: %w", t, err)
		}
	}
	// When the targets sit on a coordinator ring, one ring-aware client
	// spreads the load by key ownership — the sharper spread, and it keeps
	// each instance's result cached on exactly one member. Otherwise the
	// workers round-robin across the target list.
	ringAware, err := clients[0].DiscoverRing(ctx)
	if err != nil {
		return fmt.Errorf("loadgen: ring discovery at %s: %w", targets[0], err)
	}
	if ringAware {
		fmt.Fprintf(w, "loadgen: ring of %d coordinators; routing by instance hash\n",
			len(clients[0].RingMembers()))
	} else if len(targets) > 1 {
		fmt.Fprintf(w, "loadgen: %d standalone targets; round-robin\n", len(targets))
	}

	var (
		mu        sync.Mutex
		latencies []time.Duration
		okCount   int
		cached    int
		busy      int
		failed    int
	)
	next := make(chan int)
	go func() {
		for i := 0; i < cfg.requests; i++ {
			next <- i
		}
		close(next)
	}()

	start := time.Now()
	var wg sync.WaitGroup
	for g := 0; g < cfg.concurrency; g++ {
		wg.Add(1)
		c := clients[0]
		if !ringAware {
			c = clients[g%len(clients)]
		}
		go func() {
			defer wg.Done()
			for i := range next {
				req := reqs[i%len(reqs)]
				t0 := time.Now()
				res, err := c.SolveRequest(ctx, req)
				d := time.Since(t0)
				mu.Lock()
				switch {
				case errors.Is(err, client.ErrBusy):
					busy++
				case err != nil:
					failed++
				default:
					okCount++
					latencies = append(latencies, d)
					if res.Cached {
						cached++
					}
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)

	fmt.Fprintf(w, "loadgen: %d requests (%d distinct instances: %s n=%d m=%d f=%d) via %d clients in %v\n",
		cfg.requests, len(reqs), cfg.genKind, cfg.n, cfg.m, cfg.f, cfg.concurrency, elapsed.Round(time.Millisecond))
	fmt.Fprintf(w, "  ok=%d (cached=%d)  busy429=%d  failed=%d  throughput=%.1f req/s\n",
		okCount, cached, busy, failed, float64(okCount)/elapsed.Seconds())
	if len(latencies) > 0 {
		sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
		pct := func(p float64) time.Duration {
			idx := int(p * float64(len(latencies)-1))
			return latencies[idx]
		}
		fmt.Fprintf(w, "  latency p50=%v p90=%v p99=%v max=%v\n",
			pct(0.50).Round(time.Microsecond), pct(0.90).Round(time.Microsecond),
			pct(0.99).Round(time.Microsecond), latencies[len(latencies)-1].Round(time.Microsecond))
	}
	if failed > 0 {
		return fmt.Errorf("loadgen: %d requests failed", failed)
	}
	return nil
}

// generatePool builds the distinct workload instances.
func generatePool(cfg loadgenConfig) ([]*distcover.Instance, error) {
	out := make([]*distcover.Instance, 0, cfg.poolSize)
	for i := 0; i < cfg.poolSize; i++ {
		gc := hypergraph.GenConfig{
			Seed:      cfg.seed + int64(i),
			MaxWeight: 100,
			Dist:      hypergraph.WeightUniformRange,
		}
		var (
			g   *hypergraph.Hypergraph
			err error
		)
		switch cfg.genKind {
		case "uniform":
			g, err = hypergraph.UniformRandom(cfg.n, cfg.m, cfg.f, gc)
		case "regular":
			d := cfg.m * cfg.f / cfg.n
			if d < 1 {
				d = 1
			}
			g, err = hypergraph.RegularLike(cfg.n, d, cfg.f, gc)
		case "powerlaw":
			g, err = hypergraph.PowerLaw(cfg.n, cfg.m, cfg.f, gc)
		case "graph":
			g, err = hypergraph.RandomGraph(cfg.n, cfg.m, gc)
		default:
			return nil, fmt.Errorf("loadgen: unknown generator %q (want uniform, regular, powerlaw, graph)", cfg.genKind)
		}
		if err != nil {
			return nil, err
		}
		inst, err := instanceFromHypergraph(g)
		if err != nil {
			return nil, err
		}
		out = append(out, inst)
	}
	return out, nil
}

// instanceFromHypergraph converts through the public codec: the generators
// live in an internal package, so the instance must enter the public API
// the same way client payloads do.
func instanceFromHypergraph(g *hypergraph.Hypergraph) (*distcover.Instance, error) {
	var buf bytes.Buffer
	if _, err := g.WriteTo(&buf); err != nil {
		return nil, err
	}
	return distcover.ReadInstance(&buf)
}
