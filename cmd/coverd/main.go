// Command coverd runs the distcover solving service: an HTTP/JSON daemon
// with a bounded job queue, a solver worker pool and an LRU instance-result
// cache (see distcover/server for the API).
//
// Usage:
//
//	coverd [-addr :8080] [-workers N] [-queue N] [-cache N] [-max-batch N]
//	       [-peer-listen addr] [-peers a,b,c] [-partition N]
//	       [-ring a,b,c -ring-self a] [-wal-dir DIR] [-snapshot-interval 1m]
//	       [-peer-cache-budget BYTES] [-log-level info] [-pprof]
//	coverd -loadgen [-target URL[,URL...]] [-requests N] [-concurrency C]
//	       [-pool K] [-gen kind] [-n N] [-m M] [-f F] [-eps ε] [-seed S]
//
// The first form serves until interrupted. With -peer-listen the daemon
// additionally speaks the cluster peer protocol, making it usable as a
// worker in a multi-process cover cluster; with -peers it can coordinate
// solves and sessions across such workers (HTTP requests select this with
// "engine":"cluster"). Partitions beyond the peer count share one
// multiplexed connection per peer (protocol v3). With -partition but no
// -peers the cluster engine runs its partitions in-process over a
// shared-memory exchanger — same partition plan, no sockets.
//
// With -ring (the full static membership, identical on every member) and
// -ring-self (this process's advertised host:port, which must appear in
// the list), several coverd processes form a consistent-hash
// coordinator ring: each instance hash and session id has exactly one
// owner, misrouted requests are forwarded or redirected with a single-hop
// guard, and when members share a -wal-dir root a surviving member takes
// over a dead member's sessions by replaying its WAL subdirectory. See
// distcover/server.Config and PROTOCOL.md for the wire semantics.
//
// The second form is a load generator that hammers a
// coverd server with synthetic workloads from the library's instance
// generators; with no -target it self-hosts a server in-process first, so
// `coverd -loadgen` alone demonstrates the full stack. -target accepts a
// comma-separated coordinator list and spreads load ring-aware across it.
// The instance pool
// (-pool) is smaller than -requests, so repeated submissions exercise the
// result cache.
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"distcover/internal/cluster"
	"distcover/server"
)

func main() {
	var (
		addr     = flag.String("addr", ":8080", "listen address")
		workers  = flag.Int("workers", 0, "worker pool size (0 = GOMAXPROCS)")
		queueN   = flag.Int("queue", 256, "job queue bound (full queue ⇒ 429)")
		cacheN   = flag.Int("cache", 1024, "instance-result cache entries (-1 disables)")
		maxBatch = flag.Int("max-batch", 4096, "max requests per batch call")
		sessions = flag.Int("sessions", 128, "max live incremental sessions (secondary cap)")
		sessMem  = flag.Int64("session-mem-budget", 256<<20,
			"byte budget for all live sessions (estimated instance+state size; LRU-evicted beyond; -1 = unbounded)")
		peerListen = flag.String("peer-listen", "",
			"also serve the cluster peer protocol on this address (makes this coverd usable as a cluster worker)")
		peers = flag.String("peers", "",
			"comma-separated peer-protocol addresses of other coverd processes; enables the \"cluster\" engine for solves and sessions")
		partition = flag.Int("partition", 0,
			"default partition count for cluster solves (0 = one per peer; without -peers a positive count runs the partitions in-process over shared memory)")
		ringList = flag.String("ring", "",
			"comma-separated host:port of ALL coordinator ring members (identical on every member; empty = standalone)")
		ringSelf = flag.String("ring-self", "",
			"with -ring: this process's own advertised host:port; must appear in -ring")
		walDir = flag.String("wal-dir", "",
			"make sessions durable: write-ahead log + snapshots in this directory, rehydrated on restart (empty = off)")
		snapEvery = flag.Duration("snapshot-interval", time.Minute,
			"with -wal-dir: how often the WAL is compacted into a snapshot")
		peerCacheBudget = flag.Int64("peer-cache-budget", 0,
			"with -peer-listen: byte budget of the content-addressed instance cache (0 = default 256 MiB)")
		logLevel = flag.String("log-level", "info",
			"minimum structured-log level (debug, info, warn, error)")
		pprofOn = flag.Bool("pprof", false,
			"expose net/http/pprof handlers under /debug/pprof/ (off by default)")

		loadgen     = flag.Bool("loadgen", false, "run the load generator instead of serving")
		target      = flag.String("target", "", "with -loadgen: server URL (empty = self-host in-process)")
		requests    = flag.Int("requests", 500, "with -loadgen: total requests")
		concurrency = flag.Int("concurrency", 16, "with -loadgen: concurrent clients")
		poolSize    = flag.Int("pool", 50, "with -loadgen: distinct instances (duplicates hit the cache)")
		genKind     = flag.String("gen", "uniform", "with -loadgen: workload (uniform, regular, powerlaw, graph)")
		genN        = flag.Int("n", 200, "with -loadgen: vertices per instance")
		genM        = flag.Int("m", 400, "with -loadgen: edges per instance")
		genF        = flag.Int("f", 3, "with -loadgen: rank")
		eps         = flag.Float64("eps", 1, "with -loadgen: approximation slack ε")
		seed        = flag.Int64("seed", 1, "with -loadgen: workload seed")
	)
	flag.Parse()

	if *loadgen {
		cfg := loadgenConfig{
			target:      *target,
			requests:    *requests,
			concurrency: *concurrency,
			poolSize:    *poolSize,
			genKind:     *genKind,
			n:           *genN,
			m:           *genM,
			f:           *genF,
			eps:         *eps,
			seed:        *seed,
			workers:     *workers,
			queueDepth:  *queueN,
			cacheSize:   *cacheN,
		}
		if err := runLoadgen(os.Stdout, cfg); err != nil {
			fmt.Fprintln(os.Stderr, "coverd:", err)
			os.Exit(1)
		}
		return
	}

	var level slog.Level
	if err := level.UnmarshalText([]byte(*logLevel)); err != nil {
		fmt.Fprintln(os.Stderr, "coverd: -log-level:", err)
		os.Exit(1)
	}
	logger := slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: level}))

	var peerAddrs []string
	for _, a := range strings.Split(*peers, ",") {
		if a = strings.TrimSpace(a); a != "" {
			peerAddrs = append(peerAddrs, a)
		}
	}
	var ringMembers []string
	for _, a := range strings.Split(*ringList, ",") {
		if a = strings.TrimSpace(a); a != "" {
			ringMembers = append(ringMembers, a)
		}
	}
	srv, err := server.Open(server.Config{
		Workers:             *workers,
		QueueDepth:          *queueN,
		CacheSize:           *cacheN,
		MaxBatch:            *maxBatch,
		SessionCapacity:     *sessions,
		SessionMemoryBudget: *sessMem,
		ClusterPeers:        peerAddrs,
		ClusterPartitions:   *partition,
		Logger:              logger,
		WALDir:              *walDir,
		RingSelf:            *ringSelf,
		RingMembers:         ringMembers,
		SnapshotInterval:    *snapEvery,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "coverd:", err)
		os.Exit(1)
	}
	defer srv.Close()

	if *peerListen != "" {
		pln, err := net.Listen("tcp", *peerListen)
		if err != nil {
			fmt.Fprintln(os.Stderr, "coverd: peer-listen:", err)
			os.Exit(1)
		}
		peer := cluster.NewPeer()
		peer.Logger = logger
		peer.Tracer = srv.Metrics().ClusterTracer()
		peer.InstanceCacheBudget = *peerCacheBudget
		defer peer.Close()
		go func() {
			// A dead peer listener degrades this process to HTTP-only (a
			// coordinator sees ErrPeerLost and retries elsewhere); it must
			// not take the healthy HTTP side down with it.
			if err := peer.Serve(pln); err != nil && err != cluster.ErrPeerClosed {
				logger.Warn("coverd: peer serve failed; peer mode disabled", "err", err)
			}
		}()
		logger.Info("coverd: peer protocol on", "addr", pln.Addr().String())
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "coverd:", err)
		os.Exit(1)
	}
	logger.Info("coverd: listening on",
		"addr", ln.Addr().String(), "workers", srv.Workers(), "queue", *queueN, "cache", *cacheN, "pprof", *pprofOn)

	handler := srv.Handler()
	if *pprofOn {
		// Profiling stays off unless asked for: the pprof handlers expose
		// internals (command line, heap contents) that do not belong on an
		// open solve endpoint.
		mux := http.NewServeMux()
		mux.Handle("/", handler)
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		handler = mux
	}
	httpSrv := &http.Server{Handler: handler}
	go func() {
		if err := httpSrv.Serve(ln); err != nil && err != http.ErrServerClosed {
			logger.Error("coverd: serve failed", "err", err)
			os.Exit(1)
		}
	}()

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	<-stop
	logger.Info("coverd: shutting down")
	// Let in-flight requests (and the solves they wait on) finish before
	// closing; force-close if draining takes too long.
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(ctx); err != nil {
		httpSrv.Close()
	}
}
