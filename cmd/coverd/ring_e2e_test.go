package main

import (
	"context"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"reflect"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"distcover"
	"distcover/client"
	"distcover/internal/ring"
	"distcover/server/api"
)

// TestRingFailoverE2E is the coordinator-ring CI job: three real coverd
// coordinators joined by -ring over a shared -wal-dir root, plus two
// cluster peer workers behind them. It proves, across processes:
//
//   - every instance is solved by exactly the coordinator its content hash
//     maps to (zero forwards under a ring-aware client), and every session
//     is owned by exactly one coordinator;
//   - a misrouted request succeeds with exactly one extra hop;
//   - the ring composes with the cluster engine (bit-identical to flat);
//   - SIGKILLing a coordinator mid-update-stream loses nothing durable:
//     the surviving live owner adopts the session from the dead member's
//     WAL subdirectory, and resuming the stream from the reported update
//     count converges bit-identically to an uninterrupted library run;
//   - every process keeps serving well-formed /metrics, with the
//     coverd_ring_* families ticking on the survivors.
//
// The client side is goroutine-leak-checked. Gated behind COVERD_RING_E2E=1
// because it compiles and forks; run it under -race.
func TestRingFailoverE2E(t *testing.T) {
	if os.Getenv("COVERD_RING_E2E") != "1" {
		t.Skip("set COVERD_RING_E2E=1 to run the coordinator-ring failover E2E")
	}
	goroutinesBefore := runtime.NumGoroutine()

	bin := filepath.Join(t.TempDir(), "coverd")
	build := exec.Command("go", "build", "-o", bin, ".")
	build.Stderr = os.Stderr
	if err := build.Run(); err != nil {
		t.Fatalf("build coverd: %v", err)
	}
	walRoot := t.TempDir()

	// Ring members must know each other's HTTP addresses at startup, so the
	// ports are reserved up front instead of the usual :0 discovery.
	addrs := freeAddrs(t, 3)
	membership := strings.Join(addrs, ",")
	peer1 := startCoverd(t, bin, "-addr", "127.0.0.1:0", "-peer-listen", "127.0.0.1:0")
	peer2 := startCoverd(t, bin, "-addr", "127.0.0.1:0", "-peer-listen", "127.0.0.1:0")
	coords := make([]*coverdProc, 3)
	for i, a := range addrs {
		coords[i] = startCoverd(t, bin, "-addr", a,
			"-ring", membership, "-ring-self", a,
			"-wal-dir", walRoot,
			"-peers", peer1.peerAddr+","+peer2.peerAddr)
	}
	localRing, err := ring.New(addrs, 0)
	if err != nil {
		t.Fatal(err)
	}
	coordAt := func(addr string) *coverdProc {
		for i, a := range addrs {
			if a == addr {
				return coords[i]
			}
		}
		t.Fatalf("no coordinator at %q", addr)
		return nil
	}

	ctx, cancel := context.WithTimeout(context.Background(), 4*time.Minute)
	defer cancel()

	// Every coordinator advertises the same ring, and each reports itself.
	for i, cd := range coords {
		rc := client.New("http://" + cd.httpAddr)
		on, err := rc.DiscoverRing(ctx)
		if err != nil || !on {
			t.Fatalf("coordinator %d: DiscoverRing on=%v err=%v", i, on, err)
		}
		if got := rc.RingMembers(); !reflect.DeepEqual(got, localRing.Members()) {
			t.Fatalf("coordinator %d membership %v, want %v", i, got, localRing.Members())
		}
		if g := metricInt(t, scrapeMetrics(t, cd.httpAddr), "coverd_ring_members"); g != 3 {
			t.Fatalf("coordinator %d ring_members gauge = %d, want 3", i, g)
		}
	}

	// Deterministic workload, same LCG family as the other E2Es.
	state := uint64(0xB00C)
	next := func(bound int) int {
		state = state*6364136223846793005 + 1442695040888963407
		return int((state >> 33) % uint64(bound))
	}
	genInst := func(n, m int) *distcover.Instance {
		weights := make([]int64, n)
		for i := range weights {
			weights[i] = int64(1 + next(300))
		}
		edges := make([][]int, m)
		for e := range edges {
			edges[e] = []int{next(n), next(n), next(n)}
		}
		inst, err := distcover.NewInstance(weights, edges)
		if err != nil {
			t.Fatal(err)
		}
		return inst
	}

	// Exactly-one-owner for instances: a ring-aware client solves 12
	// distinct instances; each must be solved by precisely the coordinator
	// its hash maps to, with zero ring traffic.
	rc := client.New("http://" + coords[0].httpAddr)
	if on, err := rc.DiscoverRing(ctx); err != nil || !on {
		t.Fatalf("DiscoverRing: on=%v err=%v", on, err)
	}
	wantSolves := map[string]int{}
	var firstInst *distcover.Instance
	for i := 0; i < 12; i++ {
		inst := genInst(120, 300)
		if firstInst == nil {
			firstInst = inst
		}
		if _, err := rc.Solve(ctx, inst, api.SolveOptions{Engine: api.EngineFlat, Epsilon: 0.5}); err != nil {
			t.Fatalf("solve %d: %v", i, err)
		}
		wantSolves[localRing.Owner(inst.Hash())]++
	}
	for i, cd := range coords {
		text := scrapeMetrics(t, cd.httpAddr)
		if got, want := metricInt(t, text, `coverd_solves_total{outcome="ok"}`), wantSolves[addrs[i]]; got != want {
			t.Fatalf("coordinator %d solved %d instances, want %d (its exact arc of the ring)", i, got, want)
		}
		for _, fam := range []string{"coverd_ring_forwards_total", "coverd_ring_redirects_total", "coverd_ring_hops_total"} {
			if v := metricInt(t, text, fam); v != 0 {
				t.Fatalf("coordinator %d %s = %d under a ring-aware client, want 0", i, fam, v)
			}
		}
	}

	// Misrouted solve via a plain client pinned to a non-owner: exactly one
	// extra hop, and the owner's cache answers (it solved it above).
	owner := localRing.Owner(firstInst.Hash())
	var wrong *coverdProc
	for i, a := range addrs {
		if a != owner {
			wrong = coords[i]
			break
		}
	}
	res, err := client.New("http://"+wrong.httpAddr).Solve(ctx, firstInst, api.SolveOptions{Engine: api.EngineFlat, Epsilon: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Cached {
		t.Fatal("misrouted solve was not served from its owner's cache: it did not land on the owner")
	}
	if f := metricInt(t, scrapeMetrics(t, wrong.httpAddr), "coverd_ring_forwards_total"); f != 1 {
		t.Fatalf("sender ring_forwards_total = %d, want exactly 1", f)
	}
	if h := metricInt(t, scrapeMetrics(t, coordAt(owner).httpAddr), "coverd_ring_hops_total"); h != 1 {
		t.Fatalf("owner ring_hops_total = %d, want exactly 1 (one extra hop)", h)
	}

	// Ring × cluster: a cluster-engine solve through the ring matches flat.
	clInst := genInst(200, 500)
	flatRes, err := rc.Solve(ctx, clInst, api.SolveOptions{Engine: api.EngineFlat})
	if err != nil {
		t.Fatal(err)
	}
	clRes, err := rc.Solve(ctx, clInst, api.SolveOptions{Engine: api.EngineCluster, NoCache: true})
	if err != nil {
		t.Fatalf("cluster solve through the ring: %v", err)
	}
	if !reflect.DeepEqual(clRes.Cover, flatRes.Cover) || clRes.Weight != flatRes.Weight {
		t.Fatal("cluster solve through the ring diverges from flat")
	}

	// Sessions: one created on each coordinator. Each id must map back to
	// its creator, and the ring-wide listing must see each exactly once.
	sessInst := genInst(200, 600)
	sessIDs := make([]string, 3)
	for i, cd := range coords {
		si, err := client.New("http://"+cd.httpAddr).CreateSession(ctx, sessInst,
			api.SolveOptions{Engine: api.EngineFlat, Epsilon: 0.5})
		if err != nil {
			t.Fatalf("create on coordinator %d: %v", i, err)
		}
		if got := localRing.Owner(si.ID); got != addrs[i] {
			t.Fatalf("session %s created on %s but owned by %s", si.ID, addrs[i], got)
		}
		sessIDs[i] = si.ID
	}
	listed, err := rc.Sessions(ctx)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	for _, s := range listed {
		counts[s.ID]++
	}
	for i, id := range sessIDs {
		if counts[id] != 1 {
			t.Fatalf("session %d (%s) listed %d times across the ring, want exactly 1", i, id, counts[id])
		}
	}

	// ── Chaos: SIGKILL coordinator 0 mid-update-stream. ──
	// The uninterrupted reference: a library session over the same stream.
	const batches = 16
	deltas := make([]api.SessionDelta, batches)
	n := 200
	for b := range deltas {
		deltas[b].Weights = []int64{int64(10 + b), int64(20 + b)}
		// Batches big enough that the stream is still in flight when the
		// kill lands a few ms in.
		for i := 0; i < 120; i++ {
			deltas[b].Edges = append(deltas[b].Edges, []int{next(n + 2), next(n), next(n)})
		}
		n += 2
	}
	ref, err := distcover.NewSession(sessInst, distcover.WithEpsilon(0.5), distcover.WithFlatEngine())
	if err != nil {
		t.Fatal(err)
	}
	defer ref.Close()
	for _, d := range deltas {
		if _, err := ref.Update(distcover.Delta{Weights: d.Weights, Edges: d.Edges}); err != nil {
			t.Fatal(err)
		}
	}
	want := ref.State()

	victimID := sessIDs[0] // owned by coordinator 0
	const acked = 3
	for _, d := range deltas[:acked] {
		if _, err := rc.UpdateSession(ctx, victimID, d); err != nil {
			t.Fatal(err)
		}
	}
	// Stream the rest in the background and SIGKILL the owner while an
	// update is in flight. The ring-aware client does NOT replay an update
	// that died mid-request (ambiguous outcome), so the goroutine stops at
	// the first error and the recovered update count says where to resume.
	var streamWG sync.WaitGroup
	streamWG.Add(1)
	go func() {
		defer streamWG.Done()
		for _, d := range deltas[acked:] {
			if _, err := rc.UpdateSession(ctx, victimID, d); err != nil {
				return
			}
		}
	}()
	time.Sleep(10 * time.Millisecond)
	coords[0].kill(t)
	streamWG.Wait()

	// A survivor-pointed ring-aware client finds the session: its first
	// attempt dials the dead owner, the hop-marked fallback lands on a
	// survivor, and the live owner adopts from the dead member's WAL dir.
	vc := client.New("http://" + coords[1].httpAddr)
	if on, err := vc.DiscoverRing(ctx); err != nil || !on {
		t.Fatalf("survivor DiscoverRing: on=%v err=%v", on, err)
	}
	adopted, err := vc.Session(ctx, victimID)
	if err != nil {
		t.Fatalf("survivors did not take over the session: %v", err)
	}
	if !adopted.Recovered {
		t.Fatal("adopted session not marked Recovered")
	}
	applied := adopted.Updates
	if applied < acked || applied > batches {
		t.Fatalf("adopted session has %d updates, want between %d (acked prefix) and %d", applied, acked, batches)
	}
	t.Logf("kill landed after %d/%d durable updates; resuming on the survivors", applied, batches)

	final := adopted
	for b := applied; b < batches; b++ {
		up, err := vc.UpdateSession(ctx, victimID, deltas[b])
		if err != nil {
			t.Fatalf("resume batch %d: %v", b, err)
		}
		final = up.Session
	}
	if final.InstanceHash != want.Hash {
		t.Fatalf("instance hash %s, want %s", final.InstanceHash, want.Hash)
	}
	if !reflect.DeepEqual(final.Result.Cover, want.Solution.Cover) ||
		final.Result.Weight != want.Solution.Weight ||
		final.Result.DualLowerBound != want.Solution.DualLowerBound {
		t.Fatalf("takeover run diverges from uninterrupted run:\n%+v\nvs\n%+v", final.Result, want.Solution)
	}
	if final.Updates != want.Updates || final.CertifiedBound != want.CertifiedBound {
		t.Fatalf("updates/bound %d/%g, want %d/%g", final.Updates, final.CertifiedBound, want.Updates, want.CertifiedBound)
	}

	// Survivors: takeover and down-marking visible in coverd_ring_*, the
	// untouched sessions still each owned exactly once, exposition intact
	// on every surviving process (peers included).
	takeovers, downs := 0, 0
	for _, cd := range coords[1:] {
		text := scrapeMetrics(t, cd.httpAddr)
		takeovers += metricInt(t, text, "coverd_ring_takeovers_total")
		downs += metricInt(t, text, "coverd_ring_member_down_total")
	}
	if takeovers < 1 {
		t.Fatalf("ring_takeovers_total across survivors = %d, want ≥ 1", takeovers)
	}
	if downs < 1 {
		t.Fatalf("ring_member_down_total across survivors = %d, want ≥ 1", downs)
	}
	listed, err = vc.Sessions(ctx)
	if err != nil {
		t.Fatal(err)
	}
	counts = map[string]int{}
	for _, s := range listed {
		counts[s.ID]++
	}
	for _, id := range sessIDs {
		if counts[id] != 1 {
			t.Fatalf("after takeover session %s listed %d times, want exactly 1", id, counts[id])
		}
	}
	for _, proc := range []struct {
		name string
		p    *coverdProc
	}{{"coordinator1", coords[1]}, {"coordinator2", coords[2]}, {"peer1", peer1}, {"peer2", peer2}} {
		checkExposition(t, proc.name, scrapeMetrics(t, proc.p.httpAddr))
	}

	// Client-side goroutine hygiene: kill everything, drop idle keep-alive
	// connections, and require the count to return to the baseline.
	for _, p := range []*coverdProc{coords[1], coords[2], peer1, peer2} {
		p.kill(t)
	}
	if tr, ok := http.DefaultTransport.(*http.Transport); ok {
		tr.CloseIdleConnections()
	}
	deadline := time.Now().Add(10 * time.Second)
	for runtime.NumGoroutine() > goroutinesBefore && time.Now().Before(deadline) {
		time.Sleep(50 * time.Millisecond)
	}
	if now := runtime.NumGoroutine(); now > goroutinesBefore {
		buf := make([]byte, 1<<20)
		m := runtime.Stack(buf, true)
		t.Fatalf("goroutines leaked on the client side: %d before, %d after\n%s",
			goroutinesBefore, now, buf[:m])
	}
}

// freeAddrs reserves n distinct loopback host:port addresses by binding
// and immediately releasing them. The tiny bind race is the standard
// price for processes that must know each other's addresses at startup.
func freeAddrs(t *testing.T, n int) []string {
	t.Helper()
	addrs := make([]string, n)
	for i := range addrs {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		addrs[i] = ln.Addr().String()
		ln.Close()
	}
	return addrs
}
