package distcover

import (
	"fmt"

	"distcover/internal/baseline"
	"distcover/internal/baseline/kmw"
	"distcover/internal/baseline/kvy"
	"distcover/internal/baseline/ky"
	"distcover/internal/baseline/local"
	"distcover/internal/core"
	"distcover/internal/lp"
)

// CompareResult is one algorithm's measured outcome in Compare.
type CompareResult struct {
	// Algorithm names the algorithm (paper reference in brackets).
	Algorithm string
	// Guarantee is the proven approximation factor.
	Guarantee string
	// Weight is the cover weight the algorithm found.
	Weight int64
	// CertifiedRatio is weight divided by the algorithm's dual lower bound
	// (or the greedy dual bound for algorithms without a certificate).
	CertifiedRatio float64
	// Rounds is the CONGEST round count (0 for sequential references).
	Rounds int
	// Distributed reports whether the algorithm is a distributed protocol.
	Distributed bool
}

// Compare runs this paper's algorithm side by side with the baseline
// families cited in its Tables 1 and 2 — KVY [15], randomized KY [16],
// weight-scaled KMW [18], local-ratio coloring [2], plus the sequential
// Bar-Yehuda–Even and greedy references — on the given instance, and
// returns one row per algorithm. Options configure this paper's algorithm
// only (ε, variant, α policy); baselines run with ε = 1.
//
// Compare is how the repository's Table 1/Table 2 reproductions are built;
// see cmd/benchharness for full parameter sweeps.
func Compare(in *Instance, opts ...Option) ([]CompareResult, error) {
	if in == nil {
		return nil, ErrNilInstance
	}
	cfg := buildOptions(opts)
	g := in.g
	ratioOf := func(w int64, dual float64) float64 {
		if dual <= 0 {
			if w == 0 {
				return 1
			}
			return 0
		}
		return float64(w) / dual
	}
	var out []CompareResult

	res, err := core.Run(g, cfg)
	if err != nil {
		return nil, fmt.Errorf("distcover: %w", err)
	}
	out = append(out, CompareResult{
		Algorithm:      "this work (Ben-Basat et al. PODC 2019)",
		Guarantee:      fmt.Sprintf("f+ε = %d+%.3g", maxRank(g.Rank()), res.Epsilon),
		Weight:         res.CoverWeight,
		CertifiedRatio: res.RatioBound,
		Rounds:         res.Rounds,
		Distributed:    true,
	})

	kv, err := kvy.Run(g, 1)
	if err != nil {
		return nil, fmt.Errorf("distcover: kvy baseline: %w", err)
	}
	out = append(out, CompareResult{
		Algorithm:      "Khuller-Vishkin-Young [15]",
		Guarantee:      "f+1",
		Weight:         kv.CoverWeight,
		CertifiedRatio: ratioOf(kv.CoverWeight, kv.DualValue),
		Rounds:         kv.Rounds,
		Distributed:    true,
	})

	kyRes, err := ky.Run(g, 1, 1)
	if err != nil {
		return nil, fmt.Errorf("distcover: ky baseline: %w", err)
	}
	out = append(out, CompareResult{
		Algorithm:      "Koufogiannakis-Young style [16] (randomized)",
		Guarantee:      "f+1",
		Weight:         kyRes.CoverWeight,
		CertifiedRatio: ratioOf(kyRes.CoverWeight, kyRes.DualValue),
		Rounds:         kyRes.Rounds,
		Distributed:    true,
	})

	km, err := kmw.Run(g, 1)
	if err != nil {
		return nil, fmt.Errorf("distcover: kmw baseline: %w", err)
	}
	out = append(out, CompareResult{
		Algorithm:      "Kuhn-Moscibroda-Wattenhofer style [18]",
		Guarantee:      "f+1",
		Weight:         km.CoverWeight,
		CertifiedRatio: ratioOf(km.CoverWeight, km.DualValue),
		Rounds:         km.Rounds,
		Distributed:    true,
	})

	loc := local.Run(g)
	out = append(out, CompareResult{
		Algorithm:      "Åstrand-Suomela style [2]",
		Guarantee:      "f",
		Weight:         loc.CoverWeight,
		CertifiedRatio: ratioOf(loc.CoverWeight, loc.DualValue),
		Rounds:         loc.Rounds,
		Distributed:    true,
	})

	bye := baseline.BarYehudaEven(g)
	out = append(out, CompareResult{
		Algorithm:      "Bar-Yehuda-Even (sequential local ratio)",
		Guarantee:      "f",
		Weight:         bye.CoverWeight,
		CertifiedRatio: ratioOf(bye.CoverWeight, bye.DualValue),
	})

	gr := baseline.Greedy(g)
	out = append(out, CompareResult{
		Algorithm:      "greedy (sequential)",
		Guarantee:      "H_m",
		Weight:         gr.CoverWeight,
		CertifiedRatio: ratioOf(gr.CoverWeight, lp.GreedyDualBound(g)),
	})
	return out, nil
}

func maxRank(f int) int {
	if f < 1 {
		return 1
	}
	return f
}
