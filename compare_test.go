package distcover

import (
	"errors"
	"strings"
	"testing"
)

func TestCompareRunsAllAlgorithms(t *testing.T) {
	inst, err := NewInstance(
		[]int64{5, 3, 8, 2, 9, 4, 7, 6},
		[][]int{{0, 1, 2}, {2, 3}, {3, 4, 5}, {0, 5}, {1, 4}, {6, 7}, {2, 6}},
	)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := Compare(inst, WithEpsilon(0.5))
	if err != nil {
		t.Fatalf("Compare: %v", err)
	}
	if len(rows) != 7 {
		t.Fatalf("got %d rows, want 7", len(rows))
	}
	f := float64(inst.Stats().Rank)
	for _, row := range rows {
		if row.Weight <= 0 {
			t.Errorf("%s: weight %d", row.Algorithm, row.Weight)
		}
		if row.Distributed && row.Rounds <= 0 {
			t.Errorf("%s: distributed but rounds = %d", row.Algorithm, row.Rounds)
		}
		if !row.Distributed && row.Rounds != 0 {
			t.Errorf("%s: sequential but rounds = %d", row.Algorithm, row.Rounds)
		}
		// Primal-dual certificates must respect their guarantees;
		// greedy's ratio is only an estimate against the greedy dual.
		if !strings.HasPrefix(row.Algorithm, "greedy") && row.CertifiedRatio > f+1+1e-9 {
			t.Errorf("%s: certified ratio %f exceeds f+1 = %f",
				row.Algorithm, row.CertifiedRatio, f+1)
		}
	}
	if !strings.Contains(rows[0].Algorithm, "this work") {
		t.Errorf("first row should be this work, got %s", rows[0].Algorithm)
	}
}

func TestCompareNil(t *testing.T) {
	if _, err := Compare(nil); !errors.Is(err, ErrNilInstance) {
		t.Errorf("Compare(nil) = %v", err)
	}
}

func TestWithTrace(t *testing.T) {
	inst := triangleInstance(t)
	sol, err := Solve(inst, WithTrace())
	if err != nil {
		t.Fatal(err)
	}
	if len(sol.Trace) != sol.Iterations {
		t.Fatalf("trace length %d != iterations %d", len(sol.Trace), sol.Iterations)
	}
	totalJoined := 0
	for i, it := range sol.Trace {
		if it.Iteration != i+1 {
			t.Errorf("trace[%d].Iteration = %d", i, it.Iteration)
		}
		totalJoined += it.Joined
	}
	if totalJoined != len(sol.Cover) {
		t.Errorf("trace joins %d != cover size %d", totalJoined, len(sol.Cover))
	}
	// Last iteration must leave no active edges.
	if last := sol.Trace[len(sol.Trace)-1]; last.ActiveEdges != 0 {
		t.Errorf("final active edges = %d", last.ActiveEdges)
	}
}

func TestWithInvariantChecks(t *testing.T) {
	inst := triangleInstance(t)
	if _, err := Solve(inst, WithInvariantChecks()); err != nil {
		t.Errorf("invariant-checked solve failed: %v", err)
	}
	if _, err := Solve(inst, WithInvariantChecks(), WithExactArithmetic()); err != nil {
		t.Errorf("exact invariant-checked solve failed: %v", err)
	}
}
