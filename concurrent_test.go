package distcover_test

import (
	"sync"
	"testing"

	"distcover"
)

// TestConcurrentSolveSharedInstance verifies that one *Instance can be
// solved by many goroutines at once (run with -race): instances are
// immutable after construction, which is what lets the coverd server share
// a cached instance across its whole worker pool.
func TestConcurrentSolveSharedInstance(t *testing.T) {
	inst, err := distcover.NewInstance(
		[]int64{4, 2, 9, 3, 7, 1, 6, 2, 8, 5},
		[][]int{
			{0, 1, 2}, {1, 3, 4}, {2, 4, 5}, {0, 5, 6}, {3, 6, 7},
			{4, 7, 8}, {5, 8, 9}, {0, 9, 1}, {2, 7, 9}, {3, 5, 8},
		},
	)
	if err != nil {
		t.Fatal(err)
	}

	ref, err := distcover.Solve(inst, distcover.WithEpsilon(0.5))
	if err != nil {
		t.Fatal(err)
	}

	const goroutines = 16
	const iterations = 8
	var wg sync.WaitGroup
	errCh := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iterations; i++ {
				sol, err := distcover.Solve(inst, distcover.WithEpsilon(0.5))
				if err != nil {
					errCh <- err
					return
				}
				// The algorithm is deterministic, so concurrent runs must
				// agree exactly with the reference solution.
				if sol.Weight != ref.Weight || sol.Iterations != ref.Iterations {
					t.Errorf("concurrent run diverged: weight %d/%d iterations %d/%d",
						sol.Weight, ref.Weight, sol.Iterations, ref.Iterations)
					return
				}
				if !inst.IsCover(sol.Cover) {
					t.Error("concurrent run returned infeasible cover")
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}
}

// TestConcurrentSolveCongestSharedInstance does the same through the real
// message protocol, mixing the sequential and parallel engines.
func TestConcurrentSolveCongestSharedInstance(t *testing.T) {
	inst, err := distcover.NewInstance(
		[]int64{3, 1, 4, 1, 5, 9, 2, 6},
		[][]int{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}, {5, 6}, {6, 7}, {7, 0}, {0, 4}, {2, 6}},
	)
	if err != nil {
		t.Fatal(err)
	}
	ref, _, err := distcover.SolveCongest(inst, distcover.WithEpsilon(1))
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	errCh := make(chan error, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			opts := []distcover.Option{distcover.WithEpsilon(1)}
			if g%2 == 1 {
				opts = append(opts, distcover.WithParallelEngine())
			}
			sol, _, err := distcover.SolveCongest(inst, opts...)
			if err != nil {
				errCh <- err
				return
			}
			if sol.Weight != ref.Weight {
				t.Errorf("engine run diverged: weight %d want %d", sol.Weight, ref.Weight)
			}
		}(g)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}
}

// TestConcurrentHash verifies Instance.Hash is safe and stable under
// concurrent use alongside solves.
func TestConcurrentHash(t *testing.T) {
	inst, err := distcover.NewInstance([]int64{2, 3, 5}, [][]int{{0, 1}, {1, 2}})
	if err != nil {
		t.Fatal(err)
	}
	want := inst.Hash()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				if got := inst.Hash(); got != want {
					t.Errorf("hash changed under concurrency: %s", got)
					return
				}
			}
		}()
	}
	wg.Wait()
}
