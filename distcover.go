// Package distcover is a Go implementation of the time-optimal distributed
// covering algorithms of Ben-Basat, Even, Kawarabayashi and Schwartzman,
// "Optimal Distributed Covering Algorithms" (PODC 2019).
//
// The library computes (f+ε)-approximate minimum weight vertex covers in
// hypergraphs of rank f — equivalently, weighted set covers with element
// frequency at most f — with a deterministic distributed algorithm for the
// CONGEST model whose round complexity O(logΔ/loglogΔ) for constant f and
// ε is optimal and independent of both the vertex weights and the number
// of vertices. General covering integer programs are solved through the
// paper's reductions (Section 5).
//
// # Quick start
//
//	inst, err := distcover.NewInstance(
//		[]int64{3, 1, 4},                    // vertex weights
//		[][]int{{0, 1}, {1, 2}, {0, 2}},     // hyperedges
//	)
//	if err != nil { ... }
//	sol, err := distcover.Solve(inst, distcover.WithEpsilon(0.5))
//	if err != nil { ... }
//	fmt.Println(sol.Cover, sol.Weight, sol.RatioBound)
//
// Solve runs a fast in-process simulation. SolveCongest executes the real
// message protocol on a simulated CONGEST network (every node a goroutine
// if you pick the parallel engine) and reports rounds, message counts and
// message sizes.
//
// The returned Solution always carries a per-run certificate: a feasible
// dual packing whose value lower-bounds the optimum, so
// Weight ≤ RatioBound × OPT holds unconditionally with
// RatioBound ≤ f+ε (Corollary 3 of the paper).
package distcover

import (
	"errors"
	"fmt"
	"io"

	"distcover/internal/congest"
	"distcover/internal/core"
	"distcover/internal/hypergraph"
)

// Instance is a weighted hypergraph vertex cover (= bounded-frequency set
// cover) instance. Create one with NewInstance, NewSetCoverInstance or
// ReadInstance.
type Instance struct {
	g *hypergraph.Hypergraph
}

// NewInstance builds an instance from vertex weights and hyperedges. Every
// edge must be non-empty and reference valid vertices; weights must be
// positive. Edge vertex lists are deduplicated.
func NewInstance(weights []int64, edges [][]int) (*Instance, error) {
	b := hypergraph.NewBuilder(len(weights), len(edges))
	for _, w := range weights {
		b.AddVertex(w)
	}
	for _, edge := range edges {
		vs := make([]hypergraph.VertexID, len(edge))
		for i, v := range edge {
			vs[i] = hypergraph.VertexID(v)
		}
		b.AddEdge(vs...)
	}
	g, err := b.Build()
	if err != nil {
		return nil, fmt.Errorf("distcover: %w", err)
	}
	return &Instance{g: g}, nil
}

// NewSetCoverInstance builds an instance from a weighted set cover problem:
// sets[i] lists the elements (0..numElements-1) that set i covers, costs[i]
// its cost. Element frequency becomes the hypergraph rank f. Solving the
// instance returns the chosen set indices as the cover.
func NewSetCoverInstance(numElements int, sets [][]int, costs []int64) (*Instance, error) {
	g, err := hypergraph.SetCoverInstance(numElements, sets, costs)
	if err != nil {
		return nil, fmt.Errorf("distcover: %w", err)
	}
	return &Instance{g: g}, nil
}

// ReadInstance parses the JSON form {"weights":[...],"edges":[[...]]}.
func ReadInstance(r io.Reader) (*Instance, error) {
	g, err := hypergraph.ReadFrom(r)
	if err != nil {
		return nil, fmt.Errorf("distcover: %w", err)
	}
	return &Instance{g: g}, nil
}

// WriteTo serializes the instance as JSON.
func (in *Instance) WriteTo(w io.Writer) (int64, error) { return in.g.WriteTo(w) }

// Hash returns a canonical content hash of the instance (hex SHA-256 over a
// normalized encoding of weights and edges). Instances describing the same
// mathematical problem — regardless of edge order, vertex order within an
// edge, or serialization formatting — hash identically, so the hash is a
// sound key for caching solver results.
func (in *Instance) Hash() string { return in.g.Hash() }

// Stats summarizes the structural parameters of an instance.
type Stats struct {
	Vertices     int
	Edges        int
	Rank         int   // f: maximum edge size / element frequency
	MaxDegree    int   // Δ: maximum vertex degree
	WeightSpread int64 // W: max weight / min weight
}

// Stats returns the instance parameters the round bounds depend on.
func (in *Instance) Stats() Stats {
	return Stats{
		Vertices:     in.g.NumVertices(),
		Edges:        in.g.NumEdges(),
		Rank:         in.g.Rank(),
		MaxDegree:    in.g.MaxDegree(),
		WeightSpread: in.g.WeightSpread(),
	}
}

// IsCover reports whether the given vertex set stabs every edge.
func (in *Instance) IsCover(cover []int) bool {
	vs := make([]hypergraph.VertexID, len(cover))
	for i, v := range cover {
		vs[i] = hypergraph.VertexID(v)
	}
	return in.g.IsCover(vs)
}

// CoverWeight returns the total weight of the given vertex set.
func (in *Instance) CoverWeight(cover []int) int64 {
	vs := make([]hypergraph.VertexID, len(cover))
	for i, v := range cover {
		vs[i] = hypergraph.VertexID(v)
	}
	return in.g.CoverWeight(vs)
}

// Solution is the output of Solve and SolveCongest.
type Solution struct {
	// Cover lists the chosen vertices (set indices for set cover
	// instances), ascending.
	Cover []int
	// Weight is the total cover weight.
	Weight int64
	// DualLowerBound is the value of the feasible dual packing the
	// algorithm produces; no cover can weigh less.
	DualLowerBound float64
	// RatioBound = Weight / DualLowerBound certifies the realized
	// approximation factor for this run (≤ f+ε).
	RatioBound float64
	// Epsilon is the effective ε (resolved when WithFApproximation is on).
	Epsilon float64
	// Iterations and Rounds measure the distributed complexity: Rounds is
	// the CONGEST round count (2 per iteration plus initialization).
	Iterations int
	Rounds     int
	// MaxLevel and LevelCap expose the level mechanism (ℓ(v) < z).
	MaxLevel int
	LevelCap int
	// Alpha is the bid multiplier chosen by Theorem 9 (0 with
	// WithLocalAlpha, where each edge picks its own).
	Alpha float64
	// Trace holds per-iteration statistics when WithTrace is set.
	Trace []IterationTrace
}

// IterationTrace records one iteration of a traced run.
type IterationTrace struct {
	// Iteration is the 1-based iteration index.
	Iteration int
	// Joined counts vertices that became β-tight and entered the cover.
	Joined int
	// CoveredEdges counts edges newly covered.
	CoveredEdges int
	// LevelIncrements is the total number of vertex level increments.
	LevelIncrements int
	// RaisedEdges counts edges that multiplied their bid by α.
	RaisedEdges int
	// StuckVertices counts vertices that reported "stuck".
	StuckVertices int
	// ActiveVertices and ActiveEdges count nodes still running afterwards.
	ActiveVertices int
	ActiveEdges    int
}

// CongestStats reports the communication cost measured by SolveCongest.
type CongestStats struct {
	// Rounds is the number of synchronous rounds to global termination.
	Rounds int
	// Messages is the total number of messages delivered.
	Messages int64
	// TotalBits is the sum of message sizes.
	TotalBits int64
	// MaxMessageBits is the largest message observed; the engine enforces
	// the O(log n) CONGEST budget, so this never exceeds it.
	MaxMessageBits int
	// WireBytes is the real TCP traffic when WithTCPEngine is used
	// (0 for the in-memory engines).
	WireBytes int64
}

// ErrNilInstance is returned when a nil instance is solved.
var ErrNilInstance = errors.New("distcover: nil instance")

// Solve runs Algorithm MWHVC on the instance with the fast lockstep
// simulator and returns the cover with its certificate and measured
// distributed complexity. With WithFlatEngine the lockstep iterations run
// chunk-parallel over the instance's CSR arrays instead — bit-identical
// results, wall-clock scaling with cores. With WithClusterPartitions (and
// no peers) the solve runs the in-process partitioned engine: co-located
// partitions over a shared-memory exchanger, again bit-identical.
func Solve(in *Instance, opts ...Option) (*Solution, error) {
	if in == nil {
		return nil, ErrNilInstance
	}
	cfg := optConfig(opts)
	if len(cfg.clusterPeers) == 0 && cfg.clusterParts > 0 {
		res, err := clusterRunLocal(in.g, cfg, nil)
		if err != nil {
			return nil, err
		}
		return solutionFromResult(res), nil
	}
	engine := "sim"
	if cfg.flat {
		engine = "flat"
	}
	stop := cfg.startSpan(engine)
	var (
		res *core.Result
		err error
	)
	if cfg.flat {
		res, err = core.RunFlat(in.g, cfg.core, cfg.parallelism)
	} else {
		res, err = core.Run(in.g, cfg.core)
	}
	stop()
	if err != nil {
		return nil, fmt.Errorf("distcover: %w", err)
	}
	return solutionFromResult(res), nil
}

// SolveCongest runs the actual Appendix B message protocol on a simulated
// CONGEST network and returns the solution together with communication
// metrics. With WithParallelEngine every network node runs as its own
// goroutine; results are identical to the default deterministic engine.
func SolveCongest(in *Instance, opts ...Option) (*Solution, *CongestStats, error) {
	if in == nil {
		return nil, nil, ErrNilInstance
	}
	ecfg := optConfig(opts)
	stop := ecfg.startSpan(ecfg.congestEngineName())
	cfg := ecfg.core
	res, metrics, err := core.RunCongest(in.g, cfg, ecfg.buildEngine(), congest.Options{Validate: true})
	stop()
	if err != nil {
		return nil, nil, fmt.Errorf("distcover: %w", err)
	}
	return solutionFromResult(res), &CongestStats{
		Rounds:         metrics.Rounds,
		Messages:       metrics.Messages,
		TotalBits:      metrics.TotalBits,
		MaxMessageBits: metrics.MaxMessageBits,
		WireBytes:      metrics.WireBytes,
	}, nil
}

func solutionFromResult(res *core.Result) *Solution {
	sol := &Solution{
		Cover:          make([]int, len(res.Cover)),
		Weight:         res.CoverWeight,
		DualLowerBound: res.DualValue,
		RatioBound:     res.RatioBound,
		Epsilon:        res.Epsilon,
		Iterations:     res.Iterations,
		Rounds:         res.Rounds,
		MaxLevel:       res.MaxLevel,
		LevelCap:       res.Z,
		Alpha:          res.Alpha,
	}
	for i, v := range res.Cover {
		sol.Cover[i] = int(v)
	}
	for _, it := range res.Trace {
		sol.Trace = append(sol.Trace, IterationTrace{
			Iteration:       it.Iteration,
			Joined:          it.Joined,
			CoveredEdges:    it.CoveredEdges,
			LevelIncrements: it.LevelIncrements,
			RaisedEdges:     it.RaisedEdges,
			StuckVertices:   it.StuckVertices,
			ActiveVertices:  it.ActiveVertices,
			ActiveEdges:     it.ActiveEdges,
		})
	}
	return sol
}
