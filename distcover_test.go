package distcover

import (
	"bytes"
	"errors"
	"testing"
)

func triangleInstance(t *testing.T) *Instance {
	t.Helper()
	inst, err := NewInstance([]int64{1, 2, 3}, [][]int{{0, 1}, {1, 2}, {0, 2}})
	if err != nil {
		t.Fatalf("NewInstance: %v", err)
	}
	return inst
}

func TestSolveTriangle(t *testing.T) {
	inst := triangleInstance(t)
	sol, err := Solve(inst)
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if !inst.IsCover(sol.Cover) {
		t.Fatal("solution is not a cover")
	}
	if sol.Weight != inst.CoverWeight(sol.Cover) {
		t.Errorf("Weight = %d, recomputed %d", sol.Weight, inst.CoverWeight(sol.Cover))
	}
	if sol.RatioBound > 3+1e-9 { // f+ε = 2+1
		t.Errorf("RatioBound = %f exceeds f+ε = 3", sol.RatioBound)
	}
	if sol.DualLowerBound <= 0 {
		t.Errorf("DualLowerBound = %f", sol.DualLowerBound)
	}
}

func TestSolveOptionsCombinations(t *testing.T) {
	inst := triangleInstance(t)
	tests := []struct {
		name string
		opts []Option
	}{
		{"epsilon", []Option{WithEpsilon(0.25)}},
		{"f-approx", []Option{WithFApproximation()}},
		{"single level", []Option{WithSingleLevelVariant()}},
		{"local alpha", []Option{WithLocalAlpha()}},
		{"fixed alpha", []Option{WithFixedAlpha(8)}},
		{"exact", []Option{WithExactArithmetic()}},
		{"stacked", []Option{WithEpsilon(0.5), WithSingleLevelVariant(), WithLocalAlpha()}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			sol, err := Solve(inst, tt.opts...)
			if err != nil {
				t.Fatalf("Solve: %v", err)
			}
			if !inst.IsCover(sol.Cover) {
				t.Error("not a cover")
			}
		})
	}
}

func TestSolveErrors(t *testing.T) {
	if _, err := Solve(nil); !errors.Is(err, ErrNilInstance) {
		t.Errorf("Solve(nil) = %v, want ErrNilInstance", err)
	}
	inst := triangleInstance(t)
	if _, err := Solve(inst, WithEpsilon(7)); err == nil {
		t.Error("Solve with ε=7 succeeded")
	}
	if _, err := Solve(inst, WithMaxIterations(1)); err == nil {
		t.Error("Solve with 1-iteration cap succeeded")
	}
}

func TestNewInstanceErrors(t *testing.T) {
	if _, err := NewInstance([]int64{1}, [][]int{{}}); err == nil {
		t.Error("empty edge accepted")
	}
	if _, err := NewInstance([]int64{0}, nil); err == nil {
		t.Error("zero weight accepted")
	}
	if _, err := NewInstance([]int64{1}, [][]int{{0, 5}}); err == nil {
		t.Error("out-of-range vertex accepted")
	}
}

func TestSolveCongest(t *testing.T) {
	inst := triangleInstance(t)
	for _, parallel := range []bool{false, true} {
		opts := []Option{WithEpsilon(0.5)}
		if parallel {
			opts = append(opts, WithParallelEngine())
		}
		sol, stats, err := SolveCongest(inst, opts...)
		if err != nil {
			t.Fatalf("SolveCongest(parallel=%v): %v", parallel, err)
		}
		if !inst.IsCover(sol.Cover) {
			t.Error("not a cover")
		}
		if stats.Rounds <= 0 || stats.Messages <= 0 || stats.MaxMessageBits <= 0 {
			t.Errorf("stats not recorded: %+v", stats)
		}
	}
	if _, _, err := SolveCongest(nil); !errors.Is(err, ErrNilInstance) {
		t.Errorf("SolveCongest(nil) = %v", err)
	}
	if _, _, err := SolveCongest(inst, WithExactArithmetic()); err == nil {
		t.Error("exact arithmetic on congest path accepted")
	}
}

func TestSolveCongestTCP(t *testing.T) {
	inst := triangleInstance(t)
	sol, stats, err := SolveCongest(inst, WithTCPEngine())
	if err != nil {
		t.Fatalf("SolveCongest(TCP): %v", err)
	}
	if !inst.IsCover(sol.Cover) {
		t.Error("not a cover")
	}
	if stats.WireBytes == 0 {
		t.Error("WireBytes not recorded on TCP engine")
	}
	mem, _, err := SolveCongest(inst)
	if err != nil {
		t.Fatal(err)
	}
	if mem.Weight != sol.Weight || mem.Iterations != sol.Iterations {
		t.Errorf("TCP engine disagrees with in-memory engine: (%d,%d) vs (%d,%d)",
			sol.Weight, sol.Iterations, mem.Weight, mem.Iterations)
	}
}

func TestSolveAndSolveCongestAgree(t *testing.T) {
	inst, err := NewInstance(
		[]int64{5, 3, 8, 2, 9, 4},
		[][]int{{0, 1, 2}, {2, 3}, {3, 4, 5}, {0, 5}, {1, 4}},
	)
	if err != nil {
		t.Fatal(err)
	}
	a, err := Solve(inst)
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := SolveCongest(inst)
	if err != nil {
		t.Fatal(err)
	}
	if a.Weight != b.Weight || a.Iterations != b.Iterations {
		t.Errorf("paths disagree: lockstep (w=%d it=%d) vs congest (w=%d it=%d)",
			a.Weight, a.Iterations, b.Weight, b.Iterations)
	}
}

func TestSetCoverInstance(t *testing.T) {
	// Elements 0..3; three candidate sets.
	inst, err := NewSetCoverInstance(4,
		[][]int{{0, 1}, {1, 2, 3}, {0, 3}},
		[]int64{5, 6, 4},
	)
	if err != nil {
		t.Fatalf("NewSetCoverInstance: %v", err)
	}
	sol, err := Solve(inst)
	if err != nil {
		t.Fatal(err)
	}
	if !inst.IsCover(sol.Cover) {
		t.Fatal("chosen sets do not cover all elements")
	}
	st := inst.Stats()
	if st.Rank != 2 { // every element appears in exactly 2 sets
		t.Errorf("Rank = %d, want 2", st.Rank)
	}
}

func TestInstanceJSONRoundTrip(t *testing.T) {
	inst := triangleInstance(t)
	var buf bytes.Buffer
	if _, err := inst.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadInstance(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Stats() != inst.Stats() {
		t.Errorf("round trip changed stats: %+v vs %+v", back.Stats(), inst.Stats())
	}
	if _, err := ReadInstance(bytes.NewBufferString("junk")); err == nil {
		t.Error("garbage accepted")
	}
}

func TestStats(t *testing.T) {
	inst := triangleInstance(t)
	st := inst.Stats()
	want := Stats{Vertices: 3, Edges: 3, Rank: 2, MaxDegree: 2, WeightSpread: 3}
	if st != want {
		t.Errorf("Stats = %+v, want %+v", st, want)
	}
}

func TestSolveILP(t *testing.T) {
	p := NewILP([]int64{2, 3, 1})
	if err := p.AddConstraint([]int{0, 1}, []int64{2, 1}, 4); err != nil {
		t.Fatal(err)
	}
	if err := p.AddConstraint([]int{1, 2}, []int64{1, 3}, 3); err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	sol, err := SolveILP(p)
	if err != nil {
		t.Fatalf("SolveILP: %v", err)
	}
	if !p.IsFeasible(sol.X) {
		t.Fatalf("infeasible X = %v", sol.X)
	}
	if sol.Value != p.Value(sol.X) {
		t.Errorf("Value = %d, recomputed %d", sol.Value, p.Value(sol.X))
	}
	if sol.Stats.M != 4 {
		t.Errorf("M = %d, want 4", sol.Stats.M)
	}
	if sol.SimulationFactor < 1 {
		t.Errorf("SimulationFactor = %f", sol.SimulationFactor)
	}
}

func TestSolveILPErrors(t *testing.T) {
	if _, err := SolveILP(nil); !errors.Is(err, ErrNilInstance) {
		t.Errorf("SolveILP(nil) = %v", err)
	}
	p := NewILP([]int64{1})
	if err := p.AddConstraint([]int{0}, []int64{1, 2}, 1); err == nil {
		t.Error("mismatched constraint accepted")
	}
	bad := NewILP([]int64{0})
	if _, err := SolveILP(bad); err == nil {
		t.Error("invalid ILP accepted")
	}
}
