package distcover

import (
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"distcover/internal/congest"
	"distcover/internal/core"
	"distcover/internal/hypergraph"
	"distcover/internal/lp"
	"distcover/internal/reduction"
)

// equivalenceEngines are the in-memory engines that must be bit-identical.
// (The TCP engine is exercised separately in internal/core; it is too slow
// for 50-instance sweeps.)
func equivalenceEngines() map[string]congest.Engine {
	return map[string]congest.Engine{
		"parallel":  congest.ParallelEngine{},
		"sharded":   congest.ShardedEngine{},
		"sharded-5": congest.ShardedEngine{Shards: 5},
	}
}

// randomEquivalenceInstance draws one instance from a mix of families:
// ordinary graphs, f>2 hypergraphs across weight distributions, heavy-tail
// power-law instances, and zero-one ILP-reduction outputs (whose edge
// structure — many overlapping hyperedges of mixed sizes — none of the
// random families produce).
func randomEquivalenceInstance(t *testing.T, rng *rand.Rand, i int) *hypergraph.Hypergraph {
	t.Helper()
	seed := rng.Int63()
	switch i % 5 {
	case 0: // plain graphs, f = 2
		n := 5 + rng.Intn(40)
		g, err := hypergraph.RandomGraph(n, 2*n, hypergraph.GenConfig{
			Seed: seed, Dist: hypergraph.WeightUniformRange, MaxWeight: 100,
		})
		if err != nil {
			t.Fatal(err)
		}
		return g
	case 1: // f > 2, exponential weights
		f := 3 + rng.Intn(3)
		n := f + 5 + rng.Intn(40)
		g, err := hypergraph.UniformRandom(n, 3*n, f, hypergraph.GenConfig{
			Seed: seed, Dist: hypergraph.WeightExponential, MaxWeight: 1 << 14,
		})
		if err != nil {
			t.Fatal(err)
		}
		return g
	case 2: // heavy-tail degree profile
		g, err := hypergraph.PowerLaw(20+rng.Intn(60), 120, 3, hypergraph.GenConfig{
			Seed: seed, Dist: hypergraph.WeightUniformRange, MaxWeight: 50,
		})
		if err != nil {
			t.Fatal(err)
		}
		return g
	case 3: // near-regular, unit weights
		g, err := hypergraph.RegularLike(30+rng.Intn(40), 4, 3, hypergraph.GenConfig{
			Seed: seed, Dist: hypergraph.WeightUniformOne,
		})
		if err != nil {
			t.Fatal(err)
		}
		return g
	default: // ILP-reduction instance (Lemma 14 hyperedges)
		nv := 4 + rng.Intn(5)
		p := &lp.CoveringILP{NumVars: nv}
		for v := 0; v < nv; v++ {
			p.Weights = append(p.Weights, 1+rng.Int63n(20))
		}
		for c := 0; c < 3+rng.Intn(4); c++ {
			row := lp.Row{B: 1 + rng.Int63n(3)}
			for v := 0; v < nv; v++ {
				if rng.Intn(2) == 0 {
					row.Terms = append(row.Terms, lp.Term{Col: v, Coef: 1 + rng.Int63n(3)})
				}
			}
			if len(row.Terms) == 0 {
				row.Terms = append(row.Terms, lp.Term{Col: rng.Intn(nv), Coef: row.B})
			}
			p.Rows = append(p.Rows, row)
		}
		red, err := reduction.ToHypergraph(p, reduction.Options{})
		if err != nil {
			// Random rows can be infeasible as zero-one programs; draw a
			// fallback family member instead.
			g, gerr := hypergraph.UniformRandom(12, 24, 3, hypergraph.GenConfig{
				Seed: seed, Dist: hypergraph.WeightUniformRange, MaxWeight: 30,
			})
			if gerr != nil {
				t.Fatal(gerr)
			}
			return g
		}
		return red.G
	}
}

// TestEngineEquivalenceOnCoverProtocol is the cross-engine differential
// property test: on 50 random weighted instances (including f>2 and
// ILP-reduction shapes) the sequential, parallel and sharded engines must
// produce identical covers, identical metrics.Rounds, and identical
// message-bit accounting — and the flat chunk-parallel solver must match
// them bit for bit (covers, duals, iterations) at every worker count from
// 1 to 8 with invariant checking on, both cold and warm-started from a
// random carried load (the Session residual path).
func TestEngineEquivalenceOnCoverProtocol(t *testing.T) {
	rng := rand.New(rand.NewSource(20260730))
	opts := core.DefaultOptions()
	for i := 0; i < 50; i++ {
		g := randomEquivalenceInstance(t, rng, i)
		refRes, refMetrics, err := core.RunCongest(g, opts, congest.SequentialEngine{}, congest.Options{Validate: true})
		if err != nil {
			t.Fatalf("instance %d: sequential: %v", i, err)
		}
		flatOpts := opts
		flatOpts.CheckInvariants = true
		carry := make([]float64, g.NumVertices())
		for v := range carry {
			carry[v] = rng.Float64() * 0.9 * float64(g.Weight(hypergraph.VertexID(v)))
		}
		refResidual, err := core.RunResidual(g, flatOpts, carry)
		if err != nil {
			t.Fatalf("instance %d: sequential residual: %v", i, err)
		}
		for workers := 1; workers <= 8; workers++ {
			flat, err := core.RunFlat(g, flatOpts, workers)
			if err != nil {
				t.Fatalf("instance %d: flat/%d: %v", i, workers, err)
			}
			if !reflect.DeepEqual(flat.Cover, refRes.Cover) ||
				!reflect.DeepEqual(flat.Dual, refRes.Dual) ||
				flat.Iterations != refRes.Iterations {
				t.Errorf("instance %d: flat/%d diverges from the protocol engines", i, workers)
			}
			warm, err := core.RunResidualFlat(g, flatOpts, carry, workers)
			if err != nil {
				t.Fatalf("instance %d: flat residual/%d: %v", i, workers, err)
			}
			if !reflect.DeepEqual(warm.Cover, refResidual.Cover) ||
				!reflect.DeepEqual(warm.Dual, refResidual.Dual) ||
				warm.Iterations != refResidual.Iterations {
				t.Errorf("instance %d: flat residual/%d diverges from sequential residual", i, workers)
			}
		}
		for name, eng := range equivalenceEngines() {
			res, metrics, err := core.RunCongest(g, opts, eng, congest.Options{Validate: true})
			if err != nil {
				t.Fatalf("instance %d: %s: %v", i, name, err)
			}
			if !reflect.DeepEqual(res.Cover, refRes.Cover) {
				t.Errorf("instance %d: %s cover %v != sequential %v", i, name, res.Cover, refRes.Cover)
			}
			if res.CoverWeight != refRes.CoverWeight || res.DualValue != refRes.DualValue {
				t.Errorf("instance %d: %s certificate (%d, %g) != sequential (%d, %g)",
					i, name, res.CoverWeight, res.DualValue, refRes.CoverWeight, refRes.DualValue)
			}
			if metrics.Rounds != refMetrics.Rounds {
				t.Errorf("instance %d: %s rounds %d != sequential %d", i, name, metrics.Rounds, refMetrics.Rounds)
			}
			if metrics.TotalBits != refMetrics.TotalBits ||
				metrics.Messages != refMetrics.Messages ||
				metrics.MaxMessageBits != refMetrics.MaxMessageBits {
				t.Errorf("instance %d: %s bit accounting %+v != sequential %+v", i, name, metrics, refMetrics)
			}
		}
	}
}

// randomDelta draws a delta batch for an instance that currently has n
// vertices: occasionally new vertices, and a few random edges over the
// union of old and new ids. Returns the delta and the new vertex count.
func randomDelta(rng *rand.Rand, n int) (Delta, int) {
	var d Delta
	for i := 0; i < rng.Intn(3); i++ {
		d.Weights = append(d.Weights, 1+rng.Int63n(30))
	}
	total := n + len(d.Weights)
	for i := 0; i < 1+rng.Intn(5); i++ {
		k := 1 + rng.Intn(3)
		seen := map[int]bool{}
		var e []int
		for len(e) < k {
			v := rng.Intn(total)
			if !seen[v] {
				seen[v] = true
				e = append(e, v)
			}
		}
		d.Edges = append(d.Edges, e)
	}
	return d, total
}

// TestSessionReplayAcrossEngines is the session-replay property test: for
// random instances and random delta sequences, the incremental
// Session.Update path must — on the simulator and on every in-memory
// CONGEST engine — keep producing a valid cover whose realized RatioBound
// stays within the f(1+ε) session certificate, and whose weight stays
// within that certificate of a from-scratch solve of the same instance
// (both dual values lower-bound the same OPT). The congest engines must
// additionally agree with the simulator session exactly, since residual
// solves run the identical warm-start arithmetic on every path.
func TestSessionReplayAcrossEngines(t *testing.T) {
	rng := rand.New(rand.NewSource(424242))
	for i := 0; i < 12; i++ {
		g := randomEquivalenceInstance(t, rng, i)
		inst := &Instance{g: g}
		sessions := map[string]*Session{}
		for name, opts := range map[string][]Option{
			"sim":        {},
			"flat":       {WithFlatEngine(), WithSolverParallelism(3)},
			"sequential": {WithSequentialEngine()},
			"parallel":   {WithParallelEngine()},
			"sharded":    {WithShardedEngine(), WithShardCount(3)},
		} {
			s, err := NewSession(inst, opts...)
			if err != nil {
				t.Fatalf("instance %d: %s: %v", i, name, err)
			}
			sessions[name] = s
		}
		cur := inst
		n := g.NumVertices()
		for batch := 0; batch < 5; batch++ {
			var d Delta
			d, n = randomDelta(rng, n)
			var err error
			cur, err = cur.Extend(d)
			if err != nil {
				t.Fatal(err)
			}
			scratch, err := Solve(cur)
			if err != nil {
				t.Fatalf("instance %d batch %d: scratch: %v", i, batch, err)
			}
			// The simulator session updates first: it is the reference the
			// engine sessions are compared against within the batch.
			ref := sessions["sim"]
			for _, name := range []string{"sim", "flat", "sequential", "parallel", "sharded"} {
				s := sessions[name]
				if _, err := s.Update(d); err != nil {
					t.Fatalf("instance %d batch %d: %s: %v", i, batch, name, err)
				}
				sol := s.Solution()
				if !cur.IsCover(sol.Cover) {
					t.Fatalf("instance %d batch %d: %s produced an invalid cover", i, batch, name)
				}
				bound := s.CertifiedBound()
				if sol.RatioBound > bound*(1+1e-9) {
					t.Fatalf("instance %d batch %d: %s ratio %g exceeds certificate %g",
						i, batch, name, sol.RatioBound, bound)
				}
				if w := float64(sol.Weight); w > bound*scratch.DualLowerBound*(1+1e-9) {
					t.Fatalf("instance %d batch %d: %s weight %g vs scratch dual %g breaks certificate %g",
						i, batch, name, w, scratch.DualLowerBound, bound)
				}
				if s.Hash() != cur.Hash() {
					t.Fatalf("instance %d batch %d: %s hash drifted", i, batch, name)
				}
				if name != "sim" {
					refSol := ref.Solution()
					if !reflect.DeepEqual(sol.Cover, refSol.Cover) || sol.DualLowerBound != refSol.DualLowerBound {
						t.Fatalf("instance %d batch %d: %s session diverges from simulator session",
							i, batch, name)
					}
				}
			}
		}
	}
}

// TestSessionPooledArenaNoStateBleed is the regression test for the
// pooled solver scaffolding: arenas recycled through the sync.Pool across
// Session.Update calls must be fully reset, so a session's residual
// solves are bit-identical no matter which other solves dirtied and
// returned arenas in between. Pass 1 replays a delta sequence on a quiet
// process; pass 2 replays the identical sequence while concurrent flat
// solves of unrelated larger and smaller instances churn the pool between
// updates (under -race in CI this also exercises pool thread-safety).
// Any state bleeding through a recycled arena diverges the solutions.
func TestSessionPooledArenaNoStateBleed(t *testing.T) {
	rng := rand.New(rand.NewSource(991199))
	base := randomEquivalenceInstance(t, rng, 1)
	var deltas []Delta
	n := base.NumVertices()
	for b := 0; b < 6; b++ {
		var d Delta
		d, n = randomDelta(rng, n)
		deltas = append(deltas, d)
	}
	churn := []*Instance{
		{g: randomEquivalenceInstance(t, rng, 2)},
		{g: randomEquivalenceInstance(t, rng, 4)},
		{g: randomEquivalenceInstance(t, rng, 0)},
	}

	replay := func(dirtyPool bool) []*Solution {
		t.Helper()
		s, err := NewSession(&Instance{g: base}, WithFlatEngine(), WithSolverParallelism(4))
		if err != nil {
			t.Fatal(err)
		}
		var out []*Solution
		for _, d := range deltas {
			if dirtyPool {
				var wg sync.WaitGroup
				for w := 1; w <= 3; w++ {
					for _, ci := range churn {
						wg.Add(1)
						go func(ci *Instance, w int) {
							defer wg.Done()
							if _, err := Solve(ci, WithFlatEngine(), WithSolverParallelism(w)); err != nil {
								panic(err)
							}
						}(ci, w)
					}
				}
				wg.Wait()
			}
			if _, err := s.Update(d); err != nil {
				t.Fatal(err)
			}
			out = append(out, s.Solution())
		}
		return out
	}

	clean := replay(false)
	churned := replay(true)
	if !reflect.DeepEqual(clean, churned) {
		t.Fatalf("pooled arenas bleed state across updates:\nclean:   %+v\nchurned: %+v", clean, churned)
	}
}

// TestEngineEquivalencePublicAPI checks the same property through the
// public SolveCongest options, including the resolved Solution fields.
func TestEngineEquivalencePublicAPI(t *testing.T) {
	inst, err := NewInstance(
		[]int64{7, 3, 9, 2, 8, 5, 4, 6, 1, 10},
		[][]int{
			{0, 1, 2}, {2, 3, 4}, {4, 5, 6}, {6, 7, 8}, {8, 9, 0},
			{1, 4, 7}, {3, 6, 9}, {0, 5, 9}, {2, 5, 8}, {1, 3, 8},
		},
	)
	if err != nil {
		t.Fatal(err)
	}
	ref, refStats, err := SolveCongest(inst, WithEpsilon(0.5))
	if err != nil {
		t.Fatal(err)
	}
	for _, opt := range [][]Option{
		{WithEpsilon(0.5), WithParallelEngine()},
		{WithEpsilon(0.5), WithShardedEngine()},
		{WithEpsilon(0.5), WithShardedEngine(), WithShardCount(4)},
	} {
		sol, stats, err := SolveCongest(inst, opt...)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(sol.Cover, ref.Cover) || sol.Weight != ref.Weight {
			t.Errorf("cover mismatch: %v (%d) vs %v (%d)", sol.Cover, sol.Weight, ref.Cover, ref.Weight)
		}
		if stats.Rounds != refStats.Rounds || stats.TotalBits != refStats.TotalBits {
			t.Errorf("stats mismatch: %+v vs %+v", stats, refStats)
		}
	}
	// The flat engine goes through Solve; the whole Solution must match the
	// simulator's bit for bit.
	simSol, err := Solve(inst, WithEpsilon(0.5))
	if err != nil {
		t.Fatal(err)
	}
	flatSol, err := Solve(inst, WithEpsilon(0.5), WithFlatEngine(), WithSolverParallelism(4))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(simSol, flatSol) {
		t.Errorf("flat Solve diverges from simulator:\n%+v\nvs\n%+v", flatSol, simSol)
	}
}
