package distcover_test

import (
	"fmt"
	"log"

	"distcover"
)

// ExampleSolve covers a triangle with weighted vertices.
func ExampleSolve() {
	inst, err := distcover.NewInstance(
		[]int64{1, 2, 3},
		[][]int{{0, 1}, {1, 2}, {0, 2}},
	)
	if err != nil {
		log.Fatal(err)
	}
	sol, err := distcover.Solve(inst)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("cover:", sol.Cover)
	fmt.Println("weight:", sol.Weight)
	fmt.Println("is cover:", inst.IsCover(sol.Cover))
	// Output:
	// cover: [0 1]
	// weight: 3
	// is cover: true
}

// ExampleSolve_setCover solves a weighted set cover instance: the chosen
// set indices come back as the cover.
func ExampleSolve_setCover() {
	inst, err := distcover.NewSetCoverInstance(
		3,                            // elements 0, 1, 2
		[][]int{{0, 1}, {1, 2}, {2}}, // candidate sets
		[]int64{3, 4, 1},             // costs
	)
	if err != nil {
		log.Fatal(err)
	}
	sol, err := distcover.Solve(inst, distcover.WithEpsilon(0.5))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("chosen sets:", sol.Cover)
	fmt.Println("covers all elements:", inst.IsCover(sol.Cover))
	// Output:
	// chosen sets: [0 2]
	// covers all elements: true
}

// ExampleSolveILP solves a small covering integer program through the
// paper's reduction pipeline.
func ExampleSolveILP() {
	p := distcover.NewILP([]int64{2, 3})
	if err := p.AddConstraint([]int{0, 1}, []int64{2, 1}, 4); err != nil {
		log.Fatal(err)
	}
	if err := p.AddConstraint([]int{0, 1}, []int64{1, 3}, 3); err != nil {
		log.Fatal(err)
	}
	sol, err := distcover.SolveILP(p)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("feasible:", p.IsFeasible(sol.X))
	fmt.Println("value matches:", sol.Value == p.Value(sol.X))
	// Output:
	// feasible: true
	// value matches: true
}
