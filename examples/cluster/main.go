// Multi-process cover cluster walkthrough: an instance is partitioned into
// contiguous CSR vertex ranges across three cluster peers, each peer runs
// the lockstep solver over its range, and only boundary-vertex levels plus
// join/raise flags cross the wire between iterations — yet the result is
// bit-identical to the single-process flat engine, certificate and all.
// A session then streams delta batches: every update ships only the
// residual instance (the session-delta JSON shape) to the peers, so update
// traffic scales with the batch, not the accumulated instance.
//
// The peers here run in-process on loopback listeners to keep the example
// self-contained; operationally each one is a coverd process started with
// -peer-listen, and the coordinator is any coverd started with -peers (or
// any program calling distcover.ClusterSolve).
package main

import (
	"fmt"
	"log"
	"math/rand"
	"net"

	"distcover"
	"distcover/internal/cluster"
)

func main() {
	// Three cluster peers on ephemeral loopback ports.
	var addrs []string
	for i := 0; i < 3; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			log.Fatal(err)
		}
		p := cluster.NewPeer()
		go p.Serve(ln)
		defer p.Close()
		addrs = append(addrs, ln.Addr().String())
	}
	fmt.Println("peers:", addrs)

	// A random rank-3 instance.
	const n, m = 5000, 12000
	rng := rand.New(rand.NewSource(14))
	weights := make([]int64, n)
	for i := range weights {
		weights[i] = 1 + rng.Int63n(100)
	}
	edges := make([][]int, m)
	for e := range edges {
		edges[e] = []int{rng.Intn(n), rng.Intn(n), rng.Intn(n)}
	}
	inst, err := distcover.NewInstance(weights, edges)
	if err != nil {
		log.Fatal(err)
	}

	// Solve across the cluster and against the single-process flat engine.
	clusterSol, err := distcover.ClusterSolve(inst, addrs)
	if err != nil {
		log.Fatal(err)
	}
	flatSol, err := distcover.Solve(inst, distcover.WithFlatEngine())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("cluster: |C|=%d weight=%d ratio≤%.3f iterations=%d\n",
		len(clusterSol.Cover), clusterSol.Weight, clusterSol.RatioBound, clusterSol.Iterations)
	fmt.Printf("flat:    |C|=%d weight=%d ratio≤%.3f iterations=%d\n",
		len(flatSol.Cover), flatSol.Weight, flatSol.RatioBound, flatSol.Iterations)
	if clusterSol.Weight != flatSol.Weight || clusterSol.DualLowerBound != flatSol.DualLowerBound {
		log.Fatal("cluster and flat diverged — this is a bug")
	}
	fmt.Println("bit-identical: yes")

	// Stream updates through a cluster session: only residual deltas cross
	// the wire per batch.
	sess, err := distcover.NewSession(inst, distcover.WithClusterPeers(addrs...))
	if err != nil {
		log.Fatal(err)
	}
	for batch := 1; batch <= 3; batch++ {
		var d distcover.Delta
		for i := 0; i < 500; i++ {
			d.Edges = append(d.Edges, []int{rng.Intn(n), rng.Intn(n), rng.Intn(n)})
		}
		st, err := sess.Update(d)
		if err != nil {
			log.Fatal(err)
		}
		sol := sess.Solution()
		fmt.Printf("batch %d: +%d edges, %d covered on arrival, residual %d, joined %d; weight=%d ratio≤%.3f (certificate %.2f)\n",
			batch, st.NewEdges, st.CoveredOnArrival, st.ResidualEdges, st.Joined,
			sol.Weight, sol.RatioBound, sess.CertifiedBound())
	}
}
