// Covering integer programs via the Section 5 reductions: a staffing
// problem — each shift requires a minimum total skill level, workers can
// be hired for integer numbers of shifts — becomes a covering ILP, is
// reduced to hypergraph vertex cover (ILP → zero-one by binary expansion,
// zero-one → MWHVC by the monotone-CNF construction), solved by the
// distributed algorithm, and mapped back to an integral assignment.
package main

import (
	"fmt"
	"log"

	"distcover"
)

func main() {
	// Variables: x_j = units of worker type j to hire.
	// Weights: cost per unit.
	workers := []string{"junior", "senior", "contractor", "specialist"}
	costs := []int64{3, 7, 5, 9}

	p := distcover.NewILP(costs)
	// Each shift needs total skill ≥ demand; skill levels differ per type.
	type shift struct {
		name   string
		vars   []int
		skills []int64
		need   int64
	}
	shifts := []shift{
		{"morning", []int{0, 1}, []int64{1, 3}, 5},
		{"evening", []int{0, 2}, []int64{1, 2}, 4},
		{"night", []int{1, 2, 3}, []int64{3, 2, 4}, 6},
		{"weekend", []int{0, 3}, []int64{1, 4}, 4},
	}
	for _, s := range shifts {
		if err := p.AddConstraint(s.vars, s.skills, s.need); err != nil {
			log.Fatal(err)
		}
	}
	if err := p.Validate(); err != nil {
		log.Fatal(err)
	}

	sol, err := distcover.SolveILP(p, distcover.WithEpsilon(0.5))
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("staffing plan:")
	for j, name := range workers {
		fmt.Printf("  %-11s × %d (unit cost %d)\n", name, sol.X[j], costs[j])
	}
	fmt.Printf("total cost %d; no plan can cost less than %.2f\n",
		sol.Value, sol.DualLowerBound)
	fmt.Printf("reduction: f=%d, M=%d → hypergraph rank f'=%d, Δ'=%d, %d edges\n",
		sol.Stats.F, sol.Stats.M, sol.Stats.HypergraphRank,
		sol.Stats.HypergraphDegree, sol.Stats.HypergraphEdges)
	fmt.Printf("distributed cost: %d iterations (×%.2f simulation factor)\n",
		sol.Iterations, sol.SimulationFactor)

	if !p.IsFeasible(sol.X) {
		log.Fatal("internal error: infeasible plan")
	}
}
