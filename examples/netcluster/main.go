// Real-transport demo: the covering protocol runs with every hypergraph
// vertex and every hyperedge as an independent goroutine holding its own
// TCP loopback socket, and the Appendix B messages cross the sockets as
// encoded bytes. The result is identical to the in-memory simulation — the
// protocol genuinely is a message-passing algorithm — and the run reports
// the actual wire traffic.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"distcover"
)

func main() {
	// A modest instance: every node costs one socket, so stay well under
	// the file-descriptor limit.
	const (
		nVertices = 60
		nEdges    = 120
		f         = 3
	)
	rng := rand.New(rand.NewSource(5))
	weights := make([]int64, nVertices)
	for i := range weights {
		weights[i] = 1 + rng.Int63n(100)
	}
	edges := make([][]int, 0, nEdges)
	for len(edges) < nEdges {
		seen := map[int]bool{}
		var e []int
		for len(e) < f {
			v := rng.Intn(nVertices)
			if !seen[v] {
				seen[v] = true
				e = append(e, v)
			}
		}
		edges = append(edges, e)
	}
	inst, err := distcover.NewInstance(weights, edges)
	if err != nil {
		log.Fatal(err)
	}

	tcpSol, tcpStats, err := distcover.SolveCongest(inst, distcover.WithTCPEngine())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("TCP cluster: %d node goroutines with sockets, %d rounds\n",
		nVertices+nEdges, tcpStats.Rounds)
	fmt.Printf("cover weight %d (certified ≤ %.3f×OPT)\n", tcpSol.Weight, tcpSol.RatioBound)
	fmt.Printf("traffic: %d protocol messages, %d payload bits, %d bytes on the wire\n",
		tcpStats.Messages, tcpStats.TotalBits, tcpStats.WireBytes)

	memSol, memStats, err := distcover.SolveCongest(inst)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("in-memory engine agrees: weight %d in %d rounds, %d messages\n",
		memSol.Weight, memStats.Rounds, memStats.Messages)
	if memSol.Weight != tcpSol.Weight {
		log.Fatal("engines disagree — this is a bug")
	}
}
