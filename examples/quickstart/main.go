// Quickstart: solve a small weighted hypergraph vertex cover and inspect
// the certificate the algorithm returns.
package main

import (
	"fmt"
	"log"

	"distcover"
)

func main() {
	// A rank-3 hypergraph: 6 vertices with weights, 5 hyperedges. Covering
	// it is exactly a weighted set cover where every element (edge) appears
	// in at most f = 3 sets (vertices).
	inst, err := distcover.NewInstance(
		[]int64{4, 2, 9, 3, 7, 1},
		[][]int{
			{0, 1, 2},
			{1, 3},
			{2, 4, 5},
			{0, 5},
			{3, 4},
		},
	)
	if err != nil {
		log.Fatal(err)
	}

	sol, err := distcover.Solve(inst, distcover.WithEpsilon(0.5))
	if err != nil {
		log.Fatal(err)
	}

	st := inst.Stats()
	fmt.Printf("instance: %d vertices, %d edges, rank f=%d, max degree Δ=%d\n",
		st.Vertices, st.Edges, st.Rank, st.MaxDegree)
	fmt.Printf("cover: %v (weight %d)\n", sol.Cover, sol.Weight)
	fmt.Printf("certificate: no cover can weigh less than %.3f, so this run is\n", sol.DualLowerBound)
	fmt.Printf("  within factor %.3f of optimal (guarantee: f+ε = %.1f)\n",
		sol.RatioBound, float64(st.Rank)+0.5)
	fmt.Printf("distributed cost: %d iterations = %d CONGEST rounds\n",
		sol.Iterations, sol.Rounds)

	if !inst.IsCover(sol.Cover) {
		log.Fatal("internal error: result does not cover all edges")
	}
}
