// Service example: run coverd in-process and talk to it through the Go
// client — a synchronous solve, a cache hit, an async job, and a batch.
package main

import (
	"context"
	"fmt"
	"log"
	"net"
	"net/http"
	"time"

	"distcover"
	"distcover/client"
	"distcover/server"
	"distcover/server/api"
)

func main() {
	// An in-process coverd: 2 workers, small queue, result cache on.
	srv := server.New(server.Config{Workers: 2, QueueDepth: 32})
	defer srv.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	go httpSrv.Serve(ln)
	defer httpSrv.Close()

	c := client.New("http://" + ln.Addr().String())
	ctx := context.Background()

	inst, err := distcover.NewInstance(
		[]int64{4, 2, 9, 3, 7, 1},
		[][]int{{0, 1, 2}, {1, 3}, {2, 4, 5}, {0, 5}, {3, 4}},
	)
	if err != nil {
		log.Fatal(err)
	}

	// Synchronous solve.
	res, err := c.Solve(ctx, inst, api.SolveOptions{Epsilon: 0.5})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("solve: cover %v weight %d (ratio ≤ %.3f, %d rounds, %.2fms)\n",
		res.Cover, res.Weight, res.RatioBound, res.Rounds, res.ElapsedMS)

	// The same instance again: served from the LRU cache.
	res2, err := c.Solve(ctx, inst, api.SolveOptions{Epsilon: 0.5})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("again: cached=%v (instance hash %.12s…)\n", res2.Cached, res2.InstanceHash)

	// Async: submit, poll, collect.
	raw, err := client.EncodeInstance(inst)
	if err != nil {
		log.Fatal(err)
	}
	id, err := c.SolveAsync(ctx, api.SolveRequest{
		Instance: raw,
		Options:  api.SolveOptions{Epsilon: 0.25, Engine: api.EngineCongest},
	})
	if err != nil {
		log.Fatal(err)
	}
	asyncRes, err := c.Wait(ctx, id, 10*time.Millisecond)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("async: job %.8s… done, weight %d over %d congest rounds\n",
		id, asyncRes.Weight, asyncRes.Congest.Rounds)

	// Batch: several option sets over one instance in a single call.
	items, err := c.SolveBatch(ctx, []api.SolveRequest{
		{Instance: raw, Options: api.SolveOptions{Epsilon: 1}},
		{Instance: raw, Options: api.SolveOptions{Epsilon: 0.1}},
		{Instance: raw, Options: api.SolveOptions{FApprox: true}},
	})
	if err != nil {
		log.Fatal(err)
	}
	for i, item := range items {
		fmt.Printf("batch[%d]: weight %d ratio ≤ %.3f cached=%v\n",
			i, item.Result.Weight, item.Result.RatioBound, item.Result.Cached)
	}

	h, err := c.Health(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("health: %s, %d workers, queue %d/%d, %d cached results\n",
		h.Status, h.Workers, h.QueueDepth, h.QueueCapacity, h.CacheEntries)
}
