// Sensor placement as weighted set cover: a city grid must be monitored;
// each candidate sensor site covers its 5×5 neighbourhood and has an
// installation cost. Every cell is reachable by a bounded number of sites,
// so element
// frequency — the f in the (f+ε) guarantee — is bounded by design, which is
// precisely the regime the paper's algorithm targets.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"distcover"
)

const (
	gridW = 24
	gridH = 16
)

func cellID(x, y int) int { return y*gridW + x }

func main() {
	rng := rand.New(rand.NewSource(7))

	// Candidate sites sit on a coarser lattice with jittered costs; each
	// covers a 5×5 block of cells, so neighbouring sites overlap and the
	// solver has real choices to make.
	var (
		sets  [][]int
		costs []int64
	)
	for cy := 0; cy < gridH; cy += 2 {
		for cx := 0; cx < gridW; cx += 2 {
			var covered []int
			for dy := -2; dy <= 2; dy++ {
				for dx := -2; dx <= 2; dx++ {
					x, y := cx+dx, cy+dy
					if x >= 0 && x < gridW && y >= 0 && y < gridH {
						covered = append(covered, cellID(x, y))
					}
				}
			}
			sets = append(sets, covered)
			costs = append(costs, 10+rng.Int63n(90))
		}
	}

	inst, err := distcover.NewSetCoverInstance(gridW*gridH, sets, costs)
	if err != nil {
		log.Fatal(err)
	}
	st := inst.Stats()
	fmt.Printf("sensor placement: %d cells, %d candidate sites, frequency f=%d\n",
		st.Edges, st.Vertices, st.Rank)

	// Tighter ε buys a better guarantee for more rounds; compare.
	for _, eps := range []float64{1, 0.1} {
		sol, err := distcover.Solve(inst, distcover.WithEpsilon(eps))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("ε=%-4g chose %3d sites, cost %5d, certified ≤ %.3f×OPT, %3d rounds\n",
			eps, len(sol.Cover), sol.Weight, sol.RatioBound, sol.Rounds)
	}

	// The clean f-approximation mode of Corollary 10.
	sol, err := distcover.Solve(inst, distcover.WithFApproximation())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("f-approx mode: cost %d, certified ≤ %.3f×OPT (guarantee %d), %d rounds\n",
		sol.Weight, sol.RatioBound, st.Rank, sol.Rounds)
}
