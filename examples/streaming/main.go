// Streaming example: an incremental cover session against an in-process
// coverd. A base instance is solved once; edge batches then stream in and
// each one is absorbed by a warm-started residual re-solve instead of a
// from-scratch run — the demo times both and prints the certificate after
// every batch.
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"
	"net"
	"net/http"
	"time"

	"distcover"
	"distcover/client"
	"distcover/server"
	"distcover/server/api"
)

func main() {
	srv := server.New(server.Config{Workers: 2})
	defer srv.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	go httpSrv.Serve(ln)
	defer httpSrv.Close()

	c := client.New("http://" + ln.Addr().String())
	ctx := context.Background()
	rng := rand.New(rand.NewSource(42))

	// A base instance: 20k vertices, 40k random triple edges.
	const n = 20_000
	weights := make([]int64, n)
	for v := range weights {
		weights[v] = 1 + rng.Int63n(100)
	}
	edges := make([][]int, 40_000)
	for e := range edges {
		edges[e] = []int{rng.Intn(n), rng.Intn(n), rng.Intn(n)}
	}
	inst, err := distcover.NewInstance(weights, edges)
	if err != nil {
		log.Fatal(err)
	}

	info, err := c.CreateSession(ctx, inst, api.SolveOptions{Epsilon: 0.5})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("session %.8s…: n=%d m=%d solved in %.1fms, weight %d (ratio ≤ %.3f, certificate %.2f)\n",
		info.ID, info.Vertices, info.Edges, info.Result.ElapsedMS,
		info.Result.Weight, info.Result.RatioBound, info.CertifiedBound)

	// Stream 5 batches of 1000 new edges each; every batch is also solved
	// from scratch locally for comparison.
	cur := inst
	for batch := 1; batch <= 5; batch++ {
		var d api.SessionDelta
		for i := 0; i < 1000; i++ {
			d.Edges = append(d.Edges, []int{rng.Intn(n), rng.Intn(n), rng.Intn(n)})
		}
		upd, err := c.UpdateSession(ctx, info.ID, d)
		if err != nil {
			log.Fatal(err)
		}

		cur, err = cur.Extend(distcover.Delta{Edges: d.Edges})
		if err != nil {
			log.Fatal(err)
		}
		scratchStart := time.Now()
		scratch, err := distcover.Solve(cur, distcover.WithEpsilon(0.5))
		if err != nil {
			log.Fatal(err)
		}
		scratchMS := float64(time.Since(scratchStart).Microseconds()) / 1000

		fmt.Printf("batch %d: +%d edges (%d already covered, %d residual over %d vertices) "+
			"in %.1fms vs %.1fms from scratch (%.0fx); weight %d ratio ≤ %.3f\n",
			batch, upd.NewEdges, upd.CoveredOnArrival, upd.ResidualEdges, upd.ResidualVertices,
			upd.ElapsedMS, scratchMS, scratchMS/upd.ElapsedMS,
			upd.Session.Result.Weight, upd.Session.Result.RatioBound)

		if !cur.IsCover(upd.Session.Result.Cover) {
			log.Fatal("incremental cover invalid")
		}
		if upd.Session.InstanceHash != cur.Hash() {
			log.Fatal("incremental hash drifted from canonical hash")
		}
		_ = scratch
	}

	final, err := c.Session(ctx, info.ID)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("final: %d updates, m=%d, weight %d, dual ≥ %.1f, ratio ≤ %.3f (certificate %.2f)\n",
		final.Updates, final.Edges, final.Result.Weight,
		final.Result.DualLowerBound, final.Result.RatioBound, final.CertifiedBound)
}
