// Weighted vertex cover (f = 2) over the real CONGEST message protocol:
// every vertex and every edge of the conflict graph runs as a network node
// exchanging O(log n)-bit messages; with the parallel engine each node is a
// goroutine. The measured rounds illustrate the O(logΔ/loglogΔ) headline
// bound, and the run reports the exact communication cost.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"distcover"
)

func main() {
	// A conflict graph: tasks are vertices (weight = migration cost),
	// edges join tasks that cannot share a host; a vertex cover is a set
	// of tasks to migrate so no conflict remains.
	const (
		nTasks    = 400
		nConflict = 1200
	)
	rng := rand.New(rand.NewSource(11))
	weights := make([]int64, nTasks)
	for i := range weights {
		weights[i] = 1 + rng.Int63n(1000)
	}
	seen := make(map[[2]int]bool)
	var edges [][]int
	for len(edges) < nConflict {
		a, b := rng.Intn(nTasks), rng.Intn(nTasks)
		if a == b {
			continue
		}
		if a > b {
			a, b = b, a
		}
		if seen[[2]int{a, b}] {
			continue
		}
		seen[[2]int{a, b}] = true
		edges = append(edges, []int{a, b})
	}

	inst, err := distcover.NewInstance(weights, edges)
	if err != nil {
		log.Fatal(err)
	}
	st := inst.Stats()
	fmt.Printf("conflict graph: %d tasks, %d conflicts, Δ=%d, W=%d\n",
		st.Vertices, st.Edges, st.MaxDegree, st.WeightSpread)

	sol, stats, err := distcover.SolveCongest(inst,
		distcover.WithEpsilon(0.5),
		distcover.WithParallelEngine(), // every node is a goroutine
	)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("migrate %d tasks (cost %d), certified ≤ %.3f×OPT\n",
		len(sol.Cover), sol.Weight, sol.RatioBound)
	fmt.Printf("network: %d rounds, %d messages, %.1f KiB total, max message %d bits\n",
		stats.Rounds, stats.Messages, float64(stats.TotalBits)/8192, stats.MaxMessageBits)

	// The same instance without building the network (fast simulation path)
	// produces the identical cover.
	fast, err := distcover.Solve(inst, distcover.WithEpsilon(0.5))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("fast path agrees: weight %d in %d iterations\n", fast.Weight, fast.Iterations)
}
