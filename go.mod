module distcover

go 1.22
