package distcover

import (
	"fmt"

	"distcover/internal/lp"
	"distcover/internal/reduction"
)

// ILP is a covering integer program: minimize wᵀx subject to Ax ≥ b with
// x ∈ ℕⁿ and non-negative integer data. Build one with NewILP and
// AddConstraint.
type ILP struct {
	inner lp.CoveringILP
}

// NewILP creates a covering ILP over len(weights) variables with the given
// strictly positive objective weights.
func NewILP(weights []int64) *ILP {
	p := &ILP{}
	p.inner.NumVars = len(weights)
	p.inner.Weights = append(p.inner.Weights, weights...)
	return p
}

// AddConstraint appends the covering constraint Σ coefs[i]·x[vars[i]] ≥ b.
func (p *ILP) AddConstraint(vars []int, coefs []int64, b int64) error {
	if len(vars) != len(coefs) {
		return fmt.Errorf("distcover: %d vars but %d coefficients", len(vars), len(coefs))
	}
	row := lp.Row{B: b}
	for i, v := range vars {
		row.Terms = append(row.Terms, lp.Term{Col: v, Coef: coefs[i]})
	}
	p.inner.Rows = append(p.inner.Rows, row)
	return nil
}

// Validate checks the program is a well-formed feasible covering ILP.
func (p *ILP) Validate() error { return p.inner.Validate() }

// IsFeasible reports whether x satisfies all constraints.
func (p *ILP) IsFeasible(x []int64) bool { return p.inner.IsFeasible(x) }

// Value returns wᵀx.
func (p *ILP) Value(x []int64) int64 { return p.inner.Value(x) }

// ILPStats reports the program parameters and the reduction blowup.
type ILPStats struct {
	// F is f(A): the maximum number of variables per constraint.
	F int
	// Delta is Δ(A): the maximum number of constraints per variable.
	Delta int
	// M is the box bound M(A,b) (Definition 16).
	M int64
	// HypergraphRank and HypergraphDegree are the reduced instance's f′
	// and Δ′ (Claim 18 + Lemma 14 bound f′ ≤ f·(⌊log M⌋+1) and
	// Δ′ ≤ 2^f′·Δ).
	HypergraphRank   int
	HypergraphDegree int
	HypergraphEdges  int
}

// ILPSolution is the output of SolveILP.
type ILPSolution struct {
	// X is the integral solution; always feasible.
	X []int64
	// Value is wᵀX.
	Value int64
	// DualLowerBound lower-bounds the optimum via the reduced instance's
	// dual packing.
	DualLowerBound float64
	// Iterations / Rounds measure the core algorithm on the reduced
	// hypergraph; the paper's (1 + f/log n) simulation overhead is in
	// SimulationFactor.
	Iterations       int
	Rounds           int
	SimulationFactor float64
	// Stats reports the reduction blowup.
	Stats ILPStats
}

// SolveILP computes an approximate integral solution of a covering ILP via
// the Theorem 19 pipeline: binary expansion to a zero-one program
// (Claim 18), monotone-CNF reduction to hypergraph vertex cover
// (Lemma 14), Algorithm MWHVC, and mapping the cover back to x. The paper
// proves an (f+ε) guarantee; each run additionally certifies
// Value ≤ (f′+ε)·DualLowerBound with f′ the reduced rank.
//
// The Lemma 14 reduction enumerates 2^|row| subsets; constraints must stay
// within about 20 nonzeros after bit expansion (f·⌈log M⌉ ≲ 20).
func SolveILP(p *ILP, opts ...Option) (*ILPSolution, error) {
	if p == nil {
		return nil, ErrNilInstance
	}
	cfg := buildOptions(opts)
	res, err := reduction.SolveILP(&p.inner, cfg, reduction.Options{PruneDominated: true})
	if err != nil {
		return nil, fmt.Errorf("distcover: %w", err)
	}
	return &ILPSolution{
		X:                res.X,
		Value:            res.Value,
		DualLowerBound:   res.Core.DualValue,
		Iterations:       res.Core.Iterations,
		Rounds:           res.Core.Rounds,
		SimulationFactor: res.Stats.SimulationFactor,
		Stats: ILPStats{
			F:                res.Stats.F,
			Delta:            res.Stats.Delta,
			M:                res.Stats.M,
			HypergraphRank:   res.Stats.HgRank,
			HypergraphDegree: res.Stats.HgDelta,
			HypergraphEdges:  res.Stats.HgEdges,
		},
	}, nil
}
