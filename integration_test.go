package distcover

import (
	"bytes"
	"math/rand"
	"testing"
)

// End-to-end integration tests exercising the whole stack through the
// public API only: generation → serialization → solving on every execution
// path → certificates → cross-path agreement.

// randomSetCover builds a feasible random set cover scenario.
func randomSetCover(t *testing.T, seed int64, elements, candidates, spread int) *Instance {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	sets := make([][]int, candidates)
	costs := make([]int64, candidates)
	for s := range sets {
		k := 1 + rng.Intn(spread)
		seen := map[int]bool{}
		for len(sets[s]) < k {
			x := rng.Intn(elements)
			if !seen[x] {
				seen[x] = true
				sets[s] = append(sets[s], x)
			}
		}
		costs[s] = 1 + rng.Int63n(50)
	}
	// Guarantee feasibility: one backstop set covering each element.
	for x := 0; x < elements; x++ {
		sets = append(sets, []int{x})
		costs = append(costs, 100)
	}
	inst, err := NewSetCoverInstance(elements, sets, costs)
	if err != nil {
		t.Fatalf("NewSetCoverInstance: %v", err)
	}
	return inst
}

func TestIntegrationAllPathsAgree(t *testing.T) {
	inst := randomSetCover(t, 1, 40, 60, 4)

	// Serialize and reload; the reloaded instance must solve identically.
	var buf bytes.Buffer
	if _, err := inst.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	reloaded, err := ReadInstance(&buf)
	if err != nil {
		t.Fatal(err)
	}

	base, err := Solve(inst, WithEpsilon(0.5), WithInvariantChecks())
	if err != nil {
		t.Fatal(err)
	}
	again, err := Solve(reloaded, WithEpsilon(0.5))
	if err != nil {
		t.Fatal(err)
	}
	if base.Weight != again.Weight || base.Iterations != again.Iterations {
		t.Error("serialization round trip changed the solve")
	}

	congest, _, err := SolveCongest(inst, WithEpsilon(0.5))
	if err != nil {
		t.Fatal(err)
	}
	parallel, _, err := SolveCongest(inst, WithEpsilon(0.5), WithParallelEngine())
	if err != nil {
		t.Fatal(err)
	}
	tcp, _, err := SolveCongest(inst, WithEpsilon(0.5), WithTCPEngine())
	if err != nil {
		t.Fatal(err)
	}
	for name, sol := range map[string]*Solution{
		"congest": congest, "parallel": parallel, "tcp": tcp,
	} {
		if sol.Weight != base.Weight || sol.Iterations != base.Iterations {
			t.Errorf("%s path disagrees: weight %d vs %d", name, sol.Weight, base.Weight)
		}
		if !inst.IsCover(sol.Cover) {
			t.Errorf("%s path returned non-cover", name)
		}
	}

	exact, err := Solve(inst, WithEpsilon(0.5), WithExactArithmetic(), WithInvariantChecks())
	if err != nil {
		t.Fatal(err)
	}
	if exact.Weight != base.Weight {
		t.Errorf("exact arithmetic changed the cover weight: %d vs %d", exact.Weight, base.Weight)
	}
}

func TestIntegrationCertificatesBind(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		inst := randomSetCover(t, seed, 30, 45, 5)
		f := inst.Stats().Rank
		for _, eps := range []float64{1, 0.25} {
			sol, err := Solve(inst, WithEpsilon(eps))
			if err != nil {
				t.Fatal(err)
			}
			if !inst.IsCover(sol.Cover) {
				t.Fatal("not a cover")
			}
			if sol.RatioBound > float64(f)+eps+1e-9 {
				t.Errorf("seed %d ε=%g: certified ratio %f > f+ε = %f",
					seed, eps, sol.RatioBound, float64(f)+eps)
			}
			if float64(sol.Weight) > sol.RatioBound*sol.DualLowerBound*(1+1e-9) {
				t.Error("certificate arithmetic inconsistent")
			}
		}
	}
}

func TestIntegrationILPThroughPublicAPI(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 5; trial++ {
		nVars := 4 + rng.Intn(4)
		weights := make([]int64, nVars)
		for j := range weights {
			weights[j] = 1 + rng.Int63n(9)
		}
		p := NewILP(weights)
		for i := 0; i < 3+rng.Intn(3); i++ {
			k := 1 + rng.Intn(2)
			vars := rng.Perm(nVars)[:k]
			coefs := make([]int64, k)
			for c := range coefs {
				coefs[c] = 1 + rng.Int63n(3)
			}
			if err := p.AddConstraint(vars, coefs, 1+rng.Int63n(5)); err != nil {
				t.Fatal(err)
			}
		}
		sol, err := SolveILP(p, WithEpsilon(0.5))
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if !p.IsFeasible(sol.X) {
			t.Fatalf("trial %d: infeasible X", trial)
		}
		if float64(sol.Value) < sol.DualLowerBound-1e-9 {
			t.Errorf("trial %d: value %d below its own lower bound %f",
				trial, sol.Value, sol.DualLowerBound)
		}
	}
}

func TestIntegrationTraceConsistency(t *testing.T) {
	inst := randomSetCover(t, 7, 50, 80, 4)
	sol, err := Solve(inst, WithTrace())
	if err != nil {
		t.Fatal(err)
	}
	st := inst.Stats()
	coveredTotal := 0
	for _, it := range sol.Trace {
		coveredTotal += it.CoveredEdges
	}
	if coveredTotal != st.Edges {
		t.Errorf("trace covered %d edges, instance has %d", coveredTotal, st.Edges)
	}
}
