// Package baseline provides the comparison algorithms that Tables 1 and 2
// of the paper cite, so the tables can be regenerated with measured rounds
// and ratios: distributed primal-dual baselines live in the kvy, kmw and
// local subpackages; this package holds their shared result type and the
// centralized quality references (greedy set cover and the sequential
// Bar-Yehuda–Even local-ratio f-approximation).
package baseline

import (
	"container/heap"
	"math"

	"distcover/internal/hypergraph"
)

// Result is the common outcome type for all baselines.
type Result struct {
	// Cover is the computed vertex cover, ascending.
	Cover []hypergraph.VertexID
	// InCover is the indicator vector.
	InCover []bool
	// CoverWeight is w(Cover).
	CoverWeight int64
	// Dual holds final dual variables for primal-dual baselines (nil for
	// greedy, which certifies nothing).
	Dual []float64
	// DualValue is Σδ.
	DualValue float64
	// Iterations counts algorithm iterations; Rounds the CONGEST rounds
	// they correspond to (0 for centralized references).
	Iterations int
	Rounds     int
}

// Finalize derives Cover/CoverWeight/DualValue from InCover and Dual.
func (r *Result) Finalize(g *hypergraph.Hypergraph) {
	r.Cover = r.Cover[:0]
	r.CoverWeight = 0
	for v, in := range r.InCover {
		if in {
			r.Cover = append(r.Cover, hypergraph.VertexID(v))
			r.CoverWeight += g.Weight(hypergraph.VertexID(v))
		}
	}
	r.DualValue = 0
	for _, d := range r.Dual {
		r.DualValue += d
	}
}

// Greedy computes the classical weighted greedy set cover: repeatedly take
// the vertex minimizing weight per newly covered edge. H_m-approximate;
// centralized. It is the quality reference line in the regenerated tables.
func Greedy(g *hypergraph.Hypergraph) *Result {
	res := &Result{InCover: make([]bool, g.NumVertices())}
	covered := make([]bool, g.NumEdges())
	gain := make([]int, g.NumVertices()) // uncovered incident edges
	remaining := g.NumEdges()
	pq := &greedyHeap{}
	for v := 0; v < g.NumVertices(); v++ {
		gain[v] = g.Degree(hypergraph.VertexID(v))
		if gain[v] > 0 {
			heap.Push(pq, greedyItem{v: hypergraph.VertexID(v), gain: gain[v],
				ratio: float64(g.Weight(hypergraph.VertexID(v))) / float64(gain[v])})
		}
	}
	for remaining > 0 && pq.Len() > 0 {
		item := heap.Pop(pq).(greedyItem)
		v := item.v
		if res.InCover[v] || item.gain != gain[v] {
			// Stale entry: reinsert with the current gain if still useful.
			if !res.InCover[v] && gain[v] > 0 {
				heap.Push(pq, greedyItem{v: v, gain: gain[v],
					ratio: float64(g.Weight(v)) / float64(gain[v])})
			}
			continue
		}
		res.InCover[v] = true
		for _, e := range g.Incident(v) {
			if covered[e] {
				continue
			}
			covered[e] = true
			remaining--
			for _, u := range g.Edge(e) {
				gain[u]--
			}
		}
	}
	res.Finalize(g)
	return res
}

type greedyItem struct {
	v     hypergraph.VertexID
	gain  int
	ratio float64
}

type greedyHeap []greedyItem

func (h greedyHeap) Len() int            { return len(h) }
func (h greedyHeap) Less(i, j int) bool  { return h[i].ratio < h[j].ratio }
func (h greedyHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *greedyHeap) Push(x interface{}) { *h = append(*h, x.(greedyItem)) }
func (h *greedyHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// BarYehudaEven computes the sequential local-ratio f-approximation:
// process edges in order, raise δ(e) to the minimum residual slack of its
// vertices, and take all zero-slack vertices. It produces a feasible dual
// certifying w(C) ≤ f·Σδ ≤ f·OPT.
func BarYehudaEven(g *hypergraph.Hypergraph) *Result {
	res := &Result{
		InCover: make([]bool, g.NumVertices()),
		Dual:    make([]float64, g.NumEdges()),
	}
	slack := make([]float64, g.NumVertices())
	for v := 0; v < g.NumVertices(); v++ {
		slack[v] = float64(g.Weight(hypergraph.VertexID(v)))
	}
	for e := 0; e < g.NumEdges(); e++ {
		vs := g.Edge(hypergraph.EdgeID(e))
		stabbed := false
		for _, v := range vs {
			if res.InCover[v] {
				stabbed = true
				break
			}
		}
		if stabbed {
			continue
		}
		raise := math.Inf(1)
		for _, v := range vs {
			if slack[v] < raise {
				raise = slack[v]
			}
		}
		res.Dual[e] = raise
		for _, v := range vs {
			slack[v] -= raise
			if slack[v] <= 0 {
				res.InCover[v] = true
			}
		}
	}
	res.Finalize(g)
	return res
}
