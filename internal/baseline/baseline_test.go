package baseline

import (
	"math"
	"testing"
	"testing/quick"

	"distcover/internal/hypergraph"
	"distcover/internal/lp"
)

func TestGreedyTriangle(t *testing.T) {
	g := hypergraph.MustNew([]int64{1, 2, 3},
		[][]hypergraph.VertexID{{0, 1}, {1, 2}, {0, 2}})
	res := Greedy(g)
	if !g.IsCover(res.Cover) {
		t.Fatal("greedy returned non-cover")
	}
	if res.CoverWeight > 3 {
		t.Errorf("greedy weight = %d, expected ≤ 3 on triangle", res.CoverWeight)
	}
}

func TestGreedyStar(t *testing.T) {
	g, err := hypergraph.Star(20, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	res := Greedy(g)
	if res.CoverWeight != 1 {
		t.Errorf("greedy on star = %d, want 1 (the center)", res.CoverWeight)
	}
}

func TestGreedyLogApproximation(t *testing.T) {
	prop := func(seed int64) bool {
		g, err := hypergraph.UniformRandom(10, 15, 3,
			hypergraph.GenConfig{Seed: seed, Dist: hypergraph.WeightUniformRange, MaxWeight: 8})
		if err != nil {
			return false
		}
		res := Greedy(g)
		if !g.IsCover(res.Cover) {
			return false
		}
		_, opt, err := lp.ExactCover(g, 0)
		if err != nil {
			return false
		}
		// H_m bound: greedy ≤ (ln m + 1)·OPT.
		bound := (math.Log(float64(g.NumEdges())) + 1) * float64(opt)
		return float64(res.CoverWeight) <= bound+1e-9
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestGreedyEdgeless(t *testing.T) {
	g := hypergraph.MustNew([]int64{1, 2}, nil)
	res := Greedy(g)
	if len(res.Cover) != 0 {
		t.Errorf("greedy on edgeless graph picked %v", res.Cover)
	}
}

func TestBarYehudaEvenFApproximation(t *testing.T) {
	prop := func(seed int64) bool {
		g, err := hypergraph.UniformRandom(12, 18, 3,
			hypergraph.GenConfig{Seed: seed, Dist: hypergraph.WeightUniformRange, MaxWeight: 9})
		if err != nil {
			return false
		}
		res := BarYehudaEven(g)
		if !g.IsCover(res.Cover) {
			return false
		}
		// Dual feasible and certificate holds: w(C) ≤ f·Σδ.
		if err := lp.CheckEdgePacking(g, res.Dual, 1e-9); err != nil {
			return false
		}
		f := float64(g.Rank())
		if float64(res.CoverWeight) > f*res.DualValue*(1+1e-9) {
			return false
		}
		// And against the true optimum.
		_, opt, err := lp.ExactCover(g, 0)
		if err != nil {
			return false
		}
		return float64(res.CoverWeight) <= f*float64(opt)+1e-6
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestFinalizeIdempotent(t *testing.T) {
	g := hypergraph.MustNew([]int64{4, 6}, [][]hypergraph.VertexID{{0, 1}})
	res := &Result{InCover: []bool{true, false}, Dual: []float64{2.5}}
	res.Finalize(g)
	res.Finalize(g)
	if res.CoverWeight != 4 || res.DualValue != 2.5 || len(res.Cover) != 1 {
		t.Errorf("Finalize broken: %+v", res)
	}
}
