// Package kmw implements a weight-scale phased primal-dual baseline in the
// style of Kuhn, Moscibroda and Wattenhofer ("The price of being
// near-sighted", SODA 2006) — reference [18] of the paper. The defining
// property the paper contrasts against is the log W factor in the round
// complexity: [18] runs in O(ε⁻⁴·f⁴·log f·log(W·Δ)) rounds.
//
// This reimplementation preserves that dependence by construction: vertex
// weights are bucketed into ⌈log2 W⌉+1 scales and the safe-bidding
// primal-dual of package kvy runs scale by scale, descending, with edges
// bidding only while their minimum-ratio vertex lies in the active scale.
// Sweeps repeat until every edge is covered. Each inner iteration costs two
// CONGEST rounds, and advancing a scale costs one synchronization round
// (nodes agree the scale is exhausted), so the measured rounds grow with
// log W — the shape Table 1/2 row "[18]" shows and experiment E2 measures.
package kmw

import (
	"errors"
	"fmt"
	"math/bits"

	"distcover/internal/baseline"
	"distcover/internal/hypergraph"
)

// ErrBadEpsilon reports ε outside (0, 1].
var ErrBadEpsilon = errors.New("kmw: epsilon must be in (0,1]")

// ErrStalled reports a full sweep over all scales with uncovered edges but
// no progress (cannot happen for valid instances).
var ErrStalled = errors.New("kmw: no progress in a full sweep")

// Run executes the baseline with approximation parameter ε (guarantee
// (f+ε), as for kvy — the scales change rounds, not the certificate).
func Run(g *hypergraph.Hypergraph, eps float64) (*baseline.Result, error) {
	if eps <= 0 || eps > 1 {
		return nil, fmt.Errorf("%w: %g", ErrBadEpsilon, eps)
	}
	n, m := g.NumVertices(), g.NumEdges()
	f := g.Rank()
	if f < 1 {
		f = 1
	}
	beta := eps / (float64(f) + eps)
	res := &baseline.Result{
		InCover: make([]bool, n),
		Dual:    make([]float64, m),
	}
	minW := g.MinWeight()
	if minW < 1 {
		minW = 1
	}
	scaleOf := make([]int, n)
	maxScale := 0
	slack := make([]float64, n)
	tight := make([]float64, n)
	uncovDeg := make([]int, n)
	for v := 0; v < n; v++ {
		w := g.Weight(hypergraph.VertexID(v))
		scaleOf[v] = bits.Len64(uint64(w/minW)) - 1
		if scaleOf[v] > maxScale {
			maxScale = scaleOf[v]
		}
		slack[v] = float64(w)
		tight[v] = beta * float64(w)
		uncovDeg[v] = g.Degree(hypergraph.VertexID(v))
	}
	covered := make([]bool, m)
	remaining := m

	for remaining > 0 {
		progressInSweep := false
		for scale := maxScale; scale >= 0 && remaining > 0; scale-- {
			res.Rounds++ // scale-advance synchronization
			for remaining > 0 {
				// Edge side: bid only if the argmin-ratio vertex is in the
				// active scale.
				bids := make([]float64, 0, remaining)
				bidEdges := make([]hypergraph.EdgeID, 0, remaining)
				for e := 0; e < m; e++ {
					if covered[e] {
						continue
					}
					bid, argScale := -1.0, -1
					for _, v := range g.Edge(hypergraph.EdgeID(e)) {
						r := slack[v] / float64(uncovDeg[v])
						if bid < 0 || r < bid {
							bid = r
							argScale = scaleOf[v]
						}
					}
					if bid > 0 && argScale == scale {
						bids = append(bids, bid)
						bidEdges = append(bidEdges, hypergraph.EdgeID(e))
					}
				}
				if len(bids) == 0 {
					break // scale exhausted
				}
				res.Iterations++
				res.Rounds += 2
				progressInSweep = true
				for i, e := range bidEdges {
					res.Dual[e] += bids[i]
					for _, v := range g.Edge(e) {
						slack[v] -= bids[i]
					}
				}
				for v := 0; v < n; v++ {
					if !res.InCover[v] && uncovDeg[v] > 0 && slack[v] <= tight[v] {
						res.InCover[v] = true
						for _, e := range g.Incident(hypergraph.VertexID(v)) {
							if covered[e] {
								continue
							}
							covered[e] = true
							remaining--
							for _, u := range g.Edge(e) {
								uncovDeg[u]--
							}
						}
					}
				}
			}
		}
		if remaining > 0 && !progressInSweep {
			return nil, fmt.Errorf("%w (%d uncovered)", ErrStalled, remaining)
		}
	}
	res.Finalize(g)
	return res, nil
}
