package kmw

import (
	"errors"
	"testing"
	"testing/quick"

	"distcover/internal/hypergraph"
	"distcover/internal/lp"
)

func TestRunGuarantees(t *testing.T) {
	prop := func(seed int64) bool {
		g, err := hypergraph.UniformRandom(30, 60, 3,
			hypergraph.GenConfig{Seed: seed, Dist: hypergraph.WeightExponential, MaxWeight: 1 << 10})
		if err != nil {
			return false
		}
		res, err := Run(g, 0.5)
		if err != nil {
			return false
		}
		if !g.IsCover(res.Cover) {
			return false
		}
		if err := lp.CheckEdgePacking(g, res.Dual, 1e-9); err != nil {
			return false
		}
		bound := (float64(g.Rank()) + 0.5) * res.DualValue
		return float64(res.CoverWeight) <= bound*(1+1e-9)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestRunBadEpsilon(t *testing.T) {
	g := hypergraph.MustNew([]int64{1, 1}, [][]hypergraph.VertexID{{0, 1}})
	if _, err := Run(g, 0); !errors.Is(err, ErrBadEpsilon) {
		t.Errorf("err = %v, want ErrBadEpsilon", err)
	}
}

func TestRoundsGrowWithWeightSpread(t *testing.T) {
	// The defining property: rounds increase with W at fixed topology.
	build := func(maxW int64) *hypergraph.Hypergraph {
		g, err := hypergraph.UniformRandom(150, 400, 2,
			hypergraph.GenConfig{Seed: 7, Dist: hypergraph.WeightExponential, MaxWeight: maxW})
		if err != nil {
			panic(err)
		}
		return g
	}
	narrow, err := Run(build(1), 0.5)
	if err != nil {
		t.Fatal(err)
	}
	wide, err := Run(build(1<<20), 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if wide.Rounds <= narrow.Rounds {
		t.Errorf("rounds(W=2^20)=%d not larger than rounds(W=1)=%d",
			wide.Rounds, narrow.Rounds)
	}
}

func TestRunEdgeless(t *testing.T) {
	g := hypergraph.MustNew([]int64{3}, nil)
	res, err := Run(g, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cover) != 0 {
		t.Errorf("edgeless result: %+v", res)
	}
}
