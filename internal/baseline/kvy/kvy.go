// Package kvy implements a distributed primal-dual (f+ε)-approximation in
// the style of Khuller, Vishkin and Young ("A Primal-Dual Parallel
// Approximation Technique Applied to Weighted Set and Vertex Covers",
// J. Algorithms 1994) — reference [15] of the paper, the algorithm whose
// O(f·log(f/ε)·log n) round complexity the paper improves on.
//
// Following the KVY schema, dual variables grow multiplicatively: every
// iteration each uncovered edge doubles its dual, capped by the safe raise
// min_{v∈e} slack(v)/|E'(v)| so the packing stays feasible (the raises at
// any vertex sum to at most its slack). Vertices that become (1-β)-tight
// join the cover. Duals start at the iteration-0 value of the paper's
// algorithm, min_v w(v)/(2|E(v)|), and must climb to the weight scale of
// the vertices they tighten, so the number of iterations grows like
// log(W·Δ) + cascade effects — with poly(n) weights, the O(f·log(f/ε)·log n)
// dependence on the instance size that the paper's algorithm eliminates.
//
// One iteration costs two CONGEST rounds (edge collects slack/degree,
// vertices apply raises), mirroring the mapping used for the core
// algorithm so that regenerated tables compare like with like.
package kvy

import (
	"errors"
	"fmt"

	"distcover/internal/baseline"
	"distcover/internal/hypergraph"
)

// ErrBadEpsilon reports ε outside (0, 1].
var ErrBadEpsilon = errors.New("kvy: epsilon must be in (0,1]")

// ErrStalled reports an iteration with uncovered edges but no positive
// bids, which indicates a bug (cannot happen for valid instances).
var ErrStalled = errors.New("kvy: no progress")

// Run executes the baseline and returns its cover, duals and round count.
func Run(g *hypergraph.Hypergraph, eps float64) (*baseline.Result, error) {
	if eps <= 0 || eps > 1 {
		return nil, fmt.Errorf("%w: %g", ErrBadEpsilon, eps)
	}
	n, m := g.NumVertices(), g.NumEdges()
	f := g.Rank()
	if f < 1 {
		f = 1
	}
	beta := eps / (float64(f) + eps)
	res := &baseline.Result{
		InCover: make([]bool, n),
		Dual:    make([]float64, m),
	}
	slack := make([]float64, n) // w(v) - Σδ
	tight := make([]float64, n) // β·w(v): join when slack ≤ tight
	uncovDeg := make([]int, n)  // |E'(v)|
	covered := make([]bool, m)
	for v := 0; v < n; v++ {
		w := float64(g.Weight(hypergraph.VertexID(v)))
		slack[v] = w
		tight[v] = beta * w
		uncovDeg[v] = g.Degree(hypergraph.VertexID(v))
	}
	// Iteration 0: δ(e) = min_v w(v)/(2|E(v)|), as in the paper's
	// algorithm, so both start from the same dual scale.
	for e := 0; e < m; e++ {
		init := -1.0
		for _, v := range g.Edge(hypergraph.EdgeID(e)) {
			r := float64(g.Weight(v)) / float64(2*g.Degree(v))
			if init < 0 || r < init {
				init = r
			}
		}
		// Keep iteration 0 safe: an edge may not raise beyond the safe cap.
		for _, v := range g.Edge(hypergraph.EdgeID(e)) {
			if cap := slack[v] / float64(uncovDeg[v]); cap < init {
				init = cap
			}
		}
		res.Dual[e] = init
		for _, v := range g.Edge(hypergraph.EdgeID(e)) {
			slack[v] -= init
		}
	}
	remaining := m
	for remaining > 0 {
		res.Iterations++
		// Edge side: double the dual, capped by the safe raise.
		bids := make([]float64, 0, remaining)
		bidEdges := make([]hypergraph.EdgeID, 0, remaining)
		for e := 0; e < m; e++ {
			if covered[e] {
				continue
			}
			bid := -1.0
			for _, v := range g.Edge(hypergraph.EdgeID(e)) {
				r := slack[v] / float64(uncovDeg[v])
				if bid < 0 || r < bid {
					bid = r
				}
			}
			if bid > res.Dual[e] {
				bid = res.Dual[e] // multiplicative step: at most double
			}
			if bid > 0 {
				bids = append(bids, bid)
				bidEdges = append(bidEdges, hypergraph.EdgeID(e))
			}
		}
		// Vertex side: apply raises, detect tight vertices.
		for i, e := range bidEdges {
			res.Dual[e] += bids[i]
			for _, v := range g.Edge(e) {
				slack[v] -= bids[i]
			}
		}
		joined := 0
		for v := 0; v < n; v++ {
			if !res.InCover[v] && uncovDeg[v] > 0 && slack[v] <= tight[v] {
				res.InCover[v] = true
				joined++
				for _, e := range g.Incident(hypergraph.VertexID(v)) {
					if covered[e] {
						continue
					}
					covered[e] = true
					remaining--
					for _, u := range g.Edge(e) {
						uncovDeg[u]--
					}
				}
			}
		}
		if len(bids) == 0 && joined == 0 {
			return nil, fmt.Errorf("%w after %d iterations (%d uncovered)",
				ErrStalled, res.Iterations, remaining)
		}
	}
	res.Rounds = 2 * res.Iterations
	res.Finalize(g)
	return res, nil
}
