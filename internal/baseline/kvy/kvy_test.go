package kvy

import (
	"errors"
	"testing"
	"testing/quick"

	"distcover/internal/hypergraph"
	"distcover/internal/lp"
)

func TestRunGuarantees(t *testing.T) {
	prop := func(seed int64) bool {
		g, err := hypergraph.UniformRandom(30, 60, 3,
			hypergraph.GenConfig{Seed: seed, Dist: hypergraph.WeightUniformRange, MaxWeight: 20})
		if err != nil {
			return false
		}
		res, err := Run(g, 0.5)
		if err != nil {
			return false
		}
		if !g.IsCover(res.Cover) {
			return false
		}
		if err := lp.CheckEdgePacking(g, res.Dual, 1e-9); err != nil {
			return false
		}
		// (f+ε) certificate.
		bound := (float64(g.Rank()) + 0.5) * res.DualValue
		return float64(res.CoverWeight) <= bound*(1+1e-9) && res.Rounds == 2*res.Iterations
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestRunBadEpsilon(t *testing.T) {
	g := hypergraph.MustNew([]int64{1, 1}, [][]hypergraph.VertexID{{0, 1}})
	for _, eps := range []float64{0, -1, 1.5} {
		if _, err := Run(g, eps); !errors.Is(err, ErrBadEpsilon) {
			t.Errorf("Run(ε=%g) err = %v, want ErrBadEpsilon", eps, err)
		}
	}
}

func TestRunEdgeless(t *testing.T) {
	g := hypergraph.MustNew([]int64{3}, nil)
	res, err := Run(g, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cover) != 0 || res.Iterations != 0 {
		t.Errorf("edgeless result: %+v", res)
	}
}

func TestRoundsGrowWithEpsilonShrinking(t *testing.T) {
	// Smaller ε requires tighter vertices, hence more iterations.
	g, err := hypergraph.UniformRandom(200, 500, 3,
		hypergraph.GenConfig{Seed: 4, Dist: hypergraph.WeightUniformRange, MaxWeight: 100})
	if err != nil {
		t.Fatal(err)
	}
	loose, err := Run(g, 1)
	if err != nil {
		t.Fatal(err)
	}
	tight, err := Run(g, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if tight.Rounds < loose.Rounds {
		t.Errorf("rounds(ε=0.01)=%d < rounds(ε=1)=%d", tight.Rounds, loose.Rounds)
	}
}
