// Package ky implements a randomized primal-dual baseline in the style of
// Koufogiannakis and Young ("Distributed algorithms for covering, packing
// and maximum weighted matching", Distributed Computing 2011) — reference
// [16] of the paper: a randomized O(log n)-round 2-approximation for
// weighted vertex cover (f-approximation for general covering), the
// randomized bound the paper's deterministic O(log n)-free algorithm is
// compared against in Table 1.
//
// This reimplementation keeps the randomized-bidding character: every
// iteration each uncovered edge flips a fair coin and, on heads, raises its
// dual by its full safe amount min_{v∈e} slack(v)/|E'(v)|; β-tight vertices
// join the cover. Raises at a vertex never exceed its slack, so the dual
// packing stays feasible and the (f+ε) certificate of Claim 20 applies.
// Expected progress per iteration mirrors the deterministic variant up to
// the coin factor, giving O(log)-type round counts with high probability;
// runs are seeded and reproducible.
package ky

import (
	"errors"
	"fmt"
	"math/rand"

	"distcover/internal/baseline"
	"distcover/internal/hypergraph"
)

// ErrBadEpsilon reports ε outside (0, 1].
var ErrBadEpsilon = errors.New("ky: epsilon must be in (0,1]")

// maxStall bounds the consecutive no-progress iterations tolerated before
// declaring a bug; with fair coins the probability of hitting it on a
// feasible instance is astronomically small.
const maxStall = 10_000

// ErrStalled reports exceeding maxStall (cannot happen for valid inputs).
var ErrStalled = errors.New("ky: no progress")

// Run executes the baseline with approximation slack ε and the given seed.
func Run(g *hypergraph.Hypergraph, eps float64, seed int64) (*baseline.Result, error) {
	if eps <= 0 || eps > 1 {
		return nil, fmt.Errorf("%w: %g", ErrBadEpsilon, eps)
	}
	rng := rand.New(rand.NewSource(seed))
	n, m := g.NumVertices(), g.NumEdges()
	f := g.Rank()
	if f < 1 {
		f = 1
	}
	beta := eps / (float64(f) + eps)
	res := &baseline.Result{
		InCover: make([]bool, n),
		Dual:    make([]float64, m),
	}
	slack := make([]float64, n)
	tight := make([]float64, n)
	uncovDeg := make([]int, n)
	for v := 0; v < n; v++ {
		w := float64(g.Weight(hypergraph.VertexID(v)))
		slack[v] = w
		tight[v] = beta * w
		uncovDeg[v] = g.Degree(hypergraph.VertexID(v))
	}
	covered := make([]bool, m)
	remaining := m
	stall := 0
	for remaining > 0 {
		res.Iterations++
		type raise struct {
			e   hypergraph.EdgeID
			amt float64
		}
		var raises []raise
		for e := 0; e < m; e++ {
			if covered[e] || rng.Intn(2) == 0 {
				continue
			}
			amt := -1.0
			for _, v := range g.Edge(hypergraph.EdgeID(e)) {
				r := slack[v] / float64(uncovDeg[v])
				if amt < 0 || r < amt {
					amt = r
				}
			}
			if amt > 0 {
				raises = append(raises, raise{e: hypergraph.EdgeID(e), amt: amt})
			}
		}
		// The coin decides participation, but safety must hold for the
		// worst case (all heads), which the per-degree split provides.
		for _, r := range raises {
			res.Dual[r.e] += r.amt
			for _, v := range g.Edge(r.e) {
				slack[v] -= r.amt
			}
		}
		joined := 0
		for v := 0; v < n; v++ {
			if !res.InCover[v] && uncovDeg[v] > 0 && slack[v] <= tight[v] {
				res.InCover[v] = true
				joined++
				for _, e := range g.Incident(hypergraph.VertexID(v)) {
					if covered[e] {
						continue
					}
					covered[e] = true
					remaining--
					for _, u := range g.Edge(e) {
						uncovDeg[u]--
					}
				}
			}
		}
		if len(raises) == 0 && joined == 0 {
			stall++
			if stall > maxStall {
				return nil, fmt.Errorf("%w after %d iterations", ErrStalled, res.Iterations)
			}
		} else {
			stall = 0
		}
	}
	res.Rounds = 2 * res.Iterations
	res.Finalize(g)
	return res, nil
}
