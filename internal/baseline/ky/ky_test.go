package ky

import (
	"errors"
	"testing"
	"testing/quick"

	"distcover/internal/hypergraph"
	"distcover/internal/lp"
)

func TestRunGuarantees(t *testing.T) {
	prop := func(seed int64) bool {
		g, err := hypergraph.UniformRandom(30, 60, 3,
			hypergraph.GenConfig{Seed: seed, Dist: hypergraph.WeightUniformRange, MaxWeight: 25})
		if err != nil {
			return false
		}
		res, err := Run(g, 0.5, seed)
		if err != nil {
			return false
		}
		if !g.IsCover(res.Cover) {
			return false
		}
		if err := lp.CheckEdgePacking(g, res.Dual, 1e-9); err != nil {
			return false
		}
		bound := (float64(g.Rank()) + 0.5) * res.DualValue
		return float64(res.CoverWeight) <= bound*(1+1e-9)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestRunDeterministicPerSeed(t *testing.T) {
	g, err := hypergraph.UniformRandom(40, 80, 2, hypergraph.GenConfig{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	a, err := Run(g, 1, 99)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(g, 1, 99)
	if err != nil {
		t.Fatal(err)
	}
	if a.CoverWeight != b.CoverWeight || a.Iterations != b.Iterations {
		t.Error("same seed produced different runs")
	}
}

func TestRunBadEpsilon(t *testing.T) {
	g := hypergraph.MustNew([]int64{1, 1}, [][]hypergraph.VertexID{{0, 1}})
	if _, err := Run(g, 0, 1); !errors.Is(err, ErrBadEpsilon) {
		t.Errorf("err = %v, want ErrBadEpsilon", err)
	}
}

func TestRunEdgeless(t *testing.T) {
	g := hypergraph.MustNew([]int64{2}, nil)
	res, err := Run(g, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cover) != 0 {
		t.Errorf("edgeless cover: %v", res.Cover)
	}
}
