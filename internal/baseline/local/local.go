// Package local implements a color-by-color local-ratio f-approximation in
// the style of Åstrand and Suomela ("Fast distributed approximation
// algorithms for vertex cover and set cover in anonymous networks",
// SPAA 2010) — reference [2] of the paper, whose round complexity is
// polynomial in Δ (O(f²Δ² + fΔ·log* W)).
//
// The edge-conflict graph (edges sharing a vertex) is colored greedily with
// at most f·(Δ-1)+1 colors; color classes are processed sequentially.
// Within a class no two edges share a vertex, so each uncovered edge can
// raise its dual to the full minimum slack of its vertices without
// coordination, making the minimum vertex fully tight; fully tight vertices
// join the cover. One pass covers every edge, and the 1-tight cover
// certifies w(C) ≤ f·Σδ ≤ f·OPT (local ratio / Bar-Yehuda–Even).
//
// The round cost is proportional to the number of colors — the poly(Δ)
// shape of the [2] rows in Tables 1 and 2. Greedy coloring itself is
// simulated centrally and charged one round per color, matching the
// standard distributed implementation's order of growth.
package local

import (
	"distcover/internal/baseline"
	"distcover/internal/hypergraph"
)

// Result extends the baseline result with the coloring size.
type Result struct {
	baseline.Result
	// Colors is the number of edge colors used; rounds are proportional.
	Colors int
}

// Run executes the baseline.
func Run(g *hypergraph.Hypergraph) *Result {
	n, m := g.NumVertices(), g.NumEdges()
	res := &Result{Result: baseline.Result{
		InCover: make([]bool, n),
		Dual:    make([]float64, m),
	}}
	if m == 0 {
		res.Finalize(g)
		return res
	}
	// Greedy conflict coloring in edge-id order: the color of e is the
	// smallest not used by an earlier edge sharing a vertex.
	color := make([]int, m)
	maxColor := 0
	used := make(map[int]bool)
	for e := 0; e < m; e++ {
		for k := range used {
			delete(used, k)
		}
		for _, v := range g.Edge(hypergraph.EdgeID(e)) {
			for _, e2 := range g.Incident(v) {
				if int(e2) < e {
					used[color[e2]] = true
				}
			}
		}
		c := 0
		for used[c] {
			c++
		}
		color[e] = c
		if c > maxColor {
			maxColor = c
		}
	}
	res.Colors = maxColor + 1

	slack := make([]float64, n)
	for v := 0; v < n; v++ {
		slack[v] = float64(g.Weight(hypergraph.VertexID(v)))
	}
	covered := make([]bool, m)
	for c := 0; c <= maxColor; c++ {
		res.Iterations++
		for e := 0; e < m; e++ {
			if color[e] != c || covered[e] {
				continue
			}
			vs := g.Edge(hypergraph.EdgeID(e))
			stabbed := false
			for _, v := range vs {
				if res.InCover[v] {
					stabbed = true
					break
				}
			}
			if stabbed {
				covered[e] = true
				continue
			}
			raise := -1.0
			for _, v := range vs {
				if raise < 0 || slack[v] < raise {
					raise = slack[v]
				}
			}
			res.Dual[e] = raise
			for _, v := range vs {
				slack[v] -= raise
				if slack[v] <= 0 {
					res.InCover[v] = true
				}
			}
			covered[e] = true
		}
	}
	// One round to learn the coloring per class plus two per processing
	// step, in the spirit of the distributed implementation.
	res.Rounds = 3 * res.Colors
	res.Finalize(g)
	return res
}
