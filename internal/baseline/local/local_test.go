package local

import (
	"testing"
	"testing/quick"

	"distcover/internal/hypergraph"
	"distcover/internal/lp"
)

func TestRunFApproximation(t *testing.T) {
	prop := func(seed int64) bool {
		g, err := hypergraph.UniformRandom(25, 50, 3,
			hypergraph.GenConfig{Seed: seed, Dist: hypergraph.WeightUniformRange, MaxWeight: 15})
		if err != nil {
			return false
		}
		res := Run(g)
		if !g.IsCover(res.Cover) {
			return false
		}
		if err := lp.CheckEdgePacking(g, res.Dual, 1e-9); err != nil {
			return false
		}
		// Exact f-approximation certificate.
		f := float64(g.Rank())
		return float64(res.CoverWeight) <= f*res.DualValue*(1+1e-9)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestColorsBounded(t *testing.T) {
	g, err := hypergraph.UniformRandom(40, 100, 3, hypergraph.GenConfig{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	res := Run(g)
	// Greedy coloring of the edge conflict graph uses ≤ f·(Δ-1)+1 colors.
	bound := g.Rank()*(g.MaxDegree()-1) + 1
	if res.Colors > bound {
		t.Errorf("colors = %d exceeds f(Δ-1)+1 = %d", res.Colors, bound)
	}
	if res.Rounds != 3*res.Colors {
		t.Errorf("rounds = %d, want 3·colors = %d", res.Rounds, 3*res.Colors)
	}
}

func TestRoundsGrowWithDelta(t *testing.T) {
	// poly(Δ) rounds: a high-degree star forces ~Δ colors.
	small, err := hypergraph.Star(4, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	big, err := hypergraph.Star(64, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	rSmall, rBig := Run(small), Run(big)
	if rBig.Colors <= rSmall.Colors {
		t.Errorf("colors did not grow with Δ: %d vs %d", rSmall.Colors, rBig.Colors)
	}
	if rBig.Colors < 64 {
		t.Errorf("star with Δ=64 needs ≥ 64 colors, got %d", rBig.Colors)
	}
}

func TestRunEdgeless(t *testing.T) {
	g := hypergraph.MustNew([]int64{3}, nil)
	res := Run(g)
	if len(res.Cover) != 0 || res.Colors != 0 {
		t.Errorf("edgeless result: %+v", res)
	}
}

func TestStarWithinFOfOptimum(t *testing.T) {
	// Unit-weight star: OPT = 1 (the center). The first processed edge
	// tightens both endpoints (equal weights), so local ratio pays 2 —
	// exactly its f·OPT worst case for f = 2.
	g, err := hypergraph.Star(10, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	res := Run(g)
	if res.CoverWeight > 2 {
		t.Errorf("star cover weight = %d, want ≤ f·OPT = 2", res.CoverWeight)
	}
	if !g.IsCover(res.Cover) {
		t.Error("star not covered")
	}
}
