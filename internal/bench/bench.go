// Package bench is the experiment harness that regenerates the paper's
// evaluation artifacts: Table 1 (distributed MWVC algorithms) and Table 2
// (distributed MWHVC algorithms) as *measured* round counts and
// approximation ratios, plus the theorem-shape and throughput experiments
// E1–E17 indexed by Registry (run `benchharness -list`; E12 and E14–E16
// live in the sessions subpackage). Each experiment returns printable
// tables consumed by cmd/benchharness and by the root-level benchmarks.
package bench

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// Config parameterizes an experiment run.
type Config struct {
	// Quick shrinks the sweeps to test/CI scale (seconds, not minutes).
	Quick bool
	// Seed makes workload generation deterministic (0 is a valid seed).
	Seed int64
	// Workers overrides the worker-count sweep of the scaling suite (E17);
	// empty uses the default 1/2/4/8 (benchharness -workers).
	Workers []int
}

// Table is a printable experiment result.
type Table struct {
	// ID is the experiment id (T1, T2, E1..E17).
	ID string
	// Title describes what the table reproduces.
	Title string
	// Header names the columns.
	Header []string
	// Rows holds the formatted cells.
	Rows [][]string
	// Notes carries the shape checks and paper references.
	Notes []string
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// Fprint renders the table with aligned columns.
func (t *Table) Fprint(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	printRow := func(cells []string) {
		var sb strings.Builder
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			sb.WriteString(c)
			if i < len(widths) {
				for p := len(c); p < widths[i]; p++ {
					sb.WriteByte(' ')
				}
			}
		}
		fmt.Fprintln(w, strings.TrimRight(sb.String(), " "))
	}
	printRow(t.Header)
	for _, row := range t.Rows {
		printRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "note: %s\n", n)
	}
	fmt.Fprintln(w)
}

// Experiment is a registered experiment.
type Experiment struct {
	ID    string
	Title string
	Run   func(Config) ([]Table, error)
}

// Registry returns all experiments in presentation order.
func Registry() []Experiment {
	return []Experiment{
		{ID: "T1", Title: "Table 1: distributed MWVC algorithms (f=2), measured", Run: Table1},
		{ID: "T2", Title: "Table 2: distributed MWHVC algorithms, measured", Run: Table2},
		{ID: "E1", Title: "Rounds vs Δ (Theorem 9 / Corollary 11 shape)", Run: RoundsVsDelta},
		{ID: "E2", Title: "Rounds vs weight spread W (weight independence)", Run: RoundsVsW},
		{ID: "E3", Title: "Approximation ratio vs the (f+ε) guarantee", Run: ApproxRatio},
		{ID: "E4", Title: "f-approximation mode: rounds vs n (Corollary 10)", Run: FApproxRounds},
		{ID: "E5", Title: "Covering ILPs via the Theorem 19 pipeline", Run: ILPPipeline},
		{ID: "E6", Title: "Appendix C variant: iterations and level increments", Run: VariantComparison},
		{ID: "E7", Title: "α ablation (Theorem 8: log_α Δ + f·z·α)", Run: AlphaAblation},
		{ID: "E8", Title: "CONGEST conformance: message sizes and round formula", Run: MessageSize},
		{ID: "E9", Title: "Shrinking ε (Corollaries 11 and 12)", Run: EpsilonRange},
		{ID: "E10", Title: "Local α(e): no global knowledge of Δ (Theorem 9 remark)", Run: LocalAlpha},
		{ID: "E11", Title: "Engine throughput: goroutine-per-node vs sharded worker pool", Run: EngineThroughput},
		{ID: "E13", Title: "Direct solver throughput: chunk-parallel flat runner vs sharded CONGEST", Run: FlatThroughput},
		{ID: "E17", Title: "Multicore scaling: flat runner worker sweep with speedup gate", Run: FlatScaling},
	}
}

// Run executes one experiment by id ("all" runs everything).
func Run(id string, cfg Config) ([]Table, error) {
	if strings.EqualFold(id, "all") {
		var out []Table
		for _, exp := range Registry() {
			tables, err := exp.Run(cfg)
			if err != nil {
				return nil, fmt.Errorf("bench %s: %w", exp.ID, err)
			}
			out = append(out, tables...)
		}
		return out, nil
	}
	for _, exp := range Registry() {
		if strings.EqualFold(exp.ID, id) {
			return exp.Run(cfg)
		}
	}
	return nil, fmt.Errorf("bench: unknown experiment %q (have %s)", id, strings.Join(IDs(), ", "))
}

// IDs lists the registered experiment ids.
func IDs() []string {
	var ids []string
	for _, exp := range Registry() {
		ids = append(ids, exp.ID)
	}
	sort.Strings(ids)
	return ids
}

// fmtF formats a float compactly.
func fmtF(v float64) string { return fmt.Sprintf("%.3f", v) }

// fmtI formats an int.
func fmtI(v int) string { return fmt.Sprintf("%d", v) }

// fmtI64 formats an int64.
func fmtI64(v int64) string { return fmt.Sprintf("%d", v) }
