package bench

import (
	"bytes"
	"strconv"
	"strings"
	"testing"
)

func quickCfg() Config { return Config{Quick: true, Seed: 42} }

func TestRegistryRunsAllQuick(t *testing.T) {
	for _, exp := range Registry() {
		exp := exp
		t.Run(exp.ID, func(t *testing.T) {
			tables, err := exp.Run(quickCfg())
			if err != nil {
				t.Fatalf("%s: %v", exp.ID, err)
			}
			if len(tables) == 0 {
				t.Fatalf("%s returned no tables", exp.ID)
			}
			for _, tab := range tables {
				if len(tab.Rows) == 0 {
					t.Errorf("%s table %q has no rows", exp.ID, tab.Title)
				}
				for _, row := range tab.Rows {
					if len(row) != len(tab.Header) {
						t.Errorf("%s table %q row width %d != header %d",
							exp.ID, tab.Title, len(row), len(tab.Header))
					}
				}
				var buf bytes.Buffer
				tab.Fprint(&buf)
				if !strings.Contains(buf.String(), tab.ID) {
					t.Errorf("printed table missing id header")
				}
			}
		})
	}
}

func TestRunDispatch(t *testing.T) {
	if _, err := Run("T1", quickCfg()); err != nil {
		t.Errorf("Run(T1): %v", err)
	}
	if _, err := Run("t1", quickCfg()); err != nil {
		t.Errorf("Run is not case-insensitive: %v", err)
	}
	if _, err := Run("nope", quickCfg()); err == nil {
		t.Error("unknown experiment accepted")
	}
	if ids := IDs(); len(ids) != len(Registry()) {
		t.Errorf("IDs() returned %d, want %d", len(ids), len(Registry()))
	}
}

func TestRunAll(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	tables, err := Run("all", quickCfg())
	if err != nil {
		t.Fatalf("Run(all): %v", err)
	}
	if len(tables) < len(Registry()) {
		t.Errorf("Run(all) returned %d tables for %d experiments", len(tables), len(Registry()))
	}
}

// TestTable1GuaranteesHold parses the printed ratio column and asserts the
// certified guarantee of every algorithm row.
func TestTable1GuaranteesHold(t *testing.T) {
	tables, err := Table1(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	tab := tables[0]
	ratioCol := len(tab.Header) - 1
	for _, row := range tab.Rows {
		ratio, err := strconv.ParseFloat(row[ratioCol], 64)
		if err != nil {
			t.Fatalf("bad ratio cell %q: %v", row[ratioCol], err)
		}
		limit := 3.0 + 1e-6 // worst guarantee in the table is 2+ε with ε=1
		if strings.HasPrefix(row[0], "greedy") {
			limit = 20 // H_m reference line, not a primal-dual certificate
		}
		if ratio > limit {
			t.Errorf("%s: certified ratio %f exceeds %f", row[0], ratio, limit)
		}
	}
}

// TestE2WeightIndependence asserts the headline claim on the regenerated
// table: our rounds flat in W, KMW-style increasing.
func TestE2WeightIndependence(t *testing.T) {
	tables, err := RoundsVsW(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	tab := tables[0]
	first, last := tab.Rows[0], tab.Rows[len(tab.Rows)-1]
	oursFirst, _ := strconv.Atoi(first[1])
	oursLast, _ := strconv.Atoi(last[1])
	kmwFirst, _ := strconv.Atoi(first[3])
	kmwLast, _ := strconv.Atoi(last[3])
	// Ours may drift by small constants; KMW must grow markedly.
	if oursLast > 3*oursFirst+8 {
		t.Errorf("our rounds grew with W: %d -> %d", oursFirst, oursLast)
	}
	if kmwLast <= kmwFirst {
		t.Errorf("KMW rounds did not grow with W: %d -> %d", kmwFirst, kmwLast)
	}
}

// TestE6SingleLevelColumn asserts Corollary 21 on the regenerated table.
func TestE6SingleLevelColumn(t *testing.T) {
	tables, err := VariantComparison(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	tab := tables[0]
	col := len(tab.Header) - 1
	for _, row := range tab.Rows {
		v, err := strconv.Atoi(row[col])
		if err != nil {
			t.Fatal(err)
		}
		if v > 1 {
			t.Errorf("single-level max increment = %d > 1", v)
		}
	}
}
