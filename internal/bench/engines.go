package bench

import (
	"fmt"
	"time"

	"distcover/internal/congest"
	"distcover/internal/core"
	"distcover/internal/hypergraph"
)

// engineWorkload is one instance family member of the throughput suite,
// sized so the CONGEST network (vertex nodes + edge nodes) hits the target
// scale.
type engineWorkload struct {
	name string
	g    *hypergraph.Hypergraph
}

// engineWorkloads builds the throughput instances. Full mode includes the
// million-node network the ROADMAP's scale goal is measured on; quick mode
// shrinks to CI scale. Power-law instances stress the sharded engine with
// skewed per-node work (hub vertices own most of the links).
func engineWorkloads(cfg Config) ([]engineWorkload, error) {
	type spec struct {
		name       string
		kind       string // "regular" | "powerlaw"
		n, m, d, f int
	}
	specs := pick(cfg, []spec{
		// n + m = 1_000_000 CONGEST nodes, ~2.4M links.
		{name: "regular-1M", kind: "regular", n: 400_000, d: 6, f: 4},
		// Heavy-tailed degrees at 300k nodes: a few hubs see ~10³ links.
		{name: "powerlaw-300k", kind: "powerlaw", n: 120_000, m: 180_000, f: 3},
	}, []spec{
		{name: "regular-30k", kind: "regular", n: 12_000, d: 6, f: 4},
		{name: "powerlaw-10k", kind: "powerlaw", n: 4_000, m: 6_000, f: 3},
	})
	var out []engineWorkload
	for _, s := range specs {
		var (
			g   *hypergraph.Hypergraph
			err error
		)
		switch s.kind {
		case "regular":
			g, err = hypergraph.RegularLike(s.n, s.d, s.f, hypergraph.GenConfig{
				Seed: cfg.Seed, Dist: hypergraph.WeightUniformRange, MaxWeight: 1000,
			})
		case "powerlaw":
			g, err = hypergraph.PowerLaw(s.n, s.m, s.f, hypergraph.GenConfig{
				Seed: cfg.Seed, Dist: hypergraph.WeightExponential, MaxWeight: 1 << 12,
			})
		}
		if err != nil {
			return nil, fmt.Errorf("bench: engine workload %s: %w", s.name, err)
		}
		out = append(out, engineWorkload{name: s.name, g: g})
	}
	return out, nil
}

// throughputEngines lists the measured engines in presentation order. The
// TCP engine is excluded: one socket per node caps it far below this scale.
func throughputEngines() []struct {
	name string
	eng  congest.Engine
} {
	return []struct {
		name string
		eng  congest.Engine
	}{
		{"sequential", congest.SequentialEngine{}},
		{"parallel", congest.ParallelEngine{}},
		{"sharded", congest.ShardedEngine{}},
	}
}

// MeasureEngines runs the engine-throughput suite once and returns both the
// named measurements (for the regression baseline) and the printable table.
// Every engine solves the identical instance and the suite fails if the
// engines disagree on the result — throughput numbers for wrong answers are
// worthless.
func MeasureEngines(cfg Config) ([]Measurement, []Table, error) {
	mode := pick(cfg, "full", "quick")
	t := Table{
		ID:     "E11",
		Title:  "Engine throughput: goroutine-per-node vs sharded worker pool",
		Header: []string{"workload", "engine", "nodes", "rounds", "msgs", "ms", "msgs/s", "vs parallel"},
	}
	var ms []Measurement
	opts := core.DefaultOptions()
	workloads, err := engineWorkloads(cfg)
	if err != nil {
		return nil, nil, err
	}
	for _, wl := range workloads {
		netNodes := wl.g.NumVertices() + wl.g.NumEdges()
		var (
			refWeight   int64
			refRounds   int
			refMessages int64
			buildBest   time.Duration
			elapsed     = map[string]time.Duration{}
		)
		// Quick mode re-runs each engine and keeps the fastest time: the
		// workloads are milliseconds there, and best-of-k is what makes a
		// 20% CI tolerance hold. Full-mode runs are long enough to be
		// stable (and the parallel engine's 1M-node run is too expensive
		// to repeat).
		reps := pick(cfg, 1, 3)
		for i, e := range throughputEngines() {
			var (
				res     *core.Result
				metrics congest.Metrics
				d       time.Duration
			)
			for r := 0; r < reps; r++ {
				// Networks are stateful, so every rep rebuilds; the build is
				// timed separately (its own reading below) and the per-engine
				// reading covers engine execution only — construction cost is
				// engine-independent and would dilute the throughput ratio.
				buildStart := time.Now()
				nw, vnodes, enodes, err := core.BuildNetwork(wl.g, opts)
				buildD := time.Since(buildStart)
				if err != nil {
					return nil, nil, fmt.Errorf("bench: build %s: %w", wl.name, err)
				}
				if buildBest == 0 || buildD < buildBest {
					buildBest = buildD
				}
				start := time.Now()
				repRes, repMetrics, err := core.RunBuiltNetwork(wl.g, opts, nw, vnodes, enodes, e.eng, congest.Options{})
				repD := time.Since(start)
				if err != nil {
					return nil, nil, fmt.Errorf("bench: engine %s on %s: %w", e.name, wl.name, err)
				}
				if r == 0 || repD < d {
					res, metrics, d = repRes, repMetrics, repD
				}
			}
			if i == 0 {
				refWeight, refRounds, refMessages = res.CoverWeight, metrics.Rounds, metrics.Messages
			} else if res.CoverWeight != refWeight || metrics.Rounds != refRounds || metrics.Messages != refMessages {
				return nil, nil, fmt.Errorf(
					"bench: engine %s diverges on %s: weight=%d rounds=%d msgs=%d, want %d/%d/%d",
					e.name, wl.name, res.CoverWeight, metrics.Rounds, metrics.Messages,
					refWeight, refRounds, refMessages)
			}
			elapsed[e.name] = d
			ms = append(ms, Measurement{
				Name:  fmt.Sprintf("%s/%s/%s/ns", mode, wl.name, e.name),
				Value: float64(d.Nanoseconds()), Unit: "ns",
				// Raw wall clock jitters heavily on shared runners; only a
				// multiple-scale slowdown is a trustworthy regression.
				Tolerance: 0.75,
			})
		}
		// Rows are emitted only after every engine has run, so the
		// vs-parallel cell is known for all of them (including sequential,
		// which is measured before parallel).
		for _, e := range throughputEngines() {
			d := elapsed[e.name]
			t.AddRow(wl.name, e.name, fmtI(netNodes), fmtI(refRounds),
				fmtI64(refMessages), fmtF(float64(d.Milliseconds())),
				fmt.Sprintf("%.2fM", float64(refMessages)/d.Seconds()/1e6),
				speedupCell(elapsed, e.name))
		}
		ms = append(ms,
			Measurement{
				Name:  fmt.Sprintf("%s/%s/build/ns", mode, wl.name),
				Value: float64(buildBest.Nanoseconds()), Unit: "ns",
				Tolerance: 0.75,
			},
			// Rounds and message counts are exact for a fixed seed — any
			// drift is a real protocol change, so the band is merely
			// float-formatting slack, not the loose wall-clock default.
			Measurement{
				Name:  fmt.Sprintf("%s/%s/rounds", mode, wl.name),
				Value: float64(refRounds), Unit: "rounds",
				Tolerance: 0.001,
			},
			Measurement{
				Name:  fmt.Sprintf("%s/%s/messages", mode, wl.name),
				Value: float64(refMessages), Unit: "msgs",
				Tolerance: 0.001,
			},
			Measurement{
				Name:           fmt.Sprintf("%s/%s/speedup-sharded-vs-parallel", mode, wl.name),
				Value:          elapsed["parallel"].Seconds() / elapsed["sharded"].Seconds(),
				Unit:           "x",
				HigherIsBetter: true,
				// The ratio cancels machine speed but not topology: CI
				// runners have different core counts than the baseline
				// machine, and both legs jitter. The band is wide enough to
				// absorb that while still failing well before the tentpole
				// 5x multiple is lost (quick baselines sit near 16x).
				Tolerance: 0.6,
			})
	}
	t.Notes = append(t.Notes,
		"all engines must produce identical covers, rounds and message counts (verified per row)",
		"sharded-vs-parallel speedup is the tentpole metric; BENCH_baseline.json pins it")
	return ms, []Table{t}, nil
}

// speedupCell formats this engine's time relative to the parallel engine,
// once both are known.
func speedupCell(elapsed map[string]time.Duration, name string) string {
	p, ok := elapsed["parallel"]
	if !ok || name == "parallel" {
		return "-"
	}
	return fmt.Sprintf("%.1fx", p.Seconds()/elapsed[name].Seconds())
}

// EngineThroughput is the Registry adapter for MeasureEngines.
func EngineThroughput(cfg Config) ([]Table, error) {
	_, tables, err := MeasureEngines(cfg)
	return tables, err
}
