package bench

import (
	"fmt"

	"distcover/internal/baseline"
	"distcover/internal/baseline/kmw"
	"distcover/internal/baseline/kvy"
	"distcover/internal/baseline/ky"
	"distcover/internal/baseline/local"
	"distcover/internal/core"
	"distcover/internal/hypergraph"
	"distcover/internal/lp"
)

// algoRun is one algorithm's measured outcome on one workload.
type algoRun struct {
	rounds int
	ratio  float64 // cover weight / dual lower bound
	weight int64
}

// runAlgo dispatches by algorithm key. The dual lower bound used for the
// ratio is the algorithm's own certificate when it produces one, else the
// centralized greedy dual bound.
func runAlgo(key string, g *hypergraph.Hypergraph) (algoRun, error) {
	ratioOf := func(w int64, dual float64) float64 {
		if dual <= 0 {
			return 1
		}
		return float64(w) / dual
	}
	switch key {
	case "this work (f+ε, ε=1)", "this work (2+ε, ε=1)":
		res, err := core.Run(g, core.DefaultOptions())
		if err != nil {
			return algoRun{}, err
		}
		return algoRun{rounds: res.Rounds, ratio: res.RatioBound, weight: res.CoverWeight}, nil
	case "this work (f+ε, ε=0.1)", "this work (2+ε, ε=0.1)":
		opts := core.DefaultOptions()
		opts.Epsilon = 0.1
		res, err := core.Run(g, opts)
		if err != nil {
			return algoRun{}, err
		}
		return algoRun{rounds: res.Rounds, ratio: res.RatioBound, weight: res.CoverWeight}, nil
	case "this work (f-approx)", "this work (2-approx)":
		opts := core.DefaultOptions()
		opts.FApprox = true
		res, err := core.Run(g, opts)
		if err != nil {
			return algoRun{}, err
		}
		return algoRun{rounds: res.Rounds, ratio: res.RatioBound, weight: res.CoverWeight}, nil
	case "KVY [15] (f+ε, ε=1)":
		res, err := kvy.Run(g, 1)
		if err != nil {
			return algoRun{}, err
		}
		return algoRun{rounds: res.Rounds, ratio: ratioOf(res.CoverWeight, res.DualValue), weight: res.CoverWeight}, nil
	case "KY [16]-style (rand, f+ε, ε=1)":
		res, err := ky.Run(g, 1, 12345)
		if err != nil {
			return algoRun{}, err
		}
		return algoRun{rounds: res.Rounds, ratio: ratioOf(res.CoverWeight, res.DualValue), weight: res.CoverWeight}, nil
	case "KMW [18]-style (f+ε, ε=1)":
		res, err := kmw.Run(g, 1)
		if err != nil {
			return algoRun{}, err
		}
		return algoRun{rounds: res.Rounds, ratio: ratioOf(res.CoverWeight, res.DualValue), weight: res.CoverWeight}, nil
	case "Åstrand-Suomela [2]-style (f)":
		res := local.Run(g)
		return algoRun{rounds: res.Rounds, ratio: ratioOf(res.CoverWeight, res.DualValue), weight: res.CoverWeight}, nil
	case "Bar-Yehuda-Even (seq, f)":
		res := baseline.BarYehudaEven(g)
		return algoRun{rounds: 0, ratio: ratioOf(res.CoverWeight, res.DualValue), weight: res.CoverWeight}, nil
	case "greedy (seq, H_m)":
		res := baseline.Greedy(g)
		lb := lp.GreedyDualBound(g)
		return algoRun{rounds: 0, ratio: ratioOf(res.CoverWeight, lb), weight: res.CoverWeight}, nil
	default:
		return algoRun{}, fmt.Errorf("bench: unknown algorithm %q", key)
	}
}

// coverTable renders one table row per algorithm: guarantee, rounds per
// workload, and the worst measured ratio.
func coverTable(id, title string, algos []struct{ key, guarantee string }, loads []workload) (Table, error) {
	t := Table{ID: id, Title: title}
	t.Header = append(t.Header, "algorithm", "guarantee")
	for _, l := range loads {
		t.Header = append(t.Header, "rounds@"+l.name)
	}
	t.Header = append(t.Header, "max ratio")
	for _, a := range algos {
		row := []string{a.key, a.guarantee}
		maxRatio := 0.0
		for _, l := range loads {
			run, err := runAlgo(a.key, l.g)
			if err != nil {
				return t, fmt.Errorf("%s on %s: %w", a.key, l.name, err)
			}
			if run.rounds > 0 {
				row = append(row, fmtI(run.rounds))
			} else {
				row = append(row, "-")
			}
			if run.ratio > maxRatio {
				maxRatio = run.ratio
			}
		}
		row = append(row, fmtF(maxRatio))
		t.AddRow(row...)
	}
	return t, nil
}

// Table1 regenerates Table 1 (MWVC, f = 2): measured rounds and certified
// ratios for this work against the baseline families the paper cites, on
// random bounded-degree graphs with exponentially spread weights.
func Table1(cfg Config) ([]Table, error) {
	sizes := pick(cfg, []int{2_000, 20_000, 100_000}, []int{300, 1_200})
	loads, err := graphFamily(sizes, 10, 2, hypergraph.WeightExponential, 1<<16, cfg.Seed)
	if err != nil {
		return nil, err
	}
	algos := []struct{ key, guarantee string }{
		{"this work (2+ε, ε=1)", "2+ε"},
		{"this work (2+ε, ε=0.1)", "2+ε"},
		{"this work (2-approx)", "2"},
		{"KVY [15] (f+ε, ε=1)", "2+ε"},
		{"KY [16]-style (rand, f+ε, ε=1)", "2+ε (rand)"},
		{"KMW [18]-style (f+ε, ε=1)", "2+ε"},
		{"Åstrand-Suomela [2]-style (f)", "2"},
		{"Bar-Yehuda-Even (seq, f)", "2 (seq)"},
		{"greedy (seq, H_m)", "ln m (seq)"},
	}
	t, err := coverTable("T1", "distributed MWVC (f=2), d≈10, W=2^16", algos, loads)
	if err != nil {
		return nil, err
	}
	t.Notes = append(t.Notes,
		"paper's shape: this work's rounds are flat in n and W; KVY grows with n, KMW with W",
		"ratio column certifies w(C)/Σδ — must stay ≤ guarantee",
	)
	return []Table{t}, nil
}

// Table2 regenerates Table 2 (MWHVC, general f).
func Table2(cfg Config) ([]Table, error) {
	fs := pick(cfg, []int{3, 5}, []int{3})
	sizes := pick(cfg, []int{2_000, 20_000}, []int{400})
	algos := []struct{ key, guarantee string }{
		{"this work (f+ε, ε=1)", "f+ε"},
		{"this work (f+ε, ε=0.1)", "f+ε"},
		{"this work (f-approx)", "f"},
		{"KVY [15] (f+ε, ε=1)", "f+ε"},
		{"KMW [18]-style (f+ε, ε=1)", "f+ε"},
		{"Åstrand-Suomela [2]-style (f)", "f"},
	}
	var out []Table
	for _, f := range fs {
		loads, err := graphFamily(sizes, 3*f, f, hypergraph.WeightExponential, 1<<16, cfg.Seed+int64(f))
		if err != nil {
			return nil, err
		}
		t, err := coverTable("T2", fmt.Sprintf("distributed MWHVC, f=%d, d≈%d, W=2^16", f, 3*f), algos, loads)
		if err != nil {
			return nil, err
		}
		t.Notes = append(t.Notes,
			fmt.Sprintf("guarantee check: every ratio ≤ f+ε = %d+ε", f))
		out = append(out, t)
	}
	return out, nil
}
