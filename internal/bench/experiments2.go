package bench

import (
	"fmt"
	"math"

	"distcover/internal/baseline/kmw"
	"distcover/internal/baseline/kvy"
	"distcover/internal/core"
	"distcover/internal/hypergraph"
	"distcover/internal/lp"
)

// RoundsVsDelta (E1) measures rounds as Δ grows on the lollipop family,
// whose surviving edge forces the bid to climb by a factor of Δ — the
// log_α Δ raise chain of Theorem 8. Two α policies are compared: Theorem
// 9's choice (which for f=2, ε=1 stays at α=2 until astronomically large
// Δ, tracking log Δ) and the unlocked α = logΔ/loglogΔ of the optimal
// regime (Corollary 11 applies once f·log(f/ε)·loglogΔ ≤ logΔ), whose
// rounds track logΔ/loglogΔ.
func RoundsVsDelta(cfg Config) ([]Table, error) {
	deltas := pick(cfg, []int{8, 64, 512, 4096, 32768, 262144}, []int{8, 64, 512})
	t := Table{
		ID:    "E1",
		Title: "rounds vs Δ on lollipops (f=2, ε=1)",
		Header: []string{"Δ", "α (Thm 9)", "rounds", "rounds/logΔ",
			"α=logΔ/loglogΔ", "rounds", "rounds/(logΔ/loglogΔ)"},
	}
	for _, d := range deltas {
		g, err := hypergraph.Lollipop(d, int64(d)*1024)
		if err != nil {
			return nil, err
		}
		res9, err := core.Run(g, core.DefaultOptions())
		if err != nil {
			return nil, err
		}
		logD := math.Log2(float64(g.MaxDegree()))
		loglogD := math.Max(math.Log2(logD), 1)
		alphaBig := math.Max(2, logD/loglogD)
		optsBig := core.DefaultOptions()
		optsBig.Alpha = core.AlphaFixed
		optsBig.FixedAlpha = alphaBig
		resBig, err := core.Run(g, optsBig)
		if err != nil {
			return nil, err
		}
		norm := logD / loglogD
		t.AddRow(fmtI(d), fmtF(res9.Alpha), fmtI(res9.Rounds),
			fmtF(float64(res9.Rounds)/logD),
			fmtF(alphaBig), fmtI(resBig.Rounds), fmtF(float64(resBig.Rounds)/norm))
	}
	t.Notes = append(t.Notes,
		"with α=2, rounds/logΔ stays bounded: the raise chain costs log₂Δ iterations",
		"with α=logΔ/loglogΔ, rounds/(logΔ/loglogΔ) stays bounded — the optimal shape;",
		"Theorem 9 switches to the larger α automatically once logΔ ≥ f·log(f/ε)·(loglogΔ)·(logΔ)^{γ/2}",
	)
	return []Table{t}, nil
}

// RoundsVsW (E2) measures rounds as the weight spread W grows at fixed
// topology: the paper's headline property is that this work is flat in W
// while KVY-style grows with instance scale and KMW-style grows with log W.
func RoundsVsW(cfg Config) ([]Table, error) {
	n := pick(cfg, 20_000, 1_500)
	maxWs := []int64{1, 1 << 8, 1 << 16, 1 << 24}
	t := Table{
		ID:     "E2",
		Title:  fmt.Sprintf("rounds vs W on random graphs (n=%d, d=16, f=2, ε=1)", n),
		Header: []string{"W", "this work", "KVY [15]", "KMW [18]-style"},
	}
	var ours []int
	for _, maxW := range maxWs {
		g, err := hypergraph.RegularLike(n, 16, 2, hypergraph.GenConfig{
			Seed: cfg.Seed + maxW, Dist: hypergraph.WeightExponential, MaxWeight: maxW,
		})
		if err != nil {
			return nil, err
		}
		res, err := core.Run(g, core.DefaultOptions())
		if err != nil {
			return nil, err
		}
		kv, err := kvy.Run(g, 1)
		if err != nil {
			return nil, err
		}
		km, err := kmw.Run(g, 1)
		if err != nil {
			return nil, err
		}
		ours = append(ours, res.Rounds)
		t.AddRow(fmtI64(maxW), fmtI(res.Rounds), fmtI(kv.Rounds), fmtI(km.Rounds))
	}
	spread := 0
	for _, r := range ours {
		if r > spread {
			spread = r
		}
	}
	t.Notes = append(t.Notes,
		"this work's column is flat: round complexity has no W term (paper §1.2)",
		"KMW-style grows with log W by construction; KVY drifts with tightening scale",
	)
	return []Table{t}, nil
}

// ApproxRatio (E3) verifies Corollary 3 across f and ε and audits against
// exact optima on small instances.
func ApproxRatio(cfg Config) ([]Table, error) {
	t := Table{
		ID:     "E3",
		Title:  "certified approximation ratios vs the (f+ε) guarantee",
		Header: []string{"f", "ε", "n", "w(C)", "dual Σδ", "ratio w(C)/Σδ", "f+ε"},
	}
	n := pick(cfg, 3_000, 400)
	for _, f := range []int{2, 3, 4, 6} {
		for _, eps := range []float64{1, 0.1} {
			g, err := hypergraph.UniformRandom(n, 2*n, f, hypergraph.GenConfig{
				Seed: cfg.Seed + int64(f*100), Dist: hypergraph.WeightUniformRange, MaxWeight: 1000,
			})
			if err != nil {
				return nil, err
			}
			opts := core.DefaultOptions()
			opts.Epsilon = eps
			res, err := core.Run(g, opts)
			if err != nil {
				return nil, err
			}
			t.AddRow(fmtI(f), fmtF(eps), fmtI(n), fmtI64(res.CoverWeight),
				fmtF(res.DualValue), fmtF(res.RatioBound), fmtF(float64(f)+eps))
		}
	}
	t.Notes = append(t.Notes, "Corollary 3: ratio column never exceeds f+ε")

	// Against exact optima (small instances).
	t2 := Table{
		ID:     "E3",
		Title:  "measured ratio vs exact OPT (small instances)",
		Header: []string{"f", "n", "OPT", "w(C)", "w(C)/OPT", "f+ε bound"},
	}
	for _, f := range []int{2, 3} {
		g, err := hypergraph.UniformRandom(12, 18, f, hypergraph.GenConfig{
			Seed: cfg.Seed + int64(f), Dist: hypergraph.WeightUniformRange, MaxWeight: 9,
		})
		if err != nil {
			return nil, err
		}
		res, err := core.Run(g, core.DefaultOptions())
		if err != nil {
			return nil, err
		}
		_, opt, err := lp.ExactCover(g, 0)
		if err != nil {
			return nil, err
		}
		ratio := 1.0
		if opt > 0 {
			ratio = float64(res.CoverWeight) / float64(opt)
		}
		t2.AddRow(fmtI(f), "12", fmtI64(opt), fmtI64(res.CoverWeight),
			fmtF(ratio), fmtF(float64(f)+1))
	}
	t2.Notes = append(t2.Notes, "true ratios sit far below the worst-case guarantee")
	return []Table{t, t2}, nil
}

// FApproxRounds (E4) measures the f-approximation mode of Corollary 10:
// ε = 1/(nW) turns the guarantee into a clean f-approximation at the price
// of rounds growing like f·log n.
func FApproxRounds(cfg Config) ([]Table, error) {
	sizes := pick(cfg, []int{100, 1_000, 10_000, 100_000}, []int{100, 1_000})
	loads, err := graphFamily(sizes, 12, 3, hypergraph.WeightUniformRange, 100, cfg.Seed)
	if err != nil {
		return nil, err
	}
	t := Table{
		ID:     "E4",
		Title:  "f-approximation mode (ε = 1/(nW)): rounds vs n (f=3)",
		Header: []string{"n", "ε", "z levels", "iterations", "rounds", "f·log2(nW)", "rounds/(f·log2 nW)"},
	}
	for _, l := range loads {
		opts := core.DefaultOptions()
		opts.FApprox = true
		res, err := core.Run(l.g, opts)
		if err != nil {
			return nil, err
		}
		nW := float64(l.g.NumVertices()) * float64(l.g.MaxWeight())
		norm := 3 * math.Log2(nW)
		t.AddRow(l.name[2:], fmt.Sprintf("%.2e", res.Epsilon), fmtI(res.Z),
			fmtI(res.Iterations), fmtI(res.Rounds), fmtF(norm), fmtF(float64(res.Rounds)/norm))
	}
	t.Notes = append(t.Notes,
		"Corollary 10 shape: rounds/(f·log2 nW) stays bounded as n grows 1000×")
	return []Table{t}, nil
}
