package bench

import (
	"fmt"
	"math"
	"math/rand"

	"distcover/internal/congest"
	"distcover/internal/core"
	"distcover/internal/hypergraph"
	"distcover/internal/lp"
	"distcover/internal/reduction"
)

// randomCoveringILP builds a feasible random covering ILP with small M so
// the Lemma 14 enumeration stays tractable.
func randomCoveringILP(seed int64, n, m, f int, maxCoef, maxB int64) *lp.CoveringILP {
	rng := rand.New(rand.NewSource(seed))
	p := &lp.CoveringILP{NumVars: n}
	for j := 0; j < n; j++ {
		p.Weights = append(p.Weights, 1+rng.Int63n(20))
	}
	for i := 0; i < m; i++ {
		k := 1 + rng.Intn(f)
		cols := rng.Perm(n)[:k]
		var terms []lp.Term
		for _, c := range cols {
			terms = append(terms, lp.Term{Col: c, Coef: 1 + rng.Int63n(maxCoef)})
		}
		p.Rows = append(p.Rows, lp.Row{Terms: terms, B: 1 + rng.Int63n(maxB)})
	}
	return p
}

// ILPPipeline (E5) exercises the Theorem 19 pipeline on random covering
// ILPs and reports the reduction blowup against the Claim 18 / Lemma 14
// bounds, plus solution quality against the LP dual bound and (tiny
// instances) the exact optimum.
func ILPPipeline(cfg Config) ([]Table, error) {
	t := Table{
		ID:    "E5",
		Title: "covering ILPs through ILP→0/1→MWHVC→cover→x (Theorem 19)",
		Header: []string{"f", "M", "n", "rows", "f'", "Δ'", "hg edges", "iterations",
			"value", "LP bound", "ratio", "f'·B bound"},
	}
	n := pick(cfg, 60, 20)
	m := pick(cfg, 40, 12)
	for _, f := range []int{2, 3} {
		for _, maxB := range []int64{3, 6} {
			p := randomCoveringILP(cfg.Seed+int64(f)*10+maxB, n, m, f, 3, maxB)
			res, err := reduction.SolveILP(p, core.DefaultOptions(), reduction.Options{PruneDominated: true})
			if err != nil {
				return nil, fmt.Errorf("E5 f=%d maxB=%d: %w", f, maxB, err)
			}
			lb := lp.GreedyDualBoundILP(p)
			if res.Core.DualValue > lb {
				lb = res.Core.DualValue
			}
			ratio := 1.0
			if lb > 0 {
				ratio = float64(res.Value) / lb
			}
			bBits := 1
			for v := res.Stats.M; v > 1; v >>= 1 {
				bBits++
			}
			t.AddRow(fmtI(res.Stats.F), fmtI64(res.Stats.M), fmtI(n), fmtI(m),
				fmtI(res.Stats.HgRank), fmtI(res.Stats.HgDelta), fmtI(res.Stats.HgEdges),
				fmtI(res.Core.Iterations), fmtI64(res.Value), fmtF(lb), fmtF(ratio),
				fmtI(res.Stats.F*bBits))
		}
	}
	t.Notes = append(t.Notes,
		"f' never exceeds the Claim 18 bound f·(⌊log M⌋+1) (last column)",
		"every returned x is verified feasible inside the pipeline",
	)

	// Tiny instances vs exact optimum.
	t2 := Table{
		ID:     "E5",
		Title:  "pipeline vs exact ILP optimum (tiny instances)",
		Header: []string{"instance", "OPT", "pipeline value", "value/OPT"},
	}
	for seed := int64(0); seed < 4; seed++ {
		p := randomCoveringILP(cfg.Seed+seed, 6, 5, 2, 3, 4)
		res, err := reduction.SolveILP(p, core.DefaultOptions(), reduction.Options{PruneDominated: true})
		if err != nil {
			return nil, err
		}
		_, opt, err := lp.ExactILP(p, 0)
		if err != nil {
			return nil, err
		}
		ratio := 1.0
		if opt > 0 {
			ratio = float64(res.Value) / float64(opt)
		}
		t2.AddRow(fmt.Sprintf("seed %d", seed), fmtI64(opt), fmtI64(res.Value), fmtF(ratio))
	}
	return []Table{t, t2}, nil
}

// VariantComparison (E6) compares the default algorithm with the
// Appendix C single-level variant: Lemma 22 predicts at most twice the
// stuck iterations, and Corollary 21 at most one level gain per iteration.
func VariantComparison(cfg Config) ([]Table, error) {
	t := Table{
		ID:    "E6",
		Title: "default vs Appendix C single-level variant",
		Header: []string{"f", "n", "iters default", "iters single-level", "ratio",
			"max inc default", "max inc single-level"},
	}
	n := pick(cfg, 4_000, 500)
	for _, f := range []int{2, 3, 5} {
		g, err := hypergraph.RegularLike(n, 4*f, f, hypergraph.GenConfig{
			Seed: cfg.Seed + int64(f), Dist: hypergraph.WeightExponential, MaxWeight: 1 << 16,
		})
		if err != nil {
			return nil, err
		}
		optsD := core.DefaultOptions()
		optsD.CollectTrace = true
		resD, err := core.Run(g, optsD)
		if err != nil {
			return nil, err
		}
		optsS := optsD
		optsS.Variant = core.VariantSingleLevel
		resS, err := core.Run(g, optsS)
		if err != nil {
			return nil, err
		}
		maxInc := func(tr []core.IterationStats) int {
			m := 0
			for _, it := range tr {
				if it.MaxLevelIncrement > m {
					m = it.MaxLevelIncrement
				}
			}
			return m
		}
		ratio := float64(resS.Iterations) / math.Max(float64(resD.Iterations), 1)
		t.AddRow(fmtI(f), fmtI(n), fmtI(resD.Iterations), fmtI(resS.Iterations),
			fmtF(ratio), fmtI(maxInc(resD.Trace)), fmtI(maxInc(resS.Trace)))
	}
	t.Notes = append(t.Notes,
		"Corollary 21: single-level column of max increments is always ≤ 1",
		"Lemma 22: iteration ratio stays small (stuck iterations at most double)",
	)
	return []Table{t}, nil
}

// AlphaAblation (E7) sweeps fixed α on one instance, exhibiting the
// Theorem 8 trade-off log_α Δ (raise iterations) vs f·z·α (stuck
// iterations) and comparing with the α Theorem 9 picks.
func AlphaAblation(cfg Config) ([]Table, error) {
	n := pick(cfg, 8_000, 800)
	g, err := hypergraph.RegularLike(n, 64, 3, hypergraph.GenConfig{
		Seed: cfg.Seed, Dist: hypergraph.WeightExponential, MaxWeight: 1 << 12,
	})
	if err != nil {
		return nil, err
	}
	t := Table{
		ID:     "E7",
		Title:  fmt.Sprintf("iterations vs fixed α (n=%d, d=64, f=3, ε=1)", n),
		Header: []string{"α", "iterations", "rounds", "Theorem 8 bound (no constants)"},
	}
	for _, alpha := range []float64{2, 3, 4, 6, 8, 12, 16, 24, 32} {
		opts := core.DefaultOptions()
		opts.Alpha = core.AlphaFixed
		opts.FixedAlpha = alpha
		res, err := core.Run(g, opts)
		if err != nil {
			return nil, err
		}
		bound := core.TheoreticalIterationBound(3, 1, g.MaxDegree(), alpha)
		t.AddRow(fmtF(alpha), fmtI(res.Iterations), fmtI(res.Rounds), fmtF(bound))
	}
	theo := core.AlphaTheorem9Value(3, 1, g.MaxDegree(), 0.001)
	t.Notes = append(t.Notes,
		fmt.Sprintf("Theorem 9 picks α = %.3f for this instance", theo),
		"shape: iterations rise once α outgrows the raise/stuck balance (f·z·α term)",
	)
	return []Table{t}, nil
}

// MessageSize (E8) runs the real CONGEST protocol and verifies the
// Appendix B accounting: O(log n)-bit messages and 2+2·iterations rounds.
func MessageSize(cfg Config) ([]Table, error) {
	n := pick(cfg, 2_000, 300)
	g, err := hypergraph.RegularLike(n, 8, 3, hypergraph.GenConfig{
		Seed: cfg.Seed, Dist: hypergraph.WeightExponential, MaxWeight: 1 << 20,
	})
	if err != nil {
		return nil, err
	}
	budget := congest.LogBudget(g.NumVertices() + g.NumEdges())
	res, metrics, err := core.RunCongest(g, core.DefaultOptions(), congest.SequentialEngine{},
		congest.Options{Validate: true, BitBudget: budget})
	if err != nil {
		return nil, err
	}
	t := Table{
		ID:     "E8",
		Title:  fmt.Sprintf("CONGEST conformance (n=%d, m=%d, W=2^20)", g.NumVertices(), g.NumEdges()),
		Header: []string{"metric", "value", "bound"},
	}
	t.AddRow("max message bits", fmtI(metrics.MaxMessageBits), fmt.Sprintf("budget %d (enforced)", budget))
	t.AddRow("rounds", fmtI(metrics.Rounds), fmt.Sprintf("2+2·iterations = %d (+1 term.)", 2+2*res.Iterations))
	t.AddRow("messages", fmtI64(metrics.Messages), "-")
	t.AddRow("total bits", fmtI64(metrics.TotalBits), "-")
	t.AddRow("iterations", fmtI(res.Iterations), "-")
	t.Notes = append(t.Notes,
		"the engine rejects any message above the budget; this run passed enforcement")
	return []Table{t}, nil
}

// EpsilonRange (E9) shrinks ε through the regimes of Corollaries 11 and 12
// and reports how rounds respond: ε enters only through the additive
// f·log(f/ε) term, so even ε = 2^-(logΔ)^0.99 stays cheap.
func EpsilonRange(cfg Config) ([]Table, error) {
	n := pick(cfg, 20_000, 1_000)
	g, err := hypergraph.RegularLike(n, 32, 2, hypergraph.GenConfig{
		Seed: cfg.Seed, Dist: hypergraph.WeightUniformRange, MaxWeight: 1000,
	})
	if err != nil {
		return nil, err
	}
	logD := math.Log2(float64(g.MaxDegree()))
	epsilons := []struct {
		name string
		eps  float64
	}{
		{"1", 1},
		{"0.1", 0.1},
		{"1/logΔ", 1 / logD},
		{"1/logΔ^2", 1 / (logD * logD)},
		{"2^-(logΔ)^0.99", math.Pow(2, -math.Pow(logD, 0.99))},
	}
	t := Table{
		ID:     "E9",
		Title:  fmt.Sprintf("rounds as ε shrinks (n=%d, d=32, f=2)", n),
		Header: []string{"ε regime", "ε", "z levels", "α", "iterations", "rounds"},
	}
	for _, e := range epsilons {
		opts := core.DefaultOptions()
		opts.Epsilon = e.eps
		res, err := core.Run(g, opts)
		if err != nil {
			return nil, err
		}
		t.AddRow(e.name, fmt.Sprintf("%.3e", e.eps), fmtI(res.Z), fmtF(res.Alpha),
			fmtI(res.Iterations), fmtI(res.Rounds))
	}
	t.Notes = append(t.Notes,
		"Corollary 12 regime (last row): rounds grow only through z = O(log(f/ε))",
	)
	return []Table{t}, nil
}
