package bench

import (
	"distcover/internal/core"
	"distcover/internal/hypergraph"
)

// LocalAlpha (E10) reproduces the remark after Theorem 9: the global
// maximum degree Δ need not be known — each edge can derive α(e) from its
// local maximum degree Δ(e). On heavy-tailed (power-law) instances the
// local degrees spread over orders of magnitude; the experiment verifies
// that dropping the global-knowledge assumption costs nothing: rounds stay
// in the same regime and the certificate still binds.
func LocalAlpha(cfg Config) ([]Table, error) {
	t := Table{
		ID:    "E10",
		Title: "global α (Theorem 9) vs per-edge α(e) (no knowledge of Δ)",
		Header: []string{"workload", "Δ", "rounds (global α)", "ratio", "rounds (local α(e))",
			"ratio", "rounds (single-level+local)"},
	}
	n := pick(cfg, 5_000, 600)
	loads := []struct {
		name  string
		build func() (*hypergraph.Hypergraph, error)
	}{
		{"power-law f=3", func() (*hypergraph.Hypergraph, error) {
			return hypergraph.PowerLaw(n, 3*n, 3, hypergraph.GenConfig{
				Seed: cfg.Seed, Dist: hypergraph.WeightUniformRange, MaxWeight: 1000,
			})
		}},
		{"regular f=3", func() (*hypergraph.Hypergraph, error) {
			return hypergraph.RegularLike(n, 12, 3, hypergraph.GenConfig{
				Seed: cfg.Seed, Dist: hypergraph.WeightExponential, MaxWeight: 1 << 16,
			})
		}},
		{"lollipop Δ=4096", func() (*hypergraph.Hypergraph, error) {
			return hypergraph.Lollipop(4096, 4096*1024)
		}},
		{"geometric path", func() (*hypergraph.Hypergraph, error) {
			return hypergraph.GeometricPath(pick(cfg, 2_000, 300), 1, 1.5, 1<<40)
		}},
	}
	for _, l := range loads {
		g, err := l.build()
		if err != nil {
			return nil, err
		}
		optsG := core.DefaultOptions()
		resG, err := core.Run(g, optsG)
		if err != nil {
			return nil, err
		}
		optsL := core.DefaultOptions()
		optsL.Alpha = core.AlphaLocal
		resL, err := core.Run(g, optsL)
		if err != nil {
			return nil, err
		}
		optsSL := optsL
		optsSL.Variant = core.VariantSingleLevel
		resSL, err := core.Run(g, optsSL)
		if err != nil {
			return nil, err
		}
		t.AddRow(l.name, fmtI(g.MaxDegree()),
			fmtI(resG.Rounds), fmtF(resG.RatioBound),
			fmtI(resL.Rounds), fmtF(resL.RatioBound),
			fmtI(resSL.Rounds))
	}
	t.Notes = append(t.Notes,
		"local α(e) keeps rounds in the same regime without any global knowledge of Δ",
		"the (f+ε) certificate binds under every policy combination",
	)
	return []Table{t}, nil
}
