package bench

import (
	"fmt"
	"runtime"
	"time"

	"distcover/internal/congest"
	"distcover/internal/core"
)

// MeasureFlat runs the direct-solver suite (E13): the chunk-parallel flat
// runner against the fastest CONGEST engine (sharded) on the same
// workloads as the throughput suite. The flat runner executes the
// algorithm itself — no message simulation — so this is the production
// solve path coverd's engine "flat" serves; the suite pins both its
// absolute time and its multiple over the sharded engine, the previous
// fastest committed number. Both solvers must agree on the cover weight:
// the flat runner is bit-identical to the lockstep simulator (engine
// equivalence tests), and the simulator to the CONGEST engines, so any
// weight divergence here is a real bug, not noise.
func MeasureFlat(cfg Config) ([]Measurement, []Table, error) {
	mode := pick(cfg, "full", "quick")
	t := Table{
		ID:     "E13",
		Title:  "Direct solver throughput: chunk-parallel flat runner vs sharded CONGEST",
		Header: []string{"workload", "n+m", "workers", "iters", "flat ms", "sharded ms", "vs sharded"},
	}
	var ms []Measurement
	opts := core.DefaultOptions()
	workloads, err := engineWorkloads(cfg)
	if err != nil {
		return nil, nil, err
	}
	workers := runtime.GOMAXPROCS(0)
	reps := pick(cfg, 1, 3)
	for _, wl := range workloads {
		var (
			flatRes  *core.Result
			flatBest time.Duration
		)
		for r := 0; r < reps; r++ {
			start := time.Now()
			res, err := core.RunFlat(wl.g, opts, 0)
			d := time.Since(start)
			if err != nil {
				return nil, nil, fmt.Errorf("bench: flat on %s: %w", wl.name, err)
			}
			if r == 0 || d < flatBest {
				flatRes, flatBest = res, d
			}
		}
		var (
			shardRes  *core.Result
			shardBest time.Duration
		)
		for r := 0; r < reps; r++ {
			// Rebuilt per rep (networks are stateful); the sharded reading
			// covers engine execution only, matching the E11 entry of the
			// same name — construction is a separate, engine-independent
			// cost, so the committed ratio compares solver against solver.
			nw, vnodes, enodes, err := core.BuildNetwork(wl.g, opts)
			if err != nil {
				return nil, nil, fmt.Errorf("bench: build %s: %w", wl.name, err)
			}
			start := time.Now()
			res, _, err := core.RunBuiltNetwork(wl.g, opts, nw, vnodes, enodes, congest.ShardedEngine{}, congest.Options{})
			d := time.Since(start)
			if err != nil {
				return nil, nil, fmt.Errorf("bench: sharded on %s: %w", wl.name, err)
			}
			if r == 0 || d < shardBest {
				shardRes, shardBest = res, d
			}
		}
		if flatRes.CoverWeight != shardRes.CoverWeight {
			return nil, nil, fmt.Errorf(
				"bench: flat diverges from sharded on %s: weight %d vs %d",
				wl.name, flatRes.CoverWeight, shardRes.CoverWeight)
		}
		netNodes := wl.g.NumVertices() + wl.g.NumEdges()
		speedup := shardBest.Seconds() / flatBest.Seconds()
		t.AddRow(wl.name, fmtI(netNodes), fmtI(workers), fmtI(flatRes.Iterations),
			fmtF(float64(flatBest.Milliseconds())), fmtF(float64(shardBest.Milliseconds())),
			fmt.Sprintf("%.1fx", speedup))
		ms = append(ms,
			Measurement{
				Name:  fmt.Sprintf("%s/%s/flat/ns", mode, wl.name),
				Value: float64(flatBest.Nanoseconds()), Unit: "ns",
				Tolerance: 0.75,
			},
			// Iteration count is exact for a fixed seed; drift means the
			// solver changed behavior, which the equivalence tests should
			// have caught first.
			Measurement{
				Name:  fmt.Sprintf("%s/%s/flat-iterations", mode, wl.name),
				Value: float64(flatRes.Iterations), Unit: "iters",
				Tolerance: 0.001,
			},
			Measurement{
				Name:           fmt.Sprintf("%s/%s/speedup-flat-vs-sharded", mode, wl.name),
				Value:          speedup,
				Unit:           "x",
				HigherIsBetter: true,
				// Machine-portable like the other speedup ratios, with the
				// same wide band: core counts and scheduler jitter move both
				// legs, but the committed full-mode 1M value must stay a
				// comfortable multiple of the tentpole 3x floor.
				Tolerance: 0.6,
			})
	}
	t.Notes = append(t.Notes,
		"flat and sharded must agree on the cover weight (verified per row); bit-identity is enforced by the engine-equivalence tests",
		"flat-vs-sharded speedup at 1M nodes is the tentpole metric; BENCH_baseline.json pins it at >= 3x")
	return ms, []Table{t}, nil
}

// FlatThroughput is the Registry adapter for MeasureFlat.
func FlatThroughput(cfg Config) ([]Table, error) {
	_, tables, err := MeasureFlat(cfg)
	return tables, err
}
