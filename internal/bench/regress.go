package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
)

// Measurement is one named benchmark reading. Names are hierarchical
// slash-separated keys (e.g. "full/regular-1M/sharded/ns") so baselines can
// mix runs of different modes; the comparator matches by exact name.
type Measurement struct {
	Name  string  `json:"name"`
	Value float64 `json:"value"`
	Unit  string  `json:"unit"`
	// HigherIsBetter orients the regression check: throughput-like readings
	// regress when they drop, latency-like readings when they grow.
	HigherIsBetter bool `json:"higher_is_better"`
	// Tolerance, when > 0, overrides the baseline/default tolerance for
	// this reading. Deterministic readings (rounds, message counts) keep
	// the tight default; raw wall-clock readings carry a wider band
	// because shared CI runners jitter far beyond algorithmic noise.
	Tolerance float64 `json:"tolerance,omitempty"`
}

// Baseline is the committed benchmark reference (BENCH_baseline.json at the
// repository root). CI re-measures and fails when any reading regresses
// beyond Tolerance.
type Baseline struct {
	// Tolerance is the default allowed relative slack (0.2 = 20%); the
	// comparator caller may override it.
	Tolerance    float64       `json:"tolerance"`
	Measurements []Measurement `json:"measurements"`
}

// ReadBaseline loads a baseline file.
func ReadBaseline(path string) (*Baseline, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var b Baseline
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("bench: parse baseline %s: %w", path, err)
	}
	return &b, nil
}

// WriteBaseline writes a baseline file with stable ordering.
func WriteBaseline(path string, b *Baseline) error {
	sort.Slice(b.Measurements, func(i, j int) bool {
		return b.Measurements[i].Name < b.Measurements[j].Name
	})
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// Merge replaces or appends cur's readings into the baseline, so quick- and
// full-mode runs can accumulate into one committed file.
func (b *Baseline) Merge(cur []Measurement) {
	byName := make(map[string]int, len(b.Measurements))
	for i, m := range b.Measurements {
		byName[m.Name] = i
	}
	for _, m := range cur {
		if i, ok := byName[m.Name]; ok {
			b.Measurements[i] = m
		} else {
			byName[m.Name] = len(b.Measurements)
			b.Measurements = append(b.Measurements, m)
		}
	}
}

// ComparisonResult reports one baseline-vs-current comparison.
type ComparisonResult struct {
	Name     string
	Baseline float64
	Current  float64
	// Delta is the relative change in the harmful direction: positive means
	// the reading moved toward regression by that fraction.
	Delta     float64
	Regressed bool
}

// Compare checks current readings against the baseline. An explicitly
// passed tol > 0 is the operator tightening (or loosening) the gate and
// overrides every per-entry Tolerance; tol ≤ 0 uses each entry's own
// Tolerance when set, else the baseline's default, else 0.2. Baseline
// entries missing from cur are skipped — a quick CI run cannot re-measure
// full-mode entries — and reported via skipped.
func Compare(base *Baseline, cur []Measurement, tol float64) (results []ComparisonResult, skipped []string) {
	explicit := tol > 0
	if !explicit {
		tol = base.Tolerance
	}
	if tol <= 0 {
		tol = 0.2
	}
	curByName := make(map[string]Measurement, len(cur))
	for _, m := range cur {
		curByName[m.Name] = m
	}
	for _, bm := range base.Measurements {
		cm, ok := curByName[bm.Name]
		if !ok {
			skipped = append(skipped, bm.Name)
			continue
		}
		r := ComparisonResult{Name: bm.Name, Baseline: bm.Value, Current: cm.Value}
		if bm.Value != 0 {
			if bm.HigherIsBetter {
				r.Delta = (bm.Value - cm.Value) / bm.Value
			} else {
				r.Delta = (cm.Value - bm.Value) / bm.Value
			}
		} else if cm.Value != 0 && !bm.HigherIsBetter {
			r.Delta = 1 // grew from a zero baseline
		}
		effTol := tol
		if !explicit && bm.Tolerance > 0 {
			effTol = bm.Tolerance
		}
		r.Regressed = r.Delta > effTol
		results = append(results, r)
	}
	return results, skipped
}

// Regressions filters Compare output down to failures, formatted for CI
// logs.
func Regressions(results []ComparisonResult) []string {
	var out []string
	for _, r := range results {
		if r.Regressed {
			out = append(out, fmt.Sprintf("%s: baseline %.4g, current %.4g (%.1f%% worse)",
				r.Name, r.Baseline, r.Current, r.Delta*100))
		}
	}
	return out
}
