package bench

import (
	"path/filepath"
	"testing"
)

func TestCompareTolerance(t *testing.T) {
	base := &Baseline{
		Tolerance: 0.2,
		Measurements: []Measurement{
			{Name: "q/w/ns", Value: 1000, Unit: "ns"},                         // lower is better
			{Name: "q/w/speedup", Value: 10, Unit: "x", HigherIsBetter: true}, // higher is better
			{Name: "q/w/rounds", Value: 21, Unit: "rounds"},                   // deterministic
			{Name: "full/w/ns", Value: 5e9, Unit: "ns"},                       // not re-measured
		},
	}
	cur := []Measurement{
		{Name: "q/w/ns", Value: 1150},   // +15% — within 20%
		{Name: "q/w/speedup", Value: 9}, // -10% — within
		{Name: "q/w/rounds", Value: 21}, // exact
	}
	results, skipped := Compare(base, cur, 0)
	if len(results) != 3 {
		t.Fatalf("results = %d, want 3", len(results))
	}
	for _, r := range results {
		if r.Regressed {
			t.Errorf("%s unexpectedly regressed (delta %.3f)", r.Name, r.Delta)
		}
	}
	if len(skipped) != 1 || skipped[0] != "full/w/ns" {
		t.Errorf("skipped = %v, want [full/w/ns]", skipped)
	}
}

func TestCompareFlagsRegressions(t *testing.T) {
	base := &Baseline{Measurements: []Measurement{
		{Name: "ns", Value: 1000},
		{Name: "speedup", Value: 10, HigherIsBetter: true},
		{Name: "rounds", Value: 21},
	}}
	cur := []Measurement{
		{Name: "ns", Value: 1500},   // +50% slower
		{Name: "speedup", Value: 5}, // halved
		{Name: "rounds", Value: 40}, // protocol got slower in rounds
	}
	results, _ := Compare(base, cur, 0.2)
	regs := Regressions(results)
	if len(regs) != 3 {
		t.Fatalf("regressions = %v, want 3 entries", regs)
	}
}

func TestComparePerMeasurementTolerance(t *testing.T) {
	base := &Baseline{Tolerance: 0.2, Measurements: []Measurement{
		{Name: "wallclock", Value: 1000, Tolerance: 0.75},
		{Name: "rounds", Value: 20},
	}}
	// +50%: beyond the file default but inside the entry's own band.
	results, _ := Compare(base, []Measurement{
		{Name: "wallclock", Value: 1500},
		{Name: "rounds", Value: 20},
	}, 0)
	if regs := Regressions(results); len(regs) != 0 {
		t.Fatalf("per-measurement tolerance ignored: %v", regs)
	}
	// +100%: beyond both.
	results, _ = Compare(base, []Measurement{{Name: "wallclock", Value: 2100}}, 0)
	if regs := Regressions(results); len(regs) != 1 {
		t.Fatalf("true regression missed: %v", regs)
	}
	// An explicit caller tolerance is the operator tightening the gate and
	// overrides the per-entry band: the same +50% now regresses.
	results, _ = Compare(base, []Measurement{{Name: "wallclock", Value: 1500}}, 0.2)
	if regs := Regressions(results); len(regs) != 1 {
		t.Fatalf("explicit tolerance did not override per-entry band: %v", regs)
	}
}

func TestCompareImprovementsPass(t *testing.T) {
	base := &Baseline{Measurements: []Measurement{
		{Name: "ns", Value: 1000},
		{Name: "speedup", Value: 5, HigherIsBetter: true},
	}}
	cur := []Measurement{
		{Name: "ns", Value: 10},      // 100x faster
		{Name: "speedup", Value: 50}, // way up
	}
	results, _ := Compare(base, cur, 0.2)
	if regs := Regressions(results); len(regs) != 0 {
		t.Fatalf("improvements flagged as regressions: %v", regs)
	}
}

func TestBaselineRoundTripAndMerge(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "baseline.json")
	b := &Baseline{Tolerance: 0.2, Measurements: []Measurement{
		{Name: "full/x/ns", Value: 5e9, Unit: "ns"},
		{Name: "quick/x/ns", Value: 1e6, Unit: "ns"},
	}}
	if err := WriteBaseline(path, b); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Tolerance != 0.2 || len(got.Measurements) != 2 {
		t.Fatalf("round trip lost data: %+v", got)
	}
	// Merging a re-measured quick run must replace quick entries and keep
	// full entries.
	got.Merge([]Measurement{
		{Name: "quick/x/ns", Value: 2e6, Unit: "ns"},
		{Name: "quick/y/ns", Value: 3e6, Unit: "ns"},
	})
	if len(got.Measurements) != 3 {
		t.Fatalf("merge: %d measurements, want 3", len(got.Measurements))
	}
	for _, m := range got.Measurements {
		if m.Name == "quick/x/ns" && m.Value != 2e6 {
			t.Errorf("merge did not replace quick/x/ns: %v", m.Value)
		}
		if m.Name == "full/x/ns" && m.Value != 5e9 {
			t.Errorf("merge clobbered full/x/ns: %v", m.Value)
		}
	}
}

// TestMeasureEnginesQuick smoke-tests the throughput suite end to end at CI
// scale: the differential check inside MeasureEngines is what certifies the
// engines agree on real cover workloads.
func TestMeasureEnginesQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("throughput suite takes a few seconds")
	}
	ms, tables, err := MeasureEngines(Config{Quick: true, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 1 || len(tables[0].Rows) == 0 {
		t.Fatal("no table rows")
	}
	names := map[string]bool{}
	for _, m := range ms {
		names[m.Name] = true
	}
	for _, want := range []string{
		"quick/regular-30k/sharded/ns",
		"quick/regular-30k/speedup-sharded-vs-parallel",
		"quick/regular-30k/build/ns",
		"quick/powerlaw-10k/rounds",
	} {
		if !names[want] {
			t.Errorf("measurement %q missing (have %v)", want, names)
		}
	}
}
