package bench

import (
	"fmt"
	"runtime"
	"time"

	"distcover/internal/core"
)

// defaultScalingWorkers is the worker-count sweep E17 runs when Config
// (benchharness -workers) does not override it.
var defaultScalingWorkers = []int{1, 2, 4, 8}

// MeasureScaling runs the multicore scaling suite (E17): the flat runner
// swept over worker counts on the engine workloads, gating *scaling
// efficiency* — the speedup of 4 workers over 1 — rather than absolute
// time. The ns-per-worker-count entries are machine-local diagnostics
// (skipped by -portable); the flat-scaling-4w ratio entries are the
// portable gate. On a full run on a machine with at least 4 CPUs, the 1M
// regular instance must additionally clear a hard in-code floor of 2.5×
// at 4 workers — the suite fails outright below it, baseline or not.
//
// Every worker count must produce the same cover weight and iteration
// count: the flat runner is bit-identical across worker counts by
// construction (gather order is ascending edge id), so a divergence here
// is a real bug, not noise.
func MeasureScaling(cfg Config) ([]Measurement, []Table, error) {
	mode := pick(cfg, "full", "quick")
	sweep := cfg.Workers
	if len(sweep) == 0 {
		sweep = defaultScalingWorkers
	}
	t := Table{
		ID:     "E17",
		Title:  "Multicore scaling: flat runner ns at 1/2/4/8 workers, speedup gate at 4",
		Header: []string{"workload", "n+m", "workers", "iters", "flat ms", "vs 1 worker"},
	}
	var ms []Measurement
	opts := core.DefaultOptions()
	workloads, err := engineWorkloads(cfg)
	if err != nil {
		return nil, nil, err
	}
	reps := pick(cfg, 1, 3)
	for _, wl := range workloads {
		best := make(map[int]time.Duration, len(sweep))
		var refWeight int64
		var refIters int
		for i, w := range sweep {
			var (
				res  *core.Result
				dur  time.Duration
				errW error
			)
			for r := 0; r < reps; r++ {
				start := time.Now()
				got, err := core.RunFlat(wl.g, opts, w)
				d := time.Since(start)
				if err != nil {
					errW = fmt.Errorf("bench: flat %d workers on %s: %w", w, wl.name, err)
					break
				}
				if r == 0 || d < dur {
					res, dur = got, d
				}
			}
			if errW != nil {
				return nil, nil, errW
			}
			if i == 0 {
				refWeight, refIters = res.CoverWeight, res.Iterations
			} else if res.CoverWeight != refWeight || res.Iterations != refIters {
				return nil, nil, fmt.Errorf(
					"bench: flat diverges across worker counts on %s: %d workers gives weight %d / %d iters, %d workers gives %d / %d",
					wl.name, sweep[0], refWeight, refIters, w, res.CoverWeight, res.Iterations)
			}
			best[w] = dur
			speedup := "-"
			if base, ok := best[sweep[0]]; ok && w != sweep[0] {
				speedup = fmt.Sprintf("%.2fx", base.Seconds()/dur.Seconds())
			}
			t.AddRow(wl.name, fmtI(wl.g.NumVertices()+wl.g.NumEdges()), fmtI(w),
				fmtI(res.Iterations), fmtF(float64(dur.Milliseconds())), speedup)
			ms = append(ms, Measurement{
				Name:  fmt.Sprintf("%s/%s/flat-w%d/ns", mode, wl.name, w),
				Value: float64(dur.Nanoseconds()), Unit: "ns",
				Tolerance: 0.75,
			})
		}
		if b1, ok1 := best[1]; ok1 {
			if b4, ok4 := best[4]; ok4 {
				speedup4 := b1.Seconds() / b4.Seconds()
				ms = append(ms, Measurement{
					Name:           fmt.Sprintf("%s/%s/flat-scaling-4w", mode, wl.name),
					Value:          speedup4,
					Unit:           "x",
					HigherIsBetter: true,
					// Wide band: the ratio depends on the measuring machine's
					// core count (a single-core box measures ~1.0), and the
					// committed value only anchors against collapse. The real
					// floor is the in-code check below, active on >= 4 CPUs.
					Tolerance: 0.7,
				})
				if !cfg.Quick && wl.name == "regular-1M" && runtime.NumCPU() >= 4 && speedup4 < 2.5 {
					return nil, nil, fmt.Errorf(
						"bench: flat scaling floor: %.2fx speedup at 4 workers on %s (NumCPU=%d), need >= 2.5x",
						speedup4, wl.name, runtime.NumCPU())
				}
			}
		}
	}
	t.Notes = append(t.Notes,
		"cover weight and iteration count are verified identical across worker counts per workload (bit-identity)",
		"flat-scaling-4w = best-of ns at 1 worker / best-of ns at 4 workers; on a full run with >= 4 CPUs the 1M instance must clear 2.5x (hard in-code floor)",
		fmt.Sprintf("this run: GOMAXPROCS=%d NumCPU=%d; ratios recorded on fewer CPUs than workers flatten toward 1.0", runtime.GOMAXPROCS(0), runtime.NumCPU()))
	return ms, []Table{t}, nil
}

// FlatScaling is the Registry adapter for MeasureScaling.
func FlatScaling(cfg Config) ([]Table, error) {
	_, tables, err := MeasureScaling(cfg)
	return tables, err
}
