package sessions

import (
	"fmt"
	"runtime"
	"testing"

	"distcover"
	"distcover/internal/bench"
)

// flatWorkers is the fixed flat-runner worker count of the probes.
const flatWorkers = 4

// MeasureAllocs counts heap allocations on the hot paths the ROADMAP asks
// to gate machine-independently: a full lockstep solve, the same solve on
// the chunk-parallel flat runner, and a session delta batch. Allocation
// counts are a property of the code, not the hardware, so the baseline
// comparator holds them to exact equality (the 0.001 tolerance is
// float-formatting slack) — the regression gate that raw wall-clock
// tolerances are too loose to provide.
//
// The probes use a fixed instance independent of quick/full mode, so the
// quick CI run re-measures exactly the committed values. The flat probes
// pin the worker count to flatWorkers (rather than GOMAXPROCS) for the
// same reason: the pool's per-worker scratch allocates per worker, and
// the committed count must not depend on the machine's core count.
func MeasureAllocs(bench.Config) ([]bench.Measurement, []bench.Table, error) {
	inst, delta, err := allocProbeFixture()
	if err != nil {
		return nil, nil, err
	}
	solveAllocs := testing.AllocsPerRun(20, func() {
		if _, err := distcover.Solve(inst); err != nil {
			panic(err)
		}
	})
	flatAllocs := testing.AllocsPerRun(20, func() {
		if _, err := distcover.Solve(inst, distcover.WithFlatEngine(), distcover.WithSolverParallelism(flatWorkers)); err != nil {
			panic(err)
		}
	})
	updateAllocs, err := sessionUpdateAllocs(inst, delta, 20)
	if err != nil {
		return nil, nil, err
	}

	t := bench.Table{
		ID:     "allocs",
		Title:  "Hot-path allocation counts (exact regression gate)",
		Header: []string{"path", "allocs/op"},
	}
	t.AddRow("Solve (lockstep, 2000x4000 f=3)", fmt.Sprintf("%.0f", solveAllocs))
	t.AddRow(fmt.Sprintf("Solve (flat, %d workers)", flatWorkers), fmt.Sprintf("%.0f", flatAllocs))
	t.AddRow("Session.Update (100-edge delta)", fmt.Sprintf("%.0f", updateAllocs))
	ms := []bench.Measurement{
		{Name: "allocs/solve/sim", Value: solveAllocs, Unit: "allocs", Tolerance: 0.001},
		{Name: "allocs/solve/flat", Value: flatAllocs, Unit: "allocs", Tolerance: 0.001},
		{Name: "allocs/session/update", Value: updateAllocs, Unit: "allocs", Tolerance: 0.001},
	}
	return ms, []bench.Table{t}, nil
}

// TraceProbe runs one flat solve of the alloc-gate fixture with a
// telemetry recorder attached and returns its trace report — the
// benchharness -trace mode.
func TraceProbe() (*distcover.TraceReport, error) {
	inst, _, err := allocProbeFixture()
	if err != nil {
		return nil, err
	}
	rec := distcover.NewTraceRecorder("")
	if _, err := distcover.Solve(inst, distcover.WithFlatEngine(),
		distcover.WithSolverParallelism(flatWorkers), distcover.WithTelemetry(rec)); err != nil {
		return nil, err
	}
	return rec.Report(), nil
}

// allocProbeFixture builds the fixed instance and delta the probes run on.
func allocProbeFixture() (*distcover.Instance, distcover.Delta, error) {
	const n, m = 2000, 4000
	weights := make([]int64, n)
	edges := make([][]int, m)
	// A deterministic LCG instead of math/rand keeps the fixture immune to
	// generator-library changes: the committed alloc counts must only move
	// when the solver or session code changes.
	state := uint64(0x9E3779B97F4A7C15)
	next := func(bound int) int {
		state = state*6364136223846793005 + 1442695040888963407
		return int((state >> 33) % uint64(bound))
	}
	for v := range weights {
		weights[v] = int64(1 + next(1000))
	}
	for e := range edges {
		edges[e] = []int{next(n), next(n), next(n)}
	}
	inst, err := distcover.NewInstance(weights, edges)
	if err != nil {
		return nil, distcover.Delta{}, err
	}
	var d distcover.Delta
	for i := 0; i < 100; i++ {
		d.Edges = append(d.Edges, []int{next(n), next(n), next(n)})
	}
	return inst, d, nil
}

// sessionUpdateAllocs measures the allocations of one Session.Update the
// way testing.AllocsPerRun does (GOMAXPROCS(1), averaged, rounded down),
// but with per-run setup outside the measured region: each run gets a
// fresh session so every Update applies the identical delta to identical
// state.
func sessionUpdateAllocs(inst *distcover.Instance, d distcover.Delta, runs int) (float64, error) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(1))
	// Warm up one full cycle so one-time lazy initialization is excluded.
	warm, err := distcover.NewSession(inst)
	if err != nil {
		return 0, err
	}
	if _, err := warm.Update(d); err != nil {
		return 0, err
	}
	var total uint64
	var ms runtime.MemStats
	for i := 0; i < runs; i++ {
		s, err := distcover.NewSession(inst)
		if err != nil {
			return 0, err
		}
		runtime.GC()
		runtime.ReadMemStats(&ms)
		before := ms.Mallocs
		if _, err := s.Update(d); err != nil {
			return 0, err
		}
		runtime.ReadMemStats(&ms)
		total += ms.Mallocs - before
	}
	return float64(total / uint64(runs)), nil
}
