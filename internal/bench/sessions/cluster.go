package sessions

import (
	"fmt"
	"math/rand"
	"net"
	"testing"
	"time"

	"distcover"
	"distcover/internal/bench"
	"distcover/internal/cluster"
	"distcover/internal/core"
	"distcover/internal/hypergraph"
)

// MeasureCluster runs the E14 workload: one instance solved as a
// multi-process cover cluster at 2 and 4 partitions over loopback TCP
// peers, plus one incremental delta batch through a cluster session,
// against the single-process flat engine as the reference. Every cluster
// result is required to be bit-identical to the flat result before any
// timing is reported — cluster numbers for wrong answers are worthless.
// The deterministic readings (iteration count, residual edge count) are
// committed exactly; wall-clock entries carry the wide machine band, and
// the loopback peers mean the timings measure protocol overhead, not
// network distance.
func MeasureCluster(cfg bench.Config) ([]bench.Measurement, []bench.Table, error) {
	mode := pick(cfg, "full", "quick")
	name := pick(cfg, "cluster-100k", "cluster-10k")
	n := pick(cfg, 100_000, 10_000)
	baseM := pick(cfg, 200_000, 20_000)
	batchEdges := pick(cfg, 1_000, 200)

	g, err := hypergraph.UniformRandom(n, baseM, 3, hypergraph.GenConfig{
		Seed: cfg.Seed, Dist: hypergraph.WeightUniformRange, MaxWeight: 1000,
	})
	if err != nil {
		return nil, nil, fmt.Errorf("bench: cluster workload: %w", err)
	}
	inst, err := toInstance(g)
	if err != nil {
		return nil, nil, err
	}

	peers, closePeers, err := startBenchPeers(4)
	if err != nil {
		return nil, nil, err
	}
	defer closePeers()

	t := bench.Table{
		ID:     "E14",
		Title:  "Multi-process cover cluster vs single-process flat engine",
		Header: []string{"path", "ms", "vs flat", "identical"},
	}

	flatStart := time.Now()
	want, err := distcover.Solve(inst, distcover.WithFlatEngine())
	flatD := time.Since(flatStart)
	if err != nil {
		return nil, nil, err
	}

	prefix := mode + "/" + name
	ms := []bench.Measurement{
		{Name: prefix + "/flat/ns", Value: float64(flatD.Nanoseconds()), Unit: "ns", Tolerance: 0.75},
		// Deterministic for a fixed seed; exact across machines.
		{Name: prefix + "/iterations", Value: float64(want.Iterations), Unit: "iters", Tolerance: 0.001},
	}
	t.AddRow("flat (1 process)", fmt.Sprintf("%.1f", flatD.Seconds()*1000), "1.00x", "—")

	for _, parts := range []int{2, 4} {
		start := time.Now()
		got, err := distcover.ClusterSolve(inst, peers[:parts], distcover.WithClusterPartitions(parts))
		d := time.Since(start)
		if err != nil {
			return nil, nil, fmt.Errorf("bench: cluster solve %dp: %w", parts, err)
		}
		if !sameSolution(got, want) {
			return nil, nil, fmt.Errorf("bench: cluster solve %dp diverges from flat", parts)
		}
		ms = append(ms, bench.Measurement{
			Name: fmt.Sprintf("%s/solve-%dp/ns", prefix, parts), Value: float64(d.Nanoseconds()),
			Unit: "ns", Tolerance: 0.75,
		})
		t.AddRow(fmt.Sprintf("cluster %d partitions", parts),
			fmt.Sprintf("%.1f", d.Seconds()*1000),
			fmt.Sprintf("%.2fx", d.Seconds()/flatD.Seconds()), "yes")
	}

	// Incremental: one delta batch through a 2-partition cluster session
	// vs the same batch through a flat session.
	rng := rand.New(rand.NewSource(cfg.Seed + 7))
	var d distcover.Delta
	for i := 0; i < batchEdges; i++ {
		d.Edges = append(d.Edges, []int{rng.Intn(n), rng.Intn(n), rng.Intn(n)})
	}
	clusterSess, err := distcover.NewSession(inst,
		distcover.WithClusterPeers(peers[:2]...), distcover.WithClusterPartitions(2))
	if err != nil {
		return nil, nil, err
	}
	flatSess, err := distcover.NewSession(inst, distcover.WithFlatEngine())
	if err != nil {
		return nil, nil, err
	}
	start := time.Now()
	cst, err := clusterSess.Update(d)
	clusterUpD := time.Since(start)
	if err != nil {
		return nil, nil, fmt.Errorf("bench: cluster update: %w", err)
	}
	start = time.Now()
	fst, err := flatSess.Update(d)
	flatUpD := time.Since(start)
	if err != nil {
		return nil, nil, err
	}
	if cst.ResidualEdges != fst.ResidualEdges || cst.Iterations != fst.Iterations {
		return nil, nil, fmt.Errorf("bench: cluster update stats diverge from flat")
	}
	csol, fsol := clusterSess.Solution(), flatSess.Solution()
	if csol.Weight != fsol.Weight || csol.DualLowerBound != fsol.DualLowerBound {
		return nil, nil, fmt.Errorf("bench: cluster session diverges from flat session")
	}
	if csol.RatioBound > clusterSess.CertifiedBound()*(1+1e-9) {
		return nil, nil, fmt.Errorf("bench: cluster session breaks its certificate")
	}
	ms = append(ms,
		bench.Measurement{Name: prefix + "/update-2p/ns", Value: float64(clusterUpD.Nanoseconds()), Unit: "ns", Tolerance: 0.75},
		bench.Measurement{Name: prefix + "/update-residual-edges", Value: float64(cst.ResidualEdges), Unit: "edges", Tolerance: 0.001},
	)
	t.AddRow("session update (flat)", fmt.Sprintf("%.1f", flatUpD.Seconds()*1000), "—", "—")
	t.AddRow("session update (cluster 2p)", fmt.Sprintf("%.1f", clusterUpD.Seconds()*1000), "—", "yes")
	t.Notes = append(t.Notes,
		"peers are loopback TCP processes-in-miniature: the gap to flat is pure protocol overhead, the upper bound of what real network distance adds",
		"every cluster reading is taken only after bit-identity with the flat engine is verified",
	)

	allocMS, err := clusterCodecAllocs()
	if err != nil {
		return nil, nil, err
	}
	ms = append(ms, allocMS...)
	return ms, []bench.Table{t}, nil
}

// clusterCodecAllocs counts heap allocations of the per-round boundary
// codec — the only work on the cluster hot path that runs once per peer per
// iteration regardless of instance size. The counts are properties of the
// code, gated exactly by the -portable comparator like the other allocs/*
// entries.
func clusterCodecAllocs() ([]bench.Measurement, error) {
	frame := core.BoundaryFrame{Part: 1}
	for v := int32(0); v < 256; v++ {
		frame.States = append(frame.States, core.BoundaryState{
			V: v * 3, Level: v % 7, Joined: v%5 == 0, Raise: v%2 == 0,
		})
	}
	var buf []byte
	encAllocs := testing.AllocsPerRun(100, func() {
		buf = cluster.EncodeBoundaryFrame(buf, 3, frame)
	})
	payload := cluster.EncodeBoundaryFrame(nil, 3, frame)
	decAllocs := testing.AllocsPerRun(100, func() {
		if _, _, err := cluster.DecodeBoundaryFrame(payload); err != nil {
			panic(err)
		}
	})
	return []bench.Measurement{
		{Name: "allocs/cluster/encode-round", Value: encAllocs, Unit: "allocs", Tolerance: 0.001},
		{Name: "allocs/cluster/decode-round", Value: decAllocs, Unit: "allocs", Tolerance: 0.001},
	}, nil
}

// sameSolution checks the fields the bit-identity claim covers.
func sameSolution(a, b *distcover.Solution) bool {
	if len(a.Cover) != len(b.Cover) {
		return false
	}
	for i := range a.Cover {
		if a.Cover[i] != b.Cover[i] {
			return false
		}
	}
	return a.Weight == b.Weight && a.DualLowerBound == b.DualLowerBound &&
		a.Iterations == b.Iterations && a.Rounds == b.Rounds && a.MaxLevel == b.MaxLevel
}

// startBenchPeers launches n loopback cluster peers.
func startBenchPeers(n int) (addrs []string, closeAll func(), err error) {
	var peers []*cluster.Peer
	closeAll = func() {
		for _, p := range peers {
			p.Close()
		}
	}
	for i := 0; i < n; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			closeAll()
			return nil, nil, err
		}
		p := cluster.NewPeer()
		go p.Serve(ln)
		peers = append(peers, p)
		addrs = append(addrs, ln.Addr().String())
	}
	return addrs, closeAll, nil
}

// ClusterExperiment is the experiment adapter for MeasureCluster (E14).
func ClusterExperiment(cfg bench.Config) ([]bench.Table, error) {
	_, tables, err := MeasureCluster(cfg)
	return tables, err
}
