package sessions

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"sync"
	"time"

	"distcover"
	"distcover/internal/bench"
	"distcover/internal/cluster"
	"distcover/internal/core"
	"distcover/internal/durable"
	"distcover/internal/hypergraph"
	"distcover/internal/telemetry"
)

// setupCounter is a coordinator-side Tracer that tallies the bytes of the
// setup-phase frame kinds (hello, setup, instance) — the wire cost of
// getting peers ready to solve, as opposed to the per-iteration exchange
// traffic. The per-kind split is what lets the suite distinguish "shipped
// the whole instance" from "shipped only its hash".
type setupCounter struct {
	mu     sync.Mutex
	byKind map[string]int64
}

func (c *setupCounter) Phase(int, string, time.Duration, time.Duration) {}
func (c *setupCounter) Exchange(string, string, int, time.Duration)     {}
func (c *setupCounter) Protocol(int, int64)                             {}

func (c *setupCounter) Frame(_, dir, kind string, bytes int) {
	if dir != telemetry.DirSent {
		return
	}
	switch kind {
	case "hello", "setup", "instance":
		c.mu.Lock()
		c.byKind[kind] += int64(bytes)
		c.mu.Unlock()
	}
}

func (c *setupCounter) setupBytes() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.byKind["hello"] + c.byKind["setup"] + c.byKind["instance"]
}

func (c *setupCounter) instanceBytes() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.byKind["instance"]
}

// sameResult checks the fields the cluster bit-identity claim covers.
func sameResult(a, b *core.Result) bool {
	if len(a.Cover) != len(b.Cover) {
		return false
	}
	for i := range a.Cover {
		if a.Cover[i] != b.Cover[i] {
			return false
		}
	}
	return a.CoverWeight == b.CoverWeight && a.DualValue == b.DualValue &&
		a.Iterations == b.Iterations
}

// MeasureFabric runs the E15 workload, gating the two durability-PR
// claims:
//
//  1. Instance fabric: a repeat cluster solve of an already-distributed
//     instance ships only the content hash during setup — at least 100×
//     fewer setup bytes than first contact, counted by a frame-level
//     tracer on the coordinator. The suite hard-fails below 100×.
//  2. WAL overhead: applying a session delta and logging it to the
//     write-ahead log (encode + append + flush, exactly what coverd does
//     per update) costs at most 10% over the bare in-memory apply. The
//     suite hard-fails above 1.10×.
func MeasureFabric(cfg bench.Config) ([]bench.Measurement, []bench.Table, error) {
	mode := pick(cfg, "full", "quick")
	name := pick(cfg, "fabric-100k", "fabric-10k")
	n := pick(cfg, 100_000, 10_000)
	baseM := pick(cfg, 200_000, 20_000)
	batches := pick(cfg, 6, 4)
	batchEdges := pick(cfg, 1_000, 200)
	prefix := mode + "/" + name

	g, err := hypergraph.UniformRandom(n, baseM, 3, hypergraph.GenConfig{
		Seed: cfg.Seed, Dist: hypergraph.WeightUniformRange, MaxWeight: 1000,
	})
	if err != nil {
		return nil, nil, fmt.Errorf("bench: fabric workload: %w", err)
	}

	t := bench.Table{
		ID:     "E15",
		Title:  "Instance fabric setup bytes and WAL update overhead",
		Header: []string{"leg", "reading", "note"},
	}

	// Leg 1: setup bytes, first contact vs repeat solve.
	peers, closePeers, err := startBenchPeers(2)
	if err != nil {
		return nil, nil, err
	}
	defer closePeers()
	opts := core.DefaultOptions()
	want, err := core.RunFlat(g, opts, 2)
	if err != nil {
		return nil, nil, err
	}
	tr := &setupCounter{byKind: map[string]int64{}}
	ccfg := cluster.Config{Peers: peers, Tracer: tr}
	first, err := cluster.Solve(g, opts, ccfg)
	if err != nil {
		return nil, nil, fmt.Errorf("bench: fabric first solve: %w", err)
	}
	if !sameResult(first, want) {
		return nil, nil, fmt.Errorf("bench: fabric cluster solve diverges from flat")
	}
	firstSetup := tr.setupBytes()
	firstInstance := tr.instanceBytes()
	if firstInstance == 0 {
		return nil, nil, fmt.Errorf("bench: first contact shipped no instance frame")
	}
	repeat, err := cluster.Solve(g, opts, ccfg)
	if err != nil {
		return nil, nil, fmt.Errorf("bench: fabric repeat solve: %w", err)
	}
	if !sameResult(repeat, want) {
		return nil, nil, fmt.Errorf("bench: fabric repeat solve diverges")
	}
	if tr.instanceBytes() != firstInstance {
		return nil, nil, fmt.Errorf("bench: repeat solve re-shipped the instance (%d extra bytes)",
			tr.instanceBytes()-firstInstance)
	}
	repeatSetup := tr.setupBytes() - firstSetup
	ratio := float64(firstSetup) / float64(repeatSetup)
	if ratio < 100 {
		return nil, nil, fmt.Errorf("bench: repeat setup shipped only %.1fx fewer bytes (%d vs %d), want ≥100x",
			ratio, firstSetup, repeatSetup)
	}
	t.AddRow("setup bytes, first contact", fmt.Sprintf("%d", firstSetup), "hello+setup+instance, 2 peers")
	t.AddRow("setup bytes, repeat solve", fmt.Sprintf("%d", repeatSetup), "hello+setup only — hash matched")
	t.AddRow("first/repeat ratio", fmt.Sprintf("%.0fx", ratio), "suite fails below 100x")

	// Leg 2: WAL overhead per session update. One flat session consumes a
	// delta stream; every batch is timed as two adjacent spans — the
	// in-memory apply, then the WAL record encode + append + flush —
	// which is exactly the sequence coverd's update handler runs. The
	// overhead ratio (apply+append over apply alone) is computed from the
	// same wall-clock samples, so scheduler noise hits both its numerator
	// and denominator and cannot manufacture a failure.
	inst, err := toInstance(g)
	if err != nil {
		return nil, nil, err
	}
	dir, err := os.MkdirTemp("", "bench-fabric-wal-*")
	if err != nil {
		return nil, nil, err
	}
	defer os.RemoveAll(dir)
	store, _, err := durable.Open(dir)
	if err != nil {
		return nil, nil, err
	}
	defer store.Close()
	instJSON, err := json.Marshal(inst)
	if err != nil {
		return nil, nil, err
	}
	if _, err := store.Append(durable.Record{
		Type: durable.RecCreate, ID: "bench", Options: []byte(`{}`), Instance: instJSON,
	}); err != nil {
		return nil, nil, err
	}

	rng := rand.New(rand.NewSource(cfg.Seed + 11))
	sess, err := distcover.NewSession(inst, distcover.WithFlatEngine())
	if err != nil {
		return nil, nil, err
	}
	defer sess.Close()
	var applyTotal, appendTotal time.Duration
	for b := 0; b < batches; b++ {
		var d distcover.Delta
		for i := 0; i < batchEdges; i++ {
			d.Edges = append(d.Edges, []int{rng.Intn(n), rng.Intn(n), rng.Intn(n)})
		}
		start := time.Now()
		if _, err := sess.Update(d); err != nil {
			return nil, nil, fmt.Errorf("bench: wal update batch %d: %w", b, err)
		}
		applied := time.Now()
		if _, err := store.Append(durable.Record{
			Type: durable.RecUpdate, ID: "bench", Delta: d,
		}); err != nil {
			return nil, nil, fmt.Errorf("bench: wal append batch %d: %w", b, err)
		}
		applyTotal += applied.Sub(start)
		appendTotal += time.Since(applied)
	}
	sol := sess.Solution()
	if sol.RatioBound > sess.CertifiedBound()*(1+1e-9) {
		return nil, nil, fmt.Errorf("bench: walled session breaks its certificate")
	}
	plainD, walD := applyTotal, applyTotal+appendTotal
	overhead := walD.Seconds() / plainD.Seconds()
	if overhead > 1.10 {
		return nil, nil, fmt.Errorf("bench: WAL update overhead %.3fx exceeds the 1.10x budget (append %v on top of apply %v)",
			overhead, appendTotal, applyTotal)
	}
	t.AddRow("session update, in-memory", fmt.Sprintf("%.2f ms", plainD.Seconds()*1000),
		fmt.Sprintf("apply spans over %d batches", batches))
	t.AddRow("session update + WAL append", fmt.Sprintf("%.2f ms", walD.Seconds()*1000),
		"encode + append + flush per batch")
	t.AddRow("WAL overhead", fmt.Sprintf("%.3fx", overhead), "suite fails above 1.10x")
	t.Notes = append(t.Notes,
		"setup bytes are counted by a frame-level tracer on the coordinator: hello + setup + instance frames, header included",
		"the WAL leg times exactly what coverd's update handler does per batch: apply, encode the delta record, append, flush",
	)

	ms := []bench.Measurement{
		// Frame sizes are deterministic for a fixed seed and protocol
		// version; the band only absorbs deliberate protocol evolution.
		{Name: prefix + "/setup-bytes-first", Value: float64(firstSetup), Unit: "bytes", Tolerance: 0.1},
		{Name: prefix + "/setup-bytes-repeat", Value: float64(repeatSetup), Unit: "bytes", Tolerance: 0.1},
		{Name: prefix + "/setup-bytes-ratio", Value: ratio, Unit: "x", HigherIsBetter: true, Tolerance: 0.5},
		{Name: prefix + "/update-plain/ns", Value: float64(plainD.Nanoseconds()), Unit: "ns", Tolerance: 0.75},
		{Name: prefix + "/update-wal/ns", Value: float64(walD.Nanoseconds()), Unit: "ns", Tolerance: 0.75},
		{Name: prefix + "/wal-overhead-ratio", Value: overhead, Unit: "x", Tolerance: 0.25},
	}
	return ms, []bench.Table{t}, nil
}

// FabricExperiment is the experiment adapter for MeasureFabric (E15).
func FabricExperiment(cfg bench.Config) ([]bench.Table, error) {
	_, tables, err := MeasureFabric(cfg)
	return tables, err
}
