package sessions

import (
	"fmt"
	"net"
	"reflect"
	"sync"
	"time"

	"distcover/internal/bench"
	"distcover/internal/cluster"
	"distcover/internal/core"
	"distcover/internal/hypergraph"
)

// relayHandshakeDelay is the artificial per-connection latency the E16
// peers inject before their first write (the hello reply). Real networks
// charge connection setup per peer dial; injecting it before the first
// write makes the cost deterministic on loopback, so the experiment
// measures exactly what the concurrent fan-out relay parallelizes — peer
// dial/handshake/setup — rather than scheduler noise.
const relayHandshakeDelay = 10 * time.Millisecond

// delayedConn sleeps once before the first Write on the connection.
type delayedConn struct {
	net.Conn
	once sync.Once
}

func (c *delayedConn) Write(p []byte) (int, error) {
	c.once.Do(func() { time.Sleep(relayHandshakeDelay) })
	return c.Conn.Write(p)
}

// delayedListener wraps every accepted connection in a delayedConn.
type delayedListener struct{ net.Listener }

func (l *delayedListener) Accept() (net.Conn, error) {
	conn, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	return &delayedConn{Conn: conn}, nil
}

// startLatencyPeers launches n loopback cluster peers behind first-write
// latency injection.
func startLatencyPeers(n int) (addrs []string, closeAll func(), err error) {
	var peers []*cluster.Peer
	closeAll = func() {
		for _, p := range peers {
			p.Close()
		}
	}
	for i := 0; i < n; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			closeAll()
			return nil, nil, err
		}
		p := cluster.NewPeer()
		go p.Serve(&delayedListener{Listener: ln})
		peers = append(peers, p)
		addrs = append(addrs, ln.Addr().String())
	}
	return addrs, closeAll, nil
}

// MeasureRelay runs the E16 workload: the concurrent fan-out relay against
// the historical sequential relay at 1, 2 and 4 partitions over two
// latency-injected loopback peers. The sequential relay dials and sets up
// its per-partition connections one at a time, so its wall clock grows by
// one handshake delay per partition; the fan-out relay dials concurrently
// (and multiplexes co-located partitions onto one v3 connection), so it
// pays the delay roughly once. Every reading is taken only after
// bit-identity with the single-process flat engine is verified, and the
// 4-partition speedup ratio is committed as a portable baseline entry with
// a hard floor: if fan-out stops beating sequential the suite fails.
func MeasureRelay(cfg bench.Config) ([]bench.Measurement, []bench.Table, error) {
	mode := pick(cfg, "full", "quick")
	name := pick(cfg, "relay-8k", "relay-2k")
	n := pick(cfg, 8_000, 2_000)
	m := pick(cfg, 16_000, 4_000)

	g, err := hypergraph.UniformRandom(n, m, 3, hypergraph.GenConfig{
		Seed: cfg.Seed, Dist: hypergraph.WeightUniformRange, MaxWeight: 1000,
	})
	if err != nil {
		return nil, nil, fmt.Errorf("bench: relay workload: %w", err)
	}
	opts := core.DefaultOptions()
	want, err := core.RunFlat(g, opts, 0)
	if err != nil {
		return nil, nil, err
	}

	peers, closePeers, err := startLatencyPeers(2)
	if err != nil {
		return nil, nil, err
	}
	defer closePeers()

	check := func(label string, got *core.Result) error {
		if !reflect.DeepEqual(got.Cover, want.Cover) || got.CoverWeight != want.CoverWeight ||
			got.DualValue != want.DualValue || got.Iterations != want.Iterations {
			return fmt.Errorf("bench: relay %s diverges from flat", label)
		}
		return nil
	}

	// Warm the peer instance caches so both relays run hash-hit setups:
	// the measured gap is then pure connection concurrency, not a JSON
	// transfer that only the first path pays.
	warm, err := cluster.Solve(g, opts, cluster.Config{Peers: peers, Partitions: 4})
	if err != nil {
		return nil, nil, fmt.Errorf("bench: relay warmup: %w", err)
	}
	if err := check("warmup", warm); err != nil {
		return nil, nil, err
	}

	t := bench.Table{
		ID:     "E16",
		Title:  "Relay concurrency: fan-out vs sequential relay under per-connection handshake latency",
		Header: []string{"partitions", "fan-out ms", "sequential ms", "speedup"},
	}

	prefix := mode + "/" + name
	var ms []bench.Measurement
	var speedup4 float64
	for _, parts := range []int{1, 2, 4} {
		start := time.Now()
		got, err := cluster.Solve(g, opts, cluster.Config{Peers: peers, Partitions: parts})
		fanD := time.Since(start)
		if err != nil {
			return nil, nil, fmt.Errorf("bench: fan-out %dp: %w", parts, err)
		}
		if err := check(fmt.Sprintf("fan-out %dp", parts), got); err != nil {
			return nil, nil, err
		}
		start = time.Now()
		got, err = cluster.Solve(g, opts, cluster.Config{Peers: peers, Partitions: parts, SequentialRelay: true})
		seqD := time.Since(start)
		if err != nil {
			return nil, nil, fmt.Errorf("bench: sequential %dp: %w", parts, err)
		}
		if err := check(fmt.Sprintf("sequential %dp", parts), got); err != nil {
			return nil, nil, err
		}
		ratio := seqD.Seconds() / fanD.Seconds()
		if parts == 4 {
			speedup4 = ratio
		}
		ms = append(ms, bench.Measurement{
			Name: fmt.Sprintf("%s/fanout-%dp/ns", prefix, parts), Value: float64(fanD.Nanoseconds()),
			Unit: "ns", Tolerance: 0.75,
		})
		t.AddRow(fmt.Sprintf("%d", parts),
			fmt.Sprintf("%.1f", fanD.Seconds()*1000),
			fmt.Sprintf("%.1f", seqD.Seconds()*1000),
			fmt.Sprintf("%.2fx", ratio))
	}
	// The refactor's reason to exist: at 4 partitions the concurrent relay
	// must beat the sequential baseline outright on this workload. The
	// committed ratio gates CI portably (it is hardware-independent: both
	// sides pay the same injected latency).
	if speedup4 <= 1.1 {
		return nil, nil, fmt.Errorf("bench: fan-out relay speedup %.2fx at 4 partitions — lost its concurrency advantage", speedup4)
	}
	ms = append(ms, bench.Measurement{
		Name: prefix + "/relay-speedup-4p", Value: speedup4, Unit: "x",
		HigherIsBetter: true, Tolerance: 0.6,
	})
	t.Notes = append(t.Notes,
		fmt.Sprintf("peers inject %v before each connection's first write: the sequential relay pays it per partition connection, the fan-out relay pays it once per peer (concurrent dials, v3 multiplexing)", relayHandshakeDelay),
		"every reading is taken only after bit-identity with the flat engine is verified",
	)
	return ms, []bench.Table{t}, nil
}

// RelayExperiment is the experiment adapter for MeasureRelay (E16).
func RelayExperiment(cfg bench.Config) ([]bench.Table, error) {
	_, tables, err := MeasureRelay(cfg)
	return tables, err
}
