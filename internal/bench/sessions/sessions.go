// Package sessions holds the benchmark suites that exercise the public
// incremental-session API (E12) and the allocation-count regression probes.
// They live outside package bench because they import the root distcover
// package, which the in-package tests at the repository root cannot be
// reached from without an import cycle.
package sessions

import (
	"fmt"
	"math/rand"
	"time"

	"distcover"
	"distcover/internal/bench"
	"distcover/internal/hypergraph"
)

// toInstance converts a generated hypergraph into a public Instance.
func toInstance(g *hypergraph.Hypergraph) (*distcover.Instance, error) {
	edges := make([][]int, g.NumEdges())
	for e := range edges {
		vs := g.Edge(hypergraph.EdgeID(e))
		row := make([]int, len(vs))
		for i, v := range vs {
			row[i] = int(v)
		}
		edges[e] = row
	}
	return distcover.NewInstance(g.Weights(), edges)
}

// MeasureIncremental runs the E12 workload: a large base instance is opened
// as a session, then repeated delta batches stream in; every batch is
// applied incrementally (Session.Update, residual warm-start) and also
// solved from scratch on the grown instance. The suite fails if the
// incremental path ever produces an invalid cover or breaks the f(1+ε)
// certificate — speedup numbers for wrong answers are worthless.
func MeasureIncremental(cfg bench.Config) ([]bench.Measurement, []bench.Table, error) {
	mode := pick(cfg, "full", "quick")
	name := pick(cfg, "incremental-100k", "incremental-20k")
	n := pick(cfg, 100_000, 20_000)
	baseM := pick(cfg, 200_000, 40_000)
	batches := pick(cfg, 8, 4)
	batchEdges := pick(cfg, 1_000, 200)

	t := bench.Table{
		ID:    "E12",
		Title: "Incremental sessions: residual re-solve vs from-scratch per delta batch",
		Header: []string{"batch", "new edges", "covered on arrival", "residual", "update ms",
			"scratch ms", "speedup", "ratio", "certificate"},
	}
	g, err := hypergraph.UniformRandom(n, baseM, 3, hypergraph.GenConfig{
		Seed: cfg.Seed, Dist: hypergraph.WeightUniformRange, MaxWeight: 1000,
	})
	if err != nil {
		return nil, nil, fmt.Errorf("bench: incremental workload: %w", err)
	}
	inst, err := toInstance(g)
	if err != nil {
		return nil, nil, err
	}
	sess, err := distcover.NewSession(inst)
	if err != nil {
		return nil, nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed + 1))
	cur := inst
	// One untimed warm-up batch: the first update pays one-time costs (lazy
	// page-ins, slice growth to steady state) that would otherwise pollute
	// the first measured reading, which matters at quick/CI scale.
	{
		var d distcover.Delta
		for i := 0; i < batchEdges; i++ {
			d.Edges = append(d.Edges, []int{rng.Intn(n), rng.Intn(n), rng.Intn(n)})
		}
		if _, err := sess.Update(d); err != nil {
			return nil, nil, fmt.Errorf("bench: incremental warmup: %w", err)
		}
		if cur, err = cur.Extend(d); err != nil {
			return nil, nil, err
		}
	}
	var (
		updateTotal, scratchTotal time.Duration
		residualTotal             int64
		iterTotal                 int64
	)
	for b := 1; b <= batches; b++ {
		var d distcover.Delta
		for i := 0; i < batchEdges; i++ {
			d.Edges = append(d.Edges, []int{rng.Intn(n), rng.Intn(n), rng.Intn(n)})
		}
		start := time.Now()
		st, err := sess.Update(d)
		updateD := time.Since(start)
		if err != nil {
			return nil, nil, fmt.Errorf("bench: incremental batch %d: %w", b, err)
		}
		updateTotal += updateD
		residualTotal += int64(st.ResidualEdges)
		iterTotal += int64(st.Iterations)

		cur, err = cur.Extend(d)
		if err != nil {
			return nil, nil, err
		}
		start = time.Now()
		scratch, err := distcover.Solve(cur)
		scratchD := time.Since(start)
		if err != nil {
			return nil, nil, fmt.Errorf("bench: scratch batch %d: %w", b, err)
		}
		scratchTotal += scratchD

		sol := sess.Solution()
		bound := sess.CertifiedBound()
		if !cur.IsCover(sol.Cover) {
			return nil, nil, fmt.Errorf("bench: batch %d: incremental cover invalid", b)
		}
		if sol.RatioBound > bound*(1+1e-9) {
			return nil, nil, fmt.Errorf("bench: batch %d: ratio %g exceeds certificate %g",
				b, sol.RatioBound, bound)
		}
		if w := float64(sol.Weight); w > bound*scratch.DualLowerBound*(1+1e-9) {
			return nil, nil, fmt.Errorf("bench: batch %d: weight %g vs scratch dual %g breaks certificate",
				b, w, scratch.DualLowerBound)
		}
		t.AddRow(fmt.Sprintf("%d", b), fmt.Sprintf("%d", st.NewEdges),
			fmt.Sprintf("%d", st.CoveredOnArrival), fmt.Sprintf("%d", st.ResidualEdges),
			fmt.Sprintf("%.2f", float64(updateD.Microseconds())/1000),
			fmt.Sprintf("%.2f", float64(scratchD.Microseconds())/1000),
			fmt.Sprintf("%.1fx", scratchD.Seconds()/updateD.Seconds()),
			fmt.Sprintf("%.3f", sol.RatioBound), fmt.Sprintf("%.2f", bound))
	}
	t.Notes = append(t.Notes,
		"every batch is certified: valid cover, RatioBound ≤ f(1+ε), weight within the scratch dual's certificate",
		"the speedup entry in BENCH_baseline.json pins the ≥5x incremental advantage")

	prefix := mode + "/" + name
	ms := []bench.Measurement{
		{Name: prefix + "/update/ns", Value: float64(updateTotal.Nanoseconds()), Unit: "ns", Tolerance: 0.75},
		{Name: prefix + "/scratch/ns", Value: float64(scratchTotal.Nanoseconds()), Unit: "ns", Tolerance: 0.75},
		{
			Name: prefix + "/speedup-update-vs-scratch",
			// Both legs run on the same machine, so the ratio cancels
			// hardware speed; the band still absorbs scheduler jitter while
			// failing long before the tentpole 5x multiple is lost.
			Value: scratchTotal.Seconds() / updateTotal.Seconds(), Unit: "x",
			HigherIsBetter: true, Tolerance: 0.6,
		},
		// Deterministic for a fixed seed: any drift is a real change to the
		// residual construction or the warm-started algorithm.
		{Name: prefix + "/residual-edges", Value: float64(residualTotal), Unit: "edges", Tolerance: 0.001},
		{Name: prefix + "/update-iterations", Value: float64(iterTotal), Unit: "iters", Tolerance: 0.001},
	}
	return ms, []bench.Table{t}, nil
}

// IncrementalSessions is the experiment adapter for MeasureIncremental.
func IncrementalSessions(cfg bench.Config) ([]bench.Table, error) {
	_, tables, err := MeasureIncremental(cfg)
	return tables, err
}

// pick returns quick when cfg.Quick, else full (mirrors bench.pick, which
// is unexported).
func pick[T any](cfg bench.Config, full, quick T) T {
	if cfg.Quick {
		return quick
	}
	return full
}
