package bench

import (
	"fmt"

	"distcover/internal/hypergraph"
)

// workload is a named instance family member.
type workload struct {
	name string
	g    *hypergraph.Hypergraph
}

// graphFamily builds random f-uniform hypergraphs with controlled degree d
// across a sweep of sizes.
func graphFamily(sizes []int, d, f int, dist hypergraph.WeightDist, maxW int64, seed int64) ([]workload, error) {
	var out []workload
	for _, n := range sizes {
		g, err := hypergraph.RegularLike(n, d, f, hypergraph.GenConfig{
			Seed: seed + int64(n), Dist: dist, MaxWeight: maxW,
		})
		if err != nil {
			return nil, fmt.Errorf("bench: workload n=%d: %w", n, err)
		}
		out = append(out, workload{name: fmt.Sprintf("n=%d", n), g: g})
	}
	return out, nil
}

// starFamily builds stars with growing Δ — the canonical hard instances for
// degree-dependent bounds.
func starFamily(deltas []int, f int, centerWeight int64) ([]workload, error) {
	var out []workload
	for _, d := range deltas {
		g, err := hypergraph.Star(d, f, centerWeight)
		if err != nil {
			return nil, fmt.Errorf("bench: star Δ=%d: %w", d, err)
		}
		out = append(out, workload{name: fmt.Sprintf("Δ=%d", d), g: g})
	}
	return out, nil
}

// pick returns quick when cfg.Quick, else full.
func pick[T any](cfg Config, full, quick T) T {
	if cfg.Quick {
		return quick
	}
	return full
}
