// Package cluster runs Algorithm MWHVC across several coverd processes: a
// coordinator partitions an instance into contiguous vertex ranges over the
// CSR layout, ships each range's share in one setup frame to a peer
// (distcover-cluster protocol over framed TCP), and relays the compact
// per-iteration boundary exchange — boundary-vertex levels plus join/raise
// flags, and the global coverage count — until the cover is complete. Each
// peer executes core.RunPartition, so the merged result is bit-identical to
// a single-process core.RunFlat on the undivided instance; the cluster
// equivalence tests enforce this at 1..4 partitions.
//
// Topology is a star: peers talk only to the coordinator, which detects a
// dead or wedged peer on the spot (connection error or deadline) and turns
// it into the typed ErrPeerLost after closing every connection, unblocking
// the surviving peers — no hang, no goroutine left behind. Peers hold no
// solve state between connections, so recovery is the coordinator's retry:
// once the lost peer is restarted (or replaced), the next solve proceeds
// from the coordinator-held session state.
//
// Since protocol v2 the setup is content-addressed (the instance fabric):
// the setup frame carries the instance's canonical hash, each peer keeps a
// byte-budgeted LRU of decoded instances keyed by that hash, and the JSON
// re-sync frame crosses the wire only for peers that answer hashmiss — so
// repeated solves, session re-pointing and post-ErrPeerLost failover ship
// a hash instead of megabytes. The cache is soft state: losing it costs
// one re-sync, never correctness.
//
// Session updates ship only the residual delta instance — the same JSON
// shape as the session delta codec — plus the carried dual loads, so the
// per-update traffic scales with the batch, not the instance.
package cluster

import (
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net"
	"time"

	"distcover/internal/core"
	"distcover/internal/hypergraph"
	"distcover/internal/telemetry"
)

// DefaultTimeout bounds every per-connection network operation (dial, one
// frame read) when Config.Timeout is zero.
const DefaultTimeout = 60 * time.Second

// Typed coordinator errors.
var (
	// ErrNoPeers is returned when a cluster solve is attempted without
	// configured peer addresses.
	ErrNoPeers = errors.New("cluster: no peers configured")
	// ErrPeerLost indicates a peer connection failed (died, was killed, or
	// timed out) mid-solve. The coordinator's session state is unchanged;
	// the operation can be retried once the peer is back.
	ErrPeerLost = errors.New("cluster: peer lost")
	// ErrPeerFailed indicates a peer reported a solver-level failure (for
	// example an iteration-limit overrun) through the protocol.
	ErrPeerFailed = errors.New("cluster: peer failed")
)

// Config parameterizes a coordinator-side solve.
type Config struct {
	// Peers are the peer addresses. Partition p connects to
	// Peers[p mod len(Peers)], so more partitions than peers simply open
	// several connections per process.
	Peers []string
	// Partitions is the partition count; 0 means one per peer.
	Partitions int
	// Timeout bounds dial and every frame read (0 = DefaultTimeout).
	Timeout time.Duration
	// TraceID correlates this solve across coordinator and peer logs; it
	// rides in the hello and setup frames. Empty generates a fresh id.
	TraceID string
	// Logger receives structured coordinator-side log lines (nil =
	// silent). Every line carries the trace_id attr; per-peer lines also
	// carry peer_addr.
	Logger *slog.Logger
	// Tracer receives per-peer exchange latency and frame accounting
	// hooks (nil = disabled, strictly zero overhead).
	Tracer telemetry.Tracer
}

func (c Config) timeout() time.Duration {
	if c.Timeout > 0 {
		return c.Timeout
	}
	return DefaultTimeout
}

// Solve runs a cold-start cluster solve of g. See SolveResidual for the
// warm-started variant; both go through run.
func Solve(g *hypergraph.Hypergraph, opts core.Options, cfg Config) (*core.Result, error) {
	return run(g, opts, nil, cfg)
}

// SolveResidual runs a warm-started cluster solve of a residual instance
// with carried dual loads (the cluster session update path).
func SolveResidual(g *hypergraph.Hypergraph, opts core.Options, carry []float64, cfg Config) (*core.Result, error) {
	if carry == nil {
		carry = make([]float64, g.NumVertices())
	}
	return run(g, opts, carry, cfg)
}

// peerConn is one coordinator-side connection. tr is the coordinator's
// tracer (nil = disabled); sends and reads account their frames on it.
type peerConn struct {
	addr string
	conn net.Conn
	tr   telemetry.Tracer
}

// run partitions g, distributes the shares, relays the iteration exchanges
// and assembles the merged result.
func run(g *hypergraph.Hypergraph, opts core.Options, carry []float64, cfg Config) (res *core.Result, err error) {
	if len(cfg.Peers) == 0 {
		return nil, ErrNoPeers
	}
	if opts.Exact {
		return nil, fmt.Errorf("%w: exact arithmetic is not distributable", core.ErrPartitionOptions)
	}
	// Trace and invariant collection are per-process concerns the protocol
	// does not carry; a cluster solve runs them off.
	opts.CollectTrace = false
	opts.CheckInvariants = false

	parts := cfg.Partitions
	if parts <= 0 {
		parts = len(cfg.Peers)
	}
	bounds := core.PlanPartitions(g, parts)
	np := len(bounds) - 1

	traceID := cfg.TraceID
	if traceID == "" {
		traceID = telemetry.NewTraceID()
	}
	lg, tr := cfg.Logger, cfg.Tracer
	startT := time.Now()
	if lg != nil {
		lg.Info("cluster: solve start", "trace_id", traceID,
			"partitions", np, "peers", len(cfg.Peers),
			"vertices", g.NumVertices(), "edges", g.NumEdges(), "warm", carry != nil)
		defer func() {
			if err != nil {
				lg.Warn("cluster: solve failed", "trace_id", traceID,
					"elapsed", time.Since(startT), "err", err)
			} else {
				lg.Info("cluster: solve done", "trace_id", traceID,
					"elapsed", time.Since(startT),
					"iterations", res.Iterations, "rounds", res.Rounds)
			}
		}()
	}

	// Content-addressed setup: only the canonical hash is computed up
	// front. The instance JSON is marshaled lazily — once, on the first
	// peer whose cache misses — and shared across all missing peers, so a
	// fully warm fleet never pays the serialization at all.
	hash := g.Hash()
	var instJSON []byte

	d := cfg.timeout()
	conns := make([]*peerConn, 0, np)
	defer func() {
		for _, pc := range conns {
			pc.conn.Close()
		}
	}()
	for p := 0; p < np; p++ {
		addr := cfg.Peers[p%len(cfg.Peers)]
		conn, err := net.DialTimeout("tcp", addr, d)
		if err != nil {
			return nil, lost(addr, "dial", err)
		}
		pc := &peerConn{addr: addr, conn: conn, tr: tr}
		conns = append(conns, pc)
		if err := pc.sendJSON(d, ftHello, helloFrame{Magic: protoMagic, Version: protoVersion, TraceID: traceID}); err != nil {
			return nil, lost(addr, "hello", err)
		}
		payload, err := pc.expect(ftHello, d)
		if err != nil {
			return nil, err
		}
		if _, err := parseHello(payload); err != nil {
			return nil, protocolErr(addr, err)
		}
		if err := pc.sendJSON(d, ftSetup, setupFrame{
			Hash:    hash,
			Carry:   carry,
			Options: toSetupOptions(opts),
			Bounds:  bounds,
			Part:    p,
			TraceID: traceID,
		}); err != nil {
			return nil, lost(addr, "setup", err)
		}
		// The peer answers hashok (cached — proceed straight to the
		// exchange loop) or hashmiss (send the ftInstance re-sync frame).
		ack, ft, err := pc.expectOneOf(d, ftHashOK, ftHashMiss)
		if err != nil {
			return nil, err
		}
		if string(ack) != hash {
			return nil, protocolErr(addr, fmt.Errorf("%w: hash ack %q for setup %q", ErrBadFrame, ack, hash))
		}
		hit := ft == ftHashOK
		if !hit {
			if instJSON == nil {
				if instJSON, err = json.Marshal(g); err != nil {
					return nil, fmt.Errorf("cluster: encode instance: %w", err)
				}
			}
			if err := pc.send(d, ftInstance, instJSON); err != nil {
				return nil, lost(addr, "instance re-sync", err)
			}
		}
		if lg != nil {
			lg.Debug("cluster: partition dispatched", "trace_id", traceID,
				"peer_addr", addr, "part", p, "hash", hash, "cache_hit", hit,
				"range_lo", bounds[p], "range_hi", bounds[p+1])
		}
	}

	// Relay loop: one boundary exchange and one coverage exchange per
	// iteration, mirroring the partition runner's cadence. The coordinator
	// tracks the global uncovered count itself, so it knows when the peers
	// move on to their result frames.
	uncovered := g.NumEdges()
	iteration := 0
	payloads := make([][]byte, np)
	var combined []byte
	for uncovered > 0 {
		iteration++
		for i, pc := range conns {
			var waitT time.Time
			if tr != nil {
				waitT = time.Now()
			}
			payload, err := pc.expect(ftBoundary, d)
			if err != nil {
				return nil, err
			}
			if tr != nil {
				tr.Exchange(pc.addr, telemetry.ExchangeBoundary, iteration, time.Since(waitT))
			}
			it, fr, err := decodeBoundary(payload)
			if err != nil {
				return nil, protocolErr(pc.addr, err)
			}
			if it != iteration || fr.Part != i {
				return nil, protocolErr(pc.addr, fmt.Errorf("%w: boundary (iter %d part %d) during iter %d part %d",
					ErrBadFrame, it, fr.Part, iteration, i))
			}
			// readFrame allocates a fresh payload per frame, so retaining it
			// until the broadcast needs no copy.
			payloads[i] = payload
		}
		combined = encodeCombinedBoundary(combined, iteration, payloads)
		for _, pc := range conns {
			if err := pc.send(d, ftAllB, combined); err != nil {
				return nil, lost(pc.addr, "combined boundary", err)
			}
		}
		total := 0
		for _, pc := range conns {
			var waitT time.Time
			if tr != nil {
				waitT = time.Now()
			}
			payload, err := pc.expect(ftCoverage, d)
			if err != nil {
				return nil, err
			}
			if tr != nil {
				tr.Exchange(pc.addr, telemetry.ExchangeCoverage, iteration, time.Since(waitT))
			}
			it, covered, err := decodeCoverage(payload)
			if err != nil {
				return nil, protocolErr(pc.addr, err)
			}
			if it != iteration {
				return nil, protocolErr(pc.addr, fmt.Errorf("%w: coverage for iteration %d during %d", ErrBadFrame, it, iteration))
			}
			total += covered
		}
		if total > uncovered {
			return nil, fmt.Errorf("%w: peers covered %d of %d uncovered edges", ErrBadFrame, total, uncovered)
		}
		var cbuf []byte
		cbuf = encodeCoverage(cbuf, iteration, total)
		for _, pc := range conns {
			if err := pc.send(d, ftAllC, cbuf); err != nil {
				return nil, lost(pc.addr, "combined coverage", err)
			}
		}
		uncovered -= total
	}

	partials := make([]*core.PartialResult, np)
	for i, pc := range conns {
		payload, err := pc.expect(ftResult, d)
		if err != nil {
			return nil, err
		}
		var fr resultFrame
		if err := json.Unmarshal(payload, &fr); err != nil {
			return nil, protocolErr(pc.addr, fmt.Errorf("%w: result: %v", ErrBadFrame, err))
		}
		partials[i] = frameToPartial(fr)
	}
	res, err = core.AssembleParts(g, opts, partials)
	if err != nil {
		return nil, fmt.Errorf("cluster: assemble: %w", err)
	}
	return res, nil
}

// send writes one frame to the peer, accounting it on the tracer.
func (pc *peerConn) send(d time.Duration, ft byte, payload []byte) error {
	if err := writeFrameTimeout(pc.conn, d, ft, payload); err != nil {
		return err
	}
	if pc.tr != nil {
		pc.tr.Frame(pc.addr, telemetry.DirSent, frameName(ft), frameWireBytes(len(payload)))
	}
	return nil
}

// sendJSON marshals v and sends it as one frame of type ft.
func (pc *peerConn) sendJSON(d time.Duration, ft byte, v any) error {
	payload, err := json.Marshal(v)
	if err != nil {
		return err
	}
	return pc.send(d, ft, payload)
}

// expect reads one frame of the wanted type from the peer, translating
// transport failures into ErrPeerLost and peer-reported error frames into
// ErrPeerFailed.
func (pc *peerConn) expect(want byte, d time.Duration) ([]byte, error) {
	ft, payload, err := readFrameTimeout(pc.conn, d)
	if err != nil {
		return nil, lost(pc.addr, "read", err)
	}
	if pc.tr != nil {
		pc.tr.Frame(pc.addr, telemetry.DirReceived, frameName(ft), frameWireBytes(len(payload)))
	}
	if ft == ftError {
		var ef errorFrame
		if err := json.Unmarshal(payload, &ef); err != nil {
			return nil, protocolErr(pc.addr, fmt.Errorf("%w: error frame: %v", ErrBadFrame, err))
		}
		return nil, fmt.Errorf("%w: %s: %s", ErrPeerFailed, pc.addr, ef.Message)
	}
	if ft != want {
		return nil, protocolErr(pc.addr, fmt.Errorf("%w: expected type %d, got %d", ErrBadFrame, want, ft))
	}
	return payload, nil
}

// expectOneOf reads one frame that must be one of the two wanted types,
// with the same transport/error-frame translation as expect.
func (pc *peerConn) expectOneOf(d time.Duration, wantA, wantB byte) ([]byte, byte, error) {
	ft, payload, err := readFrameTimeout(pc.conn, d)
	if err != nil {
		return nil, 0, lost(pc.addr, "read", err)
	}
	if pc.tr != nil {
		pc.tr.Frame(pc.addr, telemetry.DirReceived, frameName(ft), frameWireBytes(len(payload)))
	}
	if ft == ftError {
		var ef errorFrame
		if err := json.Unmarshal(payload, &ef); err != nil {
			return nil, 0, protocolErr(pc.addr, fmt.Errorf("%w: error frame: %v", ErrBadFrame, err))
		}
		return nil, 0, fmt.Errorf("%w: %s: %s", ErrPeerFailed, pc.addr, ef.Message)
	}
	if ft != wantA && ft != wantB {
		return nil, 0, protocolErr(pc.addr, fmt.Errorf("%w: expected type %d or %d, got %d", ErrBadFrame, wantA, wantB, ft))
	}
	return payload, ft, nil
}

// Invalidate asks every peer in cfg.Peers to drop the cached instance with
// the given content hash. Content-addressed entries are immutable, so this
// is capacity and teardown management (a deleted session's base instance,
// say), never a correctness requirement — a peer that is down simply keeps
// nothing, and a peer that never cached the hash acks all the same. All
// peers are attempted; the first error (if any) is returned.
func Invalidate(hash string, cfg Config) error {
	if len(cfg.Peers) == 0 {
		return ErrNoPeers
	}
	if hash == "" {
		return errors.New("cluster: invalidate: empty hash")
	}
	d := cfg.timeout()
	var firstErr error
	for _, addr := range cfg.Peers {
		if err := invalidateOne(addr, hash, d, cfg.Tracer); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	if cfg.Logger != nil {
		cfg.Logger.Debug("cluster: instance invalidated on peers",
			"hash", hash, "peers", len(cfg.Peers), "err", firstErr)
	}
	return firstErr
}

// invalidateOne runs the hello handshake and one invalidate/ack round trip
// against a single peer.
func invalidateOne(addr, hash string, d time.Duration, tr telemetry.Tracer) error {
	conn, err := net.DialTimeout("tcp", addr, d)
	if err != nil {
		return lost(addr, "dial", err)
	}
	defer conn.Close()
	pc := &peerConn{addr: addr, conn: conn, tr: tr}
	if err := pc.sendJSON(d, ftHello, helloFrame{Magic: protoMagic, Version: protoVersion}); err != nil {
		return lost(addr, "hello", err)
	}
	payload, err := pc.expect(ftHello, d)
	if err != nil {
		return err
	}
	if _, err := parseHello(payload); err != nil {
		return protocolErr(addr, err)
	}
	if err := pc.send(d, ftInvalidate, []byte(hash)); err != nil {
		return lost(addr, "invalidate", err)
	}
	ack, err := pc.expect(ftHashOK, d)
	if err != nil {
		return err
	}
	if string(ack) != hash {
		return protocolErr(addr, fmt.Errorf("%w: invalidate ack %q for %q", ErrBadFrame, ack, hash))
	}
	return nil
}

func lost(addr, op string, cause error) error {
	return fmt.Errorf("%w: %s: %s: %v", ErrPeerLost, addr, op, cause)
}

func protocolErr(addr string, cause error) error {
	return fmt.Errorf("cluster: peer %s: %w", addr, cause)
}
