// Package cluster runs Algorithm MWHVC across several coverd processes: a
// coordinator partitions an instance into contiguous vertex ranges over the
// CSR layout, ships each range's share in one setup frame to a peer
// (distcover-cluster protocol over framed TCP), and relays the compact
// per-iteration boundary exchange — boundary-vertex levels plus join/raise
// flags, and the global coverage count — until the cover is complete. Each
// peer executes core.RunPartition, so the merged result is bit-identical to
// a single-process core.RunFlat on the undivided instance; the cluster
// equivalence tests enforce this at 1..4 partitions.
//
// Topology is a star: peers talk only to the coordinator, which detects a
// dead or wedged peer on the spot (connection error or deadline) and turns
// it into the typed ErrPeerLost after closing every connection, unblocking
// the surviving peers — no hang, no goroutine left behind. Peers hold no
// solve state between connections, so recovery is the coordinator's retry:
// once the lost peer is restarted (or replaced), the next solve proceeds
// from the coordinator-held session state.
//
// Since protocol v2 the setup is content-addressed (the instance fabric):
// the setup frame carries the instance's canonical hash, each peer keeps a
// byte-budgeted LRU of decoded instances keyed by that hash, and the JSON
// re-sync frame crosses the wire only for peers that answer hashmiss — so
// repeated solves, session re-pointing and post-ErrPeerLost failover ship
// a hash instead of megabytes. The cache is soft state: losing it costs
// one re-sync, never correctness.
//
// Session updates ship only the residual delta instance — the same JSON
// shape as the session delta codec — plus the carried dual loads, so the
// per-update traffic scales with the batch, not the instance.
package cluster

import (
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net"
	"strings"
	"sync"
	"time"

	"distcover/internal/core"
	"distcover/internal/hypergraph"
	"distcover/internal/telemetry"
)

// DefaultTimeout bounds every per-connection network operation (dial, one
// frame read) when Config.Timeout is zero.
const DefaultTimeout = 60 * time.Second

// Typed coordinator errors.
var (
	// ErrNoPeers is returned when a cluster solve is attempted without
	// configured peer addresses.
	ErrNoPeers = errors.New("cluster: no peers configured")
	// ErrPeerLost indicates a peer connection failed (died, was killed, or
	// timed out) mid-solve. The coordinator's session state is unchanged;
	// the operation can be retried once the peer is back.
	ErrPeerLost = errors.New("cluster: peer lost")
	// ErrPeerFailed indicates a peer reported a solver-level failure (for
	// example an iteration-limit overrun) through the protocol.
	ErrPeerFailed = errors.New("cluster: peer failed")
)

// Config parameterizes a coordinator-side solve.
type Config struct {
	// Peers are the peer addresses. Partition p connects to
	// Peers[p mod len(Peers)], so more partitions than peers simply open
	// several connections per process.
	Peers []string
	// Partitions is the partition count; 0 means one per peer.
	Partitions int
	// Timeout bounds dial and every frame read (0 = DefaultTimeout).
	Timeout time.Duration
	// TraceID correlates this solve across coordinator and peer logs; it
	// rides in the hello and setup frames. Empty generates a fresh id.
	TraceID string
	// Logger receives structured coordinator-side log lines (nil =
	// silent). Every line carries the trace_id attr; per-peer lines also
	// carry peer_addr.
	Logger *slog.Logger
	// Tracer receives per-peer exchange latency and frame accounting
	// hooks (nil = disabled, strictly zero overhead). The fan-out relay
	// calls it from one goroutine per connection, so the tracer must be
	// safe for concurrent use (telemetry.Recorder and the Prometheus
	// adapter both are).
	Tracer telemetry.Tracer
	// MaxProtocol caps the protocol version this coordinator negotiates
	// (0 = the newest this build speaks). Setting 2 forces one plain v2
	// connection per partition instead of multiplexing partitions onto a
	// shared v3 connection per peer process.
	MaxProtocol int
	// SequentialRelay switches back to the historical relay that walks
	// the peers one frame at a time on the coordinator goroutine (always
	// plain v2, one connection per partition). It exists as the measured
	// baseline for the concurrent fan-out relay and as wire-compat
	// coverage; production solves leave it false.
	SequentialRelay bool
}

func (c Config) timeout() time.Duration {
	if c.Timeout > 0 {
		return c.Timeout
	}
	return DefaultTimeout
}

// Solve runs a cold-start cluster solve of g. See SolveResidual for the
// warm-started variant; both go through run.
func Solve(g *hypergraph.Hypergraph, opts core.Options, cfg Config) (*core.Result, error) {
	return run(g, opts, nil, cfg)
}

// SolveResidual runs a warm-started cluster solve of a residual instance
// with carried dual loads (the cluster session update path).
func SolveResidual(g *hypergraph.Hypergraph, opts core.Options, carry []float64, cfg Config) (*core.Result, error) {
	if carry == nil {
		carry = make([]float64, g.NumVertices())
	}
	return run(g, opts, carry, cfg)
}

// run validates and partitions the solve, then hands it to the concurrent
// fan-out relay (the default) or the historical sequential relay.
func run(g *hypergraph.Hypergraph, opts core.Options, carry []float64, cfg Config) (res *core.Result, err error) {
	if len(cfg.Peers) == 0 {
		return nil, ErrNoPeers
	}
	if opts.Exact {
		return nil, fmt.Errorf("%w: exact arithmetic is not distributable", core.ErrPartitionOptions)
	}
	// Trace and invariant collection are per-process concerns the protocol
	// does not carry; a cluster solve runs them off.
	opts.CollectTrace = false
	opts.CheckInvariants = false

	parts := cfg.Partitions
	if parts <= 0 {
		parts = len(cfg.Peers)
	}
	bounds := core.PlanPartitions(g, parts)
	np := len(bounds) - 1
	if np > maxChannels {
		return nil, fmt.Errorf("%w: %d partitions exceed the %d-channel limit", core.ErrPartitionOptions, np, maxChannels)
	}

	traceID := cfg.TraceID
	if traceID == "" {
		traceID = telemetry.NewTraceID()
	}
	lg := cfg.Logger
	startT := time.Now()
	if lg != nil {
		lg.Info("cluster: solve start", "trace_id", traceID,
			"partitions", np, "peers", len(cfg.Peers),
			"vertices", g.NumVertices(), "edges", g.NumEdges(), "warm", carry != nil,
			"sequential", cfg.SequentialRelay)
		defer func() {
			if err != nil {
				lg.Warn("cluster: solve failed", "trace_id", traceID,
					"elapsed", time.Since(startT), "err", err)
			} else {
				lg.Info("cluster: solve done", "trace_id", traceID,
					"elapsed", time.Since(startT),
					"iterations", res.Iterations, "rounds", res.Rounds)
			}
		}()
	}

	if cfg.SequentialRelay {
		return runSequential(g, opts, carry, cfg, bounds, traceID)
	}
	return runFanOut(g, opts, carry, cfg, bounds, traceID)
}

// sendJSONFrame marshals v and sends it as one frame of type ft on rw.
func sendJSONFrame(rw frameRW, ft byte, v any) error {
	payload, err := json.Marshal(v)
	if err != nil {
		return err
	}
	return rw.sendFrame(ft, payload)
}

// expectFrame reads one frame from rw, translating transport failures into
// ErrPeerLost and peer-reported error frames into ErrPeerFailed; the frame
// must be one of the wanted types. It is the coordinator's single
// read-and-translate helper (the former expect/expectOneOf near-duplicate
// pair folded into one).
func expectFrame(rw frameRW, addr string, wants ...byte) ([]byte, byte, error) {
	ft, payload, err := rw.recvFrame()
	if err != nil {
		return nil, 0, lost(addr, "read", err)
	}
	if ft == ftError {
		var ef errorFrame
		if err := json.Unmarshal(payload, &ef); err != nil {
			return nil, 0, protocolErr(addr, fmt.Errorf("%w: error frame: %v", ErrBadFrame, err))
		}
		return nil, 0, fmt.Errorf("%w: %s: %s", ErrPeerFailed, addr, ef.Message)
	}
	for _, want := range wants {
		if ft == want {
			return payload, ft, nil
		}
	}
	names := make([]string, len(wants))
	for i, want := range wants {
		names[i] = frameName(want)
	}
	return nil, 0, protocolErr(addr, fmt.Errorf("%w: expected %s, got %s", ErrBadFrame, strings.Join(names, " or "), frameName(ft)))
}

// dialNegotiate opens one coordinator-side connection: dial, hello, parse
// the peer's hello and compute the negotiated protocol version (capped at
// maxVer).
func dialNegotiate(addr string, d time.Duration, tr telemetry.Tracer, maxVer int, traceID string) (net.Conn, int, error) {
	conn, err := net.DialTimeout("tcp", addr, d)
	if err != nil {
		return nil, 0, lost(addr, "dial", err)
	}
	// The handshake itself is always plain v2 framing; only frames after
	// both hellos switch to the negotiated version.
	rw := &connRW{conn: conn, d: d, tr: tr, peer: addr}
	if err := sendJSONFrame(rw, ftHello, makeHello(maxVer, traceID)); err != nil {
		conn.Close()
		return nil, 0, lost(addr, "hello", err)
	}
	payload, _, err := expectFrame(rw, addr, ftHello)
	if err != nil {
		conn.Close()
		return nil, 0, err
	}
	reply, err := parseHello(payload)
	if err != nil {
		conn.Close()
		return nil, 0, protocolErr(addr, err)
	}
	return conn, effectiveVersion(maxVer, reply), nil
}

// setupPartition runs the content-addressed setup handshake for one
// partition on rw: send the setup frame, read the hashok/hashmiss answer
// and re-sync the instance JSON on a miss. marshal returns the shared
// instance JSON (computed lazily, once per solve, however many peers
// miss). It reports whether the peer's cache held the instance.
func setupPartition(rw frameRW, addr string, sf setupFrame, marshal func() ([]byte, error)) (bool, error) {
	if err := sendJSONFrame(rw, ftSetup, sf); err != nil {
		return false, lost(addr, "setup", err)
	}
	ack, ft, err := expectFrame(rw, addr, ftHashOK, ftHashMiss)
	if err != nil {
		return false, err
	}
	if string(ack) != sf.Hash {
		return false, protocolErr(addr, fmt.Errorf("%w: hash ack %q for setup %q", ErrBadFrame, ack, sf.Hash))
	}
	if ft == ftHashOK {
		return true, nil
	}
	instJSON, err := marshal()
	if err != nil {
		return false, err
	}
	if err := rw.sendFrame(ftInstance, instJSON); err != nil {
		return false, lost(addr, "instance re-sync", err)
	}
	return false, nil
}

// instanceMarshaler returns the lazy shared-marshal closure setupPartition
// uses: the instance JSON is produced at most once per solve, on the first
// cache miss, and is safe to request from concurrent relay goroutines.
func instanceMarshaler(g *hypergraph.Hypergraph) func() ([]byte, error) {
	var (
		once sync.Once
		data []byte
		err  error
	)
	return func() ([]byte, error) {
		once.Do(func() {
			data, err = json.Marshal(g)
			if err != nil {
				err = fmt.Errorf("cluster: encode instance: %w", err)
			}
		})
		return data, err
	}
}

// runSequential is the historical relay: per-partition v2 connections set
// up one after another, then one boundary and one coverage exchange per
// iteration walked peer by peer on this goroutine. Kept as the measured
// baseline for the fan-out relay and as plain-v2 wire coverage.
func runSequential(g *hypergraph.Hypergraph, opts core.Options, carry []float64, cfg Config, bounds []int, traceID string) (*core.Result, error) {
	np := len(bounds) - 1
	lg, tr := cfg.Logger, cfg.Tracer
	hash := g.Hash()
	marshal := instanceMarshaler(g)
	d := cfg.timeout()

	type seqConn struct {
		addr string
		conn net.Conn
		rw   frameRW
	}
	conns := make([]*seqConn, 0, np)
	defer func() {
		for _, pc := range conns {
			pc.conn.Close()
		}
	}()
	for p := 0; p < np; p++ {
		addr := cfg.Peers[p%len(cfg.Peers)]
		// The sequential relay predates multiplexing; it always speaks
		// plain v2, one connection per partition.
		conn, _, err := dialNegotiate(addr, d, tr, protoVersion, traceID)
		if err != nil {
			return nil, err
		}
		pc := &seqConn{addr: addr, conn: conn, rw: &connRW{conn: conn, d: d, tr: tr, peer: addr}}
		conns = append(conns, pc)
		hit, err := setupPartition(pc.rw, addr, setupFrame{
			Hash:    hash,
			Carry:   carry,
			Options: toSetupOptions(opts),
			Bounds:  bounds,
			Part:    p,
			TraceID: traceID,
		}, marshal)
		if err != nil {
			return nil, err
		}
		if lg != nil {
			lg.Debug("cluster: partition dispatched", "trace_id", traceID,
				"peer_addr", addr, "part", p, "hash", hash, "cache_hit", hit,
				"range_lo", bounds[p], "range_hi", bounds[p+1])
		}
	}

	// Relay loop: one boundary exchange and one coverage exchange per
	// iteration, mirroring the partition runner's cadence. The coordinator
	// tracks the global uncovered count itself, so it knows when the peers
	// move on to their result frames.
	uncovered := g.NumEdges()
	iteration := 0
	payloads := make([][]byte, np)
	var combined []byte
	for uncovered > 0 {
		iteration++
		for i, pc := range conns {
			var waitT time.Time
			if tr != nil {
				waitT = time.Now()
			}
			payload, _, err := expectFrame(pc.rw, pc.addr, ftBoundary)
			if err != nil {
				return nil, err
			}
			if tr != nil {
				tr.Exchange(pc.addr, telemetry.ExchangeBoundary, iteration, time.Since(waitT))
			}
			it, fr, err := decodeBoundary(payload)
			if err != nil {
				return nil, protocolErr(pc.addr, err)
			}
			if it != iteration || fr.Part != i {
				return nil, protocolErr(pc.addr, fmt.Errorf("%w: boundary (iter %d part %d) during iter %d part %d",
					ErrBadFrame, it, fr.Part, iteration, i))
			}
			// readFrame allocates a fresh payload per frame, so retaining it
			// until the broadcast needs no copy.
			payloads[i] = payload
		}
		combined = encodeCombinedBoundary(combined, iteration, payloads)
		for _, pc := range conns {
			if err := pc.rw.sendFrame(ftAllB, combined); err != nil {
				return nil, lost(pc.addr, "combined boundary", err)
			}
		}
		total := 0
		for _, pc := range conns {
			var waitT time.Time
			if tr != nil {
				waitT = time.Now()
			}
			payload, _, err := expectFrame(pc.rw, pc.addr, ftCoverage)
			if err != nil {
				return nil, err
			}
			if tr != nil {
				tr.Exchange(pc.addr, telemetry.ExchangeCoverage, iteration, time.Since(waitT))
			}
			it, covered, err := decodeCoverage(payload)
			if err != nil {
				return nil, protocolErr(pc.addr, err)
			}
			if it != iteration {
				return nil, protocolErr(pc.addr, fmt.Errorf("%w: coverage for iteration %d during %d", ErrBadFrame, it, iteration))
			}
			total += covered
		}
		if total > uncovered {
			return nil, fmt.Errorf("%w: peers covered %d of %d uncovered edges", ErrBadFrame, total, uncovered)
		}
		var cbuf []byte
		cbuf = encodeCoverage(cbuf, iteration, total)
		for _, pc := range conns {
			if err := pc.rw.sendFrame(ftAllC, cbuf); err != nil {
				return nil, lost(pc.addr, "combined coverage", err)
			}
		}
		uncovered -= total
	}

	partials := make([]*core.PartialResult, np)
	for i, pc := range conns {
		payload, _, err := expectFrame(pc.rw, pc.addr, ftResult)
		if err != nil {
			return nil, err
		}
		var fr resultFrame
		if err := json.Unmarshal(payload, &fr); err != nil {
			return nil, protocolErr(pc.addr, fmt.Errorf("%w: result: %v", ErrBadFrame, err))
		}
		partials[i] = frameToPartial(fr)
	}
	res, err := core.AssembleParts(g, opts, partials)
	if err != nil {
		return nil, fmt.Errorf("cluster: assemble: %w", err)
	}
	return res, nil
}

// Invalidate asks every peer in cfg.Peers to drop the cached instance with
// the given content hash. Content-addressed entries are immutable, so this
// is capacity and teardown management (a deleted session's base instance,
// say), never a correctness requirement — a peer that is down simply keeps
// nothing, and a peer that never cached the hash acks all the same. The
// per-peer round trips run concurrently (a fleet invalidation costs one
// timeout, not one per peer); every peer is attempted and the first error
// by peer order (if any) is returned.
func Invalidate(hash string, cfg Config) error {
	if len(cfg.Peers) == 0 {
		return ErrNoPeers
	}
	if hash == "" {
		return errors.New("cluster: invalidate: empty hash")
	}
	d := cfg.timeout()
	errs := make([]error, len(cfg.Peers))
	var wg sync.WaitGroup
	for i, addr := range cfg.Peers {
		wg.Add(1)
		go func(i int, addr string) {
			defer wg.Done()
			errs[i] = invalidateOne(addr, hash, d, cfg.Tracer, clampMaxProtocol(cfg.MaxProtocol))
		}(i, addr)
	}
	wg.Wait()
	var firstErr error
	for _, err := range errs {
		if err != nil {
			firstErr = err
			break
		}
	}
	if cfg.Logger != nil {
		cfg.Logger.Debug("cluster: instance invalidated on peers",
			"hash", hash, "peers", len(cfg.Peers), "err", firstErr)
	}
	return firstErr
}

// invalidateOne runs the hello handshake and one invalidate/ack round trip
// against a single peer. Under a negotiated v3 connection the round trip
// rides on channel 0.
func invalidateOne(addr, hash string, d time.Duration, tr telemetry.Tracer, maxVer int) error {
	conn, ver, err := dialNegotiate(addr, d, tr, maxVer, "")
	if err != nil {
		return err
	}
	defer conn.Close()
	var rw frameRW
	if ver >= 3 {
		m := newMux(conn, d, tr, addr)
		rw = m.channel(0)
		go m.readLoop()
		// Tear the reader down before returning (close unblocks it), so a
		// completed invalidation leaves no goroutine behind.
		defer func() { conn.Close(); <-m.done }()
	} else {
		rw = &connRW{conn: conn, d: d, tr: tr, peer: addr}
	}
	if err := rw.sendFrame(ftInvalidate, []byte(hash)); err != nil {
		return lost(addr, "invalidate", err)
	}
	ack, _, err := expectFrame(rw, addr, ftHashOK)
	if err != nil {
		return err
	}
	if string(ack) != hash {
		return protocolErr(addr, fmt.Errorf("%w: invalidate ack %q for %q", ErrBadFrame, ack, hash))
	}
	return nil
}

func lost(addr, op string, cause error) error {
	return fmt.Errorf("%w: %s: %s: %v", ErrPeerLost, addr, op, cause)
}

func protocolErr(addr string, cause error) error {
	return fmt.Errorf("cluster: peer %s: %w", addr, cause)
}
