package cluster

import (
	"encoding/json"
	"errors"
	"math/rand"
	"net"
	"reflect"
	"runtime"
	"sync"
	"testing"
	"time"

	"distcover/internal/core"
	"distcover/internal/hypergraph"
)

// startPeers launches n in-process peers on 127.0.0.1:0 listeners and
// returns their addresses. Cleanup closes them and verifies Serve returned
// ErrPeerClosed.
func startPeers(t *testing.T, n int) []string {
	t.Helper()
	addrs := make([]string, n)
	for i := 0; i < n; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		p := NewPeer()
		addrs[i] = ln.Addr().String()
		served := make(chan error, 1)
		go func() { served <- p.Serve(ln) }()
		t.Cleanup(func() {
			p.Close()
			if err := <-served; !errors.Is(err, ErrPeerClosed) {
				t.Errorf("Serve returned %v, want ErrPeerClosed", err)
			}
		})
	}
	return addrs
}

func testInstance(t *testing.T, seed int64, n, m, f int) *hypergraph.Hypergraph {
	t.Helper()
	g, err := hypergraph.UniformRandom(n, m, f, hypergraph.GenConfig{
		Seed: seed, Dist: hypergraph.WeightUniformRange, MaxWeight: 200,
	})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// requireResultsEqual asserts cluster and flat results agree bit for bit on
// every reconstructed field.
func requireResultsEqual(t *testing.T, label string, got, want *core.Result) {
	t.Helper()
	if !reflect.DeepEqual(got.Cover, want.Cover) || !reflect.DeepEqual(got.Dual, want.Dual) ||
		!reflect.DeepEqual(got.InCover, want.InCover) {
		t.Fatalf("%s: cover/duals diverge from flat", label)
	}
	if got.CoverWeight != want.CoverWeight || got.DualValue != want.DualValue ||
		got.RatioBound != want.RatioBound || got.Iterations != want.Iterations ||
		got.Rounds != want.Rounds || got.MaxLevel != want.MaxLevel || got.Z != want.Z ||
		got.Alpha != want.Alpha || got.Epsilon != want.Epsilon {
		t.Fatalf("%s: scalars diverge:\n got %+v\nwant %+v", label, got, want)
	}
}

// TestClusterSolveMatchesFlat runs real TCP cluster solves — including more
// partitions than peers (several connections per process) — against the
// single-process flat runner.
func TestClusterSolveMatchesFlat(t *testing.T) {
	addrs := startPeers(t, 2)
	rng := rand.New(rand.NewSource(31007))
	for i := 0; i < 4; i++ {
		g := testInstance(t, rng.Int63(), 40+10*i, 120, 2+i%3)
		opts := core.DefaultOptions()
		opts.Epsilon = []float64{1, 0.5}[i%2]
		want, err := core.RunFlat(g, opts, 2)
		if err != nil {
			t.Fatal(err)
		}
		for _, parts := range []int{0, 2, 4} { // 0 = one per peer
			got, err := Solve(g, opts, Config{Peers: addrs, Partitions: parts})
			if err != nil {
				t.Fatalf("instance %d parts %d: %v", i, parts, err)
			}
			requireResultsEqual(t, "solve", got, want)
		}
	}
}

// TestClusterSolveResidualMatchesFlat covers the warm-started update path
// over real TCP.
func TestClusterSolveResidualMatchesFlat(t *testing.T) {
	addrs := startPeers(t, 3)
	rng := rand.New(rand.NewSource(5511))
	g := testInstance(t, 99, 60, 180, 3)
	carry := make([]float64, g.NumVertices())
	for v := range carry {
		carry[v] = rng.Float64() * 0.9 * float64(g.Weight(hypergraph.VertexID(v)))
	}
	opts := core.DefaultOptions()
	want, err := core.RunResidualFlat(g, opts, carry, 2)
	if err != nil {
		t.Fatal(err)
	}
	got, err := SolveResidual(g, opts, carry, Config{Peers: addrs})
	if err != nil {
		t.Fatal(err)
	}
	requireResultsEqual(t, "residual", got, want)
}

// TestClusterNoPeers checks the typed empty-configuration error.
func TestClusterNoPeers(t *testing.T) {
	g := testInstance(t, 1, 10, 20, 2)
	if _, err := Solve(g, core.DefaultOptions(), Config{}); !errors.Is(err, ErrNoPeers) {
		t.Fatalf("err = %v, want ErrNoPeers", err)
	}
}

// TestClusterPeerUnreachable: dialing a dead address is a lost peer.
func TestClusterPeerUnreachable(t *testing.T) {
	// Reserve a port, then close it so nothing listens there.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	g := testInstance(t, 2, 10, 20, 2)
	_, err = Solve(g, core.DefaultOptions(), Config{Peers: []string{addr}, Timeout: 2 * time.Second})
	if !errors.Is(err, ErrPeerLost) {
		t.Fatalf("err = %v, want ErrPeerLost", err)
	}
}

// dropAfterBoundary is a fake peer that follows the protocol through the
// first boundary frame of iteration 1 and then drops the connection — a
// deterministic stand-in for a peer dying mid-round.
func dropAfterBoundary(t *testing.T) (addr string, stop func()) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			func() {
				defer conn.Close()
				if _, err := expectHello(conn, time.Second); err != nil {
					return
				}
				if err := writeJSONFrame(conn, ftHello, helloFrame{Magic: protoMagic, Version: protoVersion}); err != nil {
					return
				}
				_, payload, err := readFrameTimeout(conn, time.Second) // setup
				if err != nil {
					return
				}
				// v2 handshake: claim the instance is cached so the
				// coordinator proceeds straight to the exchange loop.
				var setup setupFrame
				if err := json.Unmarshal(payload, &setup); err != nil {
					return
				}
				if err := writeFrame(conn, ftHashOK, []byte(setup.Hash)); err != nil {
					return
				}
				// Pretend to have an empty boundary, then vanish before the
				// combined frame ships back.
				if err := writeFrame(conn, ftBoundary, encodeBoundary(nil, 1, core.BoundaryFrame{Part: 1})); err != nil {
					return
				}
			}()
		}
	}()
	var once sync.Once
	stop = func() { once.Do(func() { ln.Close(); <-done }) }
	t.Cleanup(stop)
	return ln.Addr().String(), stop
}

// TestClusterPeerLostMidRound: one real peer plus one that drops mid-round;
// the coordinator must return ErrPeerLost promptly, with the surviving peer
// unblocked (its handler drains — checked by the goroutine regression
// below, which includes this test's scenario).
func TestClusterPeerLostMidRound(t *testing.T) {
	real := startPeers(t, 1)
	faker, _ := dropAfterBoundary(t)
	g := testInstance(t, 7, 30, 90, 3)
	start := time.Now()
	_, err := Solve(g, core.DefaultOptions(), Config{Peers: []string{real[0], faker}, Timeout: 5 * time.Second})
	if !errors.Is(err, ErrPeerLost) {
		t.Fatalf("err = %v, want ErrPeerLost", err)
	}
	if d := time.Since(start); d > 10*time.Second {
		t.Fatalf("coordinator took %v to notice the lost peer", d)
	}
}

// TestClusterPeerFailed: a peer-side solver failure (iteration limit)
// arrives as the typed ErrPeerFailed, not as a lost connection.
func TestClusterPeerFailed(t *testing.T) {
	addrs := startPeers(t, 2)
	g := testInstance(t, 8, 40, 120, 3)
	opts := core.DefaultOptions()
	opts.MaxIterations = 1
	_, err := Solve(g, opts, Config{Peers: addrs})
	if !errors.Is(err, ErrPeerFailed) {
		t.Fatalf("err = %v, want ErrPeerFailed", err)
	}
}

// TestClusterTimeout: a peer that accepts and never speaks trips the
// coordinator's read deadline and surfaces as ErrPeerLost.
func TestClusterTimeout(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			defer conn.Close() // hold the connection open, silently
		}
	}()
	g := testInstance(t, 9, 10, 20, 2)
	start := time.Now()
	_, err = Solve(g, core.DefaultOptions(), Config{Peers: []string{ln.Addr().String()}, Timeout: 300 * time.Millisecond})
	if !errors.Is(err, ErrPeerLost) {
		t.Fatalf("err = %v, want ErrPeerLost", err)
	}
	if d := time.Since(start); d > 5*time.Second {
		t.Fatalf("timeout took %v", d)
	}
}

// waitGoroutinesBack polls until the goroutine count returns to (about) the
// pre-test level, the regression idiom the congest engines use.
func waitGoroutinesBack(t *testing.T, before int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		now := runtime.NumGoroutine()
		if now <= before {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutines leaked: %d before, %d after\n%s", before, now, buf[:n])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestClusterGoroutineRegression extends the goroutine-count regression
// tests to the peer path: successful solves, a mid-round peer loss and a
// peer-side failure must all leave the goroutine count where it started
// once the peers are closed.
func TestClusterGoroutineRegression(t *testing.T) {
	before := runtime.NumGoroutine()
	func() {
		var peers []*Peer
		var addrs []string
		for i := 0; i < 2; i++ {
			ln, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				t.Fatal(err)
			}
			p := NewPeer()
			go p.Serve(ln)
			peers = append(peers, p)
			addrs = append(addrs, ln.Addr().String())
		}
		defer func() {
			for _, p := range peers {
				p.Close()
			}
		}()
		g := testInstance(t, 11, 30, 90, 3)
		if _, err := Solve(g, core.DefaultOptions(), Config{Peers: addrs}); err != nil {
			t.Fatal(err)
		}
		bad := core.DefaultOptions()
		bad.MaxIterations = 1
		if _, err := Solve(g, bad, Config{Peers: addrs}); !errors.Is(err, ErrPeerFailed) {
			t.Fatalf("err = %v, want ErrPeerFailed", err)
		}
		faker, stopFaker := dropAfterBoundary(t)
		if _, err := Solve(g, core.DefaultOptions(), Config{Peers: []string{addrs[0], faker}, Timeout: 5 * time.Second}); !errors.Is(err, ErrPeerLost) {
			t.Fatalf("err = %v, want ErrPeerLost", err)
		}
		stopFaker()
	}()
	waitGoroutinesBack(t, before)
}
