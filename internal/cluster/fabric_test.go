package cluster

import (
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"distcover/internal/core"
	"distcover/internal/telemetry"
)

// wireCounter is a Tracer+CacheTracer that tallies frame bytes by kind and
// instance-cache lookups, for asserting what the fabric actually shipped.
type wireCounter struct {
	mu         sync.Mutex
	sentByKind map[string]int
	recvByKind map[string]int
	hits       int
	misses     int
}

func newWireCounter() *wireCounter {
	return &wireCounter{sentByKind: map[string]int{}, recvByKind: map[string]int{}}
}

func (w *wireCounter) Phase(int, string, time.Duration, time.Duration) {}
func (w *wireCounter) Exchange(string, string, int, time.Duration)     {}
func (w *wireCounter) Protocol(int, int64)                             {}
func (w *wireCounter) Frame(peer, dir, kind string, bytes int) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if dir == telemetry.DirSent {
		w.sentByKind[kind] += bytes
	} else {
		w.recvByKind[kind] += bytes
	}
}
func (w *wireCounter) InstanceCache(hit bool, bytes int) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if hit {
		w.hits++
	} else {
		w.misses++
	}
}

func (w *wireCounter) sent(kind string) int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.sentByKind[kind]
}

// startTracedPeers launches n peers sharing one wireCounter tracer.
func startTracedPeers(t *testing.T, n int, tr telemetry.Tracer, budget int64) ([]string, []*Peer) {
	t.Helper()
	addrs := make([]string, n)
	peers := make([]*Peer, n)
	for i := 0; i < n; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		p := NewPeer()
		p.Tracer = tr
		p.InstanceCacheBudget = budget
		go p.Serve(ln)
		t.Cleanup(func() { p.Close() })
		addrs[i] = ln.Addr().String()
		peers[i] = p
	}
	return addrs, peers
}

// TestFabricRepeatSolveShipsHashOnly: the first solve of an instance pays
// one ftInstance re-sync per peer; the second solve of the same instance
// ships only the hash and still matches the flat engine bit for bit.
func TestFabricRepeatSolveShipsHashOnly(t *testing.T) {
	peerTr := newWireCounter()
	addrs, peers := startTracedPeers(t, 2, peerTr, 0)
	g := testInstance(t, 4242, 200, 600, 3)
	opts := core.DefaultOptions()
	want, err := core.RunFlat(g, opts, 2)
	if err != nil {
		t.Fatal(err)
	}

	coordTr := newWireCounter()
	cfg := Config{Peers: addrs, Tracer: coordTr}
	first, err := Solve(g, opts, cfg)
	if err != nil {
		t.Fatal(err)
	}
	requireResultsEqual(t, "first solve", first, want)
	firstInstBytes := coordTr.sent("instance")
	if firstInstBytes == 0 {
		t.Fatal("first contact shipped no instance re-sync frame")
	}
	if peerTr.misses != 2 || peerTr.hits != 0 {
		t.Fatalf("first contact: %d hits / %d misses, want 0/2", peerTr.hits, peerTr.misses)
	}

	second, err := Solve(g, opts, cfg)
	if err != nil {
		t.Fatal(err)
	}
	requireResultsEqual(t, "second solve", second, want)
	if got := coordTr.sent("instance"); got != firstInstBytes {
		t.Fatalf("second solve re-shipped the instance: %d bytes beyond first contact", got-firstInstBytes)
	}
	if peerTr.hits != 2 {
		t.Fatalf("second solve: %d cache hits, want 2", peerTr.hits)
	}
	for _, p := range peers {
		entries, bytes := p.InstanceCacheStats()
		if entries != 1 || bytes <= 0 {
			t.Fatalf("peer cache holds %d entries / %d bytes, want 1 entry", entries, bytes)
		}
	}
}

// TestFabricInvalidate: after Invalidate the next solve is a miss again,
// and invalidating on a fresh (never-contacted) peer still acks cleanly.
func TestFabricInvalidate(t *testing.T) {
	peerTr := newWireCounter()
	addrs, peers := startTracedPeers(t, 2, peerTr, 0)
	g := testInstance(t, 555, 60, 180, 3)
	opts := core.DefaultOptions()
	cfg := Config{Peers: addrs, Tracer: newWireCounter()}
	if _, err := Solve(g, opts, cfg); err != nil {
		t.Fatal(err)
	}
	hash := g.Hash()
	if err := Invalidate(hash, cfg); err != nil {
		t.Fatal(err)
	}
	for i, p := range peers {
		if entries, _ := p.InstanceCacheStats(); entries != 0 {
			t.Fatalf("peer %d still holds %d entries after invalidate", i, entries)
		}
	}
	// Idempotent: a second invalidation of the now-absent hash still acks.
	if err := Invalidate(hash, cfg); err != nil {
		t.Fatal(err)
	}
	before := peerTr.misses
	if _, err := Solve(g, opts, cfg); err != nil {
		t.Fatal(err)
	}
	if peerTr.misses != before+2 {
		t.Fatalf("post-invalidate solve: %d misses, want %d", peerTr.misses, before+2)
	}
}

// TestFabricBudgetEviction: a cache budget that fits only one instance
// evicts the least recently used entry, and the evicted instance re-syncs
// on its next solve.
func TestFabricBudgetEviction(t *testing.T) {
	g1 := testInstance(t, 1001, 120, 360, 3)
	g2 := testInstance(t, 1002, 120, 360, 3)
	// Budget below the two instances combined but above either alone.
	budget := g1.MemoryBytes() + g2.MemoryBytes()/2
	peerTr := newWireCounter()
	addrs, peers := startTracedPeers(t, 1, peerTr, budget)
	opts := core.DefaultOptions()
	cfg := Config{Peers: addrs}
	if _, err := Solve(g1, opts, cfg); err != nil {
		t.Fatal(err)
	}
	if _, err := Solve(g2, opts, cfg); err != nil {
		t.Fatal(err)
	}
	if entries, bytes := peers[0].InstanceCacheStats(); entries != 1 || bytes > budget {
		t.Fatalf("cache holds %d entries / %d bytes after eviction, want 1 within %d", entries, bytes, budget)
	}
	// g1 was evicted to admit g2: solving g1 again is a miss, g2 a hit.
	misses := peerTr.misses
	if _, err := Solve(g1, opts, cfg); err != nil {
		t.Fatal(err)
	}
	if peerTr.misses != misses+1 {
		t.Fatalf("evicted instance did not re-sync (misses %d, want %d)", peerTr.misses, misses+1)
	}
	hits := peerTr.hits
	if _, err := Solve(g1, opts, cfg); err != nil {
		t.Fatal(err)
	}
	if peerTr.hits != hits+1 {
		t.Fatalf("resident instance missed (hits %d, want %d)", peerTr.hits, hits+1)
	}
}

// TestFabricHashMismatchRejected: a peer must refuse to cache an instance
// whose content does not hash to the setup's key — cache poisoning would
// corrupt every later solve that hits the entry.
func TestFabricHashMismatchRejected(t *testing.T) {
	addrs, peers := startTracedPeers(t, 1, nil, 0)
	conn, err := net.DialTimeout("tcp", addrs[0], time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	d := 2 * time.Second
	if err := writeJSONFrameTimeout(conn, d, ftHello, helloFrame{Magic: protoMagic, Version: protoVersion}); err != nil {
		t.Fatal(err)
	}
	if _, err := expectHello(conn, d); err != nil {
		t.Fatal(err)
	}
	bogus := strings.Repeat("ab", 32)
	if err := writeJSONFrameTimeout(conn, d, ftSetup, setupFrame{
		Hash: bogus, Bounds: []int{0, 3}, Part: 0,
		Options: toSetupOptions(core.DefaultOptions()),
	}); err != nil {
		t.Fatal(err)
	}
	ft, payload, err := readFrameTimeout(conn, d)
	if err != nil || ft != ftHashMiss || string(payload) != bogus {
		t.Fatalf("miss handshake: ft=%d payload=%q err=%v", ft, payload, err)
	}
	if err := writeFrameTimeout(conn, d, ftInstance, []byte(`{"weights":[1,1,1],"edges":[[0,1],[1,2]]}`)); err != nil {
		t.Fatal(err)
	}
	ft, _, err = readFrameTimeout(conn, d)
	if err != nil || ft != ftError {
		t.Fatalf("poisoned instance: ft=%d err=%v, want error frame", ft, err)
	}
	if entries, _ := peers[0].InstanceCacheStats(); entries != 0 {
		t.Fatalf("poisoned instance was cached (%d entries)", entries)
	}
}
