package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"distcover/internal/core"
	"distcover/internal/hypergraph"
	"distcover/internal/telemetry"
)

// This file is the concurrent fan-out/fan-in relay, the default
// coordinator path. One goroutine per partition owns its connection end to
// end — dial (or claim of the shared multiplexed connection), the
// hello/setup handshake, the per-iteration frame relay and the result
// read — while the coordinator goroutine only aggregates: it collects the
// np boundary contributions of an iteration through a channel, encodes the
// combined broadcast once, hands it back to every relay, and does the same
// for the coverage totals. Peer processes that negotiated protocol v3
// share one multiplexed connection for all their partitions; v2 peers get
// one connection per partition exactly as before.
//
// Failure discipline: the first error out of any relay cancels the solve
// context and closes every connection, which unblocks relays parked in
// reads as well as relays parked on aggregation channels — no peer is ever
// waited on behind a dead one, and the error that started the teardown is
// the one returned (ErrPeerLost/ErrPeerFailed semantics unchanged).

// boundaryMsg is one relay's per-iteration boundary contribution (the
// still-encoded payload; the aggregator concatenates payloads, it never
// re-encodes states).
type boundaryMsg struct {
	part      int
	iteration int
	payload   []byte
}

// coverageMsg is one relay's per-iteration owned-coverage contribution.
type coverageMsg struct {
	part      int
	iteration int
	covered   int
}

// resultMsg is one relay's decoded partial result.
type resultMsg struct {
	part    int
	partial *core.PartialResult
}

// peerLink is the shared per-address dial state: the first relay to need
// an address dials and negotiates once. A v3 link carries the shared mux
// every co-located partition channels through; a v2 link hands the
// negotiated connection to exactly one claimant and the remaining
// partitions dial their own.
type peerLink struct {
	addr    string
	once    sync.Once
	conn    net.Conn
	mux     *mux
	ver     int
	err     error
	claimed atomic.Bool
}

// fanout holds one concurrent relay run.
type fanout struct {
	g       *hypergraph.Hypergraph
	opts    core.Options
	carry   []float64
	cfg     Config
	bounds  []int
	np      int
	d       time.Duration
	traceID string
	hash    string
	maxVer  int
	marshal func() ([]byte, error)

	ctx    context.Context
	cancel context.CancelFunc

	links map[string]*peerLink

	connMu  sync.Mutex
	conns   []net.Conn
	closing bool

	wg sync.WaitGroup

	// Relay → aggregator fan-in.
	bCh   chan boundaryMsg
	cCh   chan coverageMsg
	resCh chan resultMsg
	errCh chan error

	// Aggregator → relay fan-out, one single-slot channel per partition.
	// The strict request/response cadence guarantees the slot is free when
	// the aggregator sends, so broadcasting never blocks on a dead relay.
	bOut []chan []byte
	cOut []chan int
}

// runFanOut executes one cluster solve over the concurrent relay.
func runFanOut(g *hypergraph.Hypergraph, opts core.Options, carry []float64, cfg Config, bounds []int, traceID string) (*core.Result, error) {
	np := len(bounds) - 1
	ctx, cancel := context.WithCancel(context.Background())
	fo := &fanout{
		g: g, opts: opts, carry: carry, cfg: cfg, bounds: bounds, np: np,
		d:       cfg.timeout(),
		traceID: traceID,
		hash:    g.Hash(),
		maxVer:  clampMaxProtocol(cfg.MaxProtocol),
		marshal: instanceMarshaler(g),
		ctx:     ctx, cancel: cancel,
		links: make(map[string]*peerLink, len(cfg.Peers)),
		bCh:   make(chan boundaryMsg, np),
		cCh:   make(chan coverageMsg, np),
		resCh: make(chan resultMsg, np),
		errCh: make(chan error, np),
		bOut:  make([]chan []byte, np),
		cOut:  make([]chan int, np),
	}
	for _, addr := range cfg.Peers {
		if _, ok := fo.links[addr]; !ok {
			fo.links[addr] = &peerLink{addr: addr}
		}
	}
	for p := 0; p < np; p++ {
		fo.bOut[p] = make(chan []byte, 1)
		fo.cOut[p] = make(chan int, 1)
	}
	defer fo.shutdown()
	for p := 0; p < np; p++ {
		fo.wg.Add(1)
		go fo.relay(p)
	}
	return fo.aggregate()
}

// shutdown cancels the context, closes every connection and waits for
// every relay (and mux reader) to exit. It runs on every return path, so
// success and failure drain identically — the goroutine regression tests
// hold the fan-out relay to zero leaks.
func (fo *fanout) shutdown() {
	fo.cancel()
	fo.connMu.Lock()
	fo.closing = true
	for _, c := range fo.conns {
		c.Close()
	}
	fo.connMu.Unlock()
	fo.wg.Wait()
}

// track registers a connection for shutdown. A connection dialed after
// shutdown began (a relay racing the teardown) is closed on the spot so
// its relay fails fast instead of handshaking into the void.
func (fo *fanout) track(conn net.Conn) {
	fo.connMu.Lock()
	if fo.closing {
		conn.Close()
	}
	fo.conns = append(fo.conns, conn)
	fo.connMu.Unlock()
}

// relay runs one partition's connection lifecycle, reporting at most one
// error into the fan-in.
func (fo *fanout) relay(p int) {
	defer fo.wg.Done()
	if err := fo.relayPartition(p); err != nil {
		fo.errCh <- err
	}
}

// connect resolves partition p's frameRW: the shared mux channel on a v3
// peer, or a dedicated v2 connection.
func (fo *fanout) connect(p int, addr string) (frameRW, error) {
	link := fo.links[addr]
	link.once.Do(func() {
		conn, ver, err := dialNegotiate(addr, fo.d, fo.cfg.Tracer, fo.maxVer, fo.traceID)
		if err != nil {
			link.err = err
			return
		}
		fo.track(conn)
		link.conn, link.ver = conn, ver
		if ver >= 3 {
			link.mux = newMux(conn, fo.d, fo.cfg.Tracer, addr)
			fo.wg.Add(1)
			go func() {
				defer fo.wg.Done()
				link.mux.readLoop()
			}()
		}
	})
	if link.err != nil {
		return nil, link.err
	}
	if link.ver >= 3 {
		return link.mux.channel(uint16(p)), nil
	}
	// v2 peer: one connection per partition. The negotiated connection
	// serves the first claimant; the rest dial their own, capped at v2 so
	// the extra handshakes cannot negotiate a different version.
	if link.claimed.CompareAndSwap(false, true) {
		return &connRW{conn: link.conn, d: fo.d, tr: fo.cfg.Tracer, peer: addr}, nil
	}
	conn, _, err := dialNegotiate(addr, fo.d, fo.cfg.Tracer, protoVersion, fo.traceID)
	if err != nil {
		return nil, err
	}
	fo.track(conn)
	return &connRW{conn: conn, d: fo.d, tr: fo.cfg.Tracer, peer: addr}, nil
}

// relayPartition is one partition's full conversation with its peer. A nil
// return on a ctx.Done() branch means another relay's failure is already
// tearing the solve down; this relay just leaves quietly.
func (fo *fanout) relayPartition(p int) error {
	addr := fo.cfg.Peers[p%len(fo.cfg.Peers)]
	rw, err := fo.connect(p, addr)
	if err != nil {
		return err
	}
	hit, err := setupPartition(rw, addr, setupFrame{
		Hash:    fo.hash,
		Carry:   fo.carry,
		Options: toSetupOptions(fo.opts),
		Bounds:  fo.bounds,
		Part:    p,
		TraceID: fo.traceID,
	}, fo.marshal)
	if err != nil {
		return err
	}
	if lg := fo.cfg.Logger; lg != nil {
		lg.Debug("cluster: partition dispatched", "trace_id", fo.traceID,
			"peer_addr", addr, "part", p, "hash", fo.hash, "cache_hit", hit,
			"range_lo", fo.bounds[p], "range_hi", fo.bounds[p+1])
	}

	// The relay tracks the uncovered count from the totals it hands back,
	// so it knows — in lockstep with its peer and the aggregator — when
	// the conversation moves on to the result frame.
	tr := fo.cfg.Tracer
	uncovered := fo.g.NumEdges()
	iteration := 0
	var cbuf []byte
	for uncovered > 0 {
		iteration++
		var waitT time.Time
		if tr != nil {
			waitT = time.Now()
		}
		payload, _, err := expectFrame(rw, addr, ftBoundary)
		if err != nil {
			return err
		}
		if tr != nil {
			tr.Exchange(addr, telemetry.ExchangeBoundary, iteration, time.Since(waitT))
		}
		it, fr, err := decodeBoundary(payload)
		if err != nil {
			return protocolErr(addr, err)
		}
		if it != iteration || fr.Part != p {
			return protocolErr(addr, fmt.Errorf("%w: boundary (iter %d part %d) during iter %d part %d",
				ErrBadFrame, it, fr.Part, iteration, p))
		}
		select {
		case fo.bCh <- boundaryMsg{part: p, iteration: iteration, payload: payload}:
		case <-fo.ctx.Done():
			return nil
		}
		var combined []byte
		select {
		case combined = <-fo.bOut[p]:
		case <-fo.ctx.Done():
			return nil
		}
		if err := rw.sendFrame(ftAllB, combined); err != nil {
			return lost(addr, "combined boundary", err)
		}

		if tr != nil {
			waitT = time.Now()
		}
		payload, _, err = expectFrame(rw, addr, ftCoverage)
		if err != nil {
			return err
		}
		if tr != nil {
			tr.Exchange(addr, telemetry.ExchangeCoverage, iteration, time.Since(waitT))
		}
		cit, covered, err := decodeCoverage(payload)
		if err != nil {
			return protocolErr(addr, err)
		}
		if cit != iteration {
			return protocolErr(addr, fmt.Errorf("%w: coverage for iteration %d during %d", ErrBadFrame, cit, iteration))
		}
		select {
		case fo.cCh <- coverageMsg{part: p, iteration: iteration, covered: covered}:
		case <-fo.ctx.Done():
			return nil
		}
		var total int
		select {
		case total = <-fo.cOut[p]:
		case <-fo.ctx.Done():
			return nil
		}
		cbuf = encodeCoverage(cbuf, iteration, total)
		if err := rw.sendFrame(ftAllC, cbuf); err != nil {
			return lost(addr, "combined coverage", err)
		}
		uncovered -= total
	}

	payload, _, err := expectFrame(rw, addr, ftResult)
	if err != nil {
		return err
	}
	var frj resultFrame
	if err := json.Unmarshal(payload, &frj); err != nil {
		return protocolErr(addr, fmt.Errorf("%w: result: %v", ErrBadFrame, err))
	}
	select {
	case fo.resCh <- resultMsg{part: p, partial: frameToPartial(frj)}:
	case <-fo.ctx.Done():
	}
	return nil
}

// aggregate is the coordinator's fan-in loop: collect np contributions,
// combine, hand back, repeat; then collect the partials and assemble. The
// first relay error aborts the round mid-collection — the deferred
// shutdown unblocks everything still in flight.
func (fo *fanout) aggregate() (*core.Result, error) {
	np := fo.np
	uncovered := fo.g.NumEdges()
	iteration := 0
	payloads := make([][]byte, np)
	for uncovered > 0 {
		iteration++
		for i := 0; i < np; i++ {
			select {
			case m := <-fo.bCh:
				if m.iteration != iteration {
					return nil, fmt.Errorf("%w: relay boundary for iteration %d during %d", ErrBadFrame, m.iteration, iteration)
				}
				payloads[m.part] = m.payload
			case err := <-fo.errCh:
				return nil, err
			}
		}
		// A fresh buffer per iteration: every relay holds a reference to
		// the broadcast while writing it out concurrently, so the buffer
		// cannot be recycled the way the sequential relay's is.
		combined := encodeCombinedBoundary(nil, iteration, payloads)
		for p := 0; p < np; p++ {
			fo.bOut[p] <- combined
		}
		total := 0
		for i := 0; i < np; i++ {
			select {
			case m := <-fo.cCh:
				if m.iteration != iteration {
					return nil, fmt.Errorf("%w: relay coverage for iteration %d during %d", ErrBadFrame, m.iteration, iteration)
				}
				total += m.covered
			case err := <-fo.errCh:
				return nil, err
			}
		}
		if total > uncovered {
			return nil, fmt.Errorf("%w: peers covered %d of %d uncovered edges", ErrBadFrame, total, uncovered)
		}
		for p := 0; p < np; p++ {
			fo.cOut[p] <- total
		}
		uncovered -= total
	}

	partials := make([]*core.PartialResult, np)
	for i := 0; i < np; i++ {
		select {
		case m := <-fo.resCh:
			partials[m.part] = m.partial
		case err := <-fo.errCh:
			return nil, err
		}
	}
	res, err := core.AssembleParts(fo.g, fo.opts, partials)
	if err != nil {
		return nil, fmt.Errorf("cluster: assemble: %w", err)
	}
	return res, nil
}
