package cluster

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"

	"distcover/internal/core"
	"distcover/internal/hypergraph"
)

// Wire format. Every frame is length-prefixed:
//
//	u32 big-endian payload length | u8 frame type | payload
//
// Handshake, setup and result frames are JSON (the setup frame carries the
// instance — or, for session updates, the residual delta instance — in the
// exact {"weights":[...],"edges":[[...]]} shape of the library's instance
// and session-delta codec, so the cluster path reuses the session JSON
// codec end to end). The per-iteration frames are a tight binary codec:
// boundary vertex ids are delta-encoded uvarints ascending, and each
// vertex's level and two flags pack into a single uvarint
// (level<<2 | joined<<1 | raise).
//
// FuzzPeerFrame round-trips and corrupts these codecs; decode must never
// panic and never allocate beyond the declared counts for truncated or
// hostile input.

// Frame types.
const (
	ftHello      = 1  // JSON helloFrame, both directions
	ftSetup      = 2  // JSON setupFrame, coordinator -> peer
	ftBoundary   = 3  // binary boundary frame, peer -> coordinator
	ftAllB       = 4  // binary combined boundary frames, coordinator -> peer
	ftCoverage   = 5  // binary coverage frame, peer -> coordinator
	ftAllC       = 6  // binary combined coverage total, coordinator -> peer
	ftResult     = 7  // JSON resultFrame, peer -> coordinator
	ftError      = 8  // JSON errorFrame, peer -> coordinator
	ftHashOK     = 9  // ASCII hash echo: peer holds the instance (or ack), peer -> coordinator
	ftHashMiss   = 10 // ASCII hash echo: peer needs the instance, peer -> coordinator
	ftInstance   = 11 // instance-codec JSON re-sync after a miss, coordinator -> peer
	ftInvalidate = 12 // ASCII hash to drop from the peer cache, coordinator -> peer
	maxFT        = ftInvalidate
)

// Magic and version of the handshake. Version 2 made the setup frame
// content-addressed: it carries the instance hash and the peer answers
// hashok/hashmiss before the solve proceeds (see docs/PROTOCOL.md).
// parseHello requires an exact version match on the baseline `version`
// field, so v1 and v2 processes refuse each other at the handshake
// instead of misparsing setups.
//
// Version 3 multiplexes partitions over one connection: after the hello
// exchange every frame header gains a u16 big-endian channel id (the
// global partition index), so a peer process runs many RunPartition
// goroutines behind a single socket. v3 is negotiated additively: the
// hello keeps `version: 2` on the wire and announces `max_version: 3`;
// the effective version of a connection is the minimum of both sides'
// announced maxima, so a v2-only process (which never sends max_version
// and ignores the unknown field) keeps speaking plain v2 frames.
const (
	protoMagic      = "distcover-cluster"
	protoVersion    = 2
	protoMaxVersion = 3
)

// clampMaxProtocol normalizes a user-facing MaxProtocol knob (0 means
// "newest this build speaks") into [protoVersion, protoMaxVersion].
func clampMaxProtocol(v int) int {
	if v <= 0 || v > protoMaxVersion {
		return protoMaxVersion
	}
	if v < protoVersion {
		return protoVersion
	}
	return v
}

// announcedMax is the highest protocol version a hello claims: its
// baseline version, raised by the additive max_version field when present.
func announcedMax(h helloFrame) int {
	if h.MaxVersion > h.Version {
		return h.MaxVersion
	}
	return h.Version
}

// effectiveVersion negotiates the protocol for a connection: the minimum
// of our own maximum and the remote hello's announced maximum. Both sides
// compute the same value because both see both maxima.
func effectiveVersion(ourMax int, remote helloFrame) int {
	theirs := announcedMax(remote)
	if ourMax < theirs {
		return ourMax
	}
	return theirs
}

// makeHello builds the hello this process sends for a connection capped at
// maxVer. The baseline version stays 2 for wire compatibility; max_version
// is announced only when the cap allows something newer.
func makeHello(maxVer int, traceID string) helloFrame {
	h := helloFrame{Magic: protoMagic, Version: protoVersion, TraceID: traceID}
	if maxVer > protoVersion {
		h.MaxVersion = maxVer
	}
	return h
}

// frameName maps a frame type to the label telemetry and logs use.
func frameName(ft byte) string {
	switch ft {
	case ftHello:
		return "hello"
	case ftSetup:
		return "setup"
	case ftBoundary:
		return "boundary"
	case ftAllB:
		return "allb"
	case ftCoverage:
		return "coverage"
	case ftAllC:
		return "allc"
	case ftResult:
		return "result"
	case ftError:
		return "error"
	case ftHashOK:
		return "hashok"
	case ftHashMiss:
		return "hashmiss"
	case ftInstance:
		return "instance"
	case ftInvalidate:
		return "invalidate"
	}
	return "unknown"
}

// frameWireBytes is the full on-wire size of a v2 frame with the given
// payload length (the 5-byte header plus payload).
func frameWireBytes(payloadLen int) int { return payloadLen + 5 }

// frameWireBytesV3 is the v3 equivalent: the header grows a u16 channel id.
func frameWireBytesV3(payloadLen int) int { return payloadLen + 7 }

// maxChannels bounds the v3 channel id space (the id is a u16).
const maxChannels = 1 << 16

// maxFrameBytes bounds a single frame; a corrupt length prefix must not
// drive an allocation of gigabytes.
const maxFrameBytes = 1 << 28

// Frame decode errors (typed so tests and the fuzz target can assert them).
var (
	ErrFrameTooLarge = errors.New("cluster: frame exceeds size limit")
	ErrBadFrame      = errors.New("cluster: malformed frame")
)

// helloFrame opens a connection in both directions. TraceID correlates
// one cluster solve across coordinator and peer logs; it is additive
// (omitted when empty), so version 1 peers and coordinators interoperate
// regardless of which side sends it. MaxVersion is likewise additive: a
// process that can speak multiplexed v3 frames announces max_version: 3
// while keeping version: 2, and the connection runs at the minimum of
// both sides' announced maxima (see effectiveVersion).
type helloFrame struct {
	Magic      string `json:"magic"`
	Version    int    `json:"version"`
	MaxVersion int    `json:"max_version,omitempty"`
	TraceID    string `json:"trace_id,omitempty"`
}

// setupOptions is the JSON form of the core.Options subset a cluster solve
// distributes (trace/invariant collection stays coordinator-side, exact
// arithmetic is rejected before dialing).
type setupOptions struct {
	Epsilon       float64 `json:"epsilon"`
	FApprox       bool    `json:"f_approx,omitempty"`
	SingleLevel   bool    `json:"single_level,omitempty"`
	LocalAlpha    bool    `json:"local_alpha,omitempty"`
	FixedAlpha    float64 `json:"fixed_alpha,omitempty"`
	Gamma         float64 `json:"gamma,omitempty"`
	MaxIterations int     `json:"max_iterations,omitempty"`
}

func toSetupOptions(o core.Options) setupOptions {
	return setupOptions{
		Epsilon:       o.Epsilon,
		FApprox:       o.FApprox,
		SingleLevel:   o.Variant == core.VariantSingleLevel,
		LocalAlpha:    o.Alpha == core.AlphaLocal,
		FixedAlpha:    fixedAlphaOf(o),
		Gamma:         o.Gamma,
		MaxIterations: o.MaxIterations,
	}
}

func fixedAlphaOf(o core.Options) float64 {
	if o.Alpha == core.AlphaFixed {
		return o.FixedAlpha
	}
	return 0
}

func (s setupOptions) coreOptions() core.Options {
	o := core.DefaultOptions()
	o.Epsilon = s.Epsilon
	o.FApprox = s.FApprox
	if s.SingleLevel {
		o.Variant = core.VariantSingleLevel
	}
	switch {
	case s.LocalAlpha:
		o.Alpha = core.AlphaLocal
	case s.FixedAlpha != 0:
		o.Alpha = core.AlphaFixed
		o.FixedAlpha = s.FixedAlpha
	}
	if s.Gamma != 0 {
		o.Gamma = s.Gamma
	}
	o.MaxIterations = s.MaxIterations
	return o
}

// setupFrame ships one partition's share of a solve. Since protocol v2 the
// instance itself does not ride along: the frame carries the canonical
// content hash (hypergraph.Hash) of the instance being solved — the full
// instance for solves, the residual delta instance for session updates —
// plus the carried dual loads for warm starts, the partition plan and this
// peer's index. The peer answers ftHashOK when its content-addressed cache
// holds the instance, or ftHashMiss to request an ftInstance re-sync frame
// (the instance-codec JSON, sent once per missing peer).
type setupFrame struct {
	Hash    string       `json:"hash"`
	Carry   []float64    `json:"carry,omitempty"`
	Options setupOptions `json:"options"`
	Bounds  []int        `json:"bounds"`
	Part    int          `json:"part"`
	// TraceID of the solve this setup belongs to (additive, see
	// helloFrame).
	TraceID string `json:"trace_id,omitempty"`
}

// resultFrame is a peer's PartialResult in JSON (floats round-trip exactly
// through encoding/json's shortest-form encoding).
type resultFrame struct {
	Part        int       `json:"part"`
	Iterations  int       `json:"iterations"`
	MaxLevel    int       `json:"max_level"`
	Cover       []int32   `json:"cover,omitempty"`
	CoverWeight int64     `json:"cover_weight"`
	DualEdges   []int32   `json:"dual_edges,omitempty"`
	DualValues  []float64 `json:"dual_values,omitempty"`
	Z           int       `json:"z"`
	Alpha       float64   `json:"alpha"`
	Epsilon     float64   `json:"epsilon"`
}

// errorFrame reports a peer-side failure to the coordinator.
type errorFrame struct {
	Message string `json:"message"`
}

// writeFrame emits one length-prefixed frame.
func writeFrame(w io.Writer, ft byte, payload []byte) error {
	if len(payload) > maxFrameBytes {
		return fmt.Errorf("%w: %d bytes", ErrFrameTooLarge, len(payload))
	}
	var hdr [5]byte
	binary.BigEndian.PutUint32(hdr[:4], uint32(len(payload)))
	hdr[4] = ft
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// readFrame reads one frame, enforcing the size limit before allocating.
func readFrame(r io.Reader) (byte, []byte, error) {
	var hdr [5]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, err
	}
	size := binary.BigEndian.Uint32(hdr[:4])
	if size > maxFrameBytes {
		return 0, nil, fmt.Errorf("%w: %d bytes", ErrFrameTooLarge, size)
	}
	ft := hdr[4]
	if ft == 0 || ft > maxFT {
		return 0, nil, fmt.Errorf("%w: unknown type %d", ErrBadFrame, ft)
	}
	payload := make([]byte, size)
	if _, err := io.ReadFull(r, payload); err != nil {
		return 0, nil, err
	}
	return ft, payload, nil
}

// writeJSONFrame marshals v and emits it as one frame of type ft.
func writeJSONFrame(w io.Writer, ft byte, v any) error {
	payload, err := json.Marshal(v)
	if err != nil {
		return err
	}
	return writeFrame(w, ft, payload)
}

// writeFrameV3 emits one multiplexed frame:
//
//	u32 big-endian payload length | u8 frame type | u16 big-endian channel | payload
//
// The channel id is the global partition index of the solve the frame
// belongs to (channel 0 also carries invalidations, which are not tied to
// a partition).
func writeFrameV3(w io.Writer, ch uint16, ft byte, payload []byte) error {
	if len(payload) > maxFrameBytes {
		return fmt.Errorf("%w: %d bytes", ErrFrameTooLarge, len(payload))
	}
	var hdr [7]byte
	binary.BigEndian.PutUint32(hdr[:4], uint32(len(payload)))
	hdr[4] = ft
	binary.BigEndian.PutUint16(hdr[5:7], ch)
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// readFrameV3 reads one multiplexed frame, enforcing the size limit
// before allocating.
func readFrameV3(r io.Reader) (ch uint16, ft byte, payload []byte, err error) {
	var hdr [7]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, 0, nil, err
	}
	size := binary.BigEndian.Uint32(hdr[:4])
	if size > maxFrameBytes {
		return 0, 0, nil, fmt.Errorf("%w: %d bytes", ErrFrameTooLarge, size)
	}
	ft = hdr[4]
	if ft == 0 || ft > maxFT {
		return 0, 0, nil, fmt.Errorf("%w: unknown type %d", ErrBadFrame, ft)
	}
	ch = binary.BigEndian.Uint16(hdr[5:7])
	payload = make([]byte, size)
	if _, err := io.ReadFull(r, payload); err != nil {
		return 0, 0, nil, err
	}
	return ch, ft, payload, nil
}

// encodeBoundary packs one partition's per-iteration boundary broadcast:
//
//	uvarint iteration | uvarint part | uvarint count |
//	count × (uvarint vertex-id delta | uvarint level<<2|joined<<1|raise)
//
// Vertex ids must be ascending (the partition runner emits them that way),
// which makes the id stream delta-encodable.
func encodeBoundary(buf []byte, iteration int, fr core.BoundaryFrame) []byte {
	buf = binary.AppendUvarint(buf[:0], uint64(iteration))
	buf = binary.AppendUvarint(buf, uint64(fr.Part))
	buf = binary.AppendUvarint(buf, uint64(len(fr.States)))
	prev := int32(0)
	for _, s := range fr.States {
		buf = binary.AppendUvarint(buf, uint64(s.V-prev))
		prev = s.V
		packed := uint64(s.Level) << 2
		if s.Joined {
			packed |= 2
		}
		if s.Raise {
			packed |= 1
		}
		buf = binary.AppendUvarint(buf, packed)
	}
	return buf
}

// decodeBoundary unpacks encodeBoundary's format. It caps the declared
// count against the remaining payload size so corrupt counts cannot force
// huge allocations.
func decodeBoundary(payload []byte) (iteration int, fr core.BoundaryFrame, err error) {
	r := uvarintReader{buf: payload}
	it := r.next()
	part := r.next()
	count := r.next()
	if r.err != nil {
		return 0, fr, fmt.Errorf("%w: boundary header", ErrBadFrame)
	}
	if it > math.MaxInt32 || part > math.MaxInt32 {
		return 0, fr, fmt.Errorf("%w: boundary header out of range", ErrBadFrame)
	}
	// Each state needs at least two payload bytes.
	if count > uint64(len(r.buf)-r.off)/2+1 {
		return 0, fr, fmt.Errorf("%w: boundary count %d exceeds payload", ErrBadFrame, count)
	}
	fr.Part = int(part)
	if count > 0 {
		fr.States = make([]core.BoundaryState, 0, count)
	}
	v := int64(0)
	for i := uint64(0); i < count; i++ {
		dv := r.next()
		packed := r.next()
		if r.err != nil {
			return 0, fr, fmt.Errorf("%w: boundary state %d", ErrBadFrame, i)
		}
		v += int64(dv)
		level := packed >> 2
		if v > math.MaxInt32 || level > math.MaxInt32 {
			return 0, fr, fmt.Errorf("%w: boundary state %d out of range", ErrBadFrame, i)
		}
		fr.States = append(fr.States, core.BoundaryState{
			V:      int32(v),
			Level:  int32(level),
			Joined: packed&2 != 0,
			Raise:  packed&1 != 0,
		})
	}
	if r.off != len(r.buf) {
		return 0, fr, fmt.Errorf("%w: %d trailing boundary bytes", ErrBadFrame, len(r.buf)-r.off)
	}
	return int(it), fr, nil
}

// encodeCombinedBoundary concatenates every partition's boundary payload:
//
//	uvarint iteration | uvarint nparts | nparts × (uvarint len | payload)
func encodeCombinedBoundary(buf []byte, iteration int, payloads [][]byte) []byte {
	buf = binary.AppendUvarint(buf[:0], uint64(iteration))
	buf = binary.AppendUvarint(buf, uint64(len(payloads)))
	for _, p := range payloads {
		buf = binary.AppendUvarint(buf, uint64(len(p)))
		buf = append(buf, p...)
	}
	return buf
}

// decodeCombinedBoundary unpacks encodeCombinedBoundary and decodes each
// sub-frame.
func decodeCombinedBoundary(payload []byte) (iteration int, frames []core.BoundaryFrame, err error) {
	r := uvarintReader{buf: payload}
	it := r.next()
	nparts := r.next()
	if r.err != nil || it > math.MaxInt32 {
		return 0, nil, fmt.Errorf("%w: combined boundary header", ErrBadFrame)
	}
	if nparts > uint64(len(r.buf)-r.off)+1 {
		return 0, nil, fmt.Errorf("%w: combined boundary count %d", ErrBadFrame, nparts)
	}
	frames = make([]core.BoundaryFrame, 0, nparts)
	for i := uint64(0); i < nparts; i++ {
		size := r.next()
		if r.err != nil || size > uint64(len(r.buf)-r.off) {
			return 0, nil, fmt.Errorf("%w: combined boundary part %d", ErrBadFrame, i)
		}
		sub := r.buf[r.off : r.off+int(size)]
		r.off += int(size)
		subIt, fr, err := decodeBoundary(sub)
		if err != nil {
			return 0, nil, err
		}
		if subIt != int(it) {
			return 0, nil, fmt.Errorf("%w: part %d iteration %d inside combined %d", ErrBadFrame, i, subIt, it)
		}
		frames = append(frames, fr)
	}
	if r.off != len(r.buf) {
		return 0, nil, fmt.Errorf("%w: trailing combined boundary bytes", ErrBadFrame)
	}
	return int(it), frames, nil
}

// encodeCoverage packs a peer's per-iteration owned-coverage count; the
// same encoding carries the coordinator's combined total back.
func encodeCoverage(buf []byte, iteration, covered int) []byte {
	buf = binary.AppendUvarint(buf[:0], uint64(iteration))
	buf = binary.AppendUvarint(buf, uint64(covered))
	return buf
}

// decodeCoverage unpacks encodeCoverage.
func decodeCoverage(payload []byte) (iteration, covered int, err error) {
	r := uvarintReader{buf: payload}
	it := r.next()
	cov := r.next()
	if r.err != nil || r.off != len(r.buf) || it > math.MaxInt32 || cov > math.MaxInt32 {
		return 0, 0, fmt.Errorf("%w: coverage frame", ErrBadFrame)
	}
	return int(it), int(cov), nil
}

// uvarintReader sequences binary.Uvarint reads with sticky errors.
type uvarintReader struct {
	buf []byte
	off int
	err error
}

func (r *uvarintReader) next() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.buf[r.off:])
	if n <= 0 {
		r.err = ErrBadFrame
		return 0
	}
	r.off += n
	return v
}

// EncodeBoundaryFrame exposes the per-iteration boundary codec (appending
// into buf[:0], which may be nil). It exists for the benchmark harness's
// allocation gate and for alternative peer implementations; the solver path
// uses the unexported form directly.
func EncodeBoundaryFrame(buf []byte, iteration int, fr core.BoundaryFrame) []byte {
	return encodeBoundary(buf, iteration, fr)
}

// DecodeBoundaryFrame is the inverse of EncodeBoundaryFrame.
func DecodeBoundaryFrame(payload []byte) (iteration int, fr core.BoundaryFrame, err error) {
	return decodeBoundary(payload)
}

// partialToFrame converts a PartialResult for the wire.
func partialToFrame(p *core.PartialResult) resultFrame {
	fr := resultFrame{
		Part:        p.Part,
		Iterations:  p.Iterations,
		MaxLevel:    p.MaxLevel,
		CoverWeight: p.CoverWeight,
		DualEdges:   p.DualEdges,
		DualValues:  p.DualValues,
		Z:           p.Z,
		Alpha:       p.Alpha,
		Epsilon:     p.Epsilon,
	}
	for _, v := range p.Cover {
		fr.Cover = append(fr.Cover, int32(v))
	}
	return fr
}

// frameToPartial converts a received resultFrame back.
func frameToPartial(fr resultFrame) *core.PartialResult {
	p := &core.PartialResult{
		Part:        fr.Part,
		Iterations:  fr.Iterations,
		MaxLevel:    fr.MaxLevel,
		CoverWeight: fr.CoverWeight,
		DualEdges:   fr.DualEdges,
		DualValues:  fr.DualValues,
		Z:           fr.Z,
		Alpha:       fr.Alpha,
		Epsilon:     fr.Epsilon,
	}
	for _, v := range fr.Cover {
		p.Cover = append(p.Cover, hypergraph.VertexID(v))
	}
	return p
}
