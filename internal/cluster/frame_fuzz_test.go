package cluster

import (
	"bytes"
	"reflect"
	"testing"

	"distcover/internal/core"
)

// FuzzPeerFrame hammers the peer protocol's binary codecs: arbitrary bytes
// must decode without panicking or over-allocating, and everything that
// decodes must re-encode to the same bytes (the codecs are canonical).
// Seeds cover the frame layer, the boundary codec and the combined relay
// codec; the fuzzer mutates from there.
func FuzzPeerFrame(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 0, ftBoundary})
	f.Add(encodeBoundary(nil, 3, core.BoundaryFrame{
		Part: 1,
		States: []core.BoundaryState{
			{V: 2, Level: 5, Joined: true},
			{V: 9, Level: 0, Raise: true},
		},
	}))
	f.Add(encodeCoverage(nil, 7, 41))
	f.Add(encodeCombinedBoundary(nil, 2, [][]byte{
		encodeBoundary(nil, 2, core.BoundaryFrame{Part: 0, States: []core.BoundaryState{{V: 1, Level: 1}}}),
		encodeBoundary(nil, 2, core.BoundaryFrame{Part: 1}),
	}))
	var framed bytes.Buffer
	if err := writeFrame(&framed, ftResult, []byte(`{"part":0}`)); err != nil {
		f.Fatal(err)
	}
	f.Add(framed.Bytes())

	f.Fuzz(func(t *testing.T, data []byte) {
		// Frame layer: must never panic, and on success the re-framed bytes
		// must round-trip.
		if ft, payload, err := readFrame(bytes.NewReader(data)); err == nil {
			var buf bytes.Buffer
			if err := writeFrame(&buf, ft, payload); err != nil {
				t.Fatalf("re-frame failed: %v", err)
			}
			ft2, payload2, err := readFrame(&buf)
			if err != nil || ft2 != ft || !bytes.Equal(payload2, payload) {
				t.Fatalf("frame round-trip diverged: %v", err)
			}
		}

		// Boundary codec: whatever decodes must re-encode to a payload that
		// decodes to the same value (binary.Uvarint tolerates non-minimal
		// varints, so hostile input can be semantically valid without being
		// byte-canonical; our own encoder always emits the minimal form).
		if it, fr, err := decodeBoundary(data); err == nil {
			re := encodeBoundary(nil, it, fr)
			it2, fr2, err := decodeBoundary(re)
			if err != nil || it2 != it || !reflect.DeepEqual(fr2, fr) {
				t.Fatalf("boundary re-encode round-trip diverged: %v", err)
			}
		}

		// Combined codec: same fixpoint property across the relay layer.
		if it, frames, err := decodeCombinedBoundary(data); err == nil {
			payloads := make([][]byte, len(frames))
			for i, fr := range frames {
				payloads[i] = encodeBoundary(nil, it, fr)
			}
			re := encodeCombinedBoundary(nil, it, payloads)
			it2, frames2, err := decodeCombinedBoundary(re)
			if err != nil || it2 != it || !reflect.DeepEqual(frames2, frames) {
				t.Fatalf("combined re-encode round-trip diverged: %v", err)
			}
		}

		// Coverage codec.
		if it, cov, err := decodeCoverage(data); err == nil {
			re := encodeCoverage(nil, it, cov)
			it2, cov2, err := decodeCoverage(re)
			if err != nil || it2 != it || cov2 != cov {
				t.Fatalf("coverage re-encode round-trip diverged: %v", err)
			}
		}
	})
}
