package cluster

import (
	"bytes"
	"errors"
	"io"
	"reflect"
	"testing"

	"distcover/internal/core"
)

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	payload := []byte("hello cluster")
	if err := writeFrame(&buf, ftSetup, payload); err != nil {
		t.Fatal(err)
	}
	ft, got, err := readFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if ft != ftSetup || !bytes.Equal(got, payload) {
		t.Fatalf("round trip: type %d payload %q", ft, got)
	}
}

func TestFrameRejectsOversizeAndUnknown(t *testing.T) {
	// Oversize declared length must fail before allocating.
	hdr := []byte{0xff, 0xff, 0xff, 0xff, ftSetup}
	if _, _, err := readFrame(bytes.NewReader(hdr)); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("oversize: err = %v, want ErrFrameTooLarge", err)
	}
	// Unknown type byte.
	bad := []byte{0, 0, 0, 0, 99}
	if _, _, err := readFrame(bytes.NewReader(bad)); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("unknown type: err = %v, want ErrBadFrame", err)
	}
	// Truncated payload.
	var buf bytes.Buffer
	if err := writeFrame(&buf, ftBoundary, []byte("abcdef")); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()-3]
	if _, _, err := readFrame(bytes.NewReader(trunc)); !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("truncated: err = %v, want ErrUnexpectedEOF", err)
	}
}

func TestBoundaryCodecRoundTrip(t *testing.T) {
	fr := core.BoundaryFrame{
		Part: 3,
		States: []core.BoundaryState{
			{V: 0, Level: 0, Joined: false, Raise: true},
			{V: 7, Level: 12, Joined: true, Raise: false},
			{V: 8, Level: 1, Joined: true, Raise: true},
			{V: 1 << 20, Level: 30, Joined: false, Raise: false},
		},
	}
	payload := encodeBoundary(nil, 42, fr)
	it, got, err := decodeBoundary(payload)
	if err != nil {
		t.Fatal(err)
	}
	if it != 42 || !reflect.DeepEqual(got, fr) {
		t.Fatalf("round trip: iter %d frame %+v, want 42 %+v", it, got, fr)
	}
	// Empty frame.
	payload = encodeBoundary(payload, 1, core.BoundaryFrame{Part: 0})
	if _, got, err = decodeBoundary(payload); err != nil || len(got.States) != 0 {
		t.Fatalf("empty frame: %v %+v", err, got)
	}
}

func TestCombinedBoundaryRoundTrip(t *testing.T) {
	frames := []core.BoundaryFrame{
		{Part: 0, States: []core.BoundaryState{{V: 2, Level: 3, Raise: true}}},
		{Part: 1},
		{Part: 2, States: []core.BoundaryState{{V: 5, Level: 0, Joined: true}, {V: 6, Level: 9}}},
	}
	var payloads [][]byte
	for _, fr := range frames {
		payloads = append(payloads, encodeBoundary(nil, 7, fr))
	}
	combined := encodeCombinedBoundary(nil, 7, payloads)
	it, got, err := decodeCombinedBoundary(combined)
	if err != nil {
		t.Fatal(err)
	}
	if it != 7 || !reflect.DeepEqual(got, frames) {
		t.Fatalf("round trip: iter %d frames %+v", it, got)
	}
	// An inner frame from another iteration is a protocol violation.
	payloads[1] = encodeBoundary(nil, 8, frames[1])
	combined = encodeCombinedBoundary(nil, 7, payloads)
	if _, _, err := decodeCombinedBoundary(combined); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("iteration mismatch: err = %v, want ErrBadFrame", err)
	}
}

func TestCoverageCodecRoundTrip(t *testing.T) {
	payload := encodeCoverage(nil, 9, 137)
	it, cov, err := decodeCoverage(payload)
	if err != nil || it != 9 || cov != 137 {
		t.Fatalf("round trip: %d %d %v", it, cov, err)
	}
	if _, _, err := decodeCoverage(payload[:1]); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("truncated: err = %v, want ErrBadFrame", err)
	}
	if _, _, err := decodeCoverage(append(payload, 0)); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("trailing bytes: err = %v, want ErrBadFrame", err)
	}
}

func TestBoundaryDecodeCorruption(t *testing.T) {
	fr := core.BoundaryFrame{Part: 1, States: []core.BoundaryState{{V: 3, Level: 2}, {V: 9, Level: 4, Joined: true}}}
	payload := encodeBoundary(nil, 5, fr)
	// Truncations at every length must fail cleanly (or decode to a valid
	// prefix-free frame — they cannot, because the count is up front).
	for cut := 0; cut < len(payload); cut++ {
		if _, _, err := decodeBoundary(payload[:cut]); err == nil {
			t.Fatalf("truncation at %d decoded successfully", cut)
		}
	}
	// A count far beyond the payload must be rejected before allocation.
	huge := encodeCoverage(nil, 1, 0) // iteration 1, then reuse as prefix
	huge = append(huge[:1], 0xff, 0xff, 0xff, 0xff, 0x0f)
	if _, _, err := decodeBoundary(huge); err == nil {
		t.Fatal("hostile count decoded successfully")
	}
}
