package cluster

import (
	"container/list"
	"sync"

	"distcover/internal/hypergraph"
)

// DefaultInstanceCacheBudget bounds the decoded bytes a peer's instance
// cache retains when Peer.InstanceCacheBudget is zero.
const DefaultInstanceCacheBudget = 256 << 20 // 256 MiB

// instanceCache is the peer side of the content-addressed instance fabric:
// a byte-budgeted LRU of decoded base instances keyed by their canonical
// content hash. Entries are stored decoded (the CSR hypergraph, not the
// JSON) so a cache hit skips both the transfer and the re-parse. Cached
// graphs are shared read-only across concurrent connections — nothing on
// the solver read path mutates a Hypergraph (only Extend does, and peers
// never call it), which the race-enabled fabric tests exercise.
//
// Content-addressed entries are immutable: the hash is the value, so there
// is no coherence problem and invalidation (ftInvalidate) is purely
// capacity and teardown management, not correctness.
type instanceCache struct {
	mu     sync.Mutex
	budget int64
	bytes  int64
	order  *list.List // front = most recently used; element values are *cacheInstance
	byHash map[string]*list.Element
}

type cacheInstance struct {
	hash  string
	g     *hypergraph.Hypergraph
	bytes int64
}

func newInstanceCache(budget int64) *instanceCache {
	if budget <= 0 {
		budget = DefaultInstanceCacheBudget
	}
	return &instanceCache{
		budget: budget,
		order:  list.New(),
		byHash: make(map[string]*list.Element),
	}
}

// get returns the cached instance for hash, refreshing its LRU position.
func (c *instanceCache) get(hash string) (*hypergraph.Hypergraph, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.byHash[hash]
	if !ok {
		return nil, false
	}
	c.order.MoveToFront(el)
	return el.Value.(*cacheInstance).g, true
}

// put inserts g under hash and evicts from the LRU tail past the byte
// budget. An instance larger than the whole budget is still admitted (it
// is the working set), alone.
func (c *instanceCache) put(hash string, g *hypergraph.Hypergraph) {
	size := g.MemoryBytes()
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.byHash[hash]; ok {
		c.order.MoveToFront(el)
		return
	}
	c.byHash[hash] = c.order.PushFront(&cacheInstance{hash: hash, g: g, bytes: size})
	c.bytes += size
	for c.bytes > c.budget && c.order.Len() > 1 {
		el := c.order.Back()
		ent := el.Value.(*cacheInstance)
		c.order.Remove(el)
		delete(c.byHash, ent.hash)
		c.bytes -= ent.bytes
	}
}

// invalidate drops the entry for hash, reporting whether it was present.
func (c *instanceCache) invalidate(hash string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.byHash[hash]
	if !ok {
		return false
	}
	ent := el.Value.(*cacheInstance)
	c.order.Remove(el)
	delete(c.byHash, hash)
	c.bytes -= ent.bytes
	return true
}

// stats returns the entry count and retained decoded bytes.
func (c *instanceCache) stats() (entries int, bytes int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len(), c.bytes
}
