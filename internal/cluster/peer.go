package cluster

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net"
	"sync"
	"syscall"
	"time"

	"distcover/internal/core"
	"distcover/internal/hypergraph"
	"distcover/internal/telemetry"
)

// Peer serves one partition's share of cluster solves. A coverd process in
// peer mode runs one Peer next to its HTTP listener; each incoming
// connection carries exactly one solve (hello, setup, the per-iteration
// boundary/coverage exchange, result) and peers keep no state between
// connections — a restarted peer serves the next solve as if nothing
// happened, which is what makes coordinator-side retry after ErrPeerLost
// sound.
type Peer struct {
	// Timeout bounds every read on a peer connection (0 = DefaultTimeout).
	// It is the self-defense against a wedged coordinator: a peer parked in
	// an exchange read frees its goroutine when the deadline fires.
	Timeout time.Duration
	// Logger, when set, receives structured per-connection diagnostics and
	// partition-solve progress lines (nil = silent). Solve lines carry the
	// trace_id propagated in the hello/setup frames and the peer_addr this
	// peer serves on, so one cluster solve is correlated across the
	// coordinator's and every peer's logs.
	Logger *slog.Logger
	// Tracer, when set, receives the partition runner's phase timings and
	// this peer's frame accounting for every connection served (coverd
	// wires its Prometheus adapter here). If it additionally implements
	// telemetry.CacheTracer it receives one instance-cache hit/miss hook
	// per setup handshake. nil = disabled, zero overhead.
	Tracer telemetry.Tracer
	// InstanceCacheBudget bounds the decoded bytes the content-addressed
	// instance cache retains (0 = DefaultInstanceCacheBudget). Must be set
	// before the first connection is served.
	InstanceCacheBudget int64
	// MaxProtocol caps the protocol version this peer announces in its
	// hello (0 = the newest this build speaks). Setting 2 disables
	// multiplexing: every connection carries one partition, as before v3.
	MaxProtocol int

	mu     sync.Mutex
	ln     net.Listener
	conns  map[net.Conn]struct{}
	wg     sync.WaitGroup
	closed bool

	cacheOnce sync.Once
	cache     *instanceCache
}

// NewPeer returns a Peer ready to Serve.
func NewPeer() *Peer {
	return &Peer{conns: make(map[net.Conn]struct{})}
}

// instances returns the peer's content-addressed instance cache, created
// lazily so InstanceCacheBudget can be set after NewPeer.
func (p *Peer) instances() *instanceCache {
	p.cacheOnce.Do(func() { p.cache = newInstanceCache(p.InstanceCacheBudget) })
	return p.cache
}

// InstanceCacheStats reports the current entry count and retained decoded
// bytes of the peer's instance cache (both zero before the first setup).
func (p *Peer) InstanceCacheStats() (entries int, bytes int64) {
	return p.instances().stats()
}

// ErrPeerClosed is returned by Serve after Close.
var ErrPeerClosed = errors.New("cluster: peer closed")

// Serve accepts and handles connections on ln until Close. It always
// returns a non-nil error, ErrPeerClosed after a clean shutdown.
func (p *Peer) Serve(ln net.Listener) error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		ln.Close()
		return ErrPeerClosed
	}
	p.ln = ln
	p.mu.Unlock()
	// Transient accept failures (fd exhaustion, aborted handshakes) retry
	// with the net/http backoff ladder instead of taking the listener down.
	var backoff time.Duration
	for {
		conn, err := ln.Accept()
		if err != nil {
			p.mu.Lock()
			closed := p.closed
			p.mu.Unlock()
			if closed {
				return ErrPeerClosed
			}
			if isTemporaryAcceptErr(err) {
				if backoff == 0 {
					backoff = 5 * time.Millisecond
				} else if backoff *= 2; backoff > time.Second {
					backoff = time.Second
				}
				p.logWarn("cluster peer: accept retry", "err", err, "backoff", backoff)
				time.Sleep(backoff)
				continue
			}
			return err
		}
		backoff = 0
		p.mu.Lock()
		if p.closed {
			p.mu.Unlock()
			conn.Close()
			return ErrPeerClosed
		}
		p.conns[conn] = struct{}{}
		p.wg.Add(1)
		p.mu.Unlock()
		go func() {
			defer p.wg.Done()
			defer func() {
				p.mu.Lock()
				delete(p.conns, conn)
				p.mu.Unlock()
				conn.Close()
			}()
			if err := p.handle(conn); err != nil {
				p.logWarn("cluster peer: connection failed",
					"remote", conn.RemoteAddr().String(), "err", err)
			}
		}()
	}
}

// Close stops the listener, closes every active connection (unblocking
// handlers parked in reads) and waits for the handlers to drain.
func (p *Peer) Close() error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil
	}
	p.closed = true
	ln := p.ln
	for conn := range p.conns {
		conn.Close()
	}
	p.mu.Unlock()
	var err error
	if ln != nil {
		err = ln.Close()
	}
	p.wg.Wait()
	return err
}

func (p *Peer) logInfo(msg string, args ...any) {
	if p.Logger != nil {
		p.Logger.Info(msg, args...)
	}
}

func (p *Peer) logWarn(msg string, args ...any) {
	if p.Logger != nil {
		p.Logger.Warn(msg, args...)
	}
}

func (p *Peer) timeout() time.Duration {
	if p.Timeout > 0 {
		return p.Timeout
	}
	return DefaultTimeout
}

// handle runs one connection. The hello exchange negotiates the protocol
// version; a v2 connection carries exactly one stream (one partition solve
// or one invalidation), a v3 connection is demultiplexed into one stream
// per channel so co-located partitions share the socket. Solver-level
// failures are reported to the coordinator as an error frame; transport
// failures just drop the connection (the coordinator sees them as
// ErrPeerLost).
func (p *Peer) handle(conn net.Conn) error {
	d := p.timeout()
	hello, err := expectHello(conn, d)
	if err != nil {
		return err
	}
	// Echo the coordinator's trace id in the reply so either side's log
	// carries it from the handshake on; announce our own protocol maximum
	// for the version negotiation.
	myMax := clampMaxProtocol(p.MaxProtocol)
	reply := makeHello(myMax, hello.TraceID)
	if err := writeJSONFrameTimeout(conn, d, ftHello, reply); err != nil {
		return err
	}
	if effectiveVersion(myMax, hello) >= 3 {
		return p.serveMux(conn, hello)
	}
	rw := &connRW{conn: conn, d: d, tr: p.Tracer}
	ft, payload, err := rw.recvFrame()
	if err != nil {
		return err
	}
	return p.handleStream(rw, conn.LocalAddr().String(), hello, ft, payload)
}

// serveMux demultiplexes one v3 connection: the read loop runs on this
// goroutine and spawns one handleStream goroutine per incoming channel
// (its first frame must open a setup or invalidate conversation). The
// connection is done when the read loop exits — coordinator closed it, a
// deadline fired, or a protocol violation killed it — at which point every
// stream's subscription is closed, the handlers drain, and serveMux
// returns. A clean end-of-connection is not an error.
func (p *Peer) serveMux(conn net.Conn, hello helloFrame) error {
	m := newMux(conn, p.timeout(), p.Tracer, "")
	peerAddr := conn.LocalAddr().String()
	var wg sync.WaitGroup
	m.onNew = func(ch uint16) chan muxMsg {
		sub := make(chan muxMsg, muxSubDepth)
		rw := &muxChanRW{m: m, ch: ch}
		wg.Add(1)
		go func() {
			defer wg.Done()
			ft, payload, err := rw.recvFrame()
			if err != nil {
				return // connection already torn down
			}
			if err := p.handleStream(rw, peerAddr, hello, ft, payload); err != nil {
				p.logWarn("cluster peer: channel failed",
					"remote", conn.RemoteAddr().String(), "channel", ch, "err", err)
			}
		}()
		return sub
	}
	m.readLoop()
	wg.Wait()
	if err := m.err(); err != nil && !isTransportErr(err) && !errors.Is(err, io.EOF) {
		return err
	}
	return nil
}

// handleStream runs one stream's conversation: an invalidation round trip,
// or the content-addressed setup (hash lookup, hashok/hashmiss answer,
// ftInstance re-sync on a miss) followed by the partitioned solve with the
// stream as the Exchanger and the result frame.
func (p *Peer) handleStream(rw frameRW, peerAddr string, hello helloFrame, ft byte, payload []byte) error {
	if ft == ftInvalidate {
		hash := string(payload)
		dropped := p.instances().invalidate(hash)
		p.logInfo("cluster peer: instance invalidated", "trace_id", hello.TraceID,
			"peer_addr", peerAddr, "hash", hash, "dropped", dropped)
		return rw.sendFrame(ftHashOK, []byte(hash))
	}
	if ft != ftSetup {
		return fmt.Errorf("%w: expected setup, got type %d", ErrBadFrame, ft)
	}
	var setup setupFrame
	if err := json.Unmarshal(payload, &setup); err != nil {
		return fmt.Errorf("%w: setup: %v", ErrBadFrame, err)
	}
	traceID := setup.TraceID
	if traceID == "" {
		traceID = hello.TraceID
	}
	g, hit, err := p.resolveInstance(rw, setup.Hash)
	if err != nil {
		return err
	}
	start := time.Now()
	p.logInfo("cluster peer: partition start", "trace_id", traceID,
		"peer_addr", peerAddr, "part", setup.Part, "hash", setup.Hash, "cache_hit", hit,
		"vertices", g.NumVertices(), "edges", g.NumEdges())
	opts := setup.Options.coreOptions()
	if p.Tracer != nil {
		opts.Tracer = p.Tracer
	}
	ex := &rwExchanger{rw: rw}
	partial, err := core.RunPartition(g, opts, setup.Carry, setup.Bounds, setup.Part, ex)
	if err != nil {
		p.logWarn("cluster peer: partition failed", "trace_id", traceID,
			"peer_addr", peerAddr, "part", setup.Part,
			"elapsed", time.Since(start), "err", err)
		if isTransportErr(err) {
			return err
		}
		return sendError(rw, err)
	}
	p.logInfo("cluster peer: partition done", "trace_id", traceID,
		"peer_addr", peerAddr, "part", setup.Part,
		"iterations", partial.Iterations, "elapsed", time.Since(start))
	return sendJSONFrame(rw, ftResult, partialToFrame(partial))
}

// resolveInstance turns a setup frame's content hash into a decoded
// instance: a cache hit answers ftHashOK and reuses the shared decoded
// graph; a miss answers ftHashMiss, reads the ftInstance re-sync frame,
// verifies the decoded instance really hashes to the requested key (a
// poisoned entry would corrupt every later solve that hits it) and caches
// it. The hit/miss is reported through the optional CacheTracer hook.
func (p *Peer) resolveInstance(rw frameRW, hash string) (*hypergraph.Hypergraph, bool, error) {
	if hash == "" {
		return nil, false, fmt.Errorf("%w: setup without instance hash", ErrBadFrame)
	}
	cache := p.instances()
	if g, ok := cache.get(hash); ok {
		p.traceCache(true, g.MemoryBytes())
		if err := rw.sendFrame(ftHashOK, []byte(hash)); err != nil {
			return nil, false, err
		}
		return g, true, nil
	}
	if err := rw.sendFrame(ftHashMiss, []byte(hash)); err != nil {
		return nil, false, err
	}
	ft, payload, err := rw.recvFrame()
	if err != nil {
		return nil, false, err
	}
	if ft != ftInstance {
		return nil, false, fmt.Errorf("%w: expected instance after miss, got type %d", ErrBadFrame, ft)
	}
	g := new(hypergraph.Hypergraph)
	if err := g.UnmarshalJSON(payload); err != nil {
		return nil, false, sendError(rw, fmt.Errorf("decode instance: %w", err))
	}
	if got := g.Hash(); got != hash {
		return nil, false, sendError(rw,
			fmt.Errorf("instance hash mismatch: setup %s, content %s", hash, got))
	}
	p.traceCache(false, g.MemoryBytes())
	cache.put(hash, g)
	return g, false, nil
}

// traceCache forwards one instance-cache lookup to the optional
// CacheTracer extension of the peer's tracer.
func (p *Peer) traceCache(hit bool, bytes int64) {
	if ct, ok := p.Tracer.(telemetry.CacheTracer); ok {
		ct.InstanceCache(hit, int(bytes))
	}
}

// sendError reports a solver-level failure as a frame; the original error
// is returned for the peer's log.
func sendError(rw frameRW, cause error) error {
	if err := sendJSONFrame(rw, ftError, errorFrame{Message: cause.Error()}); err != nil {
		return err
	}
	return cause
}

// isTransportErr distinguishes connection failures (no point writing an
// error frame) from solver-level failures (worth reporting upstream).
func isTransportErr(err error) bool {
	var ne net.Error
	return errors.As(err, &ne) || errors.Is(err, net.ErrClosed)
}

// isTemporaryAcceptErr reports whether an Accept error is worth retrying:
// resource exhaustion (EMFILE/ENFILE/ENOBUFS/ENOMEM) and connections that
// aborted inside the kernel backlog. The deprecated net.Error.Temporary is
// deliberately not consulted; this is the explicit list net/http's accept
// loop effectively survives.
func isTemporaryAcceptErr(err error) bool {
	return errors.Is(err, syscall.EMFILE) || errors.Is(err, syscall.ENFILE) ||
		errors.Is(err, syscall.ENOBUFS) || errors.Is(err, syscall.ENOMEM) ||
		errors.Is(err, syscall.ECONNABORTED)
}

func expectHello(conn net.Conn, d time.Duration) (helloFrame, error) {
	ft, payload, err := readFrameTimeout(conn, d)
	if err != nil {
		return helloFrame{}, err
	}
	if ft != ftHello {
		return helloFrame{}, fmt.Errorf("%w: expected hello, got type %d", ErrBadFrame, ft)
	}
	return parseHello(payload)
}

// parseHello unmarshals and validates a hello payload.
func parseHello(payload []byte) (helloFrame, error) {
	var h helloFrame
	if err := json.Unmarshal(payload, &h); err != nil {
		return helloFrame{}, fmt.Errorf("%w: hello: %v", ErrBadFrame, err)
	}
	if h.Magic != protoMagic || h.Version != protoVersion {
		return helloFrame{}, fmt.Errorf("%w: hello %q v%d (want %q v%d)", ErrBadFrame, h.Magic, h.Version, protoMagic, protoVersion)
	}
	return h, nil
}

// readFrameTimeout reads one frame under a deadline.
func readFrameTimeout(conn net.Conn, d time.Duration) (byte, []byte, error) {
	if err := conn.SetReadDeadline(time.Now().Add(d)); err != nil {
		return 0, nil, err
	}
	return readFrame(conn)
}

// writeFrameTimeout writes one frame under a deadline: without it, a peer
// (or coordinator) that stops reading would park the writer forever once
// the TCP send buffer fills — the setup frame in particular carries the
// whole instance. Deadline write failures surface like any other transport
// error (ErrPeerLost on the coordinator side).
func writeFrameTimeout(conn net.Conn, d time.Duration, ft byte, payload []byte) error {
	if err := conn.SetWriteDeadline(time.Now().Add(d)); err != nil {
		return err
	}
	return writeFrame(conn, ft, payload)
}

// writeJSONFrameTimeout is writeJSONFrame under a write deadline.
func writeJSONFrameTimeout(conn net.Conn, d time.Duration, ft byte, v any) error {
	if err := conn.SetWriteDeadline(time.Now().Add(d)); err != nil {
		return err
	}
	return writeJSONFrame(conn, ft, v)
}

// rwExchanger implements core.Exchanger over the peer's coordinator-facing
// stream: it publishes the local frame and blocks for the combined one.
// Frame accounting lives in the stream implementation, so the exchanger is
// identical on plain and multiplexed connections.
type rwExchanger struct {
	rw  frameRW
	buf []byte
}

func (e *rwExchanger) ExchangeBoundary(iteration int, local core.BoundaryFrame) ([]core.BoundaryFrame, error) {
	e.buf = encodeBoundary(e.buf, iteration, local)
	if err := e.rw.sendFrame(ftBoundary, e.buf); err != nil {
		return nil, err
	}
	ft, payload, err := e.rw.recvFrame()
	if err != nil {
		return nil, err
	}
	if ft != ftAllB {
		return nil, fmt.Errorf("%w: expected combined boundary, got type %d", ErrBadFrame, ft)
	}
	it, frames, err := decodeCombinedBoundary(payload)
	if err != nil {
		return nil, err
	}
	if it != iteration {
		return nil, fmt.Errorf("%w: combined boundary for iteration %d during %d", ErrBadFrame, it, iteration)
	}
	return frames, nil
}

func (e *rwExchanger) ExchangeCoverage(iteration, covered int) (int, error) {
	e.buf = encodeCoverage(e.buf, iteration, covered)
	if err := e.rw.sendFrame(ftCoverage, e.buf); err != nil {
		return 0, err
	}
	ft, payload, err := e.rw.recvFrame()
	if err != nil {
		return 0, err
	}
	if ft != ftAllC {
		return 0, fmt.Errorf("%w: expected combined coverage, got type %d", ErrBadFrame, ft)
	}
	it, total, err := decodeCoverage(payload)
	if err != nil {
		return 0, err
	}
	if it != iteration {
		return 0, fmt.Errorf("%w: combined coverage for iteration %d during %d", ErrBadFrame, it, iteration)
	}
	return total, nil
}
