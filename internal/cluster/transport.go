package cluster

import (
	"fmt"
	"net"
	"sync"
	"time"

	"distcover/internal/telemetry"
)

// This file is the transport layer both endpoints share: a frameRW is one
// logical frame stream, which protocol v2 maps onto a whole TCP connection
// and protocol v3 maps onto one channel of a multiplexed connection. The
// coordinator's relay goroutines and the peer's partition handlers are
// written against frameRW only, so the relay logic is identical on both
// wire formats.

// frameRW sends and receives frames on one logical stream. Implementations
// own their deadline handling and account every frame on the telemetry
// tracer (nil tracer = disabled). Both methods are safe for the one-reader/
// one-writer discipline the protocol has per stream; sendFrame is
// additionally safe against concurrent sends on sibling streams of the
// same connection.
type frameRW interface {
	sendFrame(ft byte, payload []byte) error
	recvFrame() (byte, []byte, error)
}

// connRW is the v2 stream: one connection, one partition. peer is the
// telemetry label ("" on the peer side, the remote address on the
// coordinator side).
type connRW struct {
	conn net.Conn
	d    time.Duration
	tr   telemetry.Tracer
	peer string
}

func (c *connRW) sendFrame(ft byte, payload []byte) error {
	if err := writeFrameTimeout(c.conn, c.d, ft, payload); err != nil {
		return err
	}
	if c.tr != nil {
		c.tr.Frame(c.peer, telemetry.DirSent, frameName(ft), frameWireBytes(len(payload)))
	}
	return nil
}

func (c *connRW) recvFrame() (byte, []byte, error) {
	ft, payload, err := readFrameTimeout(c.conn, c.d)
	if err != nil {
		return 0, nil, err
	}
	if c.tr != nil {
		c.tr.Frame(c.peer, telemetry.DirReceived, frameName(ft), frameWireBytes(len(payload)))
	}
	return ft, payload, nil
}

// muxMsg is one demultiplexed frame.
type muxMsg struct {
	ft      byte
	payload []byte
}

// muxSubDepth bounds the undrained frames per channel. The protocol is
// strictly request/response per channel, so more than a couple of frames
// backing up means the remote broke the cadence; killing the connection
// beats letting one channel absorb unbounded memory.
const muxSubDepth = 8

// mux multiplexes frame streams over one connection (protocol v3). A
// single readLoop demultiplexes incoming frames to per-channel
// subscriptions; writers from any channel serialize on wmu. The
// coordinator pre-registers its channels with channel() before starting
// readLoop; the peer instead sets onNew, which is invoked from readLoop
// for the first frame of an unknown channel and may register a handler
// (returning nil rejects the channel and kills the connection).
type mux struct {
	conn net.Conn
	d    time.Duration
	tr   telemetry.Tracer
	peer string // telemetry label, as in connRW

	// onNew accepts a new incoming channel (peer side). It runs on the
	// readLoop goroutine, before the triggering frame is delivered to the
	// returned subscription.
	onNew func(ch uint16) chan muxMsg

	wmu sync.Mutex // serializes writeFrameV3 across channels

	mu      sync.Mutex
	subs    map[uint16]chan muxMsg
	readErr error

	done chan struct{} // closed when readLoop exits
}

func newMux(conn net.Conn, d time.Duration, tr telemetry.Tracer, peer string) *mux {
	return &mux{
		conn: conn,
		d:    d,
		tr:   tr,
		peer: peer,
		subs: make(map[uint16]chan muxMsg),
		done: make(chan struct{}),
	}
}

// channel pre-registers stream ch and returns its frameRW view. After the
// mux has failed no subscription is created; the view's recvFrame reports
// the terminal error.
func (m *mux) channel(ch uint16) frameRW {
	m.mu.Lock()
	if m.subs != nil {
		if _, ok := m.subs[ch]; !ok {
			m.subs[ch] = make(chan muxMsg, muxSubDepth)
		}
	}
	m.mu.Unlock()
	return &muxChanRW{m: m, ch: ch}
}

// readLoop demultiplexes incoming frames until the connection fails or a
// protocol violation kills it. Every iteration re-arms the read deadline,
// so a silent remote frees this goroutine after d — under v3 the remote
// must produce a frame at least once per timeout window, which the
// per-iteration exchange cadence guarantees during a solve.
func (m *mux) readLoop() {
	defer close(m.done)
	for {
		if err := m.conn.SetReadDeadline(time.Now().Add(m.d)); err != nil {
			m.fail(err)
			return
		}
		ch, ft, payload, err := readFrameV3(m.conn)
		if err != nil {
			m.fail(err)
			return
		}
		if m.tr != nil {
			m.tr.Frame(m.peer, telemetry.DirReceived, frameName(ft), frameWireBytesV3(len(payload)))
		}
		m.mu.Lock()
		sub, ok := m.subs[ch]
		m.mu.Unlock()
		if !ok {
			if m.onNew != nil {
				sub = m.onNew(ch)
			}
			if sub == nil {
				m.fail(fmt.Errorf("%w: frame %s on unknown channel %d", ErrBadFrame, frameName(ft), ch))
				return
			}
			m.mu.Lock()
			m.subs[ch] = sub
			m.mu.Unlock()
		}
		select {
		case sub <- muxMsg{ft: ft, payload: payload}:
		default:
			m.fail(fmt.Errorf("%w: channel %d backlog exceeded %d frames", ErrBadFrame, ch, muxSubDepth))
			return
		}
	}
}

// fail records the first read error and closes every subscription,
// unblocking all channel readers. Only readLoop calls it, so it is the
// single closer of the subscription channels.
func (m *mux) fail(err error) {
	m.mu.Lock()
	if m.readErr == nil {
		m.readErr = err
	}
	for _, sub := range m.subs {
		close(sub)
	}
	m.subs = nil
	m.mu.Unlock()
}

// err returns the terminal read error, if any.
func (m *mux) err() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.readErr
}

// send writes one frame on channel ch, serialized against sibling
// channels.
func (m *mux) send(ch uint16, ft byte, payload []byte) error {
	m.wmu.Lock()
	defer m.wmu.Unlock()
	if err := m.conn.SetWriteDeadline(time.Now().Add(m.d)); err != nil {
		return err
	}
	if err := writeFrameV3(m.conn, ch, ft, payload); err != nil {
		return err
	}
	if m.tr != nil {
		m.tr.Frame(m.peer, telemetry.DirSent, frameName(ft), frameWireBytesV3(len(payload)))
	}
	return nil
}

// muxChanRW is one channel's frameRW view of a mux.
type muxChanRW struct {
	m  *mux
	ch uint16
}

func (c *muxChanRW) sendFrame(ft byte, payload []byte) error {
	return c.m.send(c.ch, ft, payload)
}

func (c *muxChanRW) recvFrame() (byte, []byte, error) {
	c.m.mu.Lock()
	sub, ok := c.m.subs[c.ch]
	readErr := c.m.readErr
	c.m.mu.Unlock()
	if !ok {
		if readErr == nil {
			readErr = net.ErrClosed
		}
		return 0, nil, readErr
	}
	timer := time.NewTimer(c.m.d)
	defer timer.Stop()
	select {
	case msg, ok := <-sub:
		if !ok {
			if err := c.m.err(); err != nil {
				return 0, nil, err
			}
			return 0, nil, net.ErrClosed
		}
		return msg.ft, msg.payload, nil
	case <-timer.C:
		return 0, nil, fmt.Errorf("cluster: channel %d read timeout after %s", c.ch, c.m.d)
	}
}
