package cluster

import (
	"errors"
	"net"
	"sync/atomic"
	"testing"
	"time"

	"distcover/internal/core"
	"distcover/internal/telemetry"
)

// countingListener counts accepted connections, so tests can assert how
// many TCP connections a solve actually opened against a peer.
type countingListener struct {
	net.Listener
	accepted atomic.Int64
}

func (l *countingListener) Accept() (net.Conn, error) {
	conn, err := l.Listener.Accept()
	if err == nil {
		l.accepted.Add(1)
	}
	return conn, err
}

// startCountingPeer launches one peer (optionally tweaked by mod) behind a
// connection-counting listener.
func startCountingPeer(t *testing.T, mod func(*Peer)) (string, *countingListener) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	cl := &countingListener{Listener: ln}
	p := NewPeer()
	if mod != nil {
		mod(p)
	}
	served := make(chan error, 1)
	go func() { served <- p.Serve(cl) }()
	t.Cleanup(func() {
		p.Close()
		if err := <-served; !errors.Is(err, ErrPeerClosed) {
			t.Errorf("Serve returned %v, want ErrPeerClosed", err)
		}
	})
	return ln.Addr().String(), cl
}

// TestClusterMultiplexSharesConnection: with default negotiation (v3), all
// partitions assigned to one peer process ride a single multiplexed TCP
// connection; forcing MaxProtocol 2 opens one connection per partition.
func TestClusterMultiplexSharesConnection(t *testing.T) {
	g := testInstance(t, 21, 60, 180, 3)
	opts := core.DefaultOptions()
	want, err := core.RunFlat(g, opts, 2)
	if err != nil {
		t.Fatal(err)
	}

	addr, cl := startCountingPeer(t, nil)
	got, err := Solve(g, opts, Config{Peers: []string{addr}, Partitions: 4})
	if err != nil {
		t.Fatal(err)
	}
	requireResultsEqual(t, "mux", got, want)
	if n := cl.accepted.Load(); n != 1 {
		t.Fatalf("v3 solve with 4 partitions opened %d connections, want 1 multiplexed", n)
	}

	addr2, cl2 := startCountingPeer(t, nil)
	got, err = Solve(g, opts, Config{Peers: []string{addr2}, Partitions: 4, MaxProtocol: 2})
	if err != nil {
		t.Fatal(err)
	}
	requireResultsEqual(t, "forced-v2", got, want)
	if n := cl2.accepted.Load(); n != 4 {
		t.Fatalf("forced-v2 solve with 4 partitions opened %d connections, want 4", n)
	}
}

// TestClusterSequentialRelayMatchesFlat: the historical sequential relay
// (always plain v2) stays bit-identical to the flat runner and to the
// concurrent fan-out relay.
func TestClusterSequentialRelayMatchesFlat(t *testing.T) {
	addrs := startPeers(t, 2)
	g := testInstance(t, 22, 50, 150, 3)
	opts := core.DefaultOptions()
	opts.Epsilon = 0.5
	want, err := core.RunFlat(g, opts, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, parts := range []int{2, 4} {
		got, err := Solve(g, opts, Config{Peers: addrs, Partitions: parts, SequentialRelay: true})
		if err != nil {
			t.Fatalf("sequential parts %d: %v", parts, err)
		}
		requireResultsEqual(t, "sequential", got, want)
	}
}

// TestClusterMixedVersionPeers: a v2-only peer process and a v3 peer in the
// same solve — negotiation settles per connection, results stay identical.
func TestClusterMixedVersionPeers(t *testing.T) {
	v2addr, v2l := startCountingPeer(t, func(p *Peer) { p.MaxProtocol = 2 })
	v3addr, v3l := startCountingPeer(t, nil)
	g := testInstance(t, 23, 60, 180, 3)
	opts := core.DefaultOptions()
	want, err := core.RunFlat(g, opts, 2)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Solve(g, opts, Config{Peers: []string{v2addr, v3addr}, Partitions: 4})
	if err != nil {
		t.Fatal(err)
	}
	requireResultsEqual(t, "mixed", got, want)
	// The v2-only peer holds partitions 0 and 2 on two plain connections;
	// the v3 peer multiplexes partitions 1 and 3 onto one.
	if n := v2l.accepted.Load(); n != 2 {
		t.Fatalf("v2-only peer saw %d connections, want 2", n)
	}
	if n := v3l.accepted.Load(); n != 1 {
		t.Fatalf("v3 peer saw %d connections, want 1", n)
	}
}

// TestClusterInvalidateVersions: Invalidate reaches peers over both the
// multiplexed v3 path and a forced-v2 connection, and actually evicts — the
// peer-side cache tracer sees miss, hit, then miss again after Invalidate.
func TestClusterInvalidateVersions(t *testing.T) {
	rec := telemetry.NewRecorder("")
	addr, _ := startCountingPeer(t, func(p *Peer) { p.Tracer = rec })
	g := testInstance(t, 24, 40, 120, 2)
	opts := core.DefaultOptions()
	// One partition per solve keeps the cache hit/miss sequence
	// deterministic (concurrent setups of one solve race each other into
	// the peer cache).
	cfg := Config{Peers: []string{addr}, Partitions: 1}

	solve := func() {
		t.Helper()
		if _, err := Solve(g, opts, cfg); err != nil {
			t.Fatal(err)
		}
	}
	counts := func() (hits, misses int) {
		rep := rec.Report()
		return rep.InstanceCacheHits, rep.InstanceCacheMisses
	}

	solve()
	if h, m := counts(); m != 1 || h != 0 {
		t.Fatalf("cold solve: hits=%d misses=%d, want 0/1", h, m)
	}
	solve()
	if h, m := counts(); m != 1 || h != 1 {
		t.Fatalf("warm solve: hits=%d misses=%d, want 1/1", h, m)
	}
	if err := Invalidate(g.Hash(), cfg); err != nil {
		t.Fatalf("invalidate (v3): %v", err)
	}
	solve()
	if h, m := counts(); m != 2 {
		t.Fatalf("post-invalidate solve: hits=%d misses=%d, want a second miss", h, m)
	}
	if err := Invalidate(g.Hash(), Config{Peers: []string{addr}, MaxProtocol: 2}); err != nil {
		t.Fatalf("invalidate (v2): %v", err)
	}
	solve()
	if _, m := counts(); m != 3 {
		t.Fatalf("post-v2-invalidate solve: misses=%d, want 3", m)
	}
}

// TestClusterFanOutTracer: the fan-out relay drives one tracer from
// concurrent relay goroutines; the recorder must come back consistent —
// per-peer exchange counts matching the solve's iteration count and frame
// accounting in both directions. Run under -race this is also the
// concurrency-safety regression for the shared tracer.
func TestClusterFanOutTracer(t *testing.T) {
	addrs := startPeers(t, 2)
	rec := telemetry.NewRecorder("")
	g := testInstance(t, 25, 60, 180, 3)
	opts := core.DefaultOptions()
	got, err := Solve(g, opts, Config{Peers: addrs, Partitions: 4, Tracer: rec})
	if err != nil {
		t.Fatal(err)
	}
	rep := rec.Report()
	if len(rep.Peers) != 2 {
		t.Fatalf("report has %d peers, want 2", len(rep.Peers))
	}
	for _, ps := range rep.Peers {
		// Two partitions per peer, two exchanges per iteration each.
		if want := 2 * 2 * got.Iterations; ps.Exchanges != want {
			t.Fatalf("peer %s: %d exchanges, want %d", ps.Peer, ps.Exchanges, want)
		}
		if ps.FramesSent == 0 || ps.FramesReceived == 0 ||
			ps.BytesSent == 0 || ps.BytesReceived == 0 {
			t.Fatalf("peer %s: missing frame accounting: %+v", ps.Peer, ps)
		}
	}
}

// TestClusterForcedV2MatchesFlat sweeps partition counts over forced-v2
// connections (wire-compat regression for talking to older peers).
func TestClusterForcedV2MatchesFlat(t *testing.T) {
	addrs := startPeers(t, 2)
	g := testInstance(t, 26, 50, 150, 3)
	opts := core.DefaultOptions()
	want, err := core.RunFlat(g, opts, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, parts := range []int{1, 2, 3, 4} {
		got, err := Solve(g, opts, Config{Peers: addrs, Partitions: parts, MaxProtocol: 2})
		if err != nil {
			t.Fatalf("parts %d: %v", parts, err)
		}
		requireResultsEqual(t, "forced-v2", got, want)
	}
}

// TestClusterMuxPeerFailure: a solver-level failure on one multiplexed
// channel must surface as ErrPeerFailed while other channels on the same
// connection are mid-solve, and must not wedge the connection.
func TestClusterMuxPeerFailure(t *testing.T) {
	addr, _ := startCountingPeer(t, nil)
	g := testInstance(t, 27, 40, 120, 3)
	bad := core.DefaultOptions()
	bad.MaxIterations = 1
	if _, err := Solve(g, bad, Config{Peers: []string{addr}, Partitions: 3, Timeout: 5 * time.Second}); !errors.Is(err, ErrPeerFailed) {
		t.Fatalf("err = %v, want ErrPeerFailed", err)
	}
	// The peer must still serve a healthy solve afterwards.
	opts := core.DefaultOptions()
	want, err := core.RunFlat(g, opts, 2)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Solve(g, opts, Config{Peers: []string{addr}, Partitions: 3})
	if err != nil {
		t.Fatal(err)
	}
	requireResultsEqual(t, "post-failure", got, want)
}
