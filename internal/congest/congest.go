// Package congest simulates the synchronous CONGEST message-passing model:
// computation proceeds in rounds, in every round each node may send one
// message per incident link, and message sizes are bounded by O(log n) bits.
//
// The package provides interchangeable engines with identical semantics:
//
//   - SequentialEngine executes nodes one at a time in a deterministic order;
//     it is simple, fully reproducible and the reference implementation.
//   - ParallelEngine runs every node as its own goroutine with channels
//     carrying the messages and a barrier per round — the natural Go
//     embedding of the model, but goroutine and channel overhead dominate on
//     large networks.
//   - ShardedEngine partitions the nodes over a fixed worker pool and routes
//     messages through flat slice mailboxes; it is the engine for large
//     instances (millions of nodes) and produces bit-identical results.
//   - NetEngine (netengine.go) moves the messages over real TCP loopback
//     sockets for end-to-end demonstrations.
//
// All engines account rounds, message counts and message bits, and can
// enforce the CONGEST bit budget, rejecting protocols that cheat.
package congest

import (
	"errors"
	"fmt"
	"math/bits"
)

// NodeID identifies a node in a Network. Nodes are numbered 0..n-1.
type NodeID int

// Message is a payload sent along one link in one round. Implementations
// report their encoded size in bits so the engine can enforce the CONGEST
// budget. Messages must be immutable after sending: the parallel engine
// delivers them to another goroutine.
type Message interface {
	// Bits returns the number of bits a real implementation would need to
	// encode this message. Used for CONGEST accounting and enforcement.
	Bits() int
}

// Envelope pairs a received message with its sender.
type Envelope struct {
	From NodeID
	Msg  Message
}

// Outbox collects the messages a node sends in one round. A node may send at
// most one message per neighbor per round; violations are reported when the
// engine validates the round.
type Outbox struct {
	sends []Envelope // From field abused as destination before delivery
}

// Send queues a message for delivery to the given neighbor at the start of
// the next round.
func (o *Outbox) Send(to NodeID, m Message) {
	o.sends = append(o.sends, Envelope{From: to, Msg: m})
}

// Len returns the number of queued messages.
func (o *Outbox) Len() int { return len(o.sends) }

// Node is a synchronous state machine. The engine calls Step once per round
// with the messages received (sent to this node in the previous round) and
// an outbox for this round's sends. Round 0 has an empty inbox. Every engine
// delivers the inbox sorted by ascending sender id — protocol nodes may (and
// the ones in internal/core do) rely on that order. The inbox slice is only
// valid for the duration of Step: engines (the sharded one today) may reuse
// its backing storage for later rounds, so nodes must copy anything they
// keep.
//
// A node signals local termination by returning done = true; a done node is
// never stepped again and messages sent to it are dropped (it has already
// decided its output). Step must only access the node's own state: the
// parallel engine calls Step on different nodes concurrently.
type Node interface {
	Step(round int, inbox []Envelope, out *Outbox) (done bool)
}

// Network is a fixed communication topology over a set of nodes.
type Network struct {
	nodes []Node
	adj   [][]NodeID
	edges int
}

// NewNetwork creates an empty network.
func NewNetwork() *Network { return &Network{} }

// AddNode registers a node and returns its id.
func (nw *Network) AddNode(n Node) NodeID {
	nw.nodes = append(nw.nodes, n)
	nw.adj = append(nw.adj, nil)
	return NodeID(len(nw.nodes) - 1)
}

// Connect adds an undirected link between a and b. Self-links and duplicate
// links are rejected.
func (nw *Network) Connect(a, b NodeID) error {
	if a == b {
		return fmt.Errorf("congest: self-link at node %d", a)
	}
	if !nw.valid(a) || !nw.valid(b) {
		return fmt.Errorf("congest: link (%d,%d) references unknown node", a, b)
	}
	for _, x := range nw.adj[a] {
		if x == b {
			return fmt.Errorf("congest: duplicate link (%d,%d)", a, b)
		}
	}
	nw.adj[a] = append(nw.adj[a], b)
	nw.adj[b] = append(nw.adj[b], a)
	nw.edges++
	return nil
}

// MustConnect is Connect but panics on error; for statically valid topologies.
func (nw *Network) MustConnect(a, b NodeID) {
	if err := nw.Connect(a, b); err != nil {
		panic(err)
	}
}

// Reserve pre-sizes node v's adjacency list to hold at least extra further
// links, so builders that know degrees up front avoid repeated slice growth
// on large networks. It never shrinks and ignores invalid ids.
func (nw *Network) Reserve(v NodeID, extra int) {
	if !nw.valid(v) || extra <= 0 {
		return
	}
	adj := nw.adj[v]
	if cap(adj)-len(adj) >= extra {
		return
	}
	grown := make([]NodeID, len(adj), len(adj)+extra)
	copy(grown, adj)
	nw.adj[v] = grown
}

// ConnectTrusted is Connect without the validity and duplicate-link checks:
// the caller guarantees a != b, both ids exist, and the link is not already
// present. Builders that construct topologies from already-validated data
// (core.BuildNetwork over a Builder-checked hypergraph) use it because
// Connect's O(deg) duplicate scan turns hub vertices quadratic.
func (nw *Network) ConnectTrusted(a, b NodeID) {
	nw.adj[a] = append(nw.adj[a], b)
	nw.adj[b] = append(nw.adj[b], a)
	nw.edges++
}

// NumNodes returns the number of nodes.
func (nw *Network) NumNodes() int { return len(nw.nodes) }

// NumLinks returns the number of undirected links.
func (nw *Network) NumLinks() int { return nw.edges }

// Neighbors returns the neighbor list of v (shared storage; do not modify).
func (nw *Network) Neighbors(v NodeID) []NodeID { return nw.adj[v] }

// Node returns the node registered under id.
func (nw *Network) Node(id NodeID) Node { return nw.nodes[id] }

func (nw *Network) valid(v NodeID) bool { return v >= 0 && int(v) < len(nw.nodes) }

// Errors returned by engines.
var (
	// ErrRoundLimit indicates the protocol did not terminate within the
	// configured maximum number of rounds.
	ErrRoundLimit = errors.New("congest: round limit exceeded")
	// ErrMessageTooLarge indicates a message exceeding the CONGEST budget.
	ErrMessageTooLarge = errors.New("congest: message exceeds bit budget")
	// ErrNotNeighbor indicates a send to a non-adjacent node.
	ErrNotNeighbor = errors.New("congest: send to non-neighbor")
	// ErrDuplicateSend indicates two messages on one link in one round.
	ErrDuplicateSend = errors.New("congest: multiple messages on one link in one round")
)

// Options configures an engine run.
type Options struct {
	// MaxRounds caps the execution; ≤ 0 means DefaultMaxRounds.
	MaxRounds int
	// BitBudget is the per-message size bound in bits; ≤ 0 disables
	// enforcement (sizes are still recorded in Metrics).
	BitBudget int
	// Validate enables per-send topology checks (neighbor, one per link).
	// The checks are O(deg) per node per round; disable for large benches.
	Validate bool
}

// DefaultMaxRounds bounds runs when Options.MaxRounds is unset.
const DefaultMaxRounds = 1 << 20

// Metrics aggregates what a run cost in the CONGEST model.
type Metrics struct {
	// Rounds is the number of rounds executed until global termination.
	Rounds int
	// Messages is the total number of messages delivered.
	Messages int64
	// TotalBits is the sum of message sizes.
	TotalBits int64
	// MaxMessageBits is the largest single message observed.
	MaxMessageBits int
	// MaxRoundMessages is the largest number of messages in one round.
	MaxRoundMessages int64
	// WireBytes counts the real bytes moved by transports that serialize
	// messages (NetEngine); 0 for the in-memory engines.
	WireBytes int64
}

func (m Metrics) String() string {
	return fmt.Sprintf("rounds=%d msgs=%d bits=%d maxMsgBits=%d",
		m.Rounds, m.Messages, m.TotalBits, m.MaxMessageBits)
}

// Engine executes a network to quiescence.
type Engine interface {
	// Run steps all nodes until every node is done, returning metrics.
	Run(nw *Network, opts Options) (Metrics, error)
}

// LogBudget returns a standard CONGEST bit budget c·⌈log2(n+2)⌉ for an
// n-node network, with c = 8 covering the constant number of O(log n)-bit
// fields the protocols in this repository send per message.
func LogBudget(n int) int {
	if n < 0 {
		n = 0
	}
	return 8 * bits.Len(uint(n+2))
}

// IntBits returns the number of bits needed to transmit v (magnitude plus
// sign bit), used by protocol messages to implement Message.Bits.
func IntBits(v int64) int {
	if v < 0 {
		v = -v
	}
	return bits.Len64(uint64(v)) + 1
}
