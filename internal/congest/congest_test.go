package congest

import (
	"errors"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// intMsg is a test message carrying one integer.
type intMsg int64

func (m intMsg) Bits() int { return IntBits(int64(m)) }

// bigMsg reports an arbitrary size regardless of content.
type bigMsg struct{ bits int }

func (m bigMsg) Bits() int { return m.bits }

// bfsNode computes its hop distance from a root by flooding: the root sends
// 0 to all neighbors in round 0; every node forwards dist+1 the round after
// it first learns its distance, then terminates once it has heard from all
// neighbors or knows it cannot improve. Termination rule: a node terminates
// right after broadcasting its distance; the root terminates after round 0.
type bfsNode struct {
	id        NodeID
	neighbors []NodeID
	isRoot    bool
	dist      int64 // -1 until known
}

func (n *bfsNode) Step(round int, inbox []Envelope, out *Outbox) bool {
	if round == 0 && n.isRoot {
		n.dist = 0
		for _, nb := range n.neighbors {
			out.Send(nb, intMsg(1))
		}
		return true
	}
	if n.dist >= 0 {
		return true
	}
	best := int64(-1)
	for _, env := range inbox {
		d := int64(env.Msg.(intMsg))
		if best < 0 || d < best {
			best = d
		}
	}
	if best < 0 {
		return false // nothing heard yet; stay active
	}
	n.dist = best
	for _, nb := range n.neighbors {
		out.Send(nb, intMsg(best+1))
	}
	return true
}

// buildPath creates a path network v0 - v1 - ... - v_{n-1} of bfsNodes.
func buildPath(n int) (*Network, []*bfsNode) {
	nw := NewNetwork()
	nodes := make([]*bfsNode, n)
	for i := 0; i < n; i++ {
		nodes[i] = &bfsNode{id: NodeID(i), isRoot: i == 0, dist: -1}
		nw.AddNode(nodes[i])
	}
	for i := 0; i+1 < n; i++ {
		nw.MustConnect(NodeID(i), NodeID(i+1))
		nodes[i].neighbors = append(nodes[i].neighbors, NodeID(i+1))
		nodes[i+1].neighbors = append(nodes[i+1].neighbors, NodeID(i))
	}
	return nw, nodes
}

func engines() map[string]Engine {
	return map[string]Engine{
		"sequential": SequentialEngine{},
		"parallel":   ParallelEngine{},
		"sharded":    ShardedEngine{},
		"sharded-3":  ShardedEngine{Shards: 3},
	}
}

func TestBFSOnPath(t *testing.T) {
	for name, eng := range engines() {
		t.Run(name, func(t *testing.T) {
			const n = 12
			nw, nodes := buildPath(n)
			m, err := eng.Run(nw, Options{Validate: true, BitBudget: LogBudget(n)})
			if err != nil {
				t.Fatalf("Run: %v", err)
			}
			for i, node := range nodes {
				if node.dist != int64(i) {
					t.Errorf("node %d dist = %d, want %d", i, node.dist, i)
				}
			}
			// Distance i is learned in round i, broadcast terminates then;
			// the last node learns at round n-1, so rounds ≈ n.
			if m.Rounds < n-1 || m.Rounds > n+1 {
				t.Errorf("rounds = %d, want about %d", m.Rounds, n)
			}
			if m.Messages == 0 || m.TotalBits == 0 {
				t.Errorf("metrics not recorded: %+v", m)
			}
		})
	}
}

func TestEnginesAgree(t *testing.T) {
	// Random connected graphs; both engines must produce identical node
	// states and metrics.
	prop := func(seed int64, nRaw uint8) bool {
		n := int(nRaw%20) + 2
		rng := rand.New(rand.NewSource(seed))
		type edge struct{ a, b int }
		var links []edge
		for i := 1; i < n; i++ {
			links = append(links, edge{rng.Intn(i), i}) // random tree
		}
		for k := 0; k < n/2; k++ { // extra random links
			a, b := rng.Intn(n), rng.Intn(n)
			if a != b {
				links = append(links, edge{a, b})
			}
		}
		build := func() (*Network, []*bfsNode) {
			nw := NewNetwork()
			nodes := make([]*bfsNode, n)
			for i := 0; i < n; i++ {
				nodes[i] = &bfsNode{id: NodeID(i), isRoot: i == 0, dist: -1}
				nw.AddNode(nodes[i])
			}
			for _, l := range links {
				if err := nw.Connect(NodeID(l.a), NodeID(l.b)); err != nil {
					continue // duplicate extra link; skip in both builds
				}
				nodes[l.a].neighbors = append(nodes[l.a].neighbors, NodeID(l.b))
				nodes[l.b].neighbors = append(nodes[l.b].neighbors, NodeID(l.a))
			}
			return nw, nodes
		}
		nwS, nodesS := build()
		mS, errS := SequentialEngine{}.Run(nwS, Options{Validate: true})
		for name, eng := range engines() {
			if name == "sequential" {
				continue
			}
			nwE, nodesE := build()
			mE, errE := eng.Run(nwE, Options{Validate: true})
			if (errS == nil) != (errE == nil) {
				return false
			}
			if !reflect.DeepEqual(mS, mE) {
				return false
			}
			for i := range nodesS {
				if nodesS[i].dist != nodesE[i].dist {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// stubborn never terminates and sends nothing.
type stubborn struct{}

func (stubborn) Step(int, []Envelope, *Outbox) bool { return false }

func TestRoundLimit(t *testing.T) {
	for name, eng := range engines() {
		t.Run(name, func(t *testing.T) {
			nw := NewNetwork()
			nw.AddNode(stubborn{})
			_, err := eng.Run(nw, Options{MaxRounds: 10})
			if !errors.Is(err, ErrRoundLimit) {
				t.Errorf("err = %v, want ErrRoundLimit", err)
			}
		})
	}
}

// shouter sends an oversized message to its single neighbor in round 0.
type shouter struct {
	peer NodeID
	bits int
}

func (s shouter) Step(round int, _ []Envelope, out *Outbox) bool {
	if round == 0 {
		out.Send(s.peer, bigMsg{bits: s.bits})
	}
	return true
}

// sink absorbs one round of messages then terminates.
type sink struct{}

func (sink) Step(round int, _ []Envelope, _ *Outbox) bool { return round >= 1 }

func TestBitBudgetEnforced(t *testing.T) {
	for name, eng := range engines() {
		t.Run(name, func(t *testing.T) {
			nw := NewNetwork()
			a := nw.AddNode(shouter{peer: 1, bits: 10_000})
			b := nw.AddNode(sink{})
			nw.MustConnect(a, b)
			_, err := eng.Run(nw, Options{BitBudget: 64})
			if !errors.Is(err, ErrMessageTooLarge) {
				t.Errorf("err = %v, want ErrMessageTooLarge", err)
			}
			// Without a budget the same run succeeds and records the size.
			nw2 := NewNetwork()
			a2 := nw2.AddNode(shouter{peer: 1, bits: 10_000})
			b2 := nw2.AddNode(sink{})
			nw2.MustConnect(a2, b2)
			m, err := eng.Run(nw2, Options{})
			if err != nil {
				t.Fatalf("unbudgeted run: %v", err)
			}
			if m.MaxMessageBits != 10_000 {
				t.Errorf("MaxMessageBits = %d, want 10000", m.MaxMessageBits)
			}
		})
	}
}

func TestNonNeighborSendRejected(t *testing.T) {
	for name, eng := range engines() {
		t.Run(name, func(t *testing.T) {
			nw := NewNetwork()
			nw.AddNode(shouter{peer: 1, bits: 1}) // no link to node 1
			nw.AddNode(sink{})
			_, err := eng.Run(nw, Options{Validate: true})
			if !errors.Is(err, ErrNotNeighbor) {
				t.Errorf("err = %v, want ErrNotNeighbor", err)
			}
		})
	}
}

// doubleSender sends twice on the same link in round 0.
type doubleSender struct{ peer NodeID }

func (d doubleSender) Step(round int, _ []Envelope, out *Outbox) bool {
	if round == 0 {
		out.Send(d.peer, intMsg(1))
		out.Send(d.peer, intMsg(2))
	}
	return true
}

func TestDuplicateSendRejected(t *testing.T) {
	for name, eng := range engines() {
		t.Run(name, func(t *testing.T) {
			nw := NewNetwork()
			a := nw.AddNode(doubleSender{peer: 1})
			b := nw.AddNode(sink{})
			nw.MustConnect(a, b)
			_, err := eng.Run(nw, Options{Validate: true})
			if !errors.Is(err, ErrDuplicateSend) {
				t.Errorf("err = %v, want ErrDuplicateSend", err)
			}
		})
	}
}

func TestSendOutOfRangeRejectedEvenWithoutValidate(t *testing.T) {
	nw := NewNetwork()
	nw.AddNode(shouter{peer: 99, bits: 1})
	_, err := SequentialEngine{}.Run(nw, Options{})
	if !errors.Is(err, ErrNotNeighbor) {
		t.Errorf("err = %v, want ErrNotNeighbor", err)
	}
}

func TestNetworkTopologyErrors(t *testing.T) {
	nw := NewNetwork()
	a := nw.AddNode(sink{})
	b := nw.AddNode(sink{})
	if err := nw.Connect(a, a); err == nil {
		t.Error("self-link accepted")
	}
	if err := nw.Connect(a, 99); err == nil {
		t.Error("dangling link accepted")
	}
	if err := nw.Connect(a, b); err != nil {
		t.Errorf("valid link rejected: %v", err)
	}
	if err := nw.Connect(b, a); err == nil {
		t.Error("duplicate link accepted")
	}
	if nw.NumLinks() != 1 || nw.NumNodes() != 2 {
		t.Errorf("topology = (%d nodes, %d links), want (2,1)", nw.NumNodes(), nw.NumLinks())
	}
	if got := nw.Neighbors(a); len(got) != 1 || got[0] != b {
		t.Errorf("Neighbors(a) = %v, want [b]", got)
	}
}

func TestEmptyNetworkTerminatesImmediately(t *testing.T) {
	for name, eng := range engines() {
		t.Run(name, func(t *testing.T) {
			m, err := eng.Run(NewNetwork(), Options{})
			if err != nil {
				t.Fatalf("Run: %v", err)
			}
			if m.Rounds != 0 || m.Messages != 0 {
				t.Errorf("metrics = %+v, want zero", m)
			}
		})
	}
}

func TestLogBudget(t *testing.T) {
	tests := []struct {
		n    int
		want int
	}{
		{0, 8 * 2}, // len(2) = 2
		{2, 8 * 3}, // len(4) = 3
		{1000, 8 * 10},
		{-5, 8 * 2}, // clamped
	}
	for _, tt := range tests {
		if got := LogBudget(tt.n); got != tt.want {
			t.Errorf("LogBudget(%d) = %d, want %d", tt.n, got, tt.want)
		}
	}
}

func TestIntBits(t *testing.T) {
	tests := []struct {
		v    int64
		want int
	}{
		{0, 1},
		{1, 2},
		{-1, 2},
		{255, 9},
		{1 << 40, 42},
	}
	for _, tt := range tests {
		if got := IntBits(tt.v); got != tt.want {
			t.Errorf("IntBits(%d) = %d, want %d", tt.v, got, tt.want)
		}
	}
}

func TestMetricsString(t *testing.T) {
	m := Metrics{Rounds: 3, Messages: 10, TotalBits: 100, MaxMessageBits: 12}
	if s := m.String(); s == "" {
		t.Error("empty Metrics.String()")
	}
}
