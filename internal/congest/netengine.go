package congest

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"
)

// Codec serializes protocol messages so transports that move real bytes
// (NetEngine) can carry them. Implementations are provided by the protocol
// packages, which know their concrete message types.
type Codec interface {
	// Encode serializes a message.
	Encode(m Message) ([]byte, error)
	// Decode parses a message previously produced by Encode.
	Decode(data []byte) (Message, error)
}

// ErrNoCodec is returned when NetEngine runs without a codec.
var ErrNoCodec = errors.New("congest: NetEngine requires a codec")

// NetEngine executes the synchronous protocol with every node as its own
// goroutine connected to a round coordinator over real TCP (loopback by
// default): inboxes and outboxes cross the sockets as length-prefixed
// binary frames encoded by the protocol's Codec. Semantics and metrics are
// identical to SequentialEngine (the coordinator routes deterministically
// in node-id order); additionally Metrics.WireBytes reports the real bytes
// moved, which tests compare against the Bits() accounting.
//
// Every node holds one TCP connection, so instance sizes are bounded by
// the file-descriptor limit; this engine exists to demonstrate the
// protocol end-to-end over a real transport, not for large benchmarks.
type NetEngine struct {
	// Codec serializes messages; required.
	Codec Codec
	// Addr is the listen address; empty means 127.0.0.1:0.
	Addr string
}

var _ Engine = NetEngine{}

// frame layout: u32 round | u32 count | count × (u32 peer | u32 len | bytes).
// The round field doubles as a shutdown signal (^uint32(0)).

const shutdownRound = ^uint32(0)

// Run implements Engine.
func (e NetEngine) Run(nw *Network, opts Options) (Metrics, error) {
	if e.Codec == nil {
		return Metrics{}, ErrNoCodec
	}
	maxRounds := opts.MaxRounds
	if maxRounds <= 0 {
		maxRounds = DefaultMaxRounds
	}
	addr := e.Addr
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return Metrics{}, fmt.Errorf("congest: listen: %w", err)
	}

	n := nw.NumNodes()
	if n == 0 {
		ln.Close()
		return Metrics{}, nil
	}

	var wg sync.WaitGroup
	conns := make([]net.Conn, n)
	// Cleanup order matters on every exit path, error or not: first stop
	// listening (resets connections still sitting in the accept backlog,
	// e.g. after a handshake failure), then close every accepted connection
	// (unblocks node goroutines parked in reads or writes mid-round), and
	// only then wait for the node goroutines to drain. Waiting before
	// closing deadlocks: a node blocked on its socket never observes the
	// coordinator's exit.
	defer wg.Wait()
	defer func() {
		ln.Close()
		for _, c := range conns {
			if c != nil {
				c.Close()
			}
		}
	}()

	// Node processes: dial, send id, then serve rounds until shutdown.
	nodeErrs := make(chan error, n)
	for id := 0; id < n; id++ {
		wg.Add(1)
		go func(id int, node Node) {
			defer wg.Done()
			if err := runNodeProcess(ln.Addr().String(), id, node, e.Codec); err != nil {
				nodeErrs <- fmt.Errorf("node %d: %w", id, err)
			}
		}(id, nw.nodes[id])
	}

	// Accept and identify all connections.
	for i := 0; i < n; i++ {
		conn, err := ln.Accept()
		if err != nil {
			return Metrics{}, fmt.Errorf("congest: accept: %w", err)
		}
		var idBuf [4]byte
		if _, err := io.ReadFull(conn, idBuf[:]); err != nil {
			conn.Close()
			return Metrics{}, fmt.Errorf("congest: handshake: %w", err)
		}
		id := int(binary.BigEndian.Uint32(idBuf[:]))
		if id < 0 || id >= n || conns[id] != nil {
			conn.Close()
			return Metrics{}, fmt.Errorf("congest: bad handshake id %d", id)
		}
		conns[id] = conn
	}

	var (
		metrics Metrics
		inboxes = make([][]Envelope, n)
		next    = make([][]Envelope, n)
		done    = make([]bool, n)
		remain  = n
	)
	// shutdown tells still-active nodes to exit cleanly. Writes are bounded
	// by a deadline: if a node is itself wedged in a write, its receive
	// buffer may be full, and the deferred connection close — not this
	// courtesy frame — is what unblocks it.
	shutdown := func() {
		deadline := time.Now().Add(time.Second)
		for id, c := range conns {
			if c != nil && !done[id] {
				c.SetWriteDeadline(deadline)
				writeFrame(c, shutdownRound, nil, nil)
			}
		}
	}
	for round := 0; remain > 0; round++ {
		if round >= maxRounds {
			shutdown()
			return metrics, fmt.Errorf("%w: %d rounds, %d nodes still active",
				ErrRoundLimit, maxRounds, remain)
		}
		metrics.Rounds = round + 1
		// Fan out inbox frames; all active nodes compute concurrently.
		for id := 0; id < n; id++ {
			if done[id] {
				continue
			}
			inbox := inboxes[id]
			inboxes[id] = nil
			sortInbox(inbox)
			wire, err := e.encodeEnvelopes(inbox)
			if err != nil {
				shutdown()
				return metrics, err
			}
			nBytes, err := writeFrame(conns[id], uint32(round), inbox, wire)
			if err != nil {
				shutdown()
				return metrics, fmt.Errorf("congest: send to node %d: %w", id, err)
			}
			metrics.WireBytes += int64(nBytes)
		}
		// Collect outboxes in id order for deterministic delivery.
		var roundMsgs int64
		for id := 0; id < n; id++ {
			if done[id] {
				continue
			}
			out, nodeDone, nBytes, err := e.readOutbox(conns[id])
			if err != nil {
				shutdown()
				return metrics, fmt.Errorf("congest: recv from node %d: %w", id, err)
			}
			metrics.WireBytes += int64(nBytes)
			if err := deliver(nw, NodeID(id), out, next, done, opts, &metrics, &roundMsgs); err != nil {
				shutdown()
				return metrics, err
			}
			if nodeDone {
				done[id] = true
				remain--
				conns[id].Close()
			}
		}
		if roundMsgs > metrics.MaxRoundMessages {
			metrics.MaxRoundMessages = roundMsgs
		}
		inboxes, next = next, inboxes
	}
	select {
	case err := <-nodeErrs:
		return metrics, err
	default:
	}
	return metrics, nil
}

// encodeEnvelopes pre-encodes an inbox with the codec.
func (e NetEngine) encodeEnvelopes(inbox []Envelope) ([][]byte, error) {
	wire := make([][]byte, len(inbox))
	for i, env := range inbox {
		data, err := e.Codec.Encode(env.Msg)
		if err != nil {
			return nil, fmt.Errorf("congest: encode: %w", err)
		}
		wire[i] = data
	}
	return wire, nil
}

// writeFrame sends one round frame; envelopes and wire run in parallel.
func writeFrame(conn net.Conn, round uint32, envs []Envelope, wire [][]byte) (int, error) {
	size := 8
	for _, w := range wire {
		size += 8 + len(w)
	}
	buf := make([]byte, 0, size)
	buf = binary.BigEndian.AppendUint32(buf, round)
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(wire)))
	for i, w := range wire {
		buf = binary.BigEndian.AppendUint32(buf, uint32(envs[i].From))
		buf = binary.BigEndian.AppendUint32(buf, uint32(len(w)))
		buf = append(buf, w...)
	}
	_, err := conn.Write(buf)
	return len(buf), err
}

// readOutbox reads a node's response frame: u8 done | u32 count | entries.
func (e NetEngine) readOutbox(conn net.Conn) (*Outbox, bool, int, error) {
	var head [5]byte
	if _, err := io.ReadFull(conn, head[:]); err != nil {
		return nil, false, 0, err
	}
	total := 5
	nodeDone := head[0] == 1
	count := binary.BigEndian.Uint32(head[1:])
	out := &Outbox{}
	for i := uint32(0); i < count; i++ {
		var hdr [8]byte
		if _, err := io.ReadFull(conn, hdr[:]); err != nil {
			return nil, false, total, err
		}
		to := NodeID(binary.BigEndian.Uint32(hdr[:4]))
		ln := binary.BigEndian.Uint32(hdr[4:])
		data := make([]byte, ln)
		if _, err := io.ReadFull(conn, data); err != nil {
			return nil, false, total, err
		}
		total += 8 + int(ln)
		msg, err := e.Codec.Decode(data)
		if err != nil {
			return nil, false, total, fmt.Errorf("decode: %w", err)
		}
		out.Send(to, msg)
	}
	return out, nodeDone, total, nil
}

// runNodeProcess is the per-node goroutine: it owns the Node state machine
// and talks to the coordinator purely through its TCP connection.
func runNodeProcess(addr string, id int, node Node, codec Codec) error {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return err
	}
	defer conn.Close()
	var idBuf [4]byte
	binary.BigEndian.PutUint32(idBuf[:], uint32(id))
	if _, err := conn.Write(idBuf[:]); err != nil {
		return err
	}
	for {
		var head [8]byte
		if _, err := io.ReadFull(conn, head[:]); err != nil {
			if errors.Is(err, io.EOF) || errors.Is(err, net.ErrClosed) {
				return nil // coordinator shut us down
			}
			return err
		}
		round := binary.BigEndian.Uint32(head[:4])
		if round == shutdownRound {
			return nil
		}
		count := binary.BigEndian.Uint32(head[4:])
		inbox := make([]Envelope, 0, count)
		for i := uint32(0); i < count; i++ {
			var hdr [8]byte
			if _, err := io.ReadFull(conn, hdr[:]); err != nil {
				return err
			}
			from := NodeID(binary.BigEndian.Uint32(hdr[:4]))
			ln := binary.BigEndian.Uint32(hdr[4:])
			data := make([]byte, ln)
			if _, err := io.ReadFull(conn, data); err != nil {
				return err
			}
			msg, err := codec.Decode(data)
			if err != nil {
				return fmt.Errorf("decode inbox: %w", err)
			}
			inbox = append(inbox, Envelope{From: from, Msg: msg})
		}
		var out Outbox
		nodeDone := node.Step(int(round), inbox, &out)
		resp := make([]byte, 0, 5)
		if nodeDone {
			resp = append(resp, 1)
		} else {
			resp = append(resp, 0)
		}
		resp = binary.BigEndian.AppendUint32(resp, uint32(len(out.sends)))
		for _, s := range out.sends {
			data, err := codec.Encode(s.Msg)
			if err != nil {
				return fmt.Errorf("encode outbox: %w", err)
			}
			resp = binary.BigEndian.AppendUint32(resp, uint32(s.From)) // destination
			resp = binary.BigEndian.AppendUint32(resp, uint32(len(data)))
			resp = append(resp, data...)
		}
		if _, err := conn.Write(resp); err != nil {
			return err
		}
		if nodeDone {
			return nil
		}
	}
}
