package congest

import (
	"encoding/binary"
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
	"time"
)

// intCodec moves intMsg values as 8-byte frames.
type intCodec struct{}

func (intCodec) Encode(m Message) ([]byte, error) {
	v, ok := m.(intMsg)
	if !ok {
		return nil, fmt.Errorf("intCodec: unexpected %T", m)
	}
	var buf [8]byte
	binary.BigEndian.PutUint64(buf[:], uint64(v))
	return buf[:], nil
}

func (intCodec) Decode(data []byte) (Message, error) {
	if len(data) != 8 {
		return nil, fmt.Errorf("intCodec: bad length %d", len(data))
	}
	return intMsg(binary.BigEndian.Uint64(data)), nil
}

// flakyCodec fails every Decode after the first failAfter successes,
// simulating corruption mid-round.
type flakyCodec struct {
	intCodec
	failAfter int64
	decodes   atomic.Int64
}

var errFlaky = errors.New("flaky codec: simulated corruption")

func (c *flakyCodec) Decode(data []byte) (Message, error) {
	if c.decodes.Add(1) > c.failAfter {
		return nil, errFlaky
	}
	return c.intCodec.Decode(data)
}

// waitGoroutinesBack polls until the goroutine count returns to (about) the
// pre-test level; engine goroutines that outlive Run are leaks.
func waitGoroutinesBack(t *testing.T, before int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC() // nudge parked network goroutines
		now := runtime.NumGoroutine()
		if now <= before {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutines leaked: %d before, %d after\n%s", before, now, buf[:n])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestNetEngineRunsBFS(t *testing.T) {
	const n = 8
	nw, nodes := buildPath(n)
	m, err := NetEngine{Codec: intCodec{}}.Run(nw, Options{Validate: true})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	for i, node := range nodes {
		if node.dist != int64(i) {
			t.Errorf("node %d dist = %d, want %d", i, node.dist, i)
		}
	}
	if m.WireBytes == 0 {
		t.Error("WireBytes not recorded")
	}
}

// TestNetEngineDrainsGoroutinesOnCodecError is the regression test for the
// listener/node-goroutine leak: a codec error mid-round must close every
// connection and drain all node goroutines before Run returns to its
// caller's test, even with nodes parked mid-read.
func TestNetEngineDrainsGoroutinesOnCodecError(t *testing.T) {
	before := runtime.NumGoroutine()
	for _, failAfter := range []int64{0, 1, 5, 20} {
		const n = 10
		nw, _ := buildPath(n)
		codec := &flakyCodec{failAfter: failAfter}
		_, err := NetEngine{Codec: codec}.Run(nw, Options{Validate: true})
		if err == nil {
			t.Fatalf("failAfter=%d: expected codec error, got nil", failAfter)
		}
	}
	waitGoroutinesBack(t, before)
}

// TestNetEngineNoLeakOnSuccess asserts the success path also leaves no
// engine goroutines behind.
func TestNetEngineNoLeakOnSuccess(t *testing.T) {
	before := runtime.NumGoroutine()
	for i := 0; i < 3; i++ {
		nw, _ := buildPath(6)
		if _, err := (NetEngine{Codec: intCodec{}}).Run(nw, Options{}); err != nil {
			t.Fatalf("Run: %v", err)
		}
	}
	waitGoroutinesBack(t, before)
}

// TestNetEngineRoundLimitDrains covers the round-limit error path, which
// exits while every node is still connected and mid-protocol.
func TestNetEngineRoundLimitDrains(t *testing.T) {
	before := runtime.NumGoroutine()
	nw := NewNetwork()
	a := nw.AddNode(&chattyNode{peer: 1})
	b := nw.AddNode(&chattyNode{peer: 0})
	nw.MustConnect(a, b)
	_, err := NetEngine{Codec: intCodec{}}.Run(nw, Options{MaxRounds: 4})
	if !errors.Is(err, ErrRoundLimit) {
		t.Fatalf("err = %v, want ErrRoundLimit", err)
	}
	waitGoroutinesBack(t, before)
}

// chattyNode pings its peer forever.
type chattyNode struct{ peer NodeID }

func (c *chattyNode) Step(round int, _ []Envelope, out *Outbox) bool {
	out.Send(c.peer, intMsg(int64(round)))
	return false
}
