package congest

import (
	"fmt"
	"sync"
)

// ParallelEngine runs every node as its own goroutine; the coordinator
// distributes inboxes over per-node channels, waits on the round barrier,
// and merges outboxes in node-id order so results are identical to
// SequentialEngine (verified by tests).
type ParallelEngine struct{}

var _ Engine = ParallelEngine{}

type stepReq struct {
	round int
	inbox []Envelope
}

type stepRes struct {
	out  Outbox
	done bool
}

// Run implements Engine.
func (ParallelEngine) Run(nw *Network, opts Options) (Metrics, error) {
	maxRounds := opts.MaxRounds
	if maxRounds <= 0 {
		maxRounds = DefaultMaxRounds
	}
	n := nw.NumNodes()
	var (
		metrics Metrics
		inboxes = make([][]Envelope, n)
		next    = make([][]Envelope, n)
		done    = make([]bool, n)
		remain  = n
		reqs    = make([]chan stepReq, n)
		ress    = make([]chan stepRes, n)
		wg      sync.WaitGroup
	)
	for id := 0; id < n; id++ {
		reqs[id] = make(chan stepReq)
		ress[id] = make(chan stepRes, 1)
		wg.Add(1)
		go func(id int, node Node) {
			defer wg.Done()
			for req := range reqs[id] {
				var res stepRes
				res.done = node.Step(req.round, req.inbox, &res.out)
				ress[id] <- res
			}
		}(id, nw.nodes[id])
	}
	stop := func() {
		for _, ch := range reqs {
			close(ch)
		}
		wg.Wait()
	}
	defer stop()

	results := make([]*stepRes, n)
	for round := 0; remain > 0; round++ {
		if round >= maxRounds {
			return metrics, fmt.Errorf("%w: %d rounds, %d nodes still active",
				ErrRoundLimit, maxRounds, remain)
		}
		metrics.Rounds = round + 1
		// Fan out: every active node computes its step concurrently.
		for id := 0; id < n; id++ {
			if done[id] {
				continue
			}
			inbox := inboxes[id]
			inboxes[id] = nil
			sortInbox(inbox)
			reqs[id] <- stepReq{round: round, inbox: inbox}
		}
		// Barrier: collect all results, then deliver in id order for
		// determinism.
		for id := 0; id < n; id++ {
			if done[id] {
				results[id] = nil
				continue
			}
			res := <-ress[id]
			results[id] = &res
		}
		var roundMsgs int64
		for id := 0; id < n; id++ {
			res := results[id]
			if res == nil {
				continue
			}
			if err := deliver(nw, NodeID(id), &res.out, next, done, opts, &metrics, &roundMsgs); err != nil {
				return metrics, err
			}
		}
		for id := 0; id < n; id++ {
			if results[id] != nil && results[id].done {
				done[id] = true
				remain--
			}
		}
		if roundMsgs > metrics.MaxRoundMessages {
			metrics.MaxRoundMessages = roundMsgs
		}
		inboxes, next = next, inboxes
	}
	return metrics, nil
}
