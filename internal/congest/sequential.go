package congest

import (
	"fmt"
	"sort"
)

// SequentialEngine executes all nodes in id order within each round. Runs
// are fully deterministic and this is the reference implementation the
// other engines are verified against.
//
// Delivery uses the same flat counting-sort mailboxes as ShardedEngine
// (it is that engine with a single shard and no workers): every round the
// sends of all nodes are collected in ascending sender order, validated
// with one reused duplicate-detection map, and routed into a reusable
// envelope arena by a stable counting sort keyed on the destination. Each
// inbox therefore comes out sorted by sender with no per-round sort and no
// per-node allocation. Like the sharded engine, inbox slices alias the
// arena and are only valid for the duration of Step.
type SequentialEngine struct{}

var _ Engine = SequentialEngine{}

// Run implements Engine.
func (SequentialEngine) Run(nw *Network, opts Options) (Metrics, error) {
	maxRounds := opts.MaxRounds
	if maxRounds <= 0 {
		maxRounds = DefaultMaxRounds
	}
	n := nw.NumNodes()
	var metrics Metrics
	if n == 0 {
		return metrics, nil
	}
	var (
		remain   = n
		done     = make([]bool, n)
		stepDone = make([]bool, n)
		sends    []send     // this round's messages, ascending sender
		arena    []Envelope // current inboxes: node id's is arena[start[id]:start[id+1]]
		next     []Envelope // reused backing for the following round
		start    = make([]int32, n+1)
		counts   = make([]int32, n)
		pos      = make([]int32, n+1)
		seen     map[NodeID]bool // duplicate-send detection, reused across rounds
		out      Outbox
	)
	for round := 0; remain > 0; round++ {
		if round >= maxRounds {
			return metrics, fmt.Errorf("%w: %d rounds, %d nodes still active",
				ErrRoundLimit, maxRounds, remain)
		}
		metrics.Rounds = round + 1

		// Step phase: every active node in ascending id order.
		sends = sends[:0]
		for id := 0; id < n; id++ {
			if done[id] {
				continue
			}
			out.sends = out.sends[:0]
			stepDone[id] = nw.nodes[id].Step(round, arena[start[id]:start[id+1]], &out)
			for _, e := range out.sends {
				sends = append(sends, send{from: NodeID(id), to: e.From, msg: e.Msg})
			}
		}

		// Merge phase: validate, account metrics, count per destination.
		if opts.Validate {
			if seen == nil {
				seen = make(map[NodeID]bool)
			}
			if err := validateSends(nw, sends, seen); err != nil {
				return metrics, err
			}
		}
		var roundMsgs, total int64
		for i := range counts {
			counts[i] = 0
		}
		for _, s := range sends {
			if !nw.valid(s.to) {
				return metrics, fmt.Errorf("%w: node %d -> %d", ErrNotNeighbor, s.from, s.to)
			}
			b := s.msg.Bits()
			if opts.BitBudget > 0 && b > opts.BitBudget {
				return metrics, fmt.Errorf("%w: %d bits > budget %d (node %d -> %d, %T)",
					ErrMessageTooLarge, b, opts.BitBudget, s.from, s.to, s.msg)
			}
			metrics.Messages++
			roundMsgs++
			metrics.TotalBits += int64(b)
			if b > metrics.MaxMessageBits {
				metrics.MaxMessageBits = b
			}
			if done[s.to] || stepDone[s.to] {
				continue // receiver already decided; message dropped
			}
			counts[s.to]++
			total++
		}
		if roundMsgs > metrics.MaxRoundMessages {
			metrics.MaxRoundMessages = roundMsgs
		}

		// Build the next arena with a stable counting sort by destination;
		// senders were visited ascending, so every inbox is sender-sorted.
		if cap(next) < int(total) {
			next = make([]Envelope, total)
		}
		next = next[:total]
		var off int32
		for id := 0; id < n; id++ {
			pos[id] = off
			off += counts[id]
		}
		pos[n] = off
		copy(counts, pos[:n]) // counts now holds the write cursor per node
		for _, s := range sends {
			if done[s.to] || stepDone[s.to] {
				continue
			}
			next[counts[s.to]] = Envelope{From: s.from, Msg: s.msg}
			counts[s.to]++
		}
		clear(sends) // drop Message references before reuse
		arena, next = next, arena
		start, pos = pos, start

		// Commit termination decisions.
		for id := 0; id < n; id++ {
			if !done[id] && stepDone[id] {
				done[id] = true
				remain--
			}
		}
	}
	return metrics, nil
}

// deliver validates and moves one node's outbox into the next-round inboxes
// (used by the goroutine-per-node parallel engine, which delivers outboxes
// as they are collected).
func deliver(nw *Network, from NodeID, out *Outbox, next [][]Envelope,
	done []bool, opts Options, metrics *Metrics, roundMsgs *int64) error {
	if opts.Validate && len(out.sends) > 1 {
		seen := make(map[NodeID]bool, len(out.sends))
		for _, s := range out.sends {
			if seen[s.From] {
				return fmt.Errorf("%w: node %d -> %d", ErrDuplicateSend, from, s.From)
			}
			seen[s.From] = true
		}
	}
	for _, s := range out.sends {
		to := s.From // Outbox.Send stores the destination in From
		if !nw.valid(to) {
			return fmt.Errorf("%w: node %d -> %d", ErrNotNeighbor, from, to)
		}
		if opts.Validate && !isNeighbor(nw, from, to) {
			return fmt.Errorf("%w: node %d -> %d", ErrNotNeighbor, from, to)
		}
		b := s.Msg.Bits()
		if opts.BitBudget > 0 && b > opts.BitBudget {
			return fmt.Errorf("%w: %d bits > budget %d (node %d -> %d, %T)",
				ErrMessageTooLarge, b, opts.BitBudget, from, to, s.Msg)
		}
		metrics.Messages++
		*roundMsgs++
		metrics.TotalBits += int64(b)
		if b > metrics.MaxMessageBits {
			metrics.MaxMessageBits = b
		}
		if done[to] {
			continue // receiver already decided; message dropped
		}
		next[to] = append(next[to], Envelope{From: from, Msg: s.Msg})
	}
	return nil
}

func isNeighbor(nw *Network, a, b NodeID) bool {
	// Scan the smaller adjacency list.
	la, lb := nw.adj[a], nw.adj[b]
	if len(lb) < len(la) {
		a, b = b, a
		la = nw.adj[a]
	}
	for _, x := range la {
		if x == b {
			return true
		}
	}
	return false
}

func sortInbox(in []Envelope) {
	if len(in) > 1 {
		sort.Slice(in, func(i, j int) bool { return in[i].From < in[j].From })
	}
}
