package congest

import (
	"fmt"
	"sort"
)

// SequentialEngine executes all nodes in id order within each round. Runs
// are fully deterministic: inboxes are sorted by sender id before delivery.
type SequentialEngine struct{}

var _ Engine = SequentialEngine{}

// Run implements Engine.
func (SequentialEngine) Run(nw *Network, opts Options) (Metrics, error) {
	maxRounds := opts.MaxRounds
	if maxRounds <= 0 {
		maxRounds = DefaultMaxRounds
	}
	n := nw.NumNodes()
	var (
		metrics Metrics
		inboxes = make([][]Envelope, n)
		next    = make([][]Envelope, n)
		done    = make([]bool, n)
		remain  = n
	)
	var out Outbox
	for round := 0; remain > 0; round++ {
		if round >= maxRounds {
			return metrics, fmt.Errorf("%w: %d rounds, %d nodes still active",
				ErrRoundLimit, maxRounds, remain)
		}
		metrics.Rounds = round + 1
		var roundMsgs int64
		for id := 0; id < n; id++ {
			inbox := inboxes[id]
			inboxes[id] = nil
			if done[id] {
				continue
			}
			sortInbox(inbox)
			out.sends = out.sends[:0]
			nodeDone := nw.nodes[id].Step(round, inbox, &out)
			if err := deliver(nw, NodeID(id), &out, next, done, opts, &metrics, &roundMsgs); err != nil {
				return metrics, err
			}
			if nodeDone {
				done[id] = true
				remain--
			}
		}
		if roundMsgs > metrics.MaxRoundMessages {
			metrics.MaxRoundMessages = roundMsgs
		}
		inboxes, next = next, inboxes
	}
	return metrics, nil
}

// deliver validates and moves one node's outbox into the next-round inboxes.
func deliver(nw *Network, from NodeID, out *Outbox, next [][]Envelope,
	done []bool, opts Options, metrics *Metrics, roundMsgs *int64) error {
	if opts.Validate && len(out.sends) > 1 {
		seen := make(map[NodeID]bool, len(out.sends))
		for _, s := range out.sends {
			if seen[s.From] {
				return fmt.Errorf("%w: node %d -> %d", ErrDuplicateSend, from, s.From)
			}
			seen[s.From] = true
		}
	}
	for _, s := range out.sends {
		to := s.From // Outbox.Send stores the destination in From
		if !nw.valid(to) {
			return fmt.Errorf("%w: node %d -> %d", ErrNotNeighbor, from, to)
		}
		if opts.Validate && !isNeighbor(nw, from, to) {
			return fmt.Errorf("%w: node %d -> %d", ErrNotNeighbor, from, to)
		}
		b := s.Msg.Bits()
		if opts.BitBudget > 0 && b > opts.BitBudget {
			return fmt.Errorf("%w: %d bits > budget %d (node %d -> %d, %T)",
				ErrMessageTooLarge, b, opts.BitBudget, from, to, s.Msg)
		}
		metrics.Messages++
		*roundMsgs++
		metrics.TotalBits += int64(b)
		if b > metrics.MaxMessageBits {
			metrics.MaxMessageBits = b
		}
		if done[to] {
			continue // receiver already decided; message dropped
		}
		next[to] = append(next[to], Envelope{From: from, Msg: s.Msg})
	}
	return nil
}

func isNeighbor(nw *Network, a, b NodeID) bool {
	// Scan the smaller adjacency list.
	la, lb := nw.adj[a], nw.adj[b]
	if len(lb) < len(la) {
		a, b = b, a
		la = nw.adj[a]
	}
	for _, x := range la {
		if x == b {
			return true
		}
	}
	return false
}

func sortInbox(in []Envelope) {
	if len(in) > 1 {
		sort.Slice(in, func(i, j int) bool { return in[i].From < in[j].From })
	}
}
