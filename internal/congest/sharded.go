package congest

import (
	"fmt"
	"runtime"
	"sync"
)

// ShardedEngine executes the synchronous protocol with a fixed worker pool
// instead of a goroutine per node: the nodes are partitioned into Shards
// contiguous id ranges, each round every shard's active nodes are stepped
// in place by one worker, and the sends of all shards are routed into the
// next round's inboxes by a single counting pass over flat slices. No
// per-node channels exist and no allocation happens per node per round
// (outbox buffers come from a sync.Pool and the mailbox arenas are reused
// across rounds), so the engine sustains million-node networks at a small
// multiple of SequentialEngine's cost while still using every core.
//
// Results are bit-identical to SequentialEngine: within a shard nodes step
// in ascending id order, shard outboxes are merged in shard (= id) order,
// and the counting sort that builds the next round's inboxes is stable, so
// every node receives exactly the inbox — same envelopes, same order — that
// the sequential engine would deliver. The differential tests in this
// package and at the repository root verify this across all engines.
//
// Unlike the other engines, inbox slices handed to Step alias an internal
// arena that is rewritten the following round; nodes must not retain them
// after Step returns (none of the protocols in this repository do).
type ShardedEngine struct {
	// Shards is the number of node partitions (= workers); ≤ 0 means
	// runtime.GOMAXPROCS(0). It is capped at the node count.
	Shards int
}

var _ Engine = ShardedEngine{}

// send is one queued message with explicit endpoints; shard outboxes hold
// these so the merge pass needs no per-node Outbox bookkeeping.
type send struct {
	from, to NodeID
	msg      Message
}

// shardOutbox is the per-shard send buffer; pooled to avoid re-growing a
// fresh slice every round.
type shardOutbox struct {
	sends []send
}

var shardOutboxPool = sync.Pool{New: func() any { return new(shardOutbox) }}

// shardedRun is the per-Run mutable state shared between the coordinator
// and the workers. Workers only touch disjoint node-index ranges plus their
// own shard outbox; the coordinator touches everything between rounds. The
// round-dispatch channel provides the happens-before edges.
type shardedRun struct {
	nw     *Network
	bounds []int // shard s covers node ids [bounds[s], bounds[s+1])

	round    int
	done     []bool // as of the previous round; read-only during steps
	stepDone []bool // written by workers at disjoint indices

	// Current round's inboxes: node id's inbox is arena[start[id]:start[id+1]].
	arena []Envelope
	start []int32

	outboxes []*shardOutbox // one per shard, collected by the coordinator
}

func (r *shardedRun) inboxOf(id int) []Envelope {
	return r.arena[r.start[id]:r.start[id+1]]
}

// stepShard steps every active node of shard s in ascending id order,
// accumulating sends into a pooled buffer.
func (r *shardedRun) stepShard(s int) {
	ob := shardOutboxPool.Get().(*shardOutbox)
	var out Outbox
	for id := r.bounds[s]; id < r.bounds[s+1]; id++ {
		if r.done[id] {
			continue
		}
		out.sends = out.sends[:0]
		r.stepDone[id] = r.nw.nodes[id].Step(r.round, r.inboxOf(id), &out)
		for _, e := range out.sends {
			ob.sends = append(ob.sends, send{from: NodeID(id), to: e.From, msg: e.Msg})
		}
	}
	r.outboxes[s] = ob
}

// validateSends applies the Validate-mode topology rules to one shard's
// sends: every destination must be a neighbor, and no sender may repeat a
// destination within the round. Sends are contiguous per sender (stepShard
// appends them in node order), so seen — reused across calls to avoid
// reallocation — is cleared at each sender-group boundary, exactly the
// per-outbox check deliver() runs for the sequential engine.
func validateSends(nw *Network, sends []send, seen map[NodeID]bool) error {
	for i, s := range sends {
		if i == 0 || sends[i-1].from != s.from {
			clear(seen)
		}
		if seen[s.to] {
			return fmt.Errorf("%w: node %d -> %d", ErrDuplicateSend, s.from, s.to)
		}
		seen[s.to] = true
		if !nw.valid(s.to) || !isNeighbor(nw, s.from, s.to) {
			return fmt.Errorf("%w: node %d -> %d", ErrNotNeighbor, s.from, s.to)
		}
	}
	return nil
}

// Run implements Engine.
func (e ShardedEngine) Run(nw *Network, opts Options) (Metrics, error) {
	maxRounds := opts.MaxRounds
	if maxRounds <= 0 {
		maxRounds = DefaultMaxRounds
	}
	n := nw.NumNodes()
	var metrics Metrics
	if n == 0 {
		return metrics, nil
	}
	p := e.Shards
	if p <= 0 {
		p = runtime.GOMAXPROCS(0)
	}
	if p > n {
		p = n
	}

	st := &shardedRun{
		nw:       nw,
		bounds:   make([]int, p+1),
		done:     make([]bool, n),
		stepDone: make([]bool, n),
		start:    make([]int32, n+1),
		outboxes: make([]*shardOutbox, p),
	}
	for s := 0; s <= p; s++ {
		st.bounds[s] = s * n / p
	}

	// Fixed worker pool, alive for the whole run; the coordinator hands out
	// shard indices each round and waits on the round barrier.
	work := make(chan int)
	var roundWG sync.WaitGroup
	var workerWG sync.WaitGroup
	for w := 0; w < p; w++ {
		workerWG.Add(1)
		go func() {
			defer workerWG.Done()
			for s := range work {
				st.stepShard(s)
				roundWG.Done()
			}
		}()
	}
	defer func() {
		close(work)
		workerWG.Wait()
	}()

	var (
		remain    = n
		nextArena []Envelope // reused backing for the following round's arena
		// int32 offsets keep the routing arrays compact; 2³¹ messages in a
		// single round would need >64 GiB of envelopes long before the
		// counters wrapped.
		counts = make([]int32, n)
		pos    = make([]int32, n+1)
		seen   map[NodeID]bool // duplicate-send detection, Validate only
	)
	for round := 0; remain > 0; round++ {
		if round >= maxRounds {
			return metrics, fmt.Errorf("%w: %d rounds, %d nodes still active",
				ErrRoundLimit, maxRounds, remain)
		}
		metrics.Rounds = round + 1

		// Parallel phase: all shards step their active nodes.
		st.round = round
		roundWG.Add(p)
		for s := 0; s < p; s++ {
			work <- s
		}
		roundWG.Wait()

		// Merge phase (single-threaded, shard = id order, so sends are
		// visited in ascending sender order exactly like SequentialEngine):
		// validate, account metrics, and count messages per destination.
		var roundMsgs, total int64
		for i := range counts {
			counts[i] = 0
		}
		for _, ob := range st.outboxes {
			if opts.Validate {
				if seen == nil {
					seen = make(map[NodeID]bool)
				}
				if err := validateSends(nw, ob.sends, seen); err != nil {
					return metrics, err
				}
			}
			for _, s := range ob.sends {
				if !nw.valid(s.to) {
					return metrics, fmt.Errorf("%w: node %d -> %d", ErrNotNeighbor, s.from, s.to)
				}
				b := s.msg.Bits()
				if opts.BitBudget > 0 && b > opts.BitBudget {
					return metrics, fmt.Errorf("%w: %d bits > budget %d (node %d -> %d, %T)",
						ErrMessageTooLarge, b, opts.BitBudget, s.from, s.to, s.msg)
				}
				metrics.Messages++
				roundMsgs++
				metrics.TotalBits += int64(b)
				if b > metrics.MaxMessageBits {
					metrics.MaxMessageBits = b
				}
				if st.done[s.to] {
					continue // receiver already decided; message dropped
				}
				counts[s.to]++
				total++
			}
		}
		if roundMsgs > metrics.MaxRoundMessages {
			metrics.MaxRoundMessages = roundMsgs
		}

		// Build the next arena with a stable counting sort by destination.
		// Senders are visited in ascending order, so every inbox comes out
		// sorted by sender — the order sortInbox would have produced.
		if cap(nextArena) < int(total) {
			nextArena = make([]Envelope, total)
		}
		nextArena = nextArena[:total]
		var off int32
		for id := 0; id < n; id++ {
			pos[id] = off
			off += counts[id]
		}
		pos[n] = off
		copy(counts, pos[:n]) // counts now holds the write cursor per node
		for _, ob := range st.outboxes {
			for _, s := range ob.sends {
				if st.done[s.to] {
					continue
				}
				nextArena[counts[s.to]] = Envelope{From: s.from, Msg: s.msg}
				counts[s.to]++
			}
		}

		// Recycle shard outboxes and swap mailboxes.
		for s, ob := range st.outboxes {
			clear(ob.sends) // drop Message references before pooling
			ob.sends = ob.sends[:0]
			shardOutboxPool.Put(ob)
			st.outboxes[s] = nil
		}
		st.arena, nextArena = nextArena, st.arena
		st.start, pos = pos, st.start

		// Commit termination decisions.
		for id := 0; id < n; id++ {
			if !st.done[id] && st.stepDone[id] {
				st.done[id] = true
				remain--
			}
		}
	}
	return metrics, nil
}
