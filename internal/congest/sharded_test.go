package congest

import (
	"math/rand"
	"reflect"
	"testing"
)

// gossipNode floods the max of all ids it has heard for k rounds, then
// terminates. Unlike bfsNode it keeps every link busy every round, which
// exercises the sharded engine's mailbox routing under full load, including
// nodes that terminate at different times (staggered by id).
type gossipNode struct {
	id        NodeID
	neighbors []NodeID
	best      int64
	rounds    int
}

func (g *gossipNode) Step(round int, inbox []Envelope, out *Outbox) bool {
	for _, env := range inbox {
		if v := int64(env.Msg.(intMsg)); v > g.best {
			g.best = v
		}
	}
	if round >= g.rounds+int(g.id)%3 {
		return true // staggered termination: some peers outlive others
	}
	for _, nb := range g.neighbors {
		out.Send(nb, intMsg(g.best))
	}
	return false
}

func buildGossip(n, extra int, seed int64, rounds int) (*Network, []*gossipNode) {
	rng := rand.New(rand.NewSource(seed))
	nw := NewNetwork()
	nodes := make([]*gossipNode, n)
	for i := 0; i < n; i++ {
		nodes[i] = &gossipNode{id: NodeID(i), best: int64(i), rounds: rounds}
		nw.AddNode(nodes[i])
	}
	connect := func(a, b int) {
		if a == b || nw.Connect(NodeID(a), NodeID(b)) != nil {
			return
		}
		nodes[a].neighbors = append(nodes[a].neighbors, NodeID(b))
		nodes[b].neighbors = append(nodes[b].neighbors, NodeID(a))
	}
	for i := 1; i < n; i++ {
		connect(rng.Intn(i), i)
	}
	for k := 0; k < extra; k++ {
		connect(rng.Intn(n), rng.Intn(n))
	}
	return nw, nodes
}

// TestShardedMatchesSequential is the engine's core differential test: for
// a spread of network sizes and shard counts, the sharded engine must
// reproduce the sequential engine's metrics and node end states exactly.
func TestShardedMatchesSequential(t *testing.T) {
	for _, n := range []int{1, 2, 7, 33, 128, 500} {
		for _, shards := range []int{1, 2, 3, 8, 1000} {
			nwS, nodesS := buildGossip(n, n, int64(n), 4)
			mS, errS := SequentialEngine{}.Run(nwS, Options{Validate: true})
			if errS != nil {
				t.Fatalf("sequential n=%d: %v", n, errS)
			}
			nwH, nodesH := buildGossip(n, n, int64(n), 4)
			mH, errH := ShardedEngine{Shards: shards}.Run(nwH, Options{Validate: true})
			if errH != nil {
				t.Fatalf("sharded n=%d shards=%d: %v", n, shards, errH)
			}
			if !reflect.DeepEqual(mS, mH) {
				t.Errorf("n=%d shards=%d metrics differ:\nseq  %+v\nshard %+v", n, shards, mS, mH)
			}
			for i := range nodesS {
				if nodesS[i].best != nodesH[i].best {
					t.Errorf("n=%d shards=%d node %d state %d != %d",
						n, shards, i, nodesH[i].best, nodesS[i].best)
				}
			}
		}
	}
}

// TestShardedInboxSortedBySender checks the counting-sort mailbox property
// directly: inboxes arrive sorted by sender id without any sort call.
func TestShardedInboxSortedBySender(t *testing.T) {
	const n = 40
	nw := NewNetwork()
	check := &orderCheckNode{}
	hub := nw.AddNode(check)
	for i := 1; i < n; i++ {
		id := nw.AddNode(&pingNode{peer: hub})
		nw.MustConnect(hub, id)
	}
	if _, err := (ShardedEngine{Shards: 7}).Run(nw, Options{Validate: true}); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !check.sawInbox {
		t.Fatal("hub never received messages")
	}
}

// pingNode sends one message to its peer in round 0 and terminates.
type pingNode struct{ peer NodeID }

func (p *pingNode) Step(round int, _ []Envelope, out *Outbox) bool {
	if round == 0 {
		out.Send(p.peer, intMsg(1))
	}
	return true
}

// orderCheckNode asserts its inbox is sorted by sender id.
type orderCheckNode struct{ sawInbox bool }

func (o *orderCheckNode) Step(round int, inbox []Envelope, _ *Outbox) bool {
	if len(inbox) > 0 {
		o.sawInbox = true
		for i := 1; i < len(inbox); i++ {
			if inbox[i-1].From >= inbox[i].From {
				panic("inbox not strictly sorted by sender")
			}
		}
	}
	return round >= 1
}

// TestShardedValidationErrors mirrors the sequential engine's validation
// errors under sharded execution with multiple senders per round.
func TestShardedValidationErrors(t *testing.T) {
	nw := NewNetwork()
	a := nw.AddNode(doubleSender{peer: 1})
	b := nw.AddNode(sink{})
	nw.MustConnect(a, b)
	if _, err := (ShardedEngine{Shards: 2}).Run(nw, Options{Validate: true}); err == nil {
		t.Error("duplicate send not rejected")
	}
}

func BenchmarkShardedVsOthersSmall(b *testing.B) {
	for name, eng := range engines() {
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				nw, _ := buildGossip(2000, 4000, 7, 6)
				if _, err := eng.Run(nw, Options{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
