package core

import (
	"sync"

	"distcover/internal/hypergraph"
)

// This file implements the arena-backed solver state the float64 runners
// (the sequential lockstep simulator and the chunk-parallel flat runner)
// allocate from. The ~20 per-vertex and per-edge slices of state plus the
// flat runner's scratch (addE, newly, frontier lists) are carved out of
// three element-typed slabs held by a pooled floatSolver, so a warm solve
// performs no per-field allocations and the GC never sees the inner loop.
// The pool is shared by one-shot solves and Session residual re-solves: a
// session applying delta batches reuses the same slabs across updates.
//
// Pooled memory is reused, not implicitly zeroed, so every carve either
// declares that the runner fully initializes the slice before reading it
// (floats, uncovDeg, frontier lists) or asks for an explicit clear (flags
// and counters whose zero value is load-bearing). Results never alias the
// slabs: state.fill copies everything it exports, which is what makes
// releasing the solver before returning safe.
//
// The exact-arithmetic path keeps plain make-based state (newState):
// big.Rat runs are allocation-bound in the rationals themselves, and the
// slab layout only fits fixed-size elements.

// solveArena holds the backing slabs, one per element size/type, and
// carves typed slices off them sequentially.
type solveArena struct {
	floats     []float64
	ints       []int
	bools      []bool
	nf, ni, nb int
}

// reset prepares the arena for a run needing the given element counts,
// growing each slab only when the capacity from earlier runs is too small.
func (a *solveArena) reset(nf, ni, nb int) {
	if cap(a.floats) < nf {
		a.floats = make([]float64, nf)
	}
	if cap(a.ints) < ni {
		a.ints = make([]int, ni)
	}
	if cap(a.bools) < nb {
		a.bools = make([]bool, nb)
	}
	a.nf, a.ni, a.nb = 0, 0, 0
}

// f64 carves a float slice the caller fully initializes before reading
// (stale values from earlier runs are never observed). The three-index cap
// keeps appends from bleeding into the neighboring carve.
func (a *solveArena) f64(n int) []float64 {
	s := a.floats[a.nf : a.nf+n : a.nf+n]
	a.nf += n
	return s
}

// intsRaw carves an int slice the caller fully initializes.
func (a *solveArena) intsRaw(n int) []int {
	s := a.ints[a.ni : a.ni+n : a.ni+n]
	a.ni += n
	return s
}

// intsZero carves an int slice cleared to zero.
func (a *solveArena) intsZero(n int) []int {
	s := a.intsRaw(n)
	clear(s)
	return s
}

// boolsZero carves a bool slice cleared to false.
func (a *solveArena) boolsZero(n int) []bool {
	s := a.bools[a.nb : a.nb+n : a.nb+n]
	a.nb += n
	clear(s)
	return s
}

// floatSolver bundles the solver state, the flat runner's scaffolding and
// the arena they are carved from into one pooled allocation.
type floatSolver struct {
	st    state[float64]
	run   flatRun
	arena solveArena
}

var floatSolverPool = sync.Pool{New: func() any { return new(floatSolver) }}

// initState carves a fresh state for g out of the arena. With flat set it
// additionally reserves the flat runner's per-edge scratch and frontier
// lists (carved by runLockstepFlat after this returns).
func (s *floatSolver) initState(g *hypergraph.Hypergraph, opts Options, flat bool) *state[float64] {
	n, m := g.NumVertices(), g.NumEdges()
	nf := 3*m + 5*n
	ni := 6*n + m
	nb := m + 6*n
	if flat {
		nf += m     // addE
		ni += n + m // activeV, liveE
		nb += m     // newly
	}
	s.arena.reset(nf, ni, nb)
	a := &s.arena
	num := floatNumeric{}
	f := g.Rank()
	s.st = state[float64]{
		num:  num,
		g:    g,
		opts: opts,

		bid:     a.f64(m),
		delta:   a.f64(m),
		covered: a.boolsZero(m),
		alphaE:  a.f64(m),

		level:     a.intsZero(n),
		sumDelta:  a.f64(n),
		sumBid:    a.f64(n),
		alphaV:    a.f64(n),
		inCover:   a.boolsZero(n),
		doneV:     a.boolsZero(n),
		uncovDeg:  a.intsRaw(n), // written for every vertex in iteration 0
		inc:       a.intsZero(n),
		raise:     a.boolsZero(n),
		joined:    a.boolsZero(n),
		raises:    a.intsZero(m),
		stuckCur:  a.intsZero(n),
		stuckMax:  a.intsZero(n),
		wT:        a.f64(n),
		fWT:       a.f64(n),
		fPlusEps:  num.Add(num.FromRatio(int64(maxInt(f, 1)), 1), num.FromFloat(opts.Epsilon)),
		uncovered: m,
	}
	return &s.st
}

// release drops the references that would pin caller memory (the
// hypergraph, the options' tracer) and returns the solver — slabs intact —
// to the pool. Callers must not touch state slices after this.
func (s *floatSolver) release() {
	s.st.g = nil
	s.st.opts = Options{}
	s.run.st = nil
	floatSolverPool.Put(s)
}

// runLockstepFloat is the pooled float64 form of runLockstep: the default
// production path of Run and RunResidual. Bit-identical to a make-based
// run — the arena only changes where the slices live.
func runLockstepFloat(g *hypergraph.Hypergraph, opts Options, carry []float64) (*Result, error) {
	s := floatSolverPool.Get().(*floatSolver)
	st := s.initState(g, opts, false)
	res, err := runLockstepOn(st, carry)
	s.release()
	return res, err
}
