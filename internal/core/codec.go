package core

import (
	"encoding/binary"
	"errors"
	"fmt"

	"distcover/internal/congest"
)

// WireCodec is the binary wire format of the Appendix B protocol messages,
// used by congest.NetEngine to move real bytes over TCP: one tag byte plus
// unsigned varints for the integer fields and a flag byte for booleans.
// Encoded sizes track the Bits() accounting within the varint byte
// rounding, which the conformance tests verify.
type WireCodec struct{}

var _ congest.Codec = WireCodec{}

// Message tags.
const (
	tagVertexInfo byte = iota + 1
	tagEdgeInit
	tagVertexUpdate
	tagVertexCovered
	tagEdgeUpdate
	tagEdgeCovered
	tagVertexInfoRes
	tagEdgeInitRes
)

// ErrBadWireMessage reports a frame that does not decode.
var ErrBadWireMessage = errors.New("core: malformed wire message")

// Encode implements congest.Codec.
func (WireCodec) Encode(m congest.Message) ([]byte, error) {
	switch msg := m.(type) {
	case msgVertexInfo:
		buf := []byte{tagVertexInfo}
		buf = binary.AppendUvarint(buf, uint64(msg.w))
		buf = binary.AppendUvarint(buf, uint64(msg.deg))
		return buf, nil
	case msgEdgeInit:
		buf := []byte{tagEdgeInit}
		buf = binary.AppendUvarint(buf, uint64(msg.wMin))
		buf = binary.AppendUvarint(buf, uint64(msg.degMin))
		buf = binary.AppendUvarint(buf, uint64(msg.localDelta))
		return buf, nil
	case msgVertexUpdate:
		buf := []byte{tagVertexUpdate}
		buf = binary.AppendUvarint(buf, uint64(msg.inc))
		buf = append(buf, boolByte(msg.raise))
		return buf, nil
	case msgVertexCovered:
		return []byte{tagVertexCovered}, nil
	case msgEdgeUpdate:
		buf := []byte{tagEdgeUpdate}
		buf = binary.AppendUvarint(buf, uint64(msg.halvings))
		buf = append(buf, boolByte(msg.raised))
		return buf, nil
	case msgEdgeCovered:
		return []byte{tagEdgeCovered}, nil
	case msgVertexInfoRes:
		buf := []byte{tagVertexInfoRes}
		buf = binary.AppendUvarint(buf, uint64(msg.w))
		buf = binary.AppendUvarint(buf, uint64(msg.deg))
		buf = binary.AppendUvarint(buf, uint64(msg.level))
		return buf, nil
	case msgEdgeInitRes:
		buf := []byte{tagEdgeInitRes}
		buf = binary.AppendUvarint(buf, uint64(msg.wMin))
		buf = binary.AppendUvarint(buf, uint64(msg.degMin))
		buf = binary.AppendUvarint(buf, uint64(msg.levelMin))
		buf = binary.AppendUvarint(buf, uint64(msg.localDelta))
		return buf, nil
	default:
		return nil, fmt.Errorf("core: cannot encode message type %T", m)
	}
}

// Decode implements congest.Codec.
func (WireCodec) Decode(data []byte) (congest.Message, error) {
	if len(data) == 0 {
		return nil, fmt.Errorf("%w: empty", ErrBadWireMessage)
	}
	body := data[1:]
	switch data[0] {
	case tagVertexInfo:
		w, n1 := binary.Uvarint(body)
		if n1 <= 0 {
			return nil, fmt.Errorf("%w: vertexInfo w", ErrBadWireMessage)
		}
		deg, n2 := binary.Uvarint(body[n1:])
		if n2 <= 0 {
			return nil, fmt.Errorf("%w: vertexInfo deg", ErrBadWireMessage)
		}
		return msgVertexInfo{w: int64(w), deg: int64(deg)}, nil
	case tagEdgeInit:
		wMin, n1 := binary.Uvarint(body)
		if n1 <= 0 {
			return nil, fmt.Errorf("%w: edgeInit wMin", ErrBadWireMessage)
		}
		degMin, n2 := binary.Uvarint(body[n1:])
		if n2 <= 0 {
			return nil, fmt.Errorf("%w: edgeInit degMin", ErrBadWireMessage)
		}
		localDelta, n3 := binary.Uvarint(body[n1+n2:])
		if n3 <= 0 {
			return nil, fmt.Errorf("%w: edgeInit localDelta", ErrBadWireMessage)
		}
		return msgEdgeInit{wMin: int64(wMin), degMin: int64(degMin), localDelta: int64(localDelta)}, nil
	case tagVertexUpdate:
		inc, n1 := binary.Uvarint(body)
		if n1 <= 0 || len(body) != n1+1 {
			return nil, fmt.Errorf("%w: vertexUpdate", ErrBadWireMessage)
		}
		return msgVertexUpdate{inc: int64(inc), raise: body[n1] == 1}, nil
	case tagVertexCovered:
		return msgVertexCovered{}, nil
	case tagEdgeUpdate:
		halvings, n1 := binary.Uvarint(body)
		if n1 <= 0 || len(body) != n1+1 {
			return nil, fmt.Errorf("%w: edgeUpdate", ErrBadWireMessage)
		}
		return msgEdgeUpdate{halvings: int64(halvings), raised: body[n1] == 1}, nil
	case tagEdgeCovered:
		return msgEdgeCovered{}, nil
	case tagVertexInfoRes:
		fields, err := uvarints(body, 3, "vertexInfoRes")
		if err != nil {
			return nil, err
		}
		return msgVertexInfoRes{w: fields[0], deg: fields[1], level: fields[2]}, nil
	case tagEdgeInitRes:
		fields, err := uvarints(body, 4, "edgeInitRes")
		if err != nil {
			return nil, err
		}
		return msgEdgeInitRes{wMin: fields[0], degMin: fields[1], levelMin: fields[2], localDelta: fields[3]}, nil
	default:
		return nil, fmt.Errorf("%w: unknown tag %d", ErrBadWireMessage, data[0])
	}
}

// uvarints decodes exactly want varints from body.
func uvarints(body []byte, want int, what string) ([]int64, error) {
	out := make([]int64, want)
	off := 0
	for i := range out {
		v, n := binary.Uvarint(body[off:])
		if n <= 0 {
			return nil, fmt.Errorf("%w: %s field %d", ErrBadWireMessage, what, i)
		}
		out[i] = int64(v)
		off += n
	}
	return out, nil
}

func boolByte(b bool) byte {
	if b {
		return 1
	}
	return 0
}
