package core

import (
	"testing"
	"testing/quick"

	"distcover/internal/congest"
	"distcover/internal/hypergraph"
)

func TestWireCodecRoundTrip(t *testing.T) {
	codec := WireCodec{}
	msgs := []congest.Message{
		msgVertexInfo{w: 12345, deg: 7},
		msgVertexInfo{w: 1, deg: 1},
		msgEdgeInit{wMin: 1 << 40, degMin: 3, localDelta: 999},
		msgVertexUpdate{inc: 0, raise: true},
		msgVertexUpdate{inc: 5, raise: false},
		msgVertexCovered{},
		msgEdgeUpdate{halvings: 9, raised: true},
		msgEdgeCovered{},
	}
	for _, m := range msgs {
		data, err := codec.Encode(m)
		if err != nil {
			t.Fatalf("Encode(%#v): %v", m, err)
		}
		back, err := codec.Decode(data)
		if err != nil {
			t.Fatalf("Decode(%#v): %v", m, err)
		}
		if back != m {
			t.Errorf("round trip changed %#v -> %#v", m, back)
		}
		// Encoded size must track the Bits() accounting: varint byte
		// rounding plus one tag byte.
		maxBytes := m.Bits()/8 + 3
		if len(data) > maxBytes {
			t.Errorf("%#v encodes to %d bytes, accounting allows ~%d", m, len(data), maxBytes)
		}
	}
}

func TestWireCodecRoundTripProperty(t *testing.T) {
	codec := WireCodec{}
	prop := func(w, deg uint32, inc uint8, raise bool) bool {
		m1 := msgVertexInfo{w: int64(w) + 1, deg: int64(deg) + 1}
		m2 := msgVertexUpdate{inc: int64(inc), raise: raise}
		for _, m := range []congest.Message{m1, m2} {
			data, err := codec.Encode(m)
			if err != nil {
				return false
			}
			back, err := codec.Decode(data)
			if err != nil || back != m {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestWireCodecRejectsGarbage(t *testing.T) {
	codec := WireCodec{}
	for _, data := range [][]byte{nil, {}, {99}, {tagVertexInfo}, {tagVertexUpdate, 0x80}} {
		if _, err := codec.Decode(data); err == nil {
			t.Errorf("Decode(%v) succeeded", data)
		}
	}
	if _, err := codec.Encode(nil); err == nil {
		t.Error("Encode(nil) succeeded")
	}
}

// TestNetEngineMatchesSequential runs the full protocol over real TCP
// loopback connections and asserts the result is identical to the
// in-memory engines.
func TestNetEngineMatchesSequential(t *testing.T) {
	g, err := hypergraph.UniformRandom(25, 45, 3, hypergraph.GenConfig{
		Seed: 17, Dist: hypergraph.WeightUniformRange, MaxWeight: 40,
	})
	if err != nil {
		t.Fatal(err)
	}
	seqRes, seqM, err := RunCongest(g, DefaultOptions(), congest.SequentialEngine{}, congest.Options{Validate: true})
	if err != nil {
		t.Fatal(err)
	}
	netRes, netM, err := RunCongest(g, DefaultOptions(), congest.NetEngine{Codec: WireCodec{}}, congest.Options{Validate: true})
	if err != nil {
		t.Fatalf("net engine: %v", err)
	}
	requireSameResult(t, seqRes, netRes)
	if netM.Rounds != seqM.Rounds || netM.Messages != seqM.Messages || netM.TotalBits != seqM.TotalBits {
		t.Errorf("metrics differ: net %+v vs seq %+v", netM, seqM)
	}
	if netM.WireBytes == 0 {
		t.Error("WireBytes not recorded")
	}
	// Wire bytes must be within the framing overhead of the bit accounting:
	// each message costs ≤ bits/8 + tag + 8-byte header, counted twice
	// (coordinator->node and node->coordinator), plus round frames.
	maxWire := 2*(netM.TotalBits/8+12*netM.Messages) + int64(netM.Rounds)*int64(g.NumVertices()+g.NumEdges())*16
	if netM.WireBytes > maxWire {
		t.Errorf("WireBytes = %d exceeds accounting envelope %d", netM.WireBytes, maxWire)
	}
}

func TestNetEngineRequiresCodec(t *testing.T) {
	g := hypergraph.MustNew([]int64{1, 1}, [][]hypergraph.VertexID{{0, 1}})
	_, _, err := RunCongest(g, DefaultOptions(), congest.NetEngine{}, congest.Options{})
	if err == nil {
		t.Error("NetEngine without codec succeeded")
	}
}

func TestNetEngineEmptyNetwork(t *testing.T) {
	m, err := congest.NetEngine{Codec: WireCodec{}}.Run(congest.NewNetwork(), congest.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if m.Rounds != 0 {
		t.Errorf("rounds = %d, want 0", m.Rounds)
	}
}
