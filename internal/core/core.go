// Package core implements Algorithm MWHVC from Ben-Basat, Even,
// Kawarabayashi and Schwartzman, "Optimal Distributed Covering Algorithms"
// (PODC 2019): a deterministic distributed (f+ε)-approximation for Minimum
// Weight Hypergraph Vertex Cover in the CONGEST model whose round complexity
// is independent of the vertex weights and the number of vertices.
//
// The algorithm is primal-dual. Every hyperedge e carries a dual variable
// δ(e), increased in every iteration by an increment bid(e). A vertex whose
// incident duals reach a (1-β) fraction of its weight (β = ε/(f+ε)) is
// β-tight and joins the cover. Vertices track a level
// ℓ(v) = ⌊log w(v)/(w(v) - Σ_{e∋v} δ(e))⌋ — the logarithm of the uncovered
// fraction — and every level increment halves the bids of incident edges.
// An edge whose vertices all report "raise" multiplies its bid by α ≥ 2;
// a vertex reports raise when its pending bids are at most a 1/α fraction
// of its remaining slack at the current level. Theorem 8 bounds iterations
// by O(log_α Δ + f·log(f/ε)·α); Theorem 9's choice of α makes this
// O(logΔ/loglogΔ) for constant f and ε, matching the lower bound of Kuhn,
// Moscibroda and Wattenhofer.
//
// Two execution paths share one semantics:
//
//   - Run executes a fast lockstep simulation directly over the hypergraph
//     (used by benchmarks and large experiments).
//   - RunCongest builds the bipartite vertex/edge CONGEST network of
//     Section 2 and executes the message protocol of Appendix B with
//     O(log n)-bit messages on a congest.Engine.
//
// Tests verify that both paths produce identical covers, duals and
// iteration counts, that the invariants of Claims 1, 2 and 4 hold, and that
// the cover weight never exceeds (f+ε) times the dual lower bound
// (Corollary 3).
package core

import (
	"errors"
	"fmt"
	"math"

	"distcover/internal/hypergraph"
	"distcover/internal/telemetry"
)

// Variant selects which version of the algorithm runs.
type Variant int

// Algorithm variants.
const (
	// VariantDefault is Algorithm MWHVC as in Section 3.2: δ(e) += bid(e).
	VariantDefault Variant = iota + 1
	// VariantSingleLevel is the Appendix C modification: δ(e) += bid(e)/2,
	// guaranteeing each vertex's level increases at most once per iteration
	// (Corollary 21) at the cost of at most doubling the number of stuck
	// iterations (Lemma 22).
	VariantSingleLevel
)

func (v Variant) String() string {
	switch v {
	case VariantDefault:
		return "default"
	case VariantSingleLevel:
		return "single-level"
	default:
		return fmt.Sprintf("Variant(%d)", int(v))
	}
}

// AlphaPolicy selects how the bid multiplier α is chosen.
type AlphaPolicy int

// Alpha policies.
const (
	// AlphaTheorem9 sets a global α from Δ, f and ε as in Theorem 9.
	AlphaTheorem9 AlphaPolicy = iota + 1
	// AlphaLocal sets α(e) per edge from the local maximum degree
	// Δ(e) = max_{v∈e} |E(v)| (remark before Theorem 9). A vertex uses
	// max_{e∈E'(v)} α(e) in its raise/stuck test, which keeps the
	// feasibility invariant of Claim 1.
	AlphaLocal
	// AlphaFixed uses Options.FixedAlpha for every edge (ablation runs).
	AlphaFixed
)

func (p AlphaPolicy) String() string {
	switch p {
	case AlphaTheorem9:
		return "theorem9"
	case AlphaLocal:
		return "local"
	case AlphaFixed:
		return "fixed"
	default:
		return fmt.Sprintf("AlphaPolicy(%d)", int(p))
	}
}

// Options configures a run. The zero value is invalid; start from
// DefaultOptions.
type Options struct {
	// Epsilon is the approximation slack ε ∈ (0, 1]: the returned cover
	// weighs at most (f+ε)·OPT. Ignored when FApprox is set.
	Epsilon float64
	// FApprox sets ε = 1/(n·W) so the guarantee becomes a clean
	// f-approximation in O(f·log n) rounds (Corollary 10).
	FApprox bool
	// Variant selects the Section 3.2 or Appendix C algorithm.
	Variant Variant
	// Alpha selects the α policy.
	Alpha AlphaPolicy
	// FixedAlpha is the α used by AlphaFixed; must be ≥ 2.
	FixedAlpha float64
	// Gamma is Theorem 9's constant γ > 0 (default 0.001).
	Gamma float64
	// Exact switches the arithmetic to exact big.Rat rationals. In exact
	// mode α is rounded up to an integer so all quantities stay small
	// rationals; all claims require only α ≥ 2 and are unaffected.
	Exact bool
	// MaxIterations aborts runs that exceed it; ≤ 0 derives a generous
	// bound from Theorem 8.
	MaxIterations int
	// CollectTrace records per-iteration statistics in Result.Trace.
	CollectTrace bool
	// CheckInvariants verifies Claims 1, 2 and 4 after every iteration and
	// aborts with ErrInvariantViolated on failure. Costs O(n+m) per
	// iteration; meant for tests and debugging.
	CheckInvariants bool
	// Tracer receives phase-timing hooks from the runners when non-nil.
	// The nil default is strictly zero-overhead: the hot loops only ever
	// test the field, so the exactly-gated allocation counts are
	// unaffected.
	Tracer telemetry.Tracer
}

// DefaultOptions returns the configuration used throughout the paper's
// headline results: ε = 1, default variant, Theorem 9's α with γ = 0.001.
func DefaultOptions() Options {
	return Options{
		Epsilon: 1,
		Variant: VariantDefault,
		Alpha:   AlphaTheorem9,
		Gamma:   0.001,
	}
}

// Errors returned by runs.
var (
	// ErrBadOptions indicates invalid configuration.
	ErrBadOptions = errors.New("core: invalid options")
	// ErrIterationLimit indicates the run exceeded MaxIterations; this
	// signals a bug (Theorem 8 bounds iterations for valid inputs).
	ErrIterationLimit = errors.New("core: iteration limit exceeded")
)

// IterationStats records one iteration of a traced run.
type IterationStats struct {
	// Iteration is the 1-based iteration index.
	Iteration int
	// Joined is the number of vertices that became β-tight and joined C.
	Joined int
	// CoveredEdges is the number of edges newly covered.
	CoveredEdges int
	// LevelIncrements is the total number of level increments.
	LevelIncrements int
	// MaxLevelIncrement is the largest per-vertex increment (≤ 1 for
	// VariantSingleLevel by Corollary 21).
	MaxLevelIncrement int
	// RaisedEdges is the number of edges that multiplied their bid by α.
	RaisedEdges int
	// StuckVertices is the number of active vertices that reported stuck.
	StuckVertices int
	// ActiveVertices / ActiveEdges count nodes still running after the
	// iteration.
	ActiveVertices int
	ActiveEdges    int
}

// Result is the outcome of a run.
type Result struct {
	// Cover is the computed vertex cover, sorted by vertex id.
	Cover []hypergraph.VertexID
	// InCover is the indicator vector of Cover.
	InCover []bool
	// CoverWeight is w(Cover).
	CoverWeight int64
	// Dual holds the final dual variables δ(e); a feasible edge packing
	// whose value lower-bounds the optimal fractional cover.
	Dual []float64
	// DualValue is Σ_e δ(e).
	DualValue float64
	// RatioBound is CoverWeight / DualValue, an upper bound on the realized
	// approximation ratio (≤ f+ε by Corollary 3; often far smaller).
	RatioBound float64
	// Iterations is the number of executed iterations i ≥ 1.
	Iterations int
	// Rounds is the CONGEST round count: 2 rounds for iteration 0 plus 2
	// per iteration (Appendix B mapping). For RunCongest it is the engine's
	// measured count.
	Rounds int
	// MaxLevel is the largest vertex level reached (< Z by Claim 4).
	MaxLevel int
	// Z is the level cap z = ⌈log2(1/β)⌉.
	Z int
	// Alpha is the global α used (0 when AlphaLocal is in effect).
	Alpha float64
	// Epsilon is the effective ε (after FApprox substitution).
	Epsilon float64
	// Trace holds per-iteration stats when Options.CollectTrace is set.
	Trace []IterationStats
	// EdgeRaises counts, per edge, the iterations in which its bid was
	// multiplied by α (Lemma 6 bounds this by log_α(Δ·2^{f·z})). Collected
	// when Options.CollectTrace is set.
	EdgeRaises []int
	// MaxStuckPerLevel records, per vertex, the largest number of stuck
	// iterations it spent at any one level (Lemma 7 bounds this by α, or 2α
	// for the Appendix C variant per Lemma 22). Collected when
	// Options.CollectTrace is set.
	MaxStuckPerLevel []int
}

// validate checks opts against g and resolves derived parameters.
func (o *Options) validate(g *hypergraph.Hypergraph) error {
	if o.FApprox {
		nW := float64(g.NumVertices()) * float64(g.MaxWeight())
		if nW < 1 {
			nW = 1
		}
		o.Epsilon = 1 / nW
	}
	if o.Epsilon <= 0 || (!o.FApprox && o.Epsilon > 1) {
		return fmt.Errorf("%w: epsilon %g not in (0,1]", ErrBadOptions, o.Epsilon)
	}
	switch o.Variant {
	case VariantDefault, VariantSingleLevel:
	default:
		return fmt.Errorf("%w: unknown variant %d", ErrBadOptions, int(o.Variant))
	}
	switch o.Alpha {
	case AlphaTheorem9, AlphaLocal:
	case AlphaFixed:
		if o.FixedAlpha < 2 {
			return fmt.Errorf("%w: fixed alpha %g < 2", ErrBadOptions, o.FixedAlpha)
		}
	default:
		return fmt.Errorf("%w: unknown alpha policy %d", ErrBadOptions, int(o.Alpha))
	}
	if o.Gamma <= 0 {
		o.Gamma = 0.001
	}
	return nil
}

// Beta returns β = ε/(f+ε) for rank f.
func Beta(f int, eps float64) float64 {
	if f < 1 {
		f = 1
	}
	return eps / (float64(f) + eps)
}

// ZLevels returns z = ⌈log2(1/β)⌉, the cap no vertex level ever reaches
// (Claim 4).
func ZLevels(f int, eps float64) int {
	beta := Beta(f, eps)
	z := int(math.Ceil(math.Log2(1 / beta)))
	if z < 1 {
		z = 1
	}
	return z
}

// AlphaTheorem9Value computes α per Theorem 9:
//
//	α = max(2, logΔ/(f·log(f/ε)·loglogΔ))  if that ratio ≥ (logΔ)^{γ/2}
//	α = 2                                   otherwise.
func AlphaTheorem9Value(f int, eps float64, delta int, gamma float64) float64 {
	if f < 1 {
		f = 1
	}
	logD := math.Log2(math.Max(float64(delta), 4))
	loglogD := math.Log2(math.Max(logD, 2))
	fTerm := float64(f) * math.Max(math.Log2(math.Max(float64(f)/eps, 2)), 1)
	ratio := logD / (fTerm * loglogD)
	if ratio >= math.Pow(logD, gamma/2) {
		return math.Max(2, ratio)
	}
	return 2
}

// TheoreticalIterationBound evaluates the Theorem 8 bound
// O(log_α(Δ·2^{f·z}) + f·z·α) without constants; used to derive the default
// iteration cap and by shape experiments.
func TheoreticalIterationBound(f int, eps float64, delta int, alpha float64) float64 {
	if alpha < 2 {
		alpha = 2
	}
	z := float64(ZLevels(f, eps))
	logD := math.Log2(math.Max(float64(delta), 4))
	raise := (logD + float64(f)*z) / math.Log2(alpha)
	stuck := float64(f) * z * alpha
	return raise + stuck
}

// defaultIterationCap returns a generous run cap derived from Theorem 8.
func defaultIterationCap(f int, eps float64, delta int, alpha float64) int {
	bound := TheoreticalIterationBound(f, eps, delta, alpha)
	cap := int(64*bound) + 1024
	return cap
}

// Run executes Algorithm MWHVC on g with the lockstep runner and returns
// the cover, duals and measured complexity. The input hypergraph must be
// valid (use hypergraph.Validate for untrusted inputs).
func Run(g *hypergraph.Hypergraph, opts Options) (*Result, error) {
	if err := opts.validate(g); err != nil {
		return nil, err
	}
	if opts.Exact {
		return runLockstep(newRatNumeric(), g, opts, nil)
	}
	return runLockstepFloat(g, opts, nil)
}
