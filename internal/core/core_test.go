package core

import (
	"errors"
	"math"
	"testing"

	"distcover/internal/hypergraph"
	"distcover/internal/lp"
)

func defaultRun(t *testing.T, g *hypergraph.Hypergraph) *Result {
	t.Helper()
	res, err := Run(g, DefaultOptions())
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return res
}

func checkResult(t *testing.T, g *hypergraph.Hypergraph, res *Result, eps float64) {
	t.Helper()
	if !g.IsCover(res.Cover) {
		t.Fatalf("returned set is not a cover (|C|=%d)", len(res.Cover))
	}
	if got := g.CoverWeight(res.Cover); got != res.CoverWeight {
		t.Errorf("CoverWeight = %d, recomputed %d", res.CoverWeight, got)
	}
	// Dual feasibility (Claim 2) within float tolerance.
	if err := lp.CheckEdgePacking(g, res.Dual, 1e-9); err != nil {
		t.Errorf("dual packing: %v", err)
	}
	// Approximation guarantee (Corollary 3): w(C) ≤ (f+ε)·Σδ.
	f := float64(g.Rank())
	if g.NumEdges() > 0 {
		bound := (f + eps) * res.DualValue
		if float64(res.CoverWeight) > bound*(1+1e-9) {
			t.Errorf("w(C) = %d exceeds (f+ε)·dual = %f", res.CoverWeight, bound)
		}
	}
	// Claim 4: levels stay below z (float mode may overshoot by rounding on
	// the boundary; allow z).
	if res.MaxLevel > res.Z {
		t.Errorf("MaxLevel = %d exceeds z = %d", res.MaxLevel, res.Z)
	}
}

func TestTriangle(t *testing.T) {
	g := hypergraph.MustNew([]int64{1, 2, 3},
		[][]hypergraph.VertexID{{0, 1}, {1, 2}, {0, 2}})
	res := defaultRun(t, g)
	checkResult(t, g, res, 1)
	if res.Iterations == 0 {
		t.Error("expected at least one iteration")
	}
}

func TestStarPrefersCenter(t *testing.T) {
	// Star with cheap center: the (2+ε)-approximation must not pay much
	// more than the center.
	g, err := hypergraph.Star(64, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	res := defaultRun(t, g)
	checkResult(t, g, res, 1)
	// OPT = 1 (the center); guarantee allows ≤ (2+1)·OPT = 3.
	if res.CoverWeight > 3 {
		t.Errorf("star cover weight = %d, want ≤ 3", res.CoverWeight)
	}
}

func TestSingleEdge(t *testing.T) {
	g := hypergraph.MustNew([]int64{5, 7}, [][]hypergraph.VertexID{{0, 1}})
	res := defaultRun(t, g)
	checkResult(t, g, res, 1)
	if res.CoverWeight > 12 {
		t.Errorf("cover weight = %d for a single edge", res.CoverWeight)
	}
}

func TestSingletonEdges(t *testing.T) {
	// f = 1: every vertex with an edge must join; approximation (1+ε).
	g := hypergraph.MustNew([]int64{3, 4, 100},
		[][]hypergraph.VertexID{{0}, {1}})
	res := defaultRun(t, g)
	checkResult(t, g, res, 1)
	if !res.InCover[0] || !res.InCover[1] {
		t.Error("singleton-edge vertices must be covered")
	}
	if res.InCover[2] {
		t.Error("isolated vertex joined the cover")
	}
}

func TestEdgelessGraph(t *testing.T) {
	g := hypergraph.MustNew([]int64{1, 2}, nil)
	res := defaultRun(t, g)
	if len(res.Cover) != 0 || res.Iterations != 0 {
		t.Errorf("edgeless result = (|C|=%d, iters=%d), want empty", len(res.Cover), res.Iterations)
	}
	if res.RatioBound != 1 {
		t.Errorf("RatioBound = %f, want 1 for empty instance", res.RatioBound)
	}
}

func TestRandomHypergraphsAllVariants(t *testing.T) {
	tests := []struct {
		name string
		opts Options
	}{
		{"default", DefaultOptions()},
		{"small epsilon", func() Options { o := DefaultOptions(); o.Epsilon = 0.1; return o }()},
		{"single-level variant", func() Options { o := DefaultOptions(); o.Variant = VariantSingleLevel; return o }()},
		{"local alpha", func() Options { o := DefaultOptions(); o.Alpha = AlphaLocal; return o }()},
		{"fixed alpha 4", func() Options { o := DefaultOptions(); o.Alpha = AlphaFixed; o.FixedAlpha = 4; return o }()},
		{"f-approx", func() Options { o := DefaultOptions(); o.FApprox = true; return o }()},
		{"exact", func() Options { o := DefaultOptions(); o.Exact = true; return o }()},
		{"trace", func() Options { o := DefaultOptions(); o.CollectTrace = true; return o }()},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			for _, f := range []int{2, 3, 5} {
				g, err := hypergraph.UniformRandom(60, 120, f,
					hypergraph.GenConfig{Seed: int64(f), Dist: hypergraph.WeightUniformRange, MaxWeight: 50})
				if err != nil {
					t.Fatal(err)
				}
				res, err := Run(g, tt.opts)
				if err != nil {
					t.Fatalf("Run(f=%d): %v", f, err)
				}
				eps := tt.opts.Epsilon
				if tt.opts.FApprox {
					eps = res.Epsilon
				}
				checkResult(t, g, res, eps)
				if tt.opts.CollectTrace && len(res.Trace) != res.Iterations {
					t.Errorf("trace length %d != iterations %d", len(res.Trace), res.Iterations)
				}
			}
		})
	}
}

func TestSingleLevelVariantIncrementsAtMostOne(t *testing.T) {
	// Corollary 21: with the Appendix C variant no vertex levels up more
	// than once per iteration.
	opts := DefaultOptions()
	opts.Variant = VariantSingleLevel
	opts.CollectTrace = true
	g, err := hypergraph.UniformRandom(80, 200, 3,
		hypergraph.GenConfig{Seed: 5, Dist: hypergraph.WeightExponential, MaxWeight: 1 << 16})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(g, opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, it := range res.Trace {
		if it.MaxLevelIncrement > 1 {
			t.Fatalf("iteration %d: level increment %d > 1 violates Corollary 21",
				it.Iteration, it.MaxLevelIncrement)
		}
	}
	checkResult(t, g, res, 1)
}

func TestExactModeStrictInvariants(t *testing.T) {
	// In exact arithmetic, Claim 4 holds strictly: levels < z.
	opts := DefaultOptions()
	opts.Exact = true
	for seed := int64(0); seed < 5; seed++ {
		g, err := hypergraph.UniformRandom(25, 50, 3,
			hypergraph.GenConfig{Seed: seed, Dist: hypergraph.WeightUniformRange, MaxWeight: 20})
		if err != nil {
			t.Fatal(err)
		}
		res, err := Run(g, opts)
		if err != nil {
			t.Fatal(err)
		}
		if res.MaxLevel >= res.Z {
			t.Errorf("seed %d: exact-mode level %d reached z=%d (violates Claim 4)",
				seed, res.MaxLevel, res.Z)
		}
		checkResult(t, g, res, 1)
	}
}

func TestExactAndFloatAgree(t *testing.T) {
	// Float64 and exact arithmetic must produce the same cover on modest
	// instances (the comparisons are never near ulp boundaries for these
	// dyadic-friendly weights). Both must be valid regardless.
	for seed := int64(0); seed < 8; seed++ {
		g, err := hypergraph.UniformRandom(30, 60, 3,
			hypergraph.GenConfig{Seed: seed, Dist: hypergraph.WeightUniformRange, MaxWeight: 16})
		if err != nil {
			t.Fatal(err)
		}
		optsF := DefaultOptions()
		optsF.Alpha = AlphaFixed // identical α in both modes (integer)
		optsF.FixedAlpha = 4
		optsE := optsF
		optsE.Exact = true
		rf, err := Run(g, optsF)
		if err != nil {
			t.Fatal(err)
		}
		re, err := Run(g, optsE)
		if err != nil {
			t.Fatal(err)
		}
		if rf.Iterations != re.Iterations {
			t.Errorf("seed %d: iterations differ float=%d exact=%d", seed, rf.Iterations, re.Iterations)
		}
		if len(rf.Cover) != len(re.Cover) {
			t.Errorf("seed %d: cover sizes differ float=%d exact=%d", seed, len(rf.Cover), len(re.Cover))
			continue
		}
		for i := range rf.Cover {
			if rf.Cover[i] != re.Cover[i] {
				t.Errorf("seed %d: covers differ at %d", seed, i)
				break
			}
		}
	}
}

func TestFApproxRatioAgainstExactOPT(t *testing.T) {
	// Corollary 10: FApprox yields an f-approximation. Audit against the
	// exact optimum on small instances.
	for seed := int64(0); seed < 6; seed++ {
		g, err := hypergraph.UniformRandom(10, 14, 2,
			hypergraph.GenConfig{Seed: seed, Dist: hypergraph.WeightUniformRange, MaxWeight: 9})
		if err != nil {
			t.Fatal(err)
		}
		opts := DefaultOptions()
		opts.FApprox = true
		res, err := Run(g, opts)
		if err != nil {
			t.Fatal(err)
		}
		_, opt, err := lp.ExactCover(g, 0)
		if err != nil {
			t.Fatal(err)
		}
		f := float64(g.Rank())
		if float64(res.CoverWeight) > f*float64(opt)*(1+1e-6) {
			t.Errorf("seed %d: w(C)=%d > f·OPT = %f", seed, res.CoverWeight, f*float64(opt))
		}
	}
}

func TestOptionsValidation(t *testing.T) {
	g := hypergraph.MustNew([]int64{1, 1}, [][]hypergraph.VertexID{{0, 1}})
	tests := []struct {
		name string
		opts Options
	}{
		{"zero epsilon", Options{Variant: VariantDefault, Alpha: AlphaTheorem9}},
		{"epsilon too large", Options{Epsilon: 2, Variant: VariantDefault, Alpha: AlphaTheorem9}},
		{"bad variant", Options{Epsilon: 1, Variant: Variant(9), Alpha: AlphaTheorem9}},
		{"bad alpha policy", Options{Epsilon: 1, Variant: VariantDefault, Alpha: AlphaPolicy(9)}},
		{"fixed alpha below 2", Options{Epsilon: 1, Variant: VariantDefault, Alpha: AlphaFixed, FixedAlpha: 1.5}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := Run(g, tt.opts); !errors.Is(err, ErrBadOptions) {
				t.Errorf("Run = %v, want ErrBadOptions", err)
			}
		})
	}
}

func TestIterationLimit(t *testing.T) {
	g, err := hypergraph.UniformRandom(40, 80, 2, hypergraph.GenConfig{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	opts := DefaultOptions()
	opts.MaxIterations = 1
	if _, err := Run(g, opts); !errors.Is(err, ErrIterationLimit) {
		t.Errorf("Run = %v, want ErrIterationLimit", err)
	}
}

func TestHelpers(t *testing.T) {
	if b := Beta(2, 1); math.Abs(b-1.0/3) > 1e-12 {
		t.Errorf("Beta(2,1) = %f, want 1/3", b)
	}
	if z := ZLevels(2, 1); z != 2 {
		t.Errorf("ZLevels(2,1) = %d, want 2 (⌈log2 3⌉)", z)
	}
	if z := ZLevels(0, 1); z < 1 {
		t.Errorf("ZLevels clamp failed: %d", z)
	}
	if a := AlphaTheorem9Value(2, 1, 8, 0.001); a < 2 {
		t.Errorf("alpha = %f, want ≥ 2", a)
	}
	// Huge Δ with small f should produce α > 2.
	if a := AlphaTheorem9Value(2, 1, 1<<30, 0.001); a <= 2 {
		t.Errorf("alpha(Δ=2^30) = %f, want > 2", a)
	}
	if b := TheoreticalIterationBound(2, 1, 1024, 2); b <= 0 {
		t.Errorf("iteration bound = %f", b)
	}
	if VariantDefault.String() == "" || VariantSingleLevel.String() == "" ||
		Variant(42).String() == "" {
		t.Error("Variant.String broken")
	}
	if AlphaTheorem9.String() == "" || AlphaLocal.String() == "" ||
		AlphaFixed.String() == "" || AlphaPolicy(42).String() == "" {
		t.Error("AlphaPolicy.String broken")
	}
}

func TestDualValueLowerBoundsOPT(t *testing.T) {
	// Σδ ≤ OPT on instances small enough for the exact solver.
	for seed := int64(0); seed < 5; seed++ {
		g, err := hypergraph.UniformRandom(9, 12, 3,
			hypergraph.GenConfig{Seed: seed, Dist: hypergraph.WeightUniformRange, MaxWeight: 7})
		if err != nil {
			t.Fatal(err)
		}
		res := defaultRun(t, g)
		_, opt, err := lp.ExactCover(g, 0)
		if err != nil {
			t.Fatal(err)
		}
		if res.DualValue > float64(opt)*(1+1e-9) {
			t.Errorf("seed %d: dual %f exceeds OPT %d (weak duality violated)",
				seed, res.DualValue, opt)
		}
	}
}

func TestWeightIndependenceOfIterations(t *testing.T) {
	// The headline claim: rounds do not depend on W. Scaling all weights by
	// a large constant must not change the iteration count at all (the
	// algorithm is scale-invariant), and wildly heterogeneous weights must
	// stay within the Theorem 8 envelope.
	base, err := hypergraph.UniformRandom(100, 250, 3, hypergraph.GenConfig{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	scale := func(g *hypergraph.Hypergraph, c int64) *hypergraph.Hypergraph {
		scaled := make([]int64, g.NumVertices())
		for v := range scaled {
			scaled[v] = g.Weight(hypergraph.VertexID(v)) * c
		}
		edges := make([][]hypergraph.VertexID, g.NumEdges())
		for e := range edges {
			edges[e] = g.EdgeCopy(hypergraph.EdgeID(e))
		}
		return hypergraph.MustNew(scaled, edges)
	}

	// Float mode: scaling by a power of two is exact in float64, so the
	// trajectory must be bit-identical.
	res1 := defaultRun(t, base)
	res2 := defaultRun(t, scale(base, 1<<20))
	if res1.Iterations != res2.Iterations {
		t.Errorf("float mode: iterations changed under 2^20 weight scaling: %d vs %d",
			res1.Iterations, res2.Iterations)
	}

	// Exact mode: any scaling, including non-dyadic, preserves the
	// trajectory exactly.
	small, err := hypergraph.UniformRandom(40, 80, 3, hypergraph.GenConfig{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	opts := DefaultOptions()
	opts.Exact = true
	re1, err := Run(small, opts)
	if err != nil {
		t.Fatal(err)
	}
	re2, err := Run(scale(small, 999_983), opts) // large prime scale
	if err != nil {
		t.Fatal(err)
	}
	if re1.Iterations != re2.Iterations {
		t.Errorf("exact mode: iterations changed under prime weight scaling: %d vs %d",
			re1.Iterations, re2.Iterations)
	}
}
