package core

import (
	"context"
	"fmt"
	"sync"

	"distcover/internal/hypergraph"
)

// This file implements the shared-memory exchange fast path: co-located
// partitions (several partition runners inside one process) synchronize
// through a barrier-based in-memory aggregator instead of framed TCP
// through a cluster coordinator. RunPartition is written against the
// Exchanger interface, so the solver code is byte-for-byte the same on
// both paths and the results stay bit-identical to RunFlat — the partition
// equivalence tests sweep this path at 1..4 partitions alongside the wire
// paths.

// MemExchangerGroup synchronizes np co-located partitions through shared
// memory: each iteration's boundary exchange is a barrier that collects
// every partition's frame and releases all waiters with the frames in
// ascending partition order, and the coverage exchange is the same barrier
// summing the owned-coverage counts. A group is single-use (one solve) and
// must be created with NewMemExchangerGroup.
//
// The group is poisonable: Fail unblocks every waiter with the given
// error, which is how a failed partition (or a cancelled context) tears
// the whole solve down without deadlocking the surviving partitions.
type MemExchangerGroup struct {
	parts int

	mu   sync.Mutex
	cond *sync.Cond
	err  error // first failure; sticky, poisons every exchange

	// Boundary barrier state. slots is indexed by partition; out is the
	// frozen copy handed to every waiter of the completed round (a fresh
	// slice per round, so a released waiter never races the next round's
	// deposits).
	bArrived int
	bIter    int
	bGen     uint64
	slots    []BoundaryFrame
	out      []BoundaryFrame

	// Coverage barrier state.
	cArrived int
	cIter    int
	cGen     uint64
	cSum     int
	cOut     int
}

// NewMemExchangerGroup returns a group synchronizing parts partitions.
func NewMemExchangerGroup(parts int) *MemExchangerGroup {
	g := &MemExchangerGroup{
		parts: parts,
		slots: make([]BoundaryFrame, parts),
	}
	g.cond = sync.NewCond(&g.mu)
	return g
}

// Exchanger returns the Exchanger partition part must pass to RunPartition.
func (g *MemExchangerGroup) Exchanger(part int) Exchanger {
	return &memExchanger{group: g, part: part}
}

// Fail poisons the group: every current and future exchange returns err.
// The first failure wins; later calls are no-ops.
func (g *MemExchangerGroup) Fail(err error) {
	if err == nil {
		return
	}
	g.mu.Lock()
	if g.err == nil {
		g.err = err
		g.cond.Broadcast()
	}
	g.mu.Unlock()
}

// Err returns the error the group was poisoned with, if any.
func (g *MemExchangerGroup) Err() error {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.err
}

// memExchanger is one partition's view of the group.
type memExchanger struct {
	group *MemExchangerGroup
	part  int
}

func (e *memExchanger) ExchangeBoundary(iteration int, local BoundaryFrame) ([]BoundaryFrame, error) {
	g := e.group
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.err != nil {
		return nil, g.err
	}
	if local.Part != e.part {
		err := fmt.Errorf("%w: exchanger %d got frame for partition %d", ErrPartitionOptions, e.part, local.Part)
		g.failLocked(err)
		return nil, err
	}
	if g.bArrived == 0 {
		g.bIter = iteration
	} else if iteration != g.bIter {
		err := fmt.Errorf("%w: boundary iteration %d while round %d in flight", ErrPartitionOptions, iteration, g.bIter)
		g.failLocked(err)
		return nil, err
	}
	g.slots[e.part] = local
	g.bArrived++
	if g.bArrived == g.parts {
		g.bArrived = 0
		g.bGen++
		g.out = append([]BoundaryFrame(nil), g.slots...)
		g.cond.Broadcast()
		return g.out, nil
	}
	gen := g.bGen
	for g.bGen == gen && g.err == nil {
		g.cond.Wait()
	}
	if g.err != nil {
		return nil, g.err
	}
	return g.out, nil
}

func (e *memExchanger) ExchangeCoverage(iteration, covered int) (int, error) {
	g := e.group
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.err != nil {
		return 0, g.err
	}
	if g.cArrived == 0 {
		g.cIter = iteration
		g.cSum = 0
	} else if iteration != g.cIter {
		err := fmt.Errorf("%w: coverage iteration %d while round %d in flight", ErrPartitionOptions, iteration, g.cIter)
		g.failLocked(err)
		return 0, err
	}
	g.cSum += covered
	g.cArrived++
	if g.cArrived == g.parts {
		g.cArrived = 0
		g.cGen++
		g.cOut = g.cSum
		g.cond.Broadcast()
		return g.cOut, nil
	}
	gen := g.cGen
	for g.cGen == gen && g.err == nil {
		g.cond.Wait()
	}
	if g.err != nil {
		return 0, g.err
	}
	return g.cOut, nil
}

// failLocked is Fail with g.mu already held.
func (g *MemExchangerGroup) failLocked(err error) {
	if g.err == nil {
		g.err = err
		g.cond.Broadcast()
	}
}

// RunPartitioned executes Algorithm MWHVC split into parts contiguous
// vertex-range partitions inside this process, one goroutine per partition
// over a shared-memory exchanger group — no sockets, no frame codec. A nil
// carry is a cold solve; a non-nil carry warm-starts the residual path
// exactly like RunResidualFlat. The merged Result is bit-identical to
// RunFlat on the undivided instance for every partition count.
//
// Cancelling ctx poisons the exchanger group: every partition unblocks and
// the context error is returned. ctx may be nil (never cancelled).
func RunPartitioned(ctx context.Context, g *hypergraph.Hypergraph, opts Options, carry []float64, parts int) (*Result, error) {
	bounds := PlanPartitions(g, parts)
	np := len(bounds) - 1
	grp := NewMemExchangerGroup(np)
	if ctx != nil {
		watchDone := make(chan struct{})
		defer close(watchDone)
		go func() {
			select {
			case <-ctx.Done():
				grp.Fail(ctx.Err())
			case <-watchDone:
			}
		}()
	}
	partials := make([]*PartialResult, np)
	errs := make([]error, np)
	var wg sync.WaitGroup
	for p := 0; p < np; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			pr, err := RunPartition(g, opts, carry, bounds, p, grp.Exchanger(p))
			if err != nil {
				errs[p] = err
				// A partition that fails before (or between) exchanges must
				// not strand the others at the next barrier.
				grp.Fail(err)
				return
			}
			partials[p] = pr
		}(p)
	}
	wg.Wait()
	// Prefer the error that poisoned the group — the barrier propagates it
	// to every other partition, so per-partition errors may all be echoes.
	if err := grp.Err(); err != nil {
		return nil, err
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return AssembleParts(g, opts, partials)
}
