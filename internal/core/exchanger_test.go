package core

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"testing"
	"time"

	"distcover/internal/hypergraph"
)

// TestRunPartitionedMatchesFlat is the shared-memory leg of the cluster
// equivalence property: the barrier-based MemExchangerGroup must
// reconstruct RunFlat's result bit for bit across the full 1..8 partition
// sweep, cold and carry-warm-started, with the paper's per-iteration
// invariants (Claims 1, 2, 4) checked inside every partitioned run. The
// socket-transport leg of the same property lives in the cluster tests;
// this one isolates the partition plan and barrier exchange from the wire.
func TestRunPartitionedMatchesFlat(t *testing.T) {
	rng := rand.New(rand.NewSource(20260807))
	epss := []float64{1, 0.5, 0.25}
	for i := 0; i < 16; i++ {
		g := randomPartitionInstance(t, rng, i)
		opts := DefaultOptions()
		opts.Epsilon = epss[i%len(epss)]
		want, err := RunFlat(g, opts, 2)
		if err != nil {
			t.Fatalf("instance %d: flat: %v", i, err)
		}
		checked := opts
		checked.CheckInvariants = true
		for parts := 1; parts <= 8; parts++ {
			got, err := RunPartitioned(context.Background(), g, checked, nil, parts)
			if err != nil {
				t.Fatalf("instance %d parts %d: %v", i, parts, err)
			}
			requirePartitionResult(t, fmt.Sprintf("mem instance %d parts %d", i, parts), got, want)
		}

		// Warm start: the carried duals shrink the residual problem; the
		// partitioned solver must agree with the residual flat solver at
		// every width, again with invariants on.
		carry := make([]float64, g.NumVertices())
		for v := range carry {
			carry[v] = rng.Float64() * 0.95 * float64(g.Weight(hypergraph.VertexID(v)))
		}
		wantWarm, err := RunResidualFlat(g, opts, carry, 2)
		if err != nil {
			t.Fatalf("instance %d: residual flat: %v", i, err)
		}
		for parts := 1; parts <= 8; parts++ {
			gotWarm, err := RunPartitioned(context.Background(), g, checked, carry, parts)
			if err != nil {
				t.Fatalf("instance %d warm parts %d: %v", i, parts, err)
			}
			requirePartitionResult(t, fmt.Sprintf("mem instance %d warm parts %d", i, parts), gotWarm, wantWarm)
		}
	}
}

// TestRunPartitionedPropagatesSolverError: a solver-level failure in the
// partitions (iteration-limit overrun) must poison the barrier so every
// partition unblocks, and surface as the typed error — no deadlock.
func TestRunPartitionedPropagatesSolverError(t *testing.T) {
	g, err := hypergraph.UniformRandom(60, 180, 3, hypergraph.GenConfig{
		Seed: 5, Dist: hypergraph.WeightUniformRange, MaxWeight: 100,
	})
	if err != nil {
		t.Fatal(err)
	}
	opts := DefaultOptions()
	opts.MaxIterations = 1
	done := make(chan error, 1)
	go func() {
		_, err := RunPartitioned(context.Background(), g, opts, nil, 4)
		done <- err
	}()
	select {
	case err := <-done:
		if !errors.Is(err, ErrIterationLimit) {
			t.Fatalf("err = %v, want ErrIterationLimit", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("partitioned run deadlocked on a failing partition")
	}
}

// TestRunPartitionedContextCancel: cancelling the context poisons the
// exchanger group, unblocks every partition and leaks no goroutines.
func TestRunPartitionedContextCancel(t *testing.T) {
	g, err := hypergraph.UniformRandom(400, 1200, 3, hypergraph.GenConfig{
		Seed: 11, Dist: hypergraph.WeightUniformRange, MaxWeight: 500,
	})
	if err != nil {
		t.Fatal(err)
	}
	before := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // already cancelled: the very first barrier must fail
	if _, err := RunPartitioned(ctx, g, DefaultOptions(), nil, 4); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if runtime.NumGoroutine() <= before {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutines leaked after cancel: %d before, %d after\n%s",
				before, runtime.NumGoroutine(), buf[:n])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestMemExchangerGroupFailUnblocksWaiters: Fail must release a partition
// already parked inside a barrier.
func TestMemExchangerGroupFailUnblocksWaiters(t *testing.T) {
	grp := NewMemExchangerGroup(2)
	sentinel := errors.New("poisoned")
	errCh := make(chan error, 1)
	go func() {
		_, err := grp.Exchanger(0).ExchangeBoundary(1, BoundaryFrame{Part: 0})
		errCh <- err
	}()
	time.Sleep(20 * time.Millisecond) // let the exchanger park
	grp.Fail(sentinel)
	select {
	case err := <-errCh:
		if !errors.Is(err, sentinel) {
			t.Fatalf("err = %v, want sentinel", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Fail did not unblock the parked exchanger")
	}
	if _, err := grp.Exchanger(1).ExchangeCoverage(1, 0); !errors.Is(err, sentinel) {
		t.Fatalf("post-poison exchange err = %v, want sentinel", err)
	}
}
