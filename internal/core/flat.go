package core

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"distcover/internal/hypergraph"
	"distcover/internal/telemetry"
)

// This file implements the flat engine: a chunk-parallel execution of the
// lockstep runner (runner.go) over the hypergraph's CSR arrays. Each phase
// of an iteration becomes a parallel-for over chunks of the current
// frontier with per-chunk partial statistics and a deterministic reduction,
// and the one scatter in the sequential runner — edges adding their dual
// increment into every member vertex's Σδ — is inverted into a per-vertex
// gather over the incidence CSR. The gather visits each vertex's incident
// edges in ascending edge id, which is exactly the order the sequential
// edge loop scatters in, so every float accumulates the same addends in the
// same order: the flat engine is bit-identical to runLockstep (and
// therefore to all CONGEST engines), independent of the worker count. The
// engine equivalence tests enforce this.
//
// Frontier tracking: the runner maintains two compact ascending index
// lists — activeV, the vertices with doneV false, and liveE, the uncovered
// edges — and compacts both in place at the end of each iteration. Phases
// iterate the frontier, not [0,n) / [0,m), so per-iteration work is
// proportional to the residual instance (the accounting the paper's round
// bounds assume), covered edges are never revisited, and the per-iteration
// trace counters fall out of the list lengths. The compaction preserves two
// invariants the phase bodies rely on: every vertex of a live edge is
// active (a vertex retires only once all its edges are covered, and a
// joining vertex covers its edges in the same iteration it joins), and
// newly[e] is false for every edge outside liveE (cleared exactly once,
// when the edge is dropped from the list).
//
// Barriers: an iteration synchronizes twice, not three times. The vertex
// phase is one parallel-for; the edge and gather phases are fused into a
// second one, where each participant drains edge chunks from a shared
// atomic counter, waits on an internal completion count (edgeWG), and then
// drains gather chunks — the gather of one iteration never overlaps the
// edge writes (addE, newly, covered, bid) it reads. Chunks are grabbed
// work-stealing style, several per worker, so an imbalanced power-law
// frontier does not leave workers idle at the barrier. When a tracer is
// attached the runner instead runs the edge and gather phases as separate
// timed parallel-fors so per-phase durations stay observable — same
// arithmetic, same results, one more barrier.
//
// State and scratch live in a pooled arena (arena.go): a warm solve — in
// particular every residual re-solve of a Session — performs no per-slice
// allocations. Worker goroutines are started per solve from pooled
// scaffolding and stopped before the solver is released; tokens, not
// closures, cross the dispatch channel, keeping the steady state
// allocation-free.
//
// Exact (big.Rat) runs are routed to the sequential runner by RunFlat:
// rational arithmetic is allocation-bound rather than memory-bound, and the
// results are identical by construction.

// RunFlat executes Algorithm MWHVC on g with the chunk-parallel flat
// runner. workers ≤ 0 uses GOMAXPROCS. Results are bit-identical to Run for
// every worker count.
func RunFlat(g *hypergraph.Hypergraph, opts Options, workers int) (*Result, error) {
	if err := opts.validate(g); err != nil {
		return nil, err
	}
	if opts.Exact {
		return runLockstep(newRatNumeric(), g, opts, nil)
	}
	return runLockstepFlat(g, opts, nil, workers)
}

// RunResidualFlat is RunResidual on the flat runner: a warm-started
// chunk-parallel solve of a residual instance with carried vertex loads.
// Bit-identical to RunResidual for every worker count.
func RunResidualFlat(g *hypergraph.Hypergraph, opts Options, carry []float64, workers int) (*Result, error) {
	if err := opts.validate(g); err != nil {
		return nil, err
	}
	if err := validateCarry(g, carry); err != nil {
		return nil, err
	}
	if opts.Exact {
		return runLockstep(newRatNumeric(), g, opts, carry)
	}
	return runLockstepFlat(g, opts, carry, workers)
}

// flatEdgeVisits, when non-nil, receives the number of live edges the edge
// phase is about to visit, once per iteration. Test instrumentation only:
// the frontier property that covered edges are never revisited is asserted
// by summing these counts against the sequential runner's trace.
var flatEdgeVisits func(liveEdges int)

// Phases of the flat runner's parallel-for dispatch. The fused
// fpEdgeGather is the default; fpEdge/fpGather are its split halves, used
// when a tracer needs separately timed phases.
const (
	fpInitVertex uint8 = iota
	fpInitEdge
	fpInitGather
	fpVertex
	fpEdgeGather
	fpEdge
	fpGather
)

const (
	// flatMinChunk is the smallest frontier slice worth shipping to the
	// worker pool; below twice this, a phase runs inline on the
	// coordinator and the barrier is skipped entirely (late rounds touch
	// tiny frontiers).
	flatMinChunk = 1024
	// flatChunksPerWorker oversubscribes the chunk grid so work-stealing
	// can rebalance power-law frontiers: a worker that lands on a chunk of
	// hub vertices simply grabs fewer chunks.
	flatChunksPerWorker = 4
)

// flatRun is the parallel scaffolding around the shared solver state. It is
// pooled inside floatSolver (arena.go); sticky fields (work channel, loopFn,
// partStats) survive across solves, everything else is reinitialized per
// run.
type flatRun struct {
	st      *state[float64]
	workers int

	// Frontier lists: activeV holds the vertices with doneV false, liveE
	// the uncovered edges, both ascending, both compacted in place at the
	// end of each iteration.
	activeV []int
	liveE   []int

	// Per-edge iteration scratch, written by edge chunks and read by vertex
	// gather chunks after the fused phase's internal completion wait.
	addE  []float64 // dual increment of a live edge this iteration
	newly []bool    // edge became covered this iteration

	// Per-chunk partials, merged by the coordinator after each barrier.
	partStats []IterationStats

	carry []float64 // warm-start loads, set only during initialization

	// Dispatch state of the phase in flight. next/next2 are the
	// work-stealing cursors over the (first, gather) chunk grids.
	phase       uint8
	tasks       int
	gatherTasks int
	lastTasks   int
	next        atomic.Int32
	next2       atomic.Int32

	edgeWG   sync.WaitGroup // fused phase: edge chunks outstanding
	phaseWG  sync.WaitGroup // helpers still inside the phase
	workerWG sync.WaitGroup // helper goroutines alive
	work     chan int8      // 1 = run the phase in flight, -1 = exit
	loopFn   func()         // bound workerLoop, kept so `go` spawns allocate nothing new

	// chunkNS holds per-chunk wall-clock of the phase in flight for the
	// chunk-imbalance telemetry. Allocated only when a tracer is set, so
	// the default path's exact allocation gate is untouched.
	chunkNS []int64
}

// runLockstepFlat mirrors runLockstep phase for phase; see that function
// for the algorithm commentary. Only the float64 path exists: the flat
// engine is the production fast path, and exact runs go sequential.
func runLockstepFlat(g *hypergraph.Hypergraph, opts Options, carry []float64, workers int) (*Result, error) {
	n, m := g.NumVertices(), g.NumEdges()
	f := g.Rank()
	eps := opts.Epsilon
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if max := maxInt(n, 1); workers > max {
		workers = max
	}

	s := floatSolverPool.Get().(*floatSolver)
	st := s.initState(g, opts, true)
	r := &s.run
	r.st = st
	r.workers = workers
	r.addE = s.arena.f64(m)
	r.newly = s.arena.boolsZero(m)
	r.activeV = s.arena.intsRaw(n)[:0]
	r.liveE = s.arena.intsRaw(m)[:0]
	maxTasks := maxInt(workers*flatChunksPerWorker, 1)
	if cap(r.partStats) < maxTasks {
		r.partStats = make([]IterationStats, maxTasks)
	}
	r.partStats = r.partStats[:maxTasks]
	if opts.Tracer != nil {
		r.chunkNS = make([]int64, maxTasks)
	} else {
		r.chunkNS = nil
	}
	r.startWorkers()
	defer s.finishFlat()

	globalAlpha := st.resolveAlphas(f, eps)
	maxIter := opts.MaxIterations
	if maxIter <= 0 {
		maxIter = defaultIterationCap(f, eps, g.MaxDegree(), globalAlpha)
	}

	// Telemetry hooks: tr is nil on the default path, where the only cost
	// is the nil tests — no timestamps, no allocations.
	tr := opts.Tracer
	var t0 time.Time
	if tr != nil {
		t0 = time.Now()
	}
	r.carry = carry
	r.dispatch(fpInitVertex, r.grid(n), 0)
	r.dispatch(fpInitEdge, r.grid(m), 0)
	r.dispatch(fpInitGather, r.grid(n), 0)
	r.carry = nil
	av := r.activeV
	for v := 0; v < n; v++ {
		if !st.doneV[v] {
			av = append(av, v)
		}
	}
	r.activeV = av
	le := r.liveE
	for e := 0; e < m; e++ {
		le = append(le, e)
	}
	r.liveE = le
	if tr != nil {
		tr.Phase(0, telemetry.PhaseInit, time.Since(t0), r.maxChunkDur())
	}

	res := &Result{
		Z:       ZLevels(f, eps),
		Alpha:   globalAlpha,
		Epsilon: eps,
	}
	for st.uncovered > 0 {
		if res.Iterations >= maxIter {
			return nil, fmt.Errorf("%w: %d iterations, %d edges uncovered",
				ErrIterationLimit, res.Iterations, st.uncovered)
		}
		res.Iterations++
		var its IterationStats
		its.Iteration = res.Iterations
		if tr != nil {
			t0 = time.Now()
		}
		vt := r.grid(len(r.activeV))
		r.dispatch(fpVertex, vt, 0)
		for c := 0; c < vt; c++ {
			p := &r.partStats[c]
			its.Joined += p.Joined
			its.LevelIncrements += p.LevelIncrements
			its.StuckVertices += p.StuckVertices
			if p.MaxLevelIncrement > its.MaxLevelIncrement {
				its.MaxLevelIncrement = p.MaxLevelIncrement
			}
		}
		if tr != nil {
			tr.Phase(res.Iterations, telemetry.PhaseVertex, time.Since(t0), r.maxChunkDur())
			t0 = time.Now()
		}
		if flatEdgeVisits != nil {
			flatEdgeVisits(len(r.liveE))
		}
		et := r.grid(len(r.liveE))
		if tr != nil {
			r.dispatch(fpEdge, et, 0)
			tr.Phase(res.Iterations, telemetry.PhaseEdge, time.Since(t0), r.maxChunkDur())
			t0 = time.Now()
			r.dispatch(fpGather, r.grid(len(r.activeV)), 0)
			tr.Phase(res.Iterations, telemetry.PhaseGather, time.Since(t0), r.maxChunkDur())
		} else {
			r.dispatch(fpEdgeGather, et, r.grid(len(r.activeV)))
		}
		for c := 0; c < et; c++ {
			p := &r.partStats[c]
			its.CoveredEdges += p.CoveredEdges
			its.RaisedEdges += p.RaisedEdges
			st.uncovered -= p.CoveredEdges
		}
		r.compactFrontiers()
		if opts.CheckInvariants {
			if err := st.checkInvariants(res.Iterations, res.Z); err != nil {
				return nil, err
			}
		}
		if opts.CollectTrace {
			its.ActiveEdges = st.uncovered
			its.ActiveVertices = len(r.activeV)
			res.Trace = append(res.Trace, its)
		}
	}
	st.fill(res)
	return res, nil
}

// finishFlat tears a flat solve down in the order the pool requires: stop
// the helper goroutines (nothing may run when the solver is pooled), then
// release the arena-backed state.
func (s *floatSolver) finishFlat() {
	s.run.stopWorkers()
	s.run.carry = nil
	s.release()
}

// grid sizes the chunk grid for a phase over items frontier entries: 1 (run
// inline, no barrier) for small frontiers or single-worker runs, otherwise
// enough flatMinChunk-sized chunks for work-stealing, capped at
// flatChunksPerWorker per worker. The chunk count never affects results —
// per-chunk statistics are order-independent sums and every float lands on
// a fixed owner — so it is free to vary with the frontier.
func (r *flatRun) grid(items int) int {
	if r.workers == 1 || items < 2*flatMinChunk {
		return 1
	}
	t := items / flatMinChunk
	if limit := r.workers * flatChunksPerWorker; t > limit {
		t = limit
	}
	return t
}

// gridRange returns chunk c's half-open slice bounds of items split into
// tasks near-equal chunks.
func gridRange(items, tasks, c int) (int, int) {
	return c * items / tasks, (c + 1) * items / tasks
}

// startWorkers brings up workers-1 helper goroutines on the pooled dispatch
// channel. The channel and the bound loop function are created once per
// pooled flatRun and reused by later solves.
func (r *flatRun) startWorkers() {
	if r.workers <= 1 {
		return
	}
	if r.work == nil || cap(r.work) < r.workers {
		r.work = make(chan int8, r.workers)
	}
	if r.loopFn == nil {
		r.loopFn = r.workerLoop
	}
	r.workerWG.Add(r.workers - 1)
	for i := 0; i < r.workers-1; i++ {
		go r.loopFn()
	}
}

// stopWorkers exits every helper and waits for them; the channel itself is
// never closed, so the next solve can reuse it.
func (r *flatRun) stopWorkers() {
	if r.workers <= 1 {
		return
	}
	for i := 0; i < r.workers-1; i++ {
		r.work <- -1
	}
	r.workerWG.Wait()
}

func (r *flatRun) workerLoop() {
	defer r.workerWG.Done()
	for tok := range r.work {
		if tok < 0 {
			return
		}
		r.runPhase()
		r.phaseWG.Done()
	}
}

// dispatch runs one phase to completion: it publishes the dispatch state,
// wakes the helpers (unless the grid is a single chunk, which runs inline
// with no barrier at all), participates itself, and returns only when every
// chunk has been processed. All happens-before edges between phases come
// from this barrier; the fused phase's internal edge→gather ordering comes
// from edgeWG.
func (r *flatRun) dispatch(phase uint8, tasks, gatherTasks int) {
	r.phase = phase
	r.tasks = tasks
	r.gatherTasks = gatherTasks
	r.lastTasks = tasks
	r.next.Store(0)
	r.next2.Store(0)
	if phase == fpEdgeGather {
		r.edgeWG.Add(tasks)
	}
	if r.workers == 1 || (tasks <= 1 && gatherTasks <= 1) {
		r.runPhase()
		return
	}
	helpers := r.workers - 1
	r.phaseWG.Add(helpers)
	for i := 0; i < helpers; i++ {
		r.work <- 1
	}
	r.runPhase()
	r.phaseWG.Wait()
}

// runPhase drains chunks of the phase in flight until the grid is empty.
// For the fused edge+gather phase each participant first drains edge
// chunks, then waits for all edge chunks to complete (the internal
// non-coordinator barrier that replaces the old third global one), then
// drains gather chunks.
func (r *flatRun) runPhase() {
	for {
		c := int(r.next.Add(1)) - 1
		if c >= r.tasks {
			break
		}
		if r.chunkNS != nil {
			t0 := time.Now()
			r.runChunk(c)
			r.chunkNS[c] = int64(time.Since(t0))
		} else {
			r.runChunk(c)
		}
		if r.phase == fpEdgeGather {
			r.edgeWG.Done()
		}
	}
	if r.phase == fpEdgeGather {
		r.edgeWG.Wait()
		nAct := len(r.activeV)
		for {
			c := int(r.next2.Add(1)) - 1
			if c >= r.gatherTasks {
				break
			}
			lo, hi := gridRange(nAct, r.gatherTasks, c)
			r.gatherRange(lo, hi)
		}
	}
}

func (r *flatRun) runChunk(c int) {
	switch r.phase {
	case fpInitVertex:
		lo, hi := gridRange(r.st.g.NumVertices(), r.tasks, c)
		r.initVertexRange(lo, hi)
	case fpInitEdge:
		lo, hi := gridRange(r.st.g.NumEdges(), r.tasks, c)
		r.initEdgeRange(lo, hi)
	case fpInitGather:
		lo, hi := gridRange(r.st.g.NumVertices(), r.tasks, c)
		r.initGatherRange(lo, hi)
	case fpVertex:
		lo, hi := gridRange(len(r.activeV), r.tasks, c)
		r.vertexRange(lo, hi, &r.partStats[c])
	case fpEdgeGather, fpEdge:
		lo, hi := gridRange(len(r.liveE), r.tasks, c)
		r.edgeRange(lo, hi, &r.partStats[c])
	case fpGather:
		lo, hi := gridRange(len(r.activeV), r.tasks, c)
		r.gatherRange(lo, hi)
	}
}

// maxChunkDur returns the longest chunk of the most recent parallel-for
// (tracing only; 0 when tracing is off).
func (r *flatRun) maxChunkDur() time.Duration {
	var max int64
	if r.chunkNS == nil {
		return 0
	}
	for _, ns := range r.chunkNS[:r.lastTasks] {
		if ns > max {
			max = ns
		}
	}
	return time.Duration(max)
}

// compactFrontiers drops this iteration's covered edges and retired
// vertices from the live lists, in place and in order. Dropping an edge is
// the one place its newly flag is cleared — each edge pays that write
// exactly once, instead of every remaining iteration scrubbing the whole
// edge array (the pre-frontier runner's behavior).
func (r *flatRun) compactFrontiers() {
	st := r.st
	le := r.liveE[:0]
	for _, e := range r.liveE {
		if st.covered[e] {
			r.newly[e] = false
		} else {
			le = append(le, e)
		}
	}
	r.liveE = le
	av := r.activeV[:0]
	for _, v := range r.activeV {
		if !st.doneV[v] {
			av = append(av, v)
		}
	}
	r.activeV = av
}

// initVertexRange seeds vertices [lo,hi): weights, carried loads and level
// derivation on a warm start, uncovered degrees. The parallel form of the
// first loop of state.initIterationZero.
func (r *flatRun) initVertexRange(lo, hi int) {
	st, g := r.st, r.st.g
	num := st.num
	carry := r.carry
	for v := lo; v < hi; v++ {
		w := g.Weight(hypergraph.VertexID(v))
		st.wT[v] = float64(w)
		st.fWT[v] = float64(w * int64(maxInt(g.Rank(), 1)))
		st.sumDelta[v] = 0
		if carry != nil {
			st.sumDelta[v] = carry[v]
			for num.Add(st.sumDelta[v], num.HalfPow(st.wT[v], st.level[v]+1)) > st.wT[v] {
				st.level[v]++
			}
		}
		st.sumBid[v] = 0
		st.uncovDeg[v] = g.Degree(hypergraph.VertexID(v))
		if st.uncovDeg[v] == 0 {
			st.doneV[v] = true
		}
	}
}

// initEdgeRange computes the iteration-0 bids of edges [lo,hi): the second
// loop of state.initIterationZero.
func (r *flatRun) initEdgeRange(lo, hi int) {
	st, g := r.st, r.st.g
	num := st.num
	carry := r.carry
	for e := lo; e < hi; e++ {
		vs := g.Edge(hypergraph.EdgeID(e))
		ve := vs[0]
		var b float64
		if carry == nil {
			for _, v := range vs[1:] {
				// argmin w(v)/|E(v)| with deterministic tie-break on lower
				// id, compared in exact integers (see runner.go).
				if g.Weight(v)*int64(g.Degree(ve)) < g.Weight(ve)*int64(g.Degree(v)) {
					ve = v
				}
			}
			b = num.FromRatio(g.Weight(ve), 2*int64(g.Degree(ve)))
		} else {
			best := num.HalfPow(num.FromRatio(g.Weight(ve), int64(g.Degree(ve))), st.level[ve])
			for _, v := range vs[1:] {
				cand := num.HalfPow(num.FromRatio(g.Weight(v), int64(g.Degree(v))), st.level[v])
				if cand < best {
					ve, best = v, cand
				}
			}
			b = num.HalfPow(num.FromRatio(g.Weight(ve), 2*int64(g.Degree(ve))), st.level[ve])
		}
		st.bid[e] = b
		st.delta[e] = b
	}
}

// initGatherRange folds the iteration-0 bids into the Σδ / Σbid aggregates
// of vertices [lo,hi), in ascending edge id — the sequential scatter order.
func (r *flatRun) initGatherRange(lo, hi int) {
	st, g := r.st, r.st.g
	num := st.num
	for v := lo; v < hi; v++ {
		for _, e := range g.Incident(hypergraph.VertexID(v)) {
			st.sumDelta[v] = num.Add(st.sumDelta[v], st.bid[e])
			st.sumBid[v] = num.Add(st.sumBid[v], st.bid[e])
		}
	}
}

// vertexRange runs steps 3a/3d/3e for the active vertices in frontier
// positions [lo,hi). The body is the sequential one verbatim, minus the
// doneV test the frontier makes redundant, with per-chunk statistics.
func (r *flatRun) vertexRange(lo, hi int, part *IterationStats) {
	st := r.st
	num := st.num
	*part = IterationStats{}
	for _, v := range r.activeV[lo:hi] {
		st.inc[v] = 0
		st.joined[v] = false
		if num.Cmp(num.Mul(st.sumDelta[v], st.fPlusEps), st.fWT[v]) >= 0 {
			st.inCover[v] = true
			st.joined[v] = true
			st.doneV[v] = true
			part.Joined++
			continue
		}
		for num.Cmp(num.Add(st.sumDelta[v], num.HalfPow(st.wT[v], st.level[v]+1)), st.wT[v]) > 0 {
			st.level[v]++
			st.inc[v]++
		}
		if st.inc[v] > 0 {
			st.stuckCur[v] = 0
			part.LevelIncrements += st.inc[v]
			if st.inc[v] > part.MaxLevelIncrement {
				part.MaxLevelIncrement = st.inc[v]
			}
		}
		view := num.HalfPow(st.sumBid[v], st.inc[v])
		if num.Cmp(num.Mul(st.alphaV[v], view), num.HalfPow(st.wT[v], st.level[v]+1)) <= 0 {
			st.raise[v] = true
		} else {
			st.raise[v] = false
			part.StuckVertices++
			st.stuckCur[v]++
			if st.stuckCur[v] > st.stuckMax[v] {
				st.stuckMax[v] = st.stuckCur[v]
			}
		}
	}
}

// edgeRange runs the per-edge half of steps 3b/3c/3d/3f for the live edges
// in frontier positions [lo,hi): each decides covered-vs-live, halves and
// raises its bid, and records its dual increment in addE for the gather
// half. Only live edges are visited — the covered test (and the dead
// newly[e] reset) of the pre-frontier runner is gone.
func (r *flatRun) edgeRange(lo, hi int, part *IterationStats) {
	st, g := r.st, r.st.g
	num := st.num
	*part = IterationStats{}
	for _, e := range r.liveE[lo:hi] {
		vs := g.Edge(hypergraph.EdgeID(e))
		nowCovered := false
		halvings := 0
		allRaise := true
		for _, v := range vs {
			if st.joined[v] {
				nowCovered = true
			}
			halvings += st.inc[v]
			if !st.raise[v] {
				allRaise = false
			}
		}
		if nowCovered {
			st.covered[e] = true
			r.newly[e] = true
			part.CoveredEdges++
			continue
		}
		if halvings > 0 {
			st.bid[e] = num.HalfPow(st.bid[e], halvings)
		}
		if allRaise {
			st.bid[e] = num.Mul(st.bid[e], st.alphaE[e])
			part.RaisedEdges++
			st.raises[e]++
		}
		add := st.bid[e]
		if st.opts.Variant == VariantSingleLevel {
			add = num.HalfPow(add, 1)
		}
		st.delta[e] = num.Add(st.delta[e], add)
		r.addE[e] = add
	}
}

// gatherRange is the vertex-side completion of the edge phase plus the
// aggregate refresh for the active vertices in frontier positions [lo,hi),
// fused into one incidence walk per vertex: newly covered edges decrement
// the uncovered degree, live edges contribute their dual increment to Σδ
// and their bid to the refreshed Σbid — both in ascending edge id, the
// order the sequential runner applies them in. Vertices that joined in this
// iteration's vertex phase are still listed in activeV (compaction runs
// after the phase) and are skipped here, exactly as the sequential refresh
// skips done vertices.
func (r *flatRun) gatherRange(lo, hi int) {
	st, g := r.st, r.st.g
	num := st.num
	for _, v := range r.activeV[lo:hi] {
		if st.doneV[v] {
			continue
		}
		deg := st.uncovDeg[v]
		sumBid := 0.0
		alphaV := st.alphaV[v]
		if st.localAlpha {
			alphaV = 2
		}
		for _, e := range g.Incident(hypergraph.VertexID(v)) {
			if r.newly[e] {
				deg--
				continue
			}
			if st.covered[e] {
				continue
			}
			st.sumDelta[v] = num.Add(st.sumDelta[v], r.addE[e])
			sumBid = num.Add(sumBid, st.bid[e])
			if st.localAlpha && st.alphaE[e] > alphaV {
				alphaV = st.alphaE[e]
			}
		}
		st.uncovDeg[v] = deg
		if deg == 0 {
			st.doneV[v] = true
			continue
		}
		st.sumBid[v] = sumBid
		if st.localAlpha {
			st.alphaV[v] = alphaV
		}
	}
}

// csrOffsets adapts a hypergraph offset view for volumeBounds: the
// zero-value graph exposes empty offset arrays, which stand for zero
// items. (Used by the partition planner; the flat runner itself now
// rebalances dynamically via work-stealing chunks.)
func csrOffsets(off []int) []int {
	if len(off) == 0 {
		return []int{0}
	}
	return off
}

// volumeBounds partitions items 0..len(off)-2 into parts contiguous chunks
// of roughly equal volume, where off is the cumulative volume (off[i] =
// volume of items < i). Chunk c covers [bounds[c], bounds[c+1]). Items with
// zero volume cannot skew a chunk, and an all-zero volume falls back to an
// equal item split.
func volumeBounds(off []int, parts int) []int {
	items := len(off) - 1
	bounds := make([]int, parts+1)
	total := off[items]
	if total == 0 {
		for c := 0; c <= parts; c++ {
			bounds[c] = c * items / parts
		}
		return bounds
	}
	for c := 1; c < parts; c++ {
		target := total * c / parts
		i := sort.SearchInts(off, target)
		if i > items {
			i = items
		}
		if i < bounds[c-1] {
			i = bounds[c-1]
		}
		bounds[c] = i
	}
	bounds[parts] = items
	return bounds
}
