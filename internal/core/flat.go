package core

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"

	"distcover/internal/hypergraph"
	"distcover/internal/telemetry"
)

// This file implements the flat engine: a chunk-parallel execution of the
// lockstep runner (runner.go) over the hypergraph's CSR arrays. Each phase
// of an iteration becomes a parallel-for over contiguous index ranges with
// per-worker partial statistics and a deterministic reduction, and the one
// scatter in the sequential runner — edges adding their dual increment into
// every member vertex's Σδ — is inverted into a per-vertex gather over the
// incidence CSR. The gather visits each vertex's incident edges in
// ascending edge id, which is exactly the order the sequential edge loop
// scatters in, so every float accumulates the same addends in the same
// order: the flat engine is bit-identical to runLockstep (and therefore to
// all CONGEST engines), independent of the worker count. The engine
// equivalence tests enforce this.
//
// Work is partitioned by CSR volume, not by index count: vertex chunks hold
// equal shares of the incidence array and edge chunks equal shares of the
// edge-vertex array, so a power-law instance's hub vertices do not pile
// onto one worker.
//
// Exact (big.Rat) runs are routed to the sequential runner by RunFlat:
// rational arithmetic is allocation-bound rather than memory-bound, and the
// results are identical by construction.

// RunFlat executes Algorithm MWHVC on g with the chunk-parallel flat
// runner. workers ≤ 0 uses GOMAXPROCS. Results are bit-identical to Run for
// every worker count.
func RunFlat(g *hypergraph.Hypergraph, opts Options, workers int) (*Result, error) {
	if err := opts.validate(g); err != nil {
		return nil, err
	}
	if opts.Exact {
		return runLockstep(newRatNumeric(), g, opts, nil)
	}
	return runLockstepFlat(g, opts, nil, workers)
}

// RunResidualFlat is RunResidual on the flat runner: a warm-started
// chunk-parallel solve of a residual instance with carried vertex loads.
// Bit-identical to RunResidual for every worker count.
func RunResidualFlat(g *hypergraph.Hypergraph, opts Options, carry []float64, workers int) (*Result, error) {
	if err := opts.validate(g); err != nil {
		return nil, err
	}
	if err := validateCarry(g, carry); err != nil {
		return nil, err
	}
	if opts.Exact {
		return runLockstep(newRatNumeric(), g, opts, carry)
	}
	return runLockstepFlat(g, opts, carry, workers)
}

// flatRun is the parallel scaffolding around the shared solver state.
type flatRun struct {
	st      *state[float64]
	workers int
	vb      []int // vertex chunk bounds, len workers+1
	eb      []int // edge chunk bounds, len workers+1

	// Per-edge iteration scratch, written by edge chunks and read by vertex
	// gather chunks after the phase barrier.
	addE  []float64 // dual increment of a live edge this iteration
	newly []bool    // edge became covered this iteration

	// Per-chunk partials, merged by the coordinator after each barrier.
	partStats []IterationStats

	fn       func(chunk int) // body of the phase in flight
	work     chan int
	phaseWG  sync.WaitGroup
	workerWG sync.WaitGroup

	// chunkNS holds per-chunk wall-clock of the phase in flight for the
	// chunk-imbalance telemetry. Allocated only when a tracer is set, so
	// the default path's exact allocation gate is untouched.
	chunkNS []int64
}

// runLockstepFlat mirrors runLockstep phase for phase; see that function
// for the algorithm commentary. Only the float64 path exists: the flat
// engine is the production fast path, and exact runs go sequential.
func runLockstepFlat(g *hypergraph.Hypergraph, opts Options, carry []float64, workers int) (*Result, error) {
	n, m := g.NumVertices(), g.NumEdges()
	f := g.Rank()
	eps := opts.Epsilon
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if max := maxInt(n, 1); workers > max {
		workers = max
	}
	st := newState(floatNumeric{}, g, opts)
	r := &flatRun{
		st:        st,
		workers:   workers,
		addE:      make([]float64, m),
		newly:     make([]bool, m),
		partStats: make([]IterationStats, workers),
	}
	if opts.Tracer != nil {
		r.chunkNS = make([]int64, workers)
	}
	// The CSR offset arrays are themselves the cumulative volumes the
	// chunks are balanced on — no per-solve derivation.
	r.vb = volumeBounds(csrOffsets(g.IncidenceOffsets()), workers)
	r.eb = volumeBounds(csrOffsets(g.EdgeOffsets()), workers)
	if workers > 1 {
		r.work = make(chan int)
		for w := 0; w < workers; w++ {
			r.workerWG.Add(1)
			go func() {
				defer r.workerWG.Done()
				for c := range r.work {
					r.fn(c)
					r.phaseWG.Done()
				}
			}()
		}
		defer func() {
			close(r.work)
			r.workerWG.Wait()
		}()
	}

	globalAlpha := st.resolveAlphas(f, eps)
	maxIter := opts.MaxIterations
	if maxIter <= 0 {
		maxIter = defaultIterationCap(f, eps, g.MaxDegree(), globalAlpha)
	}

	// Telemetry hooks: tr is nil on the default path, where the only cost
	// is the nil tests — no timestamps, no allocations.
	tr := opts.Tracer
	var t0 time.Time
	if tr != nil {
		t0 = time.Now()
	}
	r.initIterationZero(carry)
	if tr != nil {
		tr.Phase(0, telemetry.PhaseInit, time.Since(t0), r.maxChunkDur())
	}

	res := &Result{
		Z:       ZLevels(f, eps),
		Alpha:   globalAlpha,
		Epsilon: eps,
	}
	for st.uncovered > 0 {
		if res.Iterations >= maxIter {
			return nil, fmt.Errorf("%w: %d iterations, %d edges uncovered",
				ErrIterationLimit, res.Iterations, st.uncovered)
		}
		res.Iterations++
		var its IterationStats
		its.Iteration = res.Iterations
		if tr != nil {
			t0 = time.Now()
		}
		r.vertexPhase(&its)
		if tr != nil {
			tr.Phase(res.Iterations, telemetry.PhaseVertex, time.Since(t0), r.maxChunkDur())
			t0 = time.Now()
		}
		r.edgePhase(&its)
		if tr != nil {
			tr.Phase(res.Iterations, telemetry.PhaseEdge, time.Since(t0), r.maxChunkDur())
			t0 = time.Now()
		}
		r.gatherPhase()
		if tr != nil {
			tr.Phase(res.Iterations, telemetry.PhaseGather, time.Since(t0), r.maxChunkDur())
		}
		if opts.CheckInvariants {
			if err := st.checkInvariants(res.Iterations, res.Z); err != nil {
				return nil, err
			}
		}
		if opts.CollectTrace {
			its.ActiveEdges = st.uncovered
			for v := 0; v < n; v++ {
				if !st.doneV[v] {
					its.ActiveVertices++
				}
			}
			res.Trace = append(res.Trace, its)
		}
	}
	st.fill(res)
	return res, nil
}

// forChunks runs fn(chunk) for every chunk, in parallel on the worker pool
// (inline when the run is single-worker). The surrounding barrier provides
// the happens-before edges between phases.
func (r *flatRun) forChunks(fn func(chunk int)) {
	if r.chunkNS != nil {
		inner := fn
		fn = func(chunk int) {
			t0 := time.Now()
			inner(chunk)
			r.chunkNS[chunk] = int64(time.Since(t0))
		}
	}
	if r.workers == 1 {
		fn(0)
		return
	}
	r.fn = fn
	r.phaseWG.Add(r.workers)
	for c := 0; c < r.workers; c++ {
		r.work <- c
	}
	r.phaseWG.Wait()
}

// maxChunkDur returns the longest chunk of the most recent parallel-for
// (tracing only; 0 when tracing is off).
func (r *flatRun) maxChunkDur() time.Duration {
	var max int64
	for _, ns := range r.chunkNS {
		if ns > max {
			max = ns
		}
	}
	return time.Duration(max)
}

// initIterationZero is the parallel form of state.initIterationZero: vertex
// seeding, per-edge initial bids, then a per-vertex gather of the bids into
// the Σδ / Σbid aggregates (ascending edge id — the sequential scatter
// order).
func (r *flatRun) initIterationZero(carry []float64) {
	st, g := r.st, r.st.g
	num := st.num
	f := maxInt(g.Rank(), 1)
	r.forChunks(func(c int) {
		for v := r.vb[c]; v < r.vb[c+1]; v++ {
			w := g.Weight(hypergraph.VertexID(v))
			st.wT[v] = float64(w)
			st.fWT[v] = float64(w * int64(f))
			st.sumDelta[v] = 0
			if carry != nil {
				st.sumDelta[v] = carry[v]
				for num.Add(st.sumDelta[v], num.HalfPow(st.wT[v], st.level[v]+1)) > st.wT[v] {
					st.level[v]++
				}
			}
			st.sumBid[v] = 0
			st.uncovDeg[v] = g.Degree(hypergraph.VertexID(v))
			if st.uncovDeg[v] == 0 {
				st.doneV[v] = true
			}
		}
	})
	r.forChunks(func(c int) {
		for e := r.eb[c]; e < r.eb[c+1]; e++ {
			vs := g.Edge(hypergraph.EdgeID(e))
			ve := vs[0]
			var b float64
			if carry == nil {
				for _, v := range vs[1:] {
					// argmin w(v)/|E(v)| with deterministic tie-break on lower
					// id, compared in exact integers (see runner.go).
					if g.Weight(v)*int64(g.Degree(ve)) < g.Weight(ve)*int64(g.Degree(v)) {
						ve = v
					}
				}
				b = num.FromRatio(g.Weight(ve), 2*int64(g.Degree(ve)))
			} else {
				best := num.HalfPow(num.FromRatio(g.Weight(ve), int64(g.Degree(ve))), st.level[ve])
				for _, v := range vs[1:] {
					cand := num.HalfPow(num.FromRatio(g.Weight(v), int64(g.Degree(v))), st.level[v])
					if cand < best {
						ve, best = v, cand
					}
				}
				b = num.HalfPow(num.FromRatio(g.Weight(ve), 2*int64(g.Degree(ve))), st.level[ve])
			}
			st.bid[e] = b
			st.delta[e] = b
		}
	})
	r.forChunks(func(c int) {
		for v := r.vb[c]; v < r.vb[c+1]; v++ {
			for _, e := range g.Incident(hypergraph.VertexID(v)) {
				st.sumDelta[v] = num.Add(st.sumDelta[v], st.bid[e])
				st.sumBid[v] = num.Add(st.sumBid[v], st.bid[e])
			}
		}
	})
}

// vertexPhase runs steps 3a/3d/3e in parallel. Vertices only touch their
// own state, so the body is the sequential one verbatim with per-chunk
// statistics.
func (r *flatRun) vertexPhase(its *IterationStats) {
	st := r.st
	num := st.num
	r.forChunks(func(c int) {
		part := &r.partStats[c]
		*part = IterationStats{}
		for v := r.vb[c]; v < r.vb[c+1]; v++ {
			st.inc[v] = 0
			st.joined[v] = false
			if st.doneV[v] {
				continue
			}
			if num.Cmp(num.Mul(st.sumDelta[v], st.fPlusEps), st.fWT[v]) >= 0 {
				st.inCover[v] = true
				st.joined[v] = true
				st.doneV[v] = true
				part.Joined++
				continue
			}
			for num.Cmp(num.Add(st.sumDelta[v], num.HalfPow(st.wT[v], st.level[v]+1)), st.wT[v]) > 0 {
				st.level[v]++
				st.inc[v]++
			}
			if st.inc[v] > 0 {
				st.stuckCur[v] = 0
				part.LevelIncrements += st.inc[v]
				if st.inc[v] > part.MaxLevelIncrement {
					part.MaxLevelIncrement = st.inc[v]
				}
			}
			view := num.HalfPow(st.sumBid[v], st.inc[v])
			if num.Cmp(num.Mul(st.alphaV[v], view), num.HalfPow(st.wT[v], st.level[v]+1)) <= 0 {
				st.raise[v] = true
			} else {
				st.raise[v] = false
				part.StuckVertices++
				st.stuckCur[v]++
				if st.stuckCur[v] > st.stuckMax[v] {
					st.stuckMax[v] = st.stuckCur[v]
				}
			}
		}
	})
	for c := 0; c < r.workers; c++ {
		p := r.partStats[c]
		its.Joined += p.Joined
		its.LevelIncrements += p.LevelIncrements
		its.StuckVertices += p.StuckVertices
		if p.MaxLevelIncrement > its.MaxLevelIncrement {
			its.MaxLevelIncrement = p.MaxLevelIncrement
		}
	}
}

// edgePhase runs the per-edge half of steps 3b/3c/3d/3f in parallel: each
// live edge decides covered-vs-live, halves and raises its bid, and records
// its dual increment in addE for the gather phase. The Σδ scatter of the
// sequential runner is deferred to gatherPhase.
func (r *flatRun) edgePhase(its *IterationStats) {
	st, g := r.st, r.st.g
	num := st.num
	r.forChunks(func(c int) {
		part := &r.partStats[c]
		*part = IterationStats{}
		for e := r.eb[c]; e < r.eb[c+1]; e++ {
			if st.covered[e] {
				r.newly[e] = false // covered in an earlier iteration
				continue
			}
			vs := g.Edge(hypergraph.EdgeID(e))
			nowCovered := false
			halvings := 0
			allRaise := true
			for _, v := range vs {
				if st.joined[v] {
					nowCovered = true
				}
				halvings += st.inc[v]
				if !st.raise[v] {
					allRaise = false
				}
			}
			if nowCovered {
				st.covered[e] = true
				r.newly[e] = true
				part.CoveredEdges++
				continue
			}
			if halvings > 0 {
				st.bid[e] = num.HalfPow(st.bid[e], halvings)
			}
			if allRaise {
				st.bid[e] = num.Mul(st.bid[e], st.alphaE[e])
				part.RaisedEdges++
				st.raises[e]++
			}
			add := st.bid[e]
			if st.opts.Variant == VariantSingleLevel {
				add = num.HalfPow(add, 1)
			}
			st.delta[e] = num.Add(st.delta[e], add)
			r.addE[e] = add
		}
	})
	for c := 0; c < r.workers; c++ {
		p := r.partStats[c]
		its.CoveredEdges += p.CoveredEdges
		its.RaisedEdges += p.RaisedEdges
		st.uncovered -= p.CoveredEdges
	}
}

// gatherPhase is the vertex-side completion of the edge phase plus the
// aggregate refresh, fused into one incidence walk per vertex: newly
// covered edges decrement the uncovered degree, live edges contribute their
// dual increment to Σδ and their bid to the refreshed Σbid — both in
// ascending edge id, the order the sequential runner applies them in.
func (r *flatRun) gatherPhase() {
	st, g := r.st, r.st.g
	num := st.num
	r.forChunks(func(c int) {
		for v := r.vb[c]; v < r.vb[c+1]; v++ {
			if st.doneV[v] {
				continue
			}
			deg := st.uncovDeg[v]
			sumBid := 0.0
			alphaV := st.alphaV[v]
			if st.localAlpha {
				alphaV = 2
			}
			for _, e := range g.Incident(hypergraph.VertexID(v)) {
				if r.newly[e] {
					deg--
					continue
				}
				if st.covered[e] {
					continue
				}
				st.sumDelta[v] = num.Add(st.sumDelta[v], r.addE[e])
				sumBid = num.Add(sumBid, st.bid[e])
				if st.localAlpha && st.alphaE[e] > alphaV {
					alphaV = st.alphaE[e]
				}
			}
			st.uncovDeg[v] = deg
			if deg == 0 {
				st.doneV[v] = true
				continue
			}
			st.sumBid[v] = sumBid
			if st.localAlpha {
				st.alphaV[v] = alphaV
			}
		}
	})
}

// csrOffsets adapts a hypergraph offset view for volumeBounds: the
// zero-value graph exposes empty offset arrays, which stand for zero
// items.
func csrOffsets(off []int) []int {
	if len(off) == 0 {
		return []int{0}
	}
	return off
}

// volumeBounds partitions items 0..len(off)-2 into parts contiguous chunks
// of roughly equal volume, where off is the cumulative volume (off[i] =
// volume of items < i). Chunk c covers [bounds[c], bounds[c+1]). Items with
// zero volume cannot skew a chunk, and an all-zero volume falls back to an
// equal item split.
func volumeBounds(off []int, parts int) []int {
	items := len(off) - 1
	bounds := make([]int, parts+1)
	total := off[items]
	if total == 0 {
		for c := 0; c <= parts; c++ {
			bounds[c] = c * items / parts
		}
		return bounds
	}
	for c := 1; c < parts; c++ {
		target := total * c / parts
		i := sort.SearchInts(off, target)
		if i > items {
			i = items
		}
		if i < bounds[c-1] {
			i = bounds[c-1]
		}
		bounds[c] = i
	}
	bounds[parts] = items
	return bounds
}
