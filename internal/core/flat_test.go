package core

import (
	"math/rand"
	"reflect"
	"testing"

	"distcover/internal/hypergraph"
)

// flatTestInstance draws one instance from the same mix of families the
// engine-equivalence test at the repository root uses (graphs, f>2,
// power-law, near-regular).
func flatTestInstance(t *testing.T, rng *rand.Rand, i int) *hypergraph.Hypergraph {
	t.Helper()
	seed := rng.Int63()
	var (
		g   *hypergraph.Hypergraph
		err error
	)
	switch i % 4 {
	case 0:
		n := 5 + rng.Intn(40)
		g, err = hypergraph.RandomGraph(n, 2*n, hypergraph.GenConfig{
			Seed: seed, Dist: hypergraph.WeightUniformRange, MaxWeight: 100,
		})
	case 1:
		f := 3 + rng.Intn(3)
		n := f + 5 + rng.Intn(40)
		g, err = hypergraph.UniformRandom(n, 3*n, f, hypergraph.GenConfig{
			Seed: seed, Dist: hypergraph.WeightExponential, MaxWeight: 1 << 14,
		})
	case 2:
		g, err = hypergraph.PowerLaw(20+rng.Intn(60), 120, 3, hypergraph.GenConfig{
			Seed: seed, Dist: hypergraph.WeightUniformRange, MaxWeight: 50,
		})
	default:
		g, err = hypergraph.RegularLike(30+rng.Intn(40), 4, 3, hypergraph.GenConfig{
			Seed: seed, Dist: hypergraph.WeightUniformOne,
		})
	}
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// requireSameResult asserts bit-for-bit equality of everything a Result
// carries (duals compared exactly — the flat runner must apply the same
// float operations in the same order).
func requireFlatSameResult(t *testing.T, label string, got, want *Result) {
	t.Helper()
	if !reflect.DeepEqual(got.Cover, want.Cover) {
		t.Fatalf("%s: cover %v != %v", label, got.Cover, want.Cover)
	}
	if got.CoverWeight != want.CoverWeight {
		t.Fatalf("%s: weight %d != %d", label, got.CoverWeight, want.CoverWeight)
	}
	if !reflect.DeepEqual(got.Dual, want.Dual) {
		t.Fatalf("%s: duals differ", label)
	}
	if got.DualValue != want.DualValue {
		t.Fatalf("%s: dual value %v != %v", label, got.DualValue, want.DualValue)
	}
	if got.Iterations != want.Iterations || got.Rounds != want.Rounds {
		t.Fatalf("%s: iterations/rounds %d/%d != %d/%d",
			label, got.Iterations, got.Rounds, want.Iterations, want.Rounds)
	}
	if got.MaxLevel != want.MaxLevel || got.Z != want.Z || got.Alpha != want.Alpha {
		t.Fatalf("%s: level/z/alpha mismatch", label)
	}
	if !reflect.DeepEqual(got.Trace, want.Trace) {
		t.Fatalf("%s: traces differ", label)
	}
	if !reflect.DeepEqual(got.EdgeRaises, want.EdgeRaises) {
		t.Fatalf("%s: edge raises differ", label)
	}
	if !reflect.DeepEqual(got.MaxStuckPerLevel, want.MaxStuckPerLevel) {
		t.Fatalf("%s: stuck counters differ", label)
	}
}

// TestFlatBitIdenticalToLockstep checks the flat runner against the
// sequential lockstep runner across option variants and worker counts,
// with tracing and invariant checks on.
func TestFlatBitIdenticalToLockstep(t *testing.T) {
	rng := rand.New(rand.NewSource(8421))
	variants := []struct {
		name string
		opts func() Options
	}{
		{"default", func() Options { return DefaultOptions() }},
		{"eps=0.25", func() Options { o := DefaultOptions(); o.Epsilon = 0.25; return o }},
		{"single-level", func() Options { o := DefaultOptions(); o.Variant = VariantSingleLevel; return o }},
		{"local-alpha", func() Options { o := DefaultOptions(); o.Alpha = AlphaLocal; return o }},
		{"fixed-alpha", func() Options { o := DefaultOptions(); o.Alpha = AlphaFixed; o.FixedAlpha = 3; return o }},
	}
	for i := 0; i < 24; i++ {
		g := flatTestInstance(t, rng, i)
		v := variants[i%len(variants)]
		opts := v.opts()
		opts.CollectTrace = true
		opts.CheckInvariants = true
		want, err := Run(g, opts)
		if err != nil {
			t.Fatalf("instance %d (%s): sequential: %v", i, v.name, err)
		}
		for workers := 1; workers <= 8; workers++ {
			got, err := RunFlat(g, opts, workers)
			if err != nil {
				t.Fatalf("instance %d (%s): flat/%d: %v", i, v.name, workers, err)
			}
			requireFlatSameResult(t, v.name, got, want)
		}
	}
}

// TestFlatResidualBitIdentical checks the warm-started path: random carried
// loads within each vertex's slack must produce the identical residual
// result on both runners.
func TestFlatResidualBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(77553))
	for i := 0; i < 12; i++ {
		g := flatTestInstance(t, rng, i)
		carry := make([]float64, g.NumVertices())
		for v := range carry {
			carry[v] = rng.Float64() * 0.9 * float64(g.Weight(hypergraph.VertexID(v)))
		}
		opts := DefaultOptions()
		opts.CollectTrace = true
		opts.CheckInvariants = true
		want, err := RunResidual(g, opts, carry)
		if err != nil {
			t.Fatalf("instance %d: sequential residual: %v", i, err)
		}
		for workers := 1; workers <= 8; workers++ {
			got, err := RunResidualFlat(g, opts, carry, workers)
			if err != nil {
				t.Fatalf("instance %d: flat residual/%d: %v", i, workers, err)
			}
			requireFlatSameResult(t, "residual", got, want)
		}
	}
}

// TestFlatCoveredEdgesNeverRevisited asserts the frontier actually drops
// covered edges from the work list: the number of live edges entering each
// iteration's edge phase must equal the uncovered-edge count the previous
// iteration left behind (m for the first iteration). A covered edge
// reappearing in the live list would inflate exactly this count.
func TestFlatCoveredEdgesNeverRevisited(t *testing.T) {
	rng := rand.New(rand.NewSource(4711))
	for i := 0; i < 12; i++ {
		g := flatTestInstance(t, rng, i)
		opts := DefaultOptions()
		opts.CollectTrace = true
		var live []int
		flatEdgeVisits = func(liveEdges int) { live = append(live, liveEdges) }
		res, err := RunFlat(g, opts, 1+i%4)
		flatEdgeVisits = nil
		if err != nil {
			t.Fatal(err)
		}
		if len(live) != len(res.Trace) {
			t.Fatalf("instance %d: %d edge phases vs %d traced iterations", i, len(live), len(res.Trace))
		}
		want := g.NumEdges()
		for k, got := range live {
			if got != want {
				t.Fatalf("instance %d iteration %d: edge phase visits %d live edges, want %d uncovered",
					i, k, got, want)
			}
			want = res.Trace[k].ActiveEdges
		}
	}
}

// TestFlatExactFallsBackSequential: exact runs must produce the sequential
// exact result (the flat runner routes them there).
func TestFlatExactFallsBackSequential(t *testing.T) {
	g := hypergraph.MustNew(
		[]int64{7, 3, 9, 2, 8},
		[][]hypergraph.VertexID{{0, 1, 2}, {2, 3, 4}, {0, 4}, {1, 3}},
	)
	opts := DefaultOptions()
	opts.Exact = true
	want, err := Run(g, opts)
	if err != nil {
		t.Fatal(err)
	}
	got, err := RunFlat(g, opts, 4)
	if err != nil {
		t.Fatal(err)
	}
	requireFlatSameResult(t, "exact", got, want)
}

// TestFlatEmptyAndIsolated covers the degenerate shapes: edgeless graphs
// and isolated vertices.
func TestFlatEmptyAndIsolated(t *testing.T) {
	g := hypergraph.MustNew([]int64{5, 1, 2}, [][]hypergraph.VertexID{{0, 1}})
	want, err := Run(g, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	got, err := RunFlat(g, DefaultOptions(), 8)
	if err != nil {
		t.Fatal(err)
	}
	requireFlatSameResult(t, "isolated", got, want)

	empty := hypergraph.MustNew([]int64{4, 2}, nil)
	want, err = Run(empty, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	got, err = RunFlat(empty, DefaultOptions(), 2)
	if err != nil {
		t.Fatal(err)
	}
	requireFlatSameResult(t, "edgeless", got, want)
}
