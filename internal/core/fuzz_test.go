package core

import (
	"errors"
	"testing"
)

// FuzzWireCodecDecode throws arbitrary bytes at the wire decoder: it must
// never panic, and anything it accepts must re-encode to a decodable frame
// describing the same message.
func FuzzWireCodecDecode(f *testing.F) {
	codec := WireCodec{}
	for _, m := range []interface{ Bits() int }{
		msgVertexInfo{w: 100, deg: 3},
		msgEdgeInit{wMin: 7, degMin: 2, localDelta: 9},
		msgVertexUpdate{inc: 1, raise: true},
		msgVertexCovered{},
		msgEdgeUpdate{halvings: 2, raised: false},
		msgEdgeCovered{},
	} {
		data, err := codec.Encode(m)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data)
	}
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff})
	f.Fuzz(func(t *testing.T, data []byte) {
		msg, err := codec.Decode(data)
		if err != nil {
			if !errors.Is(err, ErrBadWireMessage) {
				t.Fatalf("unexpected error type: %v", err)
			}
			return
		}
		re, err := codec.Encode(msg)
		if err != nil {
			t.Fatalf("accepted message fails re-encode: %v", err)
		}
		back, err := codec.Decode(re)
		if err != nil {
			t.Fatalf("re-encoded frame rejected: %v", err)
		}
		if back != msg {
			t.Fatalf("round trip changed message: %#v vs %#v", msg, back)
		}
	})
}
