package core

import (
	"errors"
	"fmt"
	"math"
)

// ErrInvariantViolated is returned when Options.CheckInvariants detects a
// violation of the paper's invariants during a run. It indicates a bug (or,
// in float64 mode, numerical drift beyond tolerance).
var ErrInvariantViolated = errors.New("core: invariant violated")

// invariantTolerance is the relative slack allowed in float64 mode; exact
// mode checks with zero tolerance.
const invariantTolerance = 1e-9

// checkInvariants verifies, at the end of an iteration:
//
//	Claim 1: for every active vertex, Σ_{e∈E'(v)} bid(e) ≤ 2^{-(ℓ(v)+1)}·w(v)
//	Claim 2: the duals are a feasible edge packing: Σ_{e∈E(v)} δ(e) ≤ w(v)
//	         and, for active vertices at level ℓ > 0, the lower half of
//	         Eq. (1): w(v)·(1 - 2^{-ℓ(v)}) ≤ Σ δ(e)
//	Claim 4: ℓ(v) < z (exact mode; float mode allows ℓ(v) ≤ z for boundary
//	         rounding)
//
// The checks run in the same arithmetic as the algorithm; float64 mode
// allows a relative tolerance.
func (st *state[T]) checkInvariants(iteration, z int) error {
	num := st.num
	exact := num.IntegerAlpha()
	leq := func(a, b T) bool {
		if num.Cmp(a, b) <= 0 {
			return true
		}
		if exact {
			return false
		}
		fa, fb := num.Float(a), num.Float(b)
		return fa <= fb*(1+invariantTolerance)+invariantTolerance
	}
	for v := 0; v < st.g.NumVertices(); v++ {
		// Claim 2, packing side: holds for every vertex, terminated or not.
		if !leq(st.sumDelta[v], st.wT[v]) {
			return fmt.Errorf("%w: iteration %d vertex %d: Σδ = %g > w = %g (Claim 2)",
				ErrInvariantViolated, iteration, v,
				num.Float(st.sumDelta[v]), num.Float(st.wT[v]))
		}
		if st.doneV[v] {
			continue
		}
		// Claim 4.
		levelCap := z
		if !exact {
			levelCap = z + 1
		}
		if st.level[v] >= levelCap {
			return fmt.Errorf("%w: iteration %d vertex %d: level %d reached cap %d (Claim 4)",
				ErrInvariantViolated, iteration, v, st.level[v], levelCap)
		}
		// Claim 1 on the refreshed aggregate.
		if !leq(st.sumBid[v], num.HalfPow(st.wT[v], st.level[v]+1)) {
			return fmt.Errorf("%w: iteration %d vertex %d: Σbid = %g > 2^-(ℓ+1)·w = %g (Claim 1)",
				ErrInvariantViolated, iteration, v,
				num.Float(st.sumBid[v]), num.Float(num.HalfPow(st.wT[v], st.level[v]+1)))
		}
		// Eq. (1) lower half, float-checked (it is a derived property used
		// by Lemma 7's accounting, not a safety condition).
		if st.level[v] > 0 {
			lower := num.Float(st.wT[v]) * (1 - math.Pow(0.5, float64(st.level[v])))
			if num.Float(st.sumDelta[v]) < lower*(1-invariantTolerance)-invariantTolerance {
				return fmt.Errorf("%w: iteration %d vertex %d: Σδ = %g below level-%d floor %g (Eq. 1)",
					ErrInvariantViolated, iteration, v,
					num.Float(st.sumDelta[v]), st.level[v], lower)
			}
		}
	}
	// Dual non-negativity (Claim 2).
	zero := num.Zero()
	for e := 0; e < st.g.NumEdges(); e++ {
		if num.Cmp(st.delta[e], zero) < 0 {
			return fmt.Errorf("%w: iteration %d edge %d: δ = %g < 0",
				ErrInvariantViolated, iteration, e, num.Float(st.delta[e]))
		}
	}
	return nil
}
