package core

import (
	"errors"
	"testing"
	"testing/quick"

	"distcover/internal/hypergraph"
)

func TestInvariantsHoldAcrossConfigurations(t *testing.T) {
	tests := []struct {
		name string
		opts Options
	}{
		{"float default", func() Options { o := DefaultOptions(); o.CheckInvariants = true; return o }()},
		{"exact default", func() Options {
			o := DefaultOptions()
			o.CheckInvariants = true
			o.Exact = true
			return o
		}()},
		{"exact single-level", func() Options {
			o := DefaultOptions()
			o.CheckInvariants = true
			o.Exact = true
			o.Variant = VariantSingleLevel
			return o
		}()},
		{"float local alpha small eps", func() Options {
			o := DefaultOptions()
			o.CheckInvariants = true
			o.Alpha = AlphaLocal
			o.Epsilon = 0.05
			return o
		}()},
		{"exact fixed alpha", func() Options {
			o := DefaultOptions()
			o.CheckInvariants = true
			o.Exact = true
			o.Alpha = AlphaFixed
			o.FixedAlpha = 8
			return o
		}()},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			nInst := 6
			if tt.opts.Exact {
				nInst = 3 // big.Rat runs are slower
			}
			for seed := int64(0); seed < int64(nInst); seed++ {
				g, err := hypergraph.UniformRandom(30, 60, 3, hypergraph.GenConfig{
					Seed: seed, Dist: hypergraph.WeightExponential, MaxWeight: 1 << 12,
				})
				if err != nil {
					t.Fatal(err)
				}
				if _, err := Run(g, tt.opts); err != nil {
					t.Errorf("seed %d: %v", seed, err)
				}
			}
		})
	}
}

func TestInvariantsHoldOnAdversarialShapes(t *testing.T) {
	opts := DefaultOptions()
	opts.CheckInvariants = true
	opts.Exact = true
	builds := []struct {
		name  string
		build func() (*hypergraph.Hypergraph, error)
	}{
		{"star", func() (*hypergraph.Hypergraph, error) { return hypergraph.Star(32, 3, 7) }},
		{"lollipop", func() (*hypergraph.Hypergraph, error) { return hypergraph.Lollipop(64, 1<<16) }},
		{"complete", func() (*hypergraph.Hypergraph, error) { return hypergraph.CompleteGraph(12) }},
		{"singletons", func() (*hypergraph.Hypergraph, error) {
			return hypergraph.New([]int64{1, 1 << 20}, [][]hypergraph.VertexID{{0}, {1}})
		}},
	}
	for _, tt := range builds {
		t.Run(tt.name, func(t *testing.T) {
			g, err := tt.build()
			if err != nil {
				t.Fatal(err)
			}
			if _, err := Run(g, opts); err != nil {
				t.Error(err)
			}
		})
	}
}

func TestInvariantsPropertyFloat(t *testing.T) {
	opts := DefaultOptions()
	opts.CheckInvariants = true
	prop := func(seed int64, nRaw, fRaw uint8) bool {
		n := int(nRaw%40) + 2
		f := int(fRaw%4) + 1
		if f > n {
			f = n
		}
		g, err := hypergraph.UniformRandom(n, 2*n, f, hypergraph.GenConfig{
			Seed: seed, Dist: hypergraph.WeightUniformRange, MaxWeight: 1000,
		})
		if err != nil {
			return false
		}
		_, err = Run(g, opts)
		return err == nil
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestCheckerDetectsCorruption corrupts runner state directly and asserts
// every class of violation is caught — the checker itself is load-bearing
// for the other tests, so it must not silently pass on bad state.
func TestCheckerDetectsCorruption(t *testing.T) {
	g := hypergraph.MustNew([]int64{4, 4, 4},
		[][]hypergraph.VertexID{{0, 1}, {1, 2}})
	num := floatNumeric{}
	fresh := func() *state[float64] {
		st := &state[float64]{
			num:      num,
			g:        g,
			opts:     DefaultOptions(),
			bid:      make([]float64, 2),
			delta:    make([]float64, 2),
			covered:  make([]bool, 2),
			alphaE:   make([]float64, 2),
			level:    make([]int, 3),
			sumDelta: make([]float64, 3),
			sumBid:   make([]float64, 3),
			alphaV:   make([]float64, 3),
			inCover:  make([]bool, 3),
			doneV:    make([]bool, 3),
			uncovDeg: []int{1, 2, 1},
			inc:      make([]int, 3),
			raise:    make([]bool, 3),
			joined:   make([]bool, 3),
			wT:       []float64{4, 4, 4},
			fWT:      []float64{8, 8, 8},
			fPlusEps: 3,
		}
		st.resolveAlphas(2, 1)
		return st
	}
	tests := []struct {
		name    string
		corrupt func(*state[float64])
	}{
		{"packing violation", func(st *state[float64]) { st.sumDelta[1] = 5 }},
		{"bid-sum violation", func(st *state[float64]) { st.sumBid[0] = 3 }},
		{"level cap violation", func(st *state[float64]) { st.level[2] = 99 }},
		{"negative dual", func(st *state[float64]) { st.delta[0] = -1 }},
		{"level floor violation", func(st *state[float64]) {
			st.level[0] = 1
			st.sumDelta[0] = 0.1 // far below w(1-1/2) = 2
		}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			st := fresh()
			if err := st.checkInvariants(1, ZLevels(2, 1)); err != nil {
				t.Fatalf("clean state flagged: %v", err)
			}
			tt.corrupt(st)
			if err := st.checkInvariants(1, ZLevels(2, 1)); !errors.Is(err, ErrInvariantViolated) {
				t.Errorf("corruption not detected: %v", err)
			}
		})
	}
}
