package core

import (
	"math"
	"testing"

	"distcover/internal/hypergraph"
)

// TestLemma6RaiseBound verifies, per edge, that the number of α-raises
// never exceeds the Lemma 6 bound log_α(Δ·2^{f·z}): the initial bid is at
// least 0.5·w(v*)/Δ, it never exceeds 0.5·w(v*) (Claim 1), it multiplies by
// α on every raise and halves at most f·z times.
func TestLemma6RaiseBound(t *testing.T) {
	workloads := []struct {
		name  string
		build func() (*hypergraph.Hypergraph, error)
	}{
		{"lollipop", func() (*hypergraph.Hypergraph, error) { return hypergraph.Lollipop(512, 512*1024) }},
		{"random", func() (*hypergraph.Hypergraph, error) {
			return hypergraph.UniformRandom(200, 500, 3, hypergraph.GenConfig{
				Seed: 1, Dist: hypergraph.WeightExponential, MaxWeight: 1 << 16,
			})
		}},
		{"power-law", func() (*hypergraph.Hypergraph, error) {
			return hypergraph.PowerLaw(150, 400, 3, hypergraph.GenConfig{
				Seed: 2, Dist: hypergraph.WeightUniformRange, MaxWeight: 100,
			})
		}},
	}
	alphas := []float64{2, 4, 8}
	for _, wl := range workloads {
		for _, alpha := range alphas {
			g, err := wl.build()
			if err != nil {
				t.Fatal(err)
			}
			opts := DefaultOptions()
			opts.Alpha = AlphaFixed
			opts.FixedAlpha = alpha
			opts.CollectTrace = true
			res, err := Run(g, opts)
			if err != nil {
				t.Fatal(err)
			}
			f := float64(g.Rank())
			z := float64(res.Z)
			delta := float64(g.MaxDegree())
			// Lemma 6: raises(e) ≤ log_α(Δ·2^{f·z}); +1 absorbs the
			// iteration-0 rounding of the bound's derivation.
			bound := math.Log(delta*math.Pow(2, f*z))/math.Log(alpha) + 1
			for e, raises := range res.EdgeRaises {
				if float64(raises) > bound {
					t.Errorf("%s α=%g: edge %d raised %d times > Lemma 6 bound %.1f",
						wl.name, alpha, e, raises, bound)
				}
			}
		}
	}
}

// TestLemma7StuckBound verifies, per vertex, that the number of stuck
// iterations spent at any single level never exceeds α (Lemma 7), or 2α
// for the Appendix C variant (Lemma 22).
func TestLemma7StuckBound(t *testing.T) {
	for _, variant := range []Variant{VariantDefault, VariantSingleLevel} {
		for _, alpha := range []float64{2, 4, 8} {
			g, err := hypergraph.UniformRandom(200, 500, 3, hypergraph.GenConfig{
				Seed: 3, Dist: hypergraph.WeightExponential, MaxWeight: 1 << 12,
			})
			if err != nil {
				t.Fatal(err)
			}
			opts := DefaultOptions()
			opts.Variant = variant
			opts.Alpha = AlphaFixed
			opts.FixedAlpha = alpha
			opts.CollectTrace = true
			res, err := Run(g, opts)
			if err != nil {
				t.Fatal(err)
			}
			bound := alpha
			if variant == VariantSingleLevel {
				bound = 2 * alpha // Lemma 22
			}
			// +1 absorbs the final stuck iteration in which the vertex
			// becomes β-tight instead of levelling up.
			for v, stuck := range res.MaxStuckPerLevel {
				if float64(stuck) > bound+1 {
					t.Errorf("variant=%s α=%g: vertex %d stuck %d times at one level > bound %g",
						variant, alpha, v, stuck, bound)
				}
			}
		}
	}
}

// TestTheorem8TotalIterations checks the end-to-end iteration count
// against the Theorem 8 bound with explicit constants: iterations ≤
// raise bound + Σ_{v∈e} stuck bound for the worst edge, i.e.
// log_α(Δ·2^{f·z}) + f·z·α up to the small additive slack of the two
// per-component checks above.
func TestTheorem8TotalIterations(t *testing.T) {
	for _, alpha := range []float64{2, 4, 8, 16} {
		g, err := hypergraph.RegularLike(1000, 16, 3, hypergraph.GenConfig{
			Seed: 4, Dist: hypergraph.WeightExponential, MaxWeight: 1 << 16,
		})
		if err != nil {
			t.Fatal(err)
		}
		opts := DefaultOptions()
		opts.Alpha = AlphaFixed
		opts.FixedAlpha = alpha
		res, err := Run(g, opts)
		if err != nil {
			t.Fatal(err)
		}
		f := float64(g.Rank())
		z := float64(res.Z)
		delta := float64(g.MaxDegree())
		bound := math.Log(delta*math.Pow(2, f*z))/math.Log(alpha) + f*z*alpha + f + 2
		if float64(res.Iterations) > bound {
			t.Errorf("α=%g: %d iterations exceed Theorem 8 bound %.1f",
				alpha, res.Iterations, bound)
		}
	}
}
