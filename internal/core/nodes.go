package core

import (
	"errors"
	"fmt"
	"math"
	"time"

	"distcover/internal/congest"
	"distcover/internal/hypergraph"
	"distcover/internal/telemetry"
)

// This file implements the Appendix B CONGEST execution of Algorithm MWHVC.
// The communication network is bipartite: vertex nodes 0..n-1 and edge
// nodes n..n+m-1, one link per incidence (Section 2). Vertices act on even
// rounds and edges on odd rounds, so one algorithm iteration costs exactly
// two CONGEST rounds after the two-round iteration 0:
//
//	round 0 (v→e): (w(v), |E(v)|)                      — O(log n) bits
//	round 1 (e→v): (w(ve), |E(ve)|, Δ(e))              — O(log n) bits
//	round 2i (v→e): "covered" | (level increments, raise/stuck)
//	round 2i+1 (e→v): "edge covered" | (halvings, raised bit)
//
// Both endpoints mirror bid(e) and δ(e) locally, so only increments and
// single bits cross links, as in the paper. The arithmetic is the same
// float64 code the lockstep runner uses; tests assert the two paths agree
// exactly, including summation order (ascending edge id everywhere).

// ErrExactCongest is returned when RunCongest is asked for exact
// arithmetic; the message protocol mirrors values as float64.
var ErrExactCongest = errors.New("core: exact arithmetic is not supported on the congest path")

// protoParams is the static configuration every node knows (the paper
// assumes f, ε and — for the global policy — Δ are common knowledge).
type protoParams struct {
	f          int
	eps        float64
	variant    Variant
	alpha      AlphaPolicy
	fixedAlpha float64
	gamma      float64
	delta      int // global Δ, for AlphaTheorem9
	// residual switches the init handshake to the warm-start messages that
	// carry vertex levels (incremental sessions, see residual.go). The
	// iteration phases are untouched.
	residual bool
}

// alphaFor resolves α for an edge whose local maximum degree is localDelta.
func (p *protoParams) alphaFor(localDelta int) float64 {
	switch p.alpha {
	case AlphaLocal:
		return AlphaTheorem9Value(p.f, p.eps, localDelta, p.gamma)
	case AlphaFixed:
		return p.fixedAlpha
	default:
		return AlphaTheorem9Value(p.f, p.eps, p.delta, p.gamma)
	}
}

// Protocol messages. Sizes follow the encodings discussed in Appendix B.

type msgVertexInfo struct {
	w, deg int64
}

func (m msgVertexInfo) Bits() int { return congest.IntBits(m.w) + congest.IntBits(m.deg) }

type msgEdgeInit struct {
	wMin, degMin int64
	localDelta   int64
}

func (m msgEdgeInit) Bits() int {
	return congest.IntBits(m.wMin) + congest.IntBits(m.degMin) + congest.IntBits(m.localDelta)
}

type msgVertexUpdate struct {
	inc   int64
	raise bool
}

func (m msgVertexUpdate) Bits() int { return congest.IntBits(m.inc) + 1 }

type msgVertexCovered struct{}

func (msgVertexCovered) Bits() int { return 1 }

type msgEdgeUpdate struct {
	halvings int64
	raised   bool
}

func (m msgEdgeUpdate) Bits() int { return congest.IntBits(m.halvings) + 1 }

type msgEdgeCovered struct{}

func (msgEdgeCovered) Bits() int { return 1 }

// Residual (warm-start) init messages: identical to msgVertexInfo and
// msgEdgeInit plus the vertex level implied by the carried dual load, so a
// new edge can size its first bid to the remaining slack bound w·2^{-ℓ}.
// Levels are O(log(1/β)) = O(log n) for the FApprox regime, so the messages
// stay within the CONGEST budget.

type msgVertexInfoRes struct {
	w, deg, level int64
}

func (m msgVertexInfoRes) Bits() int {
	return congest.IntBits(m.w) + congest.IntBits(m.deg) + congest.IntBits(m.level)
}

type msgEdgeInitRes struct {
	wMin, degMin, levelMin int64
	localDelta             int64
}

func (m msgEdgeInitRes) Bits() int {
	return congest.IntBits(m.wMin) + congest.IntBits(m.degMin) +
		congest.IntBits(m.levelMin) + congest.IntBits(m.localDelta)
}

// The zero-size announcements are boxed once; the per-step messages below
// are boxed once per step (a node sends the identical value on every link,
// so per-Send conversion would heap-allocate the same struct deg times —
// measurable GC pressure at million-node scale).
var (
	vertexCoveredMsg congest.Message = msgVertexCovered{}
	edgeCoveredMsg   congest.Message = msgEdgeCovered{}
)

// vertexNode is the server-side (hypergraph vertex) state machine.
type vertexNode struct {
	p   *protoParams
	num floatNumeric
	w   int64

	edges []congest.NodeID // incident edge nodes, ascending

	// Mirrors, indexed like edges.
	bid     []float64
	delta   []float64
	alphaE  []float64
	covered []bool

	level    int
	sumDelta float64
	sumBid   float64
	alphaV   float64
	uncov    int
	inCover  bool
	inited   bool
}

func (v *vertexNode) Step(round int, inbox []congest.Envelope, out *congest.Outbox) bool {
	if round%2 == 1 {
		return false // edges act on odd rounds
	}
	if round == 0 {
		if len(v.edges) == 0 {
			return true // isolated vertex: terminates with empty E'(v)
		}
		var info congest.Message
		if v.p.residual {
			info = msgVertexInfoRes{w: v.w, deg: int64(len(v.edges)), level: int64(v.level)}
		} else {
			info = msgVertexInfo{w: v.w, deg: int64(len(v.edges))}
		}
		for _, e := range v.edges {
			out.Send(e, info)
		}
		return false
	}
	v.processInbox(inbox)
	if !v.inited {
		// Init messages lost only if the graph is malformed; nothing to do.
		return v.uncov == 0
	}
	if v.uncov == 0 {
		return true // E'(v) = ∅: terminate without joining (step 3c)
	}
	// Step 3a: β-tight ⇔ (f+ε)·Σδ ≥ f·w.
	fPlusEps := float64(v.p.f) + v.p.eps
	if v.sumDelta*fPlusEps >= float64(v.p.f)*float64(v.w) {
		v.inCover = true
		for i, e := range v.edges {
			if !v.covered[i] {
				out.Send(e, vertexCoveredMsg)
			}
		}
		return true
	}
	// Step 3d: level increments.
	inc := 0
	wT := float64(v.w)
	for v.num.Add(v.sumDelta, v.num.HalfPow(wT, v.level+1)) > wT {
		v.level++
		inc++
	}
	// Step 3e: raise/stuck, seeing bids after own halvings only.
	view := v.num.HalfPow(v.sumBid, inc)
	raise := v.num.Mul(v.alphaV, view) <= v.num.HalfPow(wT, v.level+1)
	upd := congest.Message(msgVertexUpdate{inc: int64(inc), raise: raise})
	for i, e := range v.edges {
		if !v.covered[i] {
			out.Send(e, upd)
		}
	}
	return false
}

// processInbox applies edge reports: initial bids (round 1 output), covered
// notifications, and (halvings, raised) updates; then recomputes the
// uncovered-bid aggregate in ascending edge order to match the lockstep
// runner's float summation exactly.
//
// The inbox arrives sorted by sender id (the congest.Node contract) and
// v.edges is ascending, so a single merge walk resolves each sender to its
// mirror index — no per-vertex index map, no per-envelope map lookup.
func (v *vertexNode) processInbox(inbox []congest.Envelope) {
	if len(inbox) == 0 {
		return
	}
	j := 0
	for _, env := range inbox {
		for j < len(v.edges) && v.edges[j] < env.From {
			j++
		}
		if j == len(v.edges) {
			break
		}
		if v.edges[j] != env.From {
			continue // not an incident edge; ignore
		}
		i := j
		switch m := env.Msg.(type) {
		case msgEdgeInit:
			b := v.num.FromRatio(m.wMin, 2*m.degMin)
			v.bid[i] = b
			v.delta[i] = b
			v.sumDelta = v.num.Add(v.sumDelta, b)
			v.alphaE[i] = v.p.alphaFor(int(m.localDelta))
			v.inited = true
		case msgEdgeInitRes:
			b := v.num.HalfPow(v.num.FromRatio(m.wMin, 2*m.degMin), int(m.levelMin))
			v.bid[i] = b
			v.delta[i] = b
			v.sumDelta = v.num.Add(v.sumDelta, b)
			v.alphaE[i] = v.p.alphaFor(int(m.localDelta))
			v.inited = true
		case msgEdgeCovered:
			if !v.covered[i] {
				v.covered[i] = true
				v.uncov--
			}
		case msgEdgeUpdate:
			if m.halvings > 0 {
				v.bid[i] = v.num.HalfPow(v.bid[i], int(m.halvings))
			}
			if m.raised {
				v.bid[i] = v.num.Mul(v.bid[i], v.alphaE[i])
			}
			add := v.bid[i]
			if v.p.variant == VariantSingleLevel {
				add = v.num.HalfPow(add, 1)
			}
			v.delta[i] = v.num.Add(v.delta[i], add)
			v.sumDelta = v.num.Add(v.sumDelta, add)
		}
	}
	v.sumBid = 0
	v.alphaV = 2
	for i := range v.edges {
		if v.covered[i] {
			continue
		}
		v.sumBid = v.num.Add(v.sumBid, v.bid[i])
		if v.alphaE[i] > v.alphaV {
			v.alphaV = v.alphaE[i]
		}
	}
}

// edgeNode is the client-side (hyperedge) state machine.
type edgeNode struct {
	p   *protoParams
	num floatNumeric

	verts []congest.NodeID // member vertex nodes, ascending

	bid    float64
	delta  float64
	alphaE float64
	iters  int // edge phases executed (for Result.Iterations)
}

func (e *edgeNode) Step(round int, inbox []congest.Envelope, out *congest.Outbox) bool {
	if round%2 == 0 {
		return false // vertices act on even rounds
	}
	if round == 1 {
		return e.initPhase(inbox, out)
	}
	e.iters++
	covered := false
	var halvings int64
	allRaise := true
	for _, env := range inbox {
		switch m := env.Msg.(type) {
		case msgVertexCovered:
			covered = true
		case msgVertexUpdate:
			halvings += m.inc
			if !m.raise {
				allRaise = false
			}
		}
	}
	if covered {
		// Steps 3b: announce and terminate. Vertices that joined the cover
		// have already terminated; sends to them are dropped by the engine.
		for _, v := range e.verts {
			out.Send(v, edgeCoveredMsg)
		}
		return true
	}
	if halvings > 0 {
		e.bid = e.num.HalfPow(e.bid, int(halvings))
	}
	if allRaise {
		e.bid = e.num.Mul(e.bid, e.alphaE)
	}
	add := e.bid
	if e.p.variant == VariantSingleLevel {
		add = e.num.HalfPow(add, 1)
	}
	e.delta = e.num.Add(e.delta, add)
	upd := congest.Message(msgEdgeUpdate{halvings: halvings, raised: allRaise})
	for _, v := range e.verts {
		out.Send(v, upd)
	}
	return false
}

// initPhase runs iteration 0 on the edge side: collect (w, deg) from every
// member, pick the minimum normalized weight with the deterministic integer
// tie-break, set bid(e) = w(ve)/(2·|E(ve)|), and report it with the local
// maximum degree. In residual mode the reports additionally carry the
// members' warm-start levels and the bid shrinks to the level-discounted
// slack bound, ½·(w·2^{-ℓ})/deg (same argmin, same float operations as the
// lockstep warm start in runner.go).
func (e *edgeNode) initPhase(inbox []congest.Envelope, out *congest.Outbox) bool {
	// The inbox is sorted by sender (congest.Node contract) and e.verts is
	// ascending, so a merge walk pairs each member with its report; members
	// whose report is missing (malformed graphs only) count as (0, 0), as
	// the earlier materialized w/deg slices did. Tracking the running
	// argmin (ties to the lower vertex id = earlier position) and maximum
	// degree inline avoids allocating per-edge slices.
	var wBest, degBest, lvlBest, localDelta int64
	var costBest float64
	j := 0
	for i, v := range e.verts {
		var wi, di, li int64
		for j < len(inbox) && inbox[j].From < v {
			j++
		}
		if j < len(inbox) && inbox[j].From == v {
			switch m := inbox[j].Msg.(type) {
			case msgVertexInfo:
				wi, di = m.w, m.deg
			case msgVertexInfoRes:
				wi, di, li = m.w, m.deg, m.level
			}
		}
		if e.p.residual {
			cost := e.num.HalfPow(e.num.FromRatio(wi, di), int(li))
			if i == 0 || cost < costBest {
				wBest, degBest, lvlBest, costBest = wi, di, li, cost
			}
		} else if i == 0 || wi*degBest < wBest*di {
			// argmin w/deg by cross-multiplication, strict < keeps the first.
			wBest, degBest = wi, di
		}
		if di > localDelta {
			localDelta = di
		}
	}
	e.alphaE = e.p.alphaFor(int(localDelta))
	var init congest.Message
	if e.p.residual {
		e.bid = e.num.HalfPow(e.num.FromRatio(wBest, 2*degBest), int(lvlBest))
		init = msgEdgeInitRes{wMin: wBest, degMin: degBest, levelMin: lvlBest, localDelta: localDelta}
	} else {
		e.bid = e.num.FromRatio(wBest, 2*degBest)
		init = msgEdgeInit{wMin: wBest, degMin: degBest, localDelta: localDelta}
	}
	e.delta = e.bid
	for _, v := range e.verts {
		out.Send(v, init)
	}
	return false
}

// BuildNetwork constructs the bipartite CONGEST network for g: vertex nodes
// 0..n-1, edge nodes n..n+m-1, one link per incidence. It returns the
// network plus the node handles used to extract the result after a run.
func BuildNetwork(g *hypergraph.Hypergraph, opts Options) (*congest.Network, []*vertexNode, []*edgeNode, error) {
	return buildNetwork(g, opts, nil)
}

// buildNetwork is BuildNetwork plus the optional warm start: with a non-nil
// carry, vertex node v is seeded with Σδ = carry[v] and the level that load
// implies, and the protocol runs the residual init handshake (residual.go).
func buildNetwork(g *hypergraph.Hypergraph, opts Options, carry []float64) (*congest.Network, []*vertexNode, []*edgeNode, error) {
	if err := opts.validate(g); err != nil {
		return nil, nil, nil, err
	}
	if opts.Exact {
		return nil, nil, nil, ErrExactCongest
	}
	p := &protoParams{
		f:          maxInt(g.Rank(), 1),
		eps:        opts.Epsilon,
		variant:    opts.Variant,
		alpha:      opts.Alpha,
		fixedAlpha: opts.FixedAlpha,
		gamma:      opts.Gamma,
		delta:      g.MaxDegree(),
		residual:   carry != nil,
	}
	n, m := g.NumVertices(), g.NumEdges()
	nw := congest.NewNetwork()

	// All per-incidence storage comes from shared arenas: one allocation per
	// kind instead of several per node, which at million-node scale is the
	// difference between a construction-bound and an execution-bound run.
	totalInc := 0
	for v := 0; v < n; v++ {
		totalInc += g.Degree(hypergraph.VertexID(v))
	}
	var (
		edgesArena   = make([]congest.NodeID, totalInc)
		bidArena     = make([]float64, totalInc)
		deltaArena   = make([]float64, totalInc)
		alphaArena   = make([]float64, totalInc)
		coveredArena = make([]bool, totalInc)
		vertsArena   = make([]congest.NodeID, 0, totalInc)
	)
	vnodes := make([]*vertexNode, n)
	vstructs := make([]vertexNode, n)
	off := 0
	for v := 0; v < n; v++ {
		k := g.Degree(hypergraph.VertexID(v))
		vn := &vstructs[v]
		*vn = vertexNode{
			p:       p,
			w:       g.Weight(hypergraph.VertexID(v)),
			edges:   edgesArena[off : off : off+k],
			bid:     bidArena[off : off+k : off+k],
			delta:   deltaArena[off : off+k : off+k],
			alphaE:  alphaArena[off : off+k : off+k],
			covered: coveredArena[off : off+k : off+k],
			uncov:   k,
		}
		if carry != nil {
			// Seed the carried load and derive the level with the step-3d
			// formula — the same float operations the lockstep warm start
			// performs, so both paths agree bit for bit.
			num := floatNumeric{}
			vn.sumDelta = carry[v]
			wf := float64(vn.w)
			for num.Add(vn.sumDelta, num.HalfPow(wf, vn.level+1)) > wf {
				vn.level++
			}
		}
		off += k
		vnodes[v] = vn
		nw.AddNode(vn)
		nw.Reserve(congest.NodeID(v), k)
	}
	enodes := make([]*edgeNode, m)
	estructs := make([]edgeNode, m)
	for e := 0; e < m; e++ {
		en := &estructs[e]
		en.p = p
		enodes[e] = en
		id := nw.AddNode(en)
		// g.Edge returns sorted distinct in-range vertex ids (guaranteed by
		// hypergraph.Builder), so the links are valid and duplicate-free by
		// construction and en.verts / vn.edges come out ascending (edge-node
		// ids increase with e) without sorting.
		vs := g.Edge(hypergraph.EdgeID(e))
		nw.Reserve(id, len(vs))
		start := len(vertsArena)
		for _, v := range vs {
			nw.ConnectTrusted(congest.NodeID(v), id)
			vertsArena = append(vertsArena, congest.NodeID(v))
			vnodes[v].edges = append(vnodes[v].edges, id)
		}
		en.verts = vertsArena[start:len(vertsArena):len(vertsArena)]
	}
	return nw, vnodes, enodes, nil
}

// RunCongest executes the protocol on the given engine and returns the
// algorithm result together with the engine's CONGEST metrics. A zero
// congestOpts gets the standard O(log(n+m)) bit budget and validation.
func RunCongest(g *hypergraph.Hypergraph, opts Options, eng congest.Engine, congestOpts congest.Options) (*Result, congest.Metrics, error) {
	nw, vnodes, enodes, err := BuildNetwork(g, opts)
	if err != nil {
		return nil, congest.Metrics{}, err
	}
	return RunBuiltNetwork(g, opts, nw, vnodes, enodes, eng, congestOpts)
}

// RunBuiltNetwork executes a network previously constructed by BuildNetwork
// (networks are stateful: build a fresh one per run) and extracts the
// result. Callers that need to separate construction cost from engine
// execution — the throughput benchmarks — use the two-step form; everyone
// else goes through RunCongest.
func RunBuiltNetwork(g *hypergraph.Hypergraph, opts Options, nw *congest.Network,
	vnodes []*vertexNode, enodes []*edgeNode, eng congest.Engine, congestOpts congest.Options) (*Result, congest.Metrics, error) {
	if congestOpts.BitBudget == 0 {
		congestOpts.BitBudget = congest.LogBudget(nw.NumNodes())
	}
	if congestOpts.MaxRounds == 0 {
		congestOpts.MaxRounds = 4 * congest.DefaultMaxRounds
	}
	// The message engines have no phase boundaries to hook; telemetry gets
	// one protocol-level span plus the round/message totals.
	tr := opts.Tracer
	var t0 time.Time
	if tr != nil {
		t0 = time.Now()
	}
	metrics, err := eng.Run(nw, congestOpts)
	if tr != nil {
		tr.Phase(0, telemetry.PhaseProtocol, time.Since(t0), 0)
		tr.Protocol(metrics.Rounds, metrics.Messages)
	}
	if err != nil {
		return nil, metrics, fmt.Errorf("core: congest run: %w", err)
	}
	// Re-resolve derived parameters exactly as Run does.
	resolved := opts
	if err := resolved.validate(g); err != nil {
		return nil, metrics, err
	}
	res := &Result{
		Z:       ZLevels(maxInt(g.Rank(), 1), resolved.Epsilon),
		Epsilon: resolved.Epsilon,
		Rounds:  metrics.Rounds,
		InCover: make([]bool, g.NumVertices()),
		Dual:    make([]float64, g.NumEdges()),
	}
	if opts.Alpha != AlphaLocal {
		if opts.Alpha == AlphaFixed {
			res.Alpha = opts.FixedAlpha
		} else {
			res.Alpha = AlphaTheorem9Value(maxInt(g.Rank(), 1), resolved.Epsilon, g.MaxDegree(), resolved.Gamma)
		}
	}
	for v, vn := range vnodes {
		if vn.inCover {
			res.InCover[v] = true
			res.Cover = append(res.Cover, hypergraph.VertexID(v))
			res.CoverWeight += g.Weight(hypergraph.VertexID(v))
		}
		if vn.level > res.MaxLevel {
			res.MaxLevel = vn.level
		}
	}
	for e, en := range enodes {
		res.Dual[e] = en.delta
		res.DualValue += en.delta
		if en.iters > res.Iterations {
			res.Iterations = en.iters
		}
	}
	if res.DualValue > 0 {
		res.RatioBound = float64(res.CoverWeight) / res.DualValue
	} else if res.CoverWeight == 0 {
		res.RatioBound = 1
	} else {
		res.RatioBound = math.Inf(1)
	}
	return res, metrics, nil
}
