package core

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"distcover/internal/congest"
	"distcover/internal/hypergraph"
	"distcover/internal/lp"
)

func runBoth(t *testing.T, g *hypergraph.Hypergraph, opts Options) (*Result, *Result, congest.Metrics) {
	t.Helper()
	lockstep, err := Run(g, opts)
	if err != nil {
		t.Fatalf("lockstep Run: %v", err)
	}
	cong, metrics, err := RunCongest(g, opts, congest.SequentialEngine{}, congest.Options{Validate: true})
	if err != nil {
		t.Fatalf("RunCongest: %v", err)
	}
	return lockstep, cong, metrics
}

// requireSameResult asserts the lockstep and congest paths agree exactly:
// same cover, same duals bit for bit, same iteration count and levels.
func requireSameResult(t *testing.T, a, b *Result) {
	t.Helper()
	if a.Iterations != b.Iterations {
		t.Errorf("iterations: lockstep %d vs congest %d", a.Iterations, b.Iterations)
	}
	if a.MaxLevel != b.MaxLevel {
		t.Errorf("max level: lockstep %d vs congest %d", a.MaxLevel, b.MaxLevel)
	}
	if a.CoverWeight != b.CoverWeight {
		t.Errorf("cover weight: lockstep %d vs congest %d", a.CoverWeight, b.CoverWeight)
	}
	if len(a.Cover) != len(b.Cover) {
		t.Fatalf("cover sizes: lockstep %d vs congest %d", len(a.Cover), len(b.Cover))
	}
	for i := range a.Cover {
		if a.Cover[i] != b.Cover[i] {
			t.Fatalf("covers differ at position %d: %d vs %d", i, a.Cover[i], b.Cover[i])
		}
	}
	if len(a.Dual) != len(b.Dual) {
		t.Fatalf("dual lengths differ")
	}
	for e := range a.Dual {
		if a.Dual[e] != b.Dual[e] {
			t.Fatalf("δ(%d) differs: lockstep %v vs congest %v", e, a.Dual[e], b.Dual[e])
		}
	}
}

func TestCongestMatchesLockstep(t *testing.T) {
	tests := []struct {
		name string
		opts Options
	}{
		{"default", DefaultOptions()},
		{"single-level", func() Options { o := DefaultOptions(); o.Variant = VariantSingleLevel; return o }()},
		{"local alpha", func() Options { o := DefaultOptions(); o.Alpha = AlphaLocal; return o }()},
		{"fixed alpha", func() Options { o := DefaultOptions(); o.Alpha = AlphaFixed; o.FixedAlpha = 8; return o }()},
		{"small epsilon", func() Options { o := DefaultOptions(); o.Epsilon = 0.05; return o }()},
		{"f-approx", func() Options { o := DefaultOptions(); o.FApprox = true; return o }()},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			for _, f := range []int{1, 2, 4} {
				g, err := hypergraph.UniformRandom(40, 80, f,
					hypergraph.GenConfig{Seed: 7 + int64(f), Dist: hypergraph.WeightUniformRange, MaxWeight: 30})
				if err != nil {
					t.Fatal(err)
				}
				lockstep, cong, _ := runBoth(t, g, tt.opts)
				requireSameResult(t, lockstep, cong)
			}
		})
	}
}

func TestCongestMatchesLockstepProperty(t *testing.T) {
	prop := func(seed int64, nRaw, mRaw, fRaw uint8) bool {
		n := int(nRaw%30) + 3
		f := int(fRaw%3) + 1
		if f > n {
			f = n
		}
		m := int(mRaw%50) + 1
		g, err := hypergraph.UniformRandom(n, m, f,
			hypergraph.GenConfig{Seed: seed, Dist: hypergraph.WeightExponential, MaxWeight: 1 << 12})
		if err != nil {
			return false
		}
		lockstep, err := Run(g, DefaultOptions())
		if err != nil {
			return false
		}
		cong, _, err := RunCongest(g, DefaultOptions(), congest.SequentialEngine{}, congest.Options{Validate: true})
		if err != nil {
			return false
		}
		if lockstep.Iterations != cong.Iterations || lockstep.CoverWeight != cong.CoverWeight {
			return false
		}
		for e := range lockstep.Dual {
			if lockstep.Dual[e] != cong.Dual[e] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestCongestParallelEngineAgrees(t *testing.T) {
	g, err := hypergraph.UniformRandom(30, 60, 3,
		hypergraph.GenConfig{Seed: 11, Dist: hypergraph.WeightUniformRange, MaxWeight: 25})
	if err != nil {
		t.Fatal(err)
	}
	seqRes, seqM, err := RunCongest(g, DefaultOptions(), congest.SequentialEngine{}, congest.Options{Validate: true})
	if err != nil {
		t.Fatal(err)
	}
	parRes, parM, err := RunCongest(g, DefaultOptions(), congest.ParallelEngine{}, congest.Options{Validate: true})
	if err != nil {
		t.Fatal(err)
	}
	requireSameResult(t, seqRes, parRes)
	if seqM != parM {
		t.Errorf("metrics differ: sequential %+v vs parallel %+v", seqM, parM)
	}
}

func TestCongestRoundsMatchIterationFormula(t *testing.T) {
	// Appendix B: 2 rounds for iteration 0 plus 2 per iteration; global
	// termination costs at most one extra round for the final covered
	// notifications.
	g, err := hypergraph.UniformRandom(50, 100, 3,
		hypergraph.GenConfig{Seed: 2, Dist: hypergraph.WeightUniformRange, MaxWeight: 40})
	if err != nil {
		t.Fatal(err)
	}
	lockstep, cong, metrics := runBoth(t, g, DefaultOptions())
	want := 2 + 2*lockstep.Iterations
	if metrics.Rounds < want || metrics.Rounds > want+1 {
		t.Errorf("congest rounds = %d, want %d or %d", metrics.Rounds, want, want+1)
	}
	if cong.Rounds != metrics.Rounds {
		t.Errorf("Result.Rounds = %d != metrics %d", cong.Rounds, metrics.Rounds)
	}
}

func TestCongestMessageSizesWithinLogBudget(t *testing.T) {
	// E8: the protocol is a real CONGEST protocol — every message fits in
	// O(log n) bits even with maximal weights and degrees.
	g, err := hypergraph.UniformRandom(200, 500, 4,
		hypergraph.GenConfig{Seed: 9, Dist: hypergraph.WeightExponential, MaxWeight: 1 << 30})
	if err != nil {
		t.Fatal(err)
	}
	budget := congest.LogBudget(g.NumVertices() + g.NumEdges())
	_, metrics, err := RunCongest(g, DefaultOptions(), congest.SequentialEngine{},
		congest.Options{Validate: true, BitBudget: budget})
	if err != nil {
		t.Fatalf("run with enforced budget: %v", err)
	}
	if metrics.MaxMessageBits > budget {
		t.Errorf("max message = %d bits > budget %d", metrics.MaxMessageBits, budget)
	}
	if metrics.MaxMessageBits == 0 {
		t.Error("no message sizes recorded")
	}
}

func TestCongestResultIsValidCover(t *testing.T) {
	g, err := hypergraph.UniformRandom(60, 150, 3,
		hypergraph.GenConfig{Seed: 13, Dist: hypergraph.WeightUniformRange, MaxWeight: 12})
	if err != nil {
		t.Fatal(err)
	}
	res, _, err := RunCongest(g, DefaultOptions(), congest.SequentialEngine{}, congest.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !g.IsCover(res.Cover) {
		t.Fatal("congest result is not a cover")
	}
	if err := lp.CheckEdgePacking(g, res.Dual, 1e-9); err != nil {
		t.Errorf("dual infeasible: %v", err)
	}
	bound := (float64(g.Rank()) + 1) * res.DualValue
	if float64(res.CoverWeight) > bound*(1+1e-9) {
		t.Errorf("approximation bound violated: %d > %f", res.CoverWeight, bound)
	}
	if math.IsNaN(res.RatioBound) || res.RatioBound <= 0 {
		t.Errorf("RatioBound = %f", res.RatioBound)
	}
}

func TestCongestRejectsExactMode(t *testing.T) {
	g := hypergraph.MustNew([]int64{1, 1}, [][]hypergraph.VertexID{{0, 1}})
	opts := DefaultOptions()
	opts.Exact = true
	_, _, err := RunCongest(g, opts, congest.SequentialEngine{}, congest.Options{})
	if !errors.Is(err, ErrExactCongest) {
		t.Errorf("err = %v, want ErrExactCongest", err)
	}
}

func TestCongestRejectsBadOptions(t *testing.T) {
	g := hypergraph.MustNew([]int64{1, 1}, [][]hypergraph.VertexID{{0, 1}})
	_, _, err := RunCongest(g, Options{}, congest.SequentialEngine{}, congest.Options{})
	if !errors.Is(err, ErrBadOptions) {
		t.Errorf("err = %v, want ErrBadOptions", err)
	}
}

func TestCongestEdgelessAndIsolated(t *testing.T) {
	// Isolated vertices terminate immediately; instance with no edges
	// finishes in one round.
	g := hypergraph.MustNew([]int64{1, 2, 3}, nil)
	res, metrics, err := RunCongest(g, DefaultOptions(), congest.SequentialEngine{}, congest.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cover) != 0 || res.Iterations != 0 {
		t.Errorf("edgeless congest result = (|C|=%d, iters=%d)", len(res.Cover), res.Iterations)
	}
	if metrics.Rounds != 1 {
		t.Errorf("rounds = %d, want 1", metrics.Rounds)
	}
}

func TestCongestStar(t *testing.T) {
	g, err := hypergraph.Star(32, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	lockstep, cong, _ := runBoth(t, g, DefaultOptions())
	requireSameResult(t, lockstep, cong)
	if !g.IsCover(cong.Cover) {
		t.Error("star not covered")
	}
}
