package core

import (
	"math"
	"math/big"
)

// numeric abstracts the arithmetic the runner performs on bids and duals so
// the same code runs in fast float64 mode and in exact big.Rat mode. All
// operations are value-semantics: implementations must not mutate their
// inputs (rats are shared between edges and vertex sums).
type numeric[T any] interface {
	// FromRatio returns num/den exactly.
	FromRatio(num, den int64) T
	// FromFloat converts a float64 (exact in rat mode).
	FromFloat(f float64) T
	// Zero returns 0.
	Zero() T
	// Add returns a+b.
	Add(a, b T) T
	// Mul returns a·b.
	Mul(a, b T) T
	// HalfPow returns a·2^-k for k ≥ 0.
	HalfPow(a T, k int) T
	// Cmp compares: -1 if a < b, 0 if equal, +1 if a > b.
	Cmp(a, b T) int
	// Float converts to float64 for reporting.
	Float(a T) float64
	// IntegerAlpha reports whether α must be rounded up to an integer to
	// keep values as small rationals (true in exact mode).
	IntegerAlpha() bool
}

// floatNumeric is the fast default arithmetic.
type floatNumeric struct{}

var _ numeric[float64] = floatNumeric{}

func (floatNumeric) FromRatio(num, den int64) float64 { return float64(num) / float64(den) }
func (floatNumeric) FromFloat(f float64) float64      { return f }
func (floatNumeric) Zero() float64                    { return 0 }
func (floatNumeric) Add(a, b float64) float64         { return a + b }
func (floatNumeric) Mul(a, b float64) float64         { return a * b }
func (floatNumeric) HalfPow(a float64, k int) float64 { return a * math.Pow(0.5, float64(k)) }
func (floatNumeric) IntegerAlpha() bool               { return false }

func (floatNumeric) Cmp(a, b float64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

func (floatNumeric) Float(a float64) float64 { return a }

// ratNumeric is the exact arithmetic used by property tests. Values are
// *big.Rat treated as immutable.
type ratNumeric struct {
	half *big.Rat
}

var _ numeric[*big.Rat] = ratNumeric{}

func newRatNumeric() ratNumeric {
	return ratNumeric{half: big.NewRat(1, 2)}
}

func (ratNumeric) FromRatio(num, den int64) *big.Rat { return big.NewRat(num, den) }

func (ratNumeric) FromFloat(f float64) *big.Rat {
	if r := new(big.Rat).SetFloat64(f); r != nil {
		return r
	}
	// NaN/Inf cannot occur for validated options; fall back to zero.
	return new(big.Rat)
}

func (ratNumeric) Zero() *big.Rat { return new(big.Rat) }

func (ratNumeric) Add(a, b *big.Rat) *big.Rat { return new(big.Rat).Add(a, b) }

func (ratNumeric) Mul(a, b *big.Rat) *big.Rat { return new(big.Rat).Mul(a, b) }

func (n ratNumeric) HalfPow(a *big.Rat, k int) *big.Rat {
	out := new(big.Rat).Set(a)
	for i := 0; i < k; i++ {
		out.Mul(out, n.half)
	}
	return out
}

func (ratNumeric) Cmp(a, b *big.Rat) int { return a.Cmp(b) }

func (ratNumeric) Float(a *big.Rat) float64 {
	f, _ := a.Float64()
	return f
}

func (ratNumeric) IntegerAlpha() bool { return true }
