package core

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"time"

	"distcover/internal/hypergraph"
	"distcover/internal/telemetry"
)

// This file implements the partitioned runner behind multi-process cover
// clusters (internal/cluster, distcover.ClusterSolve): Algorithm MWHVC over
// one contiguous vertex range of the CSR layout, synchronized with the
// other partitions only through per-iteration boundary exchanges.
//
// The decomposition exploits the locality the paper's lockstep algorithm
// already has. An iteration is three phases:
//
//   - the vertex phase touches only a vertex's own aggregates,
//   - the edge phase reads only the vertex-phase outputs (level increments,
//     join and raise flags) of the edge's member vertices,
//   - the gather phase folds the edge outputs back into the owning vertex's
//     aggregates, walking its incident edges in ascending id order.
//
// A partition therefore needs remote information exactly twice per
// iteration: the vertex-phase outputs of the boundary vertices it shares
// edges with (exchanged after the vertex phase), and the global count of
// newly covered edges for the termination test (exchanged after the edge
// phase — the same 2-exchanges-per-iteration cadence as the CONGEST
// protocol's 2 rounds). Every cut edge is replicated on each partition that
// holds one of its members and evolves identically on all of them, because
// its bid/dual updates are a deterministic function of the exchanged
// vertex-phase outputs; the dual is reported once, by the partition owning
// the edge's first (minimum) vertex.
//
// Bit-identity: every float operation a partition performs per vertex and
// per edge is the one the flat runner performs, in the same order — the
// gather accumulates incident edges ascending, the init seeds aggregates
// ascending — so AssembleParts reconstructs a Result bit-identical to
// RunFlat (and therefore to runLockstep and every CONGEST engine). The
// partition equivalence tests enforce this for 1..4 partitions, cold and
// warm starts alike.
//
// Exact (big.Rat) arithmetic is not supported: rationals have no canonical
// compact wire form, and the exact path exists for verification, not
// distribution.

// ErrPartitionOptions rejects configurations the partitioned runner cannot
// honor (exact arithmetic, malformed partition plans).
var ErrPartitionOptions = errors.New("core: invalid partition configuration")

// BoundaryState is one boundary vertex's per-iteration vertex-phase output:
// its absolute level after step 3d (receivers derive the increment from the
// previous level they hold), and the step 3a/3e join and raise flags.
type BoundaryState struct {
	V      int32
	Level  int32
	Joined bool
	Raise  bool
}

// BoundaryFrame is one partition's per-iteration boundary broadcast.
type BoundaryFrame struct {
	Part   int
	States []BoundaryState
}

// Exchanger synchronizes a partition with its peers once per phase pair.
// Implementations must deliver every partition's frame (own included) in
// ascending partition order; internal/cluster implements it over framed TCP
// through the coordinator, and tests implement it over channels.
type Exchanger interface {
	// ExchangeBoundary publishes this partition's boundary vertex states for
	// the iteration and returns all partitions' frames.
	ExchangeBoundary(iteration int, local BoundaryFrame) ([]BoundaryFrame, error)
	// ExchangeCoverage publishes how many owned edges this partition newly
	// covered in the iteration and returns the global total.
	ExchangeCoverage(iteration int, coveredOwned int) (int, error)
}

// PartialResult is one partition's share of a clustered run, merged by
// AssembleParts.
type PartialResult struct {
	Part       int
	Iterations int
	MaxLevel   int // over the partition's own vertex range

	// Cover and CoverWeight describe the partition's own vertex range.
	Cover       []hypergraph.VertexID
	CoverWeight int64

	// DualEdges/DualValues hold δ(e) for the partition's owned edges (the
	// edges whose minimum vertex falls in its range), ascending by edge id.
	DualEdges  []int32
	DualValues []float64

	// Z, Alpha and Epsilon echo the run parameters every partition resolved
	// independently; AssembleParts cross-checks they agree.
	Z       int
	Alpha   float64
	Epsilon float64
}

// PlanPartitions returns contiguous vertex bounds (len parts+1) balanced by
// incidence-CSR volume, the same balancing the flat runner uses for its
// chunks. parts is clamped to [1, max(1, NumVertices)].
func PlanPartitions(g *hypergraph.Hypergraph, parts int) []int {
	if parts < 1 {
		parts = 1
	}
	if max := maxInt(g.NumVertices(), 1); parts > max {
		parts = max
	}
	return volumeBounds(csrOffsets(g.IncidenceOffsets()), parts)
}

// validateBounds checks a partition plan against g.
func validateBounds(g *hypergraph.Hypergraph, bounds []int, part int) error {
	if len(bounds) < 2 {
		return fmt.Errorf("%w: plan needs at least 2 bounds, got %d", ErrPartitionOptions, len(bounds))
	}
	if bounds[0] != 0 || bounds[len(bounds)-1] != g.NumVertices() {
		return fmt.Errorf("%w: bounds must span [0, %d], got [%d, %d]",
			ErrPartitionOptions, g.NumVertices(), bounds[0], bounds[len(bounds)-1])
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] < bounds[i-1] {
			return fmt.Errorf("%w: bounds not monotone at %d", ErrPartitionOptions, i)
		}
	}
	if part < 0 || part >= len(bounds)-1 {
		return fmt.Errorf("%w: partition %d of %d", ErrPartitionOptions, part, len(bounds)-1)
	}
	return nil
}

// partitionRun is the per-partition working memory around the shared solver
// state. Arrays are full-size and indexed by global vertex/edge id; only the
// partition's own range and its local (incident) edges are ever touched,
// plus the level/inc/joined/raise entries of received boundary vertices.
type partitionRun struct {
	st     *state[float64]
	bounds []int
	part   int
	lo, hi int

	localEdges []int32 // edges with ≥1 member in [lo, hi), ascending
	ownedEdges []int32 // subset owned by this partition (min vertex in range)
	boundary   []int32 // own vertices appearing in cut edges, ascending

	addE  []float64 // per local edge: this iteration's dual increment
	newly []bool    // per local edge: became covered this iteration

	frame []BoundaryState // reusable boundary frame storage
}

// RunPartition executes this partition's share of Algorithm MWHVC over g.
// Every partition must run the same g, opts, carry and bounds (the
// coordinator ships them in one setup frame); ex synchronizes the
// iterations. The returned PartialResult covers the partition's vertex
// range and owned edges only — AssembleParts merges the shares into a
// Result bit-identical to RunFlat on the undivided instance.
func RunPartition(g *hypergraph.Hypergraph, opts Options, carry []float64, bounds []int, part int, ex Exchanger) (*PartialResult, error) {
	if err := opts.validate(g); err != nil {
		return nil, err
	}
	if opts.Exact {
		return nil, fmt.Errorf("%w: exact arithmetic is not distributable", ErrPartitionOptions)
	}
	if err := validateBounds(g, bounds, part); err != nil {
		return nil, err
	}
	if carry != nil {
		if err := validateCarry(g, carry); err != nil {
			return nil, err
		}
	}
	f := g.Rank()
	eps := opts.Epsilon
	st := newState(floatNumeric{}, g, opts)
	r := &partitionRun{
		st:     st,
		bounds: bounds,
		part:   part,
		lo:     bounds[part],
		hi:     bounds[part+1],
	}
	r.index(g)

	globalAlpha := st.resolveAlphas(f, eps)
	maxIter := opts.MaxIterations
	if maxIter <= 0 {
		maxIter = defaultIterationCap(f, eps, g.MaxDegree(), globalAlpha)
	}

	// Telemetry hooks: tr is nil on the default path, where the only cost
	// is the nil tests. The exchange waits are recorded with peer "" —
	// from a partition's view the one peer is the coordinator.
	tr := opts.Tracer
	var t0 time.Time
	if tr != nil {
		t0 = time.Now()
	}
	r.initIterationZero(carry)
	if tr != nil {
		tr.Phase(0, telemetry.PhaseInit, time.Since(t0), 0)
	}

	res := &PartialResult{
		Part:    part,
		Z:       ZLevels(f, eps),
		Alpha:   globalAlpha,
		Epsilon: eps,
	}
	// Termination is decided on the global uncovered count, reconstructed
	// identically on every partition from the per-iteration coverage
	// exchange; st.uncovered is unused on this path.
	uncovered := g.NumEdges()
	for uncovered > 0 {
		if res.Iterations >= maxIter {
			return nil, fmt.Errorf("%w: %d iterations, %d edges uncovered",
				ErrIterationLimit, res.Iterations, uncovered)
		}
		res.Iterations++
		if tr != nil {
			t0 = time.Now()
		}
		r.vertexPhase()
		if tr != nil {
			tr.Phase(res.Iterations, telemetry.PhaseVertex, time.Since(t0), 0)
			t0 = time.Now()
		}
		frames, err := ex.ExchangeBoundary(res.Iterations, BoundaryFrame{Part: part, States: r.fillFrame()})
		if err != nil {
			return nil, err
		}
		if tr != nil {
			tr.Exchange("", telemetry.ExchangeBoundary, res.Iterations, time.Since(t0))
		}
		if err := r.applyFrames(frames); err != nil {
			return nil, err
		}
		if tr != nil {
			t0 = time.Now()
		}
		coveredOwned := r.edgePhase()
		if tr != nil {
			tr.Phase(res.Iterations, telemetry.PhaseEdge, time.Since(t0), 0)
			t0 = time.Now()
		}
		r.gatherPhase()
		if tr != nil {
			tr.Phase(res.Iterations, telemetry.PhaseGather, time.Since(t0), 0)
			t0 = time.Now()
		}
		total, err := ex.ExchangeCoverage(res.Iterations, coveredOwned)
		if err != nil {
			return nil, err
		}
		if tr != nil {
			tr.Exchange("", telemetry.ExchangeCoverage, res.Iterations, time.Since(t0))
		}
		if total < coveredOwned || total > uncovered {
			return nil, fmt.Errorf("%w: coverage total %d out of range (own %d, uncovered %d)",
				ErrPartitionOptions, total, coveredOwned, uncovered)
		}
		uncovered -= total
	}
	r.fill(res)
	return res, nil
}

// index derives the partition's local/owned edge lists and boundary vertex
// set from the CSR arrays. All three are ascending by construction: edges
// are visited in id order and boundary vertices collected range-ascending.
func (r *partitionRun) index(g *hypergraph.Hypergraph) {
	m := g.NumEdges()
	isBoundary := make([]bool, r.hi-r.lo)
	for e := 0; e < m; e++ {
		vs := g.Edge(hypergraph.EdgeID(e))
		local, cut := false, false
		for _, v := range vs {
			if int(v) >= r.lo && int(v) < r.hi {
				local = true
			} else {
				cut = true
			}
		}
		if !local {
			continue
		}
		r.localEdges = append(r.localEdges, int32(e))
		// Edge vertex lists are sorted ascending (hypergraph invariant), so
		// vs[0] is the minimum vertex and ownership is well defined.
		if int(vs[0]) >= r.lo && int(vs[0]) < r.hi {
			r.ownedEdges = append(r.ownedEdges, int32(e))
		}
		if cut {
			for _, v := range vs {
				if int(v) >= r.lo && int(v) < r.hi {
					isBoundary[int(v)-r.lo] = true
				}
			}
		}
	}
	for i, b := range isBoundary {
		if b {
			r.boundary = append(r.boundary, int32(r.lo+i))
		}
	}
	r.addE = make([]float64, m)
	r.newly = make([]bool, m)
	r.frame = make([]BoundaryState, len(r.boundary))
}

// initIterationZero mirrors the flat runner's iteration 0 restricted to the
// partition: levels are derived from the carry for every vertex (boundary
// neighbors' levels feed the warm bid rule), aggregates are seeded for the
// own range only, and initial bids are computed for every local edge —
// identically on each partition that replicates the edge.
func (r *partitionRun) initIterationZero(carry []float64) {
	st := r.st
	g, num := st.g, st.num
	f := maxInt(g.Rank(), 1)
	n := g.NumVertices()
	for v := 0; v < n; v++ {
		w := g.Weight(hypergraph.VertexID(v))
		st.wT[v] = float64(w)
		if carry != nil {
			st.sumDelta[v] = carry[v]
			for num.Add(st.sumDelta[v], num.HalfPow(st.wT[v], st.level[v]+1)) > st.wT[v] {
				st.level[v]++
			}
		}
		if v < r.lo || v >= r.hi {
			continue
		}
		st.fWT[v] = float64(w * int64(f))
		st.sumBid[v] = 0
		st.uncovDeg[v] = g.Degree(hypergraph.VertexID(v))
		if st.uncovDeg[v] == 0 {
			st.doneV[v] = true
		}
	}
	for _, e32 := range r.localEdges {
		vs := g.Edge(hypergraph.EdgeID(e32))
		ve := vs[0]
		var b float64
		if carry == nil {
			for _, v := range vs[1:] {
				// argmin w(v)/|E(v)| with deterministic tie-break on lower
				// id, compared in exact integers (see runner.go).
				if g.Weight(v)*int64(g.Degree(ve)) < g.Weight(ve)*int64(g.Degree(v)) {
					ve = v
				}
			}
			b = num.FromRatio(g.Weight(ve), 2*int64(g.Degree(ve)))
		} else {
			best := num.HalfPow(num.FromRatio(g.Weight(ve), int64(g.Degree(ve))), st.level[ve])
			for _, v := range vs[1:] {
				cand := num.HalfPow(num.FromRatio(g.Weight(v), int64(g.Degree(v))), st.level[v])
				if cand < best {
					ve, best = v, cand
				}
			}
			b = num.HalfPow(num.FromRatio(g.Weight(ve), 2*int64(g.Degree(ve))), st.level[ve])
		}
		st.bid[e32] = b
		st.delta[e32] = b
	}
	for v := r.lo; v < r.hi; v++ {
		for _, e := range g.Incident(hypergraph.VertexID(v)) {
			st.sumDelta[v] = num.Add(st.sumDelta[v], st.bid[e])
			st.sumBid[v] = num.Add(st.sumBid[v], st.bid[e])
		}
	}
}

// vertexPhase is the flat runner's vertex phase over the own range.
func (r *partitionRun) vertexPhase() {
	st := r.st
	num := st.num
	for v := r.lo; v < r.hi; v++ {
		st.inc[v] = 0
		st.joined[v] = false
		if st.doneV[v] {
			continue
		}
		if num.Cmp(num.Mul(st.sumDelta[v], st.fPlusEps), st.fWT[v]) >= 0 {
			st.inCover[v] = true
			st.joined[v] = true
			st.doneV[v] = true
			continue
		}
		for num.Cmp(num.Add(st.sumDelta[v], num.HalfPow(st.wT[v], st.level[v]+1)), st.wT[v]) > 0 {
			st.level[v]++
			st.inc[v]++
		}
		if st.inc[v] > 0 {
			st.stuckCur[v] = 0
		}
		view := num.HalfPow(st.sumBid[v], st.inc[v])
		if num.Cmp(num.Mul(st.alphaV[v], view), num.HalfPow(st.wT[v], st.level[v]+1)) <= 0 {
			st.raise[v] = true
		} else {
			st.raise[v] = false
			st.stuckCur[v]++
		}
	}
}

// fillFrame snapshots the boundary vertices' vertex-phase outputs. Every
// boundary vertex is sent every iteration — including retired ones, whose
// flags no live edge will read — so receivers never hold stale increments.
func (r *partitionRun) fillFrame() []BoundaryState {
	st := r.st
	for i, v := range r.boundary {
		r.frame[i] = BoundaryState{
			V:      v,
			Level:  int32(st.level[v]),
			Joined: st.joined[v],
			Raise:  st.raise[v],
		}
	}
	return r.frame
}

// applyFrames folds the other partitions' boundary states into the local
// level/inc/joined/raise arrays; the level increment is the difference
// against the level held from the previous iteration.
func (r *partitionRun) applyFrames(frames []BoundaryFrame) error {
	st := r.st
	n := int32(st.g.NumVertices())
	for _, fr := range frames {
		if fr.Part == r.part {
			continue
		}
		for _, bs := range fr.States {
			if bs.V < 0 || bs.V >= n {
				return fmt.Errorf("%w: boundary vertex %d out of range", ErrPartitionOptions, bs.V)
			}
			v := int(bs.V)
			inc := int(bs.Level) - st.level[v]
			if inc < 0 {
				return fmt.Errorf("%w: vertex %d level regressed %d -> %d",
					ErrPartitionOptions, v, st.level[v], bs.Level)
			}
			st.inc[v] = inc
			st.level[v] = int(bs.Level)
			st.joined[v] = bs.Joined
			st.raise[v] = bs.Raise
		}
	}
	return nil
}

// edgePhase is the flat runner's edge phase over the local edges; it
// returns how many owned edges became covered this iteration (the
// partition's contribution to the global termination count). Cut edges are
// processed identically on every partition that replicates them.
func (r *partitionRun) edgePhase() int {
	st := r.st
	g, num := st.g, st.num
	coveredOwned := 0
	owned := r.ownedEdges
	for _, e32 := range r.localEdges {
		e := int(e32)
		if st.covered[e] {
			r.newly[e] = false
			continue
		}
		vs := g.Edge(hypergraph.EdgeID(e))
		nowCovered := false
		halvings := 0
		allRaise := true
		for _, v := range vs {
			if st.joined[v] {
				nowCovered = true
			}
			halvings += st.inc[v]
			if !st.raise[v] {
				allRaise = false
			}
		}
		if nowCovered {
			st.covered[e] = true
			r.newly[e] = true
			for len(owned) > 0 && owned[0] < e32 {
				owned = owned[1:]
			}
			if len(owned) > 0 && owned[0] == e32 {
				coveredOwned++
			}
			continue
		}
		if halvings > 0 {
			st.bid[e] = num.HalfPow(st.bid[e], halvings)
		}
		if allRaise {
			st.bid[e] = num.Mul(st.bid[e], st.alphaE[e])
		}
		add := st.bid[e]
		if st.opts.Variant == VariantSingleLevel {
			add = num.HalfPow(add, 1)
		}
		st.delta[e] = num.Add(st.delta[e], add)
		r.addE[e] = add
	}
	return coveredOwned
}

// gatherPhase is the flat runner's gather over the own range: newly covered
// incident edges retire, live ones contribute their dual increment and bid
// in ascending edge id — the sequential scatter order.
func (r *partitionRun) gatherPhase() {
	st := r.st
	g, num := st.g, st.num
	for v := r.lo; v < r.hi; v++ {
		if st.doneV[v] {
			continue
		}
		deg := st.uncovDeg[v]
		sumBid := 0.0
		alphaV := st.alphaV[v]
		if st.localAlpha {
			alphaV = 2
		}
		for _, e := range g.Incident(hypergraph.VertexID(v)) {
			if r.newly[e] {
				deg--
				continue
			}
			if st.covered[e] {
				continue
			}
			st.sumDelta[v] = num.Add(st.sumDelta[v], r.addE[e])
			sumBid = num.Add(sumBid, st.bid[e])
			if st.localAlpha && st.alphaE[e] > alphaV {
				alphaV = st.alphaE[e]
			}
		}
		st.uncovDeg[v] = deg
		if deg == 0 {
			st.doneV[v] = true
			continue
		}
		st.sumBid[v] = sumBid
		if st.localAlpha {
			st.alphaV[v] = alphaV
		}
	}
}

// fill converts the final partition state into the PartialResult share.
func (r *partitionRun) fill(res *PartialResult) {
	st := r.st
	g := st.g
	for v := r.lo; v < r.hi; v++ {
		if st.inCover[v] {
			res.Cover = append(res.Cover, hypergraph.VertexID(v))
			res.CoverWeight += g.Weight(hypergraph.VertexID(v))
		}
		if st.level[v] > res.MaxLevel {
			res.MaxLevel = st.level[v]
		}
	}
	res.DualEdges = append(res.DualEdges, r.ownedEdges...)
	res.DualValues = make([]float64, len(r.ownedEdges))
	for i, e := range r.ownedEdges {
		res.DualValues[i] = st.delta[e]
	}
}

// AssembleParts merges the partitions' shares into a Result equal, bit for
// bit, to RunFlat on the undivided instance: covers concatenate in
// partition (= vertex) order, every edge's dual is reported by exactly one
// owner, and the dual value accumulates in ascending edge id — the order
// state.fill sums in.
func AssembleParts(g *hypergraph.Hypergraph, opts Options, parts []*PartialResult) (*Result, error) {
	if err := opts.validate(g); err != nil {
		return nil, err
	}
	if len(parts) == 0 {
		return nil, fmt.Errorf("%w: no partial results", ErrPartitionOptions)
	}
	for i, p := range parts {
		if p == nil {
			return nil, fmt.Errorf("%w: missing partial result %d", ErrPartitionOptions, i)
		}
	}
	first := parts[0]
	res := &Result{
		InCover:    make([]bool, g.NumVertices()),
		Dual:       make([]float64, g.NumEdges()),
		Iterations: first.Iterations,
		Z:          first.Z,
		Alpha:      first.Alpha,
		Epsilon:    first.Epsilon,
	}
	seen := make([]bool, g.NumEdges())
	for i, p := range parts {
		if p.Part != i {
			return nil, fmt.Errorf("%w: partial %d reports partition %d", ErrPartitionOptions, i, p.Part)
		}
		if p.Iterations != first.Iterations || p.Z != first.Z || p.Alpha != first.Alpha || p.Epsilon != first.Epsilon {
			return nil, fmt.Errorf("%w: partition %d ran diverging parameters", ErrPartitionOptions, i)
		}
		if len(p.DualEdges) != len(p.DualValues) {
			return nil, fmt.Errorf("%w: partition %d dual arrays disagree", ErrPartitionOptions, i)
		}
		for _, v := range p.Cover {
			if int(v) >= g.NumVertices() {
				return nil, fmt.Errorf("%w: cover vertex %d out of range", ErrPartitionOptions, v)
			}
			res.InCover[v] = true
			res.Cover = append(res.Cover, v)
		}
		res.CoverWeight += p.CoverWeight
		if p.MaxLevel > res.MaxLevel {
			res.MaxLevel = p.MaxLevel
		}
		for j, e := range p.DualEdges {
			if e < 0 || int(e) >= g.NumEdges() {
				return nil, fmt.Errorf("%w: dual edge %d out of range", ErrPartitionOptions, e)
			}
			if seen[e] {
				return nil, fmt.Errorf("%w: edge %d reported by two partitions", ErrPartitionOptions, e)
			}
			seen[e] = true
			res.Dual[e] = p.DualValues[j]
		}
	}
	for e, ok := range seen {
		if !ok {
			return nil, fmt.Errorf("%w: edge %d reported by no partition", ErrPartitionOptions, e)
		}
		res.DualValue += res.Dual[e]
	}
	sort.Slice(res.Cover, func(i, j int) bool { return res.Cover[i] < res.Cover[j] })
	switch {
	case res.DualValue > 0:
		res.RatioBound = float64(res.CoverWeight) / res.DualValue
	case res.CoverWeight == 0:
		res.RatioBound = 1
	default:
		res.RatioBound = math.Inf(1)
	}
	if g.NumEdges() == 0 {
		res.Rounds = 1
	} else {
		res.Rounds = 2 + 2*res.Iterations
	}
	return res, nil
}
