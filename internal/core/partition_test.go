package core

import (
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"distcover/internal/hypergraph"
)

// chanExchanger synchronizes in-process partitions through a shared barrier;
// it is the reference Exchanger implementation the TCP path (internal/
// cluster) must behave like.
type chanExchanger struct {
	group *chanGroup
	part  int
}

type chanGroup struct {
	parts int
	mu    sync.Mutex
	cond  *sync.Cond

	phase    int // generation counter: 2 per iteration
	arrived  int
	frames   []BoundaryFrame
	coverage []int
	fail     error // injected failure, returned to every partition
}

func newChanGroup(parts int) *chanGroup {
	g := &chanGroup{
		parts:    parts,
		frames:   make([]BoundaryFrame, parts),
		coverage: make([]int, parts),
	}
	g.cond = sync.NewCond(&g.mu)
	return g
}

func (g *chanGroup) exchanger(part int) *chanExchanger { return &chanExchanger{group: g, part: part} }

// barrier publishes this partition's contribution and blocks until all
// partitions of the generation arrived.
func (g *chanGroup) barrier(publish func()) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.fail != nil {
		return g.fail
	}
	publish()
	g.arrived++
	gen := g.phase
	if g.arrived == g.parts {
		g.arrived = 0
		g.phase++
		g.cond.Broadcast()
	} else {
		for g.phase == gen && g.fail == nil {
			g.cond.Wait()
		}
	}
	if g.fail != nil {
		return g.fail
	}
	return nil
}

func (e *chanExchanger) ExchangeBoundary(_ int, local BoundaryFrame) ([]BoundaryFrame, error) {
	g := e.group
	err := g.barrier(func() {
		states := append([]BoundaryState(nil), local.States...)
		g.frames[e.part] = BoundaryFrame{Part: local.Part, States: states}
	})
	if err != nil {
		return nil, err
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	return append([]BoundaryFrame(nil), g.frames...), nil
}

func (e *chanExchanger) ExchangeCoverage(_ int, covered int) (int, error) {
	g := e.group
	if err := g.barrier(func() { g.coverage[e.part] = covered }); err != nil {
		return 0, err
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	total := 0
	for _, c := range g.coverage {
		total += c
	}
	return total, nil
}

// runPartitioned executes all partitions as goroutines over a chanGroup and
// assembles the merged result.
func runPartitioned(t *testing.T, g *hypergraph.Hypergraph, opts Options, carry []float64, parts int) (*Result, error) {
	t.Helper()
	bounds := PlanPartitions(g, parts)
	np := len(bounds) - 1
	group := newChanGroup(np)
	partials := make([]*PartialResult, np)
	errs := make([]error, np)
	var wg sync.WaitGroup
	for p := 0; p < np; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			partials[p], errs[p] = RunPartition(g, opts, carry, bounds, p, group.exchanger(p))
			if errs[p] != nil {
				group.mu.Lock()
				if group.fail == nil {
					group.fail = errs[p]
					group.cond.Broadcast()
				}
				group.mu.Unlock()
			}
		}(p)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return AssembleParts(g, opts, partials)
}

// randomPartitionInstance mixes the families the engine equivalence tests
// sweep: graphs, f>2 hypergraphs, heavy tails and near-regular instances.
func randomPartitionInstance(t *testing.T, rng *rand.Rand, i int) *hypergraph.Hypergraph {
	t.Helper()
	seed := rng.Int63()
	switch i % 4 {
	case 0:
		n := 5 + rng.Intn(40)
		g, err := hypergraph.RandomGraph(n, 2*n, hypergraph.GenConfig{
			Seed: seed, Dist: hypergraph.WeightUniformRange, MaxWeight: 100,
		})
		if err != nil {
			t.Fatal(err)
		}
		return g
	case 1:
		f := 3 + rng.Intn(3)
		n := f + 5 + rng.Intn(40)
		g, err := hypergraph.UniformRandom(n, 3*n, f, hypergraph.GenConfig{
			Seed: seed, Dist: hypergraph.WeightExponential, MaxWeight: 1 << 14,
		})
		if err != nil {
			t.Fatal(err)
		}
		return g
	case 2:
		g, err := hypergraph.PowerLaw(20+rng.Intn(60), 120, 3, hypergraph.GenConfig{
			Seed: seed, Dist: hypergraph.WeightUniformRange, MaxWeight: 50,
		})
		if err != nil {
			t.Fatal(err)
		}
		return g
	default:
		g, err := hypergraph.RegularLike(30+rng.Intn(40), 4, 3, hypergraph.GenConfig{
			Seed: seed, Dist: hypergraph.WeightUniformOne,
		})
		if err != nil {
			t.Fatal(err)
		}
		return g
	}
}

// requirePartitionResult asserts bit-identity of the fields the partitioned
// path reconstructs.
func requirePartitionResult(t *testing.T, label string, got, want *Result) {
	t.Helper()
	if !reflect.DeepEqual(got.Cover, want.Cover) {
		t.Fatalf("%s: cover %v != %v", label, got.Cover, want.Cover)
	}
	if !reflect.DeepEqual(got.InCover, want.InCover) {
		t.Fatalf("%s: InCover diverges", label)
	}
	if !reflect.DeepEqual(got.Dual, want.Dual) {
		t.Fatalf("%s: duals diverge", label)
	}
	if got.CoverWeight != want.CoverWeight || got.DualValue != want.DualValue ||
		got.RatioBound != want.RatioBound || got.Iterations != want.Iterations ||
		got.Rounds != want.Rounds || got.MaxLevel != want.MaxLevel ||
		got.Z != want.Z || got.Alpha != want.Alpha || got.Epsilon != want.Epsilon {
		t.Fatalf("%s: scalar fields diverge:\n got %+v\nwant %+v", label, got, want)
	}
}

// TestPartitionRunnerMatchesFlat is the in-process half of the cluster
// equivalence property: for random instances, partition counts 1..4 and
// varying ε, the partitioned runner must reconstruct RunFlat's result bit
// for bit — cold starts and carry-warm residual starts alike.
func TestPartitionRunnerMatchesFlat(t *testing.T) {
	rng := rand.New(rand.NewSource(20260731))
	epss := []float64{1, 0.5, 0.25}
	for i := 0; i < 24; i++ {
		g := randomPartitionInstance(t, rng, i)
		opts := DefaultOptions()
		opts.Epsilon = epss[i%len(epss)]
		if i%5 == 4 {
			opts.Alpha = AlphaLocal
		}
		want, err := RunFlat(g, opts, 2)
		if err != nil {
			t.Fatalf("instance %d: flat: %v", i, err)
		}
		for parts := 1; parts <= 4; parts++ {
			got, err := runPartitioned(t, g, opts, nil, parts)
			if err != nil {
				t.Fatalf("instance %d parts %d: %v", i, parts, err)
			}
			requirePartitionResult(t, fmt.Sprintf("instance %d parts %d", i, parts), got, want)
		}
	}
}

// TestPartitionRunnerMatchesResidualFlat covers the warm-started path that
// cluster sessions use for every delta batch.
func TestPartitionRunnerMatchesResidualFlat(t *testing.T) {
	rng := rand.New(rand.NewSource(77007))
	for i := 0; i < 12; i++ {
		g := randomPartitionInstance(t, rng, i)
		carry := make([]float64, g.NumVertices())
		for v := range carry {
			// Anywhere in [0, w): the level derivation must agree across
			// partitions for any load.
			carry[v] = rng.Float64() * 0.97 * float64(g.Weight(hypergraph.VertexID(v)))
		}
		opts := DefaultOptions()
		want, err := RunResidualFlat(g, opts, carry, 3)
		if err != nil {
			t.Fatalf("instance %d: residual flat: %v", i, err)
		}
		for parts := 2; parts <= 4; parts += 2 {
			got, err := runPartitioned(t, g, opts, carry, parts)
			if err != nil {
				t.Fatalf("instance %d parts %d: %v", i, parts, err)
			}
			requirePartitionResult(t, fmt.Sprintf("instance %d parts %d (carry)", i, parts), got, want)
		}
	}
}

// TestPartitionRunnerRejects covers the typed configuration errors.
func TestPartitionRunnerRejects(t *testing.T) {
	g, err := hypergraph.UniformRandom(12, 24, 3, hypergraph.GenConfig{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	opts := DefaultOptions()
	opts.Exact = true
	if _, err := RunPartition(g, opts, nil, []int{0, 12}, 0, nil); !errors.Is(err, ErrPartitionOptions) {
		t.Fatalf("exact: err = %v, want ErrPartitionOptions", err)
	}
	opts = DefaultOptions()
	if _, err := RunPartition(g, opts, nil, []int{0, 5}, 0, nil); !errors.Is(err, ErrPartitionOptions) {
		t.Fatalf("short bounds: err = %v, want ErrPartitionOptions", err)
	}
	if _, err := RunPartition(g, opts, nil, []int{0, 12}, 3, nil); !errors.Is(err, ErrPartitionOptions) {
		t.Fatalf("bad part: err = %v, want ErrPartitionOptions", err)
	}
	if _, err := AssembleParts(g, opts, nil); !errors.Is(err, ErrPartitionOptions) {
		t.Fatalf("empty assemble: err = %v, want ErrPartitionOptions", err)
	}
	// A nil share — first position included — is the typed error, not a
	// panic.
	if _, err := AssembleParts(g, opts, []*PartialResult{nil, {Part: 1}}); !errors.Is(err, ErrPartitionOptions) {
		t.Fatalf("nil first partial: err = %v, want ErrPartitionOptions", err)
	}
}

// TestPlanPartitionsShape checks the plan invariants the protocol relies on.
func TestPlanPartitionsShape(t *testing.T) {
	g, err := hypergraph.PowerLaw(200, 600, 3, hypergraph.GenConfig{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	for _, parts := range []int{1, 2, 3, 7, 500} {
		b := PlanPartitions(g, parts)
		if b[0] != 0 || b[len(b)-1] != g.NumVertices() {
			t.Fatalf("parts=%d: bounds %v do not span the vertex range", parts, b)
		}
		for i := 1; i < len(b); i++ {
			if b[i] < b[i-1] {
				t.Fatalf("parts=%d: bounds %v not monotone", parts, b)
			}
		}
		if want := maxInt(1, minInt(parts, g.NumVertices())); len(b)-1 != want {
			t.Fatalf("parts=%d: got %d partitions, want %d", parts, len(b)-1, want)
		}
	}
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
