package core

import (
	"errors"
	"fmt"

	"distcover/internal/congest"
	"distcover/internal/hypergraph"
)

// This file implements the warm-started residual solves behind incremental
// cover sessions (distcover.Session). The observation is that Algorithm
// MWHVC is monotone in the duals: a vertex that carries load Σδ = carry[v]
// from earlier solves behaves exactly like a mid-run vertex of a single
// larger execution. Re-running the level algorithm on just the residual
// instance — the uncovered new edges and their incident vertices — with the
// carried loads seeded therefore extends the existing primal/dual state
// instead of recomputing it:
//
//   - Dual feasibility (Claim 1) is preserved: the vertex level is derived
//     from the carried load with the step-3d formula, which guarantees
//     slack(v) ≥ w(v)·2^{-(ℓ(v)+1)}, and the warm iteration-0 bid
//     ½·(w·2^{-ℓ})/deg fits inside it. Every later addition is governed by
//     the unmodified level/halving mechanism.
//   - Every vertex still joins the cover only when Σδ ≥ (1-β)·w(v) with
//     β = ε/(f+ε) of the solve it joined under. Since (1-β) ≥ 1/(1+ε) for
//     every f ≥ 1, the union cover after any number of delta batches obeys
//     w(C) ≤ (1+ε)·Σ_{v∈C} Σ_{e∋v} δ(e) ≤ f·(1+ε)·Σ_e δ(e),
//     the f(1+ε) certificate the session reports (the rank f may grow as
//     edges arrive, which is why the clean per-solve (f+ε) bound relaxes).
//
// ErrBadCarry is returned when the carried loads are out of range.
var ErrBadCarry = errors.New("core: invalid carry load")

// validateCarry checks the warm-start loads against the residual instance.
func validateCarry(g *hypergraph.Hypergraph, carry []float64) error {
	if len(carry) != g.NumVertices() {
		return fmt.Errorf("%w: %d loads for %d vertices", ErrBadCarry, len(carry), g.NumVertices())
	}
	for v, c := range carry {
		w := float64(g.Weight(hypergraph.VertexID(v)))
		if c < 0 || c >= w || c != c {
			return fmt.Errorf("%w: vertex %d load %g outside [0, w=%g)", ErrBadCarry, v, c, w)
		}
	}
	return nil
}

// RunResidual executes a warm-started lockstep run on the residual instance
// g, where carry[v] is the dual load vertex v already accumulated in earlier
// solves (0 ≤ carry[v] < w(v)). The returned Result covers only the residual
// solve: Dual holds the duals of the residual edges (new load only), Cover
// the vertices that joined during this solve.
func RunResidual(g *hypergraph.Hypergraph, opts Options, carry []float64) (*Result, error) {
	if err := opts.validate(g); err != nil {
		return nil, err
	}
	if err := validateCarry(g, carry); err != nil {
		return nil, err
	}
	if opts.Exact {
		return runLockstep(newRatNumeric(), g, opts, carry)
	}
	return runLockstepFloat(g, opts, carry)
}

// BuildResidualNetwork constructs the bipartite CONGEST network for a
// residual instance with carried vertex loads: vertex node v starts at the
// level its load implies and the protocol switches to the residual init
// messages, which carry that level so edges can size their first bid to the
// remaining slack. Everything else — topology, node ids, the iteration
// phases — matches BuildNetwork, so the returned handles run on any engine
// via RunBuiltNetwork.
//
// The network contains only the dirty part of the instance (sessions build
// it from the residual subinstance), so under the sharded engine only the
// shards that received new work step at all; the quiescent bulk of a large
// session never allocates or runs.
func BuildResidualNetwork(g *hypergraph.Hypergraph, opts Options, carry []float64) (*congest.Network, []*vertexNode, []*edgeNode, error) {
	if err := validateCarry(g, carry); err != nil {
		return nil, nil, nil, err
	}
	return buildNetwork(g, opts, carry)
}

// RunResidualCongest is RunResidual on the message-passing path: it builds
// the residual network and executes the Appendix B protocol (with the
// residual init handshake) on the given engine. Results are identical to
// RunResidual — both paths compute the warm iteration 0 with the same float
// operations in the same order.
func RunResidualCongest(g *hypergraph.Hypergraph, opts Options, carry []float64,
	eng congest.Engine, congestOpts congest.Options) (*Result, congest.Metrics, error) {
	nw, vnodes, enodes, err := BuildResidualNetwork(g, opts, carry)
	if err != nil {
		return nil, congest.Metrics{}, err
	}
	return RunBuiltNetwork(g, opts, nw, vnodes, enodes, eng, congestOpts)
}
