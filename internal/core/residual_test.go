package core

import (
	"errors"
	"math/rand"
	"reflect"
	"testing"

	"distcover/internal/congest"
	"distcover/internal/hypergraph"
)

// residualFixture solves a base instance cold, then builds the residual
// subinstance for a batch of new edges over the same vertices: the new
// edges not stabbed by the base cover, compacted to fresh ids, with the
// base solve's per-vertex dual loads as carry.
type residualFixture struct {
	g     *hypergraph.Hypergraph // residual subinstance
	carry []float64
	orig  []hypergraph.VertexID // residual id -> base vertex id
}

func makeResidualFixture(t *testing.T, rng *rand.Rand, n int) (*Result, *residualFixture) {
	t.Helper()
	base, err := hypergraph.UniformRandom(n, 2*n, 3, hypergraph.GenConfig{
		Seed: rng.Int63(), Dist: hypergraph.WeightUniformRange, MaxWeight: 100,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(base, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	load := make([]float64, base.NumVertices())
	for e := 0; e < base.NumEdges(); e++ {
		for _, v := range base.Edge(hypergraph.EdgeID(e)) {
			load[v] += res.Dual[e]
		}
	}
	// New random edges; keep only the uncovered ones.
	var resEdges [][]hypergraph.VertexID
	remap := make(map[hypergraph.VertexID]hypergraph.VertexID)
	var orig []hypergraph.VertexID
	for i := 0; i < n; i++ {
		k := 2 + rng.Intn(2)
		seen := map[int]bool{}
		var edge []hypergraph.VertexID
		stabbed := false
		for len(edge) < k {
			v := rng.Intn(n)
			if seen[v] {
				continue
			}
			seen[v] = true
			edge = append(edge, hypergraph.VertexID(v))
			if res.InCover[v] {
				stabbed = true
			}
		}
		if stabbed {
			continue
		}
		local := make([]hypergraph.VertexID, len(edge))
		for j, v := range edge {
			lv, ok := remap[v]
			if !ok {
				lv = hypergraph.VertexID(len(orig))
				remap[v] = lv
				orig = append(orig, v)
			}
			local[j] = lv
		}
		resEdges = append(resEdges, local)
	}
	if len(resEdges) == 0 {
		return res, nil
	}
	b := hypergraph.NewBuilder(len(orig), len(resEdges))
	for _, v := range orig {
		b.AddVertex(base.Weight(v))
	}
	for _, e := range resEdges {
		b.AddEdge(e...)
	}
	carry := make([]float64, len(orig))
	for i, v := range orig {
		carry[i] = load[v]
	}
	return res, &residualFixture{g: b.MustBuild(), carry: carry, orig: orig}
}

// TestResidualLockstepCongestParity: the warm-started lockstep runner and
// the residual CONGEST protocol must agree exactly — covers, duals, levels
// and iteration counts — across all in-memory engines.
func TestResidualLockstepCongestParity(t *testing.T) {
	rng := rand.New(rand.NewSource(20260730))
	engines := map[string]congest.Engine{
		"sequential": congest.SequentialEngine{},
		"parallel":   congest.ParallelEngine{},
		"sharded":    congest.ShardedEngine{Shards: 3},
	}
	fixtures := 0
	for i := 0; i < 30; i++ {
		_, fx := makeResidualFixture(t, rng, 12+rng.Intn(30))
		if fx == nil {
			continue
		}
		fixtures++
		ref, err := RunResidual(fx.g, DefaultOptions(), fx.carry)
		if err != nil {
			t.Fatalf("fixture %d: lockstep: %v", i, err)
		}
		for name, eng := range engines {
			res, _, err := RunResidualCongest(fx.g, DefaultOptions(), fx.carry, eng, congest.Options{Validate: true})
			if err != nil {
				t.Fatalf("fixture %d: %s: %v", i, name, err)
			}
			if !reflect.DeepEqual(res.Cover, ref.Cover) {
				t.Errorf("fixture %d: %s cover %v != lockstep %v", i, name, res.Cover, ref.Cover)
			}
			if !reflect.DeepEqual(res.Dual, ref.Dual) {
				t.Errorf("fixture %d: %s duals diverge from lockstep", i, name)
			}
			if res.Iterations != ref.Iterations || res.MaxLevel != ref.MaxLevel {
				t.Errorf("fixture %d: %s iters/level (%d,%d) != lockstep (%d,%d)",
					i, name, res.Iterations, res.MaxLevel, ref.Iterations, ref.MaxLevel)
			}
		}
	}
	if fixtures < 10 {
		t.Fatalf("only %d usable fixtures; fixture generator too strict", fixtures)
	}
}

// TestResidualDualFeasibility: after a warm-started solve, the combined
// load carry[v] + Σ_{residual e ∋ v} δ(e) must stay within w(v) — the
// Claim 1 invariant the f(1+ε) session certificate rests on — and every
// residual edge must end up covered.
func TestResidualDualFeasibility(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for i := 0; i < 20; i++ {
		_, fx := makeResidualFixture(t, rng, 15+rng.Intn(25))
		if fx == nil {
			continue
		}
		res, err := RunResidual(fx.g, DefaultOptions(), fx.carry)
		if err != nil {
			t.Fatal(err)
		}
		if !fx.g.IsCover(res.Cover) {
			t.Fatalf("fixture %d: residual cover %v does not cover residual instance", i, res.Cover)
		}
		total := append([]float64(nil), fx.carry...)
		for e := 0; e < fx.g.NumEdges(); e++ {
			for _, v := range fx.g.Edge(hypergraph.EdgeID(e)) {
				total[v] += res.Dual[e]
			}
		}
		for v, load := range total {
			w := float64(fx.g.Weight(hypergraph.VertexID(v)))
			if load > w*(1+1e-9) {
				t.Fatalf("fixture %d: vertex %d load %g exceeds weight %g", i, v, load, w)
			}
		}
	}
}

func TestResidualCarryValidation(t *testing.T) {
	g := hypergraph.MustNew([]int64{5, 5}, [][]hypergraph.VertexID{{0, 1}})
	cases := [][]float64{
		{1},       // wrong length
		{-0.5, 0}, // negative
		{5, 0},    // == weight
		{6, 0},    // > weight
	}
	for i, carry := range cases {
		if _, err := RunResidual(g, DefaultOptions(), carry); !errors.Is(err, ErrBadCarry) {
			t.Errorf("case %d: got %v, want ErrBadCarry", i, err)
		}
	}
	if _, err := RunResidual(g, DefaultOptions(), []float64{0, 0}); err != nil {
		t.Errorf("zero carry should run: %v", err)
	}
	// Zero carry behaves exactly like a cold run (levels all 0 reduce the
	// warm bid rule to the paper's).
	cold, err := Run(g, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	warm, err := RunResidual(g, DefaultOptions(), []float64{0, 0})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(cold.Cover, warm.Cover) || cold.DualValue != warm.DualValue {
		t.Errorf("zero-carry warm start diverges: %v/%g vs %v/%g",
			warm.Cover, warm.DualValue, cold.Cover, cold.DualValue)
	}
}
