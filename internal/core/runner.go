package core

import (
	"fmt"
	"math"
	"time"

	"distcover/internal/hypergraph"
	"distcover/internal/telemetry"
)

// runLockstep executes Algorithm MWHVC directly over the hypergraph in
// lockstep iterations, with the exact phase alignment of the Appendix B
// CONGEST protocol (tests verify bit-for-bit agreement with RunCongest):
//
//	vertex phase i: process previous edge outputs; β-tight check (3a);
//	               level increments (3d); raise/stuck decision (3e)
//	edge phase i:  covered propagation (3b/3c); apply halvings; raise (3f);
//	               dual update δ += bid (or bid/2 in the Appendix C variant)
//
// A vertex's raise/stuck test sees bids after its own halvings only — other
// vertices' same-iteration halvings arrive with the edge's next report —
// matching the distributed reading of steps 3d/3e (footnote 4, Appendix B).
//
// carry, when non-nil, warm-starts the run for incremental sessions: vertex
// v begins with Σδ = carry[v] already committed by earlier solves (its level
// is derived from that load before iteration 0) and the iteration-0 bids
// shrink to fit the remaining slack; see initIterationZero. carry == nil is
// the ordinary cold start.
func runLockstep[T any](num numeric[T], g *hypergraph.Hypergraph, opts Options, carry []float64) (*Result, error) {
	return runLockstepOn(newState(num, g, opts), carry)
}

// runLockstepOn is runLockstep over a caller-provided state, so the float64
// production path can hand in pooled, arena-backed state (arena.go) while
// the exact path keeps plain allocation. The state must be freshly
// initialized for its graph; it is fully consumed by the run.
func runLockstepOn[T any](st *state[T], carry []float64) (*Result, error) {
	g, opts := st.g, st.opts
	n := g.NumVertices()
	f := g.Rank()
	eps := opts.Epsilon

	globalAlpha := st.resolveAlphas(f, eps)
	maxIter := opts.MaxIterations
	if maxIter <= 0 {
		maxIter = defaultIterationCap(f, eps, g.MaxDegree(), globalAlpha)
	}

	// Telemetry hooks: tr is nil on the default path, where the only cost
	// is the nil tests — no timestamps, no allocations.
	tr := opts.Tracer
	var t0 time.Time
	if tr != nil {
		t0 = time.Now()
	}
	st.initIterationZero(carry)
	if tr != nil {
		tr.Phase(0, telemetry.PhaseInit, time.Since(t0), 0)
	}

	res := &Result{
		Z:       ZLevels(f, eps),
		Alpha:   globalAlpha,
		Epsilon: eps,
	}
	for st.uncovered > 0 {
		if res.Iterations >= maxIter {
			return nil, fmt.Errorf("%w: %d iterations, %d edges uncovered",
				ErrIterationLimit, res.Iterations, st.uncovered)
		}
		res.Iterations++
		var its IterationStats
		its.Iteration = res.Iterations
		if tr != nil {
			t0 = time.Now()
		}
		st.vertexPhase(&its)
		if tr != nil {
			tr.Phase(res.Iterations, telemetry.PhaseVertex, time.Since(t0), 0)
			t0 = time.Now()
		}
		st.edgePhase(&its)
		if tr != nil {
			tr.Phase(res.Iterations, telemetry.PhaseEdge, time.Since(t0), 0)
			t0 = time.Now()
		}
		st.refreshVertexAggregates()
		if tr != nil {
			tr.Phase(res.Iterations, telemetry.PhaseGather, time.Since(t0), 0)
		}
		if opts.CheckInvariants {
			if err := st.checkInvariants(res.Iterations, res.Z); err != nil {
				return nil, err
			}
		}
		if opts.CollectTrace {
			its.ActiveEdges = st.uncovered
			for v := 0; v < n; v++ {
				if !st.doneV[v] {
					its.ActiveVertices++
				}
			}
			res.Trace = append(res.Trace, its)
		}
	}
	st.fill(res)
	return res, nil
}

// state is the lockstep runner's working memory.
type state[T any] struct {
	num  numeric[T]
	g    *hypergraph.Hypergraph
	opts Options

	// Per edge.
	bid     []T
	delta   []T
	covered []bool
	alphaE  []T

	// Per vertex.
	level    []int
	sumDelta []T // Σ_{e ∈ E(v)} δ(e), including frozen covered edges
	sumBid   []T // Σ_{e ∈ E'(v)} bid(e), refreshed after each edge phase
	alphaV   []T // max α(e) over E'(v); constant unless AlphaLocal
	inCover  []bool
	doneV    []bool
	uncovDeg []int
	inc      []int  // level increments this iteration
	raise    []bool // raise/stuck decision this iteration
	joined   []bool // joined the cover this iteration
	raises   []int  // per edge: α-multiplications (Lemma 6 accounting)
	stuckCur []int  // per vertex: stuck iterations at the current level
	stuckMax []int  // per vertex: max stuck iterations at any level
	wT       []T    // w(v)
	fWT      []T    // f·w(v) (for the cross-multiplied tightness test)
	fPlusEps T      // f+ε

	uncovered  int
	localAlpha bool
}

// newState allocates the runner's working memory for g. Shared by the
// sequential lockstep runner and the chunk-parallel flat runner (flat.go).
func newState[T any](num numeric[T], g *hypergraph.Hypergraph, opts Options) *state[T] {
	n, m := g.NumVertices(), g.NumEdges()
	f := g.Rank()
	return &state[T]{
		num:  num,
		g:    g,
		opts: opts,

		bid:     make([]T, m),
		delta:   make([]T, m),
		covered: make([]bool, m),
		alphaE:  make([]T, m),

		level:     make([]int, n),
		sumDelta:  make([]T, n),
		sumBid:    make([]T, n),
		alphaV:    make([]T, n),
		inCover:   make([]bool, n),
		doneV:     make([]bool, n),
		uncovDeg:  make([]int, n),
		inc:       make([]int, n),
		raise:     make([]bool, n),
		joined:    make([]bool, n),
		raises:    make([]int, m),
		stuckCur:  make([]int, n),
		stuckMax:  make([]int, n),
		wT:        make([]T, n),
		fWT:       make([]T, n),
		fPlusEps:  num.Add(num.FromRatio(int64(maxInt(f, 1)), 1), num.FromFloat(opts.Epsilon)),
		uncovered: m,
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// resolveAlphas fills alphaE / alphaV per the policy and returns the global
// α (0 when per-edge local values are in use).
func (st *state[T]) resolveAlphas(f int, eps float64) float64 {
	g, num, opts := st.g, st.num, st.opts
	round := func(a float64) float64 {
		if num.IntegerAlpha() {
			return math.Ceil(a)
		}
		return a
	}
	switch opts.Alpha {
	case AlphaLocal:
		st.localAlpha = true
		for e := 0; e < g.NumEdges(); e++ {
			a := round(AlphaTheorem9Value(f, eps, g.LocalMaxDegree(hypergraph.EdgeID(e)), opts.Gamma))
			st.alphaE[e] = num.FromFloat(a)
		}
		// alphaV = max over incident (refreshed as edges get covered).
		for v := range st.alphaV {
			st.alphaV[v] = num.FromFloat(2)
		}
		for v := 0; v < g.NumVertices(); v++ {
			for _, e := range g.Incident(hypergraph.VertexID(v)) {
				if num.Cmp(st.alphaE[e], st.alphaV[v]) > 0 {
					st.alphaV[v] = st.alphaE[e]
				}
			}
		}
		return 0
	case AlphaFixed:
		a := round(opts.FixedAlpha)
		aT := num.FromFloat(a)
		for e := range st.alphaE {
			st.alphaE[e] = aT
		}
		for v := range st.alphaV {
			st.alphaV[v] = aT
		}
		return a
	default: // AlphaTheorem9
		a := round(AlphaTheorem9Value(f, eps, g.MaxDegree(), opts.Gamma))
		aT := num.FromFloat(a)
		for e := range st.alphaE {
			st.alphaE[e] = aT
		}
		for v := range st.alphaV {
			st.alphaV[v] = aT
		}
		return a
	}
}

// initIterationZero performs iteration 0: bid(e) = ½·min_{v∈e} w(v)/|E(v)|,
// δ(e) = bid(e), and seeds the vertex aggregates. Isolated vertices
// terminate immediately.
//
// With a non-nil carry (warm start), Σδ starts at the carried load, the
// vertex level ℓ(v) is pre-derived from it with the step-3d formula, and
// the bid rule becomes bid(e) = ½·min_{v∈e} (w(v)·2^{-ℓ(v)})/|E(v)|: since
// the 3d formula guarantees slack(v) = w(v) - Σδ ≥ w(v)·2^{-(ℓ(v)+1)},
// every vertex's incident iteration-0 bids sum to at most half its true
// slack, so dual feasibility (Claim 1) survives the warm start. With all
// levels 0 — a cold start — the rule reduces to the paper's exactly.
func (st *state[T]) initIterationZero(carry []float64) {
	g, num := st.g, st.num
	f := maxInt(g.Rank(), 1)
	for v := 0; v < g.NumVertices(); v++ {
		w := g.Weight(hypergraph.VertexID(v))
		st.wT[v] = num.FromRatio(w, 1)
		st.fWT[v] = num.FromRatio(w*int64(f), 1)
		st.sumDelta[v] = num.Zero()
		if carry != nil {
			st.sumDelta[v] = num.FromFloat(carry[v])
			for num.Cmp(num.Add(st.sumDelta[v], num.HalfPow(st.wT[v], st.level[v]+1)), st.wT[v]) > 0 {
				st.level[v]++
			}
		}
		st.sumBid[v] = num.Zero()
		st.uncovDeg[v] = g.Degree(hypergraph.VertexID(v))
		if st.uncovDeg[v] == 0 {
			st.doneV[v] = true
		}
	}
	for e := 0; e < g.NumEdges(); e++ {
		vs := g.Edge(hypergraph.EdgeID(e))
		ve := vs[0]
		var b T
		if carry == nil {
			for _, v := range vs[1:] {
				// argmin w(v)/|E(v)| with deterministic tie-break on lower id:
				// compare w(v)·deg(ve) < w(ve)·deg(v) in exact integers.
				if g.Weight(v)*int64(g.Degree(ve)) < g.Weight(ve)*int64(g.Degree(v)) {
					ve = v
				}
			}
			b = num.FromRatio(g.Weight(ve), 2*int64(g.Degree(ve)))
		} else {
			// argmin of the level-discounted slack bound; ties keep the
			// lower id. The congest residual protocol computes the same
			// quantities with the same float operations (nodes.go).
			best := num.HalfPow(num.FromRatio(g.Weight(ve), int64(g.Degree(ve))), st.level[ve])
			for _, v := range vs[1:] {
				c := num.HalfPow(num.FromRatio(g.Weight(v), int64(g.Degree(v))), st.level[v])
				if num.Cmp(c, best) < 0 {
					ve, best = v, c
				}
			}
			b = num.HalfPow(num.FromRatio(g.Weight(ve), 2*int64(g.Degree(ve))), st.level[ve])
		}
		st.bid[e] = b
		st.delta[e] = b
		for _, v := range vs {
			st.sumDelta[v] = num.Add(st.sumDelta[v], b)
			st.sumBid[v] = num.Add(st.sumBid[v], b)
		}
	}
}

// vertexPhase runs steps 3a (β-tightness), 3d (level increments) and 3e
// (raise/stuck) for every active vertex.
func (st *state[T]) vertexPhase(its *IterationStats) {
	num, g := st.num, st.g
	for v := 0; v < g.NumVertices(); v++ {
		st.inc[v] = 0
		st.joined[v] = false
		if st.doneV[v] {
			continue
		}
		// 3a: β-tight ⇔ Σδ ≥ (1-β)w ⇔ (f+ε)·Σδ ≥ f·w (cross-multiplied so
		// exact mode needs no division).
		if num.Cmp(num.Mul(st.sumDelta[v], st.fPlusEps), st.fWT[v]) >= 0 {
			st.inCover[v] = true
			st.joined[v] = true
			st.doneV[v] = true
			its.Joined++
			continue
		}
		// 3d: while Σδ > w·(1 - 2^{-(ℓ+1)}) ⇔ Σδ + w·2^{-(ℓ+1)} > w.
		for num.Cmp(num.Add(st.sumDelta[v], num.HalfPow(st.wT[v], st.level[v]+1)), st.wT[v]) > 0 {
			st.level[v]++
			st.inc[v]++
		}
		if st.inc[v] > 0 {
			st.stuckCur[v] = 0 // new level: Lemma 7 counter restarts
		}
		if st.inc[v] > 0 {
			its.LevelIncrements += st.inc[v]
			if st.inc[v] > its.MaxLevelIncrement {
				its.MaxLevelIncrement = st.inc[v]
			}
		}
		// 3e: raise iff α·(Σ_{E'(v)} bid after own halvings) ≤ w·2^{-(ℓ+1)}.
		view := st.num.HalfPow(st.sumBid[v], st.inc[v])
		if num.Cmp(num.Mul(st.alphaV[v], view), num.HalfPow(st.wT[v], st.level[v]+1)) <= 0 {
			st.raise[v] = true
		} else {
			st.raise[v] = false
			its.StuckVertices++
			st.stuckCur[v]++
			if st.stuckCur[v] > st.stuckMax[v] {
				st.stuckMax[v] = st.stuckCur[v]
			}
		}
	}
}

// edgePhase runs steps 3b/3c (covered propagation), the bid halvings of 3d,
// and 3f (raise and dual update) for every uncovered edge.
func (st *state[T]) edgePhase(its *IterationStats) {
	num, g := st.num, st.g
	for e := 0; e < g.NumEdges(); e++ {
		if st.covered[e] {
			continue
		}
		vs := g.Edge(hypergraph.EdgeID(e))
		nowCovered := false
		halvings := 0
		allRaise := true
		for _, v := range vs {
			if st.joined[v] {
				nowCovered = true
			}
			halvings += st.inc[v]
			if !st.raise[v] {
				allRaise = false
			}
		}
		if nowCovered {
			st.covered[e] = true
			st.uncovered--
			its.CoveredEdges++
			for _, v := range vs {
				st.uncovDeg[v]--
			}
			continue
		}
		if halvings > 0 {
			st.bid[e] = num.HalfPow(st.bid[e], halvings)
		}
		if allRaise {
			st.bid[e] = num.Mul(st.bid[e], st.alphaE[e])
			its.RaisedEdges++
			st.raises[e]++
		}
		add := st.bid[e]
		if st.opts.Variant == VariantSingleLevel {
			add = num.HalfPow(add, 1)
		}
		st.delta[e] = num.Add(st.delta[e], add)
		for _, v := range vs {
			st.sumDelta[v] = num.Add(st.sumDelta[v], add)
		}
	}
}

// refreshVertexAggregates recomputes sumBid (and alphaV under AlphaLocal)
// from the surviving uncovered edges, and retires vertices whose incident
// edges are all covered.
func (st *state[T]) refreshVertexAggregates() {
	num, g := st.num, st.g
	for v := 0; v < g.NumVertices(); v++ {
		if st.doneV[v] {
			continue
		}
		if st.uncovDeg[v] == 0 {
			st.doneV[v] = true
			continue
		}
		st.sumBid[v] = num.Zero()
		if st.localAlpha {
			st.alphaV[v] = num.FromFloat(2)
		}
	}
	for e := 0; e < g.NumEdges(); e++ {
		if st.covered[e] {
			continue
		}
		for _, v := range g.Edge(hypergraph.EdgeID(e)) {
			st.sumBid[v] = num.Add(st.sumBid[v], st.bid[e])
			if st.localAlpha && num.Cmp(st.alphaE[e], st.alphaV[v]) > 0 {
				st.alphaV[v] = st.alphaE[e]
			}
		}
	}
}

// fill converts the final state into a Result.
func (st *state[T]) fill(res *Result) {
	num, g := st.num, st.g
	res.InCover = append([]bool(nil), st.inCover...)
	// Pre-count the cover so res.Cover is sized in one allocation; the
	// ascending vertex scan appends it already sorted.
	size := 0
	for _, in := range st.inCover {
		if in {
			size++
		}
	}
	if size > 0 {
		res.Cover = make([]hypergraph.VertexID, 0, size)
	}
	for v, in := range st.inCover {
		if in {
			res.Cover = append(res.Cover, hypergraph.VertexID(v))
			res.CoverWeight += g.Weight(hypergraph.VertexID(v))
		}
	}
	res.Dual = make([]float64, g.NumEdges())
	for e := range res.Dual {
		res.Dual[e] = num.Float(st.delta[e])
		res.DualValue += res.Dual[e]
	}
	for _, l := range st.level {
		if l > res.MaxLevel {
			res.MaxLevel = l
		}
	}
	if res.DualValue > 0 {
		res.RatioBound = float64(res.CoverWeight) / res.DualValue
	} else if res.CoverWeight == 0 {
		res.RatioBound = 1
	} else {
		res.RatioBound = math.Inf(1)
	}
	if st.opts.CollectTrace {
		res.EdgeRaises = append([]int(nil), st.raises...)
		res.MaxStuckPerLevel = append([]int(nil), st.stuckMax...)
	}
	if g.NumEdges() == 0 {
		res.Rounds = 1
	} else {
		res.Rounds = 2 + 2*res.Iterations
	}
}
