package durable

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"distcover"
)

func sampleRecords() []Record {
	return []Record{
		{Type: RecCreate, ID: "s-1", Options: []byte(`{"engine":"flat"}`),
			Instance: []byte(`{"weights":[1,2],"edges":[[0,1]]}`)},
		{Type: RecUpdate, ID: "s-1", Delta: distcover.Delta{
			Weights: []int64{5, 7}, Edges: [][]int{{0, 2}, {1, 3, 2}}}},
		{Type: RecUpdate, ID: "s-1", Delta: distcover.Delta{Edges: [][]int{{0, 1}}}},
		{Type: RecDelete, ID: "s-1"},
	}
}

// TestRecordRoundTrip: encode → decode is the identity for every record
// type, including empty deltas and empty payloads.
func TestRecordRoundTrip(t *testing.T) {
	recs := sampleRecords()
	recs = append(recs, Record{Type: RecCreate, ID: ""}, Record{Type: RecUpdate, ID: "x"})
	for i, r := range recs {
		r.Seq = uint64(i + 1)
		p, err := EncodeRecord(r)
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		got, err := DecodeRecord(p)
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		// Decode normalizes nil/empty the same way encode reads them.
		if got.Type != r.Type || got.Seq != r.Seq || got.ID != r.ID ||
			!bytes.Equal(got.Options, r.Options) || !bytes.Equal(got.Instance, r.Instance) ||
			!sameDelta(got.Delta, r.Delta) {
			t.Fatalf("record %d:\n got %+v\nwant %+v", i, got, r)
		}
	}
}

func sameDelta(a, b distcover.Delta) bool {
	if len(a.Weights) != len(b.Weights) || len(a.Edges) != len(b.Edges) {
		return false
	}
	for i := range a.Weights {
		if a.Weights[i] != b.Weights[i] {
			return false
		}
	}
	for i := range a.Edges {
		if !reflect.DeepEqual(a.Edges[i], b.Edges[i]) {
			return false
		}
	}
	return true
}

// TestDecodeRejectsGarbage: truncations and type corruption fail cleanly.
func TestDecodeRejectsGarbage(t *testing.T) {
	r := sampleRecords()[1]
	r.Seq = 9
	p, err := EncodeRecord(r)
	if err != nil {
		t.Fatal(err)
	}
	for cut := 0; cut < len(p); cut++ {
		if _, err := DecodeRecord(p[:cut]); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
	bad := append([]byte(nil), p...)
	bad[0] = 77 // unknown type
	if _, err := DecodeRecord(bad); err == nil {
		t.Fatal("unknown record type accepted")
	}
	if _, err := DecodeRecord(append(p, 0)); err == nil {
		t.Fatal("trailing garbage accepted")
	}
	if _, err := EncodeRecord(Record{Type: 42}); err == nil {
		t.Fatal("encoding unknown type accepted")
	}
}

// TestStoreAppendRecover: records appended to a store come back from Open
// in order with their assigned sequence numbers.
func TestStoreAppendRecover(t *testing.T) {
	dir := t.TempDir()
	s, rec, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Sessions) != 0 || len(rec.Records) != 0 || rec.TornTail {
		t.Fatalf("fresh dir recovered %+v", rec)
	}
	want := sampleRecords()
	for i, r := range want {
		seq, err := s.Append(r)
		if err != nil {
			t.Fatal(err)
		}
		if seq != uint64(i+1) {
			t.Fatalf("seq %d, want %d", seq, i+1)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, rec2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if rec2.TornTail {
		t.Fatal("clean wal reported torn")
	}
	if len(rec2.Records) != len(want) {
		t.Fatalf("recovered %d records, want %d", len(rec2.Records), len(want))
	}
	for i, r := range rec2.Records {
		if r.Seq != uint64(i+1) || r.Type != want[i].Type || r.ID != want[i].ID {
			t.Fatalf("record %d: %+v", i, r)
		}
	}
	if seq, err := s2.Append(want[0]); err != nil || seq != uint64(len(want)+1) {
		t.Fatalf("seq continues at %d (err %v), want %d", seq, err, len(want)+1)
	}
}

// TestStoreTornTail: a partial final record — the signature of a crash
// mid-write — is dropped and truncated; the intact prefix survives.
func TestStoreTornTail(t *testing.T) {
	dir := t.TempDir()
	s, _, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range sampleRecords() {
		if _, err := s.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	s.Close()
	path := filepath.Join(dir, walFile)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	cuts := map[int]int{1: 3, 5: 3, len(raw) - 3: 0} // bytes cut → surviving records
	for cut, survivors := range cuts {
		if err := os.WriteFile(path, raw[:len(raw)-cut], 0o644); err != nil {
			t.Fatal(err)
		}
		s2, rec, err := Open(dir)
		if err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		if !rec.TornTail {
			t.Fatalf("cut %d: torn tail not flagged", cut)
		}
		if len(rec.Records) != survivors {
			t.Fatalf("cut %d: %d records survived, want %d", cut, len(rec.Records), survivors)
		}
		s2.Close()
		// The torn bytes were truncated away: reopening is clean.
		if _, rec3, err := Open(dir); err != nil || rec3.TornTail {
			t.Fatalf("cut %d: reopen after truncation: torn=%v err=%v", cut, rec3.TornTail, err)
		} else {
			s3, _, _ := Open(dir)
			s3.Close()
		}
		os.WriteFile(path, raw, 0o644) // restore for the next cut
	}
	// A corrupted byte inside an intact frame is real corruption, not a
	// torn tail: the checksum catches it and recovery keeps the prefix.
	raw[10] ^= 0xff
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	s4, rec, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !rec.TornTail || len(rec.Records) != 0 {
		t.Fatalf("flipped byte: torn=%v records=%d", rec.TornTail, len(rec.Records))
	}
	s4.Close()
}

// TestStoreSnapshotCompaction: WriteSnapshot folds the log into the
// snapshot file, truncates the WAL, and recovery returns the snapshot's
// sessions plus only the records logged after it.
func TestStoreSnapshotCompaction(t *testing.T) {
	dir := t.TempDir()
	s, _, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	recs := sampleRecords()
	for _, r := range recs[:3] {
		if _, err := s.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	snap := &distcover.SessionSnapshot{
		Weights: []int64{1, 2}, Edges: [][]int{{0, 1}},
		InCover: []bool{true, false}, Load: []float64{1, 0}, Dual: []float64{1},
		CoverWeight: 1, DualValue: 1, Epsilon: 1, Updates: 2,
	}
	sessions := []SessionRecord{{ID: "s-1", Options: []byte(`{"engine":"flat"}`), Snapshot: snap}}
	if err := s.WriteSnapshot(sessions); err != nil {
		t.Fatal(err)
	}
	seqAfter, err := s.Append(recs[3]) // one post-snapshot record
	if err != nil {
		t.Fatal(err)
	}
	if seqAfter != 4 {
		t.Fatalf("post-snapshot seq %d, want 4", seqAfter)
	}
	s.Close()

	s2, rec, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if rec.SnapshotSeq != 3 || len(rec.Sessions) != 1 || rec.Sessions[0].ID != "s-1" {
		t.Fatalf("snapshot recovery: %+v", rec)
	}
	if rec.Sessions[0].Snapshot.Updates != 2 || rec.Sessions[0].Snapshot.CoverWeight != 1 {
		t.Fatalf("session snapshot content lost: %+v", rec.Sessions[0].Snapshot)
	}
	if len(rec.Records) != 1 || rec.Records[0].Type != RecDelete || rec.Records[0].Seq != 4 {
		t.Fatalf("post-snapshot records: %+v", rec.Records)
	}
	if s2.Seq() != 4 {
		t.Fatalf("seq resumed at %d, want 4", s2.Seq())
	}
}

// TestSnapshotCorruptionRejected: a flipped byte in the snapshot file is
// an error, not silent data loss.
func TestSnapshotCorruptionRejected(t *testing.T) {
	dir := t.TempDir()
	s, _, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Append(sampleRecords()[0]); err != nil {
		t.Fatal(err)
	}
	if err := s.WriteSnapshot(nil); err != nil {
		t.Fatal(err)
	}
	s.Close()
	path := filepath.Join(dir, snapFile)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-1] ^= 0xff
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Open(dir); err == nil {
		t.Fatal("corrupt snapshot accepted")
	}
}
