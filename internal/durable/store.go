package durable

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sync"

	"distcover"
)

const (
	walFile  = "wal.log"
	snapFile = "state.snap"

	// snapMagic heads snapshot files; the version byte after it gates
	// future format changes.
	snapMagic   = "distcover-wal-snap"
	snapVersion = 1
)

// SessionRecord is one session inside a snapshot file: everything needed
// to rebuild it without replaying its history.
type SessionRecord struct {
	ID       string                     `json:"id"`
	Options  json.RawMessage            `json:"options,omitempty"`
	Snapshot *distcover.SessionSnapshot `json:"snapshot"`
}

// Recovery is what Open found on disk: the sessions of the latest
// snapshot, plus the WAL records logged after it, in append order.
type Recovery struct {
	// SnapshotSeq is the sequence number the snapshot covers; records with
	// Seq ≤ SnapshotSeq are already folded into Sessions.
	SnapshotSeq uint64
	Sessions    []SessionRecord
	Records     []Record
	// TornTail reports that the WAL ended in an incomplete or corrupt
	// record — the expected signature of a crash mid-write — and that the
	// tail was discarded (and truncated from the file) at the last intact
	// record boundary.
	TornTail bool
}

// Store is an open WAL directory. Append is safe for concurrent use; the
// caller provides ordering (coverd serializes per-session, see
// server.walMu) and Store serializes the file itself.
type Store struct {
	dir string

	mu     sync.Mutex
	f      *os.File
	w      *bufio.Writer
	seq    uint64
	closed bool
}

// Open opens (creating if needed) the WAL directory and recovers its
// state: the latest snapshot, the WAL records after it, and the next
// sequence number. A torn WAL tail — the normal result of crashing
// mid-write — is truncated silently and flagged; any other corruption is
// an error, because silently dropping acknowledged records would break
// the durability contract.
func Open(dir string) (*Store, *Recovery, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, fmt.Errorf("durable: %w", err)
	}
	rec := &Recovery{}
	if err := readSnapshotFile(filepath.Join(dir, snapFile), rec); err != nil {
		return nil, nil, err
	}
	maxSeq, err := replayWAL(filepath.Join(dir, walFile), rec, true)
	if err != nil {
		return nil, nil, err
	}
	f, err := os.OpenFile(filepath.Join(dir, walFile), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("durable: %w", err)
	}
	s := &Store{dir: dir, f: f, w: bufio.NewWriter(f), seq: rec.SnapshotSeq}
	if maxSeq > s.seq {
		s.seq = maxSeq
	}
	return s, rec, nil
}

// Recover reads a WAL directory's snapshot and post-snapshot records
// without opening the log for append and without truncating a torn tail —
// a strictly read-only view. This is the takeover path: a ring
// coordinator adopting the sessions of a dead member reads the dead
// member's directory through Recover, so if that member restarts onto its
// own directory it finds it exactly as its crash left it. A missing
// directory is an empty state, not an error.
func Recover(dir string) (*Recovery, error) {
	rec := &Recovery{}
	if err := readSnapshotFile(filepath.Join(dir, snapFile), rec); err != nil {
		return nil, err
	}
	if _, err := replayWAL(filepath.Join(dir, walFile), rec, false); err != nil {
		return nil, err
	}
	return rec, nil
}

// Append assigns the next sequence number to r, writes it to the WAL and
// flushes to the operating system. On return the record survives a crash
// of this process.
func (s *Store) Append(r Record) (uint64, error) {
	payload0 := r // encode with seq assigned under the lock
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return 0, errors.New("durable: store closed")
	}
	s.seq++
	payload0.Seq = s.seq
	payload, err := EncodeRecord(payload0)
	if err != nil {
		s.seq--
		return 0, err
	}
	if err := writeFrame(s.w, payload); err != nil {
		return 0, fmt.Errorf("durable: append: %w", err)
	}
	if err := s.w.Flush(); err != nil {
		return 0, fmt.Errorf("durable: append: %w", err)
	}
	return s.seq, nil
}

// WriteSnapshot atomically replaces the snapshot file with the given
// sessions, covering everything logged so far, then truncates the WAL.
// The write order (tmp file → rename → truncate) means a crash at any
// point leaves a recoverable directory: before the rename the old
// snapshot plus the full WAL is intact; after it the WAL records are
// redundant (replaying them over the new snapshot is idempotent only
// because the caller snapshots under its commit lock — see server
// documentation) and the truncate merely discards them.
func (s *Store) WriteSnapshot(sessions []SessionRecord) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return errors.New("durable: store closed")
	}
	body := make([]byte, 0, 1024)
	body = binary.AppendUvarint(body, s.seq)
	body = binary.AppendUvarint(body, uint64(len(sessions)))
	for _, sr := range sessions {
		blob, err := json.Marshal(sr)
		if err != nil {
			return fmt.Errorf("durable: snapshot: %w", err)
		}
		body = binary.AppendUvarint(body, uint64(len(blob)))
		body = append(body, blob...)
	}
	var file []byte
	file = append(file, snapMagic...)
	file = append(file, snapVersion)
	file = binary.BigEndian.AppendUint32(file, crc32.ChecksumIEEE(body))
	file = append(file, body...)

	tmp := filepath.Join(s.dir, snapFile+".tmp")
	if err := os.WriteFile(tmp, file, 0o644); err != nil {
		return fmt.Errorf("durable: snapshot: %w", err)
	}
	if err := os.Rename(tmp, filepath.Join(s.dir, snapFile)); err != nil {
		return fmt.Errorf("durable: snapshot: %w", err)
	}
	// The WAL's records are all covered by the snapshot now; start it over.
	if err := s.f.Truncate(0); err != nil {
		return fmt.Errorf("durable: snapshot: %w", err)
	}
	if _, err := s.f.Seek(0, io.SeekStart); err != nil {
		return fmt.Errorf("durable: snapshot: %w", err)
	}
	s.w.Reset(s.f)
	return nil
}

// Seq returns the last assigned sequence number.
func (s *Store) Seq() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.seq
}

// Close flushes and closes the WAL file.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	if err := s.w.Flush(); err != nil {
		s.f.Close()
		return fmt.Errorf("durable: close: %w", err)
	}
	return s.f.Close()
}

// writeFrame frames one record on disk: u32 length | u32 crc32(payload) |
// payload, both big-endian.
func writeFrame(w io.Writer, payload []byte) error {
	var hdr [8]byte
	binary.BigEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.BigEndian.PutUint32(hdr[4:8], crc32.ChecksumIEEE(payload))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// replayWAL reads records into rec, skipping those the snapshot already
// covers. A torn tail is flagged and, when truncate is set (the
// open-for-append path), cut from the file in place; the read-only
// recovery path leaves the file untouched. Returns the highest sequence
// number seen.
func replayWAL(path string, rec *Recovery, truncate bool) (uint64, error) {
	f, err := os.Open(path)
	if errors.Is(err, os.ErrNotExist) {
		return 0, nil
	}
	if err != nil {
		return 0, fmt.Errorf("durable: %w", err)
	}
	defer f.Close()
	br := bufio.NewReader(f)
	var (
		good   int64 // offset after the last intact record
		maxSeq uint64
	)
	for {
		var hdr [8]byte
		if _, err := io.ReadFull(br, hdr[:]); err != nil {
			if errors.Is(err, io.EOF) {
				break // clean end
			}
			rec.TornTail = true
			break
		}
		length := binary.BigEndian.Uint32(hdr[0:4])
		sum := binary.BigEndian.Uint32(hdr[4:8])
		if length == 0 || length > maxRecordBytes {
			rec.TornTail = true
			break
		}
		payload := make([]byte, length)
		if _, err := io.ReadFull(br, payload); err != nil {
			rec.TornTail = true
			break
		}
		if crc32.ChecksumIEEE(payload) != sum {
			rec.TornTail = true
			break
		}
		r, err := DecodeRecord(payload)
		if err != nil {
			// The frame checksummed clean but the payload is malformed:
			// that is not a torn write, it is real corruption.
			return 0, fmt.Errorf("durable: wal record at offset %d: %w", good, err)
		}
		good += int64(8 + length)
		if r.Seq > maxSeq {
			maxSeq = r.Seq
		}
		if r.Seq > rec.SnapshotSeq {
			rec.Records = append(rec.Records, r)
		}
	}
	if rec.TornTail && truncate {
		if err := os.Truncate(path, good); err != nil {
			return 0, fmt.Errorf("durable: truncate torn wal: %w", err)
		}
	}
	return maxSeq, nil
}

// readSnapshotFile loads the snapshot into rec; a missing file is an
// empty state, any unreadable content is an error (snapshots are written
// atomically, so unlike the WAL a torn snapshot should not exist).
func readSnapshotFile(path string, rec *Recovery) error {
	raw, err := os.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("durable: %w", err)
	}
	hdr := len(snapMagic) + 1 + 4
	if len(raw) < hdr || string(raw[:len(snapMagic)]) != snapMagic {
		return fmt.Errorf("durable: snapshot: %w: bad magic", ErrCorrupt)
	}
	if v := raw[len(snapMagic)]; v != snapVersion {
		return fmt.Errorf("durable: snapshot: unsupported version %d", v)
	}
	sum := binary.BigEndian.Uint32(raw[len(snapMagic)+1 : hdr])
	body := raw[hdr:]
	if crc32.ChecksumIEEE(body) != sum {
		return fmt.Errorf("durable: snapshot: %w: checksum mismatch", ErrCorrupt)
	}
	c := &byteCursor{p: body}
	seq, err := c.uvarint()
	if err != nil {
		return fmt.Errorf("durable: snapshot: %w", err)
	}
	n, err := c.uvarint()
	if err != nil || n > uint64(len(body)) {
		return fmt.Errorf("durable: snapshot: %w", ErrCorrupt)
	}
	rec.SnapshotSeq = seq
	for i := uint64(0); i < n; i++ {
		l, err := c.uvarint()
		if err != nil {
			return fmt.Errorf("durable: snapshot: %w", err)
		}
		blob, err := c.bytes(l)
		if err != nil {
			return fmt.Errorf("durable: snapshot: %w", ErrCorrupt)
		}
		var sr SessionRecord
		if err := json.Unmarshal(blob, &sr); err != nil {
			return fmt.Errorf("durable: snapshot session %d: %w", i, err)
		}
		rec.Sessions = append(rec.Sessions, sr)
	}
	if c.off != len(body) {
		return fmt.Errorf("durable: snapshot: %w: trailing bytes", ErrCorrupt)
	}
	return nil
}
