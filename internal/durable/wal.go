// Package durable gives coverd sessions crash durability: a write-ahead
// log of session life-cycle records (create / delta batch / delete) plus
// periodic snapshot files that compact the log. The two file formats are
// specified normatively in docs/PROTOCOL.md; this package is the only
// reader and writer of either.
//
// The durability contract is against process death (SIGKILL, panic, OOM):
// every record is flushed to the operating system before the server
// acknowledges the request it logs, so anything acknowledged survives a
// crash of the process. Surviving the loss of the machine's page cache
// (power failure) would additionally need fsync per record, which the
// write path deliberately omits — session recomputation is cheap relative
// to per-request fsync latency, and the snapshot loop bounds the loss
// window either way.
package durable

import (
	"encoding/binary"
	"errors"
	"fmt"

	"distcover"
)

// RecordType discriminates WAL records.
type RecordType uint8

const (
	// RecCreate logs a session creation: the solve options and the full
	// base instance, both as the JSON the HTTP API already uses.
	RecCreate RecordType = 1
	// RecUpdate logs one applied delta batch in the compact binary form.
	RecUpdate RecordType = 2
	// RecDelete logs a session deletion (explicit or registry eviction).
	RecDelete RecordType = 3
)

// ErrCorrupt reports a structurally invalid WAL record or snapshot body.
var ErrCorrupt = errors.New("durable: corrupt record")

// maxRecordBytes bounds a single record; larger lengths are corruption.
const maxRecordBytes = 1 << 30

// Record is one WAL entry. Seq is assigned by Store.Append and is strictly
// increasing across the life of a WAL directory, surviving snapshots and
// restarts.
type Record struct {
	Type RecordType
	Seq  uint64
	ID   string // session id

	// Options and Instance carry the create payloads (RecCreate only):
	// the session's solve options and base instance, as opaque JSON.
	Options  []byte
	Instance []byte

	// Delta is the applied batch (RecUpdate only).
	Delta distcover.Delta
}

// EncodeRecord serializes a record payload (without file framing):
//
//	u8 type | uvarint seq | uvarint len(id) | id | body
//
// where the body is type-specific (see docs/PROTOCOL.md). The encoding is
// canonical: DecodeRecord∘EncodeRecord is the identity, and
// EncodeRecord∘DecodeRecord reproduces the input bytes exactly, which the
// WAL fuzz target enforces.
func EncodeRecord(r Record) ([]byte, error) {
	switch r.Type {
	case RecCreate, RecUpdate, RecDelete:
	default:
		return nil, fmt.Errorf("durable: encode: unknown record type %d", r.Type)
	}
	buf := make([]byte, 0, 64+len(r.ID)+len(r.Options)+len(r.Instance))
	buf = append(buf, byte(r.Type))
	buf = binary.AppendUvarint(buf, r.Seq)
	buf = binary.AppendUvarint(buf, uint64(len(r.ID)))
	buf = append(buf, r.ID...)
	switch r.Type {
	case RecCreate:
		buf = binary.AppendUvarint(buf, uint64(len(r.Options)))
		buf = append(buf, r.Options...)
		buf = binary.AppendUvarint(buf, uint64(len(r.Instance)))
		buf = append(buf, r.Instance...)
	case RecUpdate:
		buf = binary.AppendUvarint(buf, uint64(len(r.Delta.Weights)))
		for _, w := range r.Delta.Weights {
			if w < 0 {
				return nil, fmt.Errorf("durable: encode: negative weight %d", w)
			}
			buf = binary.AppendUvarint(buf, uint64(w))
		}
		buf = binary.AppendUvarint(buf, uint64(len(r.Delta.Edges)))
		for _, e := range r.Delta.Edges {
			buf = binary.AppendUvarint(buf, uint64(len(e)))
			for _, v := range e {
				if v < 0 {
					return nil, fmt.Errorf("durable: encode: negative vertex id %d", v)
				}
				buf = binary.AppendUvarint(buf, uint64(v))
			}
		}
	}
	return buf, nil
}

// byteCursor decodes the uvarint-based payload layout with bounds checks.
type byteCursor struct {
	p   []byte
	off int
}

func (c *byteCursor) uvarint() (uint64, error) {
	v, n := binary.Uvarint(c.p[c.off:])
	if n <= 0 {
		return 0, ErrCorrupt
	}
	// Reject non-minimal encodings (a redundant trailing continuation
	// byte): decode must only accept the canonical form encode emits.
	if n > 1 && c.p[c.off+n-1] == 0 {
		return 0, ErrCorrupt
	}
	c.off += n
	return v, nil
}

func (c *byteCursor) bytes(n uint64) ([]byte, error) {
	if n > uint64(len(c.p)-c.off) {
		return nil, ErrCorrupt
	}
	b := c.p[c.off : c.off+int(n)]
	c.off += int(n)
	return b, nil
}

// DecodeRecord parses a record payload, rejecting trailing garbage.
func DecodeRecord(p []byte) (Record, error) {
	var r Record
	if len(p) == 0 {
		return r, ErrCorrupt
	}
	c := &byteCursor{p: p, off: 1}
	r.Type = RecordType(p[0])
	seq, err := c.uvarint()
	if err != nil {
		return r, err
	}
	r.Seq = seq
	idLen, err := c.uvarint()
	if err != nil {
		return r, err
	}
	id, err := c.bytes(idLen)
	if err != nil {
		return r, err
	}
	r.ID = string(id)
	switch r.Type {
	case RecCreate:
		n, err := c.uvarint()
		if err != nil {
			return r, err
		}
		opts, err := c.bytes(n)
		if err != nil {
			return r, err
		}
		if n, err = c.uvarint(); err != nil {
			return r, err
		}
		inst, err := c.bytes(n)
		if err != nil {
			return r, err
		}
		// Copy out of the shared payload buffer; records outlive it.
		r.Options = append([]byte(nil), opts...)
		r.Instance = append([]byte(nil), inst...)
	case RecUpdate:
		nw, err := c.uvarint()
		if err != nil || nw > uint64(len(p)) {
			return r, ErrCorrupt
		}
		if nw > 0 {
			r.Delta.Weights = make([]int64, nw)
			for i := range r.Delta.Weights {
				w, err := c.uvarint()
				if err != nil || w > 1<<62 {
					return r, ErrCorrupt
				}
				r.Delta.Weights[i] = int64(w)
			}
		}
		ne, err := c.uvarint()
		if err != nil || ne > uint64(len(p)) {
			return r, ErrCorrupt
		}
		if ne > 0 {
			r.Delta.Edges = make([][]int, ne)
			for i := range r.Delta.Edges {
				k, err := c.uvarint()
				if err != nil || k > uint64(len(p)) {
					return r, ErrCorrupt
				}
				edge := make([]int, k)
				for j := range edge {
					v, err := c.uvarint()
					if err != nil || v > 1<<31 {
						return r, ErrCorrupt
					}
					edge[j] = int(v)
				}
				r.Delta.Edges[i] = edge
			}
		}
	case RecDelete:
	default:
		return r, ErrCorrupt
	}
	if c.off != len(p) {
		return r, ErrCorrupt
	}
	return r, nil
}
