package durable

import (
	"bytes"
	"testing"
)

// FuzzWALRecord hammers the WAL record codec with arbitrary bytes: any
// input either fails cleanly or decodes to a record whose re-encoding is
// byte-identical (the canonical-form fixpoint), and that re-decodes to the
// same record. A panic or a non-canonical accept is a finding.
func FuzzWALRecord(f *testing.F) {
	for i, r := range sampleRecords() {
		r.Seq = uint64(i + 1)
		p, err := EncodeRecord(r)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(p)
	}
	f.Add([]byte{})
	f.Add([]byte{1})
	f.Add([]byte{2, 0, 0, 0, 0})
	f.Fuzz(func(t *testing.T, p []byte) {
		r, err := DecodeRecord(p)
		if err != nil {
			return // rejected cleanly
		}
		p2, err := EncodeRecord(r)
		if err != nil {
			t.Fatalf("decoded record does not re-encode: %v (%+v)", err, r)
		}
		if !bytes.Equal(p, p2) {
			t.Fatalf("accepted non-canonical encoding:\n in  %x\n out %x", p, p2)
		}
		r2, err := DecodeRecord(p2)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if r2.Type != r.Type || r2.Seq != r.Seq || r2.ID != r.ID {
			t.Fatalf("decode/encode/decode drift: %+v vs %+v", r, r2)
		}
	})
}
