package hypergraph

import (
	"errors"
	"fmt"
)

// Validation errors returned by Builder.Build and Validate.
var (
	// ErrNoVertices indicates an instance with edges but no vertices.
	ErrNoVertices = errors.New("hypergraph: no vertices")
	// ErrEmptyEdge indicates a hyperedge with no vertices; such an edge can
	// never be covered, so the instance is infeasible.
	ErrEmptyEdge = errors.New("hypergraph: empty edge")
	// ErrVertexRange indicates an edge referencing an out-of-range vertex.
	ErrVertexRange = errors.New("hypergraph: vertex id out of range")
	// ErrNonPositiveWeight indicates a vertex weight ≤ 0.
	ErrNonPositiveWeight = errors.New("hypergraph: non-positive vertex weight")
)

// Builder incrementally constructs a Hypergraph. The zero value is ready to
// use. Builders are not safe for concurrent use.
type Builder struct {
	weights []int64
	edges   [][]VertexID
}

// NewBuilder returns a Builder with capacity hints for n vertices and m
// edges.
func NewBuilder(n, m int) *Builder {
	return &Builder{
		weights: make([]int64, 0, n),
		edges:   make([][]VertexID, 0, m),
	}
}

// AddVertex appends a vertex with the given weight and returns its id.
func (b *Builder) AddVertex(weight int64) VertexID {
	b.weights = append(b.weights, weight)
	return VertexID(len(b.weights) - 1)
}

// AddVertices appends k vertices all of the given weight and returns the id
// of the first.
func (b *Builder) AddVertices(k int, weight int64) VertexID {
	first := VertexID(len(b.weights))
	for i := 0; i < k; i++ {
		b.weights = append(b.weights, weight)
	}
	return first
}

// AddEdge appends a hyperedge over the given vertices (duplicates are
// dropped) and returns its id. Validation is deferred to Build.
func (b *Builder) AddEdge(vs ...VertexID) EdgeID {
	b.edges = append(b.edges, sortedUnique(vs))
	return EdgeID(len(b.edges) - 1)
}

// NumVertices returns the number of vertices added so far.
func (b *Builder) NumVertices() int { return len(b.weights) }

// NumEdges returns the number of edges added so far.
func (b *Builder) NumEdges() int { return len(b.edges) }

// Build validates the instance and returns the immutable hypergraph. The
// builder remains usable; the built hypergraph does not alias its storage.
func (b *Builder) Build() (*Hypergraph, error) {
	if len(b.edges) > 0 && len(b.weights) == 0 {
		return nil, ErrNoVertices
	}
	for v, w := range b.weights {
		if w <= 0 {
			return nil, fmt.Errorf("%w: vertex %d has weight %d", ErrNonPositiveWeight, v, w)
		}
	}
	for i, e := range b.edges {
		if len(e) == 0 {
			return nil, fmt.Errorf("%w: edge %d", ErrEmptyEdge, i)
		}
		for _, v := range e {
			if v < 0 || int(v) >= len(b.weights) {
				return nil, fmt.Errorf("%w: edge %d references vertex %d (n=%d)",
					ErrVertexRange, i, v, len(b.weights))
			}
		}
	}
	g := &Hypergraph{weights: append([]int64(nil), b.weights...)}
	g.setEdgesFromRows(b.edges)
	g.buildIncidence()
	return g, nil
}

// MustBuild is Build but panics on error; intended for tests and statically
// known-valid literals.
func (b *Builder) MustBuild() *Hypergraph {
	g, err := b.Build()
	if err != nil {
		panic(err)
	}
	return g
}

// New constructs a hypergraph directly from a weight vector and edge list.
func New(weights []int64, edges [][]VertexID) (*Hypergraph, error) {
	b := NewBuilder(len(weights), len(edges))
	for _, w := range weights {
		b.AddVertex(w)
	}
	for _, e := range edges {
		b.AddEdge(e...)
	}
	return b.Build()
}

// MustNew is New but panics on error.
func MustNew(weights []int64, edges [][]VertexID) *Hypergraph {
	g, err := New(weights, edges)
	if err != nil {
		panic(err)
	}
	return g
}

// Validate re-checks the structural invariants of g. Hypergraphs built via
// Builder always pass; Validate exists for instances decoded from JSON.
func Validate(g *Hypergraph) error {
	if g.NumEdges() > 0 && g.NumVertices() == 0 {
		return ErrNoVertices
	}
	for v := 0; v < g.NumVertices(); v++ {
		if g.Weight(VertexID(v)) <= 0 {
			return fmt.Errorf("%w: vertex %d", ErrNonPositiveWeight, v)
		}
	}
	for e := 0; e < g.NumEdges(); e++ {
		vs := g.Edge(EdgeID(e))
		if len(vs) == 0 {
			return fmt.Errorf("%w: edge %d", ErrEmptyEdge, e)
		}
		for i, v := range vs {
			if v < 0 || int(v) >= g.NumVertices() {
				return fmt.Errorf("%w: edge %d vertex %d", ErrVertexRange, e, v)
			}
			if i > 0 && vs[i-1] >= v {
				return fmt.Errorf("hypergraph: edge %d not sorted/unique", e)
			}
		}
	}
	return nil
}
