package hypergraph

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"
)

// oracle is a slice-of-slices shadow of a hypergraph, grown alongside the
// CSR value under test. It is the layout the package used before the CSR
// refactor; keeping it as the reference makes every round-trip check an
// independent re-derivation rather than a CSR-vs-CSR comparison.
type oracle struct {
	weights []int64
	edges   [][]VertexID
}

func (o *oracle) extend(addW []int64, addE [][]VertexID) {
	o.weights = append(o.weights, addW...)
	for _, e := range addE {
		o.edges = append(o.edges, sortedUnique(e))
	}
}

// incidence derives the incidence lists from the edge list.
func (o *oracle) incidence() [][]EdgeID {
	inc := make([][]EdgeID, len(o.weights))
	for e, vs := range o.edges {
		for _, v := range vs {
			inc[v] = append(inc[v], EdgeID(e))
		}
	}
	return inc
}

// requireMatchesOracle checks every accessor of g against the oracle:
// weights, edge contents, incidence contents, degrees, rank, max degree and
// the canonical hash (computed on a fresh build of the oracle's data).
func requireMatchesOracle(t *testing.T, label string, g *Hypergraph, o *oracle) {
	t.Helper()
	if g.NumVertices() != len(o.weights) || g.NumEdges() != len(o.edges) {
		t.Fatalf("%s: size n=%d m=%d, want n=%d m=%d",
			label, g.NumVertices(), g.NumEdges(), len(o.weights), len(o.edges))
	}
	if len(o.weights) > 0 && !reflect.DeepEqual(g.Weights(), o.weights) {
		t.Fatalf("%s: weights diverge", label)
	}
	rank := 0
	for e, vs := range o.edges {
		if len(vs) > rank {
			rank = len(vs)
		}
		if got := g.Edge(EdgeID(e)); !reflect.DeepEqual(got, vs) {
			t.Fatalf("%s: edge %d = %v, want %v", label, e, got, vs)
		}
		if g.EdgeSize(EdgeID(e)) != len(vs) {
			t.Fatalf("%s: edge %d size", label, e)
		}
	}
	maxDeg := 0
	for v, inc := range o.incidence() {
		if len(inc) > maxDeg {
			maxDeg = len(inc)
		}
		got := g.Incident(VertexID(v))
		if len(got) != len(inc) || (len(inc) > 0 && !reflect.DeepEqual(got, inc)) {
			t.Fatalf("%s: incidence of %d = %v, want %v", label, v, got, inc)
		}
		if g.Degree(VertexID(v)) != len(inc) {
			t.Fatalf("%s: degree of %d", label, v)
		}
	}
	if g.Rank() != rank || g.MaxDegree() != maxDeg {
		t.Fatalf("%s: rank/Δ = %d/%d, want %d/%d", label, g.Rank(), g.MaxDegree(), rank, maxDeg)
	}
	if fresh := MustNew(o.weights, o.edges); g.Hash() != fresh.Hash() {
		t.Fatalf("%s: hash diverges from a fresh build of the oracle", label)
	}
}

// TestCSRRoundTripsAgainstOracle drives randomized chained extensions and,
// after every step, verifies the CSR value against the slice-of-slices
// oracle through three independent round-trips: the live value, its Clone,
// and a JSON write/read cycle. All three must agree with the oracle on
// Edge/Incident contents and on Instance.Hash.
func TestCSRRoundTripsAgainstOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(90125))
	o := &oracle{weights: []int64{5, 2, 9, 4}, edges: [][]VertexID{{0, 1}, {2, 3}, {1, 2, 3}}}
	g := MustNew(o.weights, o.edges)
	requireMatchesOracle(t, "seed", g, o)
	for step := 0; step < 25; step++ {
		var addW []int64
		for i := 0; i < rng.Intn(3); i++ {
			addW = append(addW, 1+rng.Int63n(50))
		}
		n := len(o.weights) + len(addW)
		var addE [][]VertexID
		for i := 0; i < rng.Intn(4); i++ {
			k := 1 + rng.Intn(4)
			var e []VertexID
			for j := 0; j < k; j++ {
				e = append(e, VertexID(rng.Intn(n)))
			}
			addE = append(addE, e)
		}
		h, err := g.Extend(addW, addE)
		if err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
		o.extend(addW, addE)
		requireMatchesOracle(t, "extend", h, o)

		clone := h.Clone()
		requireMatchesOracle(t, "clone", clone, o)

		var buf bytes.Buffer
		if _, err := h.WriteTo(&buf); err != nil {
			t.Fatalf("step %d: write: %v", step, err)
		}
		decoded, err := ReadFrom(&buf)
		if err != nil {
			t.Fatalf("step %d: read: %v", step, err)
		}
		requireMatchesOracle(t, "io", decoded, o)

		g = h
	}
}

// TestCloneIsolatedFromExtension: a Clone must share no storage with its
// source — extending the source (which may claim and append into the
// source's backing arrays) must leave the clone bit-identical.
func TestCloneIsolatedFromExtension(t *testing.T) {
	o := &oracle{weights: []int64{3, 1, 4, 1}, edges: [][]VertexID{{0, 1}, {1, 2}, {2, 3}}}
	g := MustNew(o.weights, o.edges)
	clone := g.Clone()
	wantHash := clone.Hash()
	if _, err := g.Extend([]int64{9}, [][]VertexID{{0, 4}, {3, 4}}); err != nil {
		t.Fatal(err)
	}
	requireMatchesOracle(t, "clone-after-extend", clone, o)
	if clone.Hash() != wantHash {
		t.Fatal("clone hash changed after source extension")
	}
}

// TestViewsSurviveClaimedExtend is the aliasing regression test for the
// documented Edge/Incident contract: an Extend may claim the base graph's
// backing arrays and append in place, but it must only ever write beyond
// the base's lengths — so views taken from the base before the Extend keep
// their exact contents (they describe the pre-Extend graph; retaining them
// as descriptions of the extended graph is the caller bug the contract and
// EdgeCopy/IncidentCopy exist for).
func TestViewsSurviveClaimedExtend(t *testing.T) {
	g := MustNew([]int64{2, 3, 5, 7}, [][]VertexID{{0, 1}, {1, 2, 3}, {0, 3}})
	var edgeViews [][]VertexID
	var incViews [][]EdgeID
	var edgeWant [][]VertexID
	var incWant [][]EdgeID
	for e := 0; e < g.NumEdges(); e++ {
		edgeViews = append(edgeViews, g.Edge(EdgeID(e)))
		edgeWant = append(edgeWant, g.EdgeCopy(EdgeID(e)))
	}
	for v := 0; v < g.NumVertices(); v++ {
		incViews = append(incViews, g.Incident(VertexID(v)))
		incWant = append(incWant, g.IncidentCopy(VertexID(v)))
	}
	// First extension claims g's spare capacity (in-place append path);
	// the second goes through the copying path. Neither may disturb the
	// base views.
	if _, err := g.Extend([]int64{11}, [][]VertexID{{2, 4}, {0, 1, 4}}); err != nil {
		t.Fatal(err)
	}
	if _, err := g.Extend(nil, [][]VertexID{{1, 3}}); err != nil {
		t.Fatal(err)
	}
	for e := range edgeViews {
		if !reflect.DeepEqual(edgeViews[e], edgeWant[e]) {
			t.Fatalf("edge view %d corrupted by Extend: %v, want %v", e, edgeViews[e], edgeWant[e])
		}
	}
	for v := range incViews {
		if len(incViews[v]) != len(incWant[v]) {
			t.Fatalf("incidence view %d resized by Extend", v)
		}
		if len(incWant[v]) > 0 && !reflect.DeepEqual(incViews[v], incWant[v]) {
			t.Fatalf("incidence view %d corrupted by Extend: %v, want %v", v, incViews[v], incWant[v])
		}
	}
}

// TestMemoryBytesTracksGrowth: the byte estimate must be positive, grow
// under extension, and stay equal for equal instances (Clone).
func TestMemoryBytesTracksGrowth(t *testing.T) {
	g := MustNew([]int64{1, 2, 3}, [][]VertexID{{0, 1}, {1, 2}})
	base := g.MemoryBytes()
	if base <= 0 {
		t.Fatalf("MemoryBytes = %d, want > 0", base)
	}
	if got := g.Clone().MemoryBytes(); got != base {
		t.Fatalf("clone estimate %d != source %d", got, base)
	}
	h, err := g.Extend([]int64{4}, [][]VertexID{{0, 3}, {2, 3}})
	if err != nil {
		t.Fatal(err)
	}
	if h.MemoryBytes() <= base {
		t.Fatalf("extension did not grow the estimate: %d → %d", base, h.MemoryBytes())
	}
}
