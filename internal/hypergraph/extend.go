package hypergraph

import (
	"fmt"
	"sort"
	"sync/atomic"
)

// Extend returns a new hypergraph equal to g plus addWeights appended
// vertices and addEdges appended hyperedges (referencing old and new
// vertices alike). g is unchanged and remains fully usable — but any Edge
// or Incident views taken from g before the call must be treated as
// invalidated (see the aliasing contract on those methods).
//
// Extend is built for incremental sessions, where it runs on every delta
// batch. On the CSR layout its cost is O(n + I + |Δ|) where I is the total
// incidence size — three flat array appends plus one counting-sort rebuild
// of the incidence CSR — with no per-vertex or per-edge allocations:
//
//   - The weight and edge arrays grow with headroom, and the first Extend
//     from a graph claims the spare capacity behind them (atomically), so a
//     linear chain of extensions appends in place instead of copying the
//     whole prefix every time. Branching extensions from one base remain
//     correct — later claimants fall back to copying.
//   - The incidence CSR cannot grow per vertex in place (an insertion in
//     the middle of a flat array would shift everything behind it), but new
//     edges carry ids larger than every existing edge, so each vertex's new
//     incidences belong at the *end* of its segment. extendIncidence
//     exploits that: the old array is block-copied run-by-run between
//     delta-touched vertices (long memmoves, no per-edge scatter) and only
//     the |Δ| new entries are placed individually. The fresh arrays also
//     guarantee the new graph's incidence shares nothing with the base,
//     which keeps MemoryBytes honest per graph.
//   - The canonical edge order behind Hash is maintained by merging the
//     sorted new suffix into the base order — O(m) merge, no re-sort. The
//     merged order is always a fresh slice, never shared with the base.
func (g *Hypergraph) Extend(addWeights []int64, addEdges [][]VertexID) (*Hypergraph, error) {
	n := len(g.weights) + len(addWeights)
	m0 := g.NumEdges()
	for i, w := range addWeights {
		if w <= 0 {
			return nil, fmt.Errorf("%w: vertex %d has weight %d",
				ErrNonPositiveWeight, len(g.weights)+i, w)
		}
	}
	newEdges := make([][]VertexID, len(addEdges))
	addVerts := 0
	for i, e := range addEdges {
		vs := sortedUnique(e)
		if len(vs) == 0 {
			return nil, fmt.Errorf("%w: edge %d", ErrEmptyEdge, m0+i)
		}
		for _, v := range vs {
			if v < 0 || int(v) >= n {
				return nil, fmt.Errorf("%w: edge %d references vertex %d (n=%d)",
					ErrVertexRange, m0+i, v, n)
			}
		}
		newEdges[i] = vs
		addVerts += len(vs)
	}
	if m0+len(newEdges) > 0 && n == 0 {
		return nil, ErrNoVertices
	}

	h := &Hypergraph{}
	// Claim g's spare capacity if we are the first extension from it; the
	// in-place appends below only write beyond the base graph's lengths, so
	// every index the base can read stays untouched. Along a claim chain
	// every backing position beyond a graph's length is written by exactly
	// one descendant, so sharing stays sound.
	claimed := atomic.CompareAndSwapUint32(&g.extended, 0, 1)
	if claimed {
		h.weights = append(g.weights, addWeights...)
		h.edgeOff = g.edgeOff
		h.edgeVerts = g.edgeVerts
	} else {
		h.weights = append(growCopy(g.weights, len(addWeights)), addWeights...)
		h.edgeOff = growCopy(g.edgeOff, len(newEdges))
		h.edgeVerts = growCopy(g.edgeVerts, addVerts)
	}
	if len(h.edgeOff) == 0 {
		h.edgeOff = append(h.edgeOff, 0)
	}
	for _, vs := range newEdges {
		h.edgeVerts = append(h.edgeVerts, vs...)
		h.edgeOff = append(h.edgeOff, len(h.edgeVerts))
	}
	h.extendIncidence(g, newEdges)
	h.canon = mergeCanonicalOrder(h, g.canon, m0)
	return h, nil
}

// extendIncidence builds h's incidence CSR from the base graph's plus the
// validated new edges (already appended to h's edge CSR). New edge ids are
// larger than every base id and incidence lists are ascending, so a
// vertex's new entries extend the tail of its segment: old segments keep
// their internal layout and only shift by the growth of the touched
// vertices before them. The old array is therefore block-copied in runs
// between touched vertices — the per-edge counting-sort scatter of
// buildIncidence, the dominant cost of a small delta on a large instance,
// is paid only for the |Δ| new entries.
func (h *Hypergraph) extendIncidence(g *Hypergraph, newEdges [][]VertexID) {
	n := len(h.weights)
	n0 := len(g.weights) // touched vertices may include ids ≥ n0 (new vertices)
	m0 := g.NumEdges()
	h.rank = g.rank
	add := make([]int, n) // new incidences per vertex
	addVol := 0
	for _, vs := range newEdges {
		if len(vs) > h.rank {
			h.rank = len(vs)
		}
		addVol += len(vs)
		for _, v := range vs {
			add[v]++
		}
	}
	h.incOff = make([]int, n+1)
	h.maxDegree = g.maxDegree
	touched := make([]VertexID, 0, min(addVol, n)) // one alloc: ≤ one entry per new incidence
	for v := 0; v < n; v++ {
		d := add[v]
		if v < n0 {
			d += g.incOff[v+1] - g.incOff[v]
		}
		h.incOff[v+1] = h.incOff[v] + d
		if d > h.maxDegree {
			h.maxDegree = d
		}
		if add[v] > 0 {
			touched = append(touched, VertexID(v))
		}
	}
	h.incEdges = make([]EdgeID, h.incOff[n])
	// Copy the old array in runs: everything up to and including a touched
	// vertex's old segment lies contiguously in both arrays, offset by the
	// growth of the touched vertices already passed.
	src, dst := 0, 0
	for _, v := range touched {
		end := src
		if int(v) < n0 {
			end = g.incOff[v+1]
		} else if n0 > 0 {
			end = g.incOff[n0]
		}
		copy(h.incEdges[dst:], g.incEdges[src:end])
		dst += end - src + add[v] // skip the slots the scatter below fills
		src = end
	}
	if n0 > 0 {
		copy(h.incEdges[dst:], g.incEdges[src:g.incOff[n0]])
	}
	// Scatter the new entries, reusing add as the per-vertex write cursor:
	// ascending edge order keeps each tail ascending.
	for _, tv := range touched {
		add[tv] = h.incOff[tv+1] - add[tv]
	}
	for i, vs := range newEdges {
		e := EdgeID(m0 + i)
		for _, v := range vs {
			h.incEdges[add[v]] = e
			add[v]++
		}
	}
}

// growCopy copies s into a fresh slice with headroom for extra plus 25%,
// so a chain of copying extensions stays amortized linear.
func growCopy[T any](s []T, extra int) []T {
	out := make([]T, len(s), len(s)+extra+len(s)/4)
	copy(out, s)
	return out
}

// mergeCanonicalOrder computes the canonical (lexicographic) edge order of
// the extended graph h by merging the base order of edges [0, m0) — cached
// if a prior Extend left one, sorted once otherwise — with the sorted order
// of the new suffix [m0, m). Each new edge's insertion point is found by
// binary search and the runs between them are block-copied, so the merge
// costs O(k·(log k + log m)) comparisons plus one O(m) memmove — the
// comparator never walks the whole old order. The result is always a fresh
// slice: sharing the base's order across the extension tree would make the
// graphs' byte accounting (MemoryBytes) overlap.
func mergeCanonicalOrder(h *Hypergraph, oldOrder []int, m0 int) []int {
	if oldOrder == nil {
		oldOrder = h.canonicalEdgeOrder(0, m0)
	}
	newOrder := h.canonicalEdgeOrder(m0, h.NumEdges())
	if len(newOrder) == 0 {
		return append([]int(nil), oldOrder...)
	}
	merged := make([]int, 0, h.NumEdges())
	prev := 0
	for _, ne := range newOrder {
		e := h.Edge(EdgeID(ne))
		// First old position the new edge sorts strictly before; ties keep
		// old edges first (equal edges hash identically either way), and
		// newOrder being sorted keeps the positions non-decreasing.
		pos := prev + sort.Search(len(oldOrder)-prev, func(i int) bool {
			return edgeLexLess(e, h.Edge(EdgeID(oldOrder[prev+i])))
		})
		merged = append(merged, oldOrder[prev:pos]...)
		merged = append(merged, ne)
		prev = pos
	}
	merged = append(merged, oldOrder[prev:]...)
	return merged
}

// edgeLexLess is the canonical edge comparator: lexicographic on the sorted
// vertex lists, shorter prefixes first. Must match canonicalEdgeOrder.
func edgeLexLess(a, b []VertexID) bool {
	for k := 0; k < len(a) && k < len(b); k++ {
		if a[k] != b[k] {
			return a[k] < b[k]
		}
	}
	return len(a) < len(b)
}
