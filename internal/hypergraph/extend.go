package hypergraph

import (
	"fmt"
	"sort"
	"sync/atomic"
)

// Extend returns a new hypergraph equal to g plus addWeights appended
// vertices and addEdges appended hyperedges (referencing old and new
// vertices alike). g is unchanged and remains fully usable.
//
// Extend is built for incremental sessions, where it runs on every delta
// batch, so its cost is amortized O(n + |Δ| + Σ deg(touched)) rather than a
// full O(n + m) rebuild:
//
//   - The weight and edge arrays grow with headroom, and the first Extend
//     from a graph claims the spare capacity behind them (atomically), so a
//     linear chain of extensions appends in place instead of copying the
//     whole prefix every time. Branching extensions from one base remain
//     correct — later claimants fall back to copying.
//   - Incidence lists are updated only for the vertices the new edges
//     touch; untouched vertices keep sharing the base graph's storage.
//   - The canonical edge order behind Hash is maintained by merging the
//     sorted new suffix into the base order — O(m) merge, no re-sort.
func (g *Hypergraph) Extend(addWeights []int64, addEdges [][]VertexID) (*Hypergraph, error) {
	n := len(g.weights) + len(addWeights)
	m0 := len(g.edges)
	for i, w := range addWeights {
		if w <= 0 {
			return nil, fmt.Errorf("%w: vertex %d has weight %d",
				ErrNonPositiveWeight, len(g.weights)+i, w)
		}
	}
	newEdges := make([][]VertexID, len(addEdges))
	for i, e := range addEdges {
		vs := sortedUnique(e)
		if len(vs) == 0 {
			return nil, fmt.Errorf("%w: edge %d", ErrEmptyEdge, m0+i)
		}
		for _, v := range vs {
			if v < 0 || int(v) >= n {
				return nil, fmt.Errorf("%w: edge %d references vertex %d (n=%d)",
					ErrVertexRange, m0+i, v, n)
			}
		}
		newEdges[i] = vs
	}
	if m0+len(newEdges) > 0 && n == 0 {
		return nil, ErrNoVertices
	}

	h := &Hypergraph{rank: g.rank, maxDegree: g.maxDegree}
	// Claim g's spare capacity if we are the first extension from it; the
	// in-place appends below never touch indices the base graph can read.
	// Along a claim chain every backing position beyond a graph's length is
	// written by exactly one descendant, so sharing stays sound.
	claimed := atomic.CompareAndSwapUint32(&g.extended, 0, 1)
	if claimed {
		h.weights = append(g.weights, addWeights...)
		h.edges = append(g.edges, newEdges...)
	} else {
		h.weights = append(growCopy(g.weights, len(addWeights)), addWeights...)
		h.edges = append(growCopy(g.edges, len(newEdges)), newEdges...)
	}

	// Incidence: copy the headers, then rebuild only the touched vertices.
	// A touched old vertex's list is always copied out of the base storage
	// on first touch: its backing may be aliased by arbitrarily many
	// branches (untouched vertices share headers across the whole extension
	// tree), so unlike weights/edges the per-graph claim cannot authorize
	// appending into spare capacity. New vertices own their lists outright.
	h.incidence = make([][]EdgeID, n)
	copy(h.incidence, g.incidence)
	for i, vs := range newEdges {
		if len(vs) > h.rank {
			h.rank = len(vs)
		}
		id := EdgeID(m0 + i)
		for _, v := range vs {
			if int(v) < len(g.incidence) && len(h.incidence[v]) == len(g.incidence[v]) {
				h.incidence[v] = growCopy(g.incidence[v], 1)
			}
			h.incidence[v] = append(h.incidence[v], id)
			if len(h.incidence[v]) > h.maxDegree {
				h.maxDegree = len(h.incidence[v])
			}
		}
	}

	h.canon = mergeCanonicalOrder(h.edges, g.canon, m0)
	return h, nil
}

// growCopy copies s into a fresh slice with headroom for extra plus 25%,
// so a chain of copying extensions stays amortized linear.
func growCopy[T any](s []T, extra int) []T {
	out := make([]T, len(s), len(s)+extra+len(s)/4)
	copy(out, s)
	return out
}

// mergeCanonicalOrder computes the canonical (lexicographic) edge order of
// the extended edge list by merging the base order of edges[:m0] — cached
// if a prior Extend left one, sorted once otherwise — with the sorted order
// of the new suffix edges[m0:]. Each new edge's insertion point is found by
// binary search and the runs between them are block-copied, so the merge
// costs O(k·(log k + log m)) comparisons plus one O(m) memmove — the
// comparator never walks the whole old order.
func mergeCanonicalOrder(edges [][]VertexID, oldOrder []int, m0 int) []int {
	if oldOrder == nil {
		oldOrder = canonicalEdgeOrder(edges[:m0])
	}
	newOrder := canonicalEdgeOrder(edges[m0:])
	if len(newOrder) == 0 {
		return oldOrder // shared read-only with the base graph
	}
	for i := range newOrder {
		newOrder[i] += m0
	}
	merged := make([]int, 0, len(edges))
	prev := 0
	for _, ne := range newOrder {
		e := edges[ne]
		// First old position the new edge sorts strictly before; ties keep
		// old edges first (equal edges hash identically either way), and
		// newOrder being sorted keeps the positions non-decreasing.
		pos := prev + sort.Search(len(oldOrder)-prev, func(i int) bool {
			return edgeLexLess(e, edges[oldOrder[prev+i]])
		})
		merged = append(merged, oldOrder[prev:pos]...)
		merged = append(merged, ne)
		prev = pos
	}
	merged = append(merged, oldOrder[prev:]...)
	return merged
}

// edgeLexLess is the canonical edge comparator: lexicographic on the sorted
// vertex lists, shorter prefixes first. Must match canonicalEdgeOrder.
func edgeLexLess(a, b []VertexID) bool {
	for k := 0; k < len(a) && k < len(b); k++ {
		if a[k] != b[k] {
			return a[k] < b[k]
		}
	}
	return len(a) < len(b)
}
