package hypergraph

import (
	"errors"
	"math/rand"
	"reflect"
	"testing"
)

func TestExtendBasics(t *testing.T) {
	g := MustNew([]int64{3, 1, 4}, [][]VertexID{{0, 1}, {1, 2}})
	h, err := g.Extend([]int64{7}, [][]VertexID{{2, 3}, {0, 3, 1}})
	if err != nil {
		t.Fatal(err)
	}
	if h.NumVertices() != 4 || h.NumEdges() != 4 {
		t.Fatalf("got n=%d m=%d", h.NumVertices(), h.NumEdges())
	}
	if h.Weight(3) != 7 {
		t.Fatalf("new vertex weight %d", h.Weight(3))
	}
	if h.Rank() != 3 {
		t.Fatalf("rank %d, want 3", h.Rank())
	}
	if got := h.Incident(3); len(got) != 2 {
		t.Fatalf("incidence of new vertex: %v", got)
	}
	if err := Validate(h); err != nil {
		t.Fatalf("extended graph invalid: %v", err)
	}
	// The base graph must be untouched.
	if g.NumVertices() != 3 || g.NumEdges() != 2 || g.Rank() != 2 {
		t.Fatalf("base mutated: %v", g)
	}
}

func TestExtendValidation(t *testing.T) {
	g := MustNew([]int64{1, 1}, [][]VertexID{{0, 1}})
	if _, err := g.Extend([]int64{0}, nil); !errors.Is(err, ErrNonPositiveWeight) {
		t.Fatalf("zero weight: %v", err)
	}
	if _, err := g.Extend(nil, [][]VertexID{{}}); !errors.Is(err, ErrEmptyEdge) {
		t.Fatalf("empty edge: %v", err)
	}
	if _, err := g.Extend(nil, [][]VertexID{{0, 2}}); !errors.Is(err, ErrVertexRange) {
		t.Fatalf("out of range: %v", err)
	}
	// New edges may reference vertices added in the same extension.
	if _, err := g.Extend([]int64{5}, [][]VertexID{{0, 2}}); err != nil {
		t.Fatalf("edge to new vertex: %v", err)
	}
}

// TestExtendHashMatchesRebuild is the re-canonicalization property: the
// incrementally maintained canonical order must produce exactly the hash a
// from-scratch build of the same instance produces, across chained
// extensions and regardless of edge insertion order.
func TestExtendHashMatchesRebuild(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	weights := []int64{5, 2, 9, 4}
	edges := [][]VertexID{{0, 1}, {2, 3}, {1, 2, 3}}
	g := MustNew(weights, edges)
	for step := 0; step < 20; step++ {
		var addW []int64
		for i := 0; i < rng.Intn(3); i++ {
			addW = append(addW, 1+rng.Int63n(50))
		}
		n := len(weights) + len(addW)
		var addE [][]VertexID
		for i := 0; i < 1+rng.Intn(4); i++ {
			k := 1 + rng.Intn(3)
			var e []VertexID
			for j := 0; j < k; j++ {
				e = append(e, VertexID(rng.Intn(n)))
			}
			addE = append(addE, e)
		}
		h, err := g.Extend(addW, addE)
		if err != nil {
			t.Fatal(err)
		}
		weights = append(weights, addW...)
		for _, e := range addE {
			edges = append(edges, sortedUnique(e))
		}
		fresh := MustNew(weights, edges)
		if h.Hash() != fresh.Hash() {
			t.Fatalf("step %d: incremental hash %s != rebuild hash %s", step, h.Hash(), fresh.Hash())
		}
		// Shuffled edge insertion order must not change the hash either.
		perm := rng.Perm(len(edges))
		shuffled := make([][]VertexID, len(edges))
		for i, p := range perm {
			shuffled[i] = edges[p]
		}
		if MustNew(weights, shuffled).Hash() != h.Hash() {
			t.Fatalf("step %d: hash depends on edge order", step)
		}
		g = h
	}
}

func TestExtendStructureMatchesRebuild(t *testing.T) {
	g := MustNew([]int64{2, 3, 5}, [][]VertexID{{0, 1}, {1, 2}})
	h, err := g.Extend([]int64{8, 1}, [][]VertexID{{3, 4}, {0, 4}, {2, 3}})
	if err != nil {
		t.Fatal(err)
	}
	fresh := MustNew(
		[]int64{2, 3, 5, 8, 1},
		[][]VertexID{{0, 1}, {1, 2}, {3, 4}, {0, 4}, {2, 3}},
	)
	if h.MaxDegree() != fresh.MaxDegree() || h.Rank() != fresh.Rank() {
		t.Fatalf("stats diverge: %v vs %v", h, fresh)
	}
	for v := 0; v < fresh.NumVertices(); v++ {
		if !reflect.DeepEqual(h.Incident(VertexID(v)), fresh.Incident(VertexID(v))) {
			t.Fatalf("incidence of %d: %v vs %v", v, h.Incident(VertexID(v)), fresh.Incident(VertexID(v)))
		}
	}
}

// TestExtendBranching: two extensions from one base must not corrupt each
// other or the base — only the first claims the in-place fast path, and
// touched incidence lists must be copied out of shared storage.
func TestExtendBranching(t *testing.T) {
	base := MustNew([]int64{2, 3, 5, 7}, [][]VertexID{{0, 1}, {2, 3}})
	// Chain once so base's backing has spare capacity to fight over.
	g, err := base.Extend(nil, [][]VertexID{{1, 2}})
	if err != nil {
		t.Fatal(err)
	}
	a, err := g.Extend([]int64{11}, [][]VertexID{{0, 4}, {1, 3}})
	if err != nil {
		t.Fatal(err)
	}
	b, err := g.Extend([]int64{13}, [][]VertexID{{2, 4}, {0, 3}})
	if err != nil {
		t.Fatal(err)
	}
	wantA := MustNew([]int64{2, 3, 5, 7, 11},
		[][]VertexID{{0, 1}, {2, 3}, {1, 2}, {0, 4}, {1, 3}})
	wantB := MustNew([]int64{2, 3, 5, 7, 13},
		[][]VertexID{{0, 1}, {2, 3}, {1, 2}, {2, 4}, {0, 3}})
	for _, tc := range []struct{ got, want *Hypergraph }{{a, wantA}, {b, wantB}} {
		if tc.got.Hash() != tc.want.Hash() {
			t.Fatalf("branched extension diverges:\n got %v\nwant %v", tc.got, tc.want)
		}
		for v := 0; v < tc.want.NumVertices(); v++ {
			if !reflect.DeepEqual(tc.got.Incident(VertexID(v)), tc.want.Incident(VertexID(v))) {
				t.Fatalf("incidence of %d: %v vs %v", v, tc.got.Incident(VertexID(v)), tc.want.Incident(VertexID(v)))
			}
		}
	}
	if g.NumVertices() != 4 || g.NumEdges() != 3 || g.Weight(3) != 7 {
		t.Fatalf("base mutated by branching: %v", g)
	}
	if err := Validate(a); err != nil {
		t.Fatal(err)
	}
	if err := Validate(b); err != nil {
		t.Fatal(err)
	}
}

// TestExtendDeepBranching reproduces the aliasing hazard of branches that
// diverge *below* the claim point: g1 grows v's incidence list (leaving
// spare capacity), two children g2/g3 both inherit the header untouched,
// and each child's own claimed extension then touches v. Without the
// unconditional copy-on-first-touch both would append into the same
// backing slot.
func TestExtendDeepBranching(t *testing.T) {
	g0 := MustNew([]int64{1, 1, 1}, [][]VertexID{{0, 1}})
	g1, err := g0.Extend(nil, [][]VertexID{{0, 2}}) // touches 0: list gains spare capacity
	if err != nil {
		t.Fatal(err)
	}
	g2, err := g1.Extend(nil, [][]VertexID{{1, 2}}) // claims g1, does not touch 0
	if err != nil {
		t.Fatal(err)
	}
	g3, err := g1.Extend(nil, [][]VertexID{{1, 2}}) // unclaimed, does not touch 0
	if err != nil {
		t.Fatal(err)
	}
	g4, err := g2.Extend(nil, [][]VertexID{{0, 1}}) // claims g2, touches 0
	if err != nil {
		t.Fatal(err)
	}
	g5, err := g3.Extend(nil, [][]VertexID{{0, 2}}) // claims g3, touches 0
	if err != nil {
		t.Fatal(err)
	}
	if got, want := g4.Incident(0), []EdgeID{0, 1, 3}; !reflect.DeepEqual(got, want) {
		t.Fatalf("g4 incidence of 0: %v, want %v", got, want)
	}
	if got, want := g5.Incident(0), []EdgeID{0, 1, 3}; !reflect.DeepEqual(got, want) {
		t.Fatalf("g5 incidence of 0: %v, want %v", got, want)
	}
	for name, g := range map[string]*Hypergraph{"g2": g2, "g3": g3, "g4": g4, "g5": g5} {
		if err := Validate(g); err != nil {
			t.Fatalf("%s invalid: %v", name, err)
		}
	}
}

func TestExtendNoEdges(t *testing.T) {
	g := MustNew([]int64{1}, [][]VertexID{{0}})
	h, err := g.Extend(nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if h.Hash() != g.Hash() {
		t.Fatal("no-op extension changed the hash")
	}
}
