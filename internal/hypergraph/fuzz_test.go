package hypergraph

import (
	"bytes"
	"encoding/json"
	"testing"
)

// FuzzJSONDecode throws arbitrary bytes at the instance decoder: it must
// never panic, and anything it accepts must validate and round-trip.
func FuzzJSONDecode(f *testing.F) {
	f.Add([]byte(`{"weights":[1,2],"edges":[[0,1]]}`))
	f.Add([]byte(`{"weights":[],"edges":[]}`))
	f.Add([]byte(`{"weights":[5],"edges":[[0],[0]]}`))
	f.Add([]byte(`{`))
	f.Add([]byte(`{"weights":[0],"edges":[[9]]}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		var g Hypergraph
		if err := json.Unmarshal(data, &g); err != nil {
			return // rejected; fine
		}
		if err := Validate(&g); err != nil {
			t.Fatalf("accepted instance fails Validate: %v", err)
		}
		out, err := json.Marshal(&g)
		if err != nil {
			t.Fatalf("accepted instance fails Marshal: %v", err)
		}
		var g2 Hypergraph
		if err := json.Unmarshal(out, &g2); err != nil {
			t.Fatalf("re-encoded instance rejected: %v", err)
		}
		out2, err := json.Marshal(&g2)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(out, out2) {
			t.Fatal("round trip not stable")
		}
	})
}
