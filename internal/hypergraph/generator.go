package hypergraph

import (
	"fmt"
	"math/rand"
)

// WeightDist selects how generator vertex weights are drawn.
type WeightDist int

// Weight distributions.
const (
	// WeightUniformOne gives every vertex weight 1 (unweighted instance).
	WeightUniformOne WeightDist = iota + 1
	// WeightUniformRange draws weights uniformly from [1, MaxWeight].
	WeightUniformRange
	// WeightExponential draws weights as 2^U with U uniform in
	// [0, log2 MaxWeight], producing a heavy weight spread.
	WeightExponential
)

// GenConfig parameterizes the random-instance generators. The zero value is
// not valid; use the generator helpers or fill every relevant field.
type GenConfig struct {
	// Seed makes generation deterministic.
	Seed int64
	// MaxWeight bounds vertex weights for weighted distributions (≥ 1).
	MaxWeight int64
	// Dist selects the weight distribution (default WeightUniformOne).
	Dist WeightDist
}

func (c GenConfig) rng() *rand.Rand { return rand.New(rand.NewSource(c.Seed)) }

func (c GenConfig) drawWeight(rng *rand.Rand) int64 {
	maxW := c.MaxWeight
	if maxW < 1 {
		maxW = 1
	}
	switch c.Dist {
	case WeightUniformRange:
		return 1 + rng.Int63n(maxW)
	case WeightExponential:
		w := int64(1)
		for w*2 <= maxW && rng.Intn(2) == 0 {
			w *= 2
		}
		return w
	default:
		return 1
	}
}

// UniformRandom generates a hypergraph with n vertices and m edges where
// every edge is a uniformly random f-subset of the vertices. Requires
// 1 ≤ f ≤ n and m ≥ 0.
func UniformRandom(n, m, f int, cfg GenConfig) (*Hypergraph, error) {
	if n <= 0 || f <= 0 || f > n || m < 0 {
		return nil, fmt.Errorf("hypergraph: invalid UniformRandom params n=%d m=%d f=%d", n, m, f)
	}
	rng := cfg.rng()
	b := NewBuilder(n, m)
	for i := 0; i < n; i++ {
		b.AddVertex(cfg.drawWeight(rng))
	}
	pick := make([]VertexID, 0, f)
	seen := make(map[VertexID]bool, f)
	for e := 0; e < m; e++ {
		pick = pick[:0]
		for k := range seen {
			delete(seen, k)
		}
		for len(pick) < f {
			v := VertexID(rng.Intn(n))
			if !seen[v] {
				seen[v] = true
				pick = append(pick, v)
			}
		}
		b.AddEdge(pick...)
	}
	return b.Build()
}

// RegularLike generates a hypergraph with n vertices where every edge has
// exactly f vertices and every vertex has degree close to d: it creates
// m = n*d/f edges by sampling from a pool in which each vertex appears d
// times, yielding max degree ≤ d + O(1) deviations only from deduplication.
func RegularLike(n, d, f int, cfg GenConfig) (*Hypergraph, error) {
	if n <= 0 || d <= 0 || f <= 0 || f > n {
		return nil, fmt.Errorf("hypergraph: invalid RegularLike params n=%d d=%d f=%d", n, d, f)
	}
	rng := cfg.rng()
	b := NewBuilder(n, n*d/f)
	for i := 0; i < n; i++ {
		b.AddVertex(cfg.drawWeight(rng))
	}
	// Pool of vertex slots: each vertex d times. A pass scans the shuffled
	// pool and greedily packs consecutive distinct vertices into edges of
	// size f; slots colliding with the edge under construction are carried
	// into the next pass. Each vertex contributes d slots, so every vertex
	// ends with degree ≤ d. The number of passes is small in practice
	// (collisions only arise among repeated vertices), and each pass is a
	// single O(|pool|) sweep, so generation is near-linear in n·d.
	pool := make([]VertexID, 0, n*d)
	for v := 0; v < n; v++ {
		for j := 0; j < d; j++ {
			pool = append(pool, VertexID(v))
		}
	}
	edge := make([]VertexID, 0, f)
	used := make(map[VertexID]bool, f)
	for len(pool) >= f {
		rng.Shuffle(len(pool), func(i, j int) { pool[i], pool[j] = pool[j], pool[i] })
		carry := pool[:0]
		edge = edge[:0]
		emitted := 0
		for _, v := range pool {
			if used[v] {
				carry = append(carry, v)
				continue
			}
			used[v] = true
			edge = append(edge, v)
			if len(edge) == f {
				b.AddEdge(edge...)
				emitted++
				edge = edge[:0]
				for k := range used {
					delete(used, k)
				}
			}
		}
		// Slots of the incomplete trailing edge return to the pool.
		carry = append(carry, edge...)
		edge = edge[:0]
		for k := range used {
			delete(used, k)
		}
		if emitted == 0 {
			break // only duplicates of < f distinct vertices remain
		}
		pool = carry
	}
	return b.Build()
}

// RandomGraph generates an ordinary graph (f = 2) with n vertices where each
// of the m edges joins two distinct uniformly random vertices.
func RandomGraph(n, m int, cfg GenConfig) (*Hypergraph, error) {
	return UniformRandom(n, m, 2, cfg)
}

// Star generates a star: one center vertex contained in every one of the
// delta edges, each edge also containing f-1 private leaf vertices. The
// center has weight centerWeight and leaves weight 1. Stars maximize Δ and
// are the canonical hard instance for degree-dependent round bounds.
func Star(delta, f int, centerWeight int64) (*Hypergraph, error) {
	if delta <= 0 || f < 1 || centerWeight <= 0 {
		return nil, fmt.Errorf("hypergraph: invalid Star params delta=%d f=%d w=%d", delta, f, centerWeight)
	}
	b := NewBuilder(1+delta*(f-1), delta)
	center := b.AddVertex(centerWeight)
	for e := 0; e < delta; e++ {
		edge := make([]VertexID, 0, f)
		edge = append(edge, center)
		for j := 0; j < f-1; j++ {
			edge = append(edge, b.AddVertex(1))
		}
		b.AddEdge(edge...)
	}
	return b.Build()
}

// Path generates a path v0-v1-...-v_{n-1} (f = 2) with the given weights
// (len(weights) = n ≥ 2). Paths with weight gradients are the dependency
// chains on which greedy-tightening baselines serialize.
func Path(weights []int64) (*Hypergraph, error) {
	if len(weights) < 2 {
		return nil, fmt.Errorf("hypergraph: Path needs ≥ 2 vertices, got %d", len(weights))
	}
	b := NewBuilder(len(weights), len(weights)-1)
	for _, w := range weights {
		b.AddVertex(w)
	}
	for i := 0; i+1 < len(weights); i++ {
		b.AddEdge(VertexID(i), VertexID(i+1))
	}
	return b.Build()
}

// GeometricPath generates a path whose weights grow geometrically:
// w(v_i) = base·ratio^i (capped at maxW). The weight gradient forces
// weight-scale-sensitive algorithms to climb the full range.
func GeometricPath(n int, base int64, ratio float64, maxW int64) (*Hypergraph, error) {
	if n < 2 || base < 1 || ratio < 1 || maxW < base {
		return nil, fmt.Errorf("hypergraph: invalid GeometricPath params n=%d base=%d ratio=%g", n, base, ratio)
	}
	weights := make([]int64, n)
	w := float64(base)
	for i := range weights {
		weights[i] = int64(w)
		if weights[i] > maxW {
			weights[i] = maxW
		}
		if weights[i] < 1 {
			weights[i] = 1
		}
		w *= ratio
	}
	return Path(weights)
}

// PowerLaw generates an f-uniform hypergraph with a heavy-tailed degree
// profile by preferential attachment: each of the m edges picks its
// vertices proportionally to (current degree + 1). A few hub vertices end
// with degree far above the median, so the local maximum degrees Δ(e)
// spread over orders of magnitude — the regime where the per-edge α(e)
// policy differs from the global one.
//
// Sampling uses the slot method: a pool holds one slot per vertex (the +1
// smoothing) plus one slot per incidence created so far, so a uniform draw
// from the pool is a draw proportional to deg+1 in O(1). Generation is
// O((n + m·f) · E[redraws]) and comfortably reaches millions of edges — the
// scale the sharded engine benchmarks need.
func PowerLaw(n, m, f int, cfg GenConfig) (*Hypergraph, error) {
	if n <= 0 || f <= 0 || f > n || m < 0 {
		return nil, fmt.Errorf("hypergraph: invalid PowerLaw params n=%d m=%d f=%d", n, m, f)
	}
	rng := cfg.rng()
	b := NewBuilder(n, m)
	for i := 0; i < n; i++ {
		b.AddVertex(cfg.drawWeight(rng))
	}
	slots := make([]VertexID, n, n+m*f)
	for v := 0; v < n; v++ {
		slots[v] = VertexID(v)
	}
	edge := make([]VertexID, 0, f)
	used := make(map[VertexID]bool, f)
	for e := 0; e < m; e++ {
		edge = edge[:0]
		clear(used)
		for len(edge) < f {
			v := slots[rng.Intn(len(slots))]
			if used[v] {
				continue // redraw; cheap unless f approaches the hub count
			}
			used[v] = true
			edge = append(edge, v)
		}
		b.AddEdge(edge...)
		slots = append(slots, edge...)
	}
	return b.Build()
}

// Lollipop generates the hard instance family for the bid-raising
// mechanism (f = 2): two heavy vertices a, b of weight heavyWeight joined
// by one edge, plus delta-1 unit-weight leaves attached to a. The leaf
// edges are covered within a couple of iterations by the cheap leaves,
// after which the surviving edge {a, b} must raise its dual from the
// iteration-0 value heavyWeight/(2Δ) up to the weight scale — a factor-Δ
// climb that takes Θ(log_α Δ) raise iterations, exhibiting the Theorem 8
// trade-off that stars (covered in O(1) rounds by their center) cannot.
// Requires delta ≥ 2 and heavyWeight > delta (so a's normalized weight
// exceeds the leaves').
func Lollipop(delta int, heavyWeight int64) (*Hypergraph, error) {
	if delta < 2 || heavyWeight <= int64(delta) {
		return nil, fmt.Errorf("hypergraph: invalid Lollipop params delta=%d w=%d", delta, heavyWeight)
	}
	b := NewBuilder(delta+1, delta)
	a := b.AddVertex(heavyWeight)
	bb := b.AddVertex(heavyWeight)
	b.AddEdge(a, bb)
	for i := 0; i < delta-1; i++ {
		leaf := b.AddVertex(1)
		b.AddEdge(a, leaf)
	}
	return b.Build()
}

// CompleteGraph generates K_n with unit weights (f = 2, Δ = n-1).
func CompleteGraph(n int) (*Hypergraph, error) {
	if n < 2 {
		return nil, fmt.Errorf("hypergraph: CompleteGraph needs n ≥ 2, got %d", n)
	}
	b := NewBuilder(n, n*(n-1)/2)
	for i := 0; i < n; i++ {
		b.AddVertex(1)
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			b.AddEdge(VertexID(i), VertexID(j))
		}
	}
	return b.Build()
}

// PlantedCover generates an instance with a known small cover: k "hub"
// vertices of weight hubWeight and n-k "spoke" vertices of weight
// spokeWeight; every edge contains exactly one random hub and f-1 random
// spokes. The hub set is always a cover of weight k*hubWeight, which upper
// bounds OPT and makes approximation ratios easy to audit.
func PlantedCover(n, m, f, k int, hubWeight, spokeWeight int64, cfg GenConfig) (*Hypergraph, []VertexID, error) {
	if k <= 0 || k >= n || f < 1 || f > n-k+1 || m < 0 {
		return nil, nil, fmt.Errorf("hypergraph: invalid PlantedCover params n=%d m=%d f=%d k=%d", n, m, f, k)
	}
	rng := cfg.rng()
	b := NewBuilder(n, m)
	hubs := make([]VertexID, 0, k)
	for i := 0; i < k; i++ {
		hubs = append(hubs, b.AddVertex(hubWeight))
	}
	for i := k; i < n; i++ {
		b.AddVertex(spokeWeight)
	}
	nSpokes := n - k
	for e := 0; e < m; e++ {
		edge := make([]VertexID, 0, f)
		edge = append(edge, hubs[rng.Intn(k)])
		seen := make(map[VertexID]bool, f)
		for len(edge) < f {
			v := VertexID(k + rng.Intn(nSpokes))
			if !seen[v] {
				seen[v] = true
				edge = append(edge, v)
			}
		}
		b.AddEdge(edge...)
	}
	g, err := b.Build()
	if err != nil {
		return nil, nil, err
	}
	return g, hubs, nil
}

// SetCoverInstance builds the MWHVC hypergraph equivalent of a weighted set
// cover instance: subsets become vertices (weight = set cost) and elements
// become hyperedges over the subsets containing them (Section 2 reduction).
// sets[i] lists the element ids covered by subset i; elements are numbered
// 0..numElements-1 and every element must appear in ≥ 1 set.
func SetCoverInstance(numElements int, sets [][]int, costs []int64) (*Hypergraph, error) {
	if len(sets) != len(costs) {
		return nil, fmt.Errorf("hypergraph: %d sets but %d costs", len(sets), len(costs))
	}
	b := NewBuilder(len(sets), numElements)
	for _, c := range costs {
		b.AddVertex(c)
	}
	byElement := make([][]VertexID, numElements)
	for si, elems := range sets {
		for _, x := range elems {
			if x < 0 || x >= numElements {
				return nil, fmt.Errorf("hypergraph: element %d out of range [0,%d)", x, numElements)
			}
			byElement[x] = append(byElement[x], VertexID(si))
		}
	}
	for x, vs := range byElement {
		if len(vs) == 0 {
			return nil, fmt.Errorf("%w: element %d not covered by any set", ErrEmptyEdge, x)
		}
		b.AddEdge(vs...)
	}
	return b.Build()
}
