package hypergraph

import (
	"sort"
	"testing"
)

func TestPath(t *testing.T) {
	g, err := Path([]int64{1, 2, 3, 4})
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 3 || g.Rank() != 2 || g.MaxDegree() != 2 {
		t.Errorf("path shape wrong: %s", g)
	}
	if g.Degree(0) != 1 || g.Degree(3) != 1 {
		t.Error("endpoints should have degree 1")
	}
	if _, err := Path([]int64{1}); err == nil {
		t.Error("single-vertex path accepted")
	}
}

func TestGeometricPath(t *testing.T) {
	g, err := GeometricPath(10, 1, 2, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	// Weights double along the path.
	for i := 0; i+1 < 10; i++ {
		if g.Weight(VertexID(i+1)) != 2*g.Weight(VertexID(i)) {
			t.Fatalf("weights not geometric at %d: %d then %d",
				i, g.Weight(VertexID(i)), g.Weight(VertexID(i+1)))
		}
	}
	// Cap applies.
	capped, err := GeometricPath(40, 1, 2, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if capped.MaxWeight() != 1000 {
		t.Errorf("cap not applied: max = %d", capped.MaxWeight())
	}
	if _, err := GeometricPath(2, 1, 0.5, 10); err == nil {
		t.Error("shrinking ratio accepted")
	}
}

func TestLollipop(t *testing.T) {
	g, err := Lollipop(16, 1<<14)
	if err != nil {
		t.Fatal(err)
	}
	if g.MaxDegree() != 16 {
		t.Errorf("Δ = %d, want 16", g.MaxDegree())
	}
	if g.NumEdges() != 16 || g.NumVertices() != 17 {
		t.Errorf("shape = (%d,%d), want (17,16)", g.NumVertices(), g.NumEdges())
	}
	// Vertex 0 (a) covers everything.
	if !g.IsCover([]VertexID{0}) {
		t.Error("hub does not cover the lollipop")
	}
	if _, err := Lollipop(1, 100); err == nil {
		t.Error("delta=1 accepted")
	}
	if _, err := Lollipop(16, 3); err == nil {
		t.Error("heavyWeight ≤ delta accepted")
	}
}

func TestPowerLawHeavyTail(t *testing.T) {
	g, err := PowerLaw(400, 1200, 3, GenConfig{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if err := Validate(g); err != nil {
		t.Fatal(err)
	}
	degrees := make([]int, g.NumVertices())
	for v := range degrees {
		degrees[v] = g.Degree(VertexID(v))
	}
	sort.Sort(sort.Reverse(sort.IntSlice(degrees)))
	// Heavy tail: the top vertex should dominate the median by a large
	// factor (preferential attachment concentrates degree).
	median := degrees[len(degrees)/2]
	if median < 1 {
		median = 1
	}
	if degrees[0] < 4*median {
		t.Errorf("degree profile not heavy-tailed: max %d vs median %d", degrees[0], median)
	}
	if _, err := PowerLaw(0, 1, 1, GenConfig{}); err == nil {
		t.Error("invalid params accepted")
	}
}
