package hypergraph

import (
	"testing"
	"testing/quick"
)

func TestUniformRandomShape(t *testing.T) {
	tests := []struct {
		name    string
		n, m, f int
	}{
		{"graph", 50, 120, 2},
		{"rank3", 40, 80, 3},
		{"rank7", 30, 60, 7},
		{"single vertex edges", 10, 5, 1},
		{"f equals n", 5, 3, 5},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			g, err := UniformRandom(tt.n, tt.m, tt.f, GenConfig{Seed: 1})
			if err != nil {
				t.Fatalf("UniformRandom: %v", err)
			}
			if g.NumVertices() != tt.n {
				t.Errorf("n = %d, want %d", g.NumVertices(), tt.n)
			}
			if g.NumEdges() != tt.m {
				t.Errorf("m = %d, want %d", g.NumEdges(), tt.m)
			}
			for e := 0; e < g.NumEdges(); e++ {
				if g.EdgeSize(EdgeID(e)) != tt.f {
					t.Fatalf("edge %d size %d, want %d", e, g.EdgeSize(EdgeID(e)), tt.f)
				}
			}
			if err := Validate(g); err != nil {
				t.Errorf("Validate: %v", err)
			}
		})
	}
}

func TestUniformRandomInvalidParams(t *testing.T) {
	tests := []struct{ n, m, f int }{
		{0, 1, 1}, {5, 1, 0}, {5, 1, 6}, {5, -1, 2},
	}
	for _, tt := range tests {
		if _, err := UniformRandom(tt.n, tt.m, tt.f, GenConfig{}); err == nil {
			t.Errorf("UniformRandom(%d,%d,%d) succeeded, want error", tt.n, tt.m, tt.f)
		}
	}
}

func TestUniformRandomDeterministic(t *testing.T) {
	a, err := UniformRandom(30, 50, 3, GenConfig{Seed: 42, Dist: WeightUniformRange, MaxWeight: 100})
	if err != nil {
		t.Fatal(err)
	}
	b, err := UniformRandom(30, 50, 3, GenConfig{Seed: 42, Dist: WeightUniformRange, MaxWeight: 100})
	if err != nil {
		t.Fatal(err)
	}
	aj, _ := a.MarshalJSON()
	bj, _ := b.MarshalJSON()
	if string(aj) != string(bj) {
		t.Error("same seed produced different hypergraphs")
	}
	c, err := UniformRandom(30, 50, 3, GenConfig{Seed: 43, Dist: WeightUniformRange, MaxWeight: 100})
	if err != nil {
		t.Fatal(err)
	}
	cj, _ := c.MarshalJSON()
	if string(aj) == string(cj) {
		t.Error("different seeds produced identical hypergraphs (suspicious)")
	}
}

func TestRegularLikeDegreeBound(t *testing.T) {
	g, err := RegularLike(60, 6, 3, GenConfig{Seed: 7})
	if err != nil {
		t.Fatalf("RegularLike: %v", err)
	}
	for v := 0; v < g.NumVertices(); v++ {
		if d := g.Degree(VertexID(v)); d > 6 {
			t.Errorf("vertex %d degree %d exceeds d=6", v, d)
		}
	}
	if g.NumEdges() == 0 {
		t.Error("RegularLike produced no edges")
	}
	for e := 0; e < g.NumEdges(); e++ {
		if g.EdgeSize(EdgeID(e)) != 3 {
			t.Errorf("edge %d size %d, want 3", e, g.EdgeSize(EdgeID(e)))
		}
	}
}

func TestStar(t *testing.T) {
	g, err := Star(8, 3, 5)
	if err != nil {
		t.Fatalf("Star: %v", err)
	}
	if g.MaxDegree() != 8 {
		t.Errorf("Δ = %d, want 8", g.MaxDegree())
	}
	if g.Rank() != 3 {
		t.Errorf("f = %d, want 3", g.Rank())
	}
	if g.Degree(0) != 8 {
		t.Errorf("center degree = %d, want 8", g.Degree(0))
	}
	if !g.IsCover([]VertexID{0}) {
		t.Error("center alone should cover a star")
	}
	if g.Weight(0) != 5 {
		t.Errorf("center weight = %d, want 5", g.Weight(0))
	}
}

func TestCompleteGraph(t *testing.T) {
	g, err := CompleteGraph(6)
	if err != nil {
		t.Fatalf("CompleteGraph: %v", err)
	}
	if g.NumEdges() != 15 {
		t.Errorf("m = %d, want 15", g.NumEdges())
	}
	if g.MaxDegree() != 5 {
		t.Errorf("Δ = %d, want 5", g.MaxDegree())
	}
	// Any n-1 vertices cover K_n; any fewer do not.
	cover := []VertexID{0, 1, 2, 3, 4}
	if !g.IsCover(cover) {
		t.Error("n-1 vertices should cover K_n")
	}
	if g.IsCover(cover[:4]) {
		t.Error("n-2 vertices cannot cover K_n")
	}
}

func TestPlantedCover(t *testing.T) {
	g, hubs, err := PlantedCover(100, 300, 3, 5, 10, 1, GenConfig{Seed: 3})
	if err != nil {
		t.Fatalf("PlantedCover: %v", err)
	}
	if len(hubs) != 5 {
		t.Fatalf("hubs = %d, want 5", len(hubs))
	}
	if !g.IsCover(hubs) {
		t.Error("planted hub set is not a cover")
	}
	if w := g.CoverWeight(hubs); w != 50 {
		t.Errorf("hub cover weight = %d, want 50", w)
	}
}

func TestSetCoverInstance(t *testing.T) {
	// Elements {0,1,2}; sets: {0,1} cost 3, {1,2} cost 4, {2} cost 1.
	g, err := SetCoverInstance(3, [][]int{{0, 1}, {1, 2}, {2}}, []int64{3, 4, 1})
	if err != nil {
		t.Fatalf("SetCoverInstance: %v", err)
	}
	if g.NumVertices() != 3 || g.NumEdges() != 3 {
		t.Fatalf("shape = (%d,%d), want (3,3)", g.NumVertices(), g.NumEdges())
	}
	// Element 1 is covered by sets 0 and 1, so edge 1 = {0,1}.
	e := g.Edge(1)
	if len(e) != 2 || e[0] != 0 || e[1] != 1 {
		t.Errorf("edge for element 1 = %v, want [0 1]", e)
	}
	// Frequency of element = edge size; max frequency = rank.
	if g.Rank() != 2 {
		t.Errorf("rank = %d, want 2 (max element frequency)", g.Rank())
	}
	if !g.IsCover([]VertexID{0, 2}) {
		t.Error("sets {0,2} should cover all elements")
	}
}

func TestSetCoverInstanceErrors(t *testing.T) {
	if _, err := SetCoverInstance(2, [][]int{{0}}, []int64{1}); err == nil {
		t.Error("uncovered element accepted")
	}
	if _, err := SetCoverInstance(1, [][]int{{0}, {0}}, []int64{1}); err == nil {
		t.Error("sets/costs length mismatch accepted")
	}
	if _, err := SetCoverInstance(1, [][]int{{5}}, []int64{1}); err == nil {
		t.Error("out-of-range element accepted")
	}
}

func TestWeightDistributions(t *testing.T) {
	tests := []struct {
		name string
		dist WeightDist
		maxW int64
	}{
		{"unit", WeightUniformOne, 1},
		{"uniform", WeightUniformRange, 1000},
		{"exponential", WeightExponential, 1 << 20},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			g, err := UniformRandom(200, 100, 2, GenConfig{Seed: 9, Dist: tt.dist, MaxWeight: tt.maxW})
			if err != nil {
				t.Fatal(err)
			}
			if g.MinWeight() < 1 {
				t.Errorf("min weight %d < 1", g.MinWeight())
			}
			if g.MaxWeight() > tt.maxW {
				t.Errorf("max weight %d > %d", g.MaxWeight(), tt.maxW)
			}
		})
	}
}

// Property: every generated hypergraph passes Validate and its stats are
// internally consistent.
func TestGeneratedInstancesAlwaysValid(t *testing.T) {
	prop := func(seed int64, nRaw, mRaw, fRaw uint8) bool {
		n := int(nRaw%40) + 2
		f := int(fRaw%5) + 1
		if f > n {
			f = n
		}
		m := int(mRaw % 60)
		g, err := UniformRandom(n, m, f, GenConfig{Seed: seed, Dist: WeightUniformRange, MaxWeight: 50})
		if err != nil {
			return false
		}
		if Validate(g) != nil {
			return false
		}
		s := ComputeStats(g)
		if m > 0 && (s.Rank > f || s.MaxDegree > m) {
			return false
		}
		// Sum of degrees equals sum of edge sizes.
		sumDeg, sumSize := 0, 0
		for v := 0; v < g.NumVertices(); v++ {
			sumDeg += g.Degree(VertexID(v))
		}
		for e := 0; e < g.NumEdges(); e++ {
			sumSize += g.EdgeSize(EdgeID(e))
		}
		return sumDeg == sumSize
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
