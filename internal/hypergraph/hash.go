package hypergraph

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"sort"
)

// hashDomain versions the canonical encoding; bump it if the encoding
// below ever changes so stale cache keys cannot collide across versions.
const hashDomain = "distcover/hypergraph/v1\n"

// Hash returns a canonical content hash of the hypergraph: a hex-encoded
// SHA-256 over a normalized binary encoding of the weights and edges.
//
// The encoding is canonical in the sense that it identifies the instance
// as a mathematical object, not a byte layout: vertices within an edge are
// sorted (the Builder already stores them sorted and deduplicated) and the
// edge list itself is hashed in lexicographic order, so two instances that
// list the same edges in different orders hash identically. Any cover and
// dual certificate valid for one is valid for the other, which makes the
// hash a sound cache key for solver results.
func (g *Hypergraph) Hash() string {
	h := sha256.New()
	h.Write([]byte(hashDomain))
	var buf [binary.MaxVarintLen64]byte
	put := func(x uint64) {
		n := binary.PutUvarint(buf[:], x)
		h.Write(buf[:n])
	}
	put(uint64(len(g.weights)))
	for _, w := range g.weights {
		put(uint64(w))
	}
	order := g.canon // maintained incrementally by Extend
	if order == nil {
		order = g.canonicalEdgeOrder(0, g.NumEdges())
	}
	put(uint64(g.NumEdges()))
	for _, e := range order {
		vs := g.Edge(EdgeID(e))
		put(uint64(len(vs)))
		for _, v := range vs {
			put(uint64(v))
		}
	}
	return hex.EncodeToString(h.Sum(nil))
}

// canonicalEdgeOrder returns the edge ids start..end-1 sorted
// lexicographically by their (already sorted) vertex lists, with shorter
// prefixes first.
func (g *Hypergraph) canonicalEdgeOrder(start, end int) []int {
	order := make([]int, end-start)
	for i := range order {
		order[i] = start + i
	}
	sort.Slice(order, func(i, j int) bool {
		return edgeLexLess(g.Edge(EdgeID(order[i])), g.Edge(EdgeID(order[j])))
	})
	return order
}
