package hypergraph

import (
	"bytes"
	"testing"
)

func mustBuild(t *testing.T, weights []int64, edges [][]VertexID) *Hypergraph {
	t.Helper()
	b := NewBuilder(len(weights), len(edges))
	for _, w := range weights {
		b.AddVertex(w)
	}
	for _, e := range edges {
		b.AddEdge(e...)
	}
	g, err := b.Build()
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	return g
}

func TestHashDeterministic(t *testing.T) {
	g := mustBuild(t, []int64{3, 1, 4}, [][]VertexID{{0, 1}, {1, 2}, {0, 2}})
	h1, h2 := g.Hash(), g.Hash()
	if h1 != h2 {
		t.Fatalf("hash not deterministic: %s vs %s", h1, h2)
	}
	if len(h1) != 64 {
		t.Fatalf("expected 64 hex chars, got %d (%s)", len(h1), h1)
	}
}

func TestHashRoundTripStable(t *testing.T) {
	g, err := UniformRandom(40, 80, 3, GenConfig{Seed: 7, MaxWeight: 50, Dist: WeightUniformRange})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := g.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadFrom(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g.Hash() != g2.Hash() {
		t.Fatalf("hash changed across JSON round trip: %s vs %s", g.Hash(), g2.Hash())
	}
}

func TestHashCanonicalization(t *testing.T) {
	base := mustBuild(t, []int64{5, 2, 8}, [][]VertexID{{0, 1}, {1, 2}})
	// Vertices permuted within an edge: Builder sorts, so hashes agree.
	permutedVerts := mustBuild(t, []int64{5, 2, 8}, [][]VertexID{{1, 0}, {2, 1}})
	if base.Hash() != permutedVerts.Hash() {
		t.Errorf("within-edge permutation changed the hash")
	}
	// Edges listed in a different order: canonical edge order makes them equal.
	permutedEdges := mustBuild(t, []int64{5, 2, 8}, [][]VertexID{{1, 2}, {0, 1}})
	if base.Hash() != permutedEdges.Hash() {
		t.Errorf("edge-order permutation changed the hash")
	}
}

func TestHashDistinguishesInstances(t *testing.T) {
	a := mustBuild(t, []int64{1, 1, 1}, [][]VertexID{{0, 1}})
	seen := map[string]string{a.Hash(): "base"}
	cases := map[string]*Hypergraph{
		"different weight": mustBuild(t, []int64{1, 2, 1}, [][]VertexID{{0, 1}}),
		"different edge":   mustBuild(t, []int64{1, 1, 1}, [][]VertexID{{0, 2}}),
		"extra edge":       mustBuild(t, []int64{1, 1, 1}, [][]VertexID{{0, 1}, {1, 2}}),
		"extra vertex":     mustBuild(t, []int64{1, 1, 1, 1}, [][]VertexID{{0, 1}}),
	}
	for name, g := range cases {
		h := g.Hash()
		if prev, ok := seen[h]; ok {
			t.Errorf("%s collides with %s", name, prev)
		}
		seen[h] = name
	}
}

// TestHashEmptyAndEdgeless covers degenerate shapes.
func TestHashEmptyAndEdgeless(t *testing.T) {
	edgeless := mustBuild(t, []int64{1, 2}, nil)
	if edgeless.Hash() == "" {
		t.Fatal("empty hash for edgeless graph")
	}
	other := mustBuild(t, []int64{2, 1}, nil)
	if edgeless.Hash() == other.Hash() {
		t.Fatal("weight order should matter (vertex ids are positional)")
	}
}
