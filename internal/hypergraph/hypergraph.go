// Package hypergraph provides the weighted-hypergraph substrate used by the
// distributed covering algorithms: immutable hypergraph values, incidence
// lookups, instance statistics (rank f, maximum degree Δ, weight spread W),
// vertex-cover predicates, generators for synthetic workloads, and JSON
// serialization.
//
// A hypergraph G = (V, E) has positive integer vertex weights w(v). Each
// hyperedge is a non-empty set of distinct vertices. The rank f of G is the
// maximum edge cardinality, and the degree of a vertex is the number of
// incident edges; Δ is the maximum degree. These are exactly the quantities
// the round bounds in Ben-Basat et al., "Optimal Distributed Covering
// Algorithms" (PODC 2019), are stated in.
package hypergraph

import (
	"fmt"
	"sort"
)

// VertexID identifies a vertex. Vertices are numbered 0..NumVertices-1.
type VertexID int

// EdgeID identifies a hyperedge. Edges are numbered 0..NumEdges-1.
type EdgeID int

// Hypergraph is an immutable weighted hypergraph. Construct one with a
// Builder or a generator; the zero value is an empty hypergraph.
type Hypergraph struct {
	weights   []int64      // weights[v] > 0
	edges     [][]VertexID // edges[e] = sorted distinct vertex ids
	incidence [][]EdgeID   // incidence[v] = sorted edge ids containing v
	rank      int          // max |edges[e]|, 0 if no edges
	maxDegree int          // max |incidence[v]|, 0 if no edges
	canon     []int        // cached canonical edge order (see Hash); nil until Extend computes it
	// extended guards the spare capacity behind weights/edges: the first
	// Extend from this graph claims it with a CAS and may append in place
	// (the base graph only ever reads indices below its lengths); later
	// Extends from the same base copy. Accessed atomically.
	extended uint32
}

// NumVertices returns |V|.
func (g *Hypergraph) NumVertices() int { return len(g.weights) }

// NumEdges returns |E|.
func (g *Hypergraph) NumEdges() int { return len(g.edges) }

// Weight returns w(v).
func (g *Hypergraph) Weight(v VertexID) int64 { return g.weights[v] }

// Weights returns a copy of the weight vector.
func (g *Hypergraph) Weights() []int64 {
	out := make([]int64, len(g.weights))
	copy(out, g.weights)
	return out
}

// Edge returns the vertices of edge e. The returned slice must not be
// modified; it is shared with the hypergraph to avoid copying on hot paths.
func (g *Hypergraph) Edge(e EdgeID) []VertexID { return g.edges[e] }

// EdgeCopy returns a fresh copy of the vertices of edge e.
func (g *Hypergraph) EdgeCopy(e EdgeID) []VertexID {
	out := make([]VertexID, len(g.edges[e]))
	copy(out, g.edges[e])
	return out
}

// Incident returns the edges containing v. The returned slice must not be
// modified; it is shared with the hypergraph.
func (g *Hypergraph) Incident(v VertexID) []EdgeID { return g.incidence[v] }

// Degree returns |E(v)|, the number of edges containing v.
func (g *Hypergraph) Degree(v VertexID) int { return len(g.incidence[v]) }

// EdgeSize returns |e|.
func (g *Hypergraph) EdgeSize(e EdgeID) int { return len(g.edges[e]) }

// Rank returns f, the maximum edge cardinality (0 for an edgeless graph).
func (g *Hypergraph) Rank() int { return g.rank }

// MaxDegree returns Δ, the maximum vertex degree (0 for an edgeless graph).
func (g *Hypergraph) MaxDegree() int { return g.maxDegree }

// LocalMaxDegree returns Δ(e) = max over v in e of |E(v)|, the local maximum
// degree used when the multiplier α is chosen per edge (Theorem 9 remark).
func (g *Hypergraph) LocalMaxDegree(e EdgeID) int {
	d := 0
	for _, v := range g.edges[e] {
		if len(g.incidence[v]) > d {
			d = len(g.incidence[v])
		}
	}
	return d
}

// MinWeight returns min_v w(v), or 0 if there are no vertices.
func (g *Hypergraph) MinWeight() int64 {
	if len(g.weights) == 0 {
		return 0
	}
	m := g.weights[0]
	for _, w := range g.weights[1:] {
		if w < m {
			m = w
		}
	}
	return m
}

// MaxWeight returns max_v w(v), or 0 if there are no vertices.
func (g *Hypergraph) MaxWeight() int64 {
	m := int64(0)
	for _, w := range g.weights {
		if w > m {
			m = w
		}
	}
	return m
}

// WeightSpread returns W = max w / min w rounded up, the quantity prior
// algorithms' round bounds depend on. Returns 1 for empty graphs.
func (g *Hypergraph) WeightSpread() int64 {
	minW, maxW := g.MinWeight(), g.MaxWeight()
	if minW <= 0 {
		return 1
	}
	return (maxW + minW - 1) / minW
}

// TotalWeight returns Σ_v w(v).
func (g *Hypergraph) TotalWeight() int64 {
	var t int64
	for _, w := range g.weights {
		t += w
	}
	return t
}

// CoverWeight returns Σ_{v in cover} w(v). Vertices outside [0, n) are
// ignored; duplicates are counted once.
func (g *Hypergraph) CoverWeight(cover []VertexID) int64 {
	seen := make(map[VertexID]bool, len(cover))
	var t int64
	for _, v := range cover {
		if v < 0 || int(v) >= len(g.weights) || seen[v] {
			continue
		}
		seen[v] = true
		t += g.weights[v]
	}
	return t
}

// IsCover reports whether the given vertex set stabs every edge.
func (g *Hypergraph) IsCover(cover []VertexID) bool {
	in := make([]bool, len(g.weights))
	for _, v := range cover {
		if v >= 0 && int(v) < len(in) {
			in[v] = true
		}
	}
	for _, e := range g.edges {
		stabbed := false
		for _, v := range e {
			if in[v] {
				stabbed = true
				break
			}
		}
		if !stabbed {
			return false
		}
	}
	return true
}

// UncoveredEdges returns the edges not stabbed by the given vertex set.
func (g *Hypergraph) UncoveredEdges(cover []VertexID) []EdgeID {
	in := make([]bool, len(g.weights))
	for _, v := range cover {
		if v >= 0 && int(v) < len(in) {
			in[v] = true
		}
	}
	var out []EdgeID
	for e, vs := range g.edges {
		stabbed := false
		for _, v := range vs {
			if in[v] {
				stabbed = true
				break
			}
		}
		if !stabbed {
			out = append(out, EdgeID(e))
		}
	}
	return out
}

// Clone returns a deep copy of g.
func (g *Hypergraph) Clone() *Hypergraph {
	h := &Hypergraph{
		weights:   make([]int64, len(g.weights)),
		edges:     make([][]VertexID, len(g.edges)),
		incidence: make([][]EdgeID, len(g.incidence)),
		rank:      g.rank,
		maxDegree: g.maxDegree,
	}
	copy(h.weights, g.weights)
	for i, e := range g.edges {
		h.edges[i] = append([]VertexID(nil), e...)
	}
	for i, inc := range g.incidence {
		h.incidence[i] = append([]EdgeID(nil), inc...)
	}
	h.canon = append([]int(nil), g.canon...)
	return h
}

// String returns a short human-readable summary.
func (g *Hypergraph) String() string {
	return fmt.Sprintf("hypergraph{n=%d m=%d f=%d Δ=%d W=%d}",
		g.NumVertices(), g.NumEdges(), g.Rank(), g.MaxDegree(), g.WeightSpread())
}

// buildIncidence computes incidence lists, rank and max degree from edges.
// It assumes edges hold sorted, distinct, in-range vertex ids. All lists
// are carved out of one shared arena (two allocations total, full-capacity
// slices so an accidental append copies instead of corrupting a neighbor) —
// at incremental-session scale the rebuild after every delta batch would
// otherwise allocate one slice per vertex.
func (g *Hypergraph) buildIncidence() {
	n := len(g.weights)
	g.incidence = make([][]EdgeID, n)
	g.rank = 0
	totalInc := 0
	for _, vs := range g.edges {
		if len(vs) > g.rank {
			g.rank = len(vs)
		}
		totalInc += len(vs)
	}
	counts := make([]int, n)
	for _, vs := range g.edges {
		for _, v := range vs {
			counts[v]++
		}
	}
	arena := make([]EdgeID, totalInc)
	g.maxDegree = 0
	off := 0
	for v := 0; v < n; v++ {
		g.incidence[v] = arena[off : off : off+counts[v]]
		off += counts[v]
		if counts[v] > g.maxDegree {
			g.maxDegree = counts[v]
		}
	}
	for e, vs := range g.edges {
		for _, v := range vs {
			g.incidence[v] = append(g.incidence[v], EdgeID(e))
		}
	}
}

// sortedUnique returns a sorted copy of vs with duplicates removed.
func sortedUnique(vs []VertexID) []VertexID {
	out := append([]VertexID(nil), vs...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	k := 0
	for i, v := range out {
		if i == 0 || v != out[k-1] {
			out[k] = v
			k++
		}
	}
	return out[:k]
}
