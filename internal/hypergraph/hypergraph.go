// Package hypergraph provides the weighted-hypergraph substrate used by the
// distributed covering algorithms: immutable hypergraph values, incidence
// lookups, instance statistics (rank f, maximum degree Δ, weight spread W),
// vertex-cover predicates, generators for synthetic workloads, and JSON
// serialization.
//
// A hypergraph G = (V, E) has positive integer vertex weights w(v). Each
// hyperedge is a non-empty set of distinct vertices. The rank f of G is the
// maximum edge cardinality, and the degree of a vertex is the number of
// incident edges; Δ is the maximum degree. These are exactly the quantities
// the round bounds in Ben-Basat et al., "Optimal Distributed Covering
// Algorithms" (PODC 2019), are stated in.
//
// # Storage layout
//
// Hypergraphs are stored in CSR (compressed sparse row) form: one flat
// vertex array per direction plus an offset array, instead of a slice of
// slices. Edge e's vertices are edgeVerts[edgeOff[e]:edgeOff[e+1]] and
// vertex v's incident edges are incEdges[incOff[v]:incOff[v+1]]. The flat
// layout is what lets the solvers stream over all incidences with
// sequential memory access — the per-edge/per-vertex phases of the
// algorithm are linear passes over these arrays — and makes the memory
// footprint of an instance a closed-form function of the array lengths
// (see MemoryBytes).
package hypergraph

import (
	"fmt"
	"sort"
)

// VertexID identifies a vertex. Vertices are numbered 0..NumVertices-1.
type VertexID int

// EdgeID identifies a hyperedge. Edges are numbered 0..NumEdges-1.
type EdgeID int

// Hypergraph is an immutable weighted hypergraph in CSR layout. Construct
// one with a Builder or a generator; the zero value is an empty hypergraph.
type Hypergraph struct {
	weights []int64 // weights[v] > 0

	// Edge CSR: edge e covers edgeVerts[edgeOff[e]:edgeOff[e+1]], sorted
	// distinct vertex ids. len(edgeOff) == NumEdges()+1 (nil when empty).
	edgeOff   []int
	edgeVerts []VertexID

	// Incidence CSR: vertex v is in edges incEdges[incOff[v]:incOff[v+1]],
	// ascending edge ids. len(incOff) == NumVertices()+1 (nil when empty).
	incOff   []int
	incEdges []EdgeID

	rank      int   // max |edges[e]|, 0 if no edges
	maxDegree int   // max |incidence[v]|, 0 if no edges
	canon     []int // cached canonical edge order (see Hash); nil until Extend computes it
	// extended guards the spare capacity behind weights/edgeOff/edgeVerts:
	// the first Extend from this graph claims it with a CAS and may append
	// in place (the base graph only ever reads indices below its lengths);
	// later Extends from the same base copy. Accessed atomically.
	extended uint32
}

// NumVertices returns |V|.
func (g *Hypergraph) NumVertices() int { return len(g.weights) }

// NumEdges returns |E|.
func (g *Hypergraph) NumEdges() int {
	if len(g.edgeOff) == 0 {
		return 0
	}
	return len(g.edgeOff) - 1
}

// Weight returns w(v).
func (g *Hypergraph) Weight(v VertexID) int64 { return g.weights[v] }

// Weights returns a copy of the weight vector.
func (g *Hypergraph) Weights() []int64 {
	out := make([]int64, len(g.weights))
	copy(out, g.weights)
	return out
}

// Edge returns the vertices of edge e as a view into the graph's shared CSR
// arena. The returned slice must not be modified, and it is invalidated by
// Extend: an extension may claim the arena and append into the same backing
// array, so a view retained across an Extend aliases storage that now
// belongs to the extended graph. Use the view immediately, or copy it with
// EdgeCopy if it must outlive the next Extend.
func (g *Hypergraph) Edge(e EdgeID) []VertexID {
	a, b := g.edgeOff[e], g.edgeOff[e+1]
	return g.edgeVerts[a:b:b]
}

// EdgeCopy returns a fresh copy of the vertices of edge e; safe to retain.
func (g *Hypergraph) EdgeCopy(e EdgeID) []VertexID {
	return append([]VertexID(nil), g.Edge(e)...)
}

// Incident returns the edges containing v as a view into the graph's shared
// CSR arena, ascending. The same aliasing contract as Edge applies: the
// view must not be modified and is invalidated by Extend — copy with
// IncidentCopy to retain it across one.
func (g *Hypergraph) Incident(v VertexID) []EdgeID {
	a, b := g.incOff[v], g.incOff[v+1]
	return g.incEdges[a:b:b]
}

// IncidentCopy returns a fresh copy of the edges containing v; safe to
// retain.
func (g *Hypergraph) IncidentCopy(v VertexID) []EdgeID {
	return append([]EdgeID(nil), g.Incident(v)...)
}

// Degree returns |E(v)|, the number of edges containing v.
func (g *Hypergraph) Degree(v VertexID) int { return g.incOff[v+1] - g.incOff[v] }

// EdgeOffsets returns the edge CSR offset array as a read-only view: edge
// e's vertices occupy positions [off[e], off[e+1]) of the edge-vertex
// array, so off is also the cumulative edge volume the flat runner
// volume-balances its chunks with. len(off) == NumEdges()+1, or 0 for the
// zero-value graph. The Edge aliasing contract applies: do not modify, do
// not retain across an Extend.
func (g *Hypergraph) EdgeOffsets() []int {
	return g.edgeOff[:len(g.edgeOff):len(g.edgeOff)]
}

// IncidenceOffsets returns the incidence CSR offset array as a read-only
// view: vertex v's incident edges occupy positions [off[v], off[v+1]) of
// the incidence array. len(off) == NumVertices()+1, or 0 for the
// zero-value graph. The Incident aliasing contract applies: do not modify,
// do not retain across an Extend.
func (g *Hypergraph) IncidenceOffsets() []int {
	return g.incOff[:len(g.incOff):len(g.incOff)]
}

// EdgeSize returns |e|.
func (g *Hypergraph) EdgeSize(e EdgeID) int { return g.edgeOff[e+1] - g.edgeOff[e] }

// Rank returns f, the maximum edge cardinality (0 for an edgeless graph).
func (g *Hypergraph) Rank() int { return g.rank }

// MaxDegree returns Δ, the maximum vertex degree (0 for an edgeless graph).
func (g *Hypergraph) MaxDegree() int { return g.maxDegree }

// LocalMaxDegree returns Δ(e) = max over v in e of |E(v)|, the local maximum
// degree used when the multiplier α is chosen per edge (Theorem 9 remark).
func (g *Hypergraph) LocalMaxDegree(e EdgeID) int {
	d := 0
	for _, v := range g.Edge(e) {
		if dv := g.Degree(v); dv > d {
			d = dv
		}
	}
	return d
}

// MemoryBytes estimates the heap footprint of the instance from its CSR
// array lengths (8 bytes per id, offset and weight). It deliberately counts
// lengths, not capacities: along a claimed extension chain spare capacity is
// shared between graphs, and charging it to every graph would double-count.
// The coverd session registry uses this estimate for byte-budgeted
// eviction.
func (g *Hypergraph) MemoryBytes() int64 {
	words := len(g.weights) + len(g.edgeOff) + len(g.edgeVerts) +
		len(g.incOff) + len(g.incEdges) + len(g.canon)
	return int64(8 * words)
}

// MinWeight returns min_v w(v), or 0 if there are no vertices.
func (g *Hypergraph) MinWeight() int64 {
	if len(g.weights) == 0 {
		return 0
	}
	m := g.weights[0]
	for _, w := range g.weights[1:] {
		if w < m {
			m = w
		}
	}
	return m
}

// MaxWeight returns max_v w(v), or 0 if there are no vertices.
func (g *Hypergraph) MaxWeight() int64 {
	m := int64(0)
	for _, w := range g.weights {
		if w > m {
			m = w
		}
	}
	return m
}

// WeightSpread returns W = max w / min w rounded up, the quantity prior
// algorithms' round bounds depend on. Returns 1 for empty graphs.
func (g *Hypergraph) WeightSpread() int64 {
	minW, maxW := g.MinWeight(), g.MaxWeight()
	if minW <= 0 {
		return 1
	}
	return (maxW + minW - 1) / minW
}

// TotalWeight returns Σ_v w(v).
func (g *Hypergraph) TotalWeight() int64 {
	var t int64
	for _, w := range g.weights {
		t += w
	}
	return t
}

// CoverWeight returns Σ_{v in cover} w(v). Vertices outside [0, n) are
// ignored; duplicates are counted once.
func (g *Hypergraph) CoverWeight(cover []VertexID) int64 {
	seen := make(map[VertexID]bool, len(cover))
	var t int64
	for _, v := range cover {
		if v < 0 || int(v) >= len(g.weights) || seen[v] {
			continue
		}
		seen[v] = true
		t += g.weights[v]
	}
	return t
}

// IsCover reports whether the given vertex set stabs every edge.
func (g *Hypergraph) IsCover(cover []VertexID) bool {
	in := make([]bool, len(g.weights))
	for _, v := range cover {
		if v >= 0 && int(v) < len(in) {
			in[v] = true
		}
	}
	for e, m := 0, g.NumEdges(); e < m; e++ {
		stabbed := false
		for _, v := range g.edgeVerts[g.edgeOff[e]:g.edgeOff[e+1]] {
			if in[v] {
				stabbed = true
				break
			}
		}
		if !stabbed {
			return false
		}
	}
	return true
}

// UncoveredEdges returns the edges not stabbed by the given vertex set.
func (g *Hypergraph) UncoveredEdges(cover []VertexID) []EdgeID {
	in := make([]bool, len(g.weights))
	for _, v := range cover {
		if v >= 0 && int(v) < len(in) {
			in[v] = true
		}
	}
	var out []EdgeID
	for e, m := 0, g.NumEdges(); e < m; e++ {
		stabbed := false
		for _, v := range g.edgeVerts[g.edgeOff[e]:g.edgeOff[e+1]] {
			if in[v] {
				stabbed = true
				break
			}
		}
		if !stabbed {
			out = append(out, EdgeID(e))
		}
	}
	return out
}

// Clone returns a deep copy of g. The copy shares no storage with g, so it
// is unaffected by later extensions of g (and vice versa).
func (g *Hypergraph) Clone() *Hypergraph {
	h := &Hypergraph{
		weights:   append([]int64(nil), g.weights...),
		edgeOff:   append([]int(nil), g.edgeOff...),
		edgeVerts: append([]VertexID(nil), g.edgeVerts...),
		incOff:    append([]int(nil), g.incOff...),
		incEdges:  append([]EdgeID(nil), g.incEdges...),
		rank:      g.rank,
		maxDegree: g.maxDegree,
		canon:     append([]int(nil), g.canon...),
	}
	return h
}

// String returns a short human-readable summary.
func (g *Hypergraph) String() string {
	return fmt.Sprintf("hypergraph{n=%d m=%d f=%d Δ=%d W=%d}",
		g.NumVertices(), g.NumEdges(), g.Rank(), g.MaxDegree(), g.WeightSpread())
}

// setEdgesFromRows fills the edge CSR from validated rows (sorted, distinct,
// in-range vertex ids).
func (g *Hypergraph) setEdgesFromRows(rows [][]VertexID) {
	total := 0
	for _, vs := range rows {
		total += len(vs)
	}
	g.edgeOff = make([]int, len(rows)+1)
	g.edgeVerts = make([]VertexID, 0, total)
	for i, vs := range rows {
		g.edgeVerts = append(g.edgeVerts, vs...)
		g.edgeOff[i+1] = len(g.edgeVerts)
	}
}

// buildIncidence computes the incidence CSR, rank and max degree from the
// edge CSR with one counting pass: a prefix-sum over per-vertex degrees
// carves incEdges, then a walk over the edges in ascending id order fills
// each vertex's range — already sorted, no per-vertex allocation.
func (g *Hypergraph) buildIncidence() {
	n := len(g.weights)
	m := g.NumEdges()
	g.rank = 0
	for e := 0; e < m; e++ {
		if sz := g.edgeOff[e+1] - g.edgeOff[e]; sz > g.rank {
			g.rank = sz
		}
	}
	counts := make([]int, n)
	for _, v := range g.edgeVerts {
		counts[v]++
	}
	g.incOff = make([]int, n+1)
	g.maxDegree = 0
	for v := 0; v < n; v++ {
		g.incOff[v+1] = g.incOff[v] + counts[v]
		if counts[v] > g.maxDegree {
			g.maxDegree = counts[v]
		}
	}
	g.incEdges = make([]EdgeID, len(g.edgeVerts))
	copy(counts, g.incOff[:n]) // counts now holds the write cursor per vertex
	for e := 0; e < m; e++ {
		for _, v := range g.edgeVerts[g.edgeOff[e]:g.edgeOff[e+1]] {
			g.incEdges[counts[v]] = EdgeID(e)
			counts[v]++
		}
	}
}

// sortedUnique returns a sorted copy of vs with duplicates removed.
func sortedUnique(vs []VertexID) []VertexID {
	out := append([]VertexID(nil), vs...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	k := 0
	for i, v := range out {
		if i == 0 || v != out[k-1] {
			out[k] = v
			k++
		}
	}
	return out[:k]
}
