package hypergraph

import (
	"errors"
	"testing"
)

// triangle returns K_3 with weights 1,2,3.
func triangle(t *testing.T) *Hypergraph {
	t.Helper()
	g, err := New([]int64{1, 2, 3}, [][]VertexID{{0, 1}, {1, 2}, {0, 2}})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return g
}

func TestBasicAccessors(t *testing.T) {
	g := triangle(t)
	if got := g.NumVertices(); got != 3 {
		t.Errorf("NumVertices = %d, want 3", got)
	}
	if got := g.NumEdges(); got != 3 {
		t.Errorf("NumEdges = %d, want 3", got)
	}
	if got := g.Rank(); got != 2 {
		t.Errorf("Rank = %d, want 2", got)
	}
	if got := g.MaxDegree(); got != 2 {
		t.Errorf("MaxDegree = %d, want 2", got)
	}
	if got := g.Weight(1); got != 2 {
		t.Errorf("Weight(1) = %d, want 2", got)
	}
	if got := g.TotalWeight(); got != 6 {
		t.Errorf("TotalWeight = %d, want 6", got)
	}
	if got := g.MinWeight(); got != 1 {
		t.Errorf("MinWeight = %d, want 1", got)
	}
	if got := g.MaxWeight(); got != 3 {
		t.Errorf("MaxWeight = %d, want 3", got)
	}
	if got := g.WeightSpread(); got != 3 {
		t.Errorf("WeightSpread = %d, want 3", got)
	}
}

func TestIncidence(t *testing.T) {
	g := triangle(t)
	tests := []struct {
		v    VertexID
		want []EdgeID
	}{
		{0, []EdgeID{0, 2}},
		{1, []EdgeID{0, 1}},
		{2, []EdgeID{1, 2}},
	}
	for _, tt := range tests {
		got := g.Incident(tt.v)
		if len(got) != len(tt.want) {
			t.Fatalf("Incident(%d) = %v, want %v", tt.v, got, tt.want)
		}
		for i := range got {
			if got[i] != tt.want[i] {
				t.Errorf("Incident(%d)[%d] = %d, want %d", tt.v, i, got[i], tt.want[i])
			}
		}
		if g.Degree(tt.v) != len(tt.want) {
			t.Errorf("Degree(%d) = %d, want %d", tt.v, g.Degree(tt.v), len(tt.want))
		}
	}
}

func TestIsCoverAndCoverWeight(t *testing.T) {
	g := triangle(t)
	tests := []struct {
		name   string
		cover  []VertexID
		isCov  bool
		weight int64
	}{
		{"empty", nil, false, 0},
		{"single vertex misses opposite edge", []VertexID{0}, false, 1},
		{"two vertices cover triangle", []VertexID{0, 1}, true, 3},
		{"all vertices", []VertexID{0, 1, 2}, true, 6},
		{"duplicates counted once", []VertexID{0, 0, 1}, true, 3},
		{"out of range ignored", []VertexID{0, 1, 99}, true, 3},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := g.IsCover(tt.cover); got != tt.isCov {
				t.Errorf("IsCover(%v) = %v, want %v", tt.cover, got, tt.isCov)
			}
			if got := g.CoverWeight(tt.cover); got != tt.weight {
				t.Errorf("CoverWeight(%v) = %d, want %d", tt.cover, got, tt.weight)
			}
		})
	}
}

func TestUncoveredEdges(t *testing.T) {
	g := triangle(t)
	un := g.UncoveredEdges([]VertexID{0})
	if len(un) != 1 || un[0] != 1 {
		t.Errorf("UncoveredEdges({0}) = %v, want [1]", un)
	}
	if got := g.UncoveredEdges([]VertexID{0, 1, 2}); len(got) != 0 {
		t.Errorf("UncoveredEdges(all) = %v, want empty", got)
	}
}

func TestLocalMaxDegree(t *testing.T) {
	// Star with Δ=4: center has degree 4, leaves degree 1.
	g, err := Star(4, 3, 10)
	if err != nil {
		t.Fatalf("Star: %v", err)
	}
	for e := 0; e < g.NumEdges(); e++ {
		if got := g.LocalMaxDegree(EdgeID(e)); got != 4 {
			t.Errorf("LocalMaxDegree(%d) = %d, want 4", e, got)
		}
	}
}

func TestClone(t *testing.T) {
	g := triangle(t)
	h := g.Clone()
	if h.String() != g.String() {
		t.Fatalf("clone summary differs: %s vs %s", h, g)
	}
	// Mutating the clone's copy of weights must not affect the original.
	hw := h.Weights()
	hw[0] = 99
	if g.Weight(0) != 1 {
		t.Error("Weights() copy aliases original storage")
	}
}

func TestBuilderErrors(t *testing.T) {
	tests := []struct {
		name    string
		build   func() (*Hypergraph, error)
		wantErr error
	}{
		{
			name: "empty edge",
			build: func() (*Hypergraph, error) {
				b := NewBuilder(1, 1)
				b.AddVertex(1)
				b.AddEdge()
				return b.Build()
			},
			wantErr: ErrEmptyEdge,
		},
		{
			name: "vertex out of range",
			build: func() (*Hypergraph, error) {
				b := NewBuilder(1, 1)
				b.AddVertex(1)
				b.AddEdge(0, 5)
				return b.Build()
			},
			wantErr: ErrVertexRange,
		},
		{
			name: "non-positive weight",
			build: func() (*Hypergraph, error) {
				b := NewBuilder(1, 0)
				b.AddVertex(0)
				return b.Build()
			},
			wantErr: ErrNonPositiveWeight,
		},
		{
			name: "edges without vertices",
			build: func() (*Hypergraph, error) {
				b := NewBuilder(0, 1)
				b.AddEdge(0)
				return b.Build()
			},
			wantErr: ErrNoVertices,
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := tt.build()
			if !errors.Is(err, tt.wantErr) {
				t.Errorf("Build err = %v, want %v", err, tt.wantErr)
			}
		})
	}
}

func TestBuilderDeduplicatesEdgeVertices(t *testing.T) {
	b := NewBuilder(3, 1)
	b.AddVertices(3, 1)
	b.AddEdge(2, 0, 2, 0, 1)
	g, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	e := g.Edge(0)
	if len(e) != 3 || e[0] != 0 || e[1] != 1 || e[2] != 2 {
		t.Errorf("Edge(0) = %v, want [0 1 2]", e)
	}
}

func TestValidate(t *testing.T) {
	g := triangle(t)
	if err := Validate(g); err != nil {
		t.Errorf("Validate(valid) = %v", err)
	}
}

func TestEmptyHypergraph(t *testing.T) {
	g, err := New(nil, nil)
	if err != nil {
		t.Fatalf("New(empty): %v", err)
	}
	if g.NumVertices() != 0 || g.NumEdges() != 0 || g.Rank() != 0 || g.MaxDegree() != 0 {
		t.Errorf("empty hypergraph has nonzero stats: %s", g)
	}
	if !g.IsCover(nil) {
		t.Error("empty cover should cover empty hypergraph")
	}
	if g.WeightSpread() != 1 {
		t.Errorf("WeightSpread(empty) = %d, want 1", g.WeightSpread())
	}
}

func TestMustBuildPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustBuild on invalid instance did not panic")
		}
	}()
	b := NewBuilder(0, 1)
	b.AddEdge(0)
	b.MustBuild()
}
