package hypergraph

import (
	"encoding/json"
	"fmt"
	"io"
)

// jsonInstance is the on-disk JSON shape of a hypergraph instance.
type jsonInstance struct {
	Weights []int64 `json:"weights"`
	Edges   [][]int `json:"edges"`
}

// MarshalJSON encodes the hypergraph as {"weights":[...],"edges":[[...]]}.
func (g *Hypergraph) MarshalJSON() ([]byte, error) {
	inst := jsonInstance{
		Weights: g.Weights(),
		Edges:   make([][]int, g.NumEdges()),
	}
	for e := 0; e < g.NumEdges(); e++ {
		vs := g.Edge(EdgeID(e))
		row := make([]int, len(vs))
		for i, v := range vs {
			row[i] = int(v)
		}
		inst.Edges[e] = row
	}
	return json.Marshal(inst)
}

// UnmarshalJSON decodes and validates a hypergraph.
func (g *Hypergraph) UnmarshalJSON(data []byte) error {
	var inst jsonInstance
	if err := json.Unmarshal(data, &inst); err != nil {
		return fmt.Errorf("hypergraph: decode: %w", err)
	}
	b := NewBuilder(len(inst.Weights), len(inst.Edges))
	for _, w := range inst.Weights {
		b.AddVertex(w)
	}
	for _, row := range inst.Edges {
		vs := make([]VertexID, len(row))
		for i, v := range row {
			vs[i] = VertexID(v)
		}
		b.AddEdge(vs...)
	}
	built, err := b.Build()
	if err != nil {
		return err
	}
	*g = *built
	return nil
}

// WriteTo serializes g as JSON to w.
func (g *Hypergraph) WriteTo(w io.Writer) (int64, error) {
	data, err := g.MarshalJSON()
	if err != nil {
		return 0, err
	}
	n, err := w.Write(data)
	return int64(n), err
}

// ReadFrom parses a JSON hypergraph from r.
func ReadFrom(r io.Reader) (*Hypergraph, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("hypergraph: read: %w", err)
	}
	var g Hypergraph
	if err := g.UnmarshalJSON(data); err != nil {
		return nil, err
	}
	return &g, nil
}
