package hypergraph

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"testing/quick"
)

func TestJSONRoundTrip(t *testing.T) {
	g, err := UniformRandom(25, 40, 3, GenConfig{Seed: 11, Dist: WeightUniformRange, MaxWeight: 9})
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(g)
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}
	var h Hypergraph
	if err := json.Unmarshal(data, &h); err != nil {
		t.Fatalf("Unmarshal: %v", err)
	}
	data2, err := json.Marshal(&h)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, data2) {
		t.Error("JSON round trip not stable")
	}
	if h.Rank() != g.Rank() || h.MaxDegree() != g.MaxDegree() {
		t.Error("round trip changed derived stats")
	}
}

func TestUnmarshalRejectsInvalid(t *testing.T) {
	tests := []struct {
		name string
		data string
	}{
		{"bad json", `{`},
		{"empty edge", `{"weights":[1],"edges":[[]]}`},
		{"range", `{"weights":[1],"edges":[[4]]}`},
		{"zero weight", `{"weights":[0],"edges":[]}`},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			var g Hypergraph
			if err := json.Unmarshal([]byte(tt.data), &g); err == nil {
				t.Errorf("Unmarshal(%s) succeeded, want error", tt.data)
			}
		})
	}
}

func TestWriteToReadFrom(t *testing.T) {
	g := MustNew([]int64{2, 3}, [][]VertexID{{0, 1}})
	var buf bytes.Buffer
	if _, err := g.WriteTo(&buf); err != nil {
		t.Fatalf("WriteTo: %v", err)
	}
	h, err := ReadFrom(&buf)
	if err != nil {
		t.Fatalf("ReadFrom: %v", err)
	}
	if h.NumVertices() != 2 || h.NumEdges() != 1 || h.Weight(1) != 3 {
		t.Errorf("round trip mismatch: %s", h)
	}
}

func TestReadFromError(t *testing.T) {
	if _, err := ReadFrom(strings.NewReader("not json")); err == nil {
		t.Error("ReadFrom(garbage) succeeded")
	}
}

func TestJSONRoundTripProperty(t *testing.T) {
	prop := func(seed int64, nRaw, mRaw uint8) bool {
		n := int(nRaw%20) + 1
		m := int(mRaw % 30)
		f := 2
		if f > n {
			f = n
		}
		g, err := UniformRandom(n, m, f, GenConfig{Seed: seed, Dist: WeightUniformRange, MaxWeight: 7})
		if err != nil {
			return false
		}
		data, err := json.Marshal(g)
		if err != nil {
			return false
		}
		var h Hypergraph
		if err := json.Unmarshal(data, &h); err != nil {
			return false
		}
		data2, err := json.Marshal(&h)
		return err == nil && bytes.Equal(data, data2)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
