package hypergraph

import (
	"testing"
	"time"
)

func TestRegularLikeLargeIsFast(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	start := time.Now()
	g, err := RegularLike(100_000, 10, 2, GenConfig{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	if elapsed > 10*time.Second {
		t.Errorf("RegularLike(100k) took %v; generation should be near-linear", elapsed)
	}
	if g.NumEdges() < 100_000*10/2*9/10 {
		t.Errorf("generated only %d edges, want close to %d", g.NumEdges(), 100_000*10/2)
	}
	if g.MaxDegree() > 10 {
		t.Errorf("Δ = %d exceeds d = 10", g.MaxDegree())
	}
}
