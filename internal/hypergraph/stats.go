package hypergraph

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Stats summarizes the structural parameters the paper's round bounds are
// stated in terms of.
type Stats struct {
	NumVertices  int
	NumEdges     int
	Rank         int // f
	MaxDegree    int // Δ
	MinDegree    int // min |E(v)| over vertices with degree ≥ 1
	MeanDegree   float64
	MinWeight    int64
	MaxWeight    int64
	WeightSpread int64 // W = ceil(max/min)
	TotalWeight  int64
}

// ComputeStats derives Stats for g.
func ComputeStats(g *Hypergraph) Stats {
	s := Stats{
		NumVertices:  g.NumVertices(),
		NumEdges:     g.NumEdges(),
		Rank:         g.Rank(),
		MaxDegree:    g.MaxDegree(),
		MinWeight:    g.MinWeight(),
		MaxWeight:    g.MaxWeight(),
		WeightSpread: g.WeightSpread(),
		TotalWeight:  g.TotalWeight(),
	}
	sum, cnt := 0, 0
	s.MinDegree = math.MaxInt
	for v := 0; v < g.NumVertices(); v++ {
		d := g.Degree(VertexID(v))
		if d == 0 {
			continue
		}
		if d < s.MinDegree {
			s.MinDegree = d
		}
		sum += d
		cnt++
	}
	if cnt == 0 {
		s.MinDegree = 0
	} else {
		s.MeanDegree = float64(sum) / float64(cnt)
	}
	return s
}

// String renders the stats on one line.
func (s Stats) String() string {
	return fmt.Sprintf("n=%d m=%d f=%d Δ=%d (min %d, mean %.1f) w∈[%d,%d] W=%d",
		s.NumVertices, s.NumEdges, s.Rank, s.MaxDegree, s.MinDegree, s.MeanDegree,
		s.MinWeight, s.MaxWeight, s.WeightSpread)
}

// DegreeHistogram returns, for each occurring degree, the number of vertices
// with that degree, as parallel sorted slices.
func DegreeHistogram(g *Hypergraph) (degrees []int, counts []int) {
	hist := make(map[int]int)
	for v := 0; v < g.NumVertices(); v++ {
		hist[g.Degree(VertexID(v))]++
	}
	degrees = make([]int, 0, len(hist))
	for d := range hist {
		degrees = append(degrees, d)
	}
	sort.Ints(degrees)
	counts = make([]int, len(degrees))
	for i, d := range degrees {
		counts[i] = hist[d]
	}
	return degrees, counts
}

// FormatDegreeHistogram renders the histogram compactly, e.g. "1:5 2:3 7:1".
func FormatDegreeHistogram(g *Hypergraph) string {
	degrees, counts := DegreeHistogram(g)
	parts := make([]string, len(degrees))
	for i := range degrees {
		parts[i] = fmt.Sprintf("%d:%d", degrees[i], counts[i])
	}
	return strings.Join(parts, " ")
}

// LogDelta returns log2(Δ) clamped below at 1, the quantity appearing in the
// paper's bounds (the paper assumes Δ ≥ 3 so that log log Δ > 0).
func LogDelta(g *Hypergraph) float64 {
	d := float64(g.MaxDegree())
	if d < 2 {
		return 1
	}
	return math.Log2(d)
}

// TheoreticalRoundBound evaluates the paper's headline bound
// f·log(f/ε) + logΔ/loglogΔ + min{logΔ, f·log(f/ε)·(logΔ)^γ}
// (without constants) for shape comparisons in the benchmarks.
func TheoreticalRoundBound(f int, eps float64, delta int, gamma float64) float64 {
	if f < 1 {
		f = 1
	}
	if eps <= 0 {
		eps = 1e-9
	}
	logD := math.Log2(math.Max(float64(delta), 4))
	loglogD := math.Log2(math.Max(logD, 2))
	fz := float64(f) * math.Log2(math.Max(float64(f)/eps, 2))
	return fz + logD/loglogD + math.Min(logD, fz*math.Pow(logD, gamma))
}
