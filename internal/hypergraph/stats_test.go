package hypergraph

import (
	"math"
	"strings"
	"testing"
)

func TestComputeStats(t *testing.T) {
	g := MustNew(
		[]int64{1, 4, 2, 8},
		[][]VertexID{{0, 1}, {0, 1, 2}, {1, 2}},
	)
	s := ComputeStats(g)
	if s.NumVertices != 4 || s.NumEdges != 3 {
		t.Errorf("shape = (%d,%d), want (4,3)", s.NumVertices, s.NumEdges)
	}
	if s.Rank != 3 {
		t.Errorf("Rank = %d, want 3", s.Rank)
	}
	if s.MaxDegree != 3 {
		t.Errorf("MaxDegree = %d, want 3", s.MaxDegree)
	}
	if s.MinDegree != 2 { // vertex 3 has degree 0 and is excluded
		t.Errorf("MinDegree = %d, want 2", s.MinDegree)
	}
	if s.MinWeight != 1 || s.MaxWeight != 8 || s.WeightSpread != 8 {
		t.Errorf("weights = [%d,%d] W=%d, want [1,8] W=8", s.MinWeight, s.MaxWeight, s.WeightSpread)
	}
	wantMean := (2.0 + 3.0 + 2.0) / 3.0
	if math.Abs(s.MeanDegree-wantMean) > 1e-9 {
		t.Errorf("MeanDegree = %f, want %f", s.MeanDegree, wantMean)
	}
	if !strings.Contains(s.String(), "f=3") {
		t.Errorf("String() = %q missing f", s.String())
	}
}

func TestComputeStatsEmpty(t *testing.T) {
	g := MustNew(nil, nil)
	s := ComputeStats(g)
	if s.MinDegree != 0 || s.MeanDegree != 0 {
		t.Errorf("empty stats degrees = (%d, %f), want zeros", s.MinDegree, s.MeanDegree)
	}
}

func TestDegreeHistogram(t *testing.T) {
	g := MustNew(
		[]int64{1, 1, 1, 1},
		[][]VertexID{{0, 1}, {0, 2}, {0, 3}},
	)
	degrees, counts := DegreeHistogram(g)
	if len(degrees) != 2 || degrees[0] != 1 || degrees[1] != 3 {
		t.Fatalf("degrees = %v, want [1 3]", degrees)
	}
	if counts[0] != 3 || counts[1] != 1 {
		t.Errorf("counts = %v, want [3 1]", counts)
	}
	if got := FormatDegreeHistogram(g); got != "1:3 3:1" {
		t.Errorf("FormatDegreeHistogram = %q, want \"1:3 3:1\"", got)
	}
}

func TestLogDelta(t *testing.T) {
	g, err := Star(16, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got := LogDelta(g); math.Abs(got-4) > 1e-9 {
		t.Errorf("LogDelta = %f, want 4", got)
	}
	empty := MustNew([]int64{1}, nil)
	if got := LogDelta(empty); got != 1 {
		t.Errorf("LogDelta(edgeless) = %f, want 1 (clamped)", got)
	}
}

func TestTheoreticalRoundBoundMonotoneInDelta(t *testing.T) {
	prev := 0.0
	for _, delta := range []int{8, 64, 1024, 1 << 16, 1 << 24} {
		b := TheoreticalRoundBound(2, 0.5, delta, 0.001)
		if b <= 0 {
			t.Fatalf("bound %f <= 0 at Δ=%d", b, delta)
		}
		if b < prev {
			t.Errorf("bound not monotone: Δ=%d gives %f < %f", delta, b, prev)
		}
		prev = b
	}
	// Degenerate parameters must not panic or return NaN.
	if v := TheoreticalRoundBound(0, 0, 0, 0.001); math.IsNaN(v) || math.IsInf(v, 0) {
		t.Errorf("degenerate bound = %f", v)
	}
}
