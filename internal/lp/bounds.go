package lp

import (
	"fmt"

	"distcover/internal/hypergraph"
)

// CheckEdgePacking verifies that δ is a feasible solution of the dual edge
// packing LP (Appendix A): δ(e) ≥ 0 for every edge and Σ_{e∋v} δ(e) ≤ w(v)
// for every vertex, within tol (use tol > 0 for float64-produced duals; the
// invariants hold exactly in exact arithmetic).
func CheckEdgePacking(g *hypergraph.Hypergraph, delta []float64, tol float64) error {
	if len(delta) != g.NumEdges() {
		return fmt.Errorf("lp: %d dual values for %d edges", len(delta), g.NumEdges())
	}
	for e, d := range delta {
		if d < -tol {
			return fmt.Errorf("lp: negative dual δ(%d) = %g", e, d)
		}
	}
	for v := 0; v < g.NumVertices(); v++ {
		var sum float64
		for _, e := range g.Incident(hypergraph.VertexID(v)) {
			sum += delta[e]
		}
		w := float64(g.Weight(hypergraph.VertexID(v)))
		if sum > w*(1+tol)+tol {
			return fmt.Errorf("lp: packing violated at vertex %d: Σδ = %g > w = %g", v, sum, w)
		}
	}
	return nil
}

// DualValue returns Σ_e δ(e), which by weak duality lower-bounds the optimal
// fractional (hence integral) cover weight.
func DualValue(delta []float64) float64 {
	var s float64
	for _, d := range delta {
		s += d
	}
	return s
}

// GreedyDualBound computes a maximal dual edge packing sequentially: edges
// in index order raise δ(e) to the minimum residual slack of their vertices.
// The result is a valid lower bound on OPT; it is the centralized reference
// bound used when an algorithm under audit does not expose its own duals.
func GreedyDualBound(g *hypergraph.Hypergraph) float64 {
	slack := make([]float64, g.NumVertices())
	for v := 0; v < g.NumVertices(); v++ {
		slack[v] = float64(g.Weight(hypergraph.VertexID(v)))
	}
	var total float64
	for e := 0; e < g.NumEdges(); e++ {
		raise := -1.0
		for _, v := range g.Edge(hypergraph.EdgeID(e)) {
			if raise < 0 || slack[v] < raise {
				raise = slack[v]
			}
		}
		if raise <= 0 {
			continue
		}
		for _, v := range g.Edge(hypergraph.EdgeID(e)) {
			slack[v] -= raise
		}
		total += raise
	}
	return total
}

// GreedyDualBoundILP computes the analogous maximal dual for a covering ILP:
// rows in index order raise y_i as far as the column packing constraints
// Σ_i y_i·A_ij ≤ w_j allow; returns Σ_i y_i·b_i, a weak-duality lower bound
// on the LP (hence ILP) optimum.
func GreedyDualBoundILP(p *CoveringILP) float64 {
	slack := make([]float64, p.NumVars)
	for j, w := range p.Weights {
		slack[j] = float64(w)
	}
	var total float64
	for _, row := range p.Rows {
		if row.B <= 0 {
			continue
		}
		raise := -1.0
		for _, t := range row.Terms {
			if t.Coef <= 0 {
				continue
			}
			r := slack[t.Col] / float64(t.Coef)
			if raise < 0 || r < raise {
				raise = r
			}
		}
		if raise <= 0 {
			continue
		}
		for _, t := range row.Terms {
			if t.Coef > 0 {
				slack[t.Col] -= raise * float64(t.Coef)
			}
		}
		total += raise * float64(row.B)
	}
	return total
}
