package lp

import (
	"testing"
	"testing/quick"

	"distcover/internal/hypergraph"
)

func TestCheckEdgePacking(t *testing.T) {
	g := hypergraph.MustNew([]int64{2, 2, 2},
		[][]hypergraph.VertexID{{0, 1}, {1, 2}})
	tests := []struct {
		name    string
		delta   []float64
		wantErr bool
	}{
		{"feasible", []float64{1, 1}, false},
		{"tight", []float64{2, 0}, false},
		{"violates vertex 1", []float64{1.5, 1.5}, true},
		{"negative dual", []float64{-0.5, 1}, true},
		{"wrong length", []float64{1}, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			err := CheckEdgePacking(g, tt.delta, 1e-9)
			if (err != nil) != tt.wantErr {
				t.Errorf("CheckEdgePacking(%v) = %v, wantErr=%v", tt.delta, err, tt.wantErr)
			}
		})
	}
}

func TestDualValue(t *testing.T) {
	if got := DualValue([]float64{1, 2.5, 0.5}); got != 4 {
		t.Errorf("DualValue = %f, want 4", got)
	}
	if got := DualValue(nil); got != 0 {
		t.Errorf("DualValue(nil) = %f, want 0", got)
	}
}

func TestGreedyDualBoundIsValidLowerBound(t *testing.T) {
	prop := func(seed int64) bool {
		g, err := hypergraph.UniformRandom(10, 14, 3,
			hypergraph.GenConfig{Seed: seed, Dist: hypergraph.WeightUniformRange, MaxWeight: 8})
		if err != nil {
			return false
		}
		lb := GreedyDualBound(g)
		_, opt, err := ExactCover(g, 0)
		if err != nil {
			return false
		}
		// Weak duality: bound ≤ OPT (allow float slack), and positive when
		// edges exist.
		if lb > float64(opt)+1e-6 {
			return false
		}
		return g.NumEdges() == 0 || lb > 0
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestGreedyDualBoundTriangle(t *testing.T) {
	// Unit-weight triangle: the greedy packing saturates quickly; any
	// maximal packing value is between 1 and OPT=2.
	g := hypergraph.MustNew([]int64{1, 1, 1},
		[][]hypergraph.VertexID{{0, 1}, {1, 2}, {0, 2}})
	lb := GreedyDualBound(g)
	if lb < 1 || lb > 2 {
		t.Errorf("triangle bound = %f, want within [1,2]", lb)
	}
}

func TestGreedyDualBoundILPValid(t *testing.T) {
	prop := func(seed int64) bool {
		g, err := hypergraph.UniformRandom(8, 10, 2,
			hypergraph.GenConfig{Seed: seed, Dist: hypergraph.WeightUniformRange, MaxWeight: 5})
		if err != nil {
			return false
		}
		p := FromHypergraph(g)
		lb := GreedyDualBoundILP(p)
		_, opt, err := ExactILP(p, 0)
		if err != nil {
			return false
		}
		return lb <= float64(opt)+1e-6
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestGreedyDualBoundILPGeneral(t *testing.T) {
	p := sample()
	lb := GreedyDualBoundILP(p)
	_, opt, err := ExactILP(p, 0)
	if err != nil {
		t.Fatal(err)
	}
	if lb <= 0 {
		t.Errorf("bound = %f, want > 0", lb)
	}
	if lb > float64(opt)+1e-9 {
		t.Errorf("bound %f exceeds OPT %d", lb, opt)
	}
}
