package lp

import (
	"errors"
	"fmt"
	"sort"

	"distcover/internal/hypergraph"
)

// ErrSearchLimit indicates the exact solver exceeded its node budget; the
// instance is too large for exact solving.
var ErrSearchLimit = errors.New("lp: exact solver node limit exceeded")

// DefaultExactLimit bounds branch-and-bound nodes when no limit is given.
const DefaultExactLimit = 5_000_000

// ExactCover computes a minimum-weight vertex cover of g by branch and
// bound: pick an uncovered edge and branch on which of its ≤ f vertices
// joins the cover. Exponential in the cover size; intended for auditing
// approximation ratios on small instances. limit ≤ 0 uses
// DefaultExactLimit.
func ExactCover(g *hypergraph.Hypergraph, limit int64) ([]hypergraph.VertexID, int64, error) {
	if limit <= 0 {
		limit = DefaultExactLimit
	}
	s := &coverSearch{
		g:        g,
		limit:    limit,
		inCover:  make([]bool, g.NumVertices()),
		coverCnt: make([]int, g.NumEdges()),
		// Upper bound to beat: all vertices (always a cover).
		bestW: g.TotalWeight() + 1,
	}
	// Branching on edges in increasing-size order tends to shrink the tree.
	s.edgeOrder = make([]hypergraph.EdgeID, g.NumEdges())
	for e := range s.edgeOrder {
		s.edgeOrder[e] = hypergraph.EdgeID(e)
	}
	sort.Slice(s.edgeOrder, func(i, j int) bool {
		return g.EdgeSize(s.edgeOrder[i]) < g.EdgeSize(s.edgeOrder[j])
	})
	if err := s.branch(0); err != nil {
		return nil, 0, err
	}
	if !s.found {
		// Cannot happen for valid instances (all vertices always cover),
		// but keep the search honest.
		return nil, 0, fmt.Errorf("%w: no cover found", ErrInfeasible)
	}
	return s.best, s.bestW, nil
}

type coverSearch struct {
	g         *hypergraph.Hypergraph
	edgeOrder []hypergraph.EdgeID
	inCover   []bool
	coverCnt  []int // how many chosen vertices stab each edge
	curW      int64
	best      []hypergraph.VertexID
	bestW     int64
	found     bool
	nodes     int64
	limit     int64
}

func (s *coverSearch) branch(weightFloor int64) error {
	s.nodes++
	if s.nodes > s.limit {
		return fmt.Errorf("%w (%d nodes)", ErrSearchLimit, s.limit)
	}
	if s.curW >= s.bestW {
		return nil
	}
	// Find an uncovered edge.
	var pick hypergraph.EdgeID = -1
	for _, e := range s.edgeOrder {
		if s.coverCnt[e] == 0 {
			pick = e
			break
		}
	}
	if pick < 0 {
		// Everything covered: record solution.
		s.found = true
		s.bestW = s.curW
		s.best = s.best[:0]
		for v, in := range s.inCover {
			if in {
				s.best = append(s.best, hypergraph.VertexID(v))
			}
		}
		return nil
	}
	for _, v := range s.g.Edge(pick) {
		if s.inCover[v] {
			continue // cannot happen for an uncovered edge, but keep safe
		}
		w := s.g.Weight(v)
		s.inCover[v] = true
		s.curW += w
		for _, e := range s.g.Incident(v) {
			s.coverCnt[e]++
		}
		if err := s.branch(weightFloor); err != nil {
			return err
		}
		for _, e := range s.g.Incident(v) {
			s.coverCnt[e]--
		}
		s.curW -= w
		s.inCover[v] = false
	}
	return nil
}

// ExactILP computes an optimal solution of a small covering ILP by branch
// and bound over variables with box bounds VarBound(j), pruning with the
// partial objective and a residual-coverage test. limit ≤ 0 uses
// DefaultExactLimit.
func ExactILP(p *CoveringILP, limit int64) ([]int64, int64, error) {
	if err := p.Validate(); err != nil {
		return nil, 0, err
	}
	if limit <= 0 {
		limit = DefaultExactLimit
	}
	s := &ilpSearch{
		p:      p,
		limit:  limit,
		x:      make([]int64, p.NumVars),
		resid:  make([]int64, len(p.Rows)),
		bounds: make([]int64, p.NumVars),
	}
	for i, row := range p.Rows {
		s.resid[i] = row.B
	}
	for j := 0; j < p.NumVars; j++ {
		s.bounds[j] = p.VarBound(j)
	}
	// maxTail[j][i] = max contribution of variables ≥ j to row i.
	s.maxTail = make([][]int64, p.NumVars+1)
	s.maxTail[p.NumVars] = make([]int64, len(p.Rows))
	colTerms := make([][]Term, p.NumVars) // row index + coef per column
	for i, row := range p.Rows {
		for _, t := range row.Terms {
			colTerms[t.Col] = append(colTerms[t.Col], Term{Col: i, Coef: t.Coef})
		}
	}
	for j := p.NumVars - 1; j >= 0; j-- {
		s.maxTail[j] = append([]int64(nil), s.maxTail[j+1]...)
		for _, t := range colTerms[j] {
			s.maxTail[j][t.Col] += t.Coef * s.bounds[j]
		}
	}
	s.colRows = colTerms
	// Upper bound to beat: x_j = bounds (feasible if instance is feasible).
	var ub int64 = 1
	for j := 0; j < p.NumVars; j++ {
		ub += p.Weights[j] * s.bounds[j]
	}
	s.bestW = ub
	if err := s.branch(0); err != nil {
		return nil, 0, err
	}
	if !s.found {
		return nil, 0, fmt.Errorf("%w: no feasible assignment within bounds", ErrInfeasible)
	}
	return s.best, s.bestW, nil
}

type ilpSearch struct {
	p       *CoveringILP
	x       []int64
	resid   []int64 // residual demand per row
	bounds  []int64
	maxTail [][]int64
	colRows [][]Term // per column: (row index, coef)
	curW    int64
	best    []int64
	bestW   int64
	found   bool
	nodes   int64
	limit   int64
}

func (s *ilpSearch) branch(j int) error {
	s.nodes++
	if s.nodes > s.limit {
		return fmt.Errorf("%w (%d nodes)", ErrSearchLimit, s.limit)
	}
	if s.curW >= s.bestW {
		return nil
	}
	// Residual feasibility: can variables ≥ j still satisfy every row?
	for i, r := range s.resid {
		if r > 0 && s.maxTail[j][i] < r {
			return nil
		}
	}
	if j == s.p.NumVars {
		s.found = true
		s.bestW = s.curW
		s.best = append(s.best[:0], s.x...)
		return nil
	}
	// Try values 0..bound; ascending order finds cheap solutions first.
	for v := int64(0); v <= s.bounds[j]; v++ {
		s.x[j] = v
		if v > 0 {
			s.curW += s.p.Weights[j]
			for _, t := range s.colRows[j] {
				s.resid[t.Col] -= t.Coef
			}
		}
		if err := s.branch(j + 1); err != nil {
			return err
		}
	}
	// Undo the accumulated assignment of bounds[j].
	for _, t := range s.colRows[j] {
		s.resid[t.Col] += t.Coef * s.bounds[j]
	}
	s.curW -= s.p.Weights[j] * s.bounds[j]
	s.x[j] = 0
	return nil
}
