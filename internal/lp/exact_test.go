package lp

import (
	"errors"
	"testing"
	"testing/quick"

	"distcover/internal/hypergraph"
)

func TestExactCoverTriangle(t *testing.T) {
	// K_3 with weights 1,2,3: optimal cover is {0,1} with weight 3.
	g := hypergraph.MustNew([]int64{1, 2, 3},
		[][]hypergraph.VertexID{{0, 1}, {1, 2}, {0, 2}})
	cover, w, err := ExactCover(g, 0)
	if err != nil {
		t.Fatalf("ExactCover: %v", err)
	}
	if w != 3 {
		t.Errorf("optimal weight = %d, want 3", w)
	}
	if !g.IsCover(cover) {
		t.Errorf("returned set %v is not a cover", cover)
	}
	if g.CoverWeight(cover) != w {
		t.Errorf("cover weight %d != reported %d", g.CoverWeight(cover), w)
	}
}

func TestExactCoverStar(t *testing.T) {
	// Star: cheap center should be chosen over expensive leaves.
	g, err := hypergraph.Star(6, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	_, w, err := ExactCover(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	if w != 2 {
		t.Errorf("star optimum = %d, want 2 (the center)", w)
	}
}

func TestExactCoverEdgeless(t *testing.T) {
	g := hypergraph.MustNew([]int64{1, 2}, nil)
	cover, w, err := ExactCover(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(cover) != 0 || w != 0 {
		t.Errorf("edgeless optimum = (%v, %d), want (empty, 0)", cover, w)
	}
}

func TestExactCoverSearchLimit(t *testing.T) {
	g, err := hypergraph.CompleteGraph(30)
	if err != nil {
		t.Fatal(err)
	}
	_, _, err = ExactCover(g, 5)
	if !errors.Is(err, ErrSearchLimit) {
		t.Errorf("err = %v, want ErrSearchLimit", err)
	}
}

func TestExactCoverMatchesBruteForceOnRandom(t *testing.T) {
	// Cross-check branch and bound against subset enumeration.
	prop := func(seed int64) bool {
		g, err := hypergraph.UniformRandom(8, 10, 2,
			hypergraph.GenConfig{Seed: seed, Dist: hypergraph.WeightUniformRange, MaxWeight: 6})
		if err != nil {
			return false
		}
		_, got, err := ExactCover(g, 0)
		if err != nil {
			return false
		}
		want := bruteForceCover(g)
		return got == want
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// bruteForceCover enumerates all 2^n subsets (n ≤ ~16).
func bruteForceCover(g *hypergraph.Hypergraph) int64 {
	n := g.NumVertices()
	best := g.TotalWeight()
	for mask := 0; mask < 1<<n; mask++ {
		var cover []hypergraph.VertexID
		for v := 0; v < n; v++ {
			if mask&(1<<v) != 0 {
				cover = append(cover, hypergraph.VertexID(v))
			}
		}
		if g.IsCover(cover) {
			if w := g.CoverWeight(cover); w < best {
				best = w
			}
		}
	}
	return best
}

func TestExactILPSample(t *testing.T) {
	// min 2x0+3x1+x2 s.t. 2x0+x1 ≥ 4, x1+3x2 ≥ 3.
	// x = (2,0,1) costs 5; alternatives cost more.
	x, w, err := ExactILP(sample(), 0)
	if err != nil {
		t.Fatalf("ExactILP: %v", err)
	}
	if w != 5 {
		t.Errorf("optimum = %d, want 5", w)
	}
	if !sample().IsFeasible(x) {
		t.Errorf("returned x = %v infeasible", x)
	}
	if sample().Value(x) != w {
		t.Errorf("Value(x) = %d != reported %d", sample().Value(x), w)
	}
}

func TestExactILPTrivial(t *testing.T) {
	p := &CoveringILP{NumVars: 0}
	x, w, err := ExactILP(p, 0)
	if err != nil {
		t.Fatalf("ExactILP(empty): %v", err)
	}
	if len(x) != 0 || w != 0 {
		t.Errorf("empty ILP solution = (%v,%d), want (empty,0)", x, w)
	}
}

func TestExactILPSearchLimit(t *testing.T) {
	// Large box bounds make enumeration expensive.
	p := &CoveringILP{
		NumVars: 6,
		Weights: []int64{1, 1, 1, 1, 1, 1},
		Rows: []Row{
			{Terms: []Term{{0, 1}, {1, 1}, {2, 1}}, B: 50},
			{Terms: []Term{{3, 1}, {4, 1}, {5, 1}}, B: 50},
		},
	}
	_, _, err := ExactILP(p, 10)
	if !errors.Is(err, ErrSearchLimit) {
		t.Errorf("err = %v, want ErrSearchLimit", err)
	}
}

func TestExactILPAgreesWithExactCover(t *testing.T) {
	// On the incidence program of a hypergraph the two solvers must agree.
	prop := func(seed int64) bool {
		g, err := hypergraph.UniformRandom(7, 9, 3,
			hypergraph.GenConfig{Seed: seed, Dist: hypergraph.WeightUniformRange, MaxWeight: 4})
		if err != nil {
			return false
		}
		_, wCover, err := ExactCover(g, 0)
		if err != nil {
			return false
		}
		_, wILP, err := ExactILP(FromHypergraph(g), 0)
		if err != nil {
			return false
		}
		return wCover == wILP
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
