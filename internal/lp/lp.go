// Package lp provides the covering linear/integer-program substrate for
// Section 5 of the paper: covering ILP instances min wᵀx s.t. Ax ≥ b,
// x ∈ ℕⁿ with non-negative data, the structural parameters f(A) (max
// nonzeros per row), Δ(A) (max nonzeros per column) and M(A,b)
// (Definition 16), plus reference solvers used to audit approximation
// ratios: weak-duality lower bounds and exact branch-and-bound for small
// instances.
//
// Coefficients are integers. The paper allows real data; integer data loses
// no generality for the experiments (scale rationals by a common
// denominator) and keeps the reductions exact.
package lp

import (
	"errors"
	"fmt"

	"distcover/internal/hypergraph"
)

// Errors returned by instance validation.
var (
	// ErrNegativeCoefficient indicates A, b, or w containing a negative
	// entry, which violates the covering-program definition.
	ErrNegativeCoefficient = errors.New("lp: negative coefficient in covering program")
	// ErrInfeasible indicates a constraint that no assignment can satisfy
	// (b_i > 0 with no positive coefficients in row i).
	ErrInfeasible = errors.New("lp: infeasible covering constraint")
	// ErrBadShape indicates inconsistent dimensions or out-of-range column
	// indices.
	ErrBadShape = errors.New("lp: malformed instance")
	// ErrNonPositiveWeight indicates an objective weight ≤ 0; the reduction
	// to MWHVC requires strictly positive weights.
	ErrNonPositiveWeight = errors.New("lp: non-positive objective weight")
)

// Term is one nonzero entry A[row][Col] = Coef of the constraint matrix.
type Term struct {
	Col  int
	Coef int64
}

// Row is one covering constraint Σ Terms ≥ B.
type Row struct {
	Terms []Term
	B     int64
}

// CoveringILP is the integer program min wᵀx subject to Ax ≥ b, x ∈ ℕⁿ,
// with all data non-negative (Definition 13).
type CoveringILP struct {
	// NumVars is n, the number of variables.
	NumVars int
	// Rows are the m covering constraints.
	Rows []Row
	// Weights is the objective vector w (strictly positive).
	Weights []int64
}

// Validate checks shape, non-negativity and feasibility. A row with B ≤ 0
// is trivially satisfied and legal; a row with B > 0 must have at least one
// positive coefficient.
func (p *CoveringILP) Validate() error {
	if p.NumVars < 0 || len(p.Weights) != p.NumVars {
		return fmt.Errorf("%w: NumVars=%d but %d weights", ErrBadShape, p.NumVars, len(p.Weights))
	}
	for j, w := range p.Weights {
		if w <= 0 {
			return fmt.Errorf("%w: variable %d weight %d", ErrNonPositiveWeight, j, w)
		}
	}
	for i, row := range p.Rows {
		if row.B < 0 {
			return fmt.Errorf("%w: row %d has b=%d", ErrNegativeCoefficient, i, row.B)
		}
		hasPositive := false
		seen := make(map[int]bool, len(row.Terms))
		for _, t := range row.Terms {
			if t.Col < 0 || t.Col >= p.NumVars {
				return fmt.Errorf("%w: row %d references column %d (n=%d)",
					ErrBadShape, i, t.Col, p.NumVars)
			}
			if seen[t.Col] {
				return fmt.Errorf("%w: row %d repeats column %d", ErrBadShape, i, t.Col)
			}
			seen[t.Col] = true
			if t.Coef < 0 {
				return fmt.Errorf("%w: row %d column %d coef %d",
					ErrNegativeCoefficient, i, t.Col, t.Coef)
			}
			if t.Coef > 0 {
				hasPositive = true
			}
		}
		if row.B > 0 && !hasPositive {
			return fmt.Errorf("%w: row %d requires %d but has no positive coefficients",
				ErrInfeasible, i, row.B)
		}
	}
	return nil
}

// NumRows returns m.
func (p *CoveringILP) NumRows() int { return len(p.Rows) }

// RowF returns f(A), the maximum number of nonzero entries in a row.
func (p *CoveringILP) RowF() int {
	f := 0
	for _, row := range p.Rows {
		nz := 0
		for _, t := range row.Terms {
			if t.Coef != 0 {
				nz++
			}
		}
		if nz > f {
			f = nz
		}
	}
	return f
}

// ColDelta returns Δ(A), the maximum number of nonzero entries in a column.
func (p *CoveringILP) ColDelta() int {
	if p.NumVars == 0 {
		return 0
	}
	cnt := make([]int, p.NumVars)
	for _, row := range p.Rows {
		for _, t := range row.Terms {
			if t.Coef != 0 {
				cnt[t.Col]++
			}
		}
	}
	d := 0
	for _, c := range cnt {
		if c > d {
			d = c
		}
	}
	return d
}

// M returns M(A, b) = max{1, max over nonzero A_ij of ⌈b_i / A_ij⌉}
// (Definition 16): no variable ever needs to exceed M in an optimal
// solution (Proposition 17).
func (p *CoveringILP) M() int64 {
	m := int64(1)
	for _, row := range p.Rows {
		if row.B <= 0 {
			continue
		}
		for _, t := range row.Terms {
			if t.Coef <= 0 {
				continue
			}
			v := (row.B + t.Coef - 1) / t.Coef
			if v > m {
				m = v
			}
		}
	}
	return m
}

// VarBound returns the per-variable box bound: the largest value variable j
// can usefully take, max over rows i with A_ij > 0 of ⌈b_i / A_ij⌉.
func (p *CoveringILP) VarBound(j int) int64 {
	bound := int64(0)
	for _, row := range p.Rows {
		if row.B <= 0 {
			continue
		}
		for _, t := range row.Terms {
			if t.Col == j && t.Coef > 0 {
				v := (row.B + t.Coef - 1) / t.Coef
				if v > bound {
					bound = v
				}
			}
		}
	}
	return bound
}

// IsFeasible reports whether x (length n, entries ≥ 0) satisfies Ax ≥ b.
func (p *CoveringILP) IsFeasible(x []int64) bool {
	if len(x) != p.NumVars {
		return false
	}
	for _, v := range x {
		if v < 0 {
			return false
		}
	}
	for _, row := range p.Rows {
		var sum int64
		for _, t := range row.Terms {
			sum += t.Coef * x[t.Col]
		}
		if sum < row.B {
			return false
		}
	}
	return true
}

// Value returns wᵀx.
func (p *CoveringILP) Value(x []int64) int64 {
	var v int64
	for j, xj := range x {
		if j < len(p.Weights) {
			v += p.Weights[j] * xj
		}
	}
	return v
}

// FromHypergraph converts an MWHVC instance to its natural zero-one covering
// program: one 0/1 variable per vertex, one constraint Σ_{v∈e} x_v ≥ 1 per
// edge (the incidence-matrix program of Section 5.2).
func FromHypergraph(g *hypergraph.Hypergraph) *CoveringILP {
	p := &CoveringILP{
		NumVars: g.NumVertices(),
		Weights: g.Weights(),
		Rows:    make([]Row, g.NumEdges()),
	}
	for e := 0; e < g.NumEdges(); e++ {
		vs := g.Edge(hypergraph.EdgeID(e))
		terms := make([]Term, len(vs))
		for i, v := range vs {
			terms[i] = Term{Col: int(v), Coef: 1}
		}
		p.Rows[e] = Row{Terms: terms, B: 1}
	}
	return p
}

// String summarizes the instance parameters.
func (p *CoveringILP) String() string {
	return fmt.Sprintf("coveringILP{n=%d m=%d f=%d Δ=%d M=%d}",
		p.NumVars, p.NumRows(), p.RowF(), p.ColDelta(), p.M())
}
