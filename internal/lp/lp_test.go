package lp

import (
	"errors"
	"testing"

	"distcover/internal/hypergraph"
)

// sample returns a small valid covering ILP:
//
//	min 2x0 + 3x1 + x2
//	s.t. 2x0 + 1x1 ≥ 4
//	     1x1 + 3x2 ≥ 3
func sample() *CoveringILP {
	return &CoveringILP{
		NumVars: 3,
		Weights: []int64{2, 3, 1},
		Rows: []Row{
			{Terms: []Term{{Col: 0, Coef: 2}, {Col: 1, Coef: 1}}, B: 4},
			{Terms: []Term{{Col: 1, Coef: 1}, {Col: 2, Coef: 3}}, B: 3},
		},
	}
}

func TestValidateOK(t *testing.T) {
	if err := sample().Validate(); err != nil {
		t.Errorf("Validate(valid) = %v", err)
	}
}

func TestValidateErrors(t *testing.T) {
	tests := []struct {
		name    string
		mutate  func(*CoveringILP)
		wantErr error
	}{
		{"negative coef", func(p *CoveringILP) { p.Rows[0].Terms[0].Coef = -1 }, ErrNegativeCoefficient},
		{"negative b", func(p *CoveringILP) { p.Rows[0].B = -2 }, ErrNegativeCoefficient},
		{"zero weight", func(p *CoveringILP) { p.Weights[1] = 0 }, ErrNonPositiveWeight},
		{"col out of range", func(p *CoveringILP) { p.Rows[1].Terms[0].Col = 7 }, ErrBadShape},
		{"weights len mismatch", func(p *CoveringILP) { p.NumVars = 4 }, ErrBadShape},
		{"duplicate col", func(p *CoveringILP) { p.Rows[0].Terms[1].Col = 0 }, ErrBadShape},
		{
			"infeasible row",
			func(p *CoveringILP) { p.Rows[0].Terms = []Term{{Col: 0, Coef: 0}} },
			ErrInfeasible,
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			p := sample()
			tt.mutate(p)
			if err := p.Validate(); !errors.Is(err, tt.wantErr) {
				t.Errorf("Validate = %v, want %v", err, tt.wantErr)
			}
		})
	}
}

func TestStructuralParams(t *testing.T) {
	p := sample()
	if got := p.RowF(); got != 2 {
		t.Errorf("RowF = %d, want 2", got)
	}
	if got := p.ColDelta(); got != 2 { // column 1 appears in both rows
		t.Errorf("ColDelta = %d, want 2", got)
	}
	// M: row0 gives ceil(4/2)=2, ceil(4/1)=4; row1 gives ceil(3/1)=3, ceil(3/3)=1.
	if got := p.M(); got != 4 {
		t.Errorf("M = %d, want 4", got)
	}
	if got := p.VarBound(0); got != 2 {
		t.Errorf("VarBound(0) = %d, want 2", got)
	}
	if got := p.VarBound(1); got != 4 {
		t.Errorf("VarBound(1) = %d, want 4", got)
	}
	if got := p.VarBound(2); got != 1 {
		t.Errorf("VarBound(2) = %d, want 1", got)
	}
}

func TestFeasibilityAndValue(t *testing.T) {
	p := sample()
	tests := []struct {
		name string
		x    []int64
		feas bool
		val  int64
	}{
		{"zero", []int64{0, 0, 0}, false, 0},
		{"feasible", []int64{2, 0, 1}, true, 5},
		{"feasible via x1", []int64{0, 4, 0}, true, 12},
		{"short vector", []int64{1}, false, 2},
		{"negative entry", []int64{-1, 5, 5}, false, 18},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := p.IsFeasible(tt.x); got != tt.feas {
				t.Errorf("IsFeasible(%v) = %v, want %v", tt.x, got, tt.feas)
			}
			if got := p.Value(tt.x); got != tt.val {
				t.Errorf("Value(%v) = %d, want %d", tt.x, got, tt.val)
			}
		})
	}
}

func TestFromHypergraph(t *testing.T) {
	g := hypergraph.MustNew([]int64{5, 7, 9}, [][]hypergraph.VertexID{{0, 1}, {1, 2}})
	p := FromHypergraph(g)
	if err := p.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if p.NumVars != 3 || p.NumRows() != 2 {
		t.Fatalf("shape = (%d,%d), want (3,2)", p.NumVars, p.NumRows())
	}
	if p.RowF() != 2 || p.M() != 1 {
		t.Errorf("f=%d M=%d, want f=2 M=1", p.RowF(), p.M())
	}
	// x = indicator of {1} covers both edges.
	if !p.IsFeasible([]int64{0, 1, 0}) {
		t.Error("cover {1} should be feasible")
	}
	if p.Value([]int64{0, 1, 0}) != 7 {
		t.Error("objective should equal vertex weight")
	}
}

func TestMWithTrivialRows(t *testing.T) {
	p := &CoveringILP{
		NumVars: 1,
		Weights: []int64{1},
		Rows:    []Row{{Terms: []Term{{Col: 0, Coef: 5}}, B: 0}},
	}
	if err := p.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if got := p.M(); got != 1 {
		t.Errorf("M with only trivial rows = %d, want 1", got)
	}
}

func TestStringSummaries(t *testing.T) {
	if s := sample().String(); s == "" {
		t.Error("empty String()")
	}
}
