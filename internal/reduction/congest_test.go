package reduction

import (
	"testing"

	"distcover/internal/congest"
	"distcover/internal/core"
)

// TestReducedInstanceRunsOnCongest closes the loop of Section 5: the
// hypergraph produced by the reductions is an ordinary MWHVC instance, so
// the real message protocol must solve it and agree with the lockstep
// runner — i.e., the ILP pipeline could run fully distributed.
func TestReducedInstanceRunsOnCongest(t *testing.T) {
	for seed := int64(0); seed < 4; seed++ {
		p := randomILP(seed, 6, 5, 2, 4)
		ilpRed, err := ToZeroOne(p, Options{})
		if err != nil {
			t.Fatal(err)
		}
		zoRed, err := ToHypergraph(ilpRed.ZO, Options{PruneDominated: true})
		if err != nil {
			t.Fatal(err)
		}
		lockstep, err := core.Run(zoRed.G, core.DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		congRes, metrics, err := core.RunCongest(zoRed.G, core.DefaultOptions(),
			congest.SequentialEngine{}, congest.Options{Validate: true})
		if err != nil {
			t.Fatalf("seed %d: congest on reduced instance: %v", seed, err)
		}
		if congRes.CoverWeight != lockstep.CoverWeight || congRes.Iterations != lockstep.Iterations {
			t.Errorf("seed %d: congest disagrees with lockstep on reduced instance", seed)
		}
		if metrics.MaxMessageBits > congest.LogBudget(zoRed.G.NumVertices()+zoRed.G.NumEdges()) {
			t.Errorf("seed %d: reduced-instance protocol exceeded the CONGEST budget", seed)
		}
		// The distributed cover maps back to a feasible ILP solution.
		x := ilpRed.AssignmentFromBits(zoRed.CoverToAssignment(congRes.Cover))
		if !p.IsFeasible(x) {
			t.Errorf("seed %d: congest-path solution infeasible", seed)
		}
	}
}
