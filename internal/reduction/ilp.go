package reduction

import (
	"fmt"
	"math/bits"

	"distcover/internal/lp"
)

// BitVar records which (variable, bit) a zero-one column encodes.
type BitVar struct {
	// Var is the original ILP variable index.
	Var int
	// Bit is the power of two this column contributes: value 2^Bit.
	Bit int
}

// ILPReduction is the output of ToZeroOne: the expanded binary program plus
// the bit layout needed to map assignments back.
type ILPReduction struct {
	// ZO is the zero-one covering program of Claim 18.
	ZO *lp.CoveringILP
	// Layout maps each ZO column to its (variable, bit).
	Layout []BitVar
	// NumVars is the original variable count.
	NumVars int
	// M is M(A, b) from Definition 16.
	M int64
}

// ToZeroOne expands a covering ILP into a zero-one covering program by
// binary expansion (Claim 18): variable x_j with box bound [0, M] becomes B
// bits x_{j,0..B-1} with column 2^ℓ·A^{(j)} and weight 2^ℓ·w_j, where
// B = ⌊log2 M⌋ + 1 so every value in [0, M] is representable. With
// Options.PerVariableBits, B_j is derived from VarBound(j) ≤ M instead.
func ToZeroOne(p *lp.CoveringILP, opts Options) (*ILPReduction, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	m := p.M()
	globalBits := bitsFor(m)
	red := &ILPReduction{
		NumVars: p.NumVars,
		M:       m,
	}
	zo := &lp.CoveringILP{}
	colOf := make([][]int, p.NumVars) // per variable: ZO column of each bit
	for j := 0; j < p.NumVars; j++ {
		nb := globalBits
		if opts.PerVariableBits {
			nb = bitsFor(p.VarBound(j))
		}
		if nb < 1 {
			nb = 1
		}
		for l := 0; l < nb; l++ {
			colOf[j] = append(colOf[j], zo.NumVars)
			red.Layout = append(red.Layout, BitVar{Var: j, Bit: l})
			zo.Weights = append(zo.Weights, p.Weights[j]<<uint(l))
			zo.NumVars++
		}
	}
	for i, row := range p.Rows {
		var terms []lp.Term
		for _, t := range row.Terms {
			if t.Coef == 0 {
				continue
			}
			for l, col := range colOf[t.Col] {
				terms = append(terms, lp.Term{Col: col, Coef: t.Coef << uint(l)})
			}
		}
		if row.B > 0 && len(terms) == 0 {
			return nil, fmt.Errorf("%w: row %d", ErrInfeasible, i)
		}
		zo.Rows = append(zo.Rows, lp.Row{Terms: terms, B: row.B})
	}
	if err := zo.Validate(); err != nil {
		return nil, fmt.Errorf("reduction: expanded program invalid: %w", err)
	}
	red.ZO = zo
	return red, nil
}

// AssignmentFromBits maps a zero-one assignment of the expanded program
// back to the original variables: x_j = Σ_ℓ 2^ℓ·x_{j,ℓ}. The objective is
// preserved exactly: wᵀx equals the ZO objective of the bit vector.
func (r *ILPReduction) AssignmentFromBits(bitsX []int64) []int64 {
	x := make([]int64, r.NumVars)
	for col, bv := range r.Layout {
		if col < len(bitsX) && bitsX[col] > 0 {
			x[bv.Var] += 1 << uint(bv.Bit)
		}
	}
	return x
}

// bitsFor returns the number of binary digits needed to represent every
// value in [0, v]: ⌊log2 v⌋ + 1 (and 1 for v ≤ 1).
func bitsFor(v int64) int {
	if v <= 1 {
		return 1
	}
	return bits.Len64(uint64(v))
}
