package reduction

import (
	"fmt"
	"math"

	"distcover/internal/core"
	"distcover/internal/lp"
)

// PipelineResult is the outcome of the full Theorem 19 pipeline
// ILP → zero-one → MWHVC → Algorithm MWHVC → assignment.
type PipelineResult struct {
	// X is the integral solution; feasible for the input ILP.
	X []int64
	// Value is wᵀX.
	Value int64
	// Core is the MWHVC run on the reduced hypergraph.
	Core *core.Result
	// Stats reports the reduction blowup against the paper's bounds.
	Stats PipelineStats
}

// PipelineStats records the parameters before and after the reductions.
type PipelineStats struct {
	// Original ILP parameters.
	F     int   // f(A): max nonzeros per constraint
	Delta int   // Δ(A): max constraints per variable
	M     int64 // M(A,b) box bound
	// Expanded zero-one program parameters.
	ZOVars  int
	ZOF     int
	ZODelta int
	// Reduced hypergraph parameters (Claim 18 + Lemma 14 predict
	// f' ≤ f·(⌊log M⌋+1) and Δ' ≤ 2^{f'}·Δ).
	HgVertices int
	HgEdges    int
	HgRank     int
	HgDelta    int
	RawEdges   int // hyperedges before deduplication
	// SimulationFactor is the paper's (1 + f/log n) messaging overhead for
	// variable nodes simulating hyperedges (Claim 15); we account it
	// analytically rather than executing the packing trick.
	SimulationFactor float64
}

// SolveILP runs the composed reduction pipeline on a covering ILP and
// returns a feasible integral solution. The guarantee proved in the paper
// is (f+ε)·OPT; the bound certified per-run by weak duality is
// (rank'+ε)·Σδ with rank' the reduced hypergraph's rank (Result.Core
// carries the dual). Tests audit both against exact optima on small
// instances.
func SolveILP(p *lp.CoveringILP, coreOpts core.Options, redOpts Options) (*PipelineResult, error) {
	ilpRed, err := ToZeroOne(p, redOpts)
	if err != nil {
		return nil, fmt.Errorf("reduction: to zero-one: %w", err)
	}
	zoRed, err := ToHypergraph(ilpRed.ZO, redOpts)
	if err != nil {
		return nil, fmt.Errorf("reduction: to hypergraph: %w", err)
	}
	res, err := core.Run(zoRed.G, coreOpts)
	if err != nil {
		return nil, fmt.Errorf("reduction: core run: %w", err)
	}
	bitsX := zoRed.CoverToAssignment(res.Cover)
	x := ilpRed.AssignmentFromBits(bitsX)
	if !p.IsFeasible(x) {
		// Cannot happen when the reductions are correct; fail loudly
		// rather than return a bogus solution.
		return nil, fmt.Errorf("reduction: mapped solution infeasible (pipeline bug)")
	}
	simFactor := 1.0
	if p.NumVars > 1 {
		simFactor = 1 + float64(p.RowF())/math.Log2(float64(p.NumVars))
	}
	return &PipelineResult{
		X:     x,
		Value: p.Value(x),
		Core:  res,
		Stats: PipelineStats{
			F:                p.RowF(),
			Delta:            p.ColDelta(),
			M:                p.M(),
			ZOVars:           ilpRed.ZO.NumVars,
			ZOF:              ilpRed.ZO.RowF(),
			ZODelta:          ilpRed.ZO.ColDelta(),
			HgVertices:       zoRed.G.NumVertices(),
			HgEdges:          zoRed.G.NumEdges(),
			HgRank:           zoRed.G.Rank(),
			HgDelta:          zoRed.G.MaxDegree(),
			RawEdges:         zoRed.RawEdges,
			SimulationFactor: simFactor,
		},
	}, nil
}
