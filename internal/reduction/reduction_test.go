package reduction

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"distcover/internal/core"
	"distcover/internal/hypergraph"
	"distcover/internal/lp"
)

// zoSample returns a small zero-one covering program:
//
//	min x0 + 2x1 + 3x2
//	s.t. x0 + x1 ≥ 1
//	     x1 + x2 ≥ 1
//	     2x0 + x1 + x2 ≥ 2
func zoSample() *lp.CoveringILP {
	return &lp.CoveringILP{
		NumVars: 3,
		Weights: []int64{1, 2, 3},
		Rows: []lp.Row{
			{Terms: []lp.Term{{Col: 0, Coef: 1}, {Col: 1, Coef: 1}}, B: 1},
			{Terms: []lp.Term{{Col: 1, Coef: 1}, {Col: 2, Coef: 1}}, B: 1},
			{Terms: []lp.Term{{Col: 0, Coef: 2}, {Col: 1, Coef: 1}, {Col: 2, Coef: 1}}, B: 2},
		},
	}
}

// randomZeroOne generates a feasible random zero-one covering program.
func randomZeroOne(seed int64, n, m, f int) *lp.CoveringILP {
	rng := rand.New(rand.NewSource(seed))
	p := &lp.CoveringILP{NumVars: n}
	for j := 0; j < n; j++ {
		p.Weights = append(p.Weights, 1+rng.Int63n(9))
	}
	for i := 0; i < m; i++ {
		k := 1 + rng.Intn(f)
		cols := rng.Perm(n)[:k]
		var terms []lp.Term
		var total int64
		for _, c := range cols {
			coef := int64(1) // unit coefficients keep VarBound ≤ 1 (zero-one)
			terms = append(terms, lp.Term{Col: c, Coef: coef})
			total += coef
		}
		b := int64(1) // B=1 with unit coefficients keeps it zero-one
		_ = total
		p.Rows = append(p.Rows, lp.Row{Terms: terms, B: b})
	}
	return p
}

func TestToHypergraphLemma14Equivalence(t *testing.T) {
	// For every assignment x: x feasible ⇔ indicated set covers G.
	prop := func(seed int64) bool {
		p := randomZeroOne(seed, 8, 6, 3)
		red, err := ToHypergraph(p, Options{})
		if err != nil {
			return false
		}
		for mask := 0; mask < 1<<p.NumVars; mask++ {
			x := make([]int64, p.NumVars)
			var cover []hypergraph.VertexID
			for j := 0; j < p.NumVars; j++ {
				if mask&(1<<j) != 0 {
					x[j] = 1
					cover = append(cover, hypergraph.VertexID(j))
				}
			}
			if p.IsFeasible(x) != red.G.IsCover(cover) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestToHypergraphPruningPreservesEquivalence(t *testing.T) {
	prop := func(seed int64) bool {
		p := randomZeroOne(seed, 7, 5, 3)
		plain, err := ToHypergraph(p, Options{})
		if err != nil {
			return false
		}
		pruned, err := ToHypergraph(p, Options{PruneDominated: true})
		if err != nil {
			return false
		}
		if pruned.G.NumEdges() > plain.G.NumEdges() {
			return false
		}
		for mask := 0; mask < 1<<p.NumVars; mask++ {
			var cover []hypergraph.VertexID
			for j := 0; j < p.NumVars; j++ {
				if mask&(1<<j) != 0 {
					cover = append(cover, hypergraph.VertexID(j))
				}
			}
			if plain.G.IsCover(cover) != pruned.G.IsCover(cover) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestToHypergraphSample(t *testing.T) {
	p := zoSample()
	red, err := ToHypergraph(p, Options{})
	if err != nil {
		t.Fatalf("ToHypergraph: %v", err)
	}
	if red.G.NumVertices() != 3 {
		t.Errorf("vertices = %d, want 3", red.G.NumVertices())
	}
	// Lemma 14 bound: rank ≤ f(A) = 3.
	if red.G.Rank() > 3 {
		t.Errorf("rank = %d exceeds f(A)=3", red.G.Rank())
	}
	if red.RawEdges < red.G.NumEdges() {
		t.Errorf("raw edges %d < kept edges %d", red.RawEdges, red.G.NumEdges())
	}
	// Weights carried over.
	if red.G.Weight(2) != 3 {
		t.Errorf("weight(2) = %d, want 3", red.G.Weight(2))
	}
	// x = (1,1,0) is feasible; its cover must stab all edges.
	if !red.G.IsCover([]hypergraph.VertexID{0, 1}) {
		t.Error("{0,1} should cover")
	}
	// x = (1,0,0) violates row 1.
	if red.G.IsCover([]hypergraph.VertexID{0}) {
		t.Error("{0} should not cover")
	}
	x := red.CoverToAssignment([]hypergraph.VertexID{0, 1})
	if x[0] != 1 || x[1] != 1 || x[2] != 0 {
		t.Errorf("CoverToAssignment = %v", x)
	}
}

func TestToHypergraphErrors(t *testing.T) {
	t.Run("infeasible as zero-one", func(t *testing.T) {
		p := &lp.CoveringILP{
			NumVars: 1,
			Weights: []int64{1},
			Rows:    []lp.Row{{Terms: []lp.Term{{Col: 0, Coef: 1}}, B: 3}},
		}
		if _, err := ToHypergraph(p, Options{}); !errors.Is(err, ErrInfeasible) {
			t.Errorf("err = %v, want ErrInfeasible", err)
		}
	})
	t.Run("row too wide", func(t *testing.T) {
		p := &lp.CoveringILP{NumVars: 30, Weights: make([]int64, 30)}
		var terms []lp.Term
		for j := 0; j < 30; j++ {
			p.Weights[j] = 1
			terms = append(terms, lp.Term{Col: j, Coef: 1})
		}
		p.Rows = []lp.Row{{Terms: terms, B: 1}}
		if _, err := ToHypergraph(p, Options{MaxRowSize: 10}); !errors.Is(err, ErrRowTooWide) {
			t.Errorf("err = %v, want ErrRowTooWide", err)
		}
	})
	t.Run("invalid program", func(t *testing.T) {
		p := &lp.CoveringILP{NumVars: 1, Weights: []int64{0}}
		if _, err := ToHypergraph(p, Options{}); err == nil {
			t.Error("invalid program accepted")
		}
	})
}

func TestToZeroOneClaim18(t *testing.T) {
	// min 2x0 + 3x1 s.t. 2x0 + x1 ≥ 4, x0 + 3x1 ≥ 3.
	p := &lp.CoveringILP{
		NumVars: 2,
		Weights: []int64{2, 3},
		Rows: []lp.Row{
			{Terms: []lp.Term{{Col: 0, Coef: 2}, {Col: 1, Coef: 1}}, B: 4},
			{Terms: []lp.Term{{Col: 0, Coef: 1}, {Col: 1, Coef: 3}}, B: 3},
		},
	}
	red, err := ToZeroOne(p, Options{})
	if err != nil {
		t.Fatalf("ToZeroOne: %v", err)
	}
	// M = max(ceil(4/2), ceil(4/1), ceil(3/1), ceil(3/3)) = 4 → 3 bits each.
	if red.M != 4 {
		t.Errorf("M = %d, want 4", red.M)
	}
	if red.ZO.NumVars != 6 {
		t.Errorf("ZO vars = %d, want 6 (2 vars × 3 bits)", red.ZO.NumVars)
	}
	// Claim 18: f(A') ≤ f(A)·(⌊log M⌋+1), Δ(A') = Δ(A).
	if red.ZO.RowF() > p.RowF()*3 {
		t.Errorf("f(A') = %d exceeds f·B = %d", red.ZO.RowF(), p.RowF()*3)
	}
	if red.ZO.ColDelta() != p.ColDelta() {
		t.Errorf("Δ(A') = %d, want Δ(A) = %d", red.ZO.ColDelta(), p.ColDelta())
	}
	// Bit weights double per level.
	if red.ZO.Weights[0] != 2 || red.ZO.Weights[1] != 4 || red.ZO.Weights[2] != 8 {
		t.Errorf("bit weights = %v", red.ZO.Weights[:3])
	}
	// Round trip: bits (x0=2 → 010, x1=1 → 100... little-endian layout).
	bitsX := []int64{0, 1, 0, 1, 0, 0} // x0 = 2, x1 = 1
	x := red.AssignmentFromBits(bitsX)
	if x[0] != 2 || x[1] != 1 {
		t.Errorf("AssignmentFromBits = %v, want [2 1]", x)
	}
	// Value preservation: ZO objective equals original objective.
	if red.ZO.Value(bitsX) != p.Value(x) {
		t.Errorf("objective changed: %d vs %d", red.ZO.Value(bitsX), p.Value(x))
	}
}

func TestToZeroOneValuePreservationProperty(t *testing.T) {
	prop := func(seed int64) bool {
		p := randomILP(seed, 5, 4, 3, 6)
		red, err := ToZeroOne(p, Options{})
		if err != nil {
			return false
		}
		rng := rand.New(rand.NewSource(seed ^ 0x5eed))
		for trial := 0; trial < 20; trial++ {
			bitsX := make([]int64, red.ZO.NumVars)
			for c := range bitsX {
				bitsX[c] = int64(rng.Intn(2))
			}
			x := red.AssignmentFromBits(bitsX)
			if red.ZO.Value(bitsX) != p.Value(x) {
				return false
			}
			// Feasibility must also transfer: A'·bits ≥ b ⇔ A·x ≥ b.
			if red.ZO.IsFeasible(bitsX) != p.IsFeasible(x) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// randomILP generates a feasible random covering ILP with coefficients in
// [1, maxCoef] and demands that keep M small.
func randomILP(seed int64, n, m, f int, maxB int64) *lp.CoveringILP {
	rng := rand.New(rand.NewSource(seed))
	p := &lp.CoveringILP{NumVars: n}
	for j := 0; j < n; j++ {
		p.Weights = append(p.Weights, 1+rng.Int63n(9))
	}
	for i := 0; i < m; i++ {
		k := 1 + rng.Intn(f)
		cols := rng.Perm(n)[:k]
		var terms []lp.Term
		for _, c := range cols {
			terms = append(terms, lp.Term{Col: c, Coef: 1 + rng.Int63n(3)})
		}
		p.Rows = append(p.Rows, lp.Row{Terms: terms, B: 1 + rng.Int63n(maxB)})
	}
	return p
}

func TestSolveILPPipeline(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		p := randomILP(seed, 5, 4, 2, 5)
		res, err := SolveILP(p, core.DefaultOptions(), Options{PruneDominated: true})
		if err != nil {
			if errors.Is(err, ErrRowTooWide) {
				continue // expansion too large for this seed's M
			}
			t.Fatalf("seed %d: SolveILP: %v", seed, err)
		}
		if !p.IsFeasible(res.X) {
			t.Fatalf("seed %d: pipeline returned infeasible x = %v", seed, res.X)
		}
		if res.Value != p.Value(res.X) {
			t.Errorf("seed %d: reported value %d != recomputed %d", seed, res.Value, p.Value(res.X))
		}
		// Audit against the exact optimum: the paper proves (f+ε); certify
		// the conservative (rank'+ε) here and record the measured ratio.
		_, opt, err := lp.ExactILP(p, 0)
		if err != nil {
			t.Fatal(err)
		}
		fPrime := float64(res.Stats.HgRank)
		if float64(res.Value) > (fPrime+1)*float64(opt)+1e-9 {
			t.Errorf("seed %d: value %d > (rank'+ε)·OPT = %f", seed, res.Value, (fPrime+1)*float64(opt))
		}
		// Blowup bounds from Claim 18 / Lemma 14.
		bBits := 1
		for v := res.Stats.M; v > 1; v >>= 1 {
			bBits++
		}
		if res.Stats.HgRank > res.Stats.F*bBits {
			t.Errorf("seed %d: rank' = %d exceeds f·B = %d", seed, res.Stats.HgRank, res.Stats.F*bBits)
		}
		if res.Stats.SimulationFactor < 1 {
			t.Errorf("seed %d: simulation factor %f < 1", seed, res.Stats.SimulationFactor)
		}
	}
}

func TestSolveILPZeroOneFastPath(t *testing.T) {
	p := zoSample()
	res, err := SolveILP(p, core.DefaultOptions(), Options{})
	if err != nil {
		t.Fatalf("SolveILP: %v", err)
	}
	if !p.IsFeasible(res.X) {
		t.Fatal("infeasible")
	}
	_, opt, err := lp.ExactILP(p, 0)
	if err != nil {
		t.Fatal(err)
	}
	f := float64(p.RowF())
	if float64(res.Value) > (f+1)*float64(opt)+1e-9 {
		t.Errorf("value %d > (f+ε)·OPT = %f", res.Value, (f+1)*float64(opt))
	}
}

func TestSolveILPInfeasible(t *testing.T) {
	p := &lp.CoveringILP{
		NumVars: 1,
		Weights: []int64{1},
		Rows:    []lp.Row{{Terms: []lp.Term{{Col: 0, Coef: 0}}, B: 5}},
	}
	if _, err := SolveILP(p, core.DefaultOptions(), Options{}); err == nil {
		t.Error("infeasible ILP accepted")
	}
}

func TestPerVariableBits(t *testing.T) {
	// One variable needs M=8 (4 bits), the other only 1 (1 bit).
	p := &lp.CoveringILP{
		NumVars: 2,
		Weights: []int64{1, 1},
		Rows: []lp.Row{
			{Terms: []lp.Term{{Col: 0, Coef: 1}}, B: 8},
			{Terms: []lp.Term{{Col: 1, Coef: 5}}, B: 5},
		},
	}
	uniform, err := ToZeroOne(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	perVar, err := ToZeroOne(p, Options{PerVariableBits: true})
	if err != nil {
		t.Fatal(err)
	}
	if perVar.ZO.NumVars >= uniform.ZO.NumVars {
		t.Errorf("per-variable bits did not shrink: %d vs %d",
			perVar.ZO.NumVars, uniform.ZO.NumVars)
	}
	// Both must represent the optimum x = (8, 1).
	for _, red := range []*ILPReduction{uniform, perVar} {
		found := false
		for mask := 0; mask < 1<<red.ZO.NumVars; mask++ {
			bitsX := make([]int64, red.ZO.NumVars)
			for c := range bitsX {
				if mask&(1<<c) != 0 {
					bitsX[c] = 1
				}
			}
			x := red.AssignmentFromBits(bitsX)
			if x[0] == 8 && x[1] == 1 {
				found = true
				break
			}
		}
		if !found {
			t.Error("optimal assignment not representable")
		}
	}
}
