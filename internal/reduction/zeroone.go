// Package reduction implements the distributed reductions of Section 5 of
// "Optimal Distributed Covering Algorithms": zero-one covering programs to
// Minimum Weight Hypergraph Vertex Cover (Lemma 14) and general covering
// ILPs to zero-one programs by binary expansion over the box [0, M]
// (Claim 18, Proposition 17), together with the solution mappings back.
// Composing the two with the core algorithm yields the Theorem 19 pipeline.
package reduction

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"

	"distcover/internal/hypergraph"
	"distcover/internal/lp"
)

// Errors returned by the reductions.
var (
	// ErrRowTooWide indicates a constraint whose 2^|σ| subset enumeration
	// exceeds Options.MaxRowSize.
	ErrRowTooWide = errors.New("reduction: constraint has too many nonzeros for subset enumeration")
	// ErrInfeasible indicates a constraint unsatisfiable even with every
	// variable at its maximum (for the zero-one reduction: with every
	// variable set to 1).
	ErrInfeasible = errors.New("reduction: infeasible covering constraint")
)

// Options configures the reductions.
type Options struct {
	// MaxRowSize caps |σ_i| per constraint; the Lemma 14 enumeration costs
	// 2^|σ_i|. ≤ 0 means DefaultMaxRowSize.
	MaxRowSize int
	// PruneDominated removes hyperedges that are supersets of other
	// hyperedges. Covers are preserved exactly: stabbing a subset edge stabs
	// every superset. Reduces Δ′ substantially on dense rows.
	PruneDominated bool
	// PerVariableBits uses ⌈log2(bound_j+1)⌉ bits per variable instead of
	// the paper's uniform ⌈log2 M⌉+1; the Claim 18 guarantees still hold
	// since per-variable bounds never exceed M.
	PerVariableBits bool
}

// DefaultMaxRowSize bounds 2^row enumeration to about a million subsets.
const DefaultMaxRowSize = 20

// ZeroOneReduction is the output of ToHypergraph: the MWHVC instance plus
// the data needed to map covers back to assignments.
type ZeroOneReduction struct {
	// G is the hypergraph of Lemma 14; vertex j corresponds to variable j.
	G *hypergraph.Hypergraph
	// NumVars is the number of variables (= vertices).
	NumVars int
	// Edges counts hyperedges before deduplication/pruning, for blowup
	// reporting.
	RawEdges int
}

// ToHypergraph reduces a feasible zero-one covering program to MWHVC per
// Lemma 14: for every constraint i and every subset S of its support σ_i
// whose indicator fails the constraint, the complement σ_i \ S becomes a
// hyperedge. A set C ⊆ [n] is a vertex cover of the result iff its
// indicator satisfies every constraint.
//
// The input is *interpreted* as a zero-one program: variables range over
// {0,1} regardless of how large the coefficients would allow integral
// variables to grow (being zero-one is part of the program class, not a
// property of the matrix — Section 5.2). Rows unsatisfiable with every
// variable at 1 yield ErrInfeasible.
func ToHypergraph(p *lp.CoveringILP, opts Options) (*ZeroOneReduction, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	maxRow := opts.MaxRowSize
	if maxRow <= 0 {
		maxRow = DefaultMaxRowSize
	}
	b := hypergraph.NewBuilder(p.NumVars, len(p.Rows))
	for _, w := range p.Weights {
		b.AddVertex(w)
	}
	seen := make(map[string]bool)
	raw := 0
	var edges [][]hypergraph.VertexID
	for i, row := range p.Rows {
		if row.B <= 0 {
			continue // trivially satisfied
		}
		support := make([]int, 0, len(row.Terms))
		coefs := make([]int64, 0, len(row.Terms))
		var total int64
		for _, t := range row.Terms {
			if t.Coef > 0 {
				support = append(support, t.Col)
				coefs = append(coefs, t.Coef)
				total += t.Coef
			}
		}
		if total < row.B {
			return nil, fmt.Errorf("%w: row %d reaches at most %d < %d",
				ErrInfeasible, i, total, row.B)
		}
		if len(support) > maxRow {
			return nil, fmt.Errorf("%w: row %d has %d nonzeros (max %d)",
				ErrRowTooWide, i, len(support), maxRow)
		}
		// Enumerate S ⊆ σ_i with A_i·I_S < b_i; edge = σ_i \ S. Iterating
		// over the bitmask of S keeps the sum incremental-free but simple.
		for mask := 0; mask < 1<<len(support); mask++ {
			var sum int64
			for k := range support {
				if mask&(1<<k) != 0 {
					sum += coefs[k]
				}
			}
			if sum >= row.B {
				continue // S satisfies the constraint; no edge
			}
			raw++
			edge := make([]hypergraph.VertexID, 0, len(support))
			for k, col := range support {
				if mask&(1<<k) == 0 {
					edge = append(edge, hypergraph.VertexID(col))
				}
			}
			key := edgeKey(edge)
			if seen[key] {
				continue
			}
			seen[key] = true
			edges = append(edges, edge)
		}
	}
	if opts.PruneDominated {
		edges = pruneDominated(edges)
	}
	for _, e := range edges {
		b.AddEdge(e...)
	}
	g, err := b.Build()
	if err != nil {
		return nil, err
	}
	return &ZeroOneReduction{G: g, NumVars: p.NumVars, RawEdges: raw}, nil
}

// CoverToAssignment maps a vertex cover of the reduced hypergraph to the
// zero-one assignment it encodes.
func (r *ZeroOneReduction) CoverToAssignment(cover []hypergraph.VertexID) []int64 {
	x := make([]int64, r.NumVars)
	for _, v := range cover {
		if v >= 0 && int(v) < r.NumVars {
			x[v] = 1
		}
	}
	return x
}

// edgeKey canonicalizes a sorted edge for deduplication.
func edgeKey(edge []hypergraph.VertexID) string {
	var sb strings.Builder
	for i, v := range edge {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(strconv.Itoa(int(v)))
	}
	return sb.String()
}

// pruneDominated drops edges that are strict supersets of another edge.
// Edges are assumed sorted and deduplicated. A cover stabbing the subset
// necessarily stabs the superset, so the feasible covers are unchanged.
func pruneDominated(edges [][]hypergraph.VertexID) [][]hypergraph.VertexID {
	sort.Slice(edges, func(i, j int) bool { return len(edges[i]) < len(edges[j]) })
	kept := make(map[string]bool, len(edges))
	var out [][]hypergraph.VertexID
	for _, e := range edges {
		if hasKeptSubset(e, kept) {
			continue
		}
		kept[edgeKey(e)] = true
		out = append(out, e)
	}
	return out
}

// hasKeptSubset enumerates the proper, non-empty subsets of e and reports
// whether any was already kept. Edges have at most ~f·logM elements, so the
// 2^|e| enumeration is bounded by the same budget as the reduction itself.
func hasKeptSubset(e []hypergraph.VertexID, kept map[string]bool) bool {
	n := len(e)
	sub := make([]hypergraph.VertexID, 0, n)
	for mask := 1; mask < 1<<n; mask++ {
		if mask == 1<<n-1 {
			continue // the edge itself
		}
		sub = sub[:0]
		for k := 0; k < n; k++ {
			if mask&(1<<k) != 0 {
				sub = append(sub, e[k])
			}
		}
		if kept[edgeKey(sub)] {
			return true
		}
	}
	return false
}
