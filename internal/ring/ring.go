// Package ring implements the consistent-hash ring that routes instances
// and sessions across a set of coverd coordinators.
//
// Every coordinator in a ring deployment is started with the same static
// membership list (coverd -ring); each list entry is the coordinator's
// advertised HTTP address and doubles as its hash identity. The ring places
// VNodes virtual nodes per member on a 64-bit circle (positions are the
// first 8 bytes of SHA-256 over "member\x00index", so any process that
// knows the membership list reconstructs the identical ring — routing is a
// pure function of the list, never of process state). A key — the
// canonical Instance.Hash for solves, the session id for sessions — is
// hashed to Probes positions on the circle; each probe resolves to the
// virtual node that follows it clockwise, and the key is owned by the
// member of the probe with the smallest clockwise distance (multi-probe
// consistent hashing). Probing discounts members that happen to own long
// arcs, which is what holds the balance bound at a modest vnode count.
//
// The two properties the rest of the system leans on, both enforced by the
// package property tests:
//
//   - Determinism: every coordinator and every ring-aware client computes
//     the same owner for the same key, with no coordination beyond the
//     shared membership list.
//   - Bounded movement: when a member joins or leaves, only keys on the
//     hash arcs adjacent to that member's virtual nodes change owner; every
//     other key keeps its owner. This is what makes failover cheap — a dead
//     coordinator's sessions move to their next-arc owners and nothing else
//     moves at all.
package ring

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"sort"
)

// DefaultVNodes is the virtual-node count per member used when callers
// pass 0. 128 vnodes with Probes-way lookup keeps the maximum/minimum
// key-share ratio across members within 1.3 (property-tested) while the
// ring stays small enough that a full rebuild is microseconds.
const DefaultVNodes = 128

// Probes is the number of independent circle positions tried per key;
// the probe closest (clockwise) to a virtual node wins. 3 probes cut the
// share spread of successor-only lookup by ~3× (empirically ≤1.24
// max/min over random memberships of 2..10, vs 1.36+ for one probe) at
// the cost of two extra hashes per lookup.
const Probes = 3

// point is one virtual node: a position on the circle and the index of the
// member that owns the arc ending at it.
type point struct {
	pos    uint64
	member int32
}

// Ring is an immutable consistent-hash ring over a member list. Build one
// with New; all methods are safe for concurrent use.
type Ring struct {
	vnodes  int
	members []string // sorted, unique
	points  []point  // sorted by (pos, member)
}

// New builds the ring for the given membership list with vnodes virtual
// nodes per member (0 = DefaultVNodes). The input order does not matter
// and duplicates are rejected: two processes given permutations of the
// same list build identical rings.
func New(members []string, vnodes int) (*Ring, error) {
	if len(members) == 0 {
		return nil, fmt.Errorf("ring: empty membership list")
	}
	if vnodes <= 0 {
		vnodes = DefaultVNodes
	}
	sorted := append([]string(nil), members...)
	sort.Strings(sorted)
	for i, m := range sorted {
		if m == "" {
			return nil, fmt.Errorf("ring: empty member name")
		}
		if i > 0 && sorted[i-1] == m {
			return nil, fmt.Errorf("ring: duplicate member %q", m)
		}
	}
	r := &Ring{
		vnodes:  vnodes,
		members: sorted,
		points:  make([]point, 0, vnodes*len(sorted)),
	}
	var buf [8]byte
	for mi, m := range sorted {
		for v := 0; v < vnodes; v++ {
			binary.BigEndian.PutUint64(buf[:], uint64(v))
			sum := sha256.Sum256(append(append([]byte(m), 0), buf[:]...))
			r.points = append(r.points, point{
				pos:    binary.BigEndian.Uint64(sum[:8]),
				member: int32(mi),
			})
		}
	}
	// Position collisions are vanishingly rare (64-bit positions) but the
	// tie-break must still be deterministic: lower member index wins.
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].pos != r.points[j].pos {
			return r.points[i].pos < r.points[j].pos
		}
		return r.points[i].member < r.points[j].member
	})
	return r, nil
}

// hashProbe maps (key, probe index) onto the circle.
func hashProbe(key string, probe int) uint64 {
	buf := make([]byte, 0, len(key)+2)
	buf = append(buf, key...)
	buf = append(buf, 0, byte(probe))
	sum := sha256.Sum256(buf)
	return binary.BigEndian.Uint64(sum[:8])
}

// Owner returns the member that owns key under the full membership list:
// of the Probes probe positions, the one with the smallest clockwise
// distance to its successor virtual node wins (earlier probe on ties, so
// the choice is deterministic).
func (r *Ring) Owner(key string) string {
	best, bestDist := -1, uint64(0)
	for p := 0; p < Probes; p++ {
		h := hashProbe(key, p)
		i := r.firstPoint(h)
		// uint64 subtraction wraps, which is exactly mod-2^64 clockwise
		// distance when firstPoint wrapped past the top of the circle.
		if d := r.points[i].pos - h; best == -1 || d < bestDist {
			best, bestDist = i, d
		}
	}
	return r.members[r.points[best].member]
}

// OwnerLive returns the member that owns key when the members for which
// down reports true are excluded: each probe's walk continues clockwise
// past virtual nodes of down members before the probes compete, which
// routes identically to a ring rebuilt without the down members — a down
// member's keys fall to their next-probe or next-arc owners and every
// other key keeps its owner (the same bounded-movement guarantee as an
// actual leave, property-tested). Returns "" when every member is down.
// A nil down means no member is down.
func (r *Ring) OwnerLive(key string, down func(member string) bool) string {
	if down == nil {
		return r.Owner(key)
	}
	// Member-level memoization keeps the scan O(points) per probe even
	// when most of the ring is down.
	status := make(map[int32]bool, len(r.members))
	isDown := func(m int32) bool {
		d, seen := status[m]
		if !seen {
			d = down(r.members[m])
			status[m] = d
		}
		return d
	}
	best, bestDist := int32(-1), uint64(0)
	for p := 0; p < Probes; p++ {
		h := hashProbe(key, p)
		start := r.firstPoint(h)
		for i := 0; i < len(r.points); i++ {
			pt := r.points[(start+i)%len(r.points)]
			if isDown(pt.member) {
				continue
			}
			if d := pt.pos - h; best == -1 || d < bestDist {
				best, bestDist = pt.member, d
			}
			break
		}
	}
	if best == -1 {
		return ""
	}
	return r.members[best]
}

// firstPoint returns the index of the first virtual node at or clockwise
// after pos, wrapping past the top of the circle.
func (r *Ring) firstPoint(pos uint64) int {
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].pos >= pos })
	if i == len(r.points) {
		return 0
	}
	return i
}

// Members returns the sorted membership list (a copy).
func (r *Ring) Members() []string {
	return append([]string(nil), r.members...)
}

// VNodes returns the virtual-node count per member.
func (r *Ring) VNodes() int { return r.vnodes }

// Contains reports whether member is on the ring.
func (r *Ring) Contains(member string) bool {
	i := sort.SearchStrings(r.members, member)
	return i < len(r.members) && r.members[i] == member
}
