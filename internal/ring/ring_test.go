package ring

import (
	"fmt"
	"math/rand"
	"testing"
)

// TestRingDeterministicAcrossProcesses: routing must be a pure function of
// the membership set. Rings built from arbitrary permutations of the same
// list (as two independently started coordinators would) agree on the
// owner of every key, and so does a ring-aware client that learned the
// membership from GET /v1/ring.
func TestRingDeterministicAcrossProcesses(t *testing.T) {
	members := []string{
		"10.0.0.1:8080", "10.0.0.2:8080", "10.0.0.3:8080",
		"10.0.0.4:8080", "10.0.0.5:8080",
	}
	ref, err := New(members, 0)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 8; trial++ {
		shuffled := append([]string(nil), members...)
		rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
		other, err := New(shuffled, 0)
		if err != nil {
			t.Fatal(err)
		}
		for k := 0; k < 5000; k++ {
			key := fmt.Sprintf("key-%d-%d", trial, rng.Int63())
			if got, want := other.Owner(key), ref.Owner(key); got != want {
				t.Fatalf("trial %d key %s: owner %s on shuffled ring, %s on reference", trial, key, got, want)
			}
		}
	}
	if _, err := New([]string{"a", "b", "a"}, 0); err == nil {
		t.Fatal("duplicate member accepted")
	}
	if _, err := New(nil, 0); err == nil {
		t.Fatal("empty membership accepted")
	}
}

// TestRingBalance: with the default 128 virtual nodes per member, the key
// share of the most loaded member stays within 1.3× of the least loaded
// one, across several member counts and address shapes.
func TestRingBalance(t *testing.T) {
	for _, n := range []int{2, 3, 5, 8} {
		members := make([]string, n)
		for i := range members {
			members[i] = fmt.Sprintf("coord-%d.cover.internal:8080", i)
		}
		r, err := New(members, 0)
		if err != nil {
			t.Fatal(err)
		}
		counts := make(map[string]int, n)
		rng := rand.New(rand.NewSource(int64(7 + n)))
		const keys = 200_000
		for k := 0; k < keys; k++ {
			counts[r.Owner(fmt.Sprintf("%016x%016x", rng.Uint64(), rng.Uint64()))]++
		}
		minC, maxC := keys, 0
		for _, m := range members {
			c := counts[m]
			if c < minC {
				minC = c
			}
			if c > maxC {
				maxC = c
			}
		}
		if minC == 0 {
			t.Fatalf("%d members: a member owns no keys at all", n)
		}
		if ratio := float64(maxC) / float64(minC); ratio > 1.3 {
			t.Fatalf("%d members: max/min key share %.3f exceeds 1.3 (counts %v)", n, ratio, counts)
		}
	}
}

// TestRingBoundedMovement: across 1000 random join/leave transitions, a
// key changes owner only when its arc is affected — on a join the only
// allowed new owner is the joining member, on a leave the only keys that
// move are those the leaving member owned. Everything else stays put.
func TestRingBoundedMovement(t *testing.T) {
	rng := rand.New(rand.NewSource(20260807))
	members := map[string]bool{}
	for i := 0; i < 4; i++ {
		members[fmt.Sprintf("seed-%d:8080", i)] = true
	}
	list := func() []string {
		out := make([]string, 0, len(members))
		for m := range members {
			out = append(out, m)
		}
		return out
	}
	keys := make([]string, 2000)
	for i := range keys {
		keys[i] = fmt.Sprintf("%016x", rng.Uint64())
	}
	cur, err := New(list(), 0)
	if err != nil {
		t.Fatal(err)
	}
	owners := make([]string, len(keys))
	for i, k := range keys {
		owners[i] = cur.Owner(k)
	}
	nextID := 4
	for trans := 0; trans < 1000; trans++ {
		join := len(members) <= 1 || (len(members) < 12 && rng.Intn(2) == 0)
		var changed string
		if join {
			changed = fmt.Sprintf("member-%d:8080", nextID)
			nextID++
			members[changed] = true
		} else {
			ms := list()
			changed = ms[rng.Intn(len(ms))]
			delete(members, changed)
		}
		next, err := New(list(), 0)
		if err != nil {
			t.Fatal(err)
		}
		for i, k := range keys {
			newOwner := next.Owner(k)
			if newOwner == owners[i] {
				continue
			}
			if join && newOwner != changed {
				t.Fatalf("transition %d (join %s): key %s moved %s→%s, not to the joiner",
					trans, changed, k, owners[i], newOwner)
			}
			if !join && owners[i] != changed {
				t.Fatalf("transition %d (leave %s): key %s moved %s→%s but its old owner stayed",
					trans, changed, k, owners[i], newOwner)
			}
			owners[i] = newOwner
		}
		cur = next
	}
}

// TestRingOwnerLiveMatchesLeave: excluding down members at lookup time must
// route exactly like a ring rebuilt without them — the takeover owner a
// survivor computes is the owner the key would have had if the dead
// coordinator had never been on the ring.
func TestRingOwnerLiveMatchesLeave(t *testing.T) {
	members := []string{"a:1", "b:1", "c:1", "d:1", "e:1"}
	full, err := New(members, 0)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 20; trial++ {
		down := map[string]bool{}
		for _, m := range members {
			if rng.Intn(3) == 0 {
				down[m] = true
			}
		}
		if len(down) == len(members) {
			delete(down, members[rng.Intn(len(members))])
		}
		var alive []string
		for _, m := range members {
			if !down[m] {
				alive = append(alive, m)
			}
		}
		reduced, err := New(alive, 0)
		if err != nil {
			t.Fatal(err)
		}
		for k := 0; k < 2000; k++ {
			key := fmt.Sprintf("s-%d-%d", trial, k)
			got := full.OwnerLive(key, func(m string) bool { return down[m] })
			if want := reduced.Owner(key); got != want {
				t.Fatalf("trial %d key %s: OwnerLive=%s, rebuilt ring says %s (down %v)", trial, key, got, want, down)
			}
		}
	}
	if got := full.OwnerLive("x", func(string) bool { return true }); got != "" {
		t.Fatalf("all-down ring returned owner %q, want empty", got)
	}
	if got, want := full.OwnerLive("x", nil), full.Owner("x"); got != want {
		t.Fatalf("nil down: OwnerLive %q != Owner %q", got, want)
	}
}
