// Package telemetry is the solve-tracing layer threaded through every
// engine: the lockstep simulator, the chunk-parallel flat runner, the
// CONGEST runners and the multi-process cluster coordinator/peer all
// invoke a Tracer at phase boundaries when one is configured, and stay
// strictly zero-overhead (a nil check, no allocation) when it is not —
// the exactly-gated allocation counts in BENCH_baseline.json hold with
// tracing disabled.
//
// The package defines two things: the Tracer hook interface the engines
// call into, and Recorder, the standard implementation that accumulates
// the hooks into a JSON-serializable Report (per-iteration phase
// timings, chunk imbalance, per-peer exchange latency and wire volume,
// protocol round/message totals). coverd adapts the same interface onto
// its Prometheus registry, so one set of hooks feeds both the opt-in
// per-solve trace report and the service metrics.
package telemetry

import (
	"crypto/rand"
	"encoding/hex"
	"sort"
	"sync"
	"time"
)

// Phase names passed to Tracer.Phase. Iteration 0 carries only PhaseInit
// (state construction + warm start); iterations ≥ 1 carry the lockstep
// vertex/edge/gather cadence. Engines that cannot split phases (the
// CONGEST message engines) report one PhaseProtocol span for the whole
// run.
const (
	PhaseInit     = "init"
	PhaseVertex   = "vertex"
	PhaseEdge     = "edge"
	PhaseGather   = "gather"
	PhaseProtocol = "protocol"
)

// Exchange kinds passed to Tracer.Exchange: the two per-iteration
// synchronization points of the partitioned solver (boundary levels
// after the vertex phase, the global coverage count after the edge
// phase).
const (
	ExchangeBoundary = "boundary"
	ExchangeCoverage = "coverage"
)

// Frame directions passed to Tracer.Frame.
const (
	DirSent     = "sent"
	DirReceived = "received"
)

// Tracer receives solve-progress hooks. Implementations must be safe for
// concurrent use: the cluster coordinator and the peer-side partition
// runner invoke one tracer from independent goroutines, and coverd
// shares one adapter across its worker pool.
//
// All hooks are called on hot paths; implementations should be cheap and
// must not block.
type Tracer interface {
	// Phase reports one completed solver phase of the given iteration.
	// maxChunk is the longest single parallel chunk of the phase (chunk
	// imbalance visibility for the flat runner); 0 when the phase is not
	// chunked.
	Phase(iteration int, phase string, d, maxChunk time.Duration)
	// Exchange reports one completed peer exchange: the coordinator
	// passes the peer address it waited on, the partition runner passes
	// "" (recorded as "coordinator") for its side of the same wait.
	Exchange(peer, kind string, iteration int, wait time.Duration)
	// Frame reports one wire frame of the cluster protocol: direction,
	// frame kind (hello/setup/boundary/coverage/allb/allc/result/error)
	// and its full on-wire size (header + payload).
	Frame(peer, dir, kind string, bytes int)
	// Protocol reports the round and message totals of a CONGEST engine
	// run.
	Protocol(rounds int, messages int64)
}

// CacheTracer is an optional extension of Tracer for the content-addressed
// instance fabric: a cluster peer whose tracer also implements this
// interface receives one hook per setup handshake, reporting whether the
// requested instance was already cached (hit) and the decoded size of the
// instance involved. Implementations that don't care simply don't
// implement it — the Tracer interface itself is unchanged, so existing
// implementations keep compiling.
type CacheTracer interface {
	// InstanceCache reports one peer-cache lookup: hit=false means the
	// instance had to be re-synced over the wire. bytes is the decoded
	// in-memory size of the instance (hypergraph.MemoryBytes).
	InstanceCache(hit bool, bytes int)
}

// Multi fans every hook out to all non-nil tracers. It returns nil when
// none remain (so callers can keep the nil-means-disabled contract), and
// the single tracer itself when only one remains.
func Multi(ts ...Tracer) Tracer {
	live := make([]Tracer, 0, len(ts))
	for _, t := range ts {
		if t != nil {
			live = append(live, t)
		}
	}
	switch len(live) {
	case 0:
		return nil
	case 1:
		return live[0]
	}
	return multiTracer(live)
}

type multiTracer []Tracer

func (m multiTracer) Phase(iteration int, phase string, d, maxChunk time.Duration) {
	for _, t := range m {
		t.Phase(iteration, phase, d, maxChunk)
	}
}

func (m multiTracer) Exchange(peer, kind string, iteration int, wait time.Duration) {
	for _, t := range m {
		t.Exchange(peer, kind, iteration, wait)
	}
}

func (m multiTracer) Frame(peer, dir, kind string, bytes int) {
	for _, t := range m {
		t.Frame(peer, dir, kind, bytes)
	}
}

func (m multiTracer) Protocol(rounds int, messages int64) {
	for _, t := range m {
		t.Protocol(rounds, messages)
	}
}

// InstanceCache forwards the optional CacheTracer hook to every fanned-out
// tracer that implements it.
func (m multiTracer) InstanceCache(hit bool, bytes int) {
	for _, t := range m {
		if ct, ok := t.(CacheTracer); ok {
			ct.InstanceCache(hit, bytes)
		}
	}
}

// maxRecordedIterations caps the per-iteration detail a Recorder keeps.
// Totals (PhaseSeconds, peer stats) always accumulate; only the
// per-iteration breakdown is bounded, so a pathological million-iteration
// run cannot balloon the report.
const maxRecordedIterations = 4096

// NewTraceID returns a fresh random 16-hex-digit trace id.
func NewTraceID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand failure is unrecoverable everywhere else in the
		// system too; a fixed id only degrades log correlation.
		return "0000000000000000"
	}
	return hex.EncodeToString(b[:])
}

// Recorder is the standard Tracer: it accumulates hooks under a mutex
// and snapshots them into a Report. The zero value is not usable; create
// with NewRecorder.
type Recorder struct {
	mu       sync.Mutex
	traceID  string
	engine   string
	start    time.Time
	total    time.Duration
	running  bool
	phase    map[string]time.Duration
	iters    []iterAcc
	peers    map[string]*peerAcc
	rounds   int
	messages int64

	cacheHits, cacheMisses int
}

type iterAcc struct {
	iteration               int
	initD, vertexD, edgeD   time.Duration
	gatherD, maxChunkD      time.Duration
	boundaryWaitD, covWaitD time.Duration
	protocolD               time.Duration
	seen                    bool
}

type peerAcc struct {
	exchanges      int
	waitD, maxWait time.Duration
	framesSent     int64
	framesRecv     int64
	bytesSent      int64
	bytesRecv      int64
}

// NewRecorder returns a Recorder with the given trace id; an empty id
// gets a fresh random one.
func NewRecorder(traceID string) *Recorder {
	if traceID == "" {
		traceID = NewTraceID()
	}
	return &Recorder{
		traceID: traceID,
		phase:   make(map[string]time.Duration),
		peers:   make(map[string]*peerAcc),
	}
}

// TraceID returns the recorder's trace id.
func (r *Recorder) TraceID() string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.traceID
}

// Start marks the beginning of a timed solve on the named engine.
// Starting again resets the wall-clock span but keeps accumulated hook
// data, so a session recorder spans the initial solve plus its updates.
func (r *Recorder) Start(engine string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.engine = engine
	r.start = time.Now()
	r.running = true
}

// Stop closes the span opened by Start, adding it to the total.
func (r *Recorder) Stop() {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.running {
		r.total += time.Since(r.start)
		r.running = false
	}
}

func (r *Recorder) iter(iteration int) *iterAcc {
	// Iterations arrive in order from each goroutine; index by iteration
	// number so the coordinator and a partition runner sharing one
	// recorder merge into the same row.
	if iteration < 0 || iteration >= maxRecordedIterations {
		return nil
	}
	for len(r.iters) <= iteration {
		r.iters = append(r.iters, iterAcc{iteration: len(r.iters)})
	}
	it := &r.iters[iteration]
	it.seen = true
	return it
}

// Phase implements Tracer.
func (r *Recorder) Phase(iteration int, phase string, d, maxChunk time.Duration) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.phase[phase] += d
	it := r.iter(iteration)
	if it == nil {
		return
	}
	switch phase {
	case PhaseInit:
		it.initD += d
	case PhaseVertex:
		it.vertexD += d
	case PhaseEdge:
		it.edgeD += d
	case PhaseGather:
		it.gatherD += d
	case PhaseProtocol:
		it.protocolD += d
	}
	if maxChunk > it.maxChunkD {
		it.maxChunkD = maxChunk
	}
}

// Exchange implements Tracer.
func (r *Recorder) Exchange(peer, kind string, iteration int, wait time.Duration) {
	if peer == "" {
		peer = "coordinator"
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	p := r.peers[peer]
	if p == nil {
		p = &peerAcc{}
		r.peers[peer] = p
	}
	p.exchanges++
	p.waitD += wait
	if wait > p.maxWait {
		p.maxWait = wait
	}
	if it := r.iter(iteration); it != nil {
		switch kind {
		case ExchangeBoundary:
			it.boundaryWaitD += wait
		case ExchangeCoverage:
			it.covWaitD += wait
		}
	}
}

// Frame implements Tracer.
func (r *Recorder) Frame(peer, dir, kind string, bytes int) {
	if peer == "" {
		peer = "coordinator"
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	p := r.peers[peer]
	if p == nil {
		p = &peerAcc{}
		r.peers[peer] = p
	}
	if dir == DirSent {
		p.framesSent++
		p.bytesSent += int64(bytes)
	} else {
		p.framesRecv++
		p.bytesRecv += int64(bytes)
	}
}

// Protocol implements Tracer.
func (r *Recorder) Protocol(rounds int, messages int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.rounds = rounds
	r.messages += messages
}

// InstanceCache implements the optional CacheTracer extension.
func (r *Recorder) InstanceCache(hit bool, bytes int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if hit {
		r.cacheHits++
	} else {
		r.cacheMisses++
	}
}

// Report is the JSON trace report attached to solve results when tracing
// is requested. All durations are seconds.
type Report struct {
	// TraceID correlates this report with coordinator and peer log lines
	// of the same solve.
	TraceID string `json:"trace_id,omitempty"`
	// Engine that executed the (last) solve: sim, flat, cluster,
	// congest, …
	Engine string `json:"engine,omitempty"`
	// TotalSeconds is the wall-clock total between Start and Stop,
	// accumulated across spans for session recorders.
	TotalSeconds float64 `json:"total_seconds"`
	// PhaseSeconds sums each phase across all iterations.
	PhaseSeconds map[string]float64 `json:"phase_seconds,omitempty"`
	// Iterations breaks timings down per lockstep iteration (row 0 is
	// state construction / warm start). Capped at 4096 rows; totals
	// above keep accumulating past the cap.
	Iterations []IterationTiming `json:"iterations,omitempty"`
	// Peers reports per-peer exchange latency and wire volume for
	// cluster solves ("coordinator" is the peer-side view of the
	// coordinator connection).
	Peers []PeerStats `json:"peers,omitempty"`
	// Rounds and Messages are CONGEST protocol totals when a message
	// engine ran.
	Rounds   int   `json:"rounds,omitempty"`
	Messages int64 `json:"messages,omitempty"`
	// InstanceCacheHits and InstanceCacheMisses count the peer-side
	// content-addressed instance cache lookups observed by this recorder
	// (populated on peer processes, not the coordinator).
	InstanceCacheHits   int `json:"instance_cache_hits,omitempty"`
	InstanceCacheMisses int `json:"instance_cache_misses,omitempty"`
}

// IterationTiming is one row of Report.Iterations.
type IterationTiming struct {
	Iteration           int     `json:"iteration"`
	InitSeconds         float64 `json:"init_seconds,omitempty"`
	VertexSeconds       float64 `json:"vertex_seconds,omitempty"`
	EdgeSeconds         float64 `json:"edge_seconds,omitempty"`
	GatherSeconds       float64 `json:"gather_seconds,omitempty"`
	ProtocolSeconds     float64 `json:"protocol_seconds,omitempty"`
	MaxChunkSeconds     float64 `json:"max_chunk_seconds,omitempty"`
	BoundaryWaitSeconds float64 `json:"boundary_wait_seconds,omitempty"`
	CoverageWaitSeconds float64 `json:"coverage_wait_seconds,omitempty"`
}

// PeerStats is one row of Report.Peers.
type PeerStats struct {
	Peer           string  `json:"peer"`
	Exchanges      int     `json:"exchanges"`
	WaitSeconds    float64 `json:"wait_seconds"`
	MaxWaitSeconds float64 `json:"max_wait_seconds"`
	FramesSent     int64   `json:"frames_sent"`
	FramesReceived int64   `json:"frames_received"`
	BytesSent      int64   `json:"bytes_sent"`
	BytesReceived  int64   `json:"bytes_received"`
}

// Report snapshots the accumulated data. Safe to call while hooks are
// still arriving; a Start without a matching Stop contributes its
// in-flight elapsed time.
func (r *Recorder) Report() *Report {
	r.mu.Lock()
	defer r.mu.Unlock()
	rep := &Report{
		TraceID:             r.traceID,
		Engine:              r.engine,
		TotalSeconds:        r.total.Seconds(),
		Rounds:              r.rounds,
		Messages:            r.messages,
		InstanceCacheHits:   r.cacheHits,
		InstanceCacheMisses: r.cacheMisses,
	}
	if r.running {
		rep.TotalSeconds += time.Since(r.start).Seconds()
	}
	if len(r.phase) > 0 {
		rep.PhaseSeconds = make(map[string]float64, len(r.phase))
		for k, v := range r.phase {
			rep.PhaseSeconds[k] = v.Seconds()
		}
	}
	for _, it := range r.iters {
		if !it.seen {
			continue
		}
		rep.Iterations = append(rep.Iterations, IterationTiming{
			Iteration:           it.iteration,
			InitSeconds:         it.initD.Seconds(),
			VertexSeconds:       it.vertexD.Seconds(),
			EdgeSeconds:         it.edgeD.Seconds(),
			GatherSeconds:       it.gatherD.Seconds(),
			ProtocolSeconds:     it.protocolD.Seconds(),
			MaxChunkSeconds:     it.maxChunkD.Seconds(),
			BoundaryWaitSeconds: it.boundaryWaitD.Seconds(),
			CoverageWaitSeconds: it.covWaitD.Seconds(),
		})
	}
	names := make([]string, 0, len(r.peers))
	for name := range r.peers {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		p := r.peers[name]
		rep.Peers = append(rep.Peers, PeerStats{
			Peer:           name,
			Exchanges:      p.exchanges,
			WaitSeconds:    p.waitD.Seconds(),
			MaxWaitSeconds: p.maxWait.Seconds(),
			FramesSent:     p.framesSent,
			FramesReceived: p.framesRecv,
			BytesSent:      p.bytesSent,
			BytesReceived:  p.bytesRecv,
		})
	}
	return rep
}
