package telemetry

import (
	"encoding/json"
	"sync"
	"testing"
	"time"
)

func TestRecorderReport(t *testing.T) {
	r := NewRecorder("abc123")
	r.Start("flat")
	r.Phase(0, PhaseInit, 3*time.Millisecond, 0)
	r.Phase(1, PhaseVertex, 2*time.Millisecond, time.Millisecond)
	r.Phase(1, PhaseEdge, 4*time.Millisecond, 3*time.Millisecond)
	r.Phase(1, PhaseGather, time.Millisecond, 0)
	r.Phase(2, PhaseVertex, time.Millisecond, 0)
	r.Exchange("peerB", ExchangeBoundary, 1, 5*time.Millisecond)
	r.Exchange("peerA", ExchangeCoverage, 1, 2*time.Millisecond)
	r.Exchange("", ExchangeBoundary, 1, time.Millisecond)
	r.Frame("peerA", DirSent, "setup", 100)
	r.Frame("peerA", DirReceived, "boundary", 40)
	r.Protocol(8, 123)
	r.Stop()

	rep := r.Report()
	if rep.TraceID != "abc123" {
		t.Fatalf("trace id %q", rep.TraceID)
	}
	if rep.Engine != "flat" {
		t.Fatalf("engine %q", rep.Engine)
	}
	if rep.TotalSeconds <= 0 {
		t.Fatalf("total %v", rep.TotalSeconds)
	}
	if got := rep.PhaseSeconds[PhaseVertex]; got != 0.003 {
		t.Fatalf("vertex phase sum %v", got)
	}
	if len(rep.Iterations) != 3 {
		t.Fatalf("iterations %d", len(rep.Iterations))
	}
	it1 := rep.Iterations[1]
	if it1.VertexSeconds != 0.002 || it1.EdgeSeconds != 0.004 || it1.GatherSeconds != 0.001 {
		t.Fatalf("iteration 1 phases %+v", it1)
	}
	if it1.MaxChunkSeconds != 0.003 {
		t.Fatalf("max chunk %v", it1.MaxChunkSeconds)
	}
	if it1.BoundaryWaitSeconds != 0.006 || it1.CoverageWaitSeconds != 0.002 {
		t.Fatalf("iteration 1 waits %+v", it1)
	}
	// Peers are sorted; "" normalizes to "coordinator".
	if len(rep.Peers) != 3 || rep.Peers[0].Peer != "coordinator" ||
		rep.Peers[1].Peer != "peerA" || rep.Peers[2].Peer != "peerB" {
		t.Fatalf("peers %+v", rep.Peers)
	}
	pa := rep.Peers[1]
	if pa.Exchanges != 1 || pa.FramesSent != 1 || pa.FramesReceived != 1 ||
		pa.BytesSent != 100 || pa.BytesReceived != 40 {
		t.Fatalf("peerA stats %+v", pa)
	}
	if rep.Rounds != 8 || rep.Messages != 123 {
		t.Fatalf("protocol %d/%d", rep.Rounds, rep.Messages)
	}
	if _, err := json.Marshal(rep); err != nil {
		t.Fatalf("marshal: %v", err)
	}
}

func TestRecorderSessionSpansAccumulate(t *testing.T) {
	r := NewRecorder("")
	if r.TraceID() == "" {
		t.Fatal("empty generated trace id")
	}
	r.Start("sim")
	time.Sleep(time.Millisecond)
	r.Stop()
	first := r.Report().TotalSeconds
	r.Start("sim")
	time.Sleep(time.Millisecond)
	r.Stop()
	if got := r.Report().TotalSeconds; got <= first {
		t.Fatalf("second span did not accumulate: %v then %v", first, got)
	}
}

func TestRecorderIterationCap(t *testing.T) {
	r := NewRecorder("cap")
	for i := 0; i < maxRecordedIterations+100; i++ {
		r.Phase(i, PhaseVertex, time.Microsecond, 0)
	}
	rep := r.Report()
	if len(rep.Iterations) != maxRecordedIterations {
		t.Fatalf("recorded %d iterations, want cap %d", len(rep.Iterations), maxRecordedIterations)
	}
	// Totals keep accumulating past the cap.
	want := time.Duration(maxRecordedIterations+100) * time.Microsecond
	if got := rep.PhaseSeconds[PhaseVertex]; got != want.Seconds() {
		t.Fatalf("phase total %v, want %v", got, want.Seconds())
	}
}

func TestRecorderConcurrent(t *testing.T) {
	r := NewRecorder("race")
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				r.Phase(i%10, PhaseVertex, time.Nanosecond, 0)
				r.Exchange("p", ExchangeBoundary, i%10, time.Nanosecond)
				r.Frame("p", DirSent, "boundary", 1)
			}
		}(g)
	}
	wg.Wait()
	rep := r.Report()
	if rep.Peers[0].Exchanges != 8*200 {
		t.Fatalf("exchanges %d", rep.Peers[0].Exchanges)
	}
}
