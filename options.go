package distcover

import (
	"log/slog"

	"distcover/internal/congest"
	"distcover/internal/core"
	"distcover/internal/telemetry"
)

// Option configures Solve, SolveCongest and SolveILP.
type Option interface {
	apply(*solveConfig)
}

type solveConfig struct {
	core   core.Options
	engine engineKind
	shards int
	// congest records that an engine option was given explicitly. Solve and
	// SolveCongest ignore it (their execution path is fixed by the call);
	// sessions use it to decide between the lockstep simulator (default)
	// and the message protocol on the selected engine.
	congest bool
	// flat routes Solve and session residual re-solves through the
	// chunk-parallel flat runner instead of the sequential lockstep
	// simulator. Results are bit-identical; only speed changes.
	flat bool
	// parallelism is the flat runner's worker count (0 = GOMAXPROCS).
	parallelism int
	// clusterPeers, when non-empty, routes solves and session residual
	// re-solves across coverd peer processes (ClusterSolve's path).
	clusterPeers []string
	// clusterParts is the cluster partition count (0 = one per peer).
	clusterParts int
	// recorder accumulates the solve's trace report (WithTelemetry); also
	// receives Start/Stop engine spans and donates its trace id to
	// cluster solves.
	recorder *telemetry.Recorder
	// tracer is an additional raw hook sink (WithTracer), fanned in with
	// the recorder. coverd routes its Prometheus adapter here.
	tracer telemetry.Tracer
	// logger receives structured cluster coordinator logs (WithLogger).
	logger *slog.Logger
}

// effectiveTracer combines the recorder and the raw tracer; nil when
// tracing is off entirely (the zero-overhead default).
func (c *solveConfig) effectiveTracer() telemetry.Tracer {
	if c.recorder == nil {
		if c.tracer == nil {
			return nil
		}
		return c.tracer
	}
	if c.tracer == nil {
		return c.recorder
	}
	return telemetry.Multi(c.recorder, c.tracer)
}

// startSpan opens the recorder's engine span (if any) and wires the
// effective tracer into the core options. Returns a stop func; both are
// no-ops when tracing is off.
func (c *solveConfig) startSpan(engine string) func() {
	if tr := c.effectiveTracer(); tr != nil {
		c.core.Tracer = tr
	}
	if c.recorder == nil {
		return func() {}
	}
	c.recorder.Start(engine)
	return c.recorder.Stop
}

// congestEngineName is the engine label telemetry spans and the coverd
// phase metrics use for the configured CONGEST engine.
func (c *solveConfig) congestEngineName() string {
	switch c.engine {
	case engineParallel:
		return "congest-parallel"
	case engineSharded:
		return "congest-sharded"
	case engineTCP:
		return "congest-tcp"
	default:
		return "congest-sequential"
	}
}

type engineKind int

const (
	engineSequential engineKind = iota
	engineParallel
	engineSharded
	engineTCP
)

type optionFunc func(*solveConfig)

func (f optionFunc) apply(c *solveConfig) { f(c) }

// WithEpsilon sets the approximation slack ε ∈ (0, 1]: the cover weighs at
// most (f+ε)·OPT. The default is 1.
func WithEpsilon(eps float64) Option {
	return optionFunc(func(c *solveConfig) { c.core.Epsilon = eps })
}

// WithFApproximation requests a clean f-approximation by setting
// ε = 1/(n·W) internally (Corollary 10); rounds grow to O(f·log n).
func WithFApproximation() Option {
	return optionFunc(func(c *solveConfig) { c.core.FApprox = true })
}

// WithSingleLevelVariant selects the Appendix C variant in which dual
// variables grow by bid/2 and no vertex gains more than one level per
// iteration; iterations at most double (Lemma 22).
func WithSingleLevelVariant() Option {
	return optionFunc(func(c *solveConfig) { c.core.Variant = core.VariantSingleLevel })
}

// WithLocalAlpha lets every edge derive its bid multiplier α(e) from its
// local maximum degree Δ(e) instead of the global Δ (remark after
// Theorem 9); no global knowledge of Δ is needed.
func WithLocalAlpha() Option {
	return optionFunc(func(c *solveConfig) { c.core.Alpha = core.AlphaLocal })
}

// WithFixedAlpha pins the bid multiplier to a constant α ≥ 2 (ablation
// studies; Theorem 8 bounds iterations by O(log_α Δ + f·log(f/ε)·α)).
func WithFixedAlpha(alpha float64) Option {
	return optionFunc(func(c *solveConfig) {
		c.core.Alpha = core.AlphaFixed
		c.core.FixedAlpha = alpha
	})
}

// WithExactArithmetic switches all bid/dual arithmetic to exact rationals
// (math/big). Slower; intended for verification. Not available on the
// CONGEST path.
func WithExactArithmetic() Option {
	return optionFunc(func(c *solveConfig) { c.core.Exact = true })
}

// WithMaxIterations overrides the Theorem 8-derived iteration safety cap.
func WithMaxIterations(n int) Option {
	return optionFunc(func(c *solveConfig) { c.core.MaxIterations = n })
}

// WithTrace records per-iteration statistics (joins, level increments,
// raises, stuck vertices) in Solution.Trace; useful for studying the
// algorithm's dynamics.
func WithTrace() Option {
	return optionFunc(func(c *solveConfig) { c.core.CollectTrace = true })
}

// WithInvariantChecks verifies the paper's invariants (Claims 1, 2 and 4)
// after every iteration and fails the solve if any is violated. Intended
// for verification runs; costs O(n+m) per iteration.
func WithInvariantChecks() Option {
	return optionFunc(func(c *solveConfig) { c.core.CheckInvariants = true })
}

// WithFlatEngine makes Solve, NewSession and every Session.Update run the
// chunk-parallel flat solver: each vertex/edge phase of the lockstep
// algorithm becomes a parallel-for over contiguous ranges of the instance's
// CSR arrays, with a deterministic reduction that keeps the result
// bit-identical to the default simulator (and therefore to every CONGEST
// engine) for any worker count. This is the production fast path — it runs
// the algorithm, not the message simulation — and solve latency tracks
// hardware cores. Combine with WithSolverParallelism to pin the worker
// count. Ignored by SolveCongest (which always runs the message protocol);
// exact-arithmetic runs fall back to the sequential exact runner.
func WithFlatEngine() Option {
	return optionFunc(func(c *solveConfig) { c.flat = true })
}

// WithSolverParallelism sets the flat runner's worker count; n ≤ 0 or
// omitting the option means GOMAXPROCS. Implies nothing about which engine
// runs: combine with WithFlatEngine. The result is identical for every n —
// only the wall-clock changes.
func WithSolverParallelism(n int) Option {
	return optionFunc(func(c *solveConfig) { c.parallelism = n })
}

// WithClusterPeers makes NewSession run the initial solve and every
// Session.Update residual re-solve partitioned across the given coverd
// peer processes (see ClusterSolve; results stay bit-identical to the
// single-process engines). ClusterSolve sets it implicitly from its peers
// argument. Combine with WithClusterPartitions to run more partitions than
// peers.
func WithClusterPeers(addrs ...string) Option {
	return optionFunc(func(c *solveConfig) {
		c.clusterPeers = append([]string(nil), addrs...)
	})
}

// WithClusterPartitions sets the number of contiguous vertex-range
// partitions a cluster solve splits the instance into; n ≤ 0 or omitting
// the option means one partition per peer. Partitions beyond the peer
// count are assigned round-robin — peers that negotiate protocol v3 carry
// all their partitions multiplexed over one connection. The result is
// identical for every n — only placement changes.
//
// Without WithClusterPeers (or ClusterSolve peers), a positive n selects
// the in-process partitioned engine: the same partition plan runs as
// co-located goroutines over a shared-memory exchanger, no sockets
// involved. Solve, NewSession and Session.Update all honor it.
func WithClusterPartitions(n int) Option {
	return optionFunc(func(c *solveConfig) { c.clusterParts = n })
}

// WithSequentialEngine explicitly selects the deterministic sequential
// CONGEST engine — SolveCongest's default. Its real use is with sessions:
// NewSession runs the fast lockstep simulator unless an engine option asks
// for the message protocol, and this option is how to ask for the default
// engine. Ignored by Solve.
func WithSequentialEngine() Option {
	return optionFunc(func(c *solveConfig) {
		c.engine = engineSequential
		c.congest = true
	})
}

// WithParallelEngine makes SolveCongest run every network node as its own
// goroutine with channel-based message delivery. Results are identical to
// the default deterministic sequential engine. Ignored by Solve.
func WithParallelEngine() Option {
	return optionFunc(func(c *solveConfig) {
		c.engine = engineParallel
		c.congest = true
	})
}

// WithShardedEngine makes SolveCongest run the network on the sharded
// engine: nodes are partitioned over a fixed worker pool and messages are
// routed through flat slice mailboxes instead of per-node channels. This is
// the engine for large instances — it handles networks of millions of nodes
// at a small multiple of the lockstep simulator's cost — and its results
// are bit-identical to the other engines. Combine with WithShardCount to
// pin the partition count. Ignored by Solve.
func WithShardedEngine() Option {
	return optionFunc(func(c *solveConfig) {
		c.engine = engineSharded
		c.congest = true
	})
}

// WithShardCount sets the number of node partitions (= pool workers) the
// sharded engine uses; p ≤ 0 or omitting the option means GOMAXPROCS.
// Implies nothing about which engine runs: combine with WithShardedEngine.
func WithShardCount(p int) Option {
	return optionFunc(func(c *solveConfig) { c.shards = p })
}

// WithTCPEngine makes SolveCongest run every network node as its own
// goroutine connected over real TCP loopback sockets, moving the protocol
// messages as encoded bytes (the library's wire codec). Results are
// identical to the other engines; CongestStats.WireBytes reports the real
// traffic. Each node holds one socket, so keep instances within the file
// descriptor limit. Ignored by Solve.
func WithTCPEngine() Option {
	return optionFunc(func(c *solveConfig) {
		c.engine = engineTCP
		c.congest = true
	})
}

func buildOptions(opts []Option) core.Options {
	return optConfig(opts).core
}

// buildEngine materializes the configured CONGEST engine.
func (c solveConfig) buildEngine() congest.Engine {
	switch c.engine {
	case engineParallel:
		return congest.ParallelEngine{}
	case engineSharded:
		return congest.ShardedEngine{Shards: c.shards}
	case engineTCP:
		return congest.NetEngine{Codec: core.WireCodec{}}
	default:
		return congest.SequentialEngine{}
	}
}

func optConfig(opts []Option) solveConfig {
	cfg := solveConfig{core: core.DefaultOptions()}
	for _, o := range opts {
		o.apply(&cfg)
	}
	return cfg
}
