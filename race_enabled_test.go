//go:build race

package distcover_test

// raceEnabled reports whether the race detector is compiled in. Alloc-count
// assertions skip under it: race mode makes sync.Pool drop a quarter of all
// Puts on purpose, so pool-backed paths re-allocate nondeterministically.
const raceEnabled = true
