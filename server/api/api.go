// Package api defines the JSON wire types of the coverd service. Both the
// server handlers and the Go client (distcover/client) speak these types,
// so they live in their own package with no dependencies beyond the
// standard library and the telemetry report types.
//
// Instances travel in the exact JSON shape the library's codec already
// uses ({"weights":[...],"edges":[[...]]}, see distcover.ReadInstance), so
// anything that can produce an instance file can talk to the service.
package api

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"

	"distcover/internal/telemetry"
)

// TraceReport is the per-solve telemetry report returned in
// SolveResult.Report when SolveOptions.Trace is set: total and per-phase
// wall time, per-iteration phase timings (with chunk imbalance on the
// flat engine and exchange waits on the cluster engine), per-peer
// exchange latency and wire volume, and CONGEST round/message totals.
type TraceReport = telemetry.Report

// Engine names for SolveOptions.Engine.
const (
	// EngineSim is the fast lockstep simulator (distcover.Solve); default.
	EngineSim = "sim"
	// EngineFlat is the chunk-parallel flat solver: the lockstep algorithm
	// over the instance's CSR arrays with one worker per core. Results are
	// bit-identical to EngineSim (the two share a cache identity); this is
	// the engine for production solve latency. See SolveOptions.Parallelism.
	EngineFlat = "flat"
	// EngineCongest runs the real message protocol on the deterministic
	// sequential CONGEST engine (distcover.SolveCongest).
	EngineCongest = "congest"
	// EngineCongestParallel runs every CONGEST node as its own goroutine.
	EngineCongestParallel = "congest-parallel"
	// EngineCongestSharded runs the CONGEST network on the sharded engine:
	// a fixed worker pool over node partitions with flat slice mailboxes.
	// This is the engine for large instances; results are identical to the
	// other congest engines. See SolveOptions.Shards.
	EngineCongestSharded = "congest-sharded"
	// EngineCongestTCP moves CONGEST messages over real loopback sockets.
	EngineCongestTCP = "congest-tcp"
	// EngineCluster partitions the instance across the coverd peer
	// processes the server was started with (-peers): each peer solves one
	// contiguous vertex range and only boundary state crosses the wire.
	// Results are bit-identical to EngineSim/EngineFlat (shared cache
	// identity). Requires a server configured with peers; see
	// SolveOptions.Partitions.
	EngineCluster = "cluster"
)

// SolveOptions maps one-to-one onto the library's functional options.
type SolveOptions struct {
	// Epsilon is the approximation slack ε ∈ (0,1]; 0 means the library
	// default (1).
	Epsilon float64 `json:"epsilon,omitempty"`
	// FApprox requests a clean f-approximation (ε = 1/(nW) internally).
	FApprox bool `json:"f_approx,omitempty"`
	// SingleLevel selects the Appendix C variant.
	SingleLevel bool `json:"single_level,omitempty"`
	// LocalAlpha derives the bid multiplier per edge from Δ(e).
	LocalAlpha bool `json:"local_alpha,omitempty"`
	// Alpha pins the bid multiplier to a constant ≥ 2 (0 = Theorem 9).
	Alpha float64 `json:"alpha,omitempty"`
	// MaxIterations overrides the iteration safety cap (0 = default).
	MaxIterations int `json:"max_iterations,omitempty"`
	// Engine selects the execution path; see the Engine* constants.
	// Empty means EngineSim.
	Engine string `json:"engine,omitempty"`
	// Shards sets the node-partition count for EngineCongestSharded
	// (0 = one shard per CPU). Ignored by the other engines.
	Shards int `json:"shards,omitempty"`
	// Parallelism sets the worker count for EngineFlat (0 = one worker per
	// CPU). Ignored by the other engines; never changes results.
	Parallelism int `json:"parallelism,omitempty"`
	// Partitions sets the partition count for EngineCluster (0 = one per
	// configured peer). Ignored by the other engines; never changes
	// results.
	Partitions int `json:"partitions,omitempty"`
	// NoCache bypasses the server's instance-result cache for this request
	// (the result is still stored for future requests).
	NoCache bool `json:"no_cache,omitempty"`
	// Trace returns a per-solve telemetry report (SolveResult.Report) with
	// phase/round timings — and, on the cluster engine, per-peer exchange
	// latencies. Traced solves bypass the cache entirely: the report
	// describes this run, so neither a cached result is returned nor the
	// traced result stored.
	Trace bool `json:"trace,omitempty"`
}

// Fingerprint returns a stable string identifying every option that can
// change the solver output. It is combined with the instance content hash
// to form the server's cache key. NoCache and Trace are deliberately
// excluded: they affect lookup policy and reporting, not the result.
func (o SolveOptions) Fingerprint() string {
	eng := o.Engine
	if eng == "" {
		eng = EngineSim
	}
	// The flat and cluster engines are bit-identical to the simulator
	// (enforced by the engine- and cluster-equivalence property tests), so
	// the three share one cache identity; Parallelism and Partitions change
	// scheduling and placement, not results, and are likewise excluded. The
	// in-memory congest engines produce identical solutions AND identical
	// communication stats, so they share one cache identity too (Shards
	// excluded for the same reason). The TCP engine stays distinct: it
	// additionally reports WireBytes, which a cached in-memory result would
	// be missing.
	if eng == EngineFlat || eng == EngineCluster {
		eng = EngineSim
	}
	if eng == EngineCongestParallel || eng == EngineCongestSharded {
		eng = EngineCongest
	}
	return fmt.Sprintf("eps=%g,fapprox=%t,single=%t,local=%t,alpha=%g,maxit=%d,engine=%s",
		o.Epsilon, o.FApprox, o.SingleLevel, o.LocalAlpha, o.Alpha, o.MaxIterations, eng)
}

// ILPConstraint is one covering constraint Σ coefs[i]·x[vars[i]] ≥ bound.
type ILPConstraint struct {
	Vars  []int   `json:"vars"`
	Coefs []int64 `json:"coefs"`
	Bound int64   `json:"bound"`
}

// ILPSpec is a covering integer program (minimize wᵀx s.t. Ax ≥ b, x ∈ ℕⁿ)
// solved through the paper's Theorem 19 reduction pipeline.
type ILPSpec struct {
	Weights     []int64         `json:"weights"`
	Constraints []ILPConstraint `json:"constraints"`
}

// KeyILP returns the canonical content key of an ILP spec — the identity
// coverd caches ILP results under and the routing key a coordinator ring
// hashes to pick the request's owner. json.Marshal of the spec struct is
// deterministic (fixed field order, ordered slices), so this is canonical
// up to the textual program representation. Server and ring-aware client
// must agree on it, which is why it lives in the shared wire package.
func KeyILP(spec *ILPSpec) string {
	data, err := json.Marshal(spec)
	if err != nil {
		// Marshal of plain ints/slices cannot fail; guard anyway.
		return ""
	}
	sum := sha256.Sum256(append([]byte("distcover/ilp/v1\n"), data...))
	return hex.EncodeToString(sum[:])
}

// SolveRequest submits one problem. Exactly one of Instance and ILP must be
// set: Instance carries a hypergraph vertex cover / set cover instance in
// the library's JSON codec shape, ILP a covering integer program.
type SolveRequest struct {
	Instance json.RawMessage `json:"instance,omitempty"`
	ILP      *ILPSpec        `json:"ilp,omitempty"`
	Options  SolveOptions    `json:"options,omitempty"`
	// Async makes POST /v1/solve return 202 with a job id immediately;
	// poll GET /v1/jobs/{id} for the result. Ignored inside batches.
	Async bool `json:"async,omitempty"`
}

// CongestInfo reports communication metrics for congest engines.
type CongestInfo struct {
	Rounds         int   `json:"rounds"`
	Messages       int64 `json:"messages"`
	TotalBits      int64 `json:"total_bits"`
	MaxMessageBits int   `json:"max_message_bits"`
	WireBytes      int64 `json:"wire_bytes,omitempty"`
}

// SolveResult is the outcome of one solve. Cover/Weight describe vertex
// cover results; X/Value describe ILP results. The certificate fields
// (DualLowerBound, RatioBound) hold for both: the reported objective is at
// most RatioBound times the optimum.
type SolveResult struct {
	Cover          []int        `json:"cover,omitempty"`
	Weight         int64        `json:"weight,omitempty"`
	X              []int64      `json:"x,omitempty"`
	Value          int64        `json:"value,omitempty"`
	DualLowerBound float64      `json:"dual_lower_bound"`
	RatioBound     float64      `json:"ratio_bound"`
	Epsilon        float64      `json:"epsilon,omitempty"`
	Iterations     int          `json:"iterations"`
	Rounds         int          `json:"rounds"`
	Congest        *CongestInfo `json:"congest,omitempty"`
	// InstanceHash is the canonical content hash used as the cache key.
	InstanceHash string `json:"instance_hash,omitempty"`
	// Cached reports whether the result was served from the instance cache.
	Cached bool `json:"cached"`
	// ElapsedMS is the solver wall time in milliseconds (0 when cached).
	ElapsedMS float64 `json:"elapsed_ms"`
	// Report is the telemetry breakdown of this solve, present only when
	// SolveOptions.Trace was set.
	Report *TraceReport `json:"report,omitempty"`
}

// BatchRequest submits several problems at once. Items are solved through
// the same worker pool as single requests; the call returns when all items
// finish.
type BatchRequest struct {
	Requests []SolveRequest `json:"requests"`
}

// BatchItem is the per-item outcome of a batch: exactly one of Result and
// Error is set.
type BatchItem struct {
	Result *SolveResult `json:"result,omitempty"`
	Error  string       `json:"error,omitempty"`
}

// BatchResponse mirrors BatchRequest.Requests index by index.
type BatchResponse struct {
	Results []BatchItem `json:"results"`
}

// Job states reported by GET /v1/jobs/{id}.
const (
	JobQueued  = "queued"
	JobRunning = "running"
	JobDone    = "done"
	JobFailed  = "failed"
)

// JobStatus describes an async job.
type JobStatus struct {
	ID     string       `json:"id"`
	Status string       `json:"status"`
	Result *SolveResult `json:"result,omitempty"`
	Error  string       `json:"error,omitempty"`
}

// JobAccepted is the 202 response of an async submit.
type JobAccepted struct {
	ID     string `json:"id"`
	Status string `json:"status"`
}

// SessionRequest opens an incremental solving session: the instance is
// solved once and the server keeps its primal/dual state so later delta
// batches re-solve only the residual uncovered part.
type SessionRequest struct {
	Instance json.RawMessage `json:"instance"`
	Options  SolveOptions    `json:"options,omitempty"`
}

// SessionDelta is one update batch: Weights appends vertices, Edges appends
// hyperedges over old and new vertices alike. The shape mirrors the
// instance codec, so delta producers can reuse instance tooling.
type SessionDelta struct {
	Weights []int64 `json:"weights,omitempty"`
	Edges   [][]int `json:"edges,omitempty"`
}

// SessionInfo describes a session's current state. Result carries the
// cumulative solution over the full instance as updated so far; its
// RatioBound never exceeds CertifiedBound = f·(1+ε).
type SessionInfo struct {
	ID             string       `json:"id"`
	InstanceHash   string       `json:"instance_hash"`
	Vertices       int          `json:"vertices"`
	Edges          int          `json:"edges"`
	Rank           int          `json:"rank"`
	Updates        int          `json:"updates"`
	CertifiedBound float64      `json:"certified_bound"`
	Result         *SolveResult `json:"result"`
	// Recovered marks a session rehydrated from the write-ahead log after
	// a restart (coverd -wal-dir) rather than created over this connection.
	Recovered bool `json:"recovered,omitempty"`
}

// SessionList is the GET /v1/sessions response: all live sessions, most
// recently used first.
type SessionList struct {
	Sessions []*SessionInfo `json:"sessions"`
}

// SessionUpdateResult reports what one delta batch did and the refreshed
// session state.
type SessionUpdateResult struct {
	NewVertices      int          `json:"new_vertices"`
	NewEdges         int          `json:"new_edges"`
	CoveredOnArrival int          `json:"covered_on_arrival"`
	ResidualEdges    int          `json:"residual_edges"`
	ResidualVertices int          `json:"residual_vertices"`
	Joined           int          `json:"joined"`
	AddedWeight      int64        `json:"added_weight"`
	Iterations       int          `json:"iterations"`
	Rounds           int          `json:"rounds"`
	ElapsedMS        float64      `json:"elapsed_ms"`
	Session          *SessionInfo `json:"session"`
}

// Health is the GET /healthz response.
type Health struct {
	Status        string `json:"status"`
	Workers       int    `json:"workers"`
	QueueDepth    int    `json:"queue_depth"`
	QueueCapacity int    `json:"queue_capacity"`
	CacheEntries  int    `json:"cache_entries"`
	Sessions      int    `json:"sessions"`
	// SessionBytes is the estimated total heap footprint of live sessions,
	// the quantity the server's byte-budgeted eviction bounds.
	SessionBytes int64 `json:"session_bytes"`
}

// RingInfo is the GET /v1/ring response: the coordinator ring this server
// belongs to. A ring-aware client rebuilds the identical consistent-hash
// ring from Members+VNodes and routes requests straight to their owners;
// routing is a pure function of this response, so any member's answer
// works. Enabled false means the server runs standalone (Members empty)
// and clients should keep using their configured base URL.
type RingInfo struct {
	Enabled bool `json:"enabled"`
	// Self is the advertised address of the answering coordinator (its
	// identity on the ring).
	Self string `json:"self,omitempty"`
	// Members is the full static membership list, sorted.
	Members []string `json:"members,omitempty"`
	// VNodes is the virtual-node count per member used to build the ring.
	VNodes int `json:"vnodes,omitempty"`
}

// Error is the JSON error envelope for non-2xx responses.
type Error struct {
	Error string `json:"error"`
}
