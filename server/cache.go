package server

import (
	"container/list"
	"sync"

	"distcover/server/api"
)

// resultCache is a thread-safe LRU cache of solver results keyed by
// instance content hash + option fingerprint. A capacity of 0 disables it.
type resultCache struct {
	mu       sync.Mutex
	capacity int
	order    *list.List // front = most recently used; values are *cacheEntry
	entries  map[string]*list.Element
}

type cacheEntry struct {
	key    string
	result *api.SolveResult
}

func newResultCache(capacity int) *resultCache {
	return &resultCache{
		capacity: capacity,
		order:    list.New(),
		entries:  make(map[string]*list.Element),
	}
}

// cloneResult deep-copies a result. A shallow struct copy is not enough:
// Cover, X and the Congest pointer would still alias the original, so a
// caller mutating a returned result (or the result it handed to put) would
// corrupt the cached entry for every future hit.
func cloneResult(res *api.SolveResult) *api.SolveResult {
	cp := *res
	cp.Cover = append([]int(nil), res.Cover...)
	cp.X = append([]int64(nil), res.X...)
	if res.Congest != nil {
		congest := *res.Congest
		cp.Congest = &congest
	}
	return &cp
}

// get returns a deep copy of the cached result with Cached set, or nil.
func (c *resultCache) get(key string) *api.SolveResult {
	if c.capacity <= 0 {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		return nil
	}
	c.order.MoveToFront(el)
	res := cloneResult(el.Value.(*cacheEntry).result)
	res.Cached = true
	res.ElapsedMS = 0
	return res
}

// put stores a result, evicting the least recently used entry when full.
// The stored value is deep-copied so later mutations by the caller are
// invisible.
func (c *resultCache) put(key string, res *api.SolveResult) {
	if c.capacity <= 0 || res == nil {
		return
	}
	stored := cloneResult(res)
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		el.Value.(*cacheEntry).result = stored
		c.order.MoveToFront(el)
		return
	}
	c.entries[key] = c.order.PushFront(&cacheEntry{key: key, result: stored})
	for c.order.Len() > c.capacity {
		last := c.order.Back()
		c.order.Remove(last)
		delete(c.entries, last.Value.(*cacheEntry).key)
	}
}

// len returns the current number of entries.
func (c *resultCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}
