package server

import (
	"fmt"
	"sync"
	"testing"

	"distcover/server/api"
)

func TestCacheLRUEviction(t *testing.T) {
	c := newResultCache(2)
	c.put("a", &api.SolveResult{Weight: 1})
	c.put("b", &api.SolveResult{Weight: 2})
	if c.get("a") == nil {
		t.Fatal("a should be cached")
	}
	// a is now most recent; inserting c must evict b.
	c.put("c", &api.SolveResult{Weight: 3})
	if c.get("b") != nil {
		t.Fatal("b should have been evicted")
	}
	if c.get("a") == nil || c.get("c") == nil {
		t.Fatal("a and c should remain")
	}
	if c.len() != 2 {
		t.Fatalf("len = %d, want 2", c.len())
	}
}

func TestCacheCopiesResults(t *testing.T) {
	c := newResultCache(4)
	orig := &api.SolveResult{Weight: 7, ElapsedMS: 3.5}
	c.put("k", orig)
	orig.Weight = 999 // caller mutation must not leak into the cache

	got := c.get("k")
	if got == nil {
		t.Fatal("missing entry")
	}
	if got.Weight != 7 {
		t.Fatalf("cached value mutated: weight %d", got.Weight)
	}
	if !got.Cached || got.ElapsedMS != 0 {
		t.Fatalf("cache hit should set Cached and zero ElapsedMS: %+v", got)
	}
	got.Weight = 123
	if again := c.get("k"); again.Weight != 7 {
		t.Fatal("mutating a returned result must not affect the cache")
	}
}

// TestCacheDeepCopiesNestedState is the regression test for the aliasing
// bug where get/put copied only the top-level struct: the cached entry
// shared Cover, X and the Congest pointer with every copy handed out, so a
// caller mutating a returned result corrupted the cache for all future
// hits. Run under -race this also proves hits share no mutable state.
func TestCacheDeepCopiesNestedState(t *testing.T) {
	c := newResultCache(4)
	orig := &api.SolveResult{
		Cover:   []int{1, 2, 3},
		X:       []int64{0, 1, 0},
		Weight:  9,
		Congest: &api.CongestInfo{Rounds: 7, Messages: 40},
	}
	c.put("k", orig)
	// Mutating what was handed to put must not reach the cache.
	orig.Cover[0] = 99
	orig.X[2] = 99
	orig.Congest.Rounds = 99

	got := c.get("k")
	if got.Cover[0] != 1 || got.X[2] != 0 || got.Congest.Rounds != 7 {
		t.Fatalf("put did not deep-copy: %+v congest=%+v", got, got.Congest)
	}
	// Mutating a returned hit must not reach the cache either.
	got.Cover[0] = -1
	got.X[0] = -1
	got.Congest.Messages = -1
	again := c.get("k")
	if again.Cover[0] != 1 || again.X[0] != 0 || again.Congest.Messages != 40 {
		t.Fatalf("get did not deep-copy: %+v congest=%+v", again, again.Congest)
	}
	if again.Congest == got.Congest {
		t.Fatal("hits share the Congest pointer")
	}
	// Concurrent hits each mutating their own copy: -race flags any sharing.
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			r := c.get("k")
			r.Cover[0] = i
			r.X[0] = int64(i)
			r.Congest.Rounds = i
		}(i)
	}
	wg.Wait()
	if final := c.get("k"); final.Cover[0] != 1 || final.Congest.Rounds != 7 {
		t.Fatalf("concurrent mutations leaked into the cache: %+v", final)
	}
}

func TestCacheUpdateExisting(t *testing.T) {
	c := newResultCache(2)
	c.put("k", &api.SolveResult{Weight: 1})
	c.put("k", &api.SolveResult{Weight: 2})
	if c.len() != 1 {
		t.Fatalf("duplicate key should overwrite, len = %d", c.len())
	}
	if got := c.get("k"); got.Weight != 2 {
		t.Fatalf("weight = %d, want 2", got.Weight)
	}
}

func TestCacheDisabled(t *testing.T) {
	c := newResultCache(0)
	c.put("k", &api.SolveResult{Weight: 1})
	if c.get("k") != nil {
		t.Fatal("disabled cache should never hit")
	}
}

func TestCacheConcurrent(t *testing.T) {
	c := newResultCache(16)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				key := fmt.Sprintf("k%d", (g+i)%24)
				c.put(key, &api.SolveResult{Weight: int64(i)})
				c.get(key)
			}
		}(g)
	}
	wg.Wait()
	if c.len() > 16 {
		t.Fatalf("cache exceeded capacity: %d", c.len())
	}
}

func TestOptionsFingerprint(t *testing.T) {
	base := api.SolveOptions{Epsilon: 0.5}
	variants := []api.SolveOptions{
		{Epsilon: 0.25},
		{Epsilon: 0.5, FApprox: true},
		{Epsilon: 0.5, SingleLevel: true},
		{Epsilon: 0.5, LocalAlpha: true},
		{Epsilon: 0.5, Alpha: 4},
		{Epsilon: 0.5, MaxIterations: 9},
		{Epsilon: 0.5, Engine: api.EngineCongest},
	}
	seen := map[string]bool{base.Fingerprint(): true}
	for i, v := range variants {
		fp := v.Fingerprint()
		if seen[fp] {
			t.Errorf("variant %d fingerprint collides: %s", i, fp)
		}
		seen[fp] = true
	}
	// NoCache and the congest engine flavor must NOT change the identity.
	if fp := (api.SolveOptions{Epsilon: 0.5, NoCache: true}).Fingerprint(); fp != base.Fingerprint() {
		t.Error("NoCache changed the fingerprint")
	}
	par := api.SolveOptions{Epsilon: 0.5, Engine: api.EngineCongestParallel}.Fingerprint()
	seq := api.SolveOptions{Epsilon: 0.5, Engine: api.EngineCongest}.Fingerprint()
	if par != seq {
		t.Error("in-memory congest engine flavors should share a cache identity")
	}
	// The TCP engine reports WireBytes, so it must not share results with
	// the in-memory engines.
	tcp := api.SolveOptions{Epsilon: 0.5, Engine: api.EngineCongestTCP}.Fingerprint()
	if tcp == seq {
		t.Error("congest-tcp must have its own cache identity (WireBytes)")
	}
}
