package server_test

import (
	"context"
	"net"
	"reflect"
	"strings"
	"testing"

	"distcover/internal/cluster"
	"distcover/server"
	"distcover/server/api"
)

// startPeerProtocols launches n cluster peer listeners on 127.0.0.1:0.
func startPeerProtocols(t *testing.T, n int) []string {
	t.Helper()
	addrs := make([]string, n)
	for i := 0; i < n; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		p := cluster.NewPeer()
		go p.Serve(ln)
		t.Cleanup(func() { p.Close() })
		addrs[i] = ln.Addr().String()
	}
	return addrs
}

// TestServerClusterEngine drives the "cluster" engine through the HTTP API
// and the Go client: solves and sessions must match the simulator engine
// bit for bit (they share a cache identity), and a server without peers
// must reject the engine cleanly.
func TestServerClusterEngine(t *testing.T) {
	peers := startPeerProtocols(t, 2)
	_, c := newTestServer(t, server.Config{Workers: 2, QueueDepth: 16, ClusterPeers: peers})
	ctx := context.Background()
	inst := genInstance(t, 80, 240, 3, 424)

	simRes, err := c.Solve(ctx, inst, api.SolveOptions{Epsilon: 0.5, NoCache: true})
	if err != nil {
		t.Fatal(err)
	}
	clRes, err := c.Solve(ctx, inst, api.SolveOptions{Epsilon: 0.5, Engine: api.EngineCluster, Partitions: 3, NoCache: true})
	if err != nil {
		t.Fatalf("cluster solve: %v", err)
	}
	if !reflect.DeepEqual(clRes.Cover, simRes.Cover) || clRes.Weight != simRes.Weight ||
		clRes.DualLowerBound != simRes.DualLowerBound || clRes.Iterations != simRes.Iterations {
		t.Fatalf("cluster result diverges from sim:\n%+v\nvs\n%+v", clRes, simRes)
	}

	// Shared cache identity: a cluster request after a sim solve is a hit.
	hit, err := c.Solve(ctx, inst, api.SolveOptions{Epsilon: 0.5, Engine: api.EngineCluster})
	if err != nil {
		t.Fatal(err)
	}
	if !hit.Cached {
		t.Fatal("cluster request should share the simulator's cache entry")
	}

	// Cluster-backed incremental session.
	si, err := c.CreateSession(ctx, inst, api.SolveOptions{Engine: api.EngineCluster})
	if err != nil {
		t.Fatalf("cluster session: %v", err)
	}
	refSi, err := c.CreateSession(ctx, inst, api.SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	delta := api.SessionDelta{
		Weights: []int64{3, 4},
		Edges:   [][]int{{80, 81}, {0, 80}, {5, 81}},
	}
	up, err := c.UpdateSession(ctx, si.ID, delta)
	if err != nil {
		t.Fatalf("cluster session update: %v", err)
	}
	refUp, err := c.UpdateSession(ctx, refSi.ID, delta)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(up.Session.Result.Cover, refUp.Session.Result.Cover) ||
		up.Session.Result.DualLowerBound != refUp.Session.Result.DualLowerBound {
		t.Fatal("cluster session diverges from sim session after update")
	}
	if up.Session.InstanceHash != refUp.Session.InstanceHash {
		t.Fatal("session hashes diverge")
	}
}

// TestServerClusterEngineLocalPartitions: a server without -peers still
// serves the cluster engine when the request carries a partition count —
// the partitions run in-process over the shared-memory exchanger — and the
// results match the simulator bit for bit.
func TestServerClusterEngineLocalPartitions(t *testing.T) {
	_, c := newTestServer(t, server.Config{Workers: 2, QueueDepth: 16})
	ctx := context.Background()
	inst := genInstance(t, 80, 240, 3, 424)

	simRes, err := c.Solve(ctx, inst, api.SolveOptions{Epsilon: 0.5, NoCache: true})
	if err != nil {
		t.Fatal(err)
	}
	locRes, err := c.Solve(ctx, inst, api.SolveOptions{Epsilon: 0.5, Engine: api.EngineCluster, Partitions: 3, NoCache: true})
	if err != nil {
		t.Fatalf("local-partition cluster solve: %v", err)
	}
	if !reflect.DeepEqual(locRes.Cover, simRes.Cover) || locRes.Weight != simRes.Weight ||
		locRes.DualLowerBound != simRes.DualLowerBound || locRes.Iterations != simRes.Iterations {
		t.Fatalf("local-partition result diverges from sim:\n%+v\nvs\n%+v", locRes, simRes)
	}

	// Sessions take the same path: a peerless cluster session with a
	// partition count solves in process and matches the sim session.
	si, err := c.CreateSession(ctx, inst, api.SolveOptions{Engine: api.EngineCluster, Partitions: 2})
	if err != nil {
		t.Fatalf("local-partition cluster session: %v", err)
	}
	refSi, err := c.CreateSession(ctx, inst, api.SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	delta := api.SessionDelta{
		Weights: []int64{3, 4},
		Edges:   [][]int{{80, 81}, {0, 80}, {5, 81}},
	}
	up, err := c.UpdateSession(ctx, si.ID, delta)
	if err != nil {
		t.Fatalf("local-partition session update: %v", err)
	}
	refUp, err := c.UpdateSession(ctx, refSi.ID, delta)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(up.Session.Result.Cover, refUp.Session.Result.Cover) ||
		up.Session.Result.DualLowerBound != refUp.Session.Result.DualLowerBound {
		t.Fatal("local-partition session diverges from sim session after update")
	}
}

// TestServerClusterEngineRequiresPeers: a server without -peers rejects the
// engine with a client-visible error, for solves and sessions both.
func TestServerClusterEngineRequiresPeers(t *testing.T) {
	_, c := newTestServer(t, server.Config{Workers: 1, QueueDepth: 4})
	ctx := context.Background()
	inst := genInstance(t, 10, 20, 2, 7)
	if _, err := c.Solve(ctx, inst, api.SolveOptions{Engine: api.EngineCluster}); err == nil ||
		!strings.Contains(err.Error(), "-peers") {
		t.Fatalf("peerless cluster solve: err = %v, want -peers guidance", err)
	}
	if _, err := c.CreateSession(ctx, inst, api.SolveOptions{Engine: api.EngineCluster}); err == nil ||
		!strings.Contains(err.Error(), "-peers") {
		t.Fatalf("peerless cluster session: err = %v, want -peers guidance", err)
	}
	// The cluster engine shares the simulator's cache identity; a warm
	// cache must not leak results past the peerless rejection.
	if _, err := c.Solve(ctx, inst, api.SolveOptions{}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Solve(ctx, inst, api.SolveOptions{Engine: api.EngineCluster}); err == nil ||
		!strings.Contains(err.Error(), "-peers") {
		t.Fatalf("peerless cluster solve with warm cache: err = %v, want -peers guidance", err)
	}
}
