package server

// Durable sessions. With Config.WALDir set, every acknowledged session
// mutation is logged to a write-ahead log (distcover/internal/durable)
// before the HTTP response goes out, and a periodic snapshot compacts the
// log. On restart, Open rehydrates the sessions: snapshot state is
// restored directly (no re-solve), post-snapshot WAL records are replayed
// through the ordinary Session code paths. Because every engine computes
// the bit-identical cover, a recovered session continues exactly where the
// crashed process stopped — same cover, same certificate.
//
// Consistency protocol. Two locks keep the log, the snapshot, and the
// in-memory sessions mutually consistent:
//
//   - sessionEntry.walMu serializes apply+log per session, so WAL record
//     order equals application order for that session.
//   - Server.commitMu makes (apply, append) atomic against snapshots:
//     mutating handlers hold the read side across both steps, the snapshot
//     writer holds the write side across (capture state, write snapshot
//     file, truncate WAL). Without it, a snapshot could capture a session
//     state that already includes an update whose record is assigned a
//     sequence number after the snapshot's, and recovery would replay the
//     update a second time.
//
// Lock order is walMu → commitMu(R); the snapshot path takes only
// commitMu(W), and only via TryLock while the server is running (see
// snapshotNow), so the periodic snapshot can never deadlock against
// update handlers that hold the read side while waiting for a worker.

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"time"

	"distcover"
	"distcover/internal/durable"
	"distcover/server/api"
)

// errSnapshotBusy reports a skipped periodic snapshot: session mutations
// held the commit lock. The next tick retries; the WAL alone preserves
// durability in the meantime.
var errSnapshotBusy = errors.New("coverd: snapshot skipped, commits in flight")

// openWAL opens the WAL directory, rehydrates the surviving sessions, and
// starts the snapshot loop. Called from Open before the worker pool and
// HTTP routes exist, so recovery is single-threaded.
func (s *Server) openWAL() error {
	store, rec, err := durable.Open(s.walDir())
	if err != nil {
		return fmt.Errorf("coverd: wal: %w", err)
	}
	s.wal = store
	s.snapStop = make(chan struct{})
	s.snapDone = make(chan struct{})
	s.sessions.onEvict = s.logEviction
	if rec.TornTail && s.cfg.Logger != nil {
		s.cfg.Logger.Warn("coverd: wal ended in a torn record (crash mid-write); truncated at last intact record")
	}
	s.recoverSessions(rec)
	go s.snapshotLoop()
	return nil
}

// recoverSessions rebuilds the session registry from a recovery: snapshot
// sessions first, then the WAL records logged after the snapshot, in
// order. Individual unrecoverable sessions are logged and skipped rather
// than failing startup — the rest of the state is still worth serving.
func (s *Server) recoverSessions(rec *durable.Recovery) {
	entries := s.foldRecovery(rec, nil)
	for _, e := range entries {
		s.installRecovered(e)
	}
	if len(entries) > 0 && s.cfg.Logger != nil {
		s.cfg.Logger.Info("coverd: recovered sessions from wal",
			"dir", s.walDir(), "sessions", s.sessions.len(),
			"snapshot_seq", rec.SnapshotSeq, "replayed_records", len(rec.Records))
	}
}

// foldRecovery turns a recovery into detached session entries without
// touching the registry: snapshot sessions first, then post-snapshot
// records in append order. filter (nil = accept all) selects which
// session ids are wanted — the ring takeover path uses it to adopt only
// sessions whose ownership fell to this coordinator; records for
// unselected ids are skipped silently. Callers publish the returned
// entries via installRecovered; keeping the fold detached means a
// concurrent reader can never observe a partially replayed session.
func (s *Server) foldRecovery(rec *durable.Recovery, filter func(id string) bool) []*sessionEntry {
	want := func(id string) bool { return filter == nil || filter(id) }
	byID := make(map[string]*sessionEntry)
	var order []*sessionEntry
	for _, sr := range rec.Sessions {
		if !want(sr.ID) {
			continue
		}
		if e, ok := s.restoreSession(sr); ok {
			byID[e.id] = e
			order = append(order, e)
		}
	}
	for _, r := range rec.Records {
		switch r.Type {
		case durable.RecCreate:
			if !want(r.ID) {
				continue
			}
			if _, ok := byID[r.ID]; ok {
				continue // already restored from the snapshot
			}
			if e, ok := s.replayCreate(r); ok {
				byID[e.id] = e
				order = append(order, e)
			}
		case durable.RecUpdate:
			e, ok := byID[r.ID]
			if !ok {
				if want(r.ID) {
					s.warn("coverd: wal replay: update for unknown session", "session", r.ID, "seq", r.Seq)
				}
				continue
			}
			if _, err := e.sess.Update(r.Delta); err != nil {
				s.warn("coverd: wal replay: update failed", "session", r.ID, "seq", r.Seq, "err", err)
			}
		case durable.RecDelete:
			if e, ok := byID[r.ID]; ok {
				delete(byID, r.ID)
				e.sess.Close()
			}
		}
	}
	out := make([]*sessionEntry, 0, len(byID))
	for _, e := range order {
		if byID[e.id] == e {
			out = append(out, e)
		}
	}
	return out
}

// restoreSession rebuilds one snapshot session without re-solving it.
func (s *Server) restoreSession(sr durable.SessionRecord) (*sessionEntry, bool) {
	opts, libOpts, peers, ok := s.recoveryOptions(sr.ID, sr.Options)
	if !ok {
		return nil, false
	}
	sess, err := distcover.RestoreSession(sr.Snapshot, libOpts...)
	if err != nil {
		s.warn("coverd: recovery: restore failed", "session", sr.ID, "err", err)
		return nil, false
	}
	if len(peers) > 0 {
		sess.SetClusterPeers(peers...)
	}
	return &sessionEntry{id: sr.ID, sess: sess, opts: opts, recovered: true}, true
}

// replayCreate rebuilds a session whose create record survived in the WAL
// (it was created after the last snapshot): the initial solve reruns.
func (s *Server) replayCreate(r durable.Record) (*sessionEntry, bool) {
	opts, libOpts, peers, ok := s.recoveryOptions(r.ID, r.Options)
	if !ok {
		return nil, false
	}
	inst, err := distcover.ReadInstance(bytes.NewReader(r.Instance))
	if err != nil {
		s.warn("coverd: recovery: bad instance in create record", "session", r.ID, "err", err)
		return nil, false
	}
	sess, err := distcover.NewSession(inst, libOpts...)
	if err != nil {
		s.warn("coverd: recovery: initial solve failed", "session", r.ID, "err", err)
		return nil, false
	}
	if len(peers) > 0 {
		sess.SetClusterPeers(peers...)
	}
	return &sessionEntry{id: r.ID, sess: sess, opts: opts, recovered: true, baseHash: inst.Hash()}, true
}

// installRecovered publishes a folded entry to the registry.
func (s *Server) installRecovered(e *sessionEntry) {
	s.sessions.addEntry(e)
	s.metrics.recordSessionRecovered()
}

// recoveryOptions maps a recovered session's stored API options onto
// library options. Cluster sessions are rebuilt on the flat engine — the
// peers may not be reachable while this server is starting, and the flat
// solver computes the bit-identical cover — then re-pointed at the
// configured peers for future updates.
func (s *Server) recoveryOptions(id string, raw []byte) (api.SolveOptions, []distcover.Option, []string, bool) {
	var opts api.SolveOptions
	if len(raw) > 0 {
		if err := json.Unmarshal(raw, &opts); err != nil {
			s.warn("coverd: recovery: bad options", "session", id, "err", err)
			return opts, nil, nil, false
		}
	}
	mapped := opts
	var peers []string
	if opts.Engine == api.EngineCluster {
		mapped.Engine = api.EngineFlat
		peers = s.cfg.ClusterPeers
	}
	libOpts, err := sessionLibOptions(mapped, s.pool.cluster)
	if err != nil {
		s.warn("coverd: recovery: unusable options", "session", id, "err", err)
		return opts, nil, nil, false
	}
	// Same telemetry wiring as runSessionCreate, so recovered sessions keep
	// feeding the phase metrics on later updates.
	libOpts = append(libOpts, distcover.WithTracer(s.metrics.SolveTracer(engineLabel(opts.Engine))))
	if s.cfg.Logger != nil {
		libOpts = append(libOpts, distcover.WithLogger(s.cfg.Logger))
	}
	return opts, libOpts, peers, true
}

// logCreateAndRegister appends a create record and publishes the entry,
// atomically with respect to snapshots (a snapshot between the two would
// drop the session: its record would be truncated away but its state not
// yet captured). Without a WAL it just registers. On log failure the
// session is not registered; the caller owns (and closes) it.
func (s *Server) logCreateAndRegister(e *sessionEntry, instance []byte) error {
	if s.wal == nil {
		s.sessions.addEntry(e)
		return nil
	}
	optsJSON, err := json.Marshal(e.opts)
	if err != nil {
		return fmt.Errorf("coverd: wal: encode options: %w", err)
	}
	s.commitMu.RLock()
	defer s.commitMu.RUnlock()
	if _, err := s.wal.Append(durable.Record{
		Type: durable.RecCreate, ID: e.id, Options: optsJSON, Instance: instance,
	}); err != nil {
		return fmt.Errorf("coverd: wal: %w", err)
	}
	s.metrics.recordWALRecord()
	s.sessions.addEntry(e)
	return nil
}

// logUpdate appends an update record for an already-applied delta. The
// caller holds entry.walMu and commitMu(R).
func (s *Server) logUpdate(e *sessionEntry, delta distcover.Delta) error {
	if _, err := s.wal.Append(durable.Record{Type: durable.RecUpdate, ID: e.id, Delta: delta}); err != nil {
		return fmt.Errorf("coverd: wal: %w", err)
	}
	s.metrics.recordWALRecord()
	return nil
}

// logDelete appends a delete record. The caller holds commitMu(R) (or is
// single-threaded recovery/eviction under a mutating handler's lock).
func (s *Server) logDelete(id string) {
	if _, err := s.wal.Append(durable.Record{Type: durable.RecDelete, ID: id}); err != nil {
		s.warn("coverd: wal: delete record failed", "session", id, "err", err)
		return
	}
	s.metrics.recordWALRecord()
}

// logEviction is the registry's eviction hook: budget evictions are
// deletes the client never asked for, but the log must still record them
// or recovery would resurrect the evicted sessions. Eviction happens
// inside addEntry/refresh, whose durable callers hold commitMu(R).
func (s *Server) logEviction(e *sessionEntry) {
	s.logDelete(e.id)
	s.invalidatePeerCaches(e)
}

// invalidatePeerCaches asks the cluster peers to drop a deleted cluster
// session's base instance from their content-addressed caches.
// Best-effort: a dead peer re-fetches on the next miss anyway.
func (s *Server) invalidatePeerCaches(e *sessionEntry) {
	if e.opts.Engine != api.EngineCluster || e.baseHash == "" || len(s.cfg.ClusterPeers) == 0 {
		return
	}
	hash, peers := e.baseHash, s.cfg.ClusterPeers
	go func() {
		if err := distcover.ClusterInvalidate(hash, peers); err != nil {
			s.warn("coverd: peer cache invalidation failed", "hash", hash, "err", err)
		}
	}()
}

// snapshotLoop periodically compacts the WAL, routing the work through the
// job queue so snapshots show up in queue metrics and yield to solves. A
// full queue skips the tick: compaction is an optimization, the WAL alone
// preserves durability.
func (s *Server) snapshotLoop() {
	defer close(s.snapDone)
	t := time.NewTicker(s.cfg.SnapshotInterval)
	defer t.Stop()
	for {
		select {
		case <-s.snapStop:
			return
		case <-t.C:
			j := newSnapshotJob(func() error { return s.snapshotNow(false) })
			if err := s.queue.tryEnqueue(j); err != nil {
				continue
			}
			select {
			case <-j.done:
			case <-s.snapStop:
				return
			}
			if st := j.snapshot(); st.Error != "" && st.Error != errSnapshotBusy.Error() {
				s.warn("coverd: snapshot failed", "err", st.Error)
			}
		}
	}
}

// snapshotNow captures every live session and writes the snapshot file.
// block selects Lock vs TryLock on the commit lock: the periodic path must
// not block (a snapshot job waiting on a worker-held lock while update
// handlers wait for workers would deadlock a small pool), the final
// shutdown snapshot runs after the pool stopped and can afford to wait.
func (s *Server) snapshotNow(block bool) error {
	if block {
		s.commitMu.Lock()
	} else if !s.commitMu.TryLock() {
		return errSnapshotBusy
	}
	defer s.commitMu.Unlock()
	entries := s.sessions.list()
	records := make([]durable.SessionRecord, 0, len(entries))
	for _, e := range entries {
		snap, err := e.sess.Snapshot()
		if err != nil {
			continue // closed under us; its delete record is in the log
		}
		optsJSON, err := json.Marshal(e.opts)
		if err != nil {
			return fmt.Errorf("coverd: snapshot: encode options: %w", err)
		}
		records = append(records, durable.SessionRecord{ID: e.id, Options: optsJSON, Snapshot: snap})
	}
	if err := s.wal.WriteSnapshot(records); err != nil {
		return err
	}
	s.metrics.recordWALSnapshot()
	return nil
}

func (s *Server) warn(msg string, args ...any) {
	if s.cfg.Logger != nil {
		s.cfg.Logger.Warn(msg, args...)
	}
}
