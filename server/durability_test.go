package server_test

import (
	"context"
	"net"
	"net/http/httptest"
	"reflect"
	"testing"
	"time"

	"distcover"
	"distcover/client"
	"distcover/internal/cluster"
	"distcover/server"
	"distcover/server/api"
)

// startDurableServer opens a coverd with a WAL directory and a snapshot
// interval long enough that only explicit shutdown snapshots happen.
func startDurableServer(t *testing.T, dir string, peers []string) (*server.Server, *client.Client, func()) {
	t.Helper()
	srv, err := server.Open(server.Config{
		Workers: 2, QueueDepth: 16, WALDir: dir, SnapshotInterval: time.Hour,
		ClusterPeers: peers,
	})
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(srv.Handler())
	return srv, client.New(hs.URL), func() { hs.Close(); srv.Close() }
}

var recoveryDeltas = []api.SessionDelta{
	{Weights: []int64{9, 4}, Edges: [][]int{{60, 61}, {0, 60}, {5, 61}}},
	{Edges: [][]int{{61, 12}, {3, 7, 60}}},
	{Weights: []int64{6}, Edges: [][]int{{62, 1}, {62, 61, 60}}},
}

// referenceSession replays the whole history on an uninterrupted library
// session and returns its final state — the ground truth any recovery path
// must reproduce bit for bit.
func referenceSession(t *testing.T, inst *distcover.Instance, upTo int) distcover.SessionState {
	t.Helper()
	ref, err := distcover.NewSession(inst, distcover.WithEpsilon(0.5), distcover.WithFlatEngine())
	if err != nil {
		t.Fatal(err)
	}
	defer ref.Close()
	for _, d := range recoveryDeltas[:upTo] {
		if _, err := ref.Update(distcover.Delta{Weights: d.Weights, Edges: d.Edges}); err != nil {
			t.Fatal(err)
		}
	}
	return ref.State()
}

func requireMatchesReference(t *testing.T, label string, got *api.SessionInfo, want distcover.SessionState) {
	t.Helper()
	if got.InstanceHash != want.Hash {
		t.Fatalf("%s: instance hash %s, want %s", label, got.InstanceHash, want.Hash)
	}
	if !reflect.DeepEqual(got.Result.Cover, want.Solution.Cover) ||
		got.Result.Weight != want.Solution.Weight ||
		got.Result.DualLowerBound != want.Solution.DualLowerBound {
		t.Fatalf("%s: recovered state diverges from uninterrupted run:\n%+v\nvs\n%+v",
			label, got.Result, want.Solution)
	}
	if got.Updates != want.Updates {
		t.Fatalf("%s: %d updates, want %d", label, got.Updates, want.Updates)
	}
	if got.CertifiedBound != want.CertifiedBound {
		t.Fatalf("%s: certified bound %g, want %g", label, got.CertifiedBound, want.CertifiedBound)
	}
}

// TestServerWALRecoveryCleanShutdown: sessions survive a Close/Open cycle
// through the shutdown snapshot, come back flagged as recovered with
// bit-identical state, and keep accepting updates that match an
// uninterrupted run.
func TestServerWALRecoveryCleanShutdown(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()
	_, c, shutdown := startDurableServer(t, dir, nil)

	inst := genInstance(t, 60, 150, 3, 99)
	si, err := c.CreateSession(ctx, inst, api.SolveOptions{Engine: api.EngineFlat, Epsilon: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if si.Recovered {
		t.Fatal("fresh session marked recovered")
	}
	for _, d := range recoveryDeltas[:2] {
		if _, err := c.UpdateSession(ctx, si.ID, d); err != nil {
			t.Fatal(err)
		}
	}
	shutdown() // writes the final snapshot

	srv2, c2, shutdown2 := startDurableServer(t, dir, nil)
	defer shutdown2()
	if n := srv2.Metrics().Snapshot().SessionsRecov; n != 1 {
		t.Fatalf("sessions_recovered = %d, want 1", n)
	}
	list, err := c2.Sessions(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(list) != 1 || list[0].ID != si.ID || !list[0].Recovered {
		t.Fatalf("session list after restart: %+v", list)
	}
	requireMatchesReference(t, "after restart", list[0], referenceSession(t, genInstance(t, 60, 150, 3, 99), 2))

	// The recovered session keeps working: one more delta, still identical
	// to a session that never restarted.
	up, err := c2.UpdateSession(ctx, si.ID, recoveryDeltas[2])
	if err != nil {
		t.Fatal(err)
	}
	requireMatchesReference(t, "after post-restart update", up.Session,
		referenceSession(t, genInstance(t, 60, 150, 3, 99), 3))
}

// TestServerWALRecoveryCrash: with no clean shutdown (no final snapshot),
// recovery replays the raw WAL — the create record re-solves, the update
// records re-apply — and still lands on the uninterrupted run's state.
func TestServerWALRecoveryCrash(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()
	srv1, c, shutdown1 := startDurableServer(t, dir, nil)
	defer shutdown1() // after the assertions; its late snapshot is harmless
	_ = srv1

	inst := genInstance(t, 60, 150, 3, 99)
	si, err := c.CreateSession(ctx, inst, api.SolveOptions{Engine: api.EngineFlat, Epsilon: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range recoveryDeltas {
		if _, err := c.UpdateSession(ctx, si.ID, d); err != nil {
			t.Fatal(err)
		}
	}
	// No shutdown: open a second server over the same directory, as a
	// restart after SIGKILL would. Every acknowledged record was flushed.
	srv2, c2, shutdown2 := startDurableServer(t, dir, nil)
	defer shutdown2()
	if n := srv2.Metrics().Snapshot().SessionsRecov; n != 1 {
		t.Fatalf("sessions_recovered = %d, want 1", n)
	}
	got, err := c2.Session(ctx, si.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Recovered {
		t.Fatal("replayed session not marked recovered")
	}
	requireMatchesReference(t, "after crash recovery", got,
		referenceSession(t, genInstance(t, 60, 150, 3, 99), 3))
}

// TestServerWALDeleteStaysDeleted: an acknowledged delete survives a
// restart; only the live session comes back.
func TestServerWALDeleteStaysDeleted(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()
	_, c, shutdown := startDurableServer(t, dir, nil)

	keep, err := c.CreateSession(ctx, genInstance(t, 30, 70, 3, 5), api.SolveOptions{Epsilon: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	drop, err := c.CreateSession(ctx, genInstance(t, 30, 70, 3, 6), api.SolveOptions{Epsilon: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.CloseSession(ctx, drop.ID); err != nil {
		t.Fatal(err)
	}
	shutdown()

	_, c2, shutdown2 := startDurableServer(t, dir, nil)
	defer shutdown2()
	list, err := c2.Sessions(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(list) != 1 || list[0].ID != keep.ID {
		t.Fatalf("after restart: %+v, want only %s", list, keep.ID)
	}
	if _, err := c2.Session(ctx, drop.ID); err != client.ErrNotFound {
		t.Fatalf("deleted session resurrected: err = %v", err)
	}
}

// TestServerWALClusterSessionRecovery: a cluster-engine session recovers
// (rebuilt on the bit-identical flat engine, re-pointed at the peers) and
// continues matching the reference run on post-restart updates.
func TestServerWALClusterSessionRecovery(t *testing.T) {
	peers := startPeerProtocols(t, 2)
	dir := t.TempDir()
	ctx := context.Background()
	_, c, shutdown := startDurableServer(t, dir, peers)

	inst := genInstance(t, 60, 150, 3, 99)
	si, err := c.CreateSession(ctx, inst, api.SolveOptions{Engine: api.EngineCluster, Epsilon: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.UpdateSession(ctx, si.ID, recoveryDeltas[0]); err != nil {
		t.Fatal(err)
	}
	shutdown()

	_, c2, shutdown2 := startDurableServer(t, dir, peers)
	defer shutdown2()
	got, err := c2.Session(ctx, si.ID)
	if err != nil {
		t.Fatal(err)
	}
	requireMatchesReference(t, "cluster session after restart", got,
		referenceSession(t, genInstance(t, 60, 150, 3, 99), 1))
	up, err := c2.UpdateSession(ctx, si.ID, recoveryDeltas[1])
	if err != nil {
		t.Fatal(err)
	}
	requireMatchesReference(t, "cluster session post-restart update", up.Session,
		referenceSession(t, genInstance(t, 60, 150, 3, 99), 2))
}

// TestTracedClusterSolveBypassesResultCache is the regression test for the
// cache-semantics fix: a traced cluster solve must bypass the result cache
// in both directions (its report must describe a real run, and the report
// must not leak to untraced callers), while the peers' content-addressed
// instance caches still serve the repeat setup without a re-sync.
func TestTracedClusterSolveBypassesResultCache(t *testing.T) {
	pm := server.NewMetrics()
	addrs := make([]string, 2)
	for i := range addrs {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		p := cluster.NewPeer()
		p.Tracer = pm.ClusterTracer()
		go p.Serve(ln)
		t.Cleanup(func() { p.Close() })
		addrs[i] = ln.Addr().String()
	}
	_, c := newTestServer(t, server.Config{Workers: 2, QueueDepth: 16, ClusterPeers: addrs})
	ctx := context.Background()
	inst := genInstance(t, 80, 240, 3, 511)
	opts := api.SolveOptions{Engine: api.EngineCluster, Epsilon: 0.5}

	first, err := c.Solve(ctx, inst, opts)
	if err != nil {
		t.Fatal(err)
	}
	if first.Cached {
		t.Fatal("first solve cannot be cached")
	}
	if s := pm.Snapshot(); s.PeerCacheMisses != 2 || s.PeerCacheHits != 0 {
		t.Fatalf("first contact: hits=%d misses=%d, want 0/2", s.PeerCacheHits, s.PeerCacheMisses)
	}

	tracedOpts := opts
	tracedOpts.Trace = true
	traced, err := c.Solve(ctx, inst, tracedOpts)
	if err != nil {
		t.Fatal(err)
	}
	if traced.Cached {
		t.Fatal("traced solve served from the result cache; its report must describe a real run")
	}
	if traced.Report == nil || traced.Report.Engine != api.EngineCluster {
		t.Fatalf("traced cluster solve returned no cluster report: %+v", traced.Report)
	}
	if !reflect.DeepEqual(traced.Cover, first.Cover) || traced.Weight != first.Weight {
		t.Fatal("traced solve computed a different cover")
	}
	// The bypass is only for the coordinator's result cache: the peers'
	// instance fabric still recognized the hash and skipped the re-sync.
	if s := pm.Snapshot(); s.PeerCacheHits != 2 || s.PeerCacheMisses != 2 {
		t.Fatalf("traced repeat: hits=%d misses=%d, want 2/2", s.PeerCacheHits, s.PeerCacheMisses)
	}

	// The traced result must not have displaced or polluted the cached one.
	again, err := c.Solve(ctx, inst, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !again.Cached {
		t.Fatal("untraced repeat missed the cache the first solve populated")
	}
	if again.Report != nil {
		t.Fatal("traced report leaked into the result cache")
	}
}
