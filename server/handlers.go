package server

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"

	"distcover"
	"distcover/server/api"
)

func (s *Server) routes() {
	s.mux.HandleFunc("POST /v1/solve", s.handleSolve)
	s.mux.HandleFunc("POST /v1/solve/batch", s.handleBatch)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	s.mux.HandleFunc("POST /v1/sessions", s.handleSessionCreate)
	s.mux.HandleFunc("GET /v1/sessions", s.handleSessionList)
	s.mux.HandleFunc("GET /v1/sessions/{id}", s.handleSessionGet)
	s.mux.HandleFunc("POST /v1/sessions/{id}/update", s.handleSessionUpdate)
	s.mux.HandleFunc("DELETE /v1/sessions/{id}", s.handleSessionDelete)
	s.mux.HandleFunc("GET /v1/ring", s.handleRing)
	s.mux.HandleFunc("GET /healthz", s.handleHealth)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, api.Error{Error: fmt.Sprintf(format, args...)})
}

func (s *Server) decode(w http.ResponseWriter, r *http.Request, v any) bool {
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	dec := json.NewDecoder(r.Body)
	if err := dec.Decode(v); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			writeError(w, http.StatusRequestEntityTooLarge, "body exceeds %d bytes", tooLarge.Limit)
		} else {
			writeError(w, http.StatusBadRequest, "invalid JSON: %v", err)
		}
		return false
	}
	return true
}

// handleSolve solves one instance. Synchronous by default: the handler
// submits the job and waits. With "async":true it returns 202 + a job id
// immediately. A full queue yields 429 in both modes.
func (s *Server) handleSolve(w http.ResponseWriter, r *http.Request) {
	var req api.SolveRequest
	if !s.decode(w, r, &req) {
		return
	}
	if s.ringst != nil && s.ringSolveRoute(w, r, &req) {
		return
	}
	j, err := s.buildJob(req)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if res := s.lookupCache(j); res != nil {
		if req.Async {
			// Complete the job up front so the poll endpoint works
			// uniformly whether or not the result was cached.
			j.complete(res, nil)
			s.jobs.add(j)
			writeJSON(w, http.StatusAccepted, api.JobAccepted{ID: j.id, Status: api.JobDone})
			return
		}
		writeJSON(w, http.StatusOK, res)
		return
	}

	if req.Async {
		s.jobs.add(j)
		if err := s.queue.tryEnqueue(j); err != nil {
			s.jobs.remove(j.id)
			s.rejectFull(w)
			return
		}
		s.metrics.recordSubmit()
		writeJSON(w, http.StatusAccepted, api.JobAccepted{ID: j.id, Status: api.JobQueued})
		return
	}

	if err := s.queue.tryEnqueue(j); err != nil {
		s.rejectFull(w)
		return
	}
	s.metrics.recordSubmit()
	select {
	case <-j.done:
	case <-r.Context().Done():
		// Client went away; the worker will still complete the job (and
		// populate the cache), there is just nobody to tell.
		return
	}
	st := j.snapshot()
	if st.Error != "" {
		writeError(w, http.StatusUnprocessableEntity, "solve failed: %s", st.Error)
		return
	}
	writeJSON(w, http.StatusOK, st.Result)
}

// handleBatch solves many instances through the same queue and pool. Items
// stream through the bounded queue with blocking enqueue, so a batch larger
// than the queue still completes; only MaxBatch bounds the request itself.
func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	var req api.BatchRequest
	if !s.decode(w, r, &req) {
		return
	}
	if len(req.Requests) == 0 {
		writeError(w, http.StatusBadRequest, "empty batch")
		return
	}
	if len(req.Requests) > s.cfg.MaxBatch {
		writeError(w, http.StatusRequestEntityTooLarge,
			"batch of %d exceeds limit %d", len(req.Requests), s.cfg.MaxBatch)
		return
	}
	s.metrics.recordBatch()

	items := make([]api.BatchItem, len(req.Requests))
	jobs := make([]*job, len(req.Requests))
	for i, sub := range req.Requests {
		j, err := s.buildJob(sub)
		if err != nil {
			items[i] = api.BatchItem{Error: err.Error()}
			continue
		}
		if res := s.lookupCache(j); res != nil {
			items[i] = api.BatchItem{Result: res}
			continue
		}
		if err := s.queue.enqueue(r.Context(), j); err != nil {
			items[i] = api.BatchItem{Error: "not scheduled: " + err.Error()}
			continue
		}
		s.metrics.recordSubmit()
		jobs[i] = j
	}
	for i, j := range jobs {
		if j == nil {
			continue
		}
		select {
		case <-j.done:
		case <-r.Context().Done():
			return
		}
		st := j.snapshot()
		if st.Error != "" {
			items[i] = api.BatchItem{Error: st.Error}
		} else {
			items[i] = api.BatchItem{Result: st.Result}
		}
	}
	writeJSON(w, http.StatusOK, api.BatchResponse{Results: items})
}

// handleSessionCreate opens an incremental session: the initial solve runs
// through the job queue and worker pool like any other solve (a full queue
// yields 429), then the session is registered for updates.
func (s *Server) handleSessionCreate(w http.ResponseWriter, r *http.Request) {
	var req api.SessionRequest
	if !s.decode(w, r, &req) {
		return
	}
	if len(req.Instance) == 0 {
		writeError(w, http.StatusBadRequest, "request must set instance")
		return
	}
	inst, err := distcover.ReadInstance(bytes.NewReader(req.Instance))
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if _, err := sessionLibOptions(req.Options, s.pool.cluster); err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	j := newSessionCreateJob(inst, req.Options)
	if err := s.queue.tryEnqueue(j); err != nil {
		s.rejectFull(w)
		return
	}
	s.metrics.recordSubmit()
	if !s.waitJob(j, r) {
		return
	}
	st := j.snapshot()
	if st.Error != "" {
		writeError(w, http.StatusUnprocessableEntity, "session solve failed: %s", st.Error)
		return
	}
	// With a ring, the id is rejection-sampled until this coordinator owns
	// it: session ownership becomes a pure function of the id, so every
	// member and ring-aware client can route to it with no directory.
	entry := &sessionEntry{id: s.ringSessionID(), sess: j.newSess, opts: req.Options, baseHash: inst.Hash()}
	if err := s.logCreateAndRegister(entry, req.Instance); err != nil {
		// Not durable ⇒ not created: acknowledging a session the WAL does
		// not know about would silently drop it on the next restart.
		j.newSess.Close()
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	s.metrics.recordSessionCreate()
	info := entry.info()
	info.Result.ElapsedMS = st.Result.ElapsedMS
	writeJSON(w, http.StatusCreated, info)
}

// waitJob waits for a queued job. Without a WAL a vanished client just
// abandons the wait (the worker still completes the job); with one, the
// handler must see the job finish so the applied mutation is logged before
// anything else touches the session.
func (s *Server) waitJob(j *job, r *http.Request) bool {
	if s.wal != nil {
		<-j.done
		return true
	}
	select {
	case <-j.done:
		return true
	case <-r.Context().Done():
		return false
	}
}

func (s *Server) handleSessionList(w http.ResponseWriter, r *http.Request) {
	entries := s.sessions.list()
	infos := make([]*api.SessionInfo, 0, len(entries))
	for _, e := range entries {
		infos = append(infos, e.info())
	}
	writeJSON(w, http.StatusOK, api.SessionList{Sessions: infos})
}

func (s *Server) handleSessionGet(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	entry, ok := s.sessions.get(id)
	if !ok && s.ringst != nil {
		if s.ringSessionMiss(w, r, id, nil) {
			return
		}
		entry, ok = s.sessions.get(id) // takeover may have installed it
	}
	if !ok {
		writeError(w, http.StatusNotFound, "unknown session %q", id)
		return
	}
	writeJSON(w, http.StatusOK, entry.info())
}

// handleSessionUpdate applies one delta batch through the worker pool. The
// residual re-solve touches only the uncovered new edges, so updates are
// cheap; concurrent updates to one session serialize inside the session.
func (s *Server) handleSessionUpdate(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	// Decode before the registry lookup: a misrouted update is proxied to
	// its owner, and the proxy needs the parsed body.
	var d api.SessionDelta
	if !s.decode(w, r, &d) {
		return
	}
	entry, ok := s.sessions.get(id)
	if !ok && s.ringst != nil {
		if s.ringSessionMiss(w, r, id, &d) {
			return
		}
		entry, ok = s.sessions.get(id) // takeover may have installed it
	}
	if !ok {
		writeError(w, http.StatusNotFound, "unknown session %q", id)
		return
	}
	delta := distcover.Delta{Weights: d.Weights, Edges: d.Edges}
	if s.wal != nil {
		// Serialize apply+log per session and shut out snapshots between
		// the two (lock order walMu → commitMu(R); see durability.go).
		entry.walMu.Lock()
		defer entry.walMu.Unlock()
		s.commitMu.RLock()
		defer s.commitMu.RUnlock()
	}
	j := newSessionUpdateJob(entry, delta)
	if err := s.queue.tryEnqueue(j); err != nil {
		s.rejectFull(w)
		return
	}
	s.metrics.recordSubmit()
	if !s.waitJob(j, r) {
		return
	}
	st := j.snapshot()
	if st.Error != "" {
		writeError(w, http.StatusUnprocessableEntity, "session update failed: %s", st.Error)
		return
	}
	if s.wal != nil {
		if err := s.logUpdate(entry, delta); err != nil {
			// The delta is applied in memory but not durable; surface that
			// loudly rather than acknowledging a write the log lost.
			writeError(w, http.StatusInternalServerError, "%v", err)
			return
		}
	}
	s.metrics.recordSessionUpdate()
	// The delta grew the session's instance: re-weigh it against the byte
	// budget (this can evict colder sessions, or even this one).
	s.sessions.refresh(entry)
	writeJSON(w, http.StatusOK, &api.SessionUpdateResult{
		NewVertices:      j.upd.NewVertices,
		NewEdges:         j.upd.NewEdges,
		CoveredOnArrival: j.upd.CoveredOnArrival,
		ResidualEdges:    j.upd.ResidualEdges,
		ResidualVertices: j.upd.ResidualVertices,
		Joined:           j.upd.Joined,
		AddedWeight:      j.upd.AddedWeight,
		Iterations:       j.upd.Iterations,
		Rounds:           j.upd.Rounds,
		ElapsedMS:        st.Result.ElapsedMS,
		Session:          entry.info(),
	})
}

func (s *Server) handleSessionDelete(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	entry, ok := s.sessions.get(id)
	if !ok && s.ringst != nil {
		if s.ringSessionMiss(w, r, id, nil) {
			return
		}
		entry, ok = s.sessions.get(id)
	}
	if !ok {
		writeError(w, http.StatusNotFound, "unknown session %q", id)
		return
	}
	if s.wal != nil {
		entry.walMu.Lock()
		defer entry.walMu.Unlock()
		s.commitMu.RLock()
		defer s.commitMu.RUnlock()
	}
	if !s.sessions.remove(id) {
		writeError(w, http.StatusNotFound, "unknown session %q", id)
		return
	}
	if s.wal != nil {
		s.logDelete(id)
	}
	s.invalidatePeerCaches(entry)
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	j, ok := s.jobs.get(id)
	if !ok {
		writeError(w, http.StatusNotFound, "unknown job %q", id)
		return
	}
	writeJSON(w, http.StatusOK, j.snapshot())
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, api.Health{
		Status:        "ok",
		Workers:       s.cfg.Workers,
		QueueDepth:    s.queue.depth(),
		QueueCapacity: s.queue.capacity(),
		CacheEntries:  s.cache.len(),
		Sessions:      s.sessions.len(),
		SessionBytes:  s.sessions.totalBytes(),
	})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	ringMembers := 0
	if s.ringst != nil {
		ringMembers = len(s.ringst.ring.Members())
	}
	s.metrics.writePrometheus(w, []gauge{
		{"coverd_ring_members", "Coordinator ring size (0 = standalone).", float64(ringMembers)},
		{"coverd_queue_depth", "Jobs waiting in the bounded queue.", float64(s.queue.depth())},
		{"coverd_queue_capacity", "Configured queue bound.", float64(s.queue.capacity())},
		{"coverd_workers", "Configured worker pool size.", float64(s.cfg.Workers)},
		{"coverd_cache_entries", "Entries in the instance-result cache.", float64(s.cache.len())},
		{"coverd_sessions", "Live incremental sessions.", float64(s.sessions.len())},
		{"coverd_session_bytes", "Estimated heap footprint of all live sessions.", float64(s.sessions.totalBytes())},
		{"coverd_session_bytes_budget", "Configured session memory budget (0 = unbounded).", float64(s.cfg.SessionMemoryBudget)},
	})
}

// rejectFull emits the 429 backpressure response.
func (s *Server) rejectFull(w http.ResponseWriter) {
	s.metrics.recordBackpressure()
	w.Header().Set("Retry-After", "1")
	writeError(w, http.StatusTooManyRequests, "job queue full (capacity %d); retry later", s.queue.capacity())
}
