package server

import (
	"crypto/rand"
	"encoding/hex"
	"sync"
	"time"

	"distcover"
	"distcover/server/api"
)

// jobKind selects what a queued job does when a worker picks it up.
type jobKind int

const (
	// jobSolve is the ordinary one-shot solve (instance or ILP).
	jobSolve jobKind = iota
	// jobSessionCreate solves an instance and materializes a Session.
	jobSessionCreate
	// jobSessionUpdate applies a delta batch to an existing session.
	jobSessionUpdate
	// jobSnapshot compacts the WAL into a snapshot file. Running it through
	// the queue makes snapshots visible in queue metrics and naturally
	// yields to solve traffic; the snapshot function itself never blocks on
	// in-flight updates (it skips instead), so a snapshot job on a worker
	// cannot deadlock against update handlers waiting for workers.
	jobSnapshot
)

// job is one unit of work flowing through the queue to the worker pool.
// For jobSolve exactly one of inst and ilp is non-nil; session jobs use the
// sess/delta fields instead. done is closed when result/err are final;
// status transitions queued → running → done|failed.
type job struct {
	id       string
	kind     jobKind
	inst     *distcover.Instance
	ilp      *distcover.ILP
	opts     api.SolveOptions
	hash     string // canonical content hash of the problem
	cacheKey string // hash + option fingerprint; "" when not cacheable
	// enqueuedAt feeds the queue-wait histogram (zero = not measured,
	// e.g. jobs constructed by tests without going through the queue).
	enqueuedAt time.Time

	// Session jobs. newSess and upd are written by the worker before the
	// job completes (the done-channel close publishes them to the waiter).
	sessEntry *sessionEntry
	delta     distcover.Delta
	newSess   *distcover.Session
	upd       *distcover.UpdateStats

	// snapFn is the work of a jobSnapshot.
	snapFn func() error

	mu     sync.Mutex
	status string
	result *api.SolveResult
	err    error
	done   chan struct{}
}

func newJob(inst *distcover.Instance, ilp *distcover.ILP, opts api.SolveOptions, hash, cacheKey string) *job {
	return &job{
		id:         newJobID(),
		inst:       inst,
		ilp:        ilp,
		opts:       opts,
		hash:       hash,
		cacheKey:   cacheKey,
		enqueuedAt: time.Now(),
		status:     api.JobQueued,
		done:       make(chan struct{}),
	}
}

// newSessionCreateJob queues the initial solve of a session.
func newSessionCreateJob(inst *distcover.Instance, opts api.SolveOptions) *job {
	return &job{
		id:         newJobID(),
		kind:       jobSessionCreate,
		inst:       inst,
		opts:       opts,
		enqueuedAt: time.Now(),
		status:     api.JobQueued,
		done:       make(chan struct{}),
	}
}

// newSessionUpdateJob queues one delta batch against a session.
func newSessionUpdateJob(entry *sessionEntry, delta distcover.Delta) *job {
	return &job{
		id:         newJobID(),
		kind:       jobSessionUpdate,
		sessEntry:  entry,
		opts:       entry.opts,
		delta:      delta,
		enqueuedAt: time.Now(),
		status:     api.JobQueued,
		done:       make(chan struct{}),
	}
}

// newSnapshotJob queues one WAL compaction pass.
func newSnapshotJob(fn func() error) *job {
	return &job{
		id:         newJobID(),
		kind:       jobSnapshot,
		snapFn:     fn,
		enqueuedAt: time.Now(),
		status:     api.JobQueued,
		done:       make(chan struct{}),
	}
}

// skipCacheRead reports whether the job must not be served from the
// result cache: uncacheable problems, explicit no-cache requests, and
// traced solves (their report must describe an actual run).
func (j *job) skipCacheRead() bool {
	return j.cacheKey == "" || j.opts.NoCache || j.opts.Trace
}

// skipCacheWrite reports whether the job's result must not populate the
// result cache. NoCache only bypasses the read side — the computed result
// is still valid for other callers — but a traced result carries a
// per-run report that must never be replayed to requests that did not ask
// for tracing.
func (j *job) skipCacheWrite() bool {
	return j.cacheKey == "" || j.opts.Trace
}

func newJobID() string {
	var b [16]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic("coverd: crypto/rand unavailable: " + err.Error())
	}
	return hex.EncodeToString(b[:])
}

func (j *job) setRunning() {
	j.mu.Lock()
	j.status = api.JobRunning
	j.mu.Unlock()
}

// complete finalizes the job exactly once.
func (j *job) complete(res *api.SolveResult, err error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.status == api.JobDone || j.status == api.JobFailed {
		return
	}
	if err != nil {
		j.status = api.JobFailed
		j.err = err
	} else {
		j.status = api.JobDone
		j.result = res
	}
	close(j.done)
}

// finished reports whether the job reached a terminal state.
func (j *job) finished() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.status == api.JobDone || j.status == api.JobFailed
}

// snapshot returns the job's externally visible state.
func (j *job) snapshot() api.JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := api.JobStatus{ID: j.id, Status: j.status, Result: j.result}
	if j.err != nil {
		st.Error = j.err.Error()
	}
	return st
}

// jobRegistry tracks async jobs by id so GET /v1/jobs/{id} can find them.
// Finished jobs are retained FIFO up to a bound; the oldest are dropped to
// keep the registry from growing without limit under sustained traffic.
type jobRegistry struct {
	mu       sync.Mutex
	byID     map[string]*job
	retained []string // ids in insertion order, for eviction
	capacity int
}

func newJobRegistry(capacity int) *jobRegistry {
	return &jobRegistry{byID: make(map[string]*job), capacity: capacity}
}

func (r *jobRegistry) add(j *job) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.byID[j.id] = j
	r.retained = append(r.retained, j.id)
	// Evict oldest *finished* jobs only: queued/running jobs must stay
	// pollable, and their number is already bounded by queue depth +
	// worker count, so skipping them cannot grow the registry unboundedly.
	for i := 0; len(r.retained) > r.capacity && i < len(r.retained); {
		old, ok := r.byID[r.retained[i]]
		if ok && !old.finished() {
			i++
			continue
		}
		delete(r.byID, r.retained[i])
		r.retained = append(r.retained[:i], r.retained[i+1:]...)
	}
}

func (r *jobRegistry) get(id string) (*job, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	j, ok := r.byID[id]
	return j, ok
}

// remove forgets a job (used when an async submit fails to enqueue).
func (r *jobRegistry) remove(id string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	delete(r.byID, id)
	for i, rid := range r.retained {
		if rid == id {
			r.retained = append(r.retained[:i], r.retained[i+1:]...)
			break
		}
	}
}
