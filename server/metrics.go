package server

import (
	"fmt"
	"io"
	"sort"
	"sync"
)

// latencyBuckets are the upper bounds (seconds) of the solve latency
// histogram, spanning sub-millisecond simulator runs to multi-second
// congest-over-TCP runs.
var latencyBuckets = []float64{
	0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
	0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// Metrics aggregates the service counters exported at GET /metrics in
// Prometheus text exposition format. All methods are safe for concurrent
// use; gauges (queue depth, cache size) are sampled at scrape time by the
// server, not stored here.
type Metrics struct {
	mu              sync.Mutex
	solvesOK        int64
	solvesErr       int64
	cacheHits       int64
	cacheMisses     int64
	backpressured   int64 // submits rejected with 429
	jobsSubmitted   int64
	batchRequests   int64
	sessionsCreated int64
	sessionUpdates  int64
	bucketCounts    []int64 // parallel to latencyBuckets, non-cumulative
	latencySum      float64 // seconds
	latencyCount    int64
}

// NewMetrics returns an empty metrics registry.
func NewMetrics() *Metrics {
	return &Metrics{bucketCounts: make([]int64, len(latencyBuckets))}
}

func (m *Metrics) recordSolve(seconds float64, err error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if err != nil {
		m.solvesErr++
		return
	}
	m.solvesOK++
	m.latencySum += seconds
	m.latencyCount++
	for i, le := range latencyBuckets {
		if seconds <= le {
			m.bucketCounts[i]++
			break
		}
	}
}

func (m *Metrics) recordCache(hit bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if hit {
		m.cacheHits++
	} else {
		m.cacheMisses++
	}
}

func (m *Metrics) recordBackpressure() {
	m.mu.Lock()
	m.backpressured++
	m.mu.Unlock()
}

func (m *Metrics) recordSubmit() {
	m.mu.Lock()
	m.jobsSubmitted++
	m.mu.Unlock()
}

func (m *Metrics) recordBatch() {
	m.mu.Lock()
	m.batchRequests++
	m.mu.Unlock()
}

func (m *Metrics) recordSessionCreate() {
	m.mu.Lock()
	m.sessionsCreated++
	m.mu.Unlock()
}

func (m *Metrics) recordSessionUpdate() {
	m.mu.Lock()
	m.sessionUpdates++
	m.mu.Unlock()
}

// Snapshot is a point-in-time copy of the counters, used by tests and by
// operators who prefer JSON over the Prometheus endpoint.
type Snapshot struct {
	SolvesOK        int64   `json:"solves_ok"`
	SolvesErr       int64   `json:"solves_err"`
	CacheHits       int64   `json:"cache_hits"`
	CacheMisses     int64   `json:"cache_misses"`
	Backpressured   int64   `json:"backpressured"`
	JobsSubmitted   int64   `json:"jobs_submitted"`
	BatchRequests   int64   `json:"batch_requests"`
	SessionsCreated int64   `json:"sessions_created"`
	SessionUpdates  int64   `json:"session_updates"`
	LatencySum      float64 `json:"latency_sum_seconds"`
	LatencyCount    int64   `json:"latency_count"`

	buckets []int64 // non-cumulative histogram counts, parallel to latencyBuckets
}

// Snapshot returns a consistent copy of all counters.
func (m *Metrics) Snapshot() Snapshot {
	m.mu.Lock()
	defer m.mu.Unlock()
	return Snapshot{
		buckets:         append([]int64(nil), m.bucketCounts...),
		SolvesOK:        m.solvesOK,
		SolvesErr:       m.solvesErr,
		CacheHits:       m.cacheHits,
		CacheMisses:     m.cacheMisses,
		Backpressured:   m.backpressured,
		JobsSubmitted:   m.jobsSubmitted,
		BatchRequests:   m.batchRequests,
		SessionsCreated: m.sessionsCreated,
		SessionUpdates:  m.sessionUpdates,
		LatencySum:      m.latencySum,
		LatencyCount:    m.latencyCount,
	}
}

// gauge is a named instantaneous value supplied by the server at scrape
// time (queue depth, worker count, cache entries).
type gauge struct {
	name, help string
	value      float64
}

// writePrometheus renders all counters plus the supplied gauges in the
// Prometheus text exposition format (version 0.0.4).
func (m *Metrics) writePrometheus(w io.Writer, gauges []gauge) {
	s := m.Snapshot()
	counter := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	fmt.Fprintf(w, "# HELP coverd_solves_total Completed solve attempts by outcome.\n# TYPE coverd_solves_total counter\n")
	fmt.Fprintf(w, "coverd_solves_total{outcome=\"ok\"} %d\n", s.SolvesOK)
	fmt.Fprintf(w, "coverd_solves_total{outcome=\"error\"} %d\n", s.SolvesErr)
	counter("coverd_cache_hits_total", "Solve requests served from the instance-result cache.", s.CacheHits)
	counter("coverd_cache_misses_total", "Solve requests that missed the instance-result cache.", s.CacheMisses)
	counter("coverd_backpressure_total", "Submits rejected with 429 because the job queue was full.", s.Backpressured)
	counter("coverd_jobs_submitted_total", "Jobs accepted into the queue.", s.JobsSubmitted)
	counter("coverd_batch_requests_total", "Batch solve requests received.", s.BatchRequests)
	counter("coverd_sessions_created_total", "Incremental sessions opened.", s.SessionsCreated)
	counter("coverd_session_updates_total", "Session delta batches applied.", s.SessionUpdates)

	fmt.Fprintf(w, "# HELP coverd_solve_seconds Solver wall time of successful solves.\n# TYPE coverd_solve_seconds histogram\n")
	cumulative := int64(0)
	for i, le := range latencyBuckets {
		cumulative += s.buckets[i]
		fmt.Fprintf(w, "coverd_solve_seconds_bucket{le=\"%g\"} %d\n", le, cumulative)
	}
	fmt.Fprintf(w, "coverd_solve_seconds_bucket{le=\"+Inf\"} %d\n", s.LatencyCount)
	fmt.Fprintf(w, "coverd_solve_seconds_sum %g\n", s.LatencySum)
	fmt.Fprintf(w, "coverd_solve_seconds_count %d\n", s.LatencyCount)

	sort.Slice(gauges, func(i, j int) bool { return gauges[i].name < gauges[j].name })
	for _, g := range gauges {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %g\n", g.name, g.help, g.name, g.name, g.value)
	}
}
